#include <gtest/gtest.h>

#include "support/check.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  MatrixD a;
  EXPECT_EQ(a.rows(), 0);
  EXPECT_EQ(a.cols(), 0);
  EXPECT_TRUE(a.empty());
}

TEST(Matrix, FillConstructorAndIndexing) {
  MatrixD a(3, 4, 2.5);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(a(i, j), 2.5);
  }
  a(1, 2) = -1.0;
  EXPECT_DOUBLE_EQ(a(1, 2), -1.0);
}

TEST(Matrix, RowMajorLayout) {
  MatrixD a(2, 3);
  double v = 0;
  for (index_t i = 0; i < 2; ++i) {
    for (index_t j = 0; j < 3; ++j) a(i, j) = v++;
  }
  for (int k = 0; k < 6; ++k) EXPECT_DOUBLE_EQ(a.data()[k], k);
}

TEST(Matrix, EqualityComparesShapeAndValues) {
  MatrixD a(2, 2, 1.0), b(2, 2, 1.0), c(2, 2, 2.0), d(1, 4, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(MatrixView, BlockSeesAndMutatesParent) {
  MatrixD a(4, 4, 0.0);
  ViewD blk = a.block(1, 1, 2, 2);
  EXPECT_EQ(blk.rows(), 2);
  EXPECT_EQ(blk.ld(), 4);
  blk(0, 0) = 7.0;
  blk(1, 1) = 8.0;
  EXPECT_DOUBLE_EQ(a(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 8.0);
}

TEST(MatrixView, NestedBlocksCompose) {
  MatrixD a(6, 6);
  for (index_t i = 0; i < 6; ++i) {
    for (index_t j = 0; j < 6; ++j) a(i, j) = static_cast<double>(10 * i + j);
  }
  ViewD outer = a.block(1, 1, 4, 4);
  ViewD inner = outer.block(1, 2, 2, 2);
  EXPECT_DOUBLE_EQ(inner(0, 0), a(2, 3));
  EXPECT_DOUBLE_EQ(inner(1, 1), a(3, 4));
}

TEST(MatrixView, OutOfRangeBlockThrows) {
  // View bounds checks ride on CONFLUX_CHECK: classified contract errors in
  // Debug / sanitizer builds, compiled out in plain Release.
#ifdef CONFLUX_ENABLE_CHECKS
  MatrixD a(3, 3);
  EXPECT_THROW(a.block(0, 0, 4, 1), contract_error);
  EXPECT_THROW(a.block(2, 2, 2, 2), contract_error);
  EXPECT_THROW(a.block(-1, 0, 1, 1), contract_error);
#else
  GTEST_SKIP() << "view bounds checks compiled out (CONFLUX_ENABLE_CHECKS off)";
#endif
}

TEST(MatrixView, ConstViewFromMutableView) {
  MatrixD a(2, 2, 3.0);
  ConstViewD cv = a.block(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(cv(1, 1), 3.0);
}

TEST(MatrixView, CopyBetweenStridedViews) {
  MatrixD src(4, 4, 1.0);
  src(1, 1) = 5.0;
  MatrixD dst(6, 6, 0.0);
  copy<double>(src.block(0, 0, 3, 3), dst.block(2, 2, 3, 3));
  EXPECT_DOUBLE_EQ(dst(3, 3), 5.0);
  EXPECT_DOUBLE_EQ(dst(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(dst(0, 0), 0.0);
}

TEST(MatrixView, CopyShapeMismatchThrows) {
  MatrixD a(2, 2), b(3, 3);
  EXPECT_THROW(copy<double>(a.view(), b.view()), contract_error);
}

TEST(RandomMatrix, DeterministicAndInRange) {
  const MatrixD a = random_matrix(16, 8, 42);
  const MatrixD b = random_matrix(16, 8, 42);
  EXPECT_EQ(a, b);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_GE(a(i, j), -1.0);
      EXPECT_LT(a(i, j), 1.0);
    }
  }
}

TEST(RandomMatrix, SeedChangesContent) {
  EXPECT_FALSE(random_matrix(8, 8, 1) == random_matrix(8, 8, 2));
}

TEST(RandomMatrix, DominantMatrixHasLargeDiagonal) {
  const MatrixD a = random_dominant_matrix(32, 5);
  for (index_t i = 0; i < 32; ++i) {
    double offsum = 0.0;
    for (index_t j = 0; j < 32; ++j) {
      if (j != i) offsum += std::abs(a(i, j));
    }
    EXPECT_GT(std::abs(a(i, i)), offsum);
  }
}

TEST(RandomMatrix, SpdMatrixIsSymmetric) {
  const MatrixD a = random_spd_matrix(24, 9);
  for (index_t i = 0; i < 24; ++i) {
    for (index_t j = 0; j < 24; ++j) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
  }
}

}  // namespace
}  // namespace conflux
