// 2D ScaLAPACK/MKL-style baselines (full numerics) and the CANDMC/CAPITAL
// 2.5D schedule traces: correctness, volume ordering vs COnfLUX, and
// agreement with the Table 2 models.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/candmc.hpp"
#include "baselines/scalapack2d.hpp"
#include "blas/lapack.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "models/models.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux::baselines {
namespace {

xsim::Machine make_machine(int ranks, double memory, xsim::ExecMode mode) {
  xsim::MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = memory;
  return xsim::Machine(spec, mode);
}

// ---------------------------------------------------------- correctness ----

struct Case2D {
  index_t n;
  int pr, pc;
  index_t nb;
};

class ScalapackLuSweep : public ::testing::TestWithParam<Case2D> {};

TEST_P(ScalapackLuSweep, ResidualIsSmall) {
  const auto& p = GetParam();
  const grid::Grid2D g{p.pr, p.pc};
  xsim::Machine m = make_machine(g.ranks(), 1e9, xsim::ExecMode::Real);
  const MatrixD a = random_matrix(p.n, p.n, 3000 + static_cast<std::uint64_t>(p.n));
  const Lu2DResult lu =
      scalapack_lu(m, g, a.view(), Baseline2DOptions{.block_size = p.nb});
  ASSERT_EQ(static_cast<index_t>(lu.ipiv.size()), p.n);
  const auto perm = xblas::ipiv_to_permutation(lu.ipiv, p.n);
  EXPECT_LT(xblas::lu_residual(a.view(), lu.factors.view(), perm), 200.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScalapackLuSweep,
                         ::testing::Values(Case2D{64, 1, 1, 16}, Case2D{64, 2, 2, 16},
                                           Case2D{96, 2, 4, 16}, Case2D{100, 2, 2, 16},
                                           Case2D{64, 4, 2, 8}, Case2D{65, 2, 2, 32},
                                           Case2D{128, 3, 3, 16}));

TEST(ScalapackLu, MatchesReferenceGetrf) {
  const index_t n = 96;
  const MatrixD a = random_matrix(n, n, 41);
  const grid::Grid2D g{2, 2};
  xsim::Machine m = make_machine(4, 1e9, xsim::ExecMode::Real);
  const Lu2DResult lu = scalapack_lu(m, g, a.view(), Baseline2DOptions{.block_size = 16});
  MatrixD ref = a;
  std::vector<index_t> ref_ipiv;
  ASSERT_EQ(xblas::getrf(ref.view(), ref_ipiv), 0);
  // Same pivoting rule (largest magnitude, lowest index) => same factors.
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(lu.ipiv[static_cast<std::size_t>(i)], ref_ipiv[static_cast<std::size_t>(i)]);
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(lu.factors(i, j), ref(i, j), 1e-9 * static_cast<double>(n));
    }
  }
}

class ScalapackCholSweep : public ::testing::TestWithParam<Case2D> {};

TEST_P(ScalapackCholSweep, ResidualIsSmall) {
  const auto& p = GetParam();
  const grid::Grid2D g{p.pr, p.pc};
  xsim::Machine m = make_machine(g.ranks(), 1e9, xsim::ExecMode::Real);
  const MatrixD a = random_spd_matrix(p.n, 4000 + static_cast<std::uint64_t>(p.n));
  const MatrixD l =
      scalapack_cholesky(m, g, a.view(), Baseline2DOptions{.block_size = p.nb});
  EXPECT_LT(xblas::cholesky_residual(a.view(), l.view()), 200.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScalapackCholSweep,
                         ::testing::Values(Case2D{64, 1, 1, 16}, Case2D{64, 2, 2, 16},
                                           Case2D{96, 2, 4, 16}, Case2D{100, 2, 2, 16},
                                           Case2D{80, 4, 2, 8}));

// ------------------------------------------------------ volume vs model ----

TEST(Volumes2D, ScalapackLuNearTable2Model) {
  const index_t n = 4096;
  const grid::Grid2D g{8, 8};
  xsim::Machine m = make_machine(64, 1e9, xsim::ExecMode::Trace);
  scalapack_lu_trace(m, g, n, Baseline2DOptions{.block_size = 64});
  const double model = models::mkl_lu_volume(static_cast<double>(n), g);
  double avg = 0.0;
  for (int r = 0; r < 64; ++r) avg += m.counters(r).words_received;
  avg /= 64.0;
  EXPECT_NEAR(avg, model, 0.15 * model);
}

TEST(Volumes2D, SlateCommunicatesSlightlyLessThanMkl) {
  const index_t n = 2048;
  const grid::Grid2D g{4, 4};
  xsim::Machine mkl = make_machine(16, 1e9, xsim::ExecMode::Trace);
  xsim::Machine slate = make_machine(16, 1e9, xsim::ExecMode::Trace);
  scalapack_lu_trace(mkl, g, n, Baseline2DOptions{.block_size = 64});
  scalapack_lu_trace(slate, g, n, slate_defaults());
  EXPECT_LT(slate.total_words_received(), mkl.total_words_received());
  // ... but within the same 2D ballpark (paper: "mostly equal").
  EXPECT_GT(slate.total_words_received(), 0.5 * mkl.total_words_received());
}

TEST(Volumes2D, CandmcMatchesAuthorsModel) {
  const index_t n = 8192;
  const int p = 64;
  const double mem = 4.0 * static_cast<double>(n) * static_cast<double>(n) / p;
  xsim::Machine m = make_machine(p, mem, xsim::ExecMode::Trace);
  candmc_lu_trace(m, n, Candmc25DOptions{.replication = 4});
  const double model = models::candmc_lu_volume(static_cast<double>(n), p, mem);
  double avg = 0.0;
  for (int r = 0; r < p; ++r) avg += m.counters(r).words_received;
  avg /= p;
  EXPECT_NEAR(avg, model, 0.05 * model);
}

TEST(Volumes2D, CapitalMatchesAuthorsModel) {
  const index_t n = 8192;
  const int p = 64;
  const double mem = 4.0 * static_cast<double>(n) * static_cast<double>(n) / p;
  xsim::Machine m = make_machine(p, mem, xsim::ExecMode::Trace);
  capital_cholesky_trace(m, n, Candmc25DOptions{.replication = 4});
  const double model =
      models::capital_cholesky_volume(static_cast<double>(n), p, mem);
  double avg = 0.0;
  for (int r = 0; r < p; ++r) avg += m.counters(r).words_received;
  avg /= p;
  EXPECT_NEAR(avg, model, 0.05 * model);
}

// ---------------------------------------------- the paper's main claims ----

TEST(Ordering, ConfluxCommunicatesLessThanAllBaselines) {
  // Figure 8a's headline at its right edge (P = 1024, N = 16384): COnfLUX
  // communicates the least (the paper measures up to 1.42x less than the
  // second best there). At small P the O(M) replication terms make 2.5D and
  // 2D comparable — also visible in the paper's Fig. 8c heatmap, where the
  // reduction ratio approaches 1 toward small P.
  const index_t n = 16384;
  const int p = 1024;
  const double node_mem = 4.0 * static_cast<double>(n) * static_cast<double>(n) / p;
  const grid::Grid3D g3 = models::best_conflux_grid(n, p, node_mem);
  const grid::Grid2D g2 = grid::choose_grid_2d(p);

  xsim::Machine mc = make_machine(p, node_mem, xsim::ExecMode::Trace);
  factor::FactorOptions fopt;
  fopt.block_size = 128 / g3.pz() * g3.pz();
  factor::conflux_lu_trace(mc, g3, n, fopt);

  xsim::Machine mm = make_machine(p, node_mem, xsim::ExecMode::Trace);
  scalapack_lu_trace(mm, g2, n, Baseline2DOptions{.block_size = 64});

  xsim::Machine ms = make_machine(p, node_mem, xsim::ExecMode::Trace);
  scalapack_lu_trace(ms, g2, n, slate_defaults());

  xsim::Machine md = make_machine(p, node_mem, xsim::ExecMode::Trace);
  candmc_lu_trace(md, n, Candmc25DOptions{.replication = g3.pz()});

  EXPECT_LT(mc.avg_comm_volume(), mm.avg_comm_volume());
  EXPECT_LT(mc.avg_comm_volume(), ms.avg_comm_volume());
  EXPECT_LT(mc.avg_comm_volume(), md.avg_comm_volume());
  // And CANDMC worse than the 2D libraries at this scale (paper, Fig. 8a).
  EXPECT_GT(md.avg_comm_volume(), mm.avg_comm_volume());
}

TEST(Ordering, ConfchoxBeatsCapitalAndScalapackCholesky) {
  const index_t n = 16384;
  const int p = 1024;
  const double node_mem = 4.0 * static_cast<double>(n) * static_cast<double>(n) / p;
  const grid::Grid3D g3 = models::best_conflux_grid(n, p, node_mem);
  const grid::Grid2D g2 = grid::choose_grid_2d(p);

  xsim::Machine mc = make_machine(p, node_mem, xsim::ExecMode::Trace);
  factor::FactorOptions fopt;
  fopt.block_size = 128 / g3.pz() * g3.pz();
  factor::confchox_trace(mc, g3, n, fopt);

  xsim::Machine m2 = make_machine(p, node_mem, xsim::ExecMode::Trace);
  scalapack_cholesky_trace(m2, g2, n, Baseline2DOptions{.block_size = 64});

  xsim::Machine mk = make_machine(p, node_mem, xsim::ExecMode::Trace);
  capital_cholesky_trace(mk, n, Candmc25DOptions{.replication = 4});

  EXPECT_LT(mc.avg_comm_volume(), m2.avg_comm_volume());
  EXPECT_LT(mc.avg_comm_volume(), mk.avg_comm_volume());
}

TEST(Ordering, WeakScaling2DGrowsWhile25DStaysFlat) {
  // Figure 8b: per-rank volume under weak scaling (N = 3200 * P^{1/3}).
  double prev_2d = 0.0;
  double first_conflux = 0.0, last_conflux = 0.0;
  for (const int p : {8, 64, 512}) {
    const auto n = static_cast<index_t>(3200.0 * std::cbrt(static_cast<double>(p)));
    const grid::Grid3D g3 = grid::choose_grid(p, static_cast<double>(n), 1e18);
    const double mem = static_cast<double>(g3.pz()) * static_cast<double>(n) *
                       static_cast<double>(n) / p;
    xsim::Machine mc = make_machine(p, mem, xsim::ExecMode::Trace);
    factor::FactorOptions fopt;
    fopt.block_size = 8 * g3.pz();
    factor::conflux_lu_trace(mc, g3, n, fopt);
    xsim::Machine mm = make_machine(p, mem, xsim::ExecMode::Trace);
    scalapack_lu_trace(mm, grid::choose_grid_2d(p), n,
                       Baseline2DOptions{.block_size = 64});
    if (first_conflux == 0.0) first_conflux = mc.avg_comm_volume();
    last_conflux = mc.avg_comm_volume();
    EXPECT_GT(mm.avg_comm_volume(), prev_2d);  // 2D volume keeps growing
    prev_2d = mm.avg_comm_volume();
  }
  // 2.5D stays within a small factor across the sweep (paper: "retain
  // constant communication volume per processor").
  EXPECT_LT(last_conflux / first_conflux, 2.5);
}

TEST(TraceReal2D, ScalapackCholeskyCountersMatch) {
  const index_t n = 96;
  const grid::Grid2D g{2, 2};
  xsim::Machine real = make_machine(4, 1e9, xsim::ExecMode::Real);
  xsim::Machine trace = make_machine(4, 1e9, xsim::ExecMode::Trace);
  const MatrixD a = random_spd_matrix(n, 51);
  scalapack_cholesky(real, g, a.view(), Baseline2DOptions{.block_size = 16});
  scalapack_cholesky_trace(trace, g, n, Baseline2DOptions{.block_size = 16});
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(real.counters(r).words_sent, trace.counters(r).words_sent);
    EXPECT_DOUBLE_EQ(real.counters(r).flops, trace.counters(r).flops);
  }
}

TEST(TraceReal2D, ScalapackLuTotalsMatchExceptSwapNoise) {
  // LU swap traffic depends on pivot positions (data-driven vs random), so
  // totals agree to the swap-volume scale, not exactly.
  const index_t n = 128;
  const grid::Grid2D g{2, 2};
  xsim::Machine real = make_machine(4, 1e9, xsim::ExecMode::Real);
  xsim::Machine trace = make_machine(4, 1e9, xsim::ExecMode::Trace);
  const MatrixD a = random_matrix(n, n, 61);
  scalapack_lu(real, g, a.view(), Baseline2DOptions{.block_size = 16});
  scalapack_lu_trace(trace, g, n, Baseline2DOptions{.block_size = 16});
  EXPECT_NEAR(real.total_words_received(), trace.total_words_received(),
              0.2 * real.total_words_received());
}

}  // namespace
}  // namespace conflux::baselines
