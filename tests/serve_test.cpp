// Solve-service concurrency proof (ISSUE 9): a deterministic multi-client
// harness over serve::SolveService asserting the service's four core
// contracts under real concurrent load:
//
//   1. determinism — every response a concurrent client receives is BITWISE
//      equal to the serial single-tenant golden for the same request (fixed
//      per-client seeds, no barriers: clients race freely and the answers
//      may not depend on the interleaving);
//   2. cache transparency — a cache-hit response is bitwise identical to
//      the cold-miss response for the same content, and eviction under a
//      tiny budget never corrupts an in-flight solve;
//   3. back-pressure and cancellation — a full priority class rejects at
//      admission with kAdmissionRejected, cancelling a queued request frees
//      its slot, and neither wedges the pool;
//   4. tenant isolation — with a fault site armed, only the tenant whose
//      request actually factors degrades; cached tenants keep their bitwise
//      goldens and the pool serves subsequent requests cleanly.
//
// The pool runs with 2 threads (pinned before first use) so lease handoff
// and executor contention are real, and small sizes keep the whole file
// ASan/UBSan-friendly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "tensor/example_problems.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

using serve::Method;
using serve::Precision;
using serve::Priority;
using serve::ServiceOptions;
using serve::SolveRequest;
using serve::SolveResponse;
using serve::SolveService;

// CONFLUX_POOL_THREADS is read once at the pool's first width() call; pin
// it before any test via a file-scope initializer (fault_injection_test
// idiom) so the lease serializes real multi-threaded masters.
const bool g_pool_env = [] {
  ::setenv("CONFLUX_POOL_THREADS", "2", /*overwrite=*/1);
  return true;
}();

ServiceOptions test_options(int threads, int queue_depth = 64) {
  ServiceOptions opt;
  opt.threads = threads;
  opt.queue_depth = queue_depth;
  opt.cache_words = 16.0 * 1024.0 * 1024.0;
  opt.factor.block_size = 16;
  return opt;
}

/// The deterministic request universe the clients draw from: a few
/// workload-shaped SPD matrices (usable by LU and Cholesky alike) in
/// several sizes, plus matching RHS panels.
struct Problem {
  MatrixD a;
  MatrixD b;
};

const std::vector<Problem>& problems() {
  static const std::vector<Problem> probs = [] {
    std::vector<Problem> out;
    const index_t sizes[] = {48, 64, 80};
    for (int i = 0; i < 3; ++i) {
      Problem p;
      p.a = kfac_kronecker_factor(sizes[i], /*seed=*/100 + i);
      p.b = random_matrix(sizes[i], 3, /*seed=*/200 + i);
      out.push_back(std::move(p));
    }
    return out;
  }();
  return probs;
}

SolveRequest make_request(int problem, Method method, Precision precision,
                          std::uint64_t tenant) {
  SolveRequest req;
  req.method = method;
  req.precision = precision;
  req.a = problems()[static_cast<std::size_t>(problem)].a.view();
  req.b = problems()[static_cast<std::size_t>(problem)].b.view();
  req.tenant = tenant;
  return req;
}

void expect_bitwise(const SolveResponse& got, const SolveResponse& golden,
                    const char* what) {
  ASSERT_TRUE(got.ok()) << what << ": " << got.status.to_string();
  ASSERT_TRUE(golden.ok()) << what << " golden: " << golden.status.to_string();
  ASSERT_EQ(got.key, golden.key) << what << ": cache keys must agree";
  ASSERT_EQ(got.x, golden.x) << what << ": responses must be bitwise equal";
}

// --------------------------------------------------------------------------
// 1. Concurrent clients vs serial goldens.
// --------------------------------------------------------------------------

TEST(ServeConcurrency, FourClientsMatchSerialGoldensBitwise) {
  const ServiceOptions opt = test_options(/*threads=*/4);

  // Request mix: every (problem, method, precision) combination the clients
  // can draw. Goldens computed serially, before any service exists.
  struct Combo {
    int problem;
    Method method;
    Precision precision;
  };
  std::vector<Combo> combos;
  for (int p = 0; p < 3; ++p) {
    combos.push_back({p, Method::kLu, Precision::kFp64});
    combos.push_back({p, Method::kCholesky, Precision::kFp64});
    combos.push_back({p, Method::kLu, Precision::kMixed});
    combos.push_back({p, Method::kCholesky, Precision::kMixed});
  }
  std::vector<SolveResponse> goldens;
  for (const Combo& c : combos) {
    goldens.push_back(SolveService::solve_serial(
        make_request(c.problem, c.method, c.precision, /*tenant=*/999), opt));
    ASSERT_TRUE(goldens.back().ok())
        << "serial golden " << goldens.back().status.to_string();
  }

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 9;
  SolveService service(opt);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  // Responses collected per client (fixed seeds, so each client's request
  // sequence is deterministic regardless of scheduling).
  std::vector<std::vector<std::pair<int, SolveResponse>>> received(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(7000 + c));  // per-client seed
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int pick = static_cast<int>(
            rng.uniform_int(static_cast<std::uint64_t>(combos.size())));
        const Combo& combo = combos[static_cast<std::size_t>(pick)];
        SolveRequest req = make_request(combo.problem, combo.method,
                                        combo.precision,
                                        static_cast<std::uint64_t>(c));
        req.priority = static_cast<Priority>(r % 3);
        SolveResponse resp = service.solve(req);
        if (!resp.ok()) failures.fetch_add(1);
        received[static_cast<std::size_t>(c)].emplace_back(pick,
                                                           std::move(resp));
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  for (int c = 0; c < kClients; ++c) {
    for (const auto& [pick, resp] : received[static_cast<std::size_t>(c)]) {
      expect_bitwise(resp, goldens[static_cast<std::size_t>(pick)],
                     "concurrent client response");
    }
  }

  // The mix repeats combos across clients, so the cache must have served
  // some of the traffic — and every hit above was bitwise-checked.
  const SolveService::Stats stats = service.stats();
  EXPECT_GT(stats.cache.hits, 0);
  EXPECT_GT(stats.cache.misses, 0);
  EXPECT_EQ(stats.failed, 0);
}

// --------------------------------------------------------------------------
// 2. Cache transparency.
// --------------------------------------------------------------------------

TEST(ServeCache, HitIsBitwiseIdenticalToColdMiss) {
  SolveService service(test_options(/*threads=*/1));
  const SolveRequest req =
      make_request(0, Method::kLu, Precision::kFp64, /*tenant=*/1);

  const SolveResponse cold = service.solve(req);
  ASSERT_TRUE(cold.ok()) << cold.status.to_string();
  EXPECT_FALSE(cold.cache_hit);

  const SolveResponse hot = service.solve(req);
  ASSERT_TRUE(hot.ok()) << hot.status.to_string();
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(hot.x, cold.x) << "cache hit must reproduce the cold solve bitwise";
  EXPECT_EQ(hot.key, cold.key);

  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.cache.misses, 1);
  EXPECT_EQ(stats.cache.hits, 1);
}

TEST(ServeCache, MixedPrecisionHitRefinesAgainstCachedFp32Factors) {
  SolveService service(test_options(/*threads=*/1));
  const SolveRequest req =
      make_request(1, Method::kCholesky, Precision::kMixed, /*tenant=*/2);

  const SolveResponse cold = service.solve(req);
  ASSERT_TRUE(cold.ok()) << cold.status.to_string();
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_FALSE(cold.fp64_fallback);
  EXPECT_LE(cold.backward_error, 1e-13);

  const SolveResponse hot = service.solve(req);
  ASSERT_TRUE(hot.ok()) << hot.status.to_string();
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(hot.ir_steps, cold.ir_steps);
  EXPECT_EQ(hot.x, cold.x)
      << "refinement against cached fp32 factors must be bitwise reproducible";
}

TEST(ServeCache, EvictionUnderPressureNeverCorruptsInFlightSolves) {
  // Budget fits roughly ONE factor handle, so every new content evicts the
  // previous tenant's entry while that tenant may still be mid-solve.
  ServiceOptions opt = test_options(/*threads=*/4);
  opt.cache_words = 7000.0;  // one 80x80 fp64 handle ~ 6.4k words

  std::vector<SolveResponse> goldens;
  for (int p = 0; p < 3; ++p) {
    goldens.push_back(SolveService::solve_serial(
        make_request(p, Method::kCholesky, Precision::kFp64, 0), opt));
    ASSERT_TRUE(goldens.back().ok());
  }

  SolveService service(opt);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < 8; ++r) {
        const int p = (c + r) % 3;  // clients rotate out of phase
        const SolveResponse resp = service.solve(make_request(
            p, Method::kCholesky, Precision::kFp64,
            static_cast<std::uint64_t>(c)));
        ASSERT_TRUE(resp.ok()) << resp.status.to_string();
        ASSERT_EQ(resp.x, goldens[static_cast<std::size_t>(p)].x)
            << "eviction traffic corrupted a response";
      }
    });
  }
  for (auto& t : clients) t.join();

  const SolveService::Stats stats = service.stats();
  EXPECT_GT(stats.cache.evictions, 0)
      << "budget was meant to force eviction traffic";
  EXPECT_LE(stats.cache.resident_words, 7000.0);
}

// --------------------------------------------------------------------------
// 3. Admission, priority, cancellation.
// --------------------------------------------------------------------------

TEST(ServeAdmission, FullClassRejectsAndCancellationFreesTheSlot) {
  // One executor, one slot per class: the blocker (interactive class)
  // occupies the executor, then the normal class's single slot fills.
  ServiceOptions opt = test_options(/*threads=*/1, /*queue_depth=*/1);
  SolveService service(opt);

  const MatrixD big = kfac_kronecker_factor(384, /*seed=*/11);
  const MatrixD bigb = random_matrix(384, 2, /*seed=*/12);
  SolveRequest blocker;
  blocker.method = Method::kCholesky;
  blocker.priority = Priority::kInteractive;
  blocker.a = big.view();
  blocker.b = bigb.view();
  SolveService::Ticket blocker_ticket = service.submit(blocker);

  SolveRequest normal = make_request(0, Method::kLu, Precision::kFp64, 20);
  SolveService::Ticket queued = service.submit(normal);   // fills the slot
  SolveService::Ticket rejected = service.submit(normal); // class is full
  SolveResponse rejected_resp = service.wait(rejected);
  EXPECT_EQ(rejected_resp.status.code(), StatusCode::kAdmissionRejected);

  // Cancelling the queued request frees the slot immediately...
  EXPECT_TRUE(service.cancel(queued));
  SolveResponse cancelled_resp = service.wait(queued);
  EXPECT_EQ(cancelled_resp.status.code(), StatusCode::kCancelled);

  // ...so the same class admits again, and everything completes cleanly.
  SolveService::Ticket readmitted = service.submit(normal);
  const SolveResponse ok_resp = service.wait(readmitted);
  ASSERT_TRUE(ok_resp.ok()) << ok_resp.status.to_string();
  const SolveResponse blocker_resp = service.wait(blocker_ticket);
  ASSERT_TRUE(blocker_resp.ok()) << blocker_resp.status.to_string();

  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.admission_rejected, 1);
  EXPECT_EQ(stats.cancelled, 1);
}

TEST(ServeAdmission, InteractiveOvertakesBatchInTheQueue) {
  ServiceOptions opt = test_options(/*threads=*/1, /*queue_depth=*/4);
  SolveService service(opt);

  const MatrixD big = kfac_kronecker_factor(320, /*seed=*/13);
  SolveRequest blocker;
  blocker.method = Method::kCholesky;
  blocker.priority = Priority::kInteractive;
  blocker.a = big.view();
  SolveService::Ticket blocker_ticket = service.submit(blocker);

  SolveRequest batch = make_request(0, Method::kCholesky, Precision::kFp64, 30);
  batch.priority = Priority::kBatch;
  SolveRequest interactive =
      make_request(1, Method::kCholesky, Precision::kFp64, 31);
  interactive.priority = Priority::kInteractive;

  // Batch is submitted FIRST but must start after the interactive request:
  // its time-in-queue must cover the interactive request's queue + service.
  SolveService::Ticket batch_ticket = service.submit(batch);
  SolveService::Ticket inter_ticket = service.submit(interactive);
  const SolveResponse inter_resp = service.wait(inter_ticket);
  const SolveResponse batch_resp = service.wait(batch_ticket);
  ASSERT_TRUE(inter_resp.ok());
  ASSERT_TRUE(batch_resp.ok());
  EXPECT_GE(batch_resp.queue_s, inter_resp.queue_s + inter_resp.factor_s)
      << "batch request must not start before the interactive one finishes";
  (void)service.wait(blocker_ticket);
}

TEST(ServeAdmission, MalformedRequestIsClassifiedNotExecuted) {
  SolveService service(test_options(/*threads=*/1));
  const MatrixD rect = random_matrix(8, 6, 1);
  SolveRequest req;
  req.a = rect.view();
  const SolveResponse resp = service.solve(req);
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
}

TEST(ServeAdmission, FactorOnlyWarmupThenSolveHitsTheCache) {
  SolveService service(test_options(/*threads=*/1));
  SolveRequest warm = make_request(2, Method::kLu, Precision::kFp64, 40);
  warm.b = ConstViewD();  // nrhs = 0: factor-only warmup
  const SolveResponse warm_resp = service.solve(warm);
  ASSERT_TRUE(warm_resp.ok()) << warm_resp.status.to_string();
  EXPECT_EQ(warm_resp.x.cols(), 0);
  EXPECT_FALSE(warm_resp.cache_hit);

  const SolveResponse solved =
      service.solve(make_request(2, Method::kLu, Precision::kFp64, 40));
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(solved.cache_hit) << "the warmup must have populated the cache";
}

TEST(ServeAdmission, DestructionResolvesQueuedRequestsAsCancelled) {
  SolveService::Ticket queued;
  {
    SolveService service(test_options(/*threads=*/1, /*queue_depth=*/4));
    const MatrixD big = kfac_kronecker_factor(320, /*seed=*/14);
    SolveRequest blocker;
    blocker.method = Method::kCholesky;
    blocker.a = big.view();
    SolveService::Ticket blocker_ticket = service.submit(blocker);
    queued = service.submit(make_request(0, Method::kLu, Precision::kFp64, 50));
    // Service destructs here: the blocker completes, the queued request
    // must resolve (as cancelled), and no waiter may wedge.
    const SolveResponse blocker_resp = service.wait(blocker_ticket);
    ASSERT_TRUE(blocker_resp.ok());
  }
  SolveService stub(test_options(1));  // unrelated service; ticket outlives its service
  SolveResponse resp;
  {
    // wait() only touches the request state, which the ticket keeps alive.
    SolveService::Ticket t = std::move(queued);
    resp = stub.wait(t);
  }
  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled);
}

// --------------------------------------------------------------------------
// 4. Fault injection: the failing tenant is the only casualty.
// --------------------------------------------------------------------------

TEST(ServeFaults, InjectedTenantDegradesAloneAndServiceRecovers) {
  const ServiceOptions opt = test_options(/*threads=*/2);

  // Tenants B, C, D: goldens + a warm cache, faults off.
  std::vector<SolveResponse> goldens;
  for (int p = 0; p < 3; ++p) {
    goldens.push_back(SolveService::solve_serial(
        make_request(p, Method::kCholesky, Precision::kFp64, 0), opt));
    ASSERT_TRUE(goldens.back().ok());
  }
  SolveService service(opt);
  for (int p = 0; p < 3; ++p) {
    const SolveResponse warm = service.solve(
        make_request(p, Method::kCholesky, Precision::kFp64, 60));
    ASSERT_TRUE(warm.ok()) << warm.status.to_string();
  }

  // Tenant A's matrix is new content: serving it must factor, and with the
  // panel-nan site at rate 1 that factorization MUST fail classified.
  const MatrixD fresh = kfac_kronecker_factor(64, /*seed=*/999);
  SolveRequest doomed;
  doomed.method = Method::kCholesky;
  doomed.a = fresh.view();
  doomed.tenant = 666;
  {
    fault::Config cfg;
    cfg.seed = 1;
    cfg.rate = 1.0;
    cfg.site_mask = 1u << static_cast<int>(fault::Site::kPanelNaN);
    fault::ScopedConfig scoped(cfg);

    std::thread attacker([&] {
      const SolveResponse resp = service.solve(doomed);
      EXPECT_FALSE(resp.ok()) << "armed panel-nan must fail the cold factor";
      EXPECT_EQ(resp.status.code(), StatusCode::kNonFinite)
          << resp.status.to_string();
      EXPECT_EQ(resp.x.rows(), 0) << "a failed factor yields no solution";
    });
    // Concurrently, the cached tenants keep their bitwise goldens: their
    // requests never factor, so the armed site cannot touch them.
    std::vector<std::thread> bystanders;
    for (int p = 0; p < 3; ++p) {
      bystanders.emplace_back([&, p] {
        for (int r = 0; r < 4; ++r) {
          const SolveResponse resp = service.solve(
              make_request(p, Method::kCholesky, Precision::kFp64, 60));
          ASSERT_TRUE(resp.ok()) << resp.status.to_string();
          ASSERT_TRUE(resp.cache_hit);
          ASSERT_EQ(resp.x, goldens[static_cast<std::size_t>(p)].x)
              << "a bystander tenant's response changed under injection";
        }
      });
    }
    attacker.join();
    for (auto& t : bystanders) t.join();
  }

  // Faults disarmed: the pool and service must serve tenant A's content
  // cleanly — the earlier failure poisoned nothing.
  const SolveResponse after = service.solve(doomed);
  ASSERT_TRUE(after.ok()) << after.status.to_string();
  const SolveResponse after_golden = SolveService::solve_serial(doomed, opt);
  EXPECT_EQ(after.x, after_golden.x);

  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.failed, 1);  // tenant A's injected request, nothing else
}

}  // namespace
}  // namespace conflux
