#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "blas/tuning.hpp"
#include "serve/fingerprint.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

TEST(Check, ExpectsPassesOnTrue) { EXPECT_NO_THROW(expects(true)); }

TEST(Check, ExpectsThrowsContractErrorWithMessage) {
  try {
    expects(false, "bad argument");
    FAIL() << "expects(false) must throw";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad argument"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Expects"), std::string::npos);
  }
}

TEST(Check, EnsuresAndCheckThrowDistinctKinds) {
  try {
    ensures(false, "post");
    FAIL();
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("Ensures"), std::string::npos);
  }
  try {
    check(false, "inv");
    FAIL();
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("Check"), std::string::npos);
  }
}

TEST(Check, UnreachableAlwaysThrows) {
  EXPECT_THROW(unreachable("should not get here"), contract_error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t n = 10;
  std::array<int, n> counts{};
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.uniform_int(n);
    ASSERT_LT(v, n);
    counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / static_cast<int>(n), draws / 100);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(0), contract_error);
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, ReseedReproducesStream) {
  Rng rng(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng());
  rng.reseed(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

TEST(Table, PrintsAlignedColumnsWithHeader) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({std::string("x"), 42LL});
  t.add_row({std::string("longer"), 3.5});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.5"), std::string::npos);
}

TEST(Table, RowWidthMismatchIsRejected) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), contract_error);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  TextTable t;
  t.set_header({"k"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("q\"q")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"q\"\"q\""), std::string::npos);
}

TEST(Table, HumanCountUsesBinarySuffixes) {
  EXPECT_EQ(human_count(512), "512.00 ");
  EXPECT_EQ(human_count(2048), "2.00 Ki");
  EXPECT_EQ(human_count(3.0 * 1024 * 1024), "3.00 Mi");
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--verbose", "--ratio=0.5"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(cli.get_string("missing", "dflt"), "dflt");
  EXPECT_NO_THROW(cli.check_unused());
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), contract_error);
}

TEST(Cli, CheckUnusedFlagsUnknownOptions) {
  const char* argv[] = {"prog", "--typo=3"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.check_unused(), contract_error);
}

// ------------------------------------------------- matrix fingerprints ----
// The solve service's cache key (ISSUE 9 satellite): content-only across
// layouts and execution configuration, bit-sensitive to one-ulp changes,
// and O(n^2) single-pass with its cost metered under serve.fingerprint.*.

TEST(Fingerprint, ContentEqualMatricesHashEqualAcrossLayoutAndThreads) {
  const index_t n = 40;
  const MatrixD a = random_matrix(n, n, 81);
  const serve::Fingerprint base = serve::fingerprint(a.view());

  // Same content again: pure function of the bits.
  EXPECT_EQ(base, serve::fingerprint(a.view()));

  // A strided view of the same logical matrix (embedded in a wider buffer)
  // hashes identically — the leading dimension is not content.
  MatrixD wide(n, n + 9, 1.25);
  copy(a.view(), wide.block(0, 0, n, n));
  EXPECT_EQ(base, serve::fingerprint(
                      ConstViewD(wide.block(0, 0, n, n))));

  // Thread counts, pool width, pz — none of it feeds the hash: it is a
  // single-thread fold, so exercising it under a different BLAS thread
  // setting must change nothing.
  {
    xblas::ScopedThreadCap cap(1);
    EXPECT_EQ(base, serve::fingerprint(a.view()));
  }

  // Shape is content: the transpose-shaped view of a non-square buffer and
  // a different-size matrix must both miss.
  const MatrixD smaller = random_matrix(n - 1, n - 1, 81);
  EXPECT_FALSE(base == serve::fingerprint(smaller.view()));
}

TEST(Fingerprint, OneUlpPerturbationAndSignedZeroChangeTheKey) {
  const index_t n = 24;
  MatrixD a = random_matrix(n, n, 82);
  const serve::Fingerprint base = serve::fingerprint(a.view());

  const double saved = a(3, 5);
  a(3, 5) = std::nextafter(saved, 2.0 * saved + 1.0);  // one ulp
  EXPECT_FALSE(base == serve::fingerprint(a.view()))
      << "a one-ulp perturbation must change the cache key";
  a(3, 5) = saved;
  EXPECT_EQ(base, serve::fingerprint(a.view()));

  a(0, 0) = 0.0;
  const serve::Fingerprint plus_zero = serve::fingerprint(a.view());
  a(0, 0) = -0.0;
  EXPECT_FALSE(plus_zero == serve::fingerprint(a.view()))
      << "+0.0 and -0.0 are different bit patterns, so different keys";
}

TEST(Fingerprint, CombineIsOrderSensitiveAndPrecisionTagged) {
  const MatrixD a = random_matrix(8, 8, 83);
  const serve::Fingerprint base = serve::fingerprint(a.view());
  const serve::Fingerprint ab =
      serve::fingerprint_combine(serve::fingerprint_combine(base, 1), 2);
  const serve::Fingerprint ba =
      serve::fingerprint_combine(serve::fingerprint_combine(base, 2), 1);
  EXPECT_FALSE(ab == ba) << "key derivation must be order-sensitive";

  // An fp32 matrix never aliases an fp64 one, even with equal values.
  MatrixF a32(8, 8);
  convert<double, float>(a.view(), a32.view());
  MatrixD back(8, 8);
  convert<float, double>(ConstViewF(a32.view()), back.view());
  EXPECT_FALSE(serve::fingerprint(ConstViewF(a32.view())) ==
               serve::fingerprint(back.view()));

  EXPECT_EQ(base.hex().size(), 32u);
}

TEST(Fingerprint, SinglePassCostIsMeteredPerElement) {
  // The serve.fingerprint.elements counter must advance by exactly n*m per
  // hash — the observable proof that hashing reads each element once.
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  metrics::reset();
  const MatrixD a = random_matrix(32, 32, 84);
  (void)serve::fingerprint(a.view());
  const MatrixD b = random_matrix(16, 16, 85);
  (void)serve::fingerprint(b.view());
  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.value("serve.fingerprint.matrices"), 2.0);
  EXPECT_EQ(snap.value("serve.fingerprint.elements"),
            32.0 * 32.0 + 16.0 * 16.0);
  EXPECT_GE(snap.value("serve.fingerprint.seconds"), 0.0);
  metrics::set_enabled(was_enabled);
}

}  // namespace
}  // namespace conflux
