#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace conflux {
namespace {

TEST(Check, ExpectsPassesOnTrue) { EXPECT_NO_THROW(expects(true)); }

TEST(Check, ExpectsThrowsContractErrorWithMessage) {
  try {
    expects(false, "bad argument");
    FAIL() << "expects(false) must throw";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad argument"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Expects"), std::string::npos);
  }
}

TEST(Check, EnsuresAndCheckThrowDistinctKinds) {
  try {
    ensures(false, "post");
    FAIL();
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("Ensures"), std::string::npos);
  }
  try {
    check(false, "inv");
    FAIL();
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("Check"), std::string::npos);
  }
}

TEST(Check, UnreachableAlwaysThrows) {
  EXPECT_THROW(unreachable("should not get here"), contract_error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t n = 10;
  std::array<int, n> counts{};
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.uniform_int(n);
    ASSERT_LT(v, n);
    counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / static_cast<int>(n), draws / 100);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(0), contract_error);
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, ReseedReproducesStream) {
  Rng rng(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng());
  rng.reseed(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

TEST(Table, PrintsAlignedColumnsWithHeader) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({std::string("x"), 42LL});
  t.add_row({std::string("longer"), 3.5});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.5"), std::string::npos);
}

TEST(Table, RowWidthMismatchIsRejected) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), contract_error);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  TextTable t;
  t.set_header({"k"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("q\"q")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"q\"\"q\""), std::string::npos);
}

TEST(Table, HumanCountUsesBinarySuffixes) {
  EXPECT_EQ(human_count(512), "512.00 ");
  EXPECT_EQ(human_count(2048), "2.00 Ki");
  EXPECT_EQ(human_count(3.0 * 1024 * 1024), "3.00 Mi");
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--verbose", "--ratio=0.5"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(cli.get_string("missing", "dflt"), "dflt");
  EXPECT_NO_THROW(cli.check_unused());
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), contract_error);
}

TEST(Cli, CheckUnusedFlagsUnknownOptions) {
  const char* argv[] = {"prog", "--typo=3"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.check_unused(), contract_error);
}

}  // namespace
}  // namespace conflux
