// Backward-error / growth-factor stress tests for tournament pivoting
// (ISSUE 4): adversarial inputs where naive pivoting falls over —
// Wilkinson's growth matrix (element growth 2^(n-1) under partial
// pivoting), near-singular systems, and badly row-scaled systems. All
// assertions are residual/growth BOUNDS, never bitwise comparisons: the
// tournament legitimately picks different pivots than partial pivoting, and
// on these matrices even tiny pivot differences reshuffle the factors.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "blas/lapack.hpp"
#include "factor/conflux_lu.hpp"
#include "factor/mixed.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

using factor::FactorOptions;
using factor::LuResultT;

xsim::Machine real_machine(int ranks) {
  xsim::MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = 1e9;
  return xsim::Machine(spec, xsim::ExecMode::Real);
}

/// Wilkinson's growth matrix: unit diagonal, -1 strictly below, last column
/// +1. Partial pivoting never swaps and the last column doubles every step:
/// element growth 2^(n-1), the classical worst case.
MatrixD wilkinson_matrix(index_t n) {
  MatrixD w(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    w(i, i) = 1.0;
    for (index_t j = 0; j < i; ++j) w(i, j) = -1.0;
    w(i, n - 1) = 1.0;
  }
  return w;
}

/// Growth factor of an LU result: max |u_ij| / max |a_ij| over the upper
/// factor (the standard g_pp definition restricted to U, which is where the
/// growth shows up).
template <typename T>
double growth_factor(ConstMatrixView<T> a, ConstMatrixView<T> factors) {
  double amax = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      amax = std::max(amax, std::abs(static_cast<double>(a(i, j))));
    }
  }
  double umax = 0.0;
  for (index_t i = 0; i < factors.rows(); ++i) {
    for (index_t j = i; j < factors.cols(); ++j) {
      umax = std::max(umax, std::abs(static_cast<double>(factors(i, j))));
    }
  }
  return amax > 0.0 ? umax / amax : 0.0;
}

/// ||PA - LU||_F / ||A||_F, unscaled by eps (the growth tests need the raw
/// relative residual so they can charge it against the measured growth).
template <typename T>
double relative_residual(ConstMatrixView<T> a, const LuResultT<T>& lu) {
  return xblas::lu_residual(a, lu.factors.view(), lu.perm) *
         static_cast<double>(a.rows()) *
         static_cast<double>(std::numeric_limits<T>::epsilon());
}

template <typename T>
LuResultT<T> factor_3d(ConstMatrixView<T> a, int px, int py, int pz, index_t v) {
  const grid::Grid3D g(px, py, pz);
  xsim::Machine m = real_machine(g.ranks());
  FactorOptions opt;
  opt.block_size = v;
  return factor::conflux_lu(m, g, a, opt);
}

template <typename T>
Result<LuResultT<T>> try_factor_3d(ConstMatrixView<T> a, int px, int py, int pz,
                                   index_t v, FactorOptions opt = {}) {
  const grid::Grid3D g(px, py, pz);
  xsim::Machine m = real_machine(g.ranks());
  opt.block_size = v;
  return factor::try_conflux_lu(m, g, a, opt);
}

// ----------------------------------------------------- Wilkinson growth ----

TEST(PivotingStress, WilkinsonGrowthFp64) {
  const index_t n = 40;  // growth 2^39 ~ 5.5e11: large but far from 1/eps64
  const MatrixD a = wilkinson_matrix(n);
  const auto lu = factor_3d<double>(a.view(), 2, 2, 1, 8);

  const double growth = growth_factor<double>(a.view(), lu.factors.view());
  // Tournament pivoting's theoretical growth bound is exponential like
  // partial pivoting's; what we pin is that it does not EXCEED the 2^(n-1)
  // envelope by more than a small factor on the canonical worst case.
  EXPECT_LE(growth, 4.0 * std::ldexp(1.0, static_cast<int>(n - 1)));
  EXPECT_GE(growth, 1.0);

  // Backward stability with growth factored in: the raw relative residual
  // is bounded by c * n * eps * growth.
  const double bound = 50.0 * static_cast<double>(n) *
                       std::numeric_limits<double>::epsilon() * std::max(growth, 1.0);
  EXPECT_LE(relative_residual<double>(a.view(), lu), bound);
}

TEST(PivotingStress, WilkinsonGrowthFp32) {
  const index_t n = 16;  // growth 2^15 ~ 3.3e4: survivable in fp32
  MatrixF a(n, n);
  const MatrixD a64 = wilkinson_matrix(n);
  convert<double, float>(a64.view(), a.view());
  const auto lu = factor_3d<float>(a.view(), 2, 2, 1, 8);

  const double growth = growth_factor<float>(a.view(), lu.factors.view());
  EXPECT_LE(growth, 4.0 * std::ldexp(1.0, static_cast<int>(n - 1)));
  const double bound = 50.0 * static_cast<double>(n) *
                       static_cast<double>(std::numeric_limits<float>::epsilon()) *
                       std::max(growth, 1.0);
  EXPECT_LE(relative_residual<float>(a.view(), lu), bound);
}

// ------------------------------------------------------- near-singular ----

TEST(PivotingStress, NearSingularStaysBackwardStable) {
  // Row n-1 is a linear combination of two other rows plus an O(1e-13)
  // perturbation: cond(A) ~ 1e13. Backward stability does NOT depend on
  // conditioning — the residual bound must hold even though any forward
  // error bound is vacuous here.
  const index_t n = 96;
  MatrixD a = random_matrix(n, n, 4242);
  for (index_t j = 0; j < n; ++j) {
    a(n - 1, j) = 0.5 * a(0, j) - 2.0 * a(1, j) + 1e-13 * a(2, j);
  }
  for (const int px : {2, 4}) {
    const auto lu = factor_3d<double>(a.view(), px, 2, 1, 16);
    ASSERT_EQ(static_cast<index_t>(lu.perm.size()), n);
    EXPECT_LT(xblas::lu_residual(a.view(), lu.factors.view(), lu.perm), 500.0)
        << "px=" << px;
  }
}

TEST(PivotingStress, ExactlySingularStillFactors) {
  // Duplicate row: the matrix is exactly rank n-1. The factorization must
  // complete with a bijective permutation and a finite, backward-stable
  // residual (the zero pivot lands in U's last diagonal entry).
  const index_t n = 64;
  MatrixD a = random_matrix(n, n, 555);
  for (index_t j = 0; j < n; ++j) a(n - 1, j) = a(3, j);
  const auto lu = factor_3d<double>(a.view(), 2, 2, 2, 16);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t r : lu.perm) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, n);
    EXPECT_FALSE(seen[static_cast<std::size_t>(r)]);
    seen[static_cast<std::size_t>(r)] = true;
  }
  EXPECT_LT(xblas::lu_residual(a.view(), lu.factors.view(), lu.perm), 500.0);
}

// --------------------------------------- breakdown classification (ISSUE 6) --

TEST(PivotingStress, NanInputClassifiedNonFinite) {
  // NaN contamination must be caught by the input scan — a HARD failure with
  // a precise code, never a silently-NaN factorization.
  const index_t n = 64;
  MatrixD a = random_matrix(n, n, 777);
  a(n / 2, n / 3) = std::numeric_limits<double>::quiet_NaN();
  const auto r = try_factor_3d<double>(a.view(), 2, 2, 1, 16);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), StatusCode::kNonFinite);

  // Inf classifies identically (the scan is !isfinite, not isnan).
  MatrixD b = random_matrix(n, n, 778);
  b(0, 0) = std::numeric_limits<double>::infinity();
  const auto r2 = try_factor_3d<double>(b.view(), 2, 2, 1, 16);
  EXPECT_FALSE(r2.has_value());
  EXPECT_EQ(r2.status().code(), StatusCode::kNonFinite);
}

TEST(PivotingStress, ExactSingularityPinsStatusAndHealth) {
  // Duplicate row (rank n-1): the zero pivot surfaces at the LAST
  // elimination step, so the breakdown is SOFT — completed factors plus a
  // kSingularPivot classification, LAPACK info > 0 semantics.
  const index_t n = 64;
  MatrixD a = random_matrix(n, n, 555);
  for (index_t j = 0; j < n; ++j) a(n - 1, j) = a(3, j);
  const auto r = try_factor_3d<double>(a.view(), 2, 2, 2, 16);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r.ok());  // degraded, not failed
  EXPECT_EQ(r.status().code(), StatusCode::kSingularPivot);
  const auto& health = r.value().health;
  EXPECT_EQ(health.code, StatusCode::kSingularPivot);
  EXPECT_EQ(health.singular_pivots, 1);
  EXPECT_EQ(health.min_pivot, 0.0);
  EXPECT_EQ(health.first_breakdown_step, (n / 16) - 1);  // last outer step
  // The degraded factors are still backward-stable.
  EXPECT_LT(xblas::lu_residual(a.view(), r.value().factors.view(),
                               r.value().perm),
            500.0);
}

TEST(PivotingStress, NearSingularToleranceIsOptIn) {
  // Default (tolerance 0): only exact zeros flag, so the 1e-13-perturbed
  // system stays kOk. With an explicit pivot_tolerance the same run degrades
  // to kNearSingularPivot — detection must be read-only (identical factors).
  const index_t n = 96;
  MatrixD a = random_matrix(n, n, 4242);
  for (index_t j = 0; j < n; ++j) {
    a(n - 1, j) = 0.5 * a(0, j) - 2.0 * a(1, j) + 1e-13 * a(2, j);
  }
  const auto r_default = try_factor_3d<double>(a.view(), 2, 2, 1, 16);
  ASSERT_TRUE(r_default.has_value());
  EXPECT_TRUE(r_default.ok());
  EXPECT_GT(r_default.value().health.min_pivot, 0.0);

  FactorOptions opt;
  opt.pivot_tolerance = 1e-8;  // relative to max|A|; cond ~ 1e13 trips this
  const auto r_tol = try_factor_3d<double>(a.view(), 2, 2, 1, 16, opt);
  ASSERT_TRUE(r_tol.has_value());
  EXPECT_FALSE(r_tol.ok());
  EXPECT_EQ(r_tol.status().code(), StatusCode::kNearSingularPivot);
  EXPECT_GE(r_tol.value().health.near_singular_pivots, 1);
  // Read-only detection: bitwise-identical factors with and without it.
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_EQ(r_default.value().factors(i, j), r_tol.value().factors(i, j));
    }
  }
}

TEST(PivotingStress, GrowthOverflowClassifiedSoftly) {
  // Wilkinson growth 2^15 ~ 3.3e4 stays below the auto fp32 limit
  // (1/(8 eps32) ~ 1e6) but trips an explicit 1e3 budget: completed factors
  // plus kGrowthOverflow, with the measured growth surfaced in health.
  const index_t n = 16;
  MatrixF a(n, n);
  const MatrixD a64 = wilkinson_matrix(n);
  convert<double, float>(a64.view(), a.view());
  const auto r_auto = try_factor_3d<float>(a.view(), 2, 2, 1, 8);
  ASSERT_TRUE(r_auto.has_value());
  EXPECT_TRUE(r_auto.ok());

  FactorOptions opt;
  opt.growth_limit = 1e3;
  const auto r = try_factor_3d<float>(a.view(), 2, 2, 1, 8, opt);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kGrowthOverflow);
  EXPECT_GT(r.value().health.growth_factor, 1e3);
}

// ----------------------------------------- degradation ladder (ISSUE 6) ----

TEST(PivotingStress, IllConditionedSolveFallsBackToFp64) {
  // cond(A) ~ 1e10: fp32 refinement stagnates (cond * eps32 ~ 1e3 >> 1) but
  // the fp64 direct solve is backward-stable. The ladder must detect the
  // stagnation, engage the fp64 rung, and report both legs faithfully.
  const index_t n = 96;
  MatrixD a = random_matrix(n, n, 8080);
  for (index_t j = 0; j < n; ++j) {
    a(n - 1, j) = 0.5 * a(0, j) - 2.0 * a(1, j) + 1e-10 * a(2, j);
  }
  MatrixD b = random_matrix(n, 2, 8081);
  const MatrixD b0 = b;
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = real_machine(g.ranks());
  factor::MixedSolveOptions opt;
  opt.factor.block_size = 16;

  factor::reset_mixed_counters();
  const auto rep = factor::conflux_lu_solve_mixed_ex(m, g, a.view(), b.view(), opt);
  EXPECT_TRUE(rep.fp64_fallback);
  EXPECT_FALSE(rep.refine.converged);
  EXPECT_NE(rep.fallback_reason, StatusCode::kOk);
  EXPECT_EQ(rep.code, StatusCode::kOk);  // the fp64 rung delivered
  EXPECT_LT(rep.backward_error, 1e-12);
  EXPECT_LT(factor::solve_backward_error(a.view(), b.view(), b0.view()), 1e-12);

  const auto counters = factor::mixed_counters();
  EXPECT_EQ(counters.solves, 1);
  EXPECT_EQ(counters.fp64_fallbacks, 1);
}

TEST(PivotingStress, HealthySolveNeverFallsBack) {
  // The zero-fallbacks-on-healthy gate (also enforced in bench): a well
  // conditioned system must converge on the fp32 rung.
  const index_t n = 96;
  const MatrixD a = random_matrix(n, n, 9090);
  MatrixD b = random_matrix(n, 2, 9091);
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = real_machine(g.ranks());
  factor::MixedSolveOptions opt;
  opt.factor.block_size = 16;

  factor::reset_mixed_counters();
  const auto rep = factor::conflux_lu_solve_mixed_ex(m, g, a.view(), b.view(), opt);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.refine.converged);
  EXPECT_FALSE(rep.fp64_fallback);
  EXPECT_EQ(factor::mixed_counters().fp64_fallbacks, 0);
}

// ---------------------------------------------------- badly scaled rows ----

TEST(PivotingStress, BadlyScaledRowsRowwiseResidual) {
  // Rows scaled across 16 orders of magnitude. The normwise residual is
  // meaningless (the big rows drown it); the per-ROW relative residual
  // ||(PA - LU)_i|| / ||A_perm[i]|| is the honest backward-error metric and
  // must hold at c * n * eps for every row.
  const index_t n = 80;
  MatrixD a = random_matrix(n, n, 99);
  for (index_t i = 0; i < n; ++i) {
    const double scale = std::pow(10.0, (i % 2 == 0) ? 8.0 : -8.0);
    for (index_t j = 0; j < n; ++j) a(i, j) *= scale;
  }
  const auto lu = factor_3d<double>(a.view(), 2, 2, 2, 16);

  const MatrixD l = xblas::extract_lower_unit(lu.factors.view(), n);
  const MatrixD u = xblas::extract_upper(lu.factors.view(), n);
  MatrixD pa(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      pa(i, j) = a(lu.perm[static_cast<std::size_t>(i)], j);
    }
  }
  MatrixD arows = pa;  // keep PA for the per-row denominators
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, -1.0, l.view(), u.view(),
              1.0, pa.view());
  const double bound =
      100.0 * static_cast<double>(n) * std::numeric_limits<double>::epsilon();
  for (index_t i = 0; i < n; ++i) {
    double rnorm = 0.0;
    double anorm = 0.0;
    for (index_t j = 0; j < n; ++j) {
      rnorm = std::max(rnorm, std::abs(pa(i, j)));
      anorm = std::max(anorm, std::abs(arows(i, j)));
    }
    ASSERT_GT(anorm, 0.0);
    EXPECT_LT(rnorm / anorm, bound) << "row " << i;
  }
}

// -------------------------------------------- solve on stressed systems ----

TEST(PivotingStress, SolveOnScaledSystemBackwardStable) {
  // End-to-end: factor + multi-RHS solve of a scaled system; the solve's
  // residual scaled against |A||x| + |b| must stay at the eps level.
  const index_t n = 64;
  MatrixD a = random_matrix(n, n, 2026);
  for (index_t i = 0; i < n; ++i) {
    const double scale = std::pow(10.0, (i % 4 == 0) ? 6.0 : 0.0);
    for (index_t j = 0; j < n; ++j) a(i, j) *= scale;
  }
  MatrixD b = random_matrix(n, 2, 31);
  const MatrixD b0 = b;
  const auto lu = factor_3d<double>(a.view(), 2, 2, 1, 16);
  factor::conflux_lu_solve(lu, b.view());

  MatrixD r = b0;
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, -1.0, a.view(), b.view(),
              1.0, r.view());
  for (index_t j = 0; j < 2; ++j) {
    double rn = 0.0, scale = 0.0;
    for (index_t i = 0; i < n; ++i) {
      rn = std::max(rn, std::abs(r(i, j)));
      double ax = std::abs(b0(i, j));
      for (index_t k = 0; k < n; ++k) ax += std::abs(a(i, k)) * std::abs(b(k, j));
      scale = std::max(scale, ax);
    }
    EXPECT_LT(rn / scale,
              100.0 * static_cast<double>(n) * std::numeric_limits<double>::epsilon())
        << "rhs " << j;
  }
}

}  // namespace
}  // namespace conflux
