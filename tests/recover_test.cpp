// Recoverable factorization (DESIGN.md "Recovery model"): the three layers —
// bounded task retry, step-granular checkpoint/restart, ABFT checksum
// verification with re-execution — under deterministic fault injection.
// The contract everywhere is bitwise: a crash-resumed run, a retry-absorbed
// run, and an ABFT-recovered run all produce EXACTLY the factors of the
// undisturbed run, and a run with any recovery feature enabled but no fault
// injected is bitwise identical to one with the feature off.
//
// The pool runs with 2 threads (pinned before its first use) and every run
// uses lookahead, so retry and the step-boundary drains exercise the real
// pipelined path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "recover/options.hpp"
#include "recover/snapshot.hpp"
#include "sched/taskpool.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

using factor::CholResult;
using factor::FactorOptions;
using factor::LuResult;

const bool g_pool_env = [] {
  ::setenv("CONFLUX_POOL_THREADS", "2", /*overwrite=*/1);
  return true;
}();

constexpr index_t kN = 64;
constexpr index_t kV = 16;  // 4 outer steps per run

xsim::Machine fresh_machine() {
  xsim::MachineSpec spec;
  spec.num_ranks = 4;
  spec.memory_words = 1e9;
  return xsim::Machine(spec, xsim::ExecMode::Real);
}

FactorOptions options() {
  FactorOptions opt;
  opt.block_size = kV;
  opt.lookahead = 1;
  return opt;
}

const grid::Grid3D& grid221() {
  static const grid::Grid3D g(2, 2, 1);
  return g;
}

const MatrixD& lu_input() {
  static const MatrixD a = random_matrix(kN, kN, 20260808);
  return a;
}

const MatrixD& chol_input() {
  static const MatrixD a = random_spd_matrix(kN, 20260809);
  return a;
}

/// Golden results, computed with every recovery feature off and no faults.
const LuResult& golden_lu() {
  static const LuResult lu = [] {
    xsim::Machine m = fresh_machine();
    return factor::conflux_lu(m, grid221(), lu_input().view(), options());
  }();
  return lu;
}

const CholResult& golden_chol() {
  static const CholResult ch = [] {
    xsim::Machine m = fresh_machine();
    return factor::confchox(m, grid221(), chol_input().view(), options());
  }();
  return ch;
}

void expect_golden(const LuResult& lu, const std::string& what) {
  EXPECT_EQ(lu.perm, golden_lu().perm) << what;
  EXPECT_EQ(lu.factors, golden_lu().factors) << what;
}

void expect_golden(const CholResult& ch, const std::string& what) {
  EXPECT_EQ(ch.factors, golden_chol().factors) << what;
}

fault::Config site_config(fault::Site site, std::uint64_t seed, double rate) {
  fault::Config cfg;
  cfg.seed = seed;
  cfg.rate = rate;
  cfg.site_mask = 1u << static_cast<int>(site);
  return cfg;
}

/// Repro line for failures: the exact environment that replays this run.
std::string repro(const fault::Config& cfg, fault::Site site) {
  return "repro: CONFLUX_FAULT_SEED=" + std::to_string(cfg.seed) +
         " CONFLUX_FAULT_RATE=" + std::to_string(cfg.rate) +
         " CONFLUX_FAULT_SITES=" + fault::site_name(site);
}

double counter(const char* name) { return metrics::snapshot().value(name); }

/// RAII metrics enablement (the recover.* reconciliation needs live cells).
struct ScopedMetrics {
  bool was = metrics::enabled();
  ScopedMetrics() { metrics::set_enabled(true); }
  ~ScopedMetrics() { metrics::set_enabled(was); }
};

recover::SnapshotKey lu_key() {
  recover::SnapshotKey key;
  key.kind = recover::FactorKind::kLu;
  key.scalar = 'd';
  key.n = kN;
  key.v = kV;
  key.px = grid221().px();
  key.py = grid221().py();
  key.pz = grid221().pz();
  return key;
}

// ------------------------------------------------- crash/restart, LU -------

TEST(CrashRestart, LuCrashThenResumeIsBitwiseGolden) {
  golden_lu();
  recover::Options ro;
  ro.ckpt_every = 1;  // a snapshot precedes every possible crash point
  recover::ScopedOptions so(ro);
  int crashed = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const fault::Config cfg = site_config(fault::Site::kCrashAtStep, seed, 0.5);
    SCOPED_TRACE(repro(cfg, fault::Site::kCrashAtStep));
    recover::clear();
    Result<LuResult> r = [&] {
      fault::ScopedConfig scoped(cfg);
      xsim::Machine m = fresh_machine();
      return factor::try_conflux_lu(m, grid221(), lu_input().view(), options());
    }();
    if (r.ok()) {
      expect_golden(r.value(), "clean run under an armed crash site");
      continue;
    }
    ++crashed;
    ASSERT_EQ(r.status().code(), StatusCode::kCrashSimulated)
        << r.status().to_string();
    // The injection is disarmed (ScopedConfig left scope): resume replays
    // the tail of the schedule from the snapshot the crash left behind.
    xsim::Machine m2 = fresh_machine();
    const LuResult resumed =
        factor::resume_conflux_lu(m2, grid221(), lu_input().view(), options());
    expect_golden(resumed, "crash-resumed run");
  }
  EXPECT_GE(crashed, 12) << "crash site looks dead at rate 0.5";
}

TEST(CrashRestart, CholCrashThenResumeIsBitwiseGolden) {
  golden_chol();
  recover::Options ro;
  ro.ckpt_every = 1;
  recover::ScopedOptions so(ro);
  int crashed = 0;
  for (std::uint64_t seed = 100; seed < 124; ++seed) {
    const fault::Config cfg = site_config(fault::Site::kCrashAtStep, seed, 0.5);
    SCOPED_TRACE(repro(cfg, fault::Site::kCrashAtStep));
    recover::clear();
    Result<CholResult> r = [&] {
      fault::ScopedConfig scoped(cfg);
      xsim::Machine m = fresh_machine();
      return factor::try_confchox(m, grid221(), chol_input().view(), options());
    }();
    if (r.ok()) {
      expect_golden(r.value(), "clean run under an armed crash site");
      continue;
    }
    ++crashed;
    ASSERT_EQ(r.status().code(), StatusCode::kCrashSimulated)
        << r.status().to_string();
    xsim::Machine m2 = fresh_machine();
    const CholResult resumed =
        factor::resume_confchox(m2, grid221(), chol_input().view(), options());
    expect_golden(resumed, "crash-resumed run");
  }
  EXPECT_GE(crashed, 12) << "crash site looks dead at rate 0.5";
}

TEST(CrashRestart, CheckpointingAloneIsBitwiseInertAndCounted) {
  golden_lu();
  golden_chol();
  ScopedMetrics sm;
  recover::Options ro;
  ro.ckpt_every = 2;
  recover::ScopedOptions so(ro);
  recover::clear();
  const double saves0 = counter("recover.ckpt.saves");
  const double bytes0 = counter("recover.ckpt.bytes");
  xsim::Machine mlu = fresh_machine();
  expect_golden(factor::conflux_lu(mlu, grid221(), lu_input().view(), options()),
                "checkpointing-only LU run");
  xsim::Machine mch = fresh_machine();
  expect_golden(factor::confchox(mch, grid221(), chol_input().view(), options()),
                "checkpointing-only Cholesky run");
  // 4 tiles, every 2 steps: saves at t = 0 and t = 2, per factorization.
  EXPECT_EQ(counter("recover.ckpt.saves") - saves0, 4.0);
  EXPECT_GT(counter("recover.ckpt.bytes") - bytes0, 0.0);
}

TEST(CrashRestart, FileMirrorSurvivesRegistryLoss) {
  golden_lu();
  char tmpl[] = "/tmp/conflux-ckpt-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  recover::Options ro;
  ro.ckpt_every = 1;
  ro.ckpt_dir = dir;
  recover::ScopedOptions so(ro);
  recover::clear();
  {
    // Force a crash at the first step boundary: the only recoverable state
    // is the t = 0 snapshot, now mirrored to the directory.
    fault::ScopedConfig scoped(
        site_config(fault::Site::kCrashAtStep, 1, 1.0));
    xsim::Machine m = fresh_machine();
    const auto r =
        factor::try_conflux_lu(m, grid221(), lu_input().view(), options());
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.status().code(), StatusCode::kCrashSimulated);
  }
  // Drop the in-memory registry: resume must come from the file, exactly as
  // a restarted process would.
  recover::clear();
  xsim::Machine m2 = fresh_machine();
  const LuResult resumed =
      factor::resume_conflux_lu(m2, grid221(), lu_input().view(), options());
  expect_golden(resumed, "file-mirror resumed run");
  std::remove((std::string(dir) + "/" + lu_key().to_string() + ".ckpt").c_str());
  ::rmdir(dir);
}

// ------------------------------------------------------- ABFT, bitflip -----

TEST(Abft, LuBitflipIsDetectedAndReexecutedToGolden) {
  golden_lu();
  ScopedMetrics sm;
  recover::Options ro;
  ro.abft = true;
  ro.abft_every = 1;  // strict per-step sweeps: detection is immediate
  ro.ckpt_every = 1;
  recover::ScopedOptions so(ro);
  double fired_total = 0.0;
  const double det0 = counter("recover.abft.detected");
  const double rex0 = counter("recover.abft.reexec");
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const fault::Config cfg = site_config(fault::Site::kBitflip, seed, 0.25);
    SCOPED_TRACE(repro(cfg, fault::Site::kBitflip));
    recover::clear();
    const double f0 = counter("fault.fired.bitflip");
    fault::ScopedConfig scoped(cfg);
    xsim::Machine m = fresh_machine();
    // The corruption is absorbed inside the run: it must COMPLETE, and the
    // factors must be exactly the undisturbed ones.
    const LuResult lu =
        factor::conflux_lu(m, grid221(), lu_input().view(), options());
    expect_golden(lu, "ABFT-recovered run");
    fired_total += counter("fault.fired.bitflip") - f0;
  }
  EXPECT_GE(fired_total, 4.0) << "bitflip site looks dead at rate 0.25";
  // Every injected flip is gross (exponent-bit) corruption: each fire is
  // detected, and each detection triggers exactly one re-execution.
  EXPECT_EQ(counter("recover.abft.detected") - det0, fired_total);
  EXPECT_EQ(counter("recover.abft.reexec") - rex0, fired_total);
}

TEST(Abft, CholBitflipIsDetectedAndReexecutedToGolden) {
  golden_chol();
  ScopedMetrics sm;
  recover::Options ro;
  ro.abft = true;
  ro.abft_every = 1;
  ro.ckpt_every = 1;
  recover::ScopedOptions so(ro);
  double fired_total = 0.0;
  const double det0 = counter("recover.abft.detected");
  for (std::uint64_t seed = 200; seed < 212; ++seed) {
    const fault::Config cfg = site_config(fault::Site::kBitflip, seed, 0.25);
    SCOPED_TRACE(repro(cfg, fault::Site::kBitflip));
    recover::clear();
    const double f0 = counter("fault.fired.bitflip");
    fault::ScopedConfig scoped(cfg);
    xsim::Machine m = fresh_machine();
    const CholResult ch =
        factor::confchox(m, grid221(), chol_input().view(), options());
    expect_golden(ch, "ABFT-recovered run");
    fired_total += counter("fault.fired.bitflip") - f0;
  }
  EXPECT_GE(fired_total, 4.0) << "bitflip site looks dead at rate 0.25";
  EXPECT_EQ(counter("recover.abft.detected") - det0, fired_total);
}

TEST(Abft, VerificationIsBitwiseInert) {
  golden_lu();
  golden_chol();
  ScopedMetrics sm;
  recover::Options ro;
  ro.abft = true;  // no checkpointing: ABFT alone
  ro.abft_every = 1;
  recover::ScopedOptions so(ro);
  recover::clear();
  const double ver0 = counter("recover.abft.verified");
  const double det0 = counter("recover.abft.detected");
  xsim::Machine mlu = fresh_machine();
  expect_golden(factor::conflux_lu(mlu, grid221(), lu_input().view(), options()),
                "ABFT-on healthy LU run");
  xsim::Machine mch = fresh_machine();
  expect_golden(factor::confchox(mch, grid221(), chol_input().view(), options()),
                "ABFT-on healthy Cholesky run");
  // 4 tiles per factorization, verification at steps 1..3 of each.
  EXPECT_EQ(counter("recover.abft.verified") - ver0, 6.0);
  EXPECT_EQ(counter("recover.abft.detected") - det0, 0.0);
}

TEST(Abft, ReexecutionWithoutCheckpointRestartsFromInput) {
  golden_lu();
  recover::Options ro;
  ro.abft = true;  // checkpointing OFF: rollback of last resort is the input
  ro.abft_every = 1;
  recover::ScopedOptions so(ro);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const fault::Config cfg = site_config(fault::Site::kBitflip, seed, 0.2);
    SCOPED_TRACE(repro(cfg, fault::Site::kBitflip));
    recover::clear();
    fault::ScopedConfig scoped(cfg);
    xsim::Machine m = fresh_machine();
    const LuResult lu =
        factor::conflux_lu(m, grid221(), lu_input().view(), options());
    expect_golden(lu, "ABFT full-restart run");
  }
}

// --------------------------------------------------- snapshot integrity ----

TEST(SnapshotIntegrity, CorruptedPayloadFailsWithTypedStatus) {
  golden_lu();
  recover::Options ro;
  ro.ckpt_every = 1;
  recover::ScopedOptions so(ro);
  recover::clear();
  xsim::Machine m = fresh_machine();
  factor::conflux_lu(m, grid221(), lu_input().view(), options());
  recover::Blob blob = recover::latest_blob(lu_key());
  ASSERT_FALSE(blob.empty());
  blob[80] ^= 0x40;  // one payload bit: the checksum must catch it
  recover::inject_blob(lu_key(), std::move(blob));
  xsim::Machine m2 = fresh_machine();
  const auto r =
      factor::try_resume_conflux_lu(m2, grid221(), lu_input().view(), options());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCheckpointInvalid)
      << r.status().to_string();
}

TEST(SnapshotIntegrity, TruncatedAndMissingSnapshotsFailWithTypedStatus) {
  golden_lu();
  recover::Options ro;
  ro.ckpt_every = 1;
  recover::ScopedOptions so(ro);
  recover::clear();
  xsim::Machine m = fresh_machine();
  factor::conflux_lu(m, grid221(), lu_input().view(), options());
  recover::Blob blob = recover::latest_blob(lu_key());
  ASSERT_GT(blob.size(), 128u);
  blob.resize(blob.size() / 2);  // header intact, payload cut short
  recover::inject_blob(lu_key(), std::move(blob));
  xsim::Machine m2 = fresh_machine();
  auto r =
      factor::try_resume_conflux_lu(m2, grid221(), lu_input().view(), options());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCheckpointInvalid);

  recover::clear();  // no snapshot at all
  xsim::Machine m3 = fresh_machine();
  r = factor::try_resume_conflux_lu(m3, grid221(), lu_input().view(), options());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCheckpointInvalid);
}

// ------------------------------------------------------ transient retry ----

TEST(TaskRetry, TransientFaultsAreAbsorbedBitwise) {
  golden_lu();
  golden_chol();
  ScopedMetrics sm;
  const double retries0 = counter("recover.task_retries");
  const double exhausted0 = counter("recover.task_retry_exhausted");
  double fired_total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const fault::Config cfg =
        site_config(fault::Site::kTransientTaskThrow, seed, 0.05);
    SCOPED_TRACE(repro(cfg, fault::Site::kTransientTaskThrow));
    const double f0 = counter("fault.fired.transient-task-throw");
    fault::ScopedConfig scoped(cfg);
    xsim::Machine mlu = fresh_machine();
    expect_golden(
        factor::conflux_lu(mlu, grid221(), lu_input().view(), options()),
        "retry-absorbed LU run");
    xsim::Machine mch = fresh_machine();
    expect_golden(
        factor::confchox(mch, grid221(), chol_input().view(), options()),
        "retry-absorbed Cholesky run");
    fired_total += counter("fault.fired.transient-task-throw") - f0;
  }
  EXPECT_GE(fired_total, 4.0) << "transient site looks dead at rate 0.05";
  // Each fire is one retry (exhaustion at rate 0.05 with budget 3 would
  // need four consecutive fires on one task: effectively impossible, and
  // the exhausted counter proves it didn't happen).
  EXPECT_EQ(counter("recover.task_retries") - retries0, fired_total);
  EXPECT_EQ(counter("recover.task_retry_exhausted") - exhausted0, 0.0);
  EXPECT_GE(sched::TaskPool::instance().stats().retries,
            static_cast<long long>(fired_total));
}

TEST(TaskRetry, ExhaustedBudgetSurfacesTransientStatus) {
  golden_lu();
  recover::Options ro;
  ro.task_retries = 0;  // no budget: the first transient failure surfaces
  recover::ScopedOptions so(ro);
  int classified = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const fault::Config cfg =
        site_config(fault::Site::kTransientTaskThrow, seed, 0.1);
    SCOPED_TRACE(repro(cfg, fault::Site::kTransientTaskThrow));
    fault::ScopedConfig scoped(cfg);
    xsim::Machine m = fresh_machine();
    const auto r =
        factor::try_conflux_lu(m, grid221(), lu_input().view(), options());
    if (r.ok()) {
      expect_golden(r.value(), "clean run under an armed transient site");
      continue;
    }
    ++classified;
    EXPECT_EQ(r.status().code(), StatusCode::kTransientTaskFailure)
        << r.status().to_string();
    // The pool recovers: a fault-free rerun reproduces the golden factors.
    fault::Config off;
    fault::configure(off);
    xsim::Machine m2 = fresh_machine();
    const auto clean =
        factor::try_conflux_lu(m2, grid221(), lu_input().view(), options());
    ASSERT_TRUE(clean.ok()) << clean.status().to_string();
    expect_golden(clean.value(), "recovery run after exhausted retry");
  }
  EXPECT_GE(classified, 3) << "zero-budget transient faults never surfaced";
}

}  // namespace
}  // namespace conflux
