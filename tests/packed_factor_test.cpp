// Regression coverage for the packed trailing-workspace Real-mode data path
// (DESIGN.md "Packed trailing workspace" / "Pipelined execution"):
//  - factors are bitwise identical to a serial golden-path recomputation
//    that mirrors the schedule's arithmetic step by step (dominant matrices
//    pin the tournament to the natural pivot order, so the golden path is
//    an ordinary blocked right-looking factorization with the schedule's
//    exact call shapes — including the urgent/lazy Schur split);
//  - factors are bitwise identical across OMP thread counts, across
//    replication depths pz, and with lookahead pipelining on vs off (the
//    task decomposition is fixed; only who-runs-when changes);
//  - the recorded peak workspace stays near npad^2-scale (LU: trail +
//    lstore + the double-buffered pivot-row panel; Cholesky: the single
//    fused buffer), not (pz + 1) * npad^2;
//  - the steady state allocates nothing: the per-run scratch (tournament
//    gathers, retirement pairs, grid-line caches) is sized once, so the
//    heap-allocation count of a run does not depend on the step count.
// Shapes are deliberately ragged (n not a multiple of v) and pz in {1,2,4}.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "blas/blas.hpp"
#include "blas/lapack.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "recover/options.hpp"
#include "recover/snapshot.hpp"
#include "sched/rank_parallel.hpp"
#include "tensor/random_matrix.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

// Global allocation counter: the replaceable ordinary operator new/delete
// pair is overridden for this test binary only, so the steady-state test
// below can assert that a factorization's allocation count is independent
// of its step count. (The default array and nothrow forms forward to the
// ordinary form, so counting here covers them too.)
namespace {
std::atomic<long long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace conflux::factor {
namespace {

using xblas::Diag;
using xblas::Side;
using xblas::Trans;
using xblas::UpLo;

xsim::Machine make_machine(const grid::Grid3D& g, index_t n) {
  xsim::MachineSpec spec;
  spec.num_ranks = g.ranks();
  spec.memory_words = static_cast<double>(g.pz()) * static_cast<double>(n) *
                      static_cast<double>(n) / static_cast<double>(g.ranks());
  return xsim::Machine(spec, xsim::ExecMode::Real);
}

// Serial recomputation of the packed LU data path for a matrix whose
// tournament keeps the natural pivot order (diagonally dominant): the same
// getrf / per-rank-chunked trsm / single beta=1 gemm sequence the schedule
// executes, on naturally ordered rows. Bitwise comparable because every
// BLAS call has the schedule's exact operand shapes, and gemm/trsm results
// are row- and column-lane independent (a row permutation of A and C
// permutes the output rows without changing any element's arithmetic).
MatrixD golden_lu(const MatrixD& a, index_t n, index_t v, int ranks) {
  const index_t npad = (n + v - 1) / v * v;
  const index_t num_tiles = npad / v;
  MatrixD w(npad, npad, 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) w(i, j) = a(i, j);
  }
  for (index_t r = n; r < npad; ++r) w(r, r) = 1.0;

  for (index_t t = 0; t < num_tiles; ++t) {
    const index_t o = t * v;
    const index_t arows = npad - o - v;  // surviving rows below the block
    const index_t ncols = npad - o - v;  // trailing columns
    MatrixD a00(v, v);
    copy<double>(w.block(o, o, v, v), a00.view());
    std::vector<index_t> ipiv;
    xblas::getrf(a00.view(), ipiv);
    copy<double>(a00.view(), w.block(o, o, v, v));
    if (arows == 0) continue;
    for (int r = 0; r < ranks; ++r) {
      const index_t lo = chunk_offset(arows, ranks, r);
      const index_t cnt = chunk_size(arows, ranks, r);
      if (cnt == 0) continue;
      xblas::trsm(Side::Right, UpLo::Upper, Trans::None, Diag::NonUnit, 1.0,
                  a00.view(), w.block(o + v + lo, o, cnt, v));
    }
    for (int r = 0; r < ranks; ++r) {
      const index_t lo = chunk_offset(ncols, ranks, r);
      const index_t cnt = chunk_size(ncols, ranks, r);
      if (cnt == 0) continue;
      xblas::trsm(Side::Left, UpLo::Lower, Trans::None, Diag::Unit, 1.0,
                  a00.view(), w.block(o, o + v + lo, v, cnt));
    }
    // Schur update in the schedule's canonical decomposition: the urgent
    // stripe (the next panel's v columns), then the lazy remainder, each in
    // fixed kRowBlock row-block pieces (conflux_lu.cpp update_a11).
    const index_t nblocks = sched::num_row_blocks(arows);
    for (index_t blk = 0; blk < nblocks; ++blk) {
      const index_t i0 = blk * sched::kRowBlock;
      const index_t bn = std::min(sched::kRowBlock, arows - i0);
      xblas::gemm(Trans::None, Trans::None, -1.0,
                  w.block(o + v + i0, o, bn, v), w.block(o, o + v, v, v), 1.0,
                  w.block(o + v + i0, o + v, bn, v));
    }
    if (ncols > v) {
      for (index_t blk = 0; blk < nblocks; ++blk) {
        const index_t i0 = blk * sched::kRowBlock;
        const index_t bn = std::min(sched::kRowBlock, arows - i0);
        xblas::gemm(Trans::None, Trans::None, -1.0,
                    w.block(o + v + i0, o, bn, v),
                    w.block(o, o + 2 * v, v, ncols - v), 1.0,
                    w.block(o + v + i0, o + 2 * v, bn, ncols - v));
      }
    }
  }
  MatrixD out(n, n);
  copy<double>(w.block(0, 0, n, n), out.view());
  return out;
}

// Serial recomputation of the packed Cholesky data path (no pivoting, so
// any SPD input is bitwise comparable): potrf of the zero-padded diagonal
// copy, per-rank-chunked in-place panel trsm, and the fixed kRowBlock
// gemm + syrk update decomposition.
MatrixD golden_chol(const MatrixD& a, index_t n, index_t v, int ranks) {
  const index_t npad = (n + v - 1) / v * v;
  const index_t num_tiles = npad / v;
  MatrixD w(npad, npad, 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) w(i, j) = a(i, j);
  }
  for (index_t r = n; r < npad; ++r) w(r, r) = 1.0;

  for (index_t t = 0; t < num_tiles; ++t) {
    const index_t o = t * v;
    const index_t panel_rows = npad - o - v;
    MatrixD a00(v, v, 0.0);
    for (index_t i = 0; i < v; ++i) {
      for (index_t j = 0; j <= i; ++j) a00(i, j) = w(o + i, o + j);
    }
    EXPECT_EQ(xblas::potrf(a00.view()), 0);
    for (index_t i = 0; i < v; ++i) {
      for (index_t j = 0; j <= i; ++j) w(o + i, o + j) = a00(i, j);
    }
    if (panel_rows == 0) continue;
    for (int r = 0; r < ranks; ++r) {
      const index_t lo = chunk_offset(panel_rows, ranks, r);
      const index_t cnt = chunk_size(panel_rows, ranks, r);
      if (cnt == 0) continue;
      xblas::trsm(Side::Right, UpLo::Lower, Trans::Transpose, Diag::NonUnit,
                  1.0, a00.view(), w.block(o + v + lo, o, cnt, v));
    }
    // Symmetric Schur update in the schedule's canonical decomposition:
    // per fixed kRowBlock row block, the urgent piece (its cells in the
    // next panel's v columns) then the lazy remainder (confchox.cpp
    // update_a11).
    const index_t off = o + v;
    const index_t nblocks = sched::num_row_blocks(panel_rows);
    for (index_t blk = 0; blk < nblocks; ++blk) {
      const index_t i0 = blk * sched::kRowBlock;
      const index_t bn = std::min(sched::kRowBlock, panel_rows - i0);
      if (i0 == 0) {
        const index_t dn = std::min(v, bn);
        xblas::syrk(UpLo::Lower, Trans::None, -1.0, w.block(off, o, dn, v),
                    1.0, w.block(off, off, dn, dn));
        if (bn > v) {
          xblas::gemm(Trans::None, Trans::Transpose, -1.0,
                      w.block(off + v, o, bn - v, v), w.block(off, o, v, v),
                      1.0, w.block(off + v, off, bn - v, v));
        }
      } else {
        xblas::gemm(Trans::None, Trans::Transpose, -1.0,
                    w.block(off + i0, o, bn, v), w.block(off, o, v, v), 1.0,
                    w.block(off + i0, off, bn, v));
      }
    }
    for (index_t blk = 0; blk < nblocks; ++blk) {
      const index_t i0 = blk * sched::kRowBlock;
      const index_t bn = std::min(sched::kRowBlock, panel_rows - i0);
      if (i0 == 0) {
        if (bn > v) {
          xblas::syrk(UpLo::Lower, Trans::None, -1.0,
                      w.block(off + v, o, bn - v, v), 1.0,
                      w.block(off + v, off + v, bn - v, bn - v));
        }
      } else {
        if (i0 > v) {
          xblas::gemm(Trans::None, Trans::Transpose, -1.0,
                      w.block(off + i0, o, bn, v), w.block(off + v, o, i0 - v, v),
                      1.0, w.block(off + i0, off + v, bn, i0 - v));
        }
        xblas::syrk(UpLo::Lower, Trans::None, -1.0, w.block(off + i0, o, bn, v),
                    1.0, w.block(off + i0, off + i0, bn, bn));
      }
    }
  }
  MatrixD out(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) out(i, j) = w(i, j);
  }
  return out;
}

struct PackedCase {
  index_t n;
  index_t v;
  int pz;
};

std::string case_name(const ::testing::TestParamInfo<PackedCase>& info) {
  return "n" + std::to_string(info.param.n) + "_v" + std::to_string(info.param.v) +
         "_pz" + std::to_string(info.param.pz);
}

// Ragged shapes (n % v != 0) at every replication depth.
const PackedCase kCases[] = {
    {100, 16, 1}, {100, 16, 2}, {100, 16, 4}, {72, 16, 2}, {64, 16, 4},
};

// --------------------------------------------------- golden-path bitwise ----

class PackedGolden : public ::testing::TestWithParam<PackedCase> {};

TEST_P(PackedGolden, LuFactorsMatchSerialRecomputationBitwise) {
  const auto& p = GetParam();
  const grid::Grid3D g(2, 2, p.pz);
  xsim::Machine m = make_machine(g, p.n);
  const MatrixD a = random_dominant_matrix(p.n, 900 + static_cast<std::uint64_t>(p.n));
  const LuResult lu = conflux_lu(m, g, a.view(), FactorOptions{.block_size = p.v});
  for (index_t i = 0; i < p.n; ++i) {
    ASSERT_EQ(lu.perm[static_cast<std::size_t>(i)], i)
        << "dominant matrix repivoted; golden path not comparable";
  }
  const MatrixD want = golden_lu(a, p.n, p.v, g.ranks());
  EXPECT_EQ(lu.factors, want);
}

TEST_P(PackedGolden, CholFactorsMatchSerialRecomputationBitwise) {
  const auto& p = GetParam();
  const grid::Grid3D g(2, 2, p.pz);
  xsim::Machine m = make_machine(g, p.n);
  const MatrixD a = random_spd_matrix(p.n, 700 + static_cast<std::uint64_t>(p.n));
  const CholResult chol = confchox(m, g, a.view(), FactorOptions{.block_size = p.v});
  const MatrixD want = golden_chol(a, p.n, p.v, g.ranks());
  EXPECT_EQ(chol.factors, want);
}

INSTANTIATE_TEST_SUITE_P(RaggedShapes, PackedGolden, ::testing::ValuesIn(kCases),
                         case_name);

// ------------------------------------------------ thread-count invariance ----

class PackedThreads : public ::testing::TestWithParam<PackedCase> {};

TEST_P(PackedThreads, FactorsBitwiseIdenticalAtOneAndFourThreads) {
  const auto& p = GetParam();
  const grid::Grid3D g(2, 2, p.pz);
  const MatrixD a = random_matrix(p.n, p.n, 47);
  const MatrixD spd = random_spd_matrix(p.n, 53);
  const FactorOptions opt{.block_size = p.v};

  const auto run_both = [&] {
    xsim::Machine mlu = make_machine(g, p.n);
    xsim::Machine mch = make_machine(g, p.n);
    return std::make_pair(conflux_lu(mlu, g, a.view(), opt),
                          confchox(mch, g, spd.view(), opt));
  };

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  const auto [lu1, ch1] = run_both();
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
  const auto [lu4, ch4] = run_both();
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  EXPECT_EQ(lu1.perm, lu4.perm);
  EXPECT_EQ(lu1.factors, lu4.factors);
  EXPECT_EQ(ch1.factors, ch4.factors);
}

INSTANTIATE_TEST_SUITE_P(RaggedShapes, PackedThreads, ::testing::ValuesIn(kCases),
                         case_name);

// -------------------------------------------------------- pz invariance ----

TEST(PackedWorkspace, FactorsBitwiseIdenticalAcrossReplicationDepths) {
  // The packed path fuses the layered partial sums into gemm's ordered
  // k loop, so pz changes the cost counters but not one bit of arithmetic.
  const index_t n = 100, v = 16;
  const MatrixD a = random_matrix(n, n, 61);
  const MatrixD spd = random_spd_matrix(n, 67);
  LuResult lu_ref;
  CholResult ch_ref;
  for (const int pz : {1, 2, 4}) {
    const grid::Grid3D g(2, 2, pz);
    xsim::Machine mlu = make_machine(g, n);
    xsim::Machine mch = make_machine(g, n);
    LuResult lu = conflux_lu(mlu, g, a.view(), FactorOptions{.block_size = v});
    CholResult ch = confchox(mch, g, spd.view(), FactorOptions{.block_size = v});
    if (pz == 1) {
      lu_ref = std::move(lu);
      ch_ref = std::move(ch);
      continue;
    }
    EXPECT_EQ(lu_ref.perm, lu.perm) << "pz=" << pz;
    EXPECT_EQ(lu_ref.factors, lu.factors) << "pz=" << pz;
    EXPECT_EQ(ch_ref.factors, ch.factors) << "pz=" << pz;
  }
}

// -------------------------------------------------- fp32 determinism ----
// The scalar-templated core must keep both bitwise-determinism guarantees
// (thread count, pz) in fp32: the fused z-order and the fixed task
// decompositions are precision-independent.

TEST(PackedFp32, FactorsBitwiseIdenticalAcrossThreadsAndReplication) {
  const index_t n = 100, v = 16;
  const MatrixD a64 = random_matrix(n, n, 81);
  const MatrixD spd64 = random_spd_matrix(n, 83);
  MatrixF a(n, n), spd(n, n);
  convert<double, float>(a64.view(), a.view());
  convert<double, float>(spd64.view(), spd.view());

  LuResultF lu_ref;
  CholResultF ch_ref;
  bool have_ref = false;
  for (const int pz : {1, 2, 4}) {
    for (const int threads : {1, 4}) {
      const grid::Grid3D g(2, 2, pz);
#ifdef _OPENMP
      const int saved = omp_get_max_threads();
      omp_set_num_threads(threads);
#else
      (void)threads;
#endif
      xsim::Machine mlu = make_machine(g, n);
      xsim::Machine mch = make_machine(g, n);
      LuResultF lu = conflux_lu(mlu, g, a.view(), FactorOptions{.block_size = v});
      CholResultF ch = confchox(mch, g, spd.view(), FactorOptions{.block_size = v});
#ifdef _OPENMP
      omp_set_num_threads(saved);
#endif
      if (!have_ref) {
        lu_ref = std::move(lu);
        ch_ref = std::move(ch);
        have_ref = true;
        continue;
      }
      EXPECT_EQ(lu_ref.perm, lu.perm) << "pz=" << pz << " threads=" << threads;
      EXPECT_EQ(lu_ref.factors, lu.factors)
          << "pz=" << pz << " threads=" << threads;
      EXPECT_EQ(ch_ref.factors, ch.factors)
          << "pz=" << pz << " threads=" << threads;
    }
  }
}

TEST(PackedFp32, WorkspaceReportsHalvedFootprint) {
  // workspace_words counts 8-byte words: an fp32 run's trail + lstore must
  // come in at half the fp64 budget (one npad^2 for LU instead of two).
  const index_t n = 96, v = 16;
  const double npad2 = static_cast<double>(n) * static_cast<double>(n);
  const grid::Grid3D g(2, 2, 2);
  const MatrixD a64 = random_matrix(n, n, 85);
  MatrixF a(n, n);
  convert<double, float>(a64.view(), a.view());
  xsim::Machine m = make_machine(g, n);
  const LuResultF lu = conflux_lu(m, g, a.view(), FactorOptions{.block_size = v});
  EXPECT_GE(lu.workspace_words, 1.0 * npad2);
  EXPECT_LE(lu.workspace_words, 1.2 * npad2);
}

// ----------------------------------------------------- workspace budget ----

TEST(PackedWorkspace, PeakWordsStayNearTwoMatricesForLu) {
  // Old data path: (pz + 1) * npad^2 resident words. Packed path: trail +
  // lstore + the double-buffered pivot-row arena (two O(npad * v) slots so
  // lookahead's lazy tasks can outlive the step), independent of pz.
  const index_t n = 96, v = 16;
  const double npad2 = static_cast<double>(n) * static_cast<double>(n);
  const double slots = 2.5 * static_cast<double>(n) * static_cast<double>(v);
  for (const int pz : {1, 4}) {
    const grid::Grid3D g(2, 2, pz);
    xsim::Machine m = make_machine(g, n);
    const MatrixD a = random_matrix(n, n, 71);
    const LuResult lu = conflux_lu(m, g, a.view(), FactorOptions{.block_size = v});
    EXPECT_GE(lu.workspace_words, 2.0 * npad2) << "pz=" << pz;
    EXPECT_LE(lu.workspace_words, 2.0 * npad2 + slots) << "pz=" << pz;
  }
}

// ------------------------------------------------ lookahead invariance ----

TEST(Lookahead, FactorsBitwiseIdenticalWithLookaheadOnAndOff) {
  // The urgent/lazy task decomposition is fixed; lookahead only changes
  // which worker runs a task when, so every factor bit must agree across
  // lookahead on/off, thread counts, and replication depths.
  const index_t n = 100, v = 16;
  const MatrixD a = random_matrix(n, n, 91);
  const MatrixD spd = random_spd_matrix(n, 97);

  LuResult lu_ref;
  CholResult ch_ref;
  bool have_ref = false;
  for (const int pz : {1, 2}) {
    for (const int threads : {1, 4}) {
      for (const int lookahead : {0, 1}) {
        const grid::Grid3D g(2, 2, pz);
#ifdef _OPENMP
        const int saved = omp_get_max_threads();
        omp_set_num_threads(threads);
#else
        (void)threads;
#endif
        FactorOptions opt;
        opt.block_size = v;
        opt.lookahead = lookahead;
        xsim::Machine mlu = make_machine(g, n);
        xsim::Machine mch = make_machine(g, n);
        LuResult lu = conflux_lu(mlu, g, a.view(), opt);
        CholResult ch = confchox(mch, g, spd.view(), opt);
#ifdef _OPENMP
        omp_set_num_threads(saved);
#endif
        if (!have_ref) {
          lu_ref = std::move(lu);
          ch_ref = std::move(ch);
          have_ref = true;
          continue;
        }
        EXPECT_EQ(lu_ref.perm, lu.perm)
            << "pz=" << pz << " threads=" << threads << " la=" << lookahead;
        EXPECT_EQ(lu_ref.factors, lu.factors)
            << "pz=" << pz << " threads=" << threads << " la=" << lookahead;
        EXPECT_EQ(ch_ref.factors, ch.factors)
            << "pz=" << pz << " threads=" << threads << " la=" << lookahead;
      }
    }
  }
}

// --------------------------------------------- checkpoint save/restore ----

TEST(Recovery, SaveThenRestoreIsBitwiseAcrossConfigurations) {
  // A checkpointed run followed by a resume from its LAST snapshot must
  // reproduce the uninterrupted factors bitwise, in every execution
  // configuration the other invariance tests cover: replication depth,
  // OMP thread count, and lookahead on/off, for both factor cores. The
  // interval (4 of 7 tiles) leaves a multi-step tail to re-execute.
  const index_t n = 100, v = 16;
  const MatrixD a = random_matrix(n, n, 107);
  const MatrixD spd = random_spd_matrix(n, 109);
  recover::Options ro;
  ro.ckpt_every = 4;
  recover::ScopedOptions so(ro);
  for (const int pz : {1, 2, 4}) {
    for (const int threads : {1, 4}) {
      for (const int lookahead : {0, 1}) {
        const grid::Grid3D g(2, 2, pz);
#ifdef _OPENMP
        const int saved = omp_get_max_threads();
        omp_set_num_threads(threads);
#else
        (void)threads;
#endif
        FactorOptions opt;
        opt.block_size = v;
        opt.lookahead = lookahead;
        recover::clear();
        xsim::Machine mlu = make_machine(g, n);
        const LuResult lu = conflux_lu(mlu, g, a.view(), opt);
        xsim::Machine mlu2 = make_machine(g, n);
        const LuResult lu2 = resume_conflux_lu(mlu2, g, a.view(), opt);
        recover::clear();
        xsim::Machine mch = make_machine(g, n);
        const CholResult ch = confchox(mch, g, spd.view(), opt);
        xsim::Machine mch2 = make_machine(g, n);
        const CholResult ch2 = resume_confchox(mch2, g, spd.view(), opt);
#ifdef _OPENMP
        omp_set_num_threads(saved);
#endif
        EXPECT_EQ(lu.perm, lu2.perm)
            << "pz=" << pz << " threads=" << threads << " la=" << lookahead;
        EXPECT_EQ(lu.factors, lu2.factors)
            << "pz=" << pz << " threads=" << threads << " la=" << lookahead;
        EXPECT_EQ(ch.factors, ch2.factors)
            << "pz=" << pz << " threads=" << threads << " la=" << lookahead;
      }
    }
  }
}

TEST(Recovery, CorruptedSnapshotIsATypedFailureNeverUb) {
  // Semantic corruption beneath an intact checksum: rewrite a snapshot's
  // payload with a valid header but garbage structure. Every probe must
  // come back as kCheckpointInvalid through the try_ entry point — never a
  // crash, never a silent wrong answer.
  const index_t n = 100, v = 16;
  const grid::Grid3D g(2, 2, 1);
  const MatrixD a = random_matrix(n, n, 113);
  recover::Options ro;
  ro.ckpt_every = 2;
  recover::ScopedOptions so(ro);
  recover::clear();
  FactorOptions opt;
  opt.block_size = v;
  xsim::Machine m = make_machine(g, n);
  const LuResult direct = conflux_lu(m, g, a.view(), opt);

  recover::SnapshotKey key;
  key.kind = recover::FactorKind::kLu;
  key.scalar = 'd';
  key.n = n;
  key.v = v;
  key.px = g.px();
  key.py = g.py();
  key.pz = g.pz();
  const recover::Blob good = recover::latest_blob(key);
  ASSERT_FALSE(good.empty());

  // (1) Checksum-valid but structurally absurd: a fresh snapshot whose
  // payload is one bogus length-prefixed index vector.
  {
    recover::SnapshotWriter w(key, /*step=*/1);
    w.put_i64(1 << 20);  // "nact" wildly out of range for its step
    recover::inject_blob(key, std::move(w).seal());
    xsim::Machine m2 = make_machine(g, n);
    const auto r = try_resume_conflux_lu(m2, g, a.view(), opt);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCheckpointInvalid)
        << r.status().to_string();
  }
  // (2) Bit corruption in every span of the real blob: header, early
  // payload (scalars/maps), deep payload (matrix data).
  for (const std::size_t pos :
       {std::size_t{2}, std::size_t{70}, good.size() / 2, good.size() - 3}) {
    recover::Blob bad = good;
    bad[pos] ^= 0x10;
    recover::inject_blob(key, std::move(bad));
    xsim::Machine m2 = make_machine(g, n);
    const auto r = try_resume_conflux_lu(m2, g, a.view(), opt);
    ASSERT_FALSE(r.ok()) << "corruption at byte " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kCheckpointInvalid)
        << "corruption at byte " << pos << ": " << r.status().to_string();
  }
  // The pristine blob still resumes to the direct result bitwise.
  recover::inject_blob(key, recover::Blob(good));
  xsim::Machine m3 = make_machine(g, n);
  const LuResult resumed = resume_conflux_lu(m3, g, a.view(), opt);
  EXPECT_EQ(direct.perm, resumed.perm);
  EXPECT_EQ(direct.factors, resumed.factors);
}

// ------------------------------------------- steady-state allocations ----

TEST(PackedWorkspace, SteadyStateAllocationCountIsStepIndependent) {
  // Every per-step buffer — tournament gathers, candidate sets, retirement
  // pairs, pivot-row panels, grid-line groups — lives in per-run scratch
  // sized at its step-0 high-water mark, so the number of heap allocations
  // a run performs must not depend on how many steps it has. Single thread
  // and lookahead off: task submission boxes closures on the heap by
  // design, and worker TLS warm-up is thread-assignment dependent (the
  // CONFLUX_LOOKAHEAD CI legs cover the pipelined path's correctness).
  const index_t v = 16;
  const grid::Grid3D g(2, 2, 2);
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  const auto allocs_for = [&](index_t n) {
    const MatrixD a =
        random_dominant_matrix(n, 200 + static_cast<std::uint64_t>(n));
    xsim::Machine m = make_machine(g, n);
    FactorOptions opt;
    opt.block_size = v;
    opt.lookahead = 0;
    const long long before = g_alloc_count.load(std::memory_order_relaxed);
    const LuResult lu = conflux_lu(m, g, a.view(), opt);
    const long long during =
        g_alloc_count.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(lu.factors.rows(), n);
    return during;
  };
  // Warm up at the LARGEST size so the BLAS thread-local pack buffers are
  // already at their high-water marks for both measured runs.
  allocs_for(10 * v);
  const long long steps8 = allocs_for(8 * v);
  const long long steps10 = allocs_for(10 * v);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  EXPECT_EQ(steps8, steps10);
}

TEST(PackedWorkspace, PeakWordsStayNearOneMatrixForCholesky) {
  const index_t n = 96, v = 16;
  const double npad2 = static_cast<double>(n) * static_cast<double>(n);
  for (const int pz : {1, 4}) {
    const grid::Grid3D g(2, 2, pz);
    xsim::Machine m = make_machine(g, n);
    const MatrixD a = random_spd_matrix(n, 73);
    const CholResult ch = confchox(m, g, a.view(), FactorOptions{.block_size = v});
    EXPECT_GE(ch.workspace_words, npad2) << "pz=" << pz;
    EXPECT_LE(ch.workspace_words, 1.1 * npad2) << "pz=" << pz;
  }
}

}  // namespace
}  // namespace conflux::factor
