// COnfLUX / COnfCHOX correctness and cost properties:
//  - factorization residuals over (N, grid, v) sweeps
//  - solve round trips
//  - Trace == Real communication counters (the bridge that makes paper-scale
//    Trace measurements trustworthy)
//  - per-rank volumes near the N^3/(P sqrt(M)) model and above the
//    Section 6 lower bound
//  - memory high-water marks within the 2.5D budget
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "blas/lapack.hpp"
#include "daap/bounds.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "factor/mixed.hpp"
#include "factor/scalapack_api.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux::factor {
namespace {

xsim::Machine make_machine(int ranks, double memory, xsim::ExecMode mode) {
  xsim::MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = memory;
  return xsim::Machine(spec, mode);
}

double machine_memory(index_t n, const grid::Grid3D& g) {
  // M = c N^2 / P: the replicated-matrix budget of the 2.5D decomposition.
  return static_cast<double>(g.pz()) * static_cast<double>(n) *
         static_cast<double>(n) / static_cast<double>(g.ranks());
}

struct FactorCase {
  index_t n;
  int px, py, pz;
  index_t v;  // 0 = auto
};

std::string case_name(const ::testing::TestParamInfo<FactorCase>& info) {
  const auto& p = info.param;
  return "n" + std::to_string(p.n) + "_g" + std::to_string(p.px) +
         std::to_string(p.py) + std::to_string(p.pz) + "_v" + std::to_string(p.v);
}

// ------------------------------------------------------------ LU sweeps ----

class ConfluxLuSweep : public ::testing::TestWithParam<FactorCase> {};

TEST_P(ConfluxLuSweep, ResidualIsSmall) {
  const auto& p = GetParam();
  const grid::Grid3D g(p.px, p.py, p.pz);
  xsim::Machine m = make_machine(g.ranks(), machine_memory(p.n, g), xsim::ExecMode::Real);
  const MatrixD a = random_matrix(p.n, p.n, 1000 + static_cast<std::uint64_t>(p.n));
  FactorOptions opt;
  opt.block_size = p.v;
  const LuResult lu = conflux_lu(m, g, a.view(), opt);
  ASSERT_EQ(static_cast<index_t>(lu.perm.size()), p.n);
  EXPECT_LT(xblas::lu_residual(a.view(), lu.factors.view(), lu.perm), 200.0);
}

TEST_P(ConfluxLuSweep, PermutationIsBijective) {
  const auto& p = GetParam();
  const grid::Grid3D g(p.px, p.py, p.pz);
  xsim::Machine m = make_machine(g.ranks(), machine_memory(p.n, g), xsim::ExecMode::Real);
  const MatrixD a = random_matrix(p.n, p.n, 77);
  FactorOptions opt;
  opt.block_size = p.v;
  const LuResult lu = conflux_lu(m, g, a.view(), opt);
  std::vector<bool> seen(static_cast<std::size_t>(p.n), false);
  for (index_t r : lu.perm) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, p.n);
    EXPECT_FALSE(seen[static_cast<std::size_t>(r)]);
    seen[static_cast<std::size_t>(r)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfluxLuSweep,
    ::testing::Values(FactorCase{64, 1, 1, 1, 16},   // sequential
                      FactorCase{64, 2, 2, 1, 16},   // 2D
                      FactorCase{64, 2, 2, 2, 16},   // 2.5D
                      FactorCase{96, 2, 2, 2, 16},   // more steps
                      FactorCase{128, 4, 4, 2, 16},  // wider plane
                      FactorCase{128, 2, 2, 4, 16},  // deeper replication
                      FactorCase{60, 2, 2, 2, 16},   // padding (60 % 16 != 0)
                      FactorCase{65, 2, 2, 2, 16},   // padding by 15
                      FactorCase{128, 3, 2, 1, 16},  // non-square plane
                      FactorCase{81, 3, 3, 3, 9},    // non-power-of-two everything
                      FactorCase{64, 2, 2, 2, 8},    // small blocks
                      FactorCase{64, 2, 2, 2, 32},   // v = n/2
                      FactorCase{48, 2, 2, 2, 48},   // single block step
                      FactorCase{200, 4, 2, 2, 0}),  // auto block size
    case_name);

TEST(ConfluxLu, SolveRoundTrip) {
  const index_t n = 96;
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, machine_memory(n, g), xsim::ExecMode::Real);
  const MatrixD a = random_matrix(n, n, 5);
  const MatrixD x_true = random_matrix(n, 3, 6);
  MatrixD b(n, 3, 0.0);
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(), x_true.view(),
              0.0, b.view());
  FactorOptions opt;
  opt.block_size = 16;
  const LuResult lu = conflux_lu(m, g, a.view(), opt);
  conflux_lu_solve(lu, b.view());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < 3; ++j) EXPECT_NEAR(b(i, j), x_true(i, j), 1e-6);
  }
}

TEST(ConfluxLu, MultiRhsSolvePinsSingleRhsColumns) {
  // The panel solve (ISSUE 4 satellite): solving an n x k RHS block in one
  // trsm-panel pass must reproduce the k independent single-RHS solves
  // BITWISE — the blocked trsm accumulates every column in the same fixed
  // k-order regardless of panel width, so this pins that no reordering
  // sneaks into the multi-RHS path.
  const index_t n = 96;
  const index_t nrhs = 5;
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  const MatrixD a = random_matrix(n, n, 21);
  const MatrixD b = random_matrix(n, nrhs, 22);
  FactorOptions opt;
  opt.block_size = 16;
  const LuResult lu = conflux_lu(m, g, a.view(), opt);

  MatrixD panel = b;
  conflux_lu_solve(lu, panel.view());
  for (index_t j = 0; j < nrhs; ++j) {
    MatrixD single(n, 1);
    for (index_t i = 0; i < n; ++i) single(i, 0) = b(i, j);
    conflux_lu_solve(lu, single.view());
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(panel(i, j), single(i, 0)) << "col " << j << " row " << i;
    }
  }
}

TEST(Confchox, MultiRhsSolvePinsSingleRhsColumns) {
  const index_t n = 80;
  const index_t nrhs = 4;
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  const MatrixD a = random_spd_matrix(n, 23);
  const MatrixD b = random_matrix(n, nrhs, 24);
  FactorOptions opt;
  opt.block_size = 16;
  const CholResult chol = confchox(m, g, a.view(), opt);

  MatrixD panel = b;
  confchox_solve(chol, panel.view());
  for (index_t j = 0; j < nrhs; ++j) {
    MatrixD single(n, 1);
    for (index_t i = 0; i < n; ++i) single(i, 0) = b(i, j);
    confchox_solve(chol, single.view());
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(panel(i, j), single(i, 0)) << "col " << j << " row " << i;
    }
  }
}

TEST(FactorSolveEdges, ZeroRhsIsANoOpAndWideRhsSolves) {
  // nrhs boundary cases (ISSUE 9 satellite): the panel solves must accept
  // an empty RHS block (factor-only callers, e.g. a solve-service warmup),
  // a single column, and MORE columns than the matrix order (nrhs > n — a
  // response-panel shape real DFT workloads produce).
  const index_t n = 48;
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  const MatrixD a = random_matrix(n, n, 41);
  const MatrixD spd = random_spd_matrix(n, 42);
  FactorOptions opt;
  opt.block_size = 16;
  const LuResult lu = conflux_lu(m, g, a.view(), opt);
  const CholResult chol = confchox(m, g, spd.view(), opt);

  MatrixD empty(n, 0);
  conflux_lu_solve(lu, empty.view());  // must not touch memory or throw
  confchox_solve(chol, empty.view());
  EXPECT_EQ(empty.cols(), 0);

  for (const index_t nrhs : {index_t{1}, n + 17}) {
    const MatrixD x_true = random_matrix(n, nrhs, 43 + nrhs);
    MatrixD b(n, nrhs, 0.0);
    xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(),
                x_true.view(), 0.0, b.view());
    conflux_lu_solve(lu, b.view());
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < nrhs; ++j) {
        ASSERT_NEAR(b(i, j), x_true(i, j), 1e-6) << "nrhs " << nrhs;
      }
    }
  }
}

TEST(FactorSolveEdges, StridedRhsViewMatchesPackedSolveBitwise) {
  // A client handing the solver a block of a wider buffer (ld > cols) must
  // get the bit-identical answer a packed copy would: the panel solves may
  // never assume contiguous rows.
  const index_t n = 64;
  const index_t nrhs = 3;
  const index_t pad = 5;
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  const MatrixD a = random_matrix(n, n, 44);
  const MatrixD spd = random_spd_matrix(n, 45);
  FactorOptions opt;
  opt.block_size = 16;
  const LuResult lu = conflux_lu(m, g, a.view(), opt);
  const CholResult chol = confchox(m, g, spd.view(), opt);

  const MatrixD rhs = random_matrix(n, nrhs, 46);
  // Embed the RHS in a wider buffer whose tail columns are canaries.
  MatrixD wide(n, nrhs + pad, -7.5);
  copy(rhs.view(), wide.block(0, 0, n, nrhs));
  MatrixD packed = rhs;

  conflux_lu_solve(lu, packed.view());
  conflux_lu_solve(lu, wide.block(0, 0, n, nrhs));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      ASSERT_EQ(wide(i, j), packed(i, j)) << "strided LU solve diverged";
    }
    for (index_t j = nrhs; j < nrhs + pad; ++j) {
      ASSERT_EQ(wide(i, j), -7.5) << "LU solve wrote outside its view";
    }
  }

  MatrixD wide_c(n, nrhs + pad, -7.5);
  copy(rhs.view(), wide_c.block(0, 0, n, nrhs));
  MatrixD packed_c = rhs;
  confchox_solve(chol, packed_c.view());
  confchox_solve(chol, wide_c.block(0, 0, n, nrhs));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      ASSERT_EQ(wide_c(i, j), packed_c(i, j)) << "strided Cholesky solve diverged";
    }
    for (index_t j = nrhs; j < nrhs + pad; ++j) {
      ASSERT_EQ(wide_c(i, j), -7.5) << "Cholesky solve wrote outside its view";
    }
  }
}

TEST(ConfluxLu, IllScaledRowsHandledByTournament) {
  // Row scaling that breaks unpivoted LU must not break COnfLUX.
  const index_t n = 64;
  MatrixD a = random_matrix(n, n, 9);
  for (index_t j = 0; j < n; ++j) a(0, j) *= 1e-13;
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, machine_memory(n, g), xsim::ExecMode::Real);
  FactorOptions opt;
  opt.block_size = 16;
  const LuResult lu = conflux_lu(m, g, a.view(), opt);
  EXPECT_LT(xblas::lu_residual(a.view(), lu.factors.view(), lu.perm), 500.0);
}

TEST(ConfluxLu, MatchesSequentialFactorizationValues) {
  // On a diagonally dominant matrix every pivot strategy keeps the natural
  // order, so the factors must equal the reference getrf_nopiv result.
  const index_t n = 64;
  const MatrixD a = random_dominant_matrix(n, 3);
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, machine_memory(n, g), xsim::ExecMode::Real);
  FactorOptions opt;
  opt.block_size = 16;
  const LuResult lu = conflux_lu(m, g, a.view(), opt);
  MatrixD ref = a;
  ASSERT_EQ(xblas::getrf_nopiv(ref.view()), 0);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(lu.perm[static_cast<std::size_t>(i)], i) << "dominant matrix repivoted";
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(lu.factors(i, j), ref(i, j), 1e-8 * static_cast<double>(n));
    }
  }
}

// ------------------------------------------------------ Cholesky sweeps ----

class ConfchoxSweep : public ::testing::TestWithParam<FactorCase> {};

TEST_P(ConfchoxSweep, ResidualIsSmall) {
  const auto& p = GetParam();
  const grid::Grid3D g(p.px, p.py, p.pz);
  xsim::Machine m = make_machine(g.ranks(), machine_memory(p.n, g), xsim::ExecMode::Real);
  const MatrixD a = random_spd_matrix(p.n, 2000 + static_cast<std::uint64_t>(p.n));
  FactorOptions opt;
  opt.block_size = p.v;
  const CholResult chol = confchox(m, g, a.view(), opt);
  EXPECT_LT(xblas::cholesky_residual(a.view(), chol.factors.view()), 200.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfchoxSweep,
    ::testing::Values(FactorCase{64, 1, 1, 1, 16}, FactorCase{64, 2, 2, 1, 16},
                      FactorCase{64, 2, 2, 2, 16}, FactorCase{96, 2, 2, 2, 16},
                      FactorCase{128, 4, 4, 2, 16}, FactorCase{128, 2, 2, 4, 16},
                      FactorCase{60, 2, 2, 2, 16}, FactorCase{65, 2, 2, 2, 16},
                      FactorCase{81, 3, 3, 3, 9}, FactorCase{64, 2, 2, 2, 32},
                      FactorCase{200, 4, 2, 2, 0}),
    case_name);

TEST(Confchox, SolveRoundTrip) {
  const index_t n = 80;
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, machine_memory(n, g), xsim::ExecMode::Real);
  const MatrixD a = random_spd_matrix(n, 7);
  const MatrixD x_true = random_matrix(n, 2, 8);
  MatrixD b(n, 2, 0.0);
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(), x_true.view(),
              0.0, b.view());
  FactorOptions opt;
  opt.block_size = 16;
  const CholResult chol = confchox(m, g, a.view(), opt);
  confchox_solve(chol, b.view());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < 2; ++j) EXPECT_NEAR(b(i, j), x_true(i, j), 1e-6);
  }
}

// --------------------------------------------------- mixed precision ----

TEST(MixedPrecision, LuRefinementReachesFp64BackwardError) {
  const index_t n = 128;
  const index_t nrhs = 4;
  const grid::Grid3D g(2, 2, 2);
  const MatrixD a = random_matrix(n, n, 91);
  const MatrixD b0 = random_matrix(n, nrhs, 92);
  FactorOptions opt;
  opt.block_size = 16;

  xsim::Machine mf = make_machine(8, machine_memory(n, g), xsim::ExecMode::Real);
  MatrixD bx = b0;
  const RefineReport rep =
      conflux_lu_solve_mixed(mf, g, a.view(), bx.view(), opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.steps, 3);

  // The refined solve must land within 10x of the all-fp64 direct solve's
  // backward error (the ISSUE 4 acceptance bar), measured identically.
  xsim::Machine md = make_machine(8, machine_memory(n, g), xsim::ExecMode::Real);
  const LuResult lud = conflux_lu(md, g, a.view(), opt);
  MatrixD bd = b0;
  conflux_lu_solve(lud, bd.view());
  const double direct = solve_backward_error(a.view(), bd.view(), b0.view());
  EXPECT_LE(rep.backward_error, 10.0 * direct);
}

TEST(MixedPrecision, CholeskyRefinementConverges) {
  const index_t n = 96;
  const grid::Grid3D g(2, 2, 1);
  const MatrixD a = random_spd_matrix(n, 93);
  const MatrixD x_true = random_matrix(n, 3, 94);
  MatrixD b(n, 3, 0.0);
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(),
              x_true.view(), 0.0, b.view());
  FactorOptions opt;
  opt.block_size = 16;
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  const RefineReport rep = confchox_solve_mixed(m, g, a.view(), b.view(), opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.steps, 3);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < 3; ++j) EXPECT_NEAR(b(i, j), x_true(i, j), 1e-9);
  }
}

TEST(MixedPrecision, RefinementBeatsPlainFp32Solve) {
  // Sanity on the mechanism itself: the refined fp64 backward error must be
  // orders of magnitude below what the raw fp32 solve achieves.
  const index_t n = 128;
  const grid::Grid3D g(2, 2, 1);
  const MatrixD a = random_matrix(n, n, 95);
  const MatrixD b0 = random_matrix(n, 1, 96);
  MatrixF af(n, n);
  conflux::convert<double, float>(a.view(), af.view());
  FactorOptions opt;
  opt.block_size = 16;
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  const LuResultF luf = conflux_lu(m, g, af.view(), opt);

  MatrixF bf(n, 1);
  conflux::convert<double, float>(b0.view(), bf.view());
  conflux_lu_solve(luf, bf.view());
  MatrixD x32(n, 1);
  conflux::convert<float, double>(bf.view(), x32.view());
  const double raw32 = solve_backward_error(a.view(), x32.view(), b0.view());

  MatrixD bx = b0;
  const RefineReport rep = refine_lu(luf, a.view(), bx.view());
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(rep.backward_error, 1e-3 * raw32);
}

TEST(MixedPrecision, SingularSystemLeavesRhsUntouched) {
  // An exactly singular matrix factors (zero pivot parked in U, as the
  // pivoting stress tests pin) but its triangular solves blow up to
  // inf/NaN. Refinement must detect the non-finite backward error, report
  // non-convergence, and hand back the caller's RHS panel unmodified.
  const index_t n = 64;
  MatrixD a = random_matrix(n, n, 97);
  for (index_t j = 0; j < n; ++j) a(n - 1, j) = a(0, j);  // duplicate row
  const MatrixD b0 = random_matrix(n, 2, 98);
  MatrixD b = b0;
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  FactorOptions opt;
  opt.block_size = 16;
  const RefineReport rep = conflux_lu_solve_mixed(m, g, a.view(), b.view(), opt);
  EXPECT_FALSE(rep.converged);
  EXPECT_FALSE(std::isfinite(rep.backward_error));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < 2; ++j) ASSERT_EQ(b(i, j), b0(i, j));
  }
}

TEST(Confchox, MatchesSequentialPotrf) {
  const index_t n = 96;
  const MatrixD a = random_spd_matrix(n, 11);
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, machine_memory(n, g), xsim::ExecMode::Real);
  FactorOptions opt;
  opt.block_size = 16;
  const CholResult chol = confchox(m, g, a.view(), opt);
  MatrixD ref = a;
  ASSERT_EQ(xblas::potrf(ref.view()), 0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(chol.factors(i, j), ref(i, j), 1e-8 * static_cast<double>(n));
    }
  }
}

TEST(Confchox, IndefiniteMatrixRejected) {
  const index_t n = 32;
  MatrixD a = random_spd_matrix(n, 13);
  a(5, 5) = -1000.0;
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  FactorOptions opt;
  opt.block_size = 8;
  // Non-positive-definite is a classified numerical breakdown (data defeated
  // the algorithm), not a caller contract violation.
  try {
    confchox(m, g, a.view(), opt);
    FAIL() << "indefinite matrix must not factor";
  } catch (const conflux::status_error& e) {
    EXPECT_EQ(e.code(), conflux::StatusCode::kNotPositiveDefinite);
  }
  // The non-throwing variant classifies the same breakdown as a failed
  // Result instead.
  xsim::Machine m2 = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  const auto r = try_confchox(m2, g, a.view(), opt);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), conflux::StatusCode::kNotPositiveDefinite);
}

// ------------------------------------------------- Trace/Real equality -----

class TraceRealEquivalence : public ::testing::TestWithParam<FactorCase> {};

TEST_P(TraceRealEquivalence, LuTotalsMatchExactly) {
  // Pivot *positions* differ between Real (data-driven) and Trace (random)
  // runs, and per-rank charges depend on where pivots land. The machine-wide
  // totals, however, are provably pivot-invariant (each phase's total volume
  // depends only on the number of active rows, not their residues), so Trace
  // runs measure exactly what a Real run would move in aggregate.
  const auto& p = GetParam();
  const grid::Grid3D g(p.px, p.py, p.pz);
  const double mem = machine_memory(p.n, g);
  xsim::Machine real = make_machine(g.ranks(), mem, xsim::ExecMode::Real);
  xsim::Machine trace = make_machine(g.ranks(), mem, xsim::ExecMode::Trace);
  const MatrixD a = random_matrix(p.n, p.n, 21);
  FactorOptions opt;
  opt.block_size = p.v;
  conflux_lu(real, g, a.view(), opt);
  conflux_lu_trace(trace, g, p.n, opt);
  EXPECT_DOUBLE_EQ(real.total_words_received(), trace.total_words_received());
  EXPECT_DOUBLE_EQ(real.total_flops(), trace.total_flops());
  EXPECT_EQ(real.num_steps(), trace.num_steps());
  // Per-rank volumes agree in distribution; the max deviates only by the
  // (bounded) pivot-placement imbalance.
  EXPECT_NEAR(real.max_comm_volume(), trace.max_comm_volume(),
              0.25 * real.max_comm_volume());
}

// Cholesky has no pivoting: Real and Trace runs are fully deterministic and
// must match counter-for-counter on every rank.
TEST_P(TraceRealEquivalence, CholeskyCountersMatchExactly) {
  const auto& p = GetParam();
  const grid::Grid3D g(p.px, p.py, p.pz);
  const double mem = machine_memory(p.n, g);
  xsim::Machine real = make_machine(g.ranks(), mem, xsim::ExecMode::Real);
  xsim::Machine trace = make_machine(g.ranks(), mem, xsim::ExecMode::Trace);
  const MatrixD a = random_spd_matrix(p.n, 23);
  FactorOptions opt;
  opt.block_size = p.v;
  confchox(real, g, a.view(), opt);
  confchox_trace(trace, g, p.n, opt);
  for (int r = 0; r < g.ranks(); ++r) {
    EXPECT_DOUBLE_EQ(real.counters(r).words_sent, trace.counters(r).words_sent);
    EXPECT_DOUBLE_EQ(real.counters(r).words_received,
                     trace.counters(r).words_received);
    EXPECT_DOUBLE_EQ(real.counters(r).flops, trace.counters(r).flops);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TraceRealEquivalence,
                         ::testing::Values(FactorCase{64, 2, 2, 2, 16},
                                           FactorCase{96, 4, 2, 2, 16},
                                           FactorCase{60, 2, 2, 2, 16},
                                           FactorCase{81, 3, 3, 3, 9}),
                         case_name);

// ----------------------------------------------------- volume vs models ----

TEST(Volume, LuNearTheoreticalCostModel) {
  // Lemma 10: Q_conflux = N^3 / (P sqrt(M)) + O(M). At c = P^{1/3} (maximum
  // replication) the O(M) term is the *same order* as the leading term
  // (M^{3/2} P / N^3 = c^{3/2} / sqrt(P) = 1), so the measured volume sits a
  // small constant above the leading term. The exact model validation (±3%)
  // lives in models_test / bench/table2.
  const index_t n = 1024;
  const grid::Grid3D g(4, 4, 4);  // P = 64, c = 4
  const double mem = machine_memory(n, g);
  xsim::Machine m = make_machine(g.ranks(), mem, xsim::ExecMode::Trace);
  FactorOptions opt;
  opt.block_size = 64;
  conflux_lu_trace(m, g, n, opt);
  const double model = std::pow(static_cast<double>(n), 3.0) /
                       (static_cast<double>(g.ranks()) * std::sqrt(mem));
  double avg = 0.0;
  for (int r = 0; r < g.ranks(); ++r) avg += m.counters(r).words_received;
  avg /= static_cast<double>(g.ranks());
  EXPECT_GT(avg, 1.0 * model);
  EXPECT_LT(avg, 4.0 * model);
}

TEST(Volume, LuAboveSectionSixLowerBound) {
  const index_t n = 512;
  const grid::Grid3D g(4, 4, 2);
  const double mem = machine_memory(n, g);
  xsim::Machine m = make_machine(g.ranks(), mem, xsim::ExecMode::Trace);
  FactorOptions opt;
  opt.block_size = 32;
  conflux_lu_trace(m, g, n, opt);
  const double bound = daap::lu_lower_bound_closed_form(
      static_cast<double>(n), static_cast<double>(g.ranks()), mem);
  double avg = 0.0;
  for (int r = 0; r < g.ranks(); ++r) avg += m.counters(r).words_received;
  avg /= static_cast<double>(g.ranks());
  EXPECT_GT(avg, bound);
}

TEST(Volume, CholeskyCommunicatesLikeLuButComputesHalf) {
  // Table 1: same communication, half the flops.
  const index_t n = 512;
  const grid::Grid3D g(4, 4, 2);
  const double mem = machine_memory(n, g);
  FactorOptions opt;
  opt.block_size = 32;
  xsim::Machine mlu = make_machine(g.ranks(), mem, xsim::ExecMode::Trace);
  xsim::Machine mch = make_machine(g.ranks(), mem, xsim::ExecMode::Trace);
  conflux_lu_trace(mlu, g, n, opt);
  confchox_trace(mch, g, n, opt);
  const double flops_ratio = mlu.total_flops() / mch.total_flops();
  EXPECT_NEAR(flops_ratio, 2.0, 0.35);
  const double comm_ratio = mlu.total_words_received() / mch.total_words_received();
  EXPECT_NEAR(comm_ratio, 1.35, 0.5);  // LU also reduces/scatters pivot rows
}

TEST(Volume, MoreLayersReduceCommunication) {
  // The 2.5D promise: with the same P, deeper replication cuts volume.
  const index_t n = 1024;
  FactorOptions opt;
  opt.block_size = 32;
  const grid::Grid3D flat(8, 8, 1);
  const grid::Grid3D deep(4, 4, 4);
  xsim::Machine mf = make_machine(64, machine_memory(n, flat), xsim::ExecMode::Trace);
  xsim::Machine md = make_machine(64, machine_memory(n, deep), xsim::ExecMode::Trace);
  conflux_lu_trace(mf, flat, n, opt);
  conflux_lu_trace(md, deep, n, opt);
  EXPECT_LT(md.avg_comm_volume(), mf.avg_comm_volume());
}

TEST(Volume, MemoryHighWaterWithinBudget) {
  const index_t n = 256;
  const grid::Grid3D g(2, 2, 2);
  const double mem = machine_memory(n, g);
  xsim::Machine m = make_machine(8, mem, xsim::ExecMode::Trace);
  FactorOptions opt;
  opt.block_size = 32;
  conflux_lu_trace(m, g, n, opt);
  // Tiles + panel buffers must stay within a small multiple of M.
  EXPECT_LE(m.memory_highwater_max(), 1.5 * mem);
}

TEST(Volume, StepCostsSumToTotals) {
  const index_t n = 256;
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, machine_memory(n, g), xsim::ExecMode::Trace);
  FactorOptions opt;
  opt.block_size = 32;
  opt.record_step_costs = true;
  const LuResult lu = conflux_lu_trace(m, g, n, opt);
  ASSERT_EQ(lu.step_costs.size(), static_cast<std::size_t>(n / 32));
  double words = 0.0, flops = 0.0;
  for (const auto& s : lu.step_costs) {
    words += s.pivoting_words + s.a00_words + s.panels_words + s.a11_words;
    flops += s.pivoting_flops + s.a00_flops + s.panels_flops + s.a11_flops;
  }
  EXPECT_NEAR(words, m.total_words_received(), 1e-6 * words + 1.0);
  EXPECT_NEAR(flops, m.total_flops(), 1e-6 * flops + 1.0);
}

// ------------------------------------------------------- ScaLAPACK API -----

TEST(ScalapackApi, PdgetrfFactorsDistributedMatrix) {
  const index_t n = 64;
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, machine_memory(n, g), xsim::ExecMode::Real);
  layout::BlockCyclicLayout l;
  l.rows = l.cols = n;
  l.mb = l.nb = 8;  // ScaLAPACK-style small blocks, unrelated to v
  l.pr = 2;
  l.pc = 4;
  const MatrixD a = random_matrix(n, n, 31);
  const auto dist = layout::DistMatrix::from_global(a.view(), l);
  FactorOptions opt;
  opt.block_size = 16;
  const PdgetrfResult r = pdgetrf(m, g, dist, opt);
  EXPECT_LT(xblas::lu_residual(a.view(), r.lu.factors.view(), r.lu.perm), 200.0);
  EXPECT_EQ(r.factors.to_global(), r.lu.factors);
  EXPECT_GT(r.redistribution_words, 0.0);
}

TEST(ScalapackApi, PdpotrfFactorsDistributedMatrix) {
  const index_t n = 64;
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = make_machine(4, machine_memory(n, g), xsim::ExecMode::Real);
  layout::BlockCyclicLayout l;
  l.rows = l.cols = n;
  l.mb = l.nb = 4;
  l.pr = 2;
  l.pc = 2;
  const MatrixD a = random_spd_matrix(n, 33);
  const auto dist = layout::DistMatrix::from_global(a.view(), l);
  FactorOptions opt;
  opt.block_size = 16;
  const PdpotrfResult r = pdpotrf(m, g, dist, opt);
  EXPECT_LT(xblas::cholesky_residual(a.view(), r.chol.factors.view()), 200.0);
}

TEST(ScalapackApi, TraceModeChargesRedistribution) {
  const index_t n = 128;
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, machine_memory(n, g), xsim::ExecMode::Trace);
  layout::BlockCyclicLayout l;
  l.rows = l.cols = n;
  l.mb = l.nb = 16;
  l.pr = 4;
  l.pc = 2;
  const layout::DistMatrix dist(l);
  const PdgetrfResult r = pdgetrf(m, g, dist, FactorOptions{.block_size = 32});
  EXPECT_GT(r.redistribution_words, 0.0);
  // Redistribution is O(N^2), sub-leading vs the factorization volume.
  EXPECT_LT(r.redistribution_words, m.total_words_received());
}

// -------------------------------------------------------- option guards ----

TEST(Options, BlockSizeMustBeMultipleOfLayers) {
  const grid::Grid3D g(2, 2, 4);
  xsim::Machine m = make_machine(16, 1 << 20, xsim::ExecMode::Trace);
  FactorOptions opt;
  opt.block_size = 10;  // not a multiple of pz = 4
  EXPECT_THROW(conflux_lu_trace(m, g, 64, opt), contract_error);
}

TEST(Options, GridMustMatchMachine) {
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(4, 1 << 20, xsim::ExecMode::Trace);
  EXPECT_THROW(conflux_lu_trace(m, g, 64, FactorOptions{}), contract_error);
}

TEST(Options, DefaultBlockSizeIsLayerMultiple) {
  for (int pz : {1, 2, 3, 4, 8}) {
    const grid::Grid3D g(2, 2, pz);
    const index_t v = default_block_size(4096, g);
    EXPECT_EQ(v % pz, 0) << "pz=" << pz;
    EXPECT_GE(v, pz);
  }
}

}  // namespace
}  // namespace conflux::factor
