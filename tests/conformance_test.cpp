// Randomized cross-implementation conformance suite (ISSUE 4).
//
// A seeded sweep over (n ragged/aligned, 3D grid shapes with pz in {1,2,4},
// block sizes, 1 and 4 BLAS threads) asserting that the communication-
// optimal factorizations and the 2D baselines AGREE: in both precisions,
//   - conflux_lu / scalapack_lu factors satisfy the normwise backward-error
//     bound ||PA - LU||_F <= C * n * eps_T * ||A||_F,
//   - confchox / scalapack_cholesky factors satisfy the analogous bound,
//   - multi-RHS solves through either implementation's factors satisfy the
//     componentwise (Oettli-Prager) backward-error bound
//     max_ij |b - A x|_ij / (|A||x| + |b|)_ij <= C * n * eps_T.
// Agreement is asserted through bounds, never bitwise: the two schedules
// pick different pivots (tournament vs per-column partial pivoting), so
// their factors differ legitimately while both must be backward stable.
//
// The fp32 legs run the identical schedule objects — only eps_T changes in
// the bounds — which is exactly the precision-agnosticism the scalar-
// templated stack claims.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <cstring>

#include "baselines/scalapack2d.hpp"
#include "blas/lapack.hpp"
#include "blas/microkernel.hpp"
#include "blas/tuning.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "factor/mixed.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

xsim::Machine real_machine(int ranks) {
  xsim::MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = 1e9;
  return xsim::Machine(spec, xsim::ExecMode::Real);
}

struct ConfCase {
  index_t n;       // ragged and aligned sizes
  int px, py, pz;  // 3D grid for conflux/confchox
  int pr, pc;      // 2D grid for the baselines
  index_t v;       // conflux block size (multiple of pz)
  index_t nb;      // baseline block size
  int threads;     // xblas thread count for this case
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<ConfCase>& info) {
  const auto& p = info.param;
  return "n" + std::to_string(p.n) + "_g" + std::to_string(p.px) +
         std::to_string(p.py) + std::to_string(p.pz) + "_v" + std::to_string(p.v) +
         "_t" + std::to_string(p.threads);
}

// The sweep: ragged (33, 70, 100, 130) and aligned (64, 96, 128, 160) sizes,
// pz in {1, 2, 4}, square and skewed grids, 1 and 4 threads. Seeds vary per
// case so the sweep touches different random matrices every row.
std::vector<ConfCase> sweep() {
  return {
      {64, 1, 1, 1, 1, 1, 16, 16, 1, 101},    // serial corner
      {64, 2, 2, 1, 2, 2, 16, 16, 4, 102},    // aligned, square grids
      {70, 2, 2, 2, 2, 2, 16, 16, 1, 103},    // ragged + layered
      {96, 4, 2, 1, 4, 2, 8, 32, 4, 104},     // skewed grid, small v
      {100, 2, 2, 4, 2, 4, 16, 16, 1, 105},   // ragged + pz=4
      {128, 4, 4, 2, 4, 4, 32, 16, 4, 106},   // aligned, larger machine
      {130, 2, 4, 1, 4, 2, 16, 8, 1, 107},    // ragged, skewed both ways
      {160, 2, 2, 4, 2, 2, 32, 64, 4, 108},   // aligned + pz=4, wide blocks
      {33, 2, 2, 2, 2, 2, 8, 8, 1, 109},      // tiny ragged corner
  };
}

/// Scoped override of the xblas thread count.
class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) : saved_(xblas::tuning().threads) {
    xblas::tuning().threads = threads;
  }
  ~ThreadGuard() { xblas::tuning().threads = saved_; }

 private:
  int saved_;
};

/// Componentwise (Oettli-Prager) backward error of A X = B, computed in
/// fp64: max over entries of |B - A X| ./ (|A| |X| + |B|). fp32 solutions
/// are promoted first; the |A| rounding they carry is O(eps32) and covered
/// by the fp32 bound.
double oettli_prager(ConstViewD a, ConstViewD x, ConstViewD b) {
  const index_t n = a.rows();
  const index_t nrhs = x.cols();
  MatrixD r(n, nrhs);
  copy<double>(b, r.view());
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, -1.0, a, x, 1.0, r.view());
  // denom = |A| |X| + |B|, formed row by row.
  double worst = 0.0;
  std::vector<double> denom(static_cast<std::size_t>(nrhs));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      denom[static_cast<std::size_t>(j)] = std::abs(b(i, j));
    }
    for (index_t k = 0; k < n; ++k) {
      const double aik = std::abs(a(i, k));
      if (aik == 0.0) continue;
      for (index_t j = 0; j < nrhs; ++j) {
        denom[static_cast<std::size_t>(j)] += aik * std::abs(x(k, j));
      }
    }
    for (index_t j = 0; j < nrhs; ++j) {
      const double d = denom[static_cast<std::size_t>(j)];
      const double num = std::abs(r(i, j));
      if (d > 0.0) {
        worst = std::max(worst, num / d);
      } else if (num > 0.0) {
        worst = std::numeric_limits<double>::infinity();
      }
    }
  }
  return worst;
}

/// Componentwise bound C * n * eps for the scalar the system was solved in.
template <typename T>
double solve_bound(index_t n) {
  return 100.0 * static_cast<double>(n) *
         static_cast<double>(std::numeric_limits<T>::epsilon());
}

constexpr double kResidualBound = 300.0;  // normwise, already n*eps_T-scaled
constexpr index_t kNrhs = 3;

// ------------------------------------------------------------------- LU ----

template <typename T>
void run_lu_conformance(const ConfCase& p) {
  ThreadGuard guard(p.threads);
  const MatrixD a64 = random_matrix(p.n, p.n, p.seed);
  const MatrixD b64 = random_matrix(p.n, kNrhs, p.seed + 7);
  Matrix<T> a(p.n, p.n);
  convert<double, T>(a64.view(), a.view());

  // Communication-optimal factorization.
  const grid::Grid3D g3(p.px, p.py, p.pz);
  xsim::Machine m3 = real_machine(g3.ranks());
  factor::FactorOptions opt;
  opt.block_size = p.v;
  const auto lu = factor::conflux_lu(m3, g3, a.view(), opt);
  ASSERT_EQ(static_cast<index_t>(lu.perm.size()), p.n);
  EXPECT_LT(xblas::lu_residual(a.view(), lu.factors.view(), lu.perm),
            kResidualBound);

  // 2D baseline on the same matrix.
  const grid::Grid2D g2{p.pr, p.pc};
  xsim::Machine m2 = real_machine(g2.ranks());
  const auto base = baselines::scalapack_lu(
      m2, g2, a.view(), baselines::Baseline2DOptions{.block_size = p.nb});
  const auto base_perm = xblas::ipiv_to_permutation(base.ipiv, p.n);
  EXPECT_LT(xblas::lu_residual(a.view(), base.factors.view(), base_perm),
            kResidualBound);

  // Multi-RHS solves through BOTH factorizations must satisfy the same
  // componentwise backward-error bound against the fp64 statement.
  Matrix<T> bx(p.n, kNrhs);
  convert<double, T>(b64.view(), bx.view());
  factor::conflux_lu_solve(lu, bx.view());
  MatrixD x64(p.n, kNrhs);
  convert<T, double>(bx.view(), x64.view());
  EXPECT_LT(oettli_prager(a64.view(), x64.view(), b64.view()), solve_bound<T>(p.n))
      << "conflux_lu solve backward error out of bounds";

  Matrix<T> bs(p.n, kNrhs);
  convert<double, T>(b64.view(), bs.view());
  xblas::getrs(base.factors.view(), base.ipiv, bs.view());
  convert<T, double>(bs.view(), x64.view());
  EXPECT_LT(oettli_prager(a64.view(), x64.view(), b64.view()), solve_bound<T>(p.n))
      << "scalapack_lu solve backward error out of bounds";
}

class LuConformance : public ::testing::TestWithParam<ConfCase> {};

TEST_P(LuConformance, Fp64) { run_lu_conformance<double>(GetParam()); }
TEST_P(LuConformance, Fp32) { run_lu_conformance<float>(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Sweep, LuConformance, ::testing::ValuesIn(sweep()),
                         case_name);

// ------------------------------------------------------------- Cholesky ----

template <typename T>
void run_cholesky_conformance(const ConfCase& p) {
  ThreadGuard guard(p.threads);
  const MatrixD a64 = random_spd_matrix(p.n, p.seed);
  const MatrixD b64 = random_matrix(p.n, kNrhs, p.seed + 13);
  Matrix<T> a(p.n, p.n);
  convert<double, T>(a64.view(), a.view());

  const grid::Grid3D g3(p.px, p.py, p.pz);
  xsim::Machine m3 = real_machine(g3.ranks());
  factor::FactorOptions opt;
  opt.block_size = p.v;
  const auto chol = factor::confchox(m3, g3, a.view(), opt);
  EXPECT_LT(xblas::cholesky_residual(a.view(), chol.factors.view()),
            kResidualBound);

  const grid::Grid2D g2{p.pr, p.pc};
  xsim::Machine m2 = real_machine(g2.ranks());
  const Matrix<T> base = baselines::scalapack_cholesky(
      m2, g2, a.view(), baselines::Baseline2DOptions{.block_size = p.nb});
  EXPECT_LT(xblas::cholesky_residual(a.view(), base.view()), kResidualBound);

  Matrix<T> bx(p.n, kNrhs);
  convert<double, T>(b64.view(), bx.view());
  factor::confchox_solve(chol, bx.view());
  MatrixD x64(p.n, kNrhs);
  convert<T, double>(bx.view(), x64.view());
  EXPECT_LT(oettli_prager(a64.view(), x64.view(), b64.view()), solve_bound<T>(p.n))
      << "confchox solve backward error out of bounds";

  Matrix<T> bs(p.n, kNrhs);
  convert<double, T>(b64.view(), bs.view());
  xblas::potrs(base.view(), bs.view());
  convert<T, double>(bs.view(), x64.view());
  EXPECT_LT(oettli_prager(a64.view(), x64.view(), b64.view()), solve_bound<T>(p.n))
      << "scalapack_cholesky solve backward error out of bounds";
}

class CholeskyConformance : public ::testing::TestWithParam<ConfCase> {};

TEST_P(CholeskyConformance, Fp64) { run_cholesky_conformance<double>(GetParam()); }
TEST_P(CholeskyConformance, Fp32) { run_cholesky_conformance<float>(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Sweep, CholeskyConformance, ::testing::ValuesIn(sweep()),
                         case_name);

// ------------------------------------------------- cross-precision sanity ----
// The fp32 and fp64 paths run the same schedule on the same input: their
// factors must agree to fp32 accuracy (this catches a template divergence —
// e.g. a path that silently computes in the wrong precision — that the
// per-precision bounds alone would miss).

TEST(CrossPrecision, LuFactorsAgreeToFp32Accuracy) {
  const index_t n = 96;
  const MatrixD a64 = random_dominant_matrix(n, 77);
  MatrixF a32(n, n);
  convert<double, float>(a64.view(), a32.view());

  const grid::Grid3D g(2, 2, 2);
  factor::FactorOptions opt;
  opt.block_size = 16;
  xsim::Machine md = real_machine(g.ranks());
  const auto lud = factor::conflux_lu(md, g, a64.view(), opt);
  xsim::Machine mf = real_machine(g.ranks());
  const auto luf = factor::conflux_lu(mf, g, a32.view(), opt);

  // Diagonal dominance keeps both pivot tournaments on the same winners, so
  // the factors are directly comparable entry by entry.
  ASSERT_EQ(lud.perm, luf.perm);
  double worst = 0.0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const double d = lud.factors(i, j);
      const double f = static_cast<double>(luf.factors(i, j));
      worst = std::max(worst, std::abs(d - f) / std::max(1.0, std::abs(d)));
    }
  }
  EXPECT_LT(worst, 100.0 * static_cast<double>(n) *
                       static_cast<double>(std::numeric_limits<float>::epsilon()));
}

// ------------------------------------------- mixed-ladder RHS edge cases ----
// The degradation ladder must be shape-robust at the same boundaries the
// direct solves are (ISSUE 9 satellite): an empty RHS block, one column,
// more columns than the matrix order, and strided client views.

TEST(MixedLadderEdges, ZeroAndSingleAndWideRhsAllConverge) {
  const index_t n = 64;
  const grid::Grid3D g(2, 2, 1);
  const MatrixD a = random_dominant_matrix(n, 301);
  const MatrixD spd = random_spd_matrix(n, 302);
  factor::FactorOptions fopt;
  fopt.block_size = 16;

  for (const index_t nrhs : {index_t{0}, index_t{1}, n + 9}) {
    MatrixD b = nrhs > 0 ? random_matrix(n, nrhs, 303 + nrhs) : MatrixD(n, 0);
    xsim::Machine m = real_machine(g.ranks());
    const auto lu_rep = factor::conflux_lu_solve_mixed_ex(
        m, g, a.view(), b.view(), {.factor = fopt});
    EXPECT_TRUE(lu_rep.ok()) << "LU ladder, nrhs " << nrhs;
    EXPECT_FALSE(lu_rep.fp64_fallback) << "healthy input must stay on fp32";
    if (nrhs > 0) {
      EXPECT_LE(lu_rep.backward_error, 1e-12) << "nrhs " << nrhs;
    }

    MatrixD bc = nrhs > 0 ? random_matrix(n, nrhs, 313 + nrhs) : MatrixD(n, 0);
    xsim::Machine mc = real_machine(g.ranks());
    const auto chol_rep = factor::confchox_solve_mixed_ex(
        mc, g, spd.view(), bc.view(), {.factor = fopt});
    EXPECT_TRUE(chol_rep.ok()) << "Cholesky ladder, nrhs " << nrhs;
    EXPECT_FALSE(chol_rep.fp64_fallback);
    if (nrhs > 0) {
      EXPECT_LE(chol_rep.backward_error, 1e-12) << "nrhs " << nrhs;
    }
  }
}

TEST(MixedLadderEdges, RefinementOnStridedViewMatchesPackedBitwise) {
  // Refinement against one fixed fp32 factorization is a deterministic
  // serial loop: handing it a strided RHS view must produce the bitwise
  // answer of the packed copy and leave the rest of the buffer untouched.
  const index_t n = 80;
  const index_t nrhs = 3;
  const index_t pad = 4;
  const grid::Grid3D g(2, 2, 1);
  const MatrixD a = random_dominant_matrix(n, 305);
  MatrixF a32(n, n);
  convert<double, float>(a.view(), a32.view());
  factor::FactorOptions fopt;
  fopt.block_size = 16;
  xsim::Machine m = real_machine(g.ranks());
  const auto lu32 = factor::conflux_lu(m, g, a32.view(), fopt);

  const MatrixD rhs = random_matrix(n, nrhs, 306);
  MatrixD packed = rhs;
  const auto rep_packed = factor::refine_lu(lu32, a.view(), packed.view());
  ASSERT_TRUE(rep_packed.converged);

  MatrixD wide(n, nrhs + pad, -3.25);
  copy(rhs.view(), wide.block(0, 0, n, nrhs));
  const auto rep_strided =
      factor::refine_lu(lu32, a.view(), wide.block(0, 0, n, nrhs));
  EXPECT_EQ(rep_strided.steps, rep_packed.steps);
  EXPECT_EQ(rep_strided.backward_error, rep_packed.backward_error);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      ASSERT_EQ(wide(i, j), packed(i, j)) << "strided refinement diverged";
    }
    for (index_t j = nrhs; j < nrhs + pad; ++j) {
      ASSERT_EQ(wide(i, j), -3.25) << "refinement wrote outside its view";
    }
  }
}


// Cross-ISA conformance: the full distributed factorizations must be
// bitwise invariant under microkernel dispatch. Every registered kernel the
// host can run (forced via ScopedIsa, exactly what XBLAS_ISA forces at
// startup) must reproduce the portable kernel's factors and pivots bit for
// bit — the schedules, pivot decisions, and ABFT checksums downstream all
// assume results never depend on which SIMD tier executed the flops.
TEST(CrossIsa, ConfluxLuAndConfchoxFactorsBitwiseInvariant) {
  const index_t n = 139;  // ragged against every register tile
  const grid::Grid3D g(2, 2, 2);
  factor::FactorOptions opt;
  opt.block_size = 16;

  const MatrixD a64 = random_matrix(n, n, 404);
  const MatrixD spd = random_spd_matrix(n, 405);

  MatrixD lu_want;
  std::vector<index_t> perm_want;
  MatrixD ch_want;
  {
    xblas::ScopedIsa force(xblas::Isa::Portable);
    xsim::Machine m = real_machine(g.ranks());
    auto lu = factor::conflux_lu(m, g, a64.view(), opt);
    lu_want = std::move(lu.factors);
    perm_want = std::move(lu.perm);
    xsim::Machine mc = real_machine(g.ranks());
    ch_want = factor::confchox(mc, g, spd.view(), opt).factors;
  }

  for (int i = 0; i < xblas::kIsaCount; ++i) {
    const xblas::Isa isa = static_cast<xblas::Isa>(i);
    if (!xblas::isa_available(isa)) continue;
    xblas::ScopedIsa force(isa);
    xsim::Machine m = real_machine(g.ranks());
    const auto lu = factor::conflux_lu(m, g, a64.view(), opt);
    EXPECT_EQ(lu.perm, perm_want) << xblas::isa_name(isa);
    EXPECT_EQ(std::memcmp(lu.factors.data(), lu_want.data(),
                          sizeof(double) * static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n)),
              0)
        << "conflux_lu factors differ under " << xblas::isa_name(isa);
    xsim::Machine mc = real_machine(g.ranks());
    const auto ch = factor::confchox(mc, g, spd.view(), opt);
    EXPECT_EQ(std::memcmp(ch.factors.data(), ch_want.data(),
                          sizeof(double) * static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n)),
              0)
        << "confchox factors differ under " << xblas::isa_name(isa);
  }
}

}  // namespace
}  // namespace conflux
