// Fault-injection soak (ISSUE 6): sweep deterministic fault seeds across
// every injection site and assert the system's ONLY observable behaviors
// are (a) a classified Status with the site's expected code, or (b) a clean
// run whose factors are BITWISE identical to the fault-free golden run.
// Never a crash, never a hang (the ctest timeout is the backstop; the pool
// watchdog is the mechanism), never a silently wrong answer.
//
// The pool runs with 2 threads (CONFLUX_POOL_THREADS, pinned below before
// the pool's first use) so the pool sites exercise real cross-thread
// cancellation, and every LU run uses lookahead so pool tasks exist to
// fault.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "recover/options.hpp"
#include "sched/taskpool.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

using factor::CholResult;
using factor::FactorOptions;
using factor::LuResult;

// CONFLUX_POOL_THREADS is read once at the pool's first width() call; pin
// it before any test (and before the static pool exists) via a file-scope
// initializer.
const bool g_pool_env = [] {
  ::setenv("CONFLUX_POOL_THREADS", "2", /*overwrite=*/1);
  return true;
}();

constexpr index_t kN = 64;
constexpr index_t kV = 16;

xsim::Machine fresh_machine() {
  xsim::MachineSpec spec;
  spec.num_ranks = 4;
  spec.memory_words = 1e9;
  return xsim::Machine(spec, xsim::ExecMode::Real);
}

FactorOptions lu_options() {
  FactorOptions opt;
  opt.block_size = kV;
  opt.lookahead = 1;  // pool tasks must exist for the pool sites to fault
  return opt;
}

const MatrixD& lu_input() {
  static const MatrixD a = random_matrix(kN, kN, 20260807);
  return a;
}

const MatrixD& chol_input() {
  static const MatrixD a = random_spd_matrix(kN, 20260808);
  return a;
}

/// Fault-free golden LU, computed once; every clean soak run must reproduce
/// it bitwise (fault plumbing and breakdown detection are read-only).
const LuResult& golden_lu() {
  static const LuResult lu = [] {
    xsim::Machine m = fresh_machine();
    const grid::Grid3D g(2, 2, 1);
    return factor::conflux_lu(m, g, lu_input().view(), lu_options());
  }();
  return lu;
}

const CholResult& golden_chol() {
  static const CholResult chol = [] {
    xsim::Machine m = fresh_machine();
    const grid::Grid3D g(2, 2, 1);
    return factor::confchox(m, g, chol_input().view(), lu_options());
  }();
  return chol;
}

void expect_bitwise_golden_lu(const LuResult& lu, const char* what) {
  ASSERT_EQ(lu.perm, golden_lu().perm) << what;
  ASSERT_EQ(lu.factors, golden_lu().factors) << what;
}

struct SoakTally {
  int runs = 0;
  int clean = 0;
  int classified = 0;
};

/// Seed sweep bounds, overridable from the environment so a CI leg (or a
/// developer chasing one seed) can replay or widen the sweep without a
/// rebuild:
///   CONFLUX_FAULT_SOAK_SEED_BASE  first seed (default 0 / the test's base)
///   CONFLUX_FAULT_SOAK_SEEDS      number of seeds (default: the test's)
std::uint64_t soak_seed_base(std::uint64_t def) {
  const char* e = std::getenv("CONFLUX_FAULT_SOAK_SEED_BASE");
  return e != nullptr ? std::strtoull(e, nullptr, 10) : def;
}

int soak_seed_count(int def) {
  const char* e = std::getenv("CONFLUX_FAULT_SOAK_SEEDS");
  if (e == nullptr) return def;
  const int v = std::atoi(e);
  return v > 0 ? v : def;
}

/// The exact environment that replays one failing soak run; attached to
/// every assertion via SCOPED_TRACE so any failure prints its repro line.
std::string repro_line(const fault::Config& cfg, fault::Site site) {
  return "repro: CONFLUX_FAULT_SEED=" + std::to_string(cfg.seed) +
         " CONFLUX_FAULT_RATE=" + std::to_string(cfg.rate) +
         " CONFLUX_FAULT_SITES=" + fault::site_name(site);
}

/// The metrics registry's per-site fire counter (fault.cpp increments it in
/// should_inject's success path), used to reconcile observed outcomes
/// against injection activity.
std::string fired_counter_name(fault::Site site) {
  return std::string("fault.fired.") + fault::site_name(site);
}

double fired_count(fault::Site site) {
  return metrics::snapshot().value(fired_counter_name(site).c_str());
}

/// True when a fired fault may legitimately leave the run clean: a worker
/// stall can finish before the watchdog, a transient task throw is absorbed
/// by bounded retry, and an ABFT-detected bitflip is rolled back and
/// re-executed inside the run.
bool site_absorbable(fault::Site site) {
  return site == fault::Site::kWorkerStall ||
         site == fault::Site::kTransientTaskThrow ||
         site == fault::Site::kBitflip;
}

/// Reconcile one run's outcome against the site's fire count delta:
///   - sites whose fault always corrupts the run (NaN, zero pivot, task
///     throw, crash): classified <=> fired >= 1, clean <=> fired == 0;
///   - absorbable sites: only classified => fired holds.
void reconcile_fired(fault::Site site, bool classified, double fired_delta,
                     std::uint64_t seed) {
  if (classified) {
    EXPECT_GE(fired_delta, 1.0)
        << "seed " << seed << ": run classified but "
        << fired_counter_name(site) << " never fired";
  } else if (!site_absorbable(site)) {
    EXPECT_EQ(fired_delta, 0.0)
        << "seed " << seed << ": " << fired_counter_name(site)
        << " fired but the run came back clean";
  }
}

/// One LU soak run under `cfg`: returns via EXPECT/ASSERT; tallies whether
/// the run was clean or classified.
void soak_lu_once(fault::Site site, const fault::Config& cfg,
                  const std::set<StatusCode>& allowed, SoakTally& tally) {
  SCOPED_TRACE(repro_line(cfg, site));
  golden_lu();  // force the fault-free golden BEFORE arming injection
  const bool metrics_was = metrics::enabled();
  metrics::set_enabled(true);
  const double fired0 = fired_count(site);
  fault::ScopedConfig scoped(cfg);
  xsim::Machine m = fresh_machine();
  const grid::Grid3D g(2, 2, 1);
  const auto r = factor::try_conflux_lu(m, g, lu_input().view(), lu_options());
  const double fired_delta = fired_count(site) - fired0;
  metrics::set_enabled(metrics_was);
  reconcile_fired(site, !r.ok(), fired_delta, cfg.seed);
  ++tally.runs;
  if (r.ok()) {
    // Nothing fired, or the fault was harmless (a worker stall that beat
    // the watchdog): the result must be exactly the fault-free one.
    expect_bitwise_golden_lu(r.value(), "clean run under armed faults");
    ++tally.clean;
    return;
  }
  ++tally.classified;
  EXPECT_TRUE(allowed.count(r.status().code()) == 1)
      << "seed " << cfg.seed << ": unexpected classification "
      << status_code_name(r.status().code()) << " (" << r.status().to_string()
      << ")";
  // A failed run must never leave wreckage: the machine and pool recover,
  // and a fault-free rerun reproduces the golden factors bitwise.
  fault::Config off;
  fault::configure(off);
  xsim::Machine m2 = fresh_machine();
  const auto clean = factor::try_conflux_lu(m2, g, lu_input().view(), lu_options());
  ASSERT_TRUE(clean.ok()) << "pool did not recover after " << r.status().to_string();
  expect_bitwise_golden_lu(clean.value(), "recovery run after classified fault");
}

fault::Config site_config(fault::Site site, std::uint64_t seed, double rate) {
  fault::Config cfg;
  cfg.seed = seed;
  cfg.rate = rate;
  cfg.site_mask = 1u << static_cast<int>(site);
  return cfg;
}

TEST(FaultSoak, PanelNanAlwaysClassifiedNonFinite) {
  SoakTally tally;
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(60);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    soak_lu_once(fault::Site::kPanelNaN,
                 site_config(fault::Site::kPanelNaN, seed, 0.5),
                 {StatusCode::kNonFinite}, tally);
  }
  // Rate 0.5 over 4 steps per run: overwhelmingly most seeds must fire.
  EXPECT_GE(tally.classified, (2 * count) / 3) << "injection harness looks dead";
  EXPECT_EQ(tally.runs, count);
}

TEST(FaultSoak, ForcedZeroPivotClassifiedSingular) {
  SoakTally tally;
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(60);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    soak_lu_once(fault::Site::kZeroPivot,
                 site_config(fault::Site::kZeroPivot, seed, 0.5),
                 {StatusCode::kSingularPivot}, tally);
  }
  EXPECT_GE(tally.classified, (2 * count) / 3) << "injection harness looks dead";
}

TEST(FaultSoak, TaskThrowClassifiedTaskFailed) {
  SoakTally tally;
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(60);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    soak_lu_once(fault::Site::kTaskThrow,
                 site_config(fault::Site::kTaskThrow, seed, 0.05),
                 {StatusCode::kTaskFailed}, tally);
  }
  // 5% per pool task over dozens of tasks: a healthy minority must fire,
  // and the rest prove the fault-free path is bitwise untouched.
  EXPECT_GE(tally.classified, count / 6) << "injection harness looks dead";
  EXPECT_GE(tally.clean, 1) << "rate 0.05 should leave some runs clean";
}

TEST(FaultSoak, WorkerStallWedgesOrCompletesCorrectly) {
  // A stalled worker either trips the watchdog (stall >= interval) and
  // classifies as kPoolWedged, or finishes late with a bitwise-correct
  // result. Both are acceptable; a hang or wrong answer is not.
  sched::TaskPool::instance().set_watchdog_seconds(0.25);
  SoakTally tally;
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(10);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    fault::Config cfg = site_config(fault::Site::kWorkerStall, seed, 0.02);
    cfg.stall_s = 0.6;
    soak_lu_once(fault::Site::kWorkerStall, cfg, {StatusCode::kPoolWedged}, tally);
  }
  sched::TaskPool::instance().set_watchdog_seconds(0.0);
  EXPECT_EQ(tally.runs, count);
}

TEST(FaultSoak, TransientTaskThrowAbsorbedByRetryOrClassified) {
  // Transient task failures are absorbed by the pool's bounded retry
  // (DESIGN.md "Recovery model" layer 1): fired faults re-enqueue the task
  // and the run completes bitwise golden. Only an exhausted retry budget
  // (vanishingly rare at the default budget) may classify — and then only
  // with the transient code.
  SoakTally tally;
  const bool metrics_was = metrics::enabled();
  metrics::set_enabled(true);
  const double fired0 = fired_count(fault::Site::kTransientTaskThrow);
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(20);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    soak_lu_once(fault::Site::kTransientTaskThrow,
                 site_config(fault::Site::kTransientTaskThrow, seed, 0.05),
                 {StatusCode::kTransientTaskFailure}, tally);
  }
  const double fired = fired_count(fault::Site::kTransientTaskThrow) - fired0;
  metrics::set_enabled(metrics_was);
  EXPECT_GE(fired, static_cast<double>(count) / 4)
      << "injection harness looks dead";
  EXPECT_GE(tally.clean, (3 * count) / 4)
      << "retry should absorb nearly all transient faults at the default budget";
}

TEST(FaultSoak, CrashAtStepClassifiedCrashSimulated) {
  // With checkpointing armed, a simulated crash surfaces as the typed
  // kCrashSimulated status (resumability itself is recover_test's job; here
  // the soak proves classification and that a fresh run is unpolluted).
  recover::Options ropt;
  ropt.ckpt_every = 1;
  recover::ScopedOptions scoped_ropt(ropt);
  SoakTally tally;
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(20);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    soak_lu_once(fault::Site::kCrashAtStep,
                 site_config(fault::Site::kCrashAtStep, seed, 0.5),
                 {StatusCode::kCrashSimulated}, tally);
  }
  EXPECT_GE(tally.classified, count / 2) << "injection harness looks dead";
  EXPECT_EQ(tally.runs, count);
}

TEST(FaultSoak, BitflipUnderAbftIsAbsorbedBitwise) {
  // An injected accumulator bitflip only exists when ABFT verification is
  // on (the site lives in the verify hook); detection rolls back to the
  // last checkpoint and re-executes, so every run must still come back
  // bitwise golden. kDataCorruption may classify only if the re-execution
  // budget is exhausted.
  recover::Options ropt;
  ropt.ckpt_every = 1;
  ropt.abft = true;
  ropt.abft_every = 1;  // small runs: verify every step so fires are caught
  recover::ScopedOptions scoped_ropt(ropt);
  SoakTally tally;
  const bool metrics_was = metrics::enabled();
  metrics::set_enabled(true);
  const double fired0 = fired_count(fault::Site::kBitflip);
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(12);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    soak_lu_once(fault::Site::kBitflip,
                 site_config(fault::Site::kBitflip, seed, 0.25),
                 {StatusCode::kDataCorruption}, tally);
  }
  const double fired = fired_count(fault::Site::kBitflip) - fired0;
  metrics::set_enabled(metrics_was);
  EXPECT_GE(fired, static_cast<double>(count) / 4)
      << "injection harness looks dead";
  EXPECT_GE(tally.clean, count - 1)
      << "ABFT re-execution should absorb detected bitflips";
}

TEST(FaultSoak, CholeskyPanelNanClassified) {
  SoakTally tally;
  const grid::Grid3D g(2, 2, 1);
  golden_chol();  // force the fault-free golden BEFORE arming injection
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(20);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const fault::Config cfg = site_config(fault::Site::kPanelNaN, seed, 0.5);
    SCOPED_TRACE(repro_line(cfg, fault::Site::kPanelNaN));
    fault::ScopedConfig scoped(cfg);
    xsim::Machine m = fresh_machine();
    const auto r = factor::try_confchox(m, g, chol_input().view(), lu_options());
    ++tally.runs;
    if (r.ok()) {
      ASSERT_EQ(r.value().factors, golden_chol().factors);
      ++tally.clean;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kNonFinite)
          << "seed " << seed << ": " << r.status().to_string();
      ++tally.classified;
    }
  }
  EXPECT_GE(tally.classified, count / 2);
}

TEST(FaultSoak, CholeskyForcedZeroDiagonalClassifiedNotPd) {
  SoakTally tally;
  const grid::Grid3D g(2, 2, 1);
  golden_chol();  // force the fault-free golden BEFORE arming injection
  const std::uint64_t base = soak_seed_base(0);
  const int count = soak_seed_count(20);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const fault::Config cfg = site_config(fault::Site::kZeroPivot, seed, 0.5);
    SCOPED_TRACE(repro_line(cfg, fault::Site::kZeroPivot));
    fault::ScopedConfig scoped(cfg);
    xsim::Machine m = fresh_machine();
    const auto r = factor::try_confchox(m, g, chol_input().view(), lu_options());
    ++tally.runs;
    if (r.ok()) {
      ASSERT_EQ(r.value().factors, golden_chol().factors);
      ++tally.clean;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kNotPositiveDefinite)
          << "seed " << seed << ": " << r.status().to_string();
      ++tally.classified;
    }
  }
  EXPECT_GE(tally.classified, count / 2);
}

TEST(FaultSoak, EnvironmentConfigurationParses) {
  // The env plumbing (seed/rate/sites/stall) is what the CI fault legs use;
  // pin the programmatic equivalent of a parsed config here and verify the
  // decision function is deterministic for a fixed (seed, site, counter).
  fault::Config cfg;
  cfg.seed = 42;
  cfg.rate = 0.5;
  cfg.site_mask = 1u << static_cast<int>(fault::Site::kPanelNaN);
  std::vector<bool> first;
  {
    fault::ScopedConfig scoped(cfg);
    for (int i = 0; i < 64; ++i) {
      first.push_back(fault::should_inject(fault::Site::kPanelNaN));
    }
    // Unarmed sites never fire regardless of rate.
    for (int i = 0; i < 64; ++i) {
      EXPECT_FALSE(fault::should_inject(fault::Site::kTaskThrow));
    }
  }
  {
    fault::ScopedConfig scoped(cfg);  // counters reset: identical replay
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(fault::should_inject(fault::Site::kPanelNaN), first[i]) << i;
    }
  }
  // Roughly half the opportunities fire at rate 0.5 (binomial, wide margin).
  int fired = 0;
  for (bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 16);
  EXPECT_LT(fired, 48);
}

TEST(FaultSoak, EnvOnlyConfigurationArms) {
  // The CI fault legs and real binaries configure purely via environment,
  // never programmatically: reset() must re-read the env and the lock-free
  // enabled() fast path must arm from it (regression: the flag used to be
  // set only on code paths that were themselves gated behind it).
  ::setenv("CONFLUX_FAULT_SEED", "7", 1);
  ::setenv("CONFLUX_FAULT_RATE", "1", 1);
  ::setenv("CONFLUX_FAULT_SITES", "panel-nan", 1);
  fault::reset();
  EXPECT_TRUE(fault::enabled());
  const fault::Config cfg = fault::config();
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.rate, 1.0);
  EXPECT_TRUE(cfg.site_armed(fault::Site::kPanelNaN));
  EXPECT_FALSE(cfg.site_armed(fault::Site::kTaskThrow));
  EXPECT_TRUE(fault::should_inject(fault::Site::kPanelNaN));
  EXPECT_FALSE(fault::should_inject(fault::Site::kTaskThrow));
  ::unsetenv("CONFLUX_FAULT_SEED");
  ::unsetenv("CONFLUX_FAULT_RATE");
  ::unsetenv("CONFLUX_FAULT_SITES");
  fault::reset();
  EXPECT_FALSE(fault::enabled());
}

}  // namespace
}  // namespace conflux
