// Fault-injection soak (ISSUE 6): sweep deterministic fault seeds across
// every injection site and assert the system's ONLY observable behaviors
// are (a) a classified Status with the site's expected code, or (b) a clean
// run whose factors are BITWISE identical to the fault-free golden run.
// Never a crash, never a hang (the ctest timeout is the backstop; the pool
// watchdog is the mechanism), never a silently wrong answer.
//
// The pool runs with 2 threads (CONFLUX_POOL_THREADS, pinned below before
// the pool's first use) so the pool sites exercise real cross-thread
// cancellation, and every LU run uses lookahead so pool tasks exist to
// fault.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "sched/taskpool.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

using factor::CholResult;
using factor::FactorOptions;
using factor::LuResult;

// CONFLUX_POOL_THREADS is read once at the pool's first width() call; pin
// it before any test (and before the static pool exists) via a file-scope
// initializer.
const bool g_pool_env = [] {
  ::setenv("CONFLUX_POOL_THREADS", "2", /*overwrite=*/1);
  return true;
}();

constexpr index_t kN = 64;
constexpr index_t kV = 16;

xsim::Machine fresh_machine() {
  xsim::MachineSpec spec;
  spec.num_ranks = 4;
  spec.memory_words = 1e9;
  return xsim::Machine(spec, xsim::ExecMode::Real);
}

FactorOptions lu_options() {
  FactorOptions opt;
  opt.block_size = kV;
  opt.lookahead = 1;  // pool tasks must exist for the pool sites to fault
  return opt;
}

const MatrixD& lu_input() {
  static const MatrixD a = random_matrix(kN, kN, 20260807);
  return a;
}

const MatrixD& chol_input() {
  static const MatrixD a = random_spd_matrix(kN, 20260808);
  return a;
}

/// Fault-free golden LU, computed once; every clean soak run must reproduce
/// it bitwise (fault plumbing and breakdown detection are read-only).
const LuResult& golden_lu() {
  static const LuResult lu = [] {
    xsim::Machine m = fresh_machine();
    const grid::Grid3D g(2, 2, 1);
    return factor::conflux_lu(m, g, lu_input().view(), lu_options());
  }();
  return lu;
}

const CholResult& golden_chol() {
  static const CholResult chol = [] {
    xsim::Machine m = fresh_machine();
    const grid::Grid3D g(2, 2, 1);
    return factor::confchox(m, g, chol_input().view(), lu_options());
  }();
  return chol;
}

void expect_bitwise_golden_lu(const LuResult& lu, const char* what) {
  ASSERT_EQ(lu.perm, golden_lu().perm) << what;
  ASSERT_EQ(lu.factors, golden_lu().factors) << what;
}

struct SoakTally {
  int runs = 0;
  int clean = 0;
  int classified = 0;
};

/// The metrics registry's per-site fire counter (fault.cpp increments it in
/// should_inject's success path), used to reconcile observed outcomes
/// against injection activity.
const char* fired_counter_name(fault::Site site) {
  switch (site) {
    case fault::Site::kPanelNaN: return "fault.fired.panel-nan";
    case fault::Site::kZeroPivot: return "fault.fired.zero-pivot";
    case fault::Site::kTaskThrow: return "fault.fired.task-throw";
    case fault::Site::kWorkerStall: return "fault.fired.worker-stall";
  }
  return "?";
}

double fired_count(fault::Site site) {
  return metrics::snapshot().value(fired_counter_name(site));
}

/// Reconcile one run's outcome against the site's fire count delta:
///   - sites whose fault always corrupts the run (NaN, zero pivot, task
///     throw): classified <=> fired >= 1, clean <=> fired == 0;
///   - worker stall: the fault is timing-only, so only classified => fired
///     holds (a fired stall may still finish before the watchdog).
void reconcile_fired(fault::Site site, bool classified, double fired_delta,
                     std::uint64_t seed) {
  if (classified) {
    EXPECT_GE(fired_delta, 1.0)
        << "seed " << seed << ": run classified but "
        << fired_counter_name(site) << " never fired";
  } else if (site != fault::Site::kWorkerStall) {
    EXPECT_EQ(fired_delta, 0.0)
        << "seed " << seed << ": " << fired_counter_name(site)
        << " fired but the run came back clean";
  }
}

/// One LU soak run under `cfg`: returns via EXPECT/ASSERT; tallies whether
/// the run was clean or classified.
void soak_lu_once(fault::Site site, const fault::Config& cfg,
                  const std::set<StatusCode>& allowed, SoakTally& tally) {
  golden_lu();  // force the fault-free golden BEFORE arming injection
  const bool metrics_was = metrics::enabled();
  metrics::set_enabled(true);
  const double fired0 = fired_count(site);
  fault::ScopedConfig scoped(cfg);
  xsim::Machine m = fresh_machine();
  const grid::Grid3D g(2, 2, 1);
  const auto r = factor::try_conflux_lu(m, g, lu_input().view(), lu_options());
  const double fired_delta = fired_count(site) - fired0;
  metrics::set_enabled(metrics_was);
  reconcile_fired(site, !r.ok(), fired_delta, cfg.seed);
  ++tally.runs;
  if (r.ok()) {
    // Nothing fired, or the fault was harmless (a worker stall that beat
    // the watchdog): the result must be exactly the fault-free one.
    expect_bitwise_golden_lu(r.value(), "clean run under armed faults");
    ++tally.clean;
    return;
  }
  ++tally.classified;
  EXPECT_TRUE(allowed.count(r.status().code()) == 1)
      << "seed " << cfg.seed << ": unexpected classification "
      << status_code_name(r.status().code()) << " (" << r.status().to_string()
      << ")";
  // A failed run must never leave wreckage: the machine and pool recover,
  // and a fault-free rerun reproduces the golden factors bitwise.
  fault::Config off;
  fault::configure(off);
  xsim::Machine m2 = fresh_machine();
  const auto clean = factor::try_conflux_lu(m2, g, lu_input().view(), lu_options());
  ASSERT_TRUE(clean.ok()) << "pool did not recover after " << r.status().to_string();
  expect_bitwise_golden_lu(clean.value(), "recovery run after classified fault");
}

fault::Config site_config(fault::Site site, std::uint64_t seed, double rate) {
  fault::Config cfg;
  cfg.seed = seed;
  cfg.rate = rate;
  cfg.site_mask = 1u << static_cast<int>(site);
  return cfg;
}

TEST(FaultSoak, PanelNanAlwaysClassifiedNonFinite) {
  SoakTally tally;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    soak_lu_once(fault::Site::kPanelNaN,
                 site_config(fault::Site::kPanelNaN, seed, 0.5),
                 {StatusCode::kNonFinite}, tally);
  }
  // Rate 0.5 over 4 steps per run: overwhelmingly most seeds must fire.
  EXPECT_GE(tally.classified, 40) << "injection harness looks dead";
  EXPECT_EQ(tally.runs, 60);
}

TEST(FaultSoak, ForcedZeroPivotClassifiedSingular) {
  SoakTally tally;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    soak_lu_once(fault::Site::kZeroPivot,
                 site_config(fault::Site::kZeroPivot, seed, 0.5),
                 {StatusCode::kSingularPivot}, tally);
  }
  EXPECT_GE(tally.classified, 40) << "injection harness looks dead";
}

TEST(FaultSoak, TaskThrowClassifiedTaskFailed) {
  SoakTally tally;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    soak_lu_once(fault::Site::kTaskThrow,
                 site_config(fault::Site::kTaskThrow, seed, 0.05),
                 {StatusCode::kTaskFailed}, tally);
  }
  // 5% per pool task over dozens of tasks: a healthy majority must fire,
  // and the rest prove the fault-free path is bitwise untouched.
  EXPECT_GE(tally.classified, 10) << "injection harness looks dead";
  EXPECT_GE(tally.clean, 1) << "rate 0.05 should leave some runs clean";
}

TEST(FaultSoak, WorkerStallWedgesOrCompletesCorrectly) {
  // A stalled worker either trips the watchdog (stall >= interval) and
  // classifies as kPoolWedged, or finishes late with a bitwise-correct
  // result. Both are acceptable; a hang or wrong answer is not.
  sched::TaskPool::instance().set_watchdog_seconds(0.25);
  SoakTally tally;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    fault::Config cfg = site_config(fault::Site::kWorkerStall, seed, 0.02);
    cfg.stall_s = 0.6;
    soak_lu_once(fault::Site::kWorkerStall, cfg, {StatusCode::kPoolWedged}, tally);
  }
  sched::TaskPool::instance().set_watchdog_seconds(0.0);
  EXPECT_EQ(tally.runs, 10);
}

TEST(FaultSoak, CholeskyPanelNanClassified) {
  SoakTally tally;
  const grid::Grid3D g(2, 2, 1);
  golden_chol();  // force the fault-free golden BEFORE arming injection
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    fault::ScopedConfig scoped(site_config(fault::Site::kPanelNaN, seed, 0.5));
    xsim::Machine m = fresh_machine();
    const auto r = factor::try_confchox(m, g, chol_input().view(), lu_options());
    ++tally.runs;
    if (r.ok()) {
      ASSERT_EQ(r.value().factors, golden_chol().factors);
      ++tally.clean;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kNonFinite)
          << "seed " << seed << ": " << r.status().to_string();
      ++tally.classified;
    }
  }
  EXPECT_GE(tally.classified, 10);
}

TEST(FaultSoak, CholeskyForcedZeroDiagonalClassifiedNotPd) {
  SoakTally tally;
  const grid::Grid3D g(2, 2, 1);
  golden_chol();  // force the fault-free golden BEFORE arming injection
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    fault::ScopedConfig scoped(site_config(fault::Site::kZeroPivot, seed, 0.5));
    xsim::Machine m = fresh_machine();
    const auto r = factor::try_confchox(m, g, chol_input().view(), lu_options());
    ++tally.runs;
    if (r.ok()) {
      ASSERT_EQ(r.value().factors, golden_chol().factors);
      ++tally.clean;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kNotPositiveDefinite)
          << "seed " << seed << ": " << r.status().to_string();
      ++tally.classified;
    }
  }
  EXPECT_GE(tally.classified, 10);
}

TEST(FaultSoak, EnvironmentConfigurationParses) {
  // The env plumbing (seed/rate/sites/stall) is what the CI fault legs use;
  // pin the programmatic equivalent of a parsed config here and verify the
  // decision function is deterministic for a fixed (seed, site, counter).
  fault::Config cfg;
  cfg.seed = 42;
  cfg.rate = 0.5;
  cfg.site_mask = 1u << static_cast<int>(fault::Site::kPanelNaN);
  std::vector<bool> first;
  {
    fault::ScopedConfig scoped(cfg);
    for (int i = 0; i < 64; ++i) {
      first.push_back(fault::should_inject(fault::Site::kPanelNaN));
    }
    // Unarmed sites never fire regardless of rate.
    for (int i = 0; i < 64; ++i) {
      EXPECT_FALSE(fault::should_inject(fault::Site::kTaskThrow));
    }
  }
  {
    fault::ScopedConfig scoped(cfg);  // counters reset: identical replay
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(fault::should_inject(fault::Site::kPanelNaN), first[i]) << i;
    }
  }
  // Roughly half the opportunities fire at rate 0.5 (binomial, wide margin).
  int fired = 0;
  for (bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 16);
  EXPECT_LT(fired, 48);
}

TEST(FaultSoak, EnvOnlyConfigurationArms) {
  // The CI fault legs and real binaries configure purely via environment,
  // never programmatically: reset() must re-read the env and the lock-free
  // enabled() fast path must arm from it (regression: the flag used to be
  // set only on code paths that were themselves gated behind it).
  ::setenv("CONFLUX_FAULT_SEED", "7", 1);
  ::setenv("CONFLUX_FAULT_RATE", "1", 1);
  ::setenv("CONFLUX_FAULT_SITES", "panel-nan", 1);
  fault::reset();
  EXPECT_TRUE(fault::enabled());
  const fault::Config cfg = fault::config();
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.rate, 1.0);
  EXPECT_TRUE(cfg.site_armed(fault::Site::kPanelNaN));
  EXPECT_FALSE(cfg.site_armed(fault::Site::kTaskThrow));
  EXPECT_TRUE(fault::should_inject(fault::Site::kPanelNaN));
  EXPECT_FALSE(fault::should_inject(fault::Site::kTaskThrow));
  ::unsetenv("CONFLUX_FAULT_SEED");
  ::unsetenv("CONFLUX_FAULT_RATE");
  ::unsetenv("CONFLUX_FAULT_SITES");
  fault::reset();
  EXPECT_FALSE(fault::enabled());
}

}  // namespace
}  // namespace conflux
