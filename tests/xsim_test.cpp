// Machine accounting and collective cost/data correctness. Collective costs
// are checked against the textbook formulas (binomial trees move n-1
// messages; recursive doubling moves W log2 n per rank; ...).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "xsim/comm.hpp"
#include "xsim/machine.hpp"

namespace conflux::xsim {
namespace {

std::vector<int> iota_ranks(int n) {
  std::vector<int> r(static_cast<std::size_t>(n));
  std::iota(r.begin(), r.end(), 0);
  return r;
}

Machine make_machine(int ranks, ExecMode mode = ExecMode::Trace) {
  MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = 1 << 20;
  return Machine(spec, mode);
}

// ------------------------------------------------------------- machine ----

TEST(Machine, TransferUpdatesBothEndpoints) {
  Machine m = make_machine(4);
  m.charge_transfer(0, 2, 100.0);
  EXPECT_DOUBLE_EQ(m.counters(0).words_sent, 100.0);
  EXPECT_EQ(m.counters(0).messages_sent, 1);
  EXPECT_DOUBLE_EQ(m.counters(2).words_received, 100.0);
  EXPECT_EQ(m.counters(2).messages_received, 1);
  EXPECT_DOUBLE_EQ(m.counters(1).words_sent, 0.0);
}

TEST(Machine, SelfTransferRejected) {
  Machine m = make_machine(2);
  EXPECT_THROW(m.charge_transfer(1, 1, 8.0), contract_error);
}

TEST(Machine, RankRangeValidated) {
  Machine m = make_machine(2);
  EXPECT_THROW(m.charge_transfer(0, 2, 8.0), contract_error);
  EXPECT_THROW(m.charge_flops(-1, 8.0), contract_error);
}

TEST(Machine, StepTimeIsCriticalPathOverRanks) {
  MachineSpec spec;
  spec.num_ranks = 3;
  spec.memory_words = 1024;
  spec.alpha_s = 1.0;             // 1 s per message
  spec.beta_words_per_s = 10.0;   // 10 words/s
  spec.gamma_flops_per_s = 100.0; // 100 flop/s
  Machine m(spec, ExecMode::Trace);
  // Rank 0 sends 20 words (1 msg): its time = 1 + 2 = 3 s.
  // Rank 2 computes 500 flops: 5 s. Critical path = 5 s.
  m.charge_transfer(0, 1, 20.0);
  m.charge_flops(2, 500.0);
  m.step_barrier();
  EXPECT_DOUBLE_EQ(m.elapsed_time(), 5.0);
  // Next step: only rank 0's message latency.
  m.charge_transfer(0, 1, 0.0);
  m.step_barrier();
  EXPECT_DOUBLE_EQ(m.elapsed_time(), 6.0);
  EXPECT_EQ(m.num_steps(), 2);
}

TEST(Machine, StepsAccumulateSequentially) {
  MachineSpec spec;
  spec.num_ranks = 2;
  spec.memory_words = 64;
  spec.alpha_s = 0.0;
  spec.beta_words_per_s = 1.0;
  spec.gamma_flops_per_s = 1.0;
  Machine m(spec, ExecMode::Trace);
  // Two supersteps of 10 words each cost 20 s even though different ranks
  // send (no overlap across a barrier).
  m.charge_transfer(0, 1, 10.0);
  m.step_barrier();
  m.charge_transfer(1, 0, 10.0);
  m.step_barrier();
  EXPECT_DOUBLE_EQ(m.elapsed_time(), 20.0);
}

TEST(Machine, MemoryHighWaterTracksPeak) {
  Machine m = make_machine(2);
  m.alloc(0, 100.0);
  m.alloc(0, 50.0);
  m.release(0, 120.0);
  m.alloc(0, 10.0);
  EXPECT_DOUBLE_EQ(m.memory_in_use(0), 40.0);
  EXPECT_DOUBLE_EQ(m.memory_highwater(0), 150.0);
  EXPECT_DOUBLE_EQ(m.memory_highwater_max(), 150.0);
  EXPECT_THROW(m.release(0, 1000.0), contract_error);
}

TEST(Machine, CommVolumeIsMaxDirection) {
  Machine m = make_machine(2);
  m.charge_transfer(0, 1, 30.0);
  m.charge_transfer(1, 0, 10.0);
  EXPECT_DOUBLE_EQ(m.counters(0).comm_volume(), 30.0);
  EXPECT_DOUBLE_EQ(m.counters(1).comm_volume(), 30.0);
  EXPECT_DOUBLE_EQ(m.max_comm_volume(), 30.0);
}

// ---------------------------------------------------------- collectives ----

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BroadcastMovesNMinusOneMessages) {
  const int n = GetParam();
  Machine m = make_machine(n);
  const auto ranks = iota_ranks(n);
  comm::broadcast(m, ranks, 0, 64.0);
  long long msgs = 0;
  double recv = 0.0;
  for (int r = 0; r < n; ++r) {
    msgs += m.counters(r).messages_received;
    recv += m.counters(r).words_received;
  }
  EXPECT_EQ(msgs, n - 1);
  EXPECT_DOUBLE_EQ(recv, 64.0 * (n - 1));
  // Every non-root received exactly once.
  for (int r = 1; r < n; ++r) {
    EXPECT_DOUBLE_EQ(m.counters(r).words_received, 64.0);
  }
}

TEST_P(CollectiveSizes, ReduceMirrorsBroadcast) {
  const int n = GetParam();
  Machine m = make_machine(n);
  const auto ranks = iota_ranks(n);
  comm::reduce(m, ranks, 0, 32.0, /*charge_combine_flops=*/false);
  long long msgs = 0;
  for (int r = 0; r < n; ++r) msgs += m.counters(r).messages_sent;
  EXPECT_EQ(msgs, n - 1);
  // Every non-root sent exactly once; the root only receives.
  for (int r = 1; r < n; ++r) {
    EXPECT_DOUBLE_EQ(m.counters(r).words_sent, 32.0);
  }
  EXPECT_DOUBLE_EQ(m.counters(0).words_sent, 0.0);
}

TEST_P(CollectiveSizes, ScatterDeliversOneChunkPerRank) {
  const int n = GetParam();
  Machine m = make_machine(n);
  comm::scatter(m, iota_ranks(n), 0, 16.0);
  // Total root egress = (n-1) chunks (its own stays local); every rank's
  // *final* chunk is 16 words, intermediate ranks forward subtree payloads.
  double total_recv = 0.0;
  for (int r = 0; r < n; ++r) total_recv += m.counters(r).words_received;
  // Tree edges carry sum of subtree sizes = total "transit" volume; at
  // minimum each non-root receives its own chunk once.
  EXPECT_GE(total_recv, 16.0 * (n - 1));
  for (int r = 1; r < n; ++r) {
    EXPECT_GE(m.counters(r).words_received, 16.0);
  }
  EXPECT_DOUBLE_EQ(m.counters(0).words_received, 0.0);
}

TEST_P(CollectiveSizes, GatherIsScatterReversed) {
  const int n = GetParam();
  Machine ms = make_machine(n);
  Machine mg = make_machine(n);
  comm::scatter(ms, iota_ranks(n), 0, 16.0);
  comm::gather(mg, iota_ranks(n), 0, 16.0);
  double ssent = 0.0, grecv = 0.0;
  for (int r = 0; r < n; ++r) {
    ssent += ms.counters(r).words_sent;
    grecv += mg.counters(r).words_received;
  }
  EXPECT_DOUBLE_EQ(ssent, grecv);
  EXPECT_DOUBLE_EQ(mg.counters(0).words_received,
                   ms.counters(0).words_sent);
}

INSTANTIATE_TEST_SUITE_P(Ns, CollectiveSizes, ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 32));

TEST(Collectives, AllreducePowerOfTwoCostPerRank) {
  const int n = 8;
  Machine m = make_machine(n);
  comm::allreduce(m, iota_ranks(n), 100.0, false);
  // Recursive doubling: every rank sends and receives W log2(n).
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(m.counters(r).words_sent, 100.0 * 3);
    EXPECT_DOUBLE_EQ(m.counters(r).words_received, 100.0 * 3);
  }
}

TEST(Collectives, AllreduceNonPowerOfTwoStillUniformResult) {
  // After the fold, all ranks must have participated; spot-check volumes.
  const int n = 6;
  Machine m = make_machine(n);
  comm::allreduce(m, iota_ranks(n), 10.0, false);
  // Folded ranks (odd of first 2r) send once and receive once: 20 words total
  // traffic; core ranks do log2(4) = 2 rounds.
  double total = 0.0;
  for (int r = 0; r < n; ++r) total += m.counters(r).words_sent;
  // 2 folds + 2 rounds * 4 ranks + 2 unfolds = 2+8+2 = 12 transfers of 10.
  EXPECT_DOUBLE_EQ(total, 120.0);
}

TEST(Collectives, ButterflyRoundsAndVolume) {
  const int n = 8;
  Machine m = make_machine(n);
  comm::butterfly(m, iota_ranks(n), 25.0);  // v^2 block per round
  // log2(8) = 3 rounds, each rank sends and receives 25 words per round.
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(m.counters(r).words_sent, 75.0);
    EXPECT_DOUBLE_EQ(m.counters(r).words_received, 75.0);
    EXPECT_EQ(m.counters(r).messages_sent, 3);
  }
}

TEST(Collectives, AllgatherPowerOfTwoVolume) {
  const int n = 4;
  Machine m = make_machine(n);
  comm::allgather(m, iota_ranks(n), 10.0);
  // Recursive doubling: per rank sent = 10 * (1 + 2) = (n-1)*10.
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(m.counters(r).words_sent, 30.0);
    EXPECT_DOUBLE_EQ(m.counters(r).words_received, 30.0);
  }
}

TEST(Collectives, AllgatherRingVolume) {
  const int n = 5;
  Machine m = make_machine(n);
  comm::allgather(m, iota_ranks(n), 10.0);
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(m.counters(r).words_sent, 40.0);  // (n-1) * w
    EXPECT_DOUBLE_EQ(m.counters(r).words_received, 40.0);
  }
}

TEST(Collectives, ReduceScatterPowerOfTwoVolume) {
  const int n = 8;
  Machine m = make_machine(n);
  comm::reduce_scatter(m, iota_ranks(n), 10.0, false);
  // Recursive halving: per rank sent = 10 * (4 + 2 + 1) = (n-1) * w.
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(m.counters(r).words_sent, 70.0);
  }
}

TEST(Collectives, SubsetOfRanksOnlyTouchesParticipants) {
  Machine m = make_machine(10);
  const std::vector<int> group = {2, 5, 7};
  comm::broadcast(m, group, 1, 8.0);  // root = rank 5
  for (int r : {0, 1, 3, 4, 6, 8, 9}) {
    EXPECT_DOUBLE_EQ(m.counters(r).words_sent + m.counters(r).words_received, 0.0);
  }
  EXPECT_DOUBLE_EQ(m.counters(2).words_received, 8.0);
  EXPECT_DOUBLE_EQ(m.counters(7).words_received, 8.0);
}

// -------------------------------------------------------- data variants ----

TEST(DataCollectives, BroadcastDataCopiesInRealMode) {
  Machine m = make_machine(4, ExecMode::Real);
  std::vector<std::vector<double>> bufs(4, std::vector<double>(8, 0.0));
  for (int k = 0; k < 8; ++k) bufs[2][static_cast<std::size_t>(k)] = k + 1.0;
  const std::vector<int> ranks = iota_ranks(4);
  comm::broadcast_data(m, ranks, 2, 8.0, [&](int r) {
    return std::span<double>(bufs[static_cast<std::size_t>(r)]);
  });
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 8; ++k) {
      EXPECT_DOUBLE_EQ(bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)],
                       k + 1.0);
    }
  }
}

TEST(DataCollectives, BroadcastDataSkipsBuffersInTraceMode) {
  Machine m = make_machine(4, ExecMode::Trace);
  const std::vector<int> ranks = iota_ranks(4);
  bool touched = false;
  comm::broadcast_data(m, ranks, 0, 8.0, [&](int) {
    touched = true;
    return std::span<double>();
  });
  EXPECT_FALSE(touched);
  EXPECT_DOUBLE_EQ(m.counters(3).words_received, 8.0);  // costs still charged
}

TEST(DataCollectives, ReduceSumDataAccumulatesIntoRoot) {
  Machine m = make_machine(3, ExecMode::Real);
  std::vector<std::vector<double>> bufs = {{1.0, 2.0}, {10.0, 20.0}, {100.0, 200.0}};
  const std::vector<int> ranks = iota_ranks(3);
  comm::reduce_sum_data(m, ranks, 0, 2.0, [&](int r) {
    return std::span<double>(bufs[static_cast<std::size_t>(r)]);
  });
  EXPECT_DOUBLE_EQ(bufs[0][0], 111.0);
  EXPECT_DOUBLE_EQ(bufs[0][1], 222.0);
}

TEST(DataCollectives, AllreduceSumDataUniformAcrossRanks) {
  Machine m = make_machine(4, ExecMode::Real);
  std::vector<std::vector<double>> bufs(4, std::vector<double>(3));
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 3; ++k) {
      bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] =
          static_cast<double>(r + 1);
    }
  }
  comm::allreduce_sum_data(m, iota_ranks(4), 3.0, [&](int r) {
    return std::span<double>(bufs[static_cast<std::size_t>(r)]);
  });
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(bufs[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)],
                       10.0);
    }
  }
}

TEST(DataCollectives, P2pDataCopies) {
  Machine m = make_machine(2, ExecMode::Real);
  std::vector<double> src = {5.0, 6.0};
  std::vector<double> dst = {0.0, 0.0};
  comm::p2p_data(m, 0, 1, 2.0, [&] { return std::span<const double>(src); },
                 [&] { return std::span<double>(dst); });
  EXPECT_DOUBLE_EQ(dst[0], 5.0);
  EXPECT_DOUBLE_EQ(dst[1], 6.0);
  EXPECT_DOUBLE_EQ(m.counters(1).words_received, 2.0);
}

TEST(DataCollectives, PayloadSizeMismatchCaught) {
  Machine m = make_machine(2, ExecMode::Real);
  std::vector<double> buf(4);
  const std::vector<int> ranks = iota_ranks(2);
  EXPECT_THROW(comm::broadcast_data(m, ranks, 0, 8.0,
                                    [&](int) { return std::span<double>(buf); }),
               contract_error);
}

}  // namespace
}  // namespace conflux::xsim
