// Processor grids, rank<->coordinate maps, cyclic ownership, and the
// paper's grid-selection heuristic (c = P*M/N^2 capped at P^{1/3}).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "grid/grid.hpp"

namespace conflux::grid {
namespace {

TEST(Grid3DTest, RankCoordRoundTrip) {
  const Grid3D g(3, 4, 2);
  EXPECT_EQ(g.ranks(), 24);
  std::set<int> seen;
  for (int z = 0; z < 2; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 3; ++x) {
        const int r = g.rank_of(x, y, z);
        EXPECT_TRUE(seen.insert(r).second) << "rank collision";
        const Coord3 c = g.coord_of(r);
        EXPECT_EQ(c, (Coord3{x, y, z}));
      }
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), 24);
}

TEST(Grid3DTest, LinesAndLayersHaveExpectedMembers) {
  const Grid3D g(2, 3, 2);
  EXPECT_EQ(g.x_line(1, 0).size(), 2u);
  EXPECT_EQ(g.y_line(0, 1).size(), 3u);
  EXPECT_EQ(g.z_line(1, 2).size(), 2u);
  EXPECT_EQ(g.layer(1).size(), 6u);
  EXPECT_EQ(g.all().size(), 12u);
  for (int r : g.z_line(1, 2)) {
    const Coord3 c = g.coord_of(r);
    EXPECT_EQ(c.x, 1);
    EXPECT_EQ(c.y, 2);
  }
  for (int r : g.layer(1)) EXPECT_EQ(g.coord_of(r).z, 1);
}

TEST(Grid3DTest, OutOfRangeRejected) {
  const Grid3D g(2, 2, 2);
  EXPECT_THROW(g.rank_of(2, 0, 0), contract_error);
  EXPECT_THROW(g.coord_of(8), contract_error);
  EXPECT_THROW(Grid3D(0, 1, 1), contract_error);
}

TEST(ChooseGrid, AmpleMemoryGivesMaxReplication) {
  // P = 64, tiny matrix, huge memory: c should reach P^{1/3} = 4.
  const Grid3D g = choose_grid(64, 256.0, 1 << 24);
  EXPECT_EQ(g.ranks(), 64);
  EXPECT_EQ(g.pz(), 4);
  EXPECT_EQ(g.px(), 4);
  EXPECT_EQ(g.py(), 4);
}

TEST(ChooseGrid, MinimalMemoryGivesFlatGrid) {
  // Memory exactly one matrix copy: c = 1 -> 2D grid.
  const int p = 64;
  const double n = 4096;
  const Grid3D g = choose_grid(p, n, n * n / p);
  EXPECT_EQ(g.pz(), 1);
  EXPECT_EQ(g.px(), 8);
  EXPECT_EQ(g.py(), 8);
}

TEST(ChooseGrid, IntermediateMemoryPicksIntermediateC) {
  // c_target = P*M/N^2 = 2.
  const int p = 32;
  const double n = 1024;
  const Grid3D g = choose_grid(p, n, 2.0 * n * n / p);
  EXPECT_EQ(g.ranks(), p);
  EXPECT_EQ(g.pz(), 2);
  EXPECT_EQ(g.px(), 4);
  EXPECT_EQ(g.py(), 4);
}

TEST(ChooseGrid, NonPowerOfTwoStillCoversAllRanks) {
  for (int p : {6, 12, 24, 48, 96, 100, 144}) {
    const Grid3D g = choose_grid(p, 2048.0, 4.0 * 2048.0 * 2048.0 / p);
    EXPECT_EQ(g.ranks(), p) << "P=" << p;
  }
}

TEST(ChooseGrid2D, SquareForPerfectSquares) {
  const Grid2D g = choose_grid_2d(64);
  EXPECT_EQ(g.pr, 8);
  EXPECT_EQ(g.pc, 8);
}

TEST(ChooseGrid2D, NearSquareOtherwise) {
  const Grid2D g = choose_grid_2d(32);
  EXPECT_EQ(g.pr, 4);
  EXPECT_EQ(g.pc, 8);
  EXPECT_EQ(choose_grid_2d(7).pr, 1);
  EXPECT_EQ(choose_grid_2d(7).pc, 7);
}

TEST(Grid2DTest, RankMapRoundTrip) {
  const Grid2D g{3, 5};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) {
      const int rank = g.rank_of(r, c);
      EXPECT_EQ(g.row_of(rank), r);
      EXPECT_EQ(g.col_of(rank), c);
    }
  }
}

TEST(CyclicOwnership, RoundRobinAssignment) {
  EXPECT_EQ(cyclic_owner(0, 4), 0);
  EXPECT_EQ(cyclic_owner(5, 4), 1);
  EXPECT_EQ(cyclic_owner(11, 4), 3);
}

TEST(CyclicOwnership, LocalCountsPartitionTheRange) {
  for (const index_t total : {1, 7, 16, 33}) {
    for (const int procs : {1, 3, 4, 7}) {
      for (const index_t first : {index_t{0}, index_t{2}, total / 2}) {
        if (first > total) continue;
        index_t sum = 0;
        for (int p = 0; p < procs; ++p) {
          sum += cyclic_local_count(first, total, p, procs);
        }
        EXPECT_EQ(sum, total - first)
            << "total=" << total << " procs=" << procs << " first=" << first;
      }
    }
  }
}

TEST(CyclicOwnership, LocalCountMatchesBruteForce) {
  for (const int procs : {2, 3, 5}) {
    for (index_t first = 0; first < 10; ++first) {
      for (index_t total = first; total < 25; ++total) {
        for (int p = 0; p < procs; ++p) {
          index_t brute = 0;
          for (index_t t = first; t < total; ++t) {
            if (t % procs == p) ++brute;
          }
          EXPECT_EQ(cyclic_local_count(first, total, p, procs), brute);
        }
      }
    }
  }
}

}  // namespace
}  // namespace conflux::grid
