// The discrete-event timeline engine (src/sched/):
//  - replay semantics on hand-built event logs (serial CPUs, link
//    occupancy, the bounded in-flight window, barrier policies)
//  - the two analytic bounds re-derived from events match the Machine's
//    elapsed_time() / modeled_time_overlap() exactly, for every schedule
//  - the model-ordering invariant: perfect overlap <= bounded-overlap
//    timeline <= strict BSP on factorizations and baselines, including
//    figure-style configurations
//  - Trace == Real event-stream equality (exact for Cholesky, which has no
//    pivoting; per-kind aggregates for LU) — extending the counter-equality
//    test in factor_test
//  - Chrome-trace export is syntactically valid JSON (checked with a small
//    JSON parser) carrying the schedules' phase labels
//  - Real-mode execution is bitwise identical across OpenMP thread counts
//  - the lookahead time model sits inside the bracket:
//    elapsed >= modeled >= modeled_lookahead >= overlap on both
//    factorizations, and lazy-phase deferral never lengthens the raw replay
//  - the persistent TaskPool: dependency ordering, the single-thread inline
//    fast path of parallel_ranks, and — with two threads — the real
//    pipelining of a lookahead run, asserted from recorded task slices and
//    exported as valid Chrome-trace JSON
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cctype>
#include <chrono>
#include <mutex>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "baselines/candmc.hpp"
#include "baselines/scalapack2d.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "sched/chrome_trace.hpp"
#include "sched/event.hpp"
#include "sched/rank_parallel.hpp"
#include "sched/taskpool.hpp"
#include "sched/timeline.hpp"
#include "tensor/random_matrix.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace conflux::sched {
namespace {

xsim::MachineSpec simple_spec(int ranks, double alpha, double beta, double gamma) {
  xsim::MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = 1 << 20;
  spec.alpha_s = alpha;
  spec.beta_words_per_s = beta;
  spec.gamma_flops_per_s = gamma;
  return spec;
}

xsim::MachineSpec paper_spec(int ranks, double memory) {
  xsim::MachineSpec spec;  // default alpha/beta/gamma (Piz Daint-like)
  spec.num_ranks = ranks;
  spec.memory_words = memory;
  return spec;
}

double grid_memory(index_t n, const grid::Grid3D& g) {
  return static_cast<double>(g.pz()) * static_cast<double>(n) *
         static_cast<double>(n) / static_cast<double>(g.ranks());
}

// ------------------------------------------------------ replay semantics ----

TEST(Replay, ComputeSerializesPerRankAndRanksRunConcurrently) {
  EventLog log;
  log.on_flops(0, 3.0);
  log.on_flops(0, 4.0);
  log.on_flops(1, 5.0);
  const Timeline tl(log, simple_spec(2, 0.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(tl.raw_event_time(), 7.0);  // rank 0: 3+4; rank 1: 5
  EXPECT_DOUBLE_EQ(tl.rank_usage()[0].compute_busy_s, 7.0);
  EXPECT_DOUBLE_EQ(tl.rank_usage()[1].compute_busy_s, 5.0);
}

TEST(Replay, TransferStreamsThroughBothLinks) {
  EventLog log;
  log.on_transfer(0, 1, 10.0);
  log.on_barrier();
  const Timeline tl(log, simple_spec(2, 1.0, 1.0, 1.0));
  // Egress: alpha + 10 = 11; cut-through ingress finishes with the send.
  EXPECT_DOUBLE_EQ(tl.raw_event_time(), 11.0);
  // Strict BSP charges the max direction once per rank: 1 + 10 = 11.
  EXPECT_DOUBLE_EQ(tl.strict_bsp_time(), 11.0);
  EXPECT_DOUBLE_EQ(tl.perfect_overlap_time(), 10.0);
  EXPECT_DOUBLE_EQ(tl.modeled_time(), 11.0);
  EXPECT_LE(tl.perfect_overlap_time(), tl.modeled_time());
  EXPECT_LE(tl.modeled_time(), tl.strict_bsp_time());
}

TEST(Replay, BusyIngressLinkDelaysTheReceive) {
  EventLog log;
  log.on_transfer(0, 2, 10.0);  // occupies rank 2's ingress until t=10
  log.on_transfer(1, 2, 10.0);  // must queue behind it
  const Timeline tl(log, simple_spec(3, 0.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(tl.rank_usage()[2].finish_s, 20.0);
}

TEST(Replay, SmallerOutstandingWindowStallsTheCpu) {
  EventLog log;
  for (int i = 0; i < 4; ++i) log.on_transfer(0, 1, 10.0);
  log.on_flops(0, 100.0);
  TimelineOptions wide;
  wide.max_outstanding = 4;
  TimelineOptions narrow;
  narrow.max_outstanding = 1;
  const auto spec = simple_spec(2, 0.0, 1.0, 1.0);
  const Timeline t_wide(log, spec, wide);
  const Timeline t_narrow(log, spec, narrow);
  // Wide window: the CPU never waits for the NIC, compute ends at 100.
  EXPECT_DOUBLE_EQ(t_wide.rank_usage()[0].finish_s, 100.0);
  // Window of 1: the CPU stalls on all but the last send (completions at
  // 10, 20, 30), so compute ends at 130.
  EXPECT_DOUBLE_EQ(t_narrow.rank_usage()[0].finish_s, 130.0);
  EXPECT_GT(t_narrow.raw_event_time(), t_wide.raw_event_time());
}

TEST(Replay, SynchronousSendsBlockTheCpu) {
  EventLog log;
  log.on_send(0, 10.0, 2);
  log.on_flops(0, 1.0);
  TimelineOptions sync;
  sync.max_outstanding = 0;
  const Timeline tl(log, simple_spec(1, 1.0, 1.0, 1.0), sync);
  // Send: 2*alpha + 10 = 12 on the CPU too; compute lands after.
  EXPECT_DOUBLE_EQ(tl.rank_usage()[0].finish_s, 13.0);
}

TEST(Replay, AggregateRecvWaitsForTheStepSendFrontier) {
  EventLog log;
  log.on_send(0, 30.0, 1);  // completes at 30
  log.on_recv(1, 5.0, 1);   // may not finish before the senders pushed
  log.on_barrier();
  const Timeline tl(log, simple_spec(2, 0.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(tl.rank_usage()[1].finish_s, 35.0);
}

TEST(Replay, RecvRecordedBeforeItsSendStillWaitsForTheFrontier) {
  // Schedules may charge a rank's aggregate recv before its peers' sends
  // within the same superstep; the frontier must still cover those sends.
  EventLog log;
  log.on_recv(1, 5.0, 1);
  log.on_send(0, 30.0, 1);
  log.on_barrier();
  const Timeline tl(log, simple_spec(2, 0.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(tl.rank_usage()[1].finish_s, 35.0);
  // The next step's frontier starts fresh: an identical recv with no sends
  // in its own step only pays its own cost (after the rank's barrier sync).
  log.on_recv(1, 5.0, 1);
  log.on_barrier();
  const Timeline tl2(log, simple_spec(2, 0.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(tl2.rank_usage()[1].finish_s, 40.0);
}

TEST(Replay, GlobalBarriersSerializeSupersteps) {
  EventLog log;
  log.on_flops(0, 10.0);
  log.on_flops(1, 1.0);
  log.on_barrier();
  log.on_flops(1, 1.0);
  log.on_barrier();
  const auto spec = simple_spec(2, 0.0, 1.0, 1.0);
  TimelineOptions local;
  TimelineOptions global;
  global.global_barriers = true;
  // Local barriers: rank 1 pipelines past rank 0's long step (finish 2);
  // global barriers: its second step starts at 10.
  EXPECT_DOUBLE_EQ(Timeline(log, spec, local).raw_event_time(), 10.0);
  EXPECT_DOUBLE_EQ(Timeline(log, spec, global).raw_event_time(), 11.0);
}

TEST(Replay, ChainRoundsEnterThePerfectOverlapBound) {
  EventLog log;
  log.on_chain(5.0);
  const Timeline tl(log, simple_spec(1, 2.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(tl.perfect_overlap_time(), 10.0);
}

TEST(Replay, UsageBreakdownAccountsAllBusyTime) {
  EventLog log;
  log.on_flops(0, 6.0);
  log.on_transfer(0, 1, 4.0);
  log.on_barrier();
  const Timeline tl(log, simple_spec(2, 1.0, 2.0, 3.0));
  EXPECT_DOUBLE_EQ(tl.rank_usage()[0].compute_busy_s, 2.0);
  EXPECT_DOUBLE_EQ(tl.rank_usage()[0].send_busy_s, 3.0);  // alpha + 4/2
  EXPECT_DOUBLE_EQ(tl.rank_usage()[1].recv_busy_s, 2.0);
  EXPECT_GE(tl.rank_usage()[1].idle_s(), 0.0);
}

// -------------------------------- bounds re-derived from the event stream ----

// Replaying the recorded events must reproduce the Machine's two analytic
// times exactly: this is the proof that the event stream captures everything
// the aggregate counters did.
void expect_bounds_match(const xsim::Machine& m, const EventLog& log) {
  const Timeline tl(log, m.spec());
  EXPECT_DOUBLE_EQ(tl.strict_bsp_time(), m.elapsed_time());
  EXPECT_DOUBLE_EQ(tl.perfect_overlap_time(), m.modeled_time_overlap());
  EXPECT_EQ(tl.num_steps(), m.num_steps());
  EXPECT_LE(tl.perfect_overlap_time(), tl.modeled_time_lookahead());
  EXPECT_LE(tl.modeled_time_lookahead(), tl.modeled_time());
  EXPECT_LE(tl.modeled_time(), tl.strict_bsp_time());
  EXPECT_LE(tl.raw_lookahead_time(), tl.raw_event_time());
}

TEST(EventStream, ConfluxLuBoundsMatchMachine) {
  const index_t n = 96;
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m(paper_spec(g.ranks(), grid_memory(n, g)), xsim::ExecMode::Trace);
  EventLog log;
  ScopedRecord rec(m, log);
  factor::conflux_lu_trace(m, g, n, factor::FactorOptions{.block_size = 16});
  expect_bounds_match(m, log);
}

TEST(EventStream, ConfchoxBoundsMatchMachine) {
  const index_t n = 96;
  const grid::Grid3D g(3, 2, 2);
  xsim::Machine m(paper_spec(g.ranks(), grid_memory(n, g)), xsim::ExecMode::Trace);
  EventLog log;
  ScopedRecord rec(m, log);
  factor::confchox_trace(m, g, n, factor::FactorOptions{.block_size = 16});
  expect_bounds_match(m, log);
}

TEST(EventStream, Scalapack2DBoundsMatchMachine) {
  xsim::Machine m(paper_spec(16, 1 << 20), xsim::ExecMode::Trace);
  EventLog log;
  ScopedRecord rec(m, log);
  baselines::scalapack_lu_trace(m, grid::choose_grid_2d(16), 128,
                                baselines::Baseline2DOptions{.block_size = 32});
  expect_bounds_match(m, log);
}

TEST(EventStream, CandmcBoundsMatchMachine) {
  xsim::Machine m(paper_spec(64, 1 << 22), xsim::ExecMode::Trace);
  EventLog log;
  ScopedRecord rec(m, log);
  baselines::candmc_lu_trace(m, 1024, {});
  expect_bounds_match(m, log);
}

TEST(EventStream, ScopedRecordRestoresThePreviousSink) {
  xsim::Machine m(paper_spec(2, 1 << 10), xsim::ExecMode::Trace);
  EventLog outer;
  m.set_event_sink(&outer);
  {
    EventLog inner;
    ScopedRecord rec(m, inner);
    m.charge_flops(0, 1.0);
    EXPECT_EQ(inner.events().size(), 1u);
  }
  m.charge_flops(1, 1.0);
  EXPECT_EQ(m.event_sink(), &outer);
  EXPECT_EQ(outer.events().size(), 1u);
}

// ------------------------------------------- the model-ordering invariant ----

struct OrderingCase {
  std::string name;
  index_t n;
  int px, py, pz;
};

class ModelOrdering : public ::testing::TestWithParam<OrderingCase> {};

// Figure-style configurations (the grids behind fig01/08/09/10/11 cells,
// scaled to test size): the bounded-overlap time must sit between the
// strict-BSP and perfect-overlap models for both factorizations.
TEST_P(ModelOrdering, TimelineLiesBetweenTheBounds) {
  const auto& p = GetParam();
  const grid::Grid3D g(p.px, p.py, p.pz);
  const double mem = grid_memory(p.n, g);
  for (const bool cholesky : {false, true}) {
    xsim::Machine m(paper_spec(g.ranks(), mem), xsim::ExecMode::Trace);
    EventLog log;
    {
      ScopedRecord rec(m, log);
      if (cholesky) {
        factor::confchox_trace(m, g, p.n, {});
      } else {
        factor::conflux_lu_trace(m, g, p.n, {});
      }
    }
    const Timeline tl(log, m.spec());
    EXPECT_GT(tl.modeled_time(), 0.0);
    // The four-model chain (acceptance criterion): strict BSP above the
    // bounded-overlap replay, above the lookahead-pipelined replay, above
    // perfect overlap — on both factorizations.
    EXPECT_LE(m.modeled_time_overlap(), tl.modeled_time_lookahead())
        << p.name << (cholesky ? " chol" : " lu");
    EXPECT_LE(tl.modeled_time_lookahead(), tl.modeled_time())
        << p.name << (cholesky ? " chol" : " lu");
    EXPECT_LE(tl.modeled_time(), m.elapsed_time())
        << p.name << (cholesky ? " chol" : " lu");
    EXPECT_LE(tl.raw_lookahead_time(), tl.raw_event_time())
        << p.name << (cholesky ? " chol" : " lu");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ModelOrdering,
    ::testing::Values(OrderingCase{"seq", 256, 1, 1, 1},
                      OrderingCase{"plane2d", 512, 8, 8, 1},
                      OrderingCase{"square25d", 512, 4, 4, 4},
                      OrderingCase{"shallow25d", 512, 4, 4, 2},
                      OrderingCase{"wide", 768, 8, 4, 2},
                      OrderingCase{"nonpow2", 384, 3, 3, 3}),
    [](const ::testing::TestParamInfo<OrderingCase>& info) {
      return info.param.name;
    });

TEST(ModelOrderingBaselines, Scalapack2DAndCandmc) {
  const index_t n = 512;
  const int p = 16;
  for (int variant = 0; variant < 4; ++variant) {
    xsim::Machine m(paper_spec(p, 1 << 22), xsim::ExecMode::Trace);
    EventLog log;
    {
      ScopedRecord rec(m, log);
      switch (variant) {
        case 0:
          baselines::scalapack_lu_trace(m, grid::choose_grid_2d(p), n,
                                        baselines::Baseline2DOptions{.block_size = 64});
          break;
        case 1:
          baselines::scalapack_cholesky_trace(m, grid::choose_grid_2d(p), n,
                                              baselines::slate_defaults());
          break;
        case 2: baselines::candmc_lu_trace(m, n, {}); break;
        case 3: baselines::capital_cholesky_trace(m, n, {}); break;
      }
    }
    const Timeline tl(log, m.spec());
    EXPECT_LE(m.modeled_time_overlap(), tl.modeled_time()) << "variant " << variant;
    EXPECT_LE(tl.modeled_time(), m.elapsed_time()) << "variant " << variant;
  }
}

// --------------------------------------- Trace == Real event-stream match ----

TEST(TraceRealEvents, CholeskyEventStreamsIdentical) {
  // No pivoting: a Real and a Trace run must emit the *same events in the
  // same order* — the event-level strengthening of the per-rank counter
  // equality asserted in factor_test.
  const index_t n = 80;
  const grid::Grid3D g(2, 2, 2);
  const double mem = grid_memory(n, g);
  const MatrixD a = random_spd_matrix(n, 17);
  const factor::FactorOptions opt{.block_size = 16};

  xsim::Machine real(paper_spec(g.ranks(), mem), xsim::ExecMode::Real);
  EventLog real_log;
  {
    ScopedRecord rec(real, real_log);
    factor::confchox(real, g, a.view(), opt);
  }
  xsim::Machine trace(paper_spec(g.ranks(), mem), xsim::ExecMode::Trace);
  EventLog trace_log;
  {
    ScopedRecord rec(trace, trace_log);
    factor::confchox_trace(trace, g, n, opt);
  }
  ASSERT_EQ(real_log.events().size(), trace_log.events().size());
  EXPECT_TRUE(real_log.events() == trace_log.events());
  EXPECT_EQ(real_log.labels(), trace_log.labels());
}

struct KindAggregate {
  std::size_t count = 0;
  double words = 0.0;
  double flops = 0.0;
};

std::map<EventKind, KindAggregate> aggregate_by_kind(const EventLog& log) {
  std::map<EventKind, KindAggregate> out;
  for (const Event& e : log.events()) {
    KindAggregate& a = out[e.kind];
    ++a.count;
    a.words += e.words;
    a.flops += e.flops;
  }
  return out;
}

TEST(TraceRealEvents, LuPerKindTotalsMatch) {
  // LU pivot *positions* differ between Real (data-driven) and Trace
  // (random), so individual events differ — but each event kind's total
  // volume and flops are pivot-invariant, like the machine-wide totals.
  const index_t n = 96;
  const grid::Grid3D g(2, 2, 2);
  const double mem = grid_memory(n, g);
  const MatrixD a = random_matrix(n, n, 19);
  const factor::FactorOptions opt{.block_size = 16};

  xsim::Machine real(paper_spec(g.ranks(), mem), xsim::ExecMode::Real);
  EventLog real_log;
  {
    ScopedRecord rec(real, real_log);
    factor::conflux_lu(real, g, a.view(), opt);
  }
  xsim::Machine trace(paper_spec(g.ranks(), mem), xsim::ExecMode::Trace);
  EventLog trace_log;
  {
    ScopedRecord rec(trace, trace_log);
    factor::conflux_lu_trace(trace, g, n, opt);
  }
  const auto real_agg = aggregate_by_kind(real_log);
  const auto trace_agg = aggregate_by_kind(trace_log);
  ASSERT_EQ(real_agg.size(), trace_agg.size());
  for (const auto& [kind, ra] : real_agg) {
    ASSERT_TRUE(trace_agg.count(kind)) << kind_name(kind);
    const KindAggregate& ta = trace_agg.at(kind);
    EXPECT_NEAR(ra.words, ta.words, 1e-9 * ra.words + 1e-9) << kind_name(kind);
    EXPECT_NEAR(ra.flops, ta.flops, 1e-9 * ra.flops + 1e-9) << kind_name(kind);
  }
  EXPECT_EQ(real_log.num_barriers(), trace_log.num_barriers());
  EXPECT_EQ(real_log.labels(), trace_log.labels());
}

// ----------------------------------------------------- Chrome-trace JSON ----

// Minimal recursive-descent JSON syntax checker: enough to guarantee
// about:tracing / Perfetto can load the file.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    const auto digit_run = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    digit_run();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digit_run();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      bool exp_digits = false;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return false;
    }
    return digits && pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string_view want(lit);
    if (s_.substr(pos_, want.size()) != want) return false;
    pos_ += want.size();
    return true;
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, ExportIsValidJsonWithPhaseLabels) {
  const index_t n = 64;
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m(paper_spec(g.ranks(), grid_memory(n, g)), xsim::ExecMode::Trace);
  EventLog log;
  {
    ScopedRecord rec(m, log);
    factor::conflux_lu_trace(m, g, n, factor::FactorOptions{.block_size = 16});
  }
  TimelineOptions opt;
  opt.record_slices = true;
  const Timeline tl(log, m.spec(), opt);
  ASSERT_FALSE(tl.slices().empty());

  std::ostringstream os;
  const std::size_t written = write_chrome_trace(os, tl);
  const std::string json = os.str();
  EXPECT_GT(written, 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("tournament-pivot"), std::string::npos);
  EXPECT_NE(json.find("schur-update"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
}

TEST(ChromeTrace, SlicesAreOffWithoutOptIn) {
  EventLog log;
  log.on_flops(0, 1.0);
  const Timeline tl(log, simple_spec(1, 0.0, 1.0, 1.0));
  EXPECT_TRUE(tl.slices().empty());
}

// ---------------------------------------------- lookahead time model ----

TEST(Replay, LazyDeferralShortensTheRawReplay) {
  // A lazy compute charge ahead of a transfer: the normal replay serializes
  // compute-then-send on the rank's CPU; the lookahead pass defers the lazy
  // work past the send and pays it at the end, so the receiver gets its
  // data earlier and the raw finish time drops. (The *clamped* lookahead
  // time still respects the [overlap, modeled] bracket.)
  EventLog log;
  log.on_annotation("schur-update-lazy");
  log.on_flops(0, 10.0);
  log.on_annotation("other");
  log.on_transfer(0, 1, 10.0);
  log.on_barrier();
  const Timeline tl(log, simple_spec(2, 0.0, 1.0, 1.0));
  // Normal: lazy 10s, then the 10-word send -> receiver finishes at 20.
  EXPECT_DOUBLE_EQ(tl.raw_event_time(), 20.0);
  // Lookahead: send starts immediately; the deferred 10s fill the sender's
  // tail -> everything done at 10.
  EXPECT_DOUBLE_EQ(tl.raw_lookahead_time(), 10.0);
  EXPECT_LE(tl.perfect_overlap_time(), tl.modeled_time_lookahead());
  EXPECT_LE(tl.modeled_time_lookahead(), tl.modeled_time());
}

TEST(Replay, UrgentPhasePaysTheOutstandingBacklogFirst) {
  // An urgent-labeled charge after a lazy one models the pipelined
  // executor's real dependency: the urgent stripe writes cells the lazy
  // remainder also writes, so the backlog is drained before it runs.
  EventLog log;
  log.on_annotation("schur-update-lazy");
  log.on_flops(0, 10.0);
  log.on_annotation("schur-update-urgent");
  log.on_flops(0, 5.0);
  const Timeline tl(log, simple_spec(1, 0.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(tl.raw_event_time(), 15.0);
  EXPECT_DOUBLE_EQ(tl.raw_lookahead_time(), 15.0);  // nothing to hide behind
}

// ----------------------------------------------------- persistent pool ----

TEST(TaskPool, DependenciesOrderExecution) {
  TaskPool& pool = TaskPool::instance();
  std::atomic<int> stage{0};
  int first_seen = -1;
  int second_seen = -1;
  const TaskId a = pool.submit([&] { first_seen = stage.fetch_add(1); },
                               "first", TaskCategory::Other, 0, nullptr, 0);
  const TaskId b = pool.submit([&] { second_seen = stage.fetch_add(1); },
                               "second", TaskCategory::Other, 0, &a, 1);
  pool.wait(b);
  EXPECT_EQ(first_seen, 0);
  EXPECT_EQ(second_seen, 1);
  // Completed or unknown dependency ids are ignored.
  const TaskId c = pool.submit([&] { stage.fetch_add(1); }, "third",
                               TaskCategory::Other, 0, &b, 1);
  pool.wait(c);
  EXPECT_EQ(stage.load(), 3);
}

// ------------------------------------------ failure semantics (ISSUE 6) ----

TEST(TaskPool, TaskExceptionPropagatesToWait) {
  // A task body that throws must surface on the master as a classified
  // status_error at its next wait — never terminate() on a worker, never
  // vanish.
  TaskPool& pool = TaskPool::instance();
  const TaskId t = pool.submit([] { throw std::runtime_error("boom"); },
                               "thrower", TaskCategory::Other, 7, nullptr, 0);
  try {
    pool.wait(t);
    FAIL() << "task exception must surface at wait";
  } catch (const status_error& e) {
    EXPECT_EQ(e.code(), StatusCode::kTaskFailed);
    EXPECT_EQ(e.status().step(), 7);
    EXPECT_NE(e.status().message().find("thrower"), std::string::npos);
    EXPECT_NE(e.status().message().find("boom"), std::string::npos);
  }
  // Consuming the error resets the pool: fresh work runs normally.
  std::atomic<int> ran{0};
  const TaskId u =
      pool.submit([&] { ran = 1; }, "after", TaskCategory::Other, 0, nullptr, 0);
  pool.wait(u);
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskPool, FailedTaskCancelsDependents) {
  // Cooperative cancellation: after a failure the rest of the graph drains
  // without running bodies — dependents "finish" (no deadlock) but their
  // side effects never happen.
  TaskPool& pool = TaskPool::instance();
  std::atomic<bool> dependent_ran{false};
  const TaskId bad =
      pool.submit([] { throw std::runtime_error("first failure"); }, "bad",
                  TaskCategory::Other, 1, nullptr, 0);
  const TaskId dep = pool.submit([&] { dependent_ran = true; }, "dep",
                                 TaskCategory::Other, 2, &bad, 1);
  try {
    pool.wait(dep);
    FAIL() << "waiting on a cancelled dependent must rethrow the root cause";
  } catch (const status_error& e) {
    EXPECT_EQ(e.code(), StatusCode::kTaskFailed);
    EXPECT_EQ(e.status().step(), 1);  // the ROOT failure, not the cascade
  }
  EXPECT_FALSE(dependent_ran.load());
  std::atomic<bool> ok{false};
  const TaskId next = pool.submit([&] { ok = true; }, "recover",
                                  TaskCategory::Other, 0, nullptr, 0);
  pool.wait(next);
  EXPECT_TRUE(ok.load());
}

TEST(TaskPool, WatchdogDetectsWedgedPool) {
#ifndef _OPENMP
  GTEST_SKIP() << "needs OpenMP to configure a 2-thread pool";
#else
  // A worker stuck in a task (here: spinning until released) must not hang
  // the blocked master forever: after a full watchdog interval with zero
  // retirements the wait fails fast with kPoolWedged and a task-id dump.
  // The task is Lazy so the helping master cannot pick it up itself and
  // block in its body.
  TaskPool& pool = TaskPool::instance();
  const int saved = omp_get_max_threads();
  omp_set_num_threads(2);
  pool.set_watchdog_seconds(0.2);
  std::atomic<bool> release{false};
  const TaskId wedged = pool.submit(
      [&] {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      "wedged-task", TaskCategory::Lazy, 3, nullptr, 0);
  try {
    pool.wait(wedged);
    FAIL() << "a wedged pool must fail fast, not block";
  } catch (const status_error& e) {
    EXPECT_EQ(e.code(), StatusCode::kPoolWedged);
    EXPECT_NE(e.status().message().find("wedged-task"), std::string::npos);
  }
  // Resolve the wedge; the pool must drain and accept work again.
  release = true;
  pool.wait_all();
  std::atomic<bool> ok{false};
  const TaskId next = pool.submit([&] { ok = true; }, "after-wedge",
                                  TaskCategory::Other, 0, nullptr, 0);
  pool.wait(next);
  EXPECT_TRUE(ok.load());
  pool.set_watchdog_seconds(0.0);  // back to the env/default interval
  omp_set_num_threads(saved);
#endif
}

TEST(RankParallel, SingleChunkAndSingleThreadRunInline) {
  // The explicit fast path: n == 1, or only one thread configured, executes
  // on the calling thread with no team machinery at all.
  const auto self = std::this_thread::get_id();
  std::thread::id ran_on{};
  sched::parallel_ranks(1, [&](index_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, self);
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  std::array<std::thread::id, 4> ids{};
  sched::parallel_ranks(4, [&](index_t i) {
    ids[static_cast<std::size_t>(i)] = std::this_thread::get_id();
  });
  omp_set_num_threads(saved);
  for (const auto& id : ids) EXPECT_EQ(id, self);
#endif
}

// With two threads, a lookahead run must actually pipeline: some step t+1
// panel task (the A10 solve feeding the next Schur update) begins on the
// wall clock before step t's lazy remainder has finished, and the recorded
// pool slices export as valid Chrome-trace JSON.
TEST(TaskPool, LookaheadRunOverlapsAcrossStepsInTheRecordedTrace) {
#ifndef _OPENMP
  GTEST_SKIP() << "needs OpenMP to configure a 2-thread pool";
#else
  const index_t n = 512;
  const grid::Grid3D g(2, 2, 1);
  const MatrixD a = random_matrix(n, n, 101);
  factor::FactorOptions opt;
  opt.block_size = 32;
  opt.lookahead = 1;
  const index_t steps = n / opt.block_size;

  TaskPool& pool = TaskPool::instance();
  const int saved = omp_get_max_threads();
  omp_set_num_threads(2);
  // The overlap is a wall-clock property: with both threads time-sliced
  // onto few (or one) physical cores, an unlucky OS schedule can serialize
  // a whole run. Any successful attempt proves the pipeline; retry a few
  // times before declaring failure.
  bool overlapped = false;
  std::vector<TaskSlice> slices;
  for (int attempt = 0; attempt < 8 && !overlapped; ++attempt) {
    pool.start_recording();
    xsim::Machine m(paper_spec(g.ranks(), grid_memory(n, g)), xsim::ExecMode::Real);
    const factor::LuResult lu = factor::conflux_lu(m, g, a.view(), opt);
    slices = pool.stop_recording();
    ASSERT_EQ(static_cast<index_t>(lu.perm.size()), n);
    ASSERT_FALSE(slices.empty());

    // Per step: when did the lazy remainder end, and when did the next
    // step's panel work begin?
    std::vector<double> lazy_end(static_cast<std::size_t>(steps), -1.0);
    std::vector<double> panel_start(static_cast<std::size_t>(steps), 1e300);
    bool saw_urgent = false;
    for (const TaskSlice& s : slices) {
      if (s.step < 0 || s.step >= steps) continue;
      const auto i = static_cast<std::size_t>(s.step);
      if (s.category == TaskCategory::Lazy) {
        lazy_end[i] = std::max(lazy_end[i], s.end_s);
      } else if (s.name == std::string_view("panel-trsm-a10")) {
        panel_start[i] = std::min(panel_start[i], s.start_s);
      }
      saw_urgent = saw_urgent || s.category == TaskCategory::Urgent;
    }
    EXPECT_TRUE(saw_urgent);
    for (index_t t = 0; t + 1 < steps; ++t) {
      const auto i = static_cast<std::size_t>(t);
      if (lazy_end[i] < 0.0) continue;
      overlapped = overlapped || panel_start[i + 1] < lazy_end[i];
    }
  }
  omp_set_num_threads(saved);
  EXPECT_TRUE(overlapped)
      << "no step t+1 panel task began before step t's lazy gemm ended";

  std::ostringstream os;
  const std::size_t written = write_task_trace(os, slices);
  const std::string json = os.str();
  EXPECT_GT(written, 0u);
  EXPECT_NE(json.find("schur-lazy"), std::string::npos);
  EXPECT_NE(json.find("schur-urgent"), std::string::npos);
  EXPECT_NE(json.find("panel-trsm-a10"), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
#endif
}

// -------------------------------------------------- OpenMP determinism ----

TEST(RankParallel, RealModeResultsBitwiseIdenticalAcrossThreadCounts) {
  const index_t n = 128;
  const grid::Grid3D g(2, 2, 2);
  const double mem = grid_memory(n, g);
  const MatrixD a = random_matrix(n, n, 29);
  const MatrixD spd = random_spd_matrix(n, 31);
  const factor::FactorOptions opt{.block_size = 16};

  const auto run_lu = [&] {
    xsim::Machine m(paper_spec(g.ranks(), mem), xsim::ExecMode::Real);
    return factor::conflux_lu(m, g, a.view(), opt);
  };
  const auto run_chol = [&] {
    xsim::Machine m(paper_spec(g.ranks(), mem), xsim::ExecMode::Real);
    return factor::confchox(m, g, spd.view(), opt);
  };

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  const factor::LuResult lu1 = run_lu();
  const factor::CholResult ch1 = run_chol();
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
  const factor::LuResult lu4 = run_lu();
  const factor::CholResult ch4 = run_chol();
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  EXPECT_EQ(lu1.perm, lu4.perm);
  EXPECT_EQ(lu1.factors, lu4.factors);
  EXPECT_EQ(ch1.factors, ch4.factors);
}

// ---------------------------------------------------------------------------
// Pool lease (the solve service's tenant-isolation primitive)
// ---------------------------------------------------------------------------

TEST(PoolLease, GrantsByPriorityThenArrival) {
  TaskPool& pool = TaskPool::instance();
  std::vector<int> grant_order;
  std::mutex order_mu;
  std::atomic<int> blocked{0};

  TaskPool::Lease held = pool.acquire_lease(0);
  ASSERT_TRUE(held.held());

  // Two contenders queue while the lease is held: the batch-priority
  // arrival comes FIRST, the interactive one second — the grant order must
  // invert to (priority, arrival).
  auto contend = [&](int priority) {
    blocked.fetch_add(1);
    TaskPool::Lease lease = pool.acquire_lease(priority);
    std::lock_guard<std::mutex> lock(order_mu);
    grant_order.push_back(priority);
  };
  std::thread batch(contend, 2);
  while (blocked.load() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // batch is waiting
  std::thread interactive(contend, 0);
  while (blocked.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // both are waiting

  held.release();
  EXPECT_FALSE(held.held());
  batch.join();
  interactive.join();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], 0) << "interactive must be granted first";
  EXPECT_EQ(grant_order[1], 2);
}

TEST(PoolLease, MoveTransfersOwnershipAndReleaseIsIdempotent) {
  TaskPool& pool = TaskPool::instance();
  TaskPool::Lease a = pool.acquire_lease(1);
  ASSERT_TRUE(a.held());
  TaskPool::Lease b = std::move(a);
  EXPECT_FALSE(a.held());
  EXPECT_TRUE(b.held());
  b.release();
  b.release();  // releasing twice must be harmless
  EXPECT_FALSE(b.held());
  // The pool is free again: an immediate re-acquire must not block.
  TaskPool::Lease c = pool.acquire_lease(2);
  EXPECT_TRUE(c.held());
}

}  // namespace
}  // namespace conflux::sched
