// Cost models vs. traced measurements — the substance of Table 2's
// validation column: the exact models must match the simulator to double
// precision; the paper-form closed forms must be within a few percent at
// paper-like scales.
#include <gtest/gtest.h>

#include <cmath>

#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "models/models.hpp"

namespace conflux::models {
namespace {

xsim::Machine make_machine(int ranks, double memory) {
  xsim::MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = memory;
  return xsim::Machine(spec, xsim::ExecMode::Trace);
}

struct ExactCase {
  index_t n;
  int px, py, pz;
  index_t v;
};

class ConfluxExactModel : public ::testing::TestWithParam<ExactCase> {};

TEST_P(ConfluxExactModel, LuMatchesTraceToMachinePrecision) {
  const auto& p = GetParam();
  const grid::Grid3D g(p.px, p.py, p.pz);
  const double mem = static_cast<double>(p.pz) * static_cast<double>(p.n) *
                     static_cast<double>(p.n) / g.ranks();
  xsim::Machine m = make_machine(g.ranks(), mem);
  factor::FactorOptions opt;
  opt.block_size = p.v;
  factor::conflux_lu_trace(m, g, p.n, opt);
  const double measured = m.total_words_received() / g.ranks();
  const double model = conflux_lu_volume_exact(p.n, g, p.v);
  EXPECT_NEAR(measured, model, 1e-9 * model + 1e-9)
      << "n=" << p.n << " grid=" << p.px << "x" << p.py << "x" << p.pz;
}

TEST_P(ConfluxExactModel, CholeskyMatchesTraceToMachinePrecision) {
  const auto& p = GetParam();
  const grid::Grid3D g(p.px, p.py, p.pz);
  const double mem = static_cast<double>(p.pz) * static_cast<double>(p.n) *
                     static_cast<double>(p.n) / g.ranks();
  xsim::Machine m = make_machine(g.ranks(), mem);
  factor::FactorOptions opt;
  opt.block_size = p.v;
  factor::confchox_trace(m, g, p.n, opt);
  const double measured = m.total_words_received() / g.ranks();
  const double model = confchox_volume_exact(p.n, g, p.v);
  EXPECT_NEAR(measured, model, 1e-9 * model + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfluxExactModel,
    ::testing::Values(ExactCase{256, 2, 2, 2, 16}, ExactCase{256, 4, 4, 1, 32},
                      ExactCase{512, 4, 4, 4, 32}, ExactCase{512, 3, 3, 3, 9},
                      ExactCase{300, 2, 2, 2, 16},   // padded
                      ExactCase{1024, 8, 8, 2, 64}, ExactCase{2048, 4, 2, 2, 128}));

TEST(PaperFormModels, ConfluxLeadingTermWithinTensOfPercentAtScale) {
  // At N = 16384, P = 256, c = 4 the leading term should carry most of the
  // volume; the paper-form model N^3/(P sqrt(M)) plus the O(M)-class terms
  // land within ~1.5x.
  const index_t n = 16384;
  const grid::Grid3D g(8, 8, 4);
  const double mem = 4.0 * static_cast<double>(n) * static_cast<double>(n) / 256.0;
  const double exact = conflux_lu_volume_exact(n, g, 256);
  const double paper = conflux_volume(static_cast<double>(n), 256.0, mem);
  EXPECT_GT(exact, paper);
  EXPECT_LT(exact, 2.2 * paper);
}

TEST(PaperFormModels, Table2OrderingAtPaperScale) {
  // Table 2 / Fig. 8a ordering at N = 16384 across P: conflux < slate <= mkl
  // < candmc when c > 1.
  const double n = 16384;
  for (const double p : {64.0, 256.0, 1024.0}) {
    const double mem = std::cbrt(p) * n * n / p;
    const grid::Grid2D g2 = grid::choose_grid_2d(static_cast<int>(p));
    const double conflux = conflux_volume(n, p, mem);
    const double slate = slate_lu_volume(n, g2);
    const double mkl = mkl_lu_volume(n, g2);
    const double candmc = candmc_lu_volume(n, p, mem);
    EXPECT_LT(conflux, slate) << "P=" << p;
    EXPECT_LE(slate, mkl) << "P=" << p;
    EXPECT_GT(candmc, mkl) << "P=" << p;
  }
}

TEST(PaperFormModels, ConfluxFiveTimesLessThanCandmc) {
  // "Compared to ... CANDMC ... COnfLUX communicates five times less."
  const double ratio = candmc_lu_volume(1e5, 1024, 1e8) /
                       conflux_volume(1e5, 1024, 1e8);
  EXPECT_DOUBLE_EQ(ratio, 5.0);
}

TEST(PaperFormModels, LuWithinOnePointFiveOfLowerBound) {
  // Section 7.4: the leading term is 1.5x the LU lower bound (the bound's
  // N^2/(2P) term nudges the exact ratio slightly below/above depending on
  // sqrt(M)/N).
  const double n = 1e6, p = 4096, mem = 1e9;
  const double ratio = conflux_volume(n, p, mem) / lu_lower_bound(n, p, mem);
  EXPECT_NEAR(ratio, 1.5, 0.06);
}

TEST(PaperFormModels, CholeskyWithinThreeOfLowerBound) {
  // COnfCHOX communicates ~N^3/(P sqrt(M)) against a N^3/(3 P sqrt(M)) bound.
  const double n = 1e6, p = 4096, mem = 1e9;
  const double ratio = conflux_volume(n, p, mem) / cholesky_lower_bound(n, p, mem);
  EXPECT_NEAR(ratio, 3.0, 0.25);
}

TEST(PaperFormModels, LowerBoundsMatchDaapForms) {
  EXPECT_NEAR(lu_lower_bound(4096, 64, 1 << 20),
              (2.0 * std::pow(4096.0, 3) - 6.0 * 4096.0 * 4096.0 + 4.0 * 4096.0) /
                      (3.0 * 64.0 * 1024.0) +
                  4096.0 * 4095.0 / 128.0,
              1e-6);
}

TEST(MemoryRegimes, IndependentBoundIsDependentBoundAtTheCap) {
  // At M = N^2/P^{2/3} the two regimes coincide (Section 6, "Memory size").
  const double n = 65536, p = 512;
  const double cap = n * n / std::pow(p, 2.0 / 3.0);
  EXPECT_NEAR(lu_lower_bound(n, p, cap), lu_lower_bound_memory_independent(n, p),
              1e-3 * lu_lower_bound_memory_independent(n, p));
  EXPECT_NEAR(cholesky_lower_bound(n, p, cap),
              cholesky_lower_bound_memory_independent(n, p),
              1e-3 * cholesky_lower_bound_memory_independent(n, p));
}

TEST(MemoryRegimes, ClampedBoundStopsImprovingBeyondTheCap) {
  const double n = 16384, p = 64;
  const double cap = n * n / std::pow(p, 2.0 / 3.0);
  const double at_cap = lu_lower_bound_clamped(n, p, cap);
  EXPECT_DOUBLE_EQ(lu_lower_bound_clamped(n, p, 10.0 * cap), at_cap);
  EXPECT_GT(lu_lower_bound_clamped(n, p, 0.25 * cap), at_cap);
}

TEST(PeakModel, PeakFractionSane) {
  xsim::MachineSpec spec;
  spec.num_ranks = 4;
  spec.gamma_flops_per_s = 1e9;
  // 4 Gflop of useful work in 2 s on 4 Gflop/s aggregate = 50%.
  EXPECT_DOUBLE_EQ(peak_fraction(4e9, spec, 2.0), 0.5);
  EXPECT_THROW(peak_fraction(1.0, spec, 0.0), contract_error);
}

TEST(PeakModel, FlopFormulas) {
  EXPECT_DOUBLE_EQ(lu_flops(100.0), 2.0e6 / 3.0);
  EXPECT_DOUBLE_EQ(cholesky_flops(100.0), 1.0e6 / 3.0);
}

TEST(PaperMemory, ReplicationCappedByNode) {
  // Small problem: max replication fits.
  EXPECT_DOUBLE_EQ(paper_memory_words(1024, 64), std::cbrt(64.0) * 1024.0 * 1024.0 / 64.0);
  // Huge problem: the node budget caps it.
  EXPECT_DOUBLE_EQ(paper_memory_words(1e6, 8, 1e9), 1e9);
}

}  // namespace
}  // namespace conflux::models
