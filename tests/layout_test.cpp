// ScaLAPACK block-cyclic layouts, descriptors, DistMatrix storage, and the
// COSTA-substitute redistribution (round trips, costs, degenerate cases).
#include <gtest/gtest.h>

#include "layout/layout.hpp"
#include "tensor/random_matrix.hpp"
#include "xsim/machine.hpp"

namespace conflux::layout {
namespace {

xsim::Machine make_machine(int ranks, xsim::ExecMode mode = xsim::ExecMode::Real) {
  xsim::MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = 1 << 22;
  return xsim::Machine(spec, mode);
}

BlockCyclicLayout make_layout(index_t n, index_t mb, index_t nb, int pr, int pc,
                              int base = 0) {
  BlockCyclicLayout l;
  l.rows = n;
  l.cols = n;
  l.mb = mb;
  l.nb = nb;
  l.pr = pr;
  l.pc = pc;
  l.rank_base = base;
  return l;
}

TEST(Numroc, MatchesBruteForce) {
  for (const index_t n : {0, 1, 5, 16, 37}) {
    for (const index_t blk : {1, 2, 4, 5}) {
      for (const int procs : {1, 2, 3, 4}) {
        for (int p = 0; p < procs; ++p) {
          index_t brute = 0;
          for (index_t i = 0; i < n; ++i) {
            if ((i / blk) % procs == p) ++brute;
          }
          EXPECT_EQ(BlockCyclicLayout::numroc(n, blk, p, procs), brute)
              << "n=" << n << " blk=" << blk << " p=" << p << "/" << procs;
        }
      }
    }
  }
}

TEST(Layout, OwnershipAndLocalIndicesConsistent) {
  const auto l = make_layout(20, 3, 4, 2, 3);
  // Every element maps to an owner and a local slot; slots are unique per
  // owner and within the local bounds.
  std::vector<std::set<std::pair<index_t, index_t>>> used(
      static_cast<std::size_t>(l.num_ranks()));
  for (index_t i = 0; i < 20; ++i) {
    for (index_t j = 0; j < 20; ++j) {
      const int rank = l.rank_of(i, j);
      ASSERT_GE(rank, 0);
      ASSERT_LT(rank, 6);
      const auto li = l.local_row(i);
      const auto lj = l.local_col(j);
      EXPECT_LT(li, l.local_rows(l.prow_of_row(i)));
      EXPECT_LT(lj, l.local_cols(l.pcol_of_col(j)));
      EXPECT_TRUE(used[static_cast<std::size_t>(rank)].insert({li, lj}).second)
          << "local slot collision at (" << i << "," << j << ")";
    }
  }
}

TEST(Layout, RankBaseOffsetsMachineRanks) {
  const auto l = make_layout(8, 2, 2, 2, 2, /*base=*/10);
  EXPECT_EQ(l.rank_of(0, 0), 10);
  EXPECT_EQ(l.rank_of(0, 2), 11);
  EXPECT_EQ(l.rank_of(2, 0), 12);
  EXPECT_EQ(l.rank_of(2, 2), 13);
}

TEST(Desc, RoundTripThroughDescriptor) {
  const auto l = make_layout(100, 8, 16, 3, 2);
  const ScalapackDesc d = make_desc(l, 0);
  EXPECT_EQ(d.m, 100);
  EXPECT_EQ(d.nb, 16);
  const BlockCyclicLayout back = layout_from_desc(d, 3, 2);
  EXPECT_EQ(back.rows, l.rows);
  EXPECT_EQ(back.mb, l.mb);
  EXPECT_EQ(back.nb, l.nb);
  EXPECT_EQ(back.pr, l.pr);
}

TEST(DistMatrixTest, FromGlobalToGlobalRoundTrip) {
  const MatrixD a = random_matrix(33, 33, 7);
  for (const auto& [mb, nb, pr, pc] :
       {std::tuple{1, 1, 2, 2}, std::tuple{4, 4, 2, 3}, std::tuple{8, 2, 3, 1},
        std::tuple{33, 33, 1, 1}, std::tuple{5, 7, 4, 4}}) {
    const auto l = make_layout(33, mb, nb, pr, pc);
    const DistMatrix d = DistMatrix::from_global(a.view(), l);
    EXPECT_EQ(d.to_global(), a) << "mb=" << mb << " nb=" << nb;
    EXPECT_DOUBLE_EQ(d.total_words(), 33.0 * 33.0);
  }
}

TEST(DistMatrixTest, GetSetAddressSameStorage) {
  const auto l = make_layout(10, 3, 3, 2, 2);
  DistMatrix d(l);
  d.set(7, 4, 42.0);
  EXPECT_DOUBLE_EQ(d.get(7, 4), 42.0);
  // The element lives in the owner's local block at the computed slot.
  EXPECT_DOUBLE_EQ(d.local(l.prow_of_row(7), l.pcol_of_col(4))(l.local_row(7),
                                                               l.local_col(4)),
                   42.0);
}

TEST(Redistribute, PreservesContentAcrossLayoutChange) {
  const MatrixD a = random_matrix(24, 24, 11);
  const auto src_layout = make_layout(24, 2, 2, 2, 2);
  const auto dst_layout = make_layout(24, 3, 4, 1, 4);
  const DistMatrix src = DistMatrix::from_global(a.view(), src_layout);
  xsim::Machine m = make_machine(4);
  const DistMatrix dst = redistribute(m, src, dst_layout);
  EXPECT_EQ(dst.to_global(), a);
}

TEST(Redistribute, IdentityLayoutMovesNothing) {
  const MatrixD a = random_matrix(16, 16, 3);
  const auto l = make_layout(16, 4, 4, 2, 2);
  const DistMatrix src = DistMatrix::from_global(a.view(), l);
  xsim::Machine m = make_machine(4);
  const DistMatrix dst = redistribute(m, src, l);
  EXPECT_EQ(dst.to_global(), a);
  EXPECT_DOUBLE_EQ(m.total_words_received(), 0.0);
}

TEST(Redistribute, CostMatchesElementsThatChangeRanks) {
  const index_t n = 12;
  const auto src_layout = make_layout(n, 2, 2, 2, 2);
  const auto dst_layout = make_layout(n, 3, 3, 2, 2);
  // Brute-force count of elements whose owner changes.
  double moved = 0.0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (src_layout.rank_of(i, j) != dst_layout.rank_of(i, j)) moved += 1.0;
    }
  }
  xsim::Machine m = make_machine(4, xsim::ExecMode::Trace);
  const double cost = redistribute_cost(m, src_layout, dst_layout);
  EXPECT_DOUBLE_EQ(cost, moved);
  EXPECT_DOUBLE_EQ(m.total_words_received(), moved);
}

TEST(Redistribute, TraceAndRealChargeIdenticalCosts) {
  const index_t n = 20;
  const auto src_layout = make_layout(n, 2, 5, 2, 2);
  const auto dst_layout = make_layout(n, 4, 2, 4, 1);
  const MatrixD a = random_matrix(n, n, 5);
  xsim::Machine real = make_machine(4, xsim::ExecMode::Real);
  xsim::Machine trace = make_machine(4, xsim::ExecMode::Trace);
  const DistMatrix src = DistMatrix::from_global(a.view(), src_layout);
  redistribute(real, src, dst_layout);
  redistribute_cost(trace, src_layout, dst_layout);
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(real.counters(r).words_sent, trace.counters(r).words_sent);
    EXPECT_EQ(real.counters(r).messages_sent, trace.counters(r).messages_sent);
  }
}

TEST(Redistribute, ShapeMismatchRejected) {
  const auto a_layout = make_layout(8, 2, 2, 2, 2);
  auto b_layout = make_layout(10, 2, 2, 2, 2);
  const DistMatrix src(a_layout);
  xsim::Machine m = make_machine(4);
  EXPECT_THROW(redistribute(m, src, b_layout), contract_error);
}

TEST(Redistribute, DisjointRankBasesMoveEverything) {
  // Same layout shape but hosted on different machine ranks: every element
  // must travel.
  const index_t n = 8;
  const auto src_layout = make_layout(n, 2, 2, 2, 2, /*base=*/0);
  const auto dst_layout = make_layout(n, 2, 2, 2, 2, /*base=*/4);
  xsim::Machine m = make_machine(8, xsim::ExecMode::Trace);
  const double cost = redistribute_cost(m, src_layout, dst_layout);
  EXPECT_DOUBLE_EQ(cost, static_cast<double>(n * n));
}

}  // namespace
}  // namespace conflux::layout
