// Lower-bound engine vs. the paper's closed forms (Sections 3 and 6).
// The engine must reproduce chi(X) = (X/3)^{3/2}, X0 = 3M, rho = sqrt(M)/2
// and the LU / Cholesky / matmul parallel bounds numerically, without those
// forms being hard-coded anywhere in src/daap.
#include <gtest/gtest.h>

#include <cmath>

#include "daap/bounds.hpp"
#include "daap/statement.hpp"
#include "support/check.hpp"

namespace conflux::daap {
namespace {

constexpr double kRelTol = 2e-3;

double rel_err(double got, double want) {
  return std::abs(got - want) / std::abs(want);
}

// ------------------------------------------------------------- solve_chi ----

TEST(SolveChi, MatmulChiMatchesCubeRootForm) {
  // max IJK s.t. IJ + IK + KJ <= X  ==>  chi = (X/3)^{3/2} at I=J=K=sqrt(X/3).
  const auto kernel = matmul_kernel(1024);
  for (double x : {30.0, 300.0, 3000.0, 3e6}) {
    const ChiResult r = solve_chi(kernel.program.statements[0], x);
    EXPECT_LT(rel_err(r.chi, std::pow(x / 3.0, 1.5)), kRelTol) << "X=" << x;
    for (double d : r.domain) {
      EXPECT_LT(rel_err(d, std::sqrt(x / 3.0)), kRelTol) << "X=" << x;
    }
  }
}

TEST(SolveChi, AccessSizesBalanceAtOptimum) {
  const auto kernel = matmul_kernel(64);
  const ChiResult r = solve_chi(kernel.program.statements[0], 3000.0);
  ASSERT_EQ(r.access_sizes.size(), 3u);
  // KKT: the three access sizes are equal and sum to X.
  double sum = 0.0;
  for (double a : r.access_sizes) sum += a;
  EXPECT_LT(rel_err(sum, 3000.0), kRelTol);
  EXPECT_LT(rel_err(r.access_sizes[0], r.access_sizes[1]), kRelTol);
  EXPECT_LT(rel_err(r.access_sizes[1], r.access_sizes[2]), kRelTol);
}

TEST(SolveChi, TinyXGivesTrivialSubcomputation) {
  const auto kernel = matmul_kernel(8);
  const ChiResult r = solve_chi(kernel.program.statements[0], 2.0);  // X <= m
  EXPECT_DOUBLE_EQ(r.chi, 1.0);
}

TEST(SolveChi, LuS1PushesAllGrowthIntoFreeVariable) {
  // S1 accesses: A[i,k] (both vars) and A[k,k] (k only). With K = 1 the
  // constraint is I*1 + 1 <= X, so chi ~ X - 1.
  const auto kernel = lu_kernel(64);
  const ChiResult r = solve_chi(kernel.program.statements[0], 1000.0);
  EXPECT_LT(rel_err(r.chi, 999.0), kRelTol);
}

TEST(SolveChi, DotProductStatementHasLinearChi)
{
  // s = s + a[i] * b[i]: accesses a{i}, b{i}, s{} -> but s has no vars, so
  // model as c[i] = a[i] * b[i]: two accesses over one variable; the
  // constraint is 2I <= X => chi = X/2 (Figure 5b's structure).
  StatementSpec s;
  s.name = "dot";
  s.num_vars = 1;
  s.inputs = {AccessSpec{"a", {0}}, AccessSpec{"b", {0}}};
  s.output = AccessSpec{"c", {0}};
  s.u_outdeg1_inputs = 2;
  const ChiResult r = solve_chi(s, 500.0);
  EXPECT_LT(rel_err(r.chi, 250.0), kRelTol);
}

TEST(SolveChi, FourVariableContractionBalances) {
  // C[i,j,l] += A[i,k,l] * B[k,j]: constraint IJL + IKL + KJ <= X.
  StatementSpec s;
  s.name = "tc";
  s.num_vars = 4;  // i=0, j=1, k=2, l=3
  s.inputs = {AccessSpec{"C", {0, 1, 3}}, AccessSpec{"A", {0, 2, 3}},
              AccessSpec{"B", {2, 1}}};
  s.output = AccessSpec{"C", {0, 1, 3}};
  const double x = 3e6;
  const ChiResult r = solve_chi(s, x);
  // KKT balance: per-variable masses equal; verify feasibility and that the
  // solution beats the naive symmetric guess by construction.
  double mass = r.access_sizes[0] + r.access_sizes[1] + r.access_sizes[2];
  EXPECT_LT(rel_err(mass, x), 5e-3);
  const double naive = std::pow(x / 3.0, 4.0 / 3.0);  // I=J=K=L=(X/3)^{1/3}
  EXPECT_GE(r.chi, 0.99 * naive);
}

// ------------------------------------------- derive_statement_bound --------

TEST(StatementBound, MatmulX0IsThreeM) {
  const auto kernel = matmul_kernel(512);
  for (double memory : {64.0, 1024.0, 16384.0}) {
    const StatementBound b = derive_statement_bound(
        kernel.program.statements[0], 512.0 * 512 * 512, memory);
    EXPECT_LT(rel_err(b.x0, 3.0 * memory), 5e-3) << "M=" << memory;
    EXPECT_LT(rel_err(b.rho, std::sqrt(memory) / 2.0), 5e-3) << "M=" << memory;
    EXPECT_FALSE(b.lemma6_capped);
  }
}

TEST(StatementBound, MatmulSequentialBoundIsTwoNCubedOverSqrtM) {
  const double n = 256, memory = 4096;
  const auto kernel = matmul_kernel(n);
  const StatementBound b =
      derive_statement_bound(kernel.program.statements[0], n * n * n, memory);
  EXPECT_LT(rel_err(b.q_sequential, 2.0 * n * n * n / std::sqrt(memory)), 5e-3);
}

TEST(StatementBound, LuS1CappedByLemma6) {
  const auto kernel = lu_kernel(128);
  const StatementBound b = derive_statement_bound(
      kernel.program.statements[0], 128.0 * 127 / 2, 256.0);
  EXPECT_TRUE(b.lemma6_capped);
  EXPECT_DOUBLE_EQ(b.rho, 1.0);
  EXPECT_DOUBLE_EQ(b.q_sequential, 128.0 * 127 / 2);
}

TEST(StatementBound, DotProductCappedAtHalf) {
  StatementSpec s;
  s.name = "dot";
  s.num_vars = 1;
  s.inputs = {AccessSpec{"a", {0}}, AccessSpec{"b", {0}}};
  s.output = AccessSpec{"c", {0}};
  s.u_outdeg1_inputs = 2;  // Figure 5b: u = 2 => rho <= 1/2
  const StatementBound b = derive_statement_bound(s, 1000.0, 64.0);
  EXPECT_TRUE(b.lemma6_capped);
  EXPECT_DOUBLE_EQ(b.rho, 0.5);
}

TEST(StatementBound, MemoryTooSmallRejected) {
  const auto kernel = matmul_kernel(8);
  EXPECT_THROW(derive_statement_bound(kernel.program.statements[0], 512.0, 2.0),
               contract_error);
}

// ----------------------------------------------------- program bounds ------

TEST(ProgramBound, LuMatchesClosedForm) {
  for (const double n : {512.0, 4096.0, 65536.0}) {
    for (const double memory : {1024.0, 65536.0}) {
      for (const double p : {1.0, 64.0}) {
        const ProgramBound b = derive_program_bound(lu_kernel(n), p, memory);
        const double want = lu_lower_bound_closed_form(n, p, memory);
        EXPECT_LT(rel_err(b.q_parallel, want), 5e-3)
            << "n=" << n << " M=" << memory << " P=" << p;
      }
    }
  }
}

TEST(ProgramBound, CholeskyMatchesClosedForm) {
  for (const double n : {512.0, 8192.0}) {
    for (const double memory : {1024.0, 16384.0}) {
      const ProgramBound b = derive_program_bound(cholesky_kernel(n), 16.0, memory);
      const double want = cholesky_lower_bound_closed_form(n, 16.0, memory);
      EXPECT_LT(rel_err(b.q_parallel, want), 5e-3) << "n=" << n << " M=" << memory;
    }
  }
}

TEST(ProgramBound, MatmulMatchesClosedForm) {
  const double n = 2048, memory = 4096, p = 32;
  const ProgramBound b = derive_program_bound(matmul_kernel(n), p, memory);
  // The closed form keeps only the leading term; allow 1% slack.
  EXPECT_LT(rel_err(b.q_parallel, matmul_lower_bound_closed_form(n, p, memory)), 1e-2);
}

TEST(ProgramBound, LuIsTwiceCholeskyLeadingTerm) {
  const double n = 32768, memory = 16384, p = 8;
  const double lu = derive_program_bound(lu_kernel(n), p, memory).q_parallel;
  const double chol = derive_program_bound(cholesky_kernel(n), p, memory).q_parallel;
  // Leading terms: 2N^3/(3P sqrt(M)) vs N^3/(3P sqrt(M)).
  EXPECT_NEAR(lu / chol, 2.0, 0.05);
}

TEST(ProgramBound, ScalesInverselyWithP) {
  const double n = 8192, memory = 4096;
  const double q1 = derive_program_bound(lu_kernel(n), 1.0, memory).q_parallel;
  const double q64 = derive_program_bound(lu_kernel(n), 64.0, memory).q_parallel;
  EXPECT_LT(rel_err(q1 / q64, 64.0), 1e-9);
}

TEST(ProgramBound, LargerMemoryWeakensBound) {
  const double n = 8192;
  const double q_small = derive_program_bound(lu_kernel(n), 4.0, 1024.0).q_parallel;
  const double q_large = derive_program_bound(lu_kernel(n), 4.0, 16384.0).q_parallel;
  EXPECT_GT(q_small, q_large);
}

// -------------------------------------------------------- input reuse ------

TEST(InputReuse, SharedArrayReuseIsPositiveAndBounded) {
  // Two matmul-like statements sharing input array A.
  const auto mm = matmul_kernel(256);
  const auto& s = mm.program.statements[0];
  const double v = 256.0 * 256 * 256;
  const double reuse = input_reuse_bound(s, v, s, v, "A", 1024.0);
  EXPECT_GT(reuse, 0.0);
  // Cannot exceed either statement's total access volume to A.
  const StatementBound b = derive_statement_bound(s, v, 1024.0);
  EXPECT_LE(reuse, b.q_sequential);
}

TEST(InputReuse, UnreadArrayHasZeroReuse) {
  const auto mm = matmul_kernel(64);
  const auto& s = mm.program.statements[0];
  EXPECT_DOUBLE_EQ(input_reuse_bound(s, 1000.0, s, 1000.0, "ZZZ", 256.0), 0.0);
}

TEST(InputReuse, ProgramWithInputOverlapSubtractsReuse) {
  // A synthetic two-statement program sharing array A as input.
  KernelInstance kernel = matmul_kernel(128);
  kernel.program.statements.push_back(kernel.program.statements[0]);
  kernel.statement_vertices.push_back(kernel.statement_vertices[0]);
  KernelInstance no_reuse = kernel;
  kernel.program.input_reuses = {InputReuse{"A", 0, 1}};
  const double with_reuse = derive_program_bound(kernel, 1.0, 512.0).q_parallel;
  const double without = derive_program_bound(no_reuse, 1.0, 512.0).q_parallel;
  EXPECT_LT(with_reuse, without);
  EXPECT_GT(with_reuse, 0.0);
}

// ------------------------------------------------------- kernel shapes -----

TEST(Kernels, VertexCountsMatchSectionSix) {
  const double n = 100;
  const auto lu = lu_kernel(n);
  EXPECT_DOUBLE_EQ(lu.statement_vertices[0], n * (n - 1) / 2);
  EXPECT_DOUBLE_EQ(lu.statement_vertices[1], n * (n - 1) * (n - 2) / 3);
  const auto chol = cholesky_kernel(n);
  EXPECT_DOUBLE_EQ(chol.statement_vertices[0], n);
  EXPECT_DOUBLE_EQ(chol.statement_vertices[1], n * (n - 1) / 2);
  EXPECT_DOUBLE_EQ(chol.statement_vertices[2], n * (n - 1) * (n - 2) / 6);
}

TEST(Kernels, AccessDimensionsMatchPaper) {
  const auto lu = lu_kernel(16);
  // S1: dim(A[i,k]) = 2, dim(A[k,k]) = 1 (the Section 2.2 example).
  EXPECT_EQ(lu.program.statements[0].inputs[0].access_dim(), 2);
  EXPECT_EQ(lu.program.statements[0].inputs[1].access_dim(), 1);
  // S2: all three accesses have dimension 2.
  for (const auto& acc : lu.program.statements[1].inputs) {
    EXPECT_EQ(acc.access_dim(), 2);
  }
}

TEST(Kernels, TrsmBoundMatchesUpdateStatementForm) {
  // The TRSM update statement has LU.S2's access structure, so the bound's
  // leading term is 2|V2|/sqrt(M) = N^2 * nrhs / sqrt(M) (plus the O(N*nrhs)
  // diagonal-scale term).
  const double n = 4096, nrhs = 4096, memory = 16384, p = 8;
  const ProgramBound b = derive_program_bound(trsm_kernel(n, nrhs), p, memory);
  const double want =
      (n * (n - 1) * nrhs / std::sqrt(memory) + n * nrhs) / p;
  EXPECT_LT(rel_err(b.q_parallel, want), 5e-3);
  EXPECT_TRUE(b.per_statement[0].lemma6_capped);
  EXPECT_LT(rel_err(b.per_statement[1].rho, std::sqrt(memory) / 2.0), 5e-3);
}

TEST(Kernels, SyrkBoundMatchesMatmulIntensity) {
  // SYRK's statement is access-isomorphic to matmul's: same rho, bound
  // scaled by its (triangular) vertex count.
  const double n = 2048, k = 1024, memory = 4096, p = 16;
  const ProgramBound b = derive_program_bound(syrk_kernel(n, k), p, memory);
  const double want = 2.0 * (n * (n + 1) / 2.0 * k) / (std::sqrt(memory) * p);
  EXPECT_LT(rel_err(b.q_parallel, want), 5e-3);
  EXPECT_LT(rel_err(b.per_statement[0].x0, 3.0 * memory), 5e-3);
}

TEST(Kernels, StatementValidationCatchesBadVariables) {
  StatementSpec s;
  s.name = "bad";
  s.num_vars = 2;
  s.inputs = {AccessSpec{"A", {0, 5}}};  // variable 5 does not exist
  EXPECT_THROW(s.validate(), contract_error);
}

}  // namespace
}  // namespace conflux::daap
