// cDAG builders, red-blue pebble games, greedy schedules, and X-partitions.
// The headline property: every valid schedule's I/O is lower-bounded by the
// daap engine's Q for the same kernel and memory size.
#include <gtest/gtest.h>

#include <cmath>

#include "daap/bounds.hpp"
#include "daap/statement.hpp"
#include "pebbles/cdag.hpp"
#include "pebbles/game.hpp"
#include "pebbles/xpartition.hpp"

namespace conflux::pebbles {
namespace {

// ------------------------------------------------------------- builders ----

TEST(Cdag, MatmulVertexAndEdgeCounts) {
  const int n = 4;
  const CDag g = build_matmul_cdag(n);
  EXPECT_EQ(g.num_vertices(), 3 * n * n + n * n * n);
  EXPECT_EQ(static_cast<int>(g.inputs().size()), 3 * n * n);
  // Outputs: the last version of each C element.
  EXPECT_EQ(static_cast<int>(g.outputs().size()), n * n);
  EXPECT_EQ(g.max_in_degree(), 3);
}

TEST(Cdag, LuComputeCountsMatchFormulas) {
  for (int n : {2, 3, 5, 8}) {
    const CDag g = build_lu_cdag(n);
    const auto counts = lu_statement_counts(n);
    EXPECT_EQ(g.num_vertices(), n * n + counts.total()) << "n=" << n;
    EXPECT_EQ(static_cast<int>(g.inputs().size()), n * n);
  }
}

TEST(Cdag, CholeskyComputeCountsMatchFormulas) {
  for (int n : {2, 3, 5, 8}) {
    const CDag g = build_cholesky_cdag(n);
    const auto counts = cholesky_statement_counts(n);
    const int tri = n * (n + 1) / 2;
    EXPECT_EQ(g.num_vertices(), tri + counts.total()) << "n=" << n;
  }
}

TEST(Cdag, LuDependenciesRespectEliminationOrder) {
  // In LU for n=3, the S2 vertex updating A[2,2] at k=0 must depend on the
  // S1 vertex L[2,0]; no vertex of step k=1 may precede all of step k=0.
  const CDag g = build_lu_cdag(3);
  const auto order = g.topological_order();
  EXPECT_EQ(static_cast<int>(order.size()), g.num_vertices());
}

TEST(Cdag, TopologicalOrderPlacesPredsFirst) {
  const CDag g = build_cholesky_cdag(5);
  const auto order = g.topological_order();
  std::vector<int> pos(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int p : g.preds(v)) {
      EXPECT_LT(pos[static_cast<std::size_t>(p)], pos[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Cdag, EdgeToInputRejected) {
  CDag g;
  const int a = g.add_vertex(true);
  const int b = g.add_vertex(true);
  EXPECT_THROW(g.add_edge(a, b), contract_error);
}

// ----------------------------------------------------- sequential game -----

TEST(SequentialGame, HandBuiltScheduleCounted) {
  // c = a + b: load a, load b, compute c, store c.
  CDag g;
  const int a = g.add_vertex(true, "a");
  const int b = g.add_vertex(true, "b");
  const int c = g.add_vertex(false, "c");
  g.add_edge(a, c);
  g.add_edge(b, c);
  const std::vector<Move> sched = {{MoveType::Load, a, 0},
                                   {MoveType::Load, b, 0},
                                   {MoveType::Compute, c, 0},
                                   {MoveType::Store, c, 0}};
  const GameStats s = run_sequential_game(g, 3, sched);
  EXPECT_EQ(s.loads, 2);
  EXPECT_EQ(s.stores, 1);
  EXPECT_EQ(s.computes, 1);
  EXPECT_EQ(s.io(), 3);
}

TEST(SequentialGame, ComputeWithoutPredRejected) {
  CDag g;
  const int a = g.add_vertex(true, "a");
  const int c = g.add_vertex(false, "c");
  g.add_edge(a, c);
  const std::vector<Move> sched = {{MoveType::Compute, c, 0}};
  EXPECT_THROW(run_sequential_game(g, 4, sched), contract_error);
}

TEST(SequentialGame, MemoryLimitEnforced) {
  CDag g;
  const int a = g.add_vertex(true);
  const int b = g.add_vertex(true);
  const int c = g.add_vertex(false);
  g.add_edge(a, c);
  g.add_edge(b, c);
  const std::vector<Move> sched = {{MoveType::Load, a, 0},
                                   {MoveType::Load, b, 0},
                                   {MoveType::Compute, c, 0},
                                   {MoveType::Store, c, 0}};
  EXPECT_THROW(run_sequential_game(g, 2, sched), contract_error);  // needs 3
  EXPECT_NO_THROW(run_sequential_game(g, 3, sched));
}

TEST(SequentialGame, LoadOfUnstoredValueRejected) {
  CDag g;
  const int a = g.add_vertex(true);
  const int c = g.add_vertex(false);
  g.add_edge(a, c);
  // c never stored, then "loaded": illegal.
  const std::vector<Move> sched = {{MoveType::Load, a, 0},
                                   {MoveType::Compute, c, 0},
                                   {MoveType::Discard, c, 0},
                                   {MoveType::Load, c, 0}};
  EXPECT_THROW(run_sequential_game(g, 4, sched), contract_error);
}

TEST(SequentialGame, OutputMustEndBlue) {
  CDag g;
  const int a = g.add_vertex(true);
  const int c = g.add_vertex(false);
  g.add_edge(a, c);
  const std::vector<Move> sched = {{MoveType::Load, a, 0}, {MoveType::Compute, c, 0}};
  EXPECT_THROW(run_sequential_game(g, 4, sched), contract_error);
}

// ------------------------------------------------------ greedy schedule ----

class GreedyKernelSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

CDag build_named(const char* name, int n) {
  if (std::string(name) == "matmul") return build_matmul_cdag(n);
  if (std::string(name) == "lu") return build_lu_cdag(n);
  return build_cholesky_cdag(n);
}

TEST_P(GreedyKernelSweep, ScheduleIsValid) {
  const auto [name, n, memory] = GetParam();
  const CDag g = build_named(name, n);
  const auto sched = greedy_schedule(g, memory);
  const GameStats s = run_sequential_game(g, memory, sched);
  // Every compute vertex computed exactly once by the greedy scheduler.
  int computes = 0;
  for (int v = 0; v < g.num_vertices(); ++v) computes += !g.is_input(v);
  EXPECT_EQ(s.computes, computes);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, GreedyKernelSweep,
    ::testing::Values(std::tuple{"matmul", 4, 8}, std::tuple{"matmul", 6, 16},
                      std::tuple{"matmul", 8, 12}, std::tuple{"lu", 4, 8},
                      std::tuple{"lu", 8, 16}, std::tuple{"lu", 12, 24},
                      std::tuple{"cholesky", 4, 8}, std::tuple{"cholesky", 8, 16},
                      std::tuple{"cholesky", 12, 12}));

TEST(Greedy, LargeMemoryLoadsEachInputOnce) {
  const int n = 6;
  const CDag g = build_matmul_cdag(n);
  const auto sched = greedy_schedule(g, g.num_vertices() + 1);
  const GameStats s = run_sequential_game(g, g.num_vertices() + 1, sched);
  EXPECT_EQ(s.loads, 3 * n * n);      // each input exactly once
  EXPECT_EQ(s.stores, n * n);         // each output exactly once
}

TEST(Greedy, IoRespectsDaapLowerBound) {
  // Q_greedy >= |V| / rho for the matmul statement: the machine-checked
  // bridge between the pebbling world and the bound engine.
  for (const int n : {6, 8, 10}) {
    for (const int memory : {8, 16, 32}) {
      const CDag g = build_matmul_cdag(n);
      const auto sched = greedy_schedule(g, memory);
      const GameStats s = run_sequential_game(g, memory, sched);
      const auto kernel = daap::matmul_kernel(n);
      const auto bound = daap::derive_statement_bound(
          kernel.program.statements[0], static_cast<double>(n) * n * n,
          static_cast<double>(memory));
      EXPECT_GE(static_cast<double>(s.io()), bound.q_sequential * 0.999)
          << "n=" << n << " M=" << memory;
    }
  }
}

TEST(Greedy, LuIoRespectsProgramLowerBound) {
  for (const int n : {6, 10}) {
    const int memory = 16;
    const CDag g = build_lu_cdag(n);
    const auto sched = greedy_schedule(g, memory);
    const GameStats s = run_sequential_game(g, memory, sched);
    const auto bound = daap::derive_program_bound(
        daap::lu_kernel(n), 1.0, static_cast<double>(memory));
    EXPECT_GE(static_cast<double>(s.io()), bound.q_parallel * 0.999) << "n=" << n;
  }
}

TEST(Greedy, TooSmallMemoryRejected) {
  const CDag g = build_matmul_cdag(4);
  EXPECT_THROW(greedy_schedule(g, 3), contract_error);  // needs indeg+1 = 4
}

// ------------------------------------------------------- parallel game -----

TEST(ParallelGame, TwoProcessorPipelineCountsReceives) {
  // p0 computes c = f(a); p1 computes d = f(c) after receiving c.
  CDag g;
  const int a = g.add_vertex(true, "a");
  const int c = g.add_vertex(false, "c");
  const int d = g.add_vertex(false, "d");
  g.add_edge(a, c);
  g.add_edge(c, d);
  const std::vector<int> owner = {0, 0, 0};
  const std::vector<Move> sched = {{MoveType::Compute, c, 0},
                                   {MoveType::Receive, c, 1},
                                   {MoveType::Compute, d, 1}};
  std::vector<long long> per_rank;
  const GameStats s = run_parallel_game(g, 2, 4, owner, sched, &per_rank);
  EXPECT_EQ(s.receives, 1);
  EXPECT_EQ(per_rank[0], 0);
  EXPECT_EQ(per_rank[1], 1);
}

TEST(ParallelGame, NoSharingWithoutReceive) {
  CDag g;
  const int a = g.add_vertex(true, "a");
  const int c = g.add_vertex(false, "c");
  g.add_edge(a, c);
  const std::vector<int> owner = {0, 0};
  // p1 tries to compute c without receiving a: must be rejected.
  const std::vector<Move> sched = {{MoveType::Compute, c, 1}};
  EXPECT_THROW(run_parallel_game(g, 2, 4, owner, sched), contract_error);
}

TEST(ParallelGame, ReceiveOfUncomputedVertexRejected) {
  CDag g;
  const int a = g.add_vertex(true, "a");
  const int c = g.add_vertex(false, "c");
  g.add_edge(a, c);
  const std::vector<int> owner = {0, 0};
  const std::vector<Move> sched = {{MoveType::Receive, c, 1}};
  EXPECT_THROW(run_parallel_game(g, 2, 4, owner, sched), contract_error);
}

TEST(ParallelGame, LocalMemoryLimitPerProcessor) {
  CDag g;
  const int a = g.add_vertex(true);
  const int b = g.add_vertex(true);
  const int c = g.add_vertex(false);
  g.add_edge(a, c);
  g.add_edge(b, c);
  const std::vector<int> owner = {0, 1, 0};
  const std::vector<Move> sched = {{MoveType::Receive, b, 0}, {MoveType::Compute, c, 0}};
  EXPECT_THROW(run_parallel_game(g, 2, 1, owner, sched), contract_error);
  EXPECT_NO_THROW(run_parallel_game(g, 2, 3, owner, sched));
}

// --------------------------------------------------------- X-partition -----

TEST(XPartitionTest, FromScheduleIsValid) {
  for (const int n : {4, 6}) {
    for (const int memory : {8, 16}) {
      const CDag g = build_matmul_cdag(n);
      const auto sched = greedy_schedule(g, memory);
      const long long x = 2 * memory;
      const XPartition part = partition_from_schedule(g, sched, memory, x);
      std::string why;
      EXPECT_TRUE(validate_xpartition(g, part, x, &why)) << why;
    }
  }
}

TEST(XPartitionTest, Lemma2CardinalityInequality) {
  // |P(X)| <= (Q + X - M) / (X - M) for a partition cut from a schedule with
  // I/O cost Q ([45], Lemma 2's shape, with our construction achieving it).
  const int n = 6, memory = 12;
  const CDag g = build_lu_cdag(n);
  const auto sched = greedy_schedule(g, memory);
  const GameStats s = run_sequential_game(g, memory, sched);
  const long long x = 3 * memory;
  const XPartition part = partition_from_schedule(g, sched, memory, x);
  const double rhs =
      (static_cast<double>(s.io()) + static_cast<double>(x - memory)) /
      static_cast<double>(x - memory);
  EXPECT_LE(static_cast<double>(part.parts.size()), rhs + 1.0);
}

TEST(XPartitionTest, OverlapDetected) {
  const CDag g = build_matmul_cdag(2);
  const auto computes = [&] {
    std::vector<int> v;
    for (int i = 0; i < g.num_vertices(); ++i) {
      if (!g.is_input(i)) v.push_back(i);
    }
    return v;
  }();
  XPartition p;
  p.parts = {computes, {computes[0]}};  // first vertex appears twice
  std::string why;
  EXPECT_FALSE(validate_xpartition(g, p, 1000, &why));
  EXPECT_NE(why.find("overlap"), std::string::npos);
}

TEST(XPartitionTest, MissingVertexDetected) {
  const CDag g = build_matmul_cdag(2);
  XPartition p;
  p.parts = {{g.num_vertices() - 1}};  // only one compute vertex covered
  std::string why;
  EXPECT_FALSE(validate_xpartition(g, p, 1000, &why));
  EXPECT_NE(why.find("not covered"), std::string::npos);
}

TEST(XPartitionTest, DominatorBoundViolationDetected) {
  const CDag g = build_matmul_cdag(3);
  std::vector<int> all;
  for (int i = 0; i < g.num_vertices(); ++i) {
    if (!g.is_input(i)) all.push_back(i);
  }
  XPartition p;
  p.parts = {all};
  // Dominator of the whole computation = all 27 inputs; X = 5 must fail.
  std::string why;
  EXPECT_FALSE(validate_xpartition(g, p, 5, &why));
  EXPECT_NE(why.find("dominator"), std::string::npos);
}

TEST(XPartitionTest, DominatorAndMinSetSizes) {
  // Single compute vertex with two input preds: dom = 2, min = 1.
  CDag g;
  const int a = g.add_vertex(true);
  const int b = g.add_vertex(true);
  const int c = g.add_vertex(false);
  g.add_edge(a, c);
  g.add_edge(b, c);
  const std::vector<int> part = {c};
  EXPECT_EQ(dominator_bound(g, part), 2);
  EXPECT_EQ(min_set_size(g, part), 1);
}

}  // namespace
}  // namespace conflux::pebbles
