// Cross-module integration and property tests: the algorithms, simulator,
// models, and bound engine agreeing with each other on invariants that no
// single module can check alone.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/candmc.hpp"
#include "baselines/scalapack2d.hpp"
#include "blas/lapack.hpp"
#include "daap/bounds.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "models/models.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

xsim::Machine make_machine(int ranks, double memory,
                           xsim::ExecMode mode = xsim::ExecMode::Trace) {
  xsim::MachineSpec spec;
  spec.num_ranks = ranks;
  spec.memory_words = memory;
  return xsim::Machine(spec, mode);
}

// ------------------------------------------------ numerics cross-checks ----

TEST(CrossImpl, ConfluxAndScalapackAgreeOnDominantMatrix) {
  // No pivoting happens on a diagonally dominant matrix, so the 2.5D and 2D
  // implementations must produce identical factors (up to roundoff).
  const index_t n = 96;
  const MatrixD a = random_dominant_matrix(n, 17);
  const grid::Grid3D g3(2, 2, 2);
  xsim::Machine m3 = make_machine(8, 1e9, xsim::ExecMode::Real);
  factor::FactorOptions fopt;
  fopt.block_size = 16;
  const factor::LuResult conflux = factor::conflux_lu(m3, g3, a.view(), fopt);
  xsim::Machine m2 = make_machine(4, 1e9, xsim::ExecMode::Real);
  const auto scalapack = baselines::scalapack_lu(
      m2, grid::Grid2D{2, 2}, a.view(), baselines::Baseline2DOptions{.block_size = 16});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(conflux.factors(i, j), scalapack.factors(i, j), 1e-9 * n)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(CrossImpl, ConfchoxAndScalapackCholeskyAgree) {
  const index_t n = 80;
  const MatrixD a = random_spd_matrix(n, 19);
  const grid::Grid3D g3(2, 2, 2);
  xsim::Machine m3 = make_machine(8, 1e9, xsim::ExecMode::Real);
  factor::FactorOptions fopt;
  fopt.block_size = 16;
  const factor::CholResult conflux = factor::confchox(m3, g3, a.view(), fopt);
  xsim::Machine m2 = make_machine(4, 1e9, xsim::ExecMode::Real);
  const MatrixD scalapack = baselines::scalapack_cholesky(
      m2, grid::Grid2D{2, 2}, a.view(), baselines::Baseline2DOptions{.block_size = 16});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(conflux.factors(i, j), scalapack(i, j), 1e-9 * n);
    }
  }
}

// ---------------------------------------------------- volume properties ----

class VolumeProperties : public ::testing::TestWithParam<index_t> {};

TEST_P(VolumeProperties, FlopChargesConserveFactorizationWork) {
  // Total charged flops must be the factorization's 2N^3/3 (+ lower-order
  // panel/pivoting work): no implementation may "cheat" the time model by
  // under-charging compute.
  const index_t n = GetParam();
  const double expect = 2.0 * std::pow(static_cast<double>(n), 3.0) / 3.0;

  const grid::Grid3D g3(4, 2, 2);
  xsim::Machine mc = make_machine(16, 1e18);
  factor::FactorOptions fopt;
  fopt.block_size = 32;
  factor::conflux_lu_trace(mc, g3, n, fopt);
  EXPECT_NEAR(mc.total_flops(), expect, 0.15 * expect) << "conflux";

  xsim::Machine ms = make_machine(16, 1e18);
  baselines::scalapack_lu_trace(ms, grid::choose_grid_2d(16), n,
                                baselines::Baseline2DOptions{.block_size = 32});
  EXPECT_NEAR(ms.total_flops(), expect, 0.15 * expect) << "scalapack";

  xsim::Machine md = make_machine(16, 1e18);
  baselines::candmc_lu_trace(md, n, baselines::Candmc25DOptions{.replication = 2});
  EXPECT_NEAR(md.total_flops(), expect, 0.15 * expect) << "candmc";
}

TEST_P(VolumeProperties, CholeskyFlopsAreHalfOfLu) {
  const index_t n = GetParam();
  const grid::Grid3D g(4, 2, 2);
  factor::FactorOptions fopt;
  fopt.block_size = 32;
  xsim::Machine mlu = make_machine(16, 1e18);
  xsim::Machine mch = make_machine(16, 1e18);
  factor::conflux_lu_trace(mlu, g, n, fopt);
  factor::confchox_trace(mch, g, n, fopt);
  EXPECT_NEAR(mlu.total_flops() / mch.total_flops(), 2.0, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VolumeProperties,
                         ::testing::Values<index_t>(512, 1024, 1536));

TEST(VolumeMonotonicity, MoreMemoryNeverHurtsBestGridVolume) {
  // With the optimized grid selection, granting more memory can only reduce
  // (or keep) the communication volume — the paper's memory-communication
  // trade-off in monotone form.
  const index_t n = 8192;
  const int p = 256;
  double prev = 1e300;
  for (double factor_mem : {1.0, 2.0, 4.0, 8.0}) {
    const double mem = factor_mem * static_cast<double>(n) * static_cast<double>(n) / p;
    const grid::Grid3D g = models::best_conflux_grid(n, p, mem);
    const index_t v = factor::default_block_size(n, g);
    const double vol = models::conflux_lu_volume_exact(n, g, v);
    EXPECT_LE(vol, prev * (1.0 + 1e-9)) << "mem factor " << factor_mem;
    prev = vol;
  }
}

TEST(VolumeMonotonicity, VolumeScalesDownWithP) {
  const index_t n = 16384;
  double prev = 1e300;
  for (int p : {64, 256, 1024}) {
    const double mem = models::paper_memory_words(static_cast<double>(n),
                                                  static_cast<double>(p));
    const grid::Grid3D g = models::best_conflux_grid(n, p, mem);
    const double vol =
        models::conflux_lu_volume_exact(n, g, factor::default_block_size(n, g));
    EXPECT_LT(vol, prev);
    prev = vol;
  }
}

// ----------------------------------------------------- latency chains ------

TEST(LatencyChains, TournamentPivotingBeatsPartialPivotingChain) {
  // Section 7.3's motivation: partial pivoting's dependency chain is O(N)
  // collectives deep; tournament pivoting's is O(N/v). Assert a wide gap.
  const index_t n = 8192;
  const int p = 256;
  const double mem = models::paper_memory_words(static_cast<double>(n),
                                                static_cast<double>(p));
  xsim::Machine mc = make_machine(p, mem);
  const grid::Grid3D g = models::best_conflux_grid(n, p, mem);
  factor::FactorOptions fopt;
  fopt.block_size = factor::default_block_size(n, g);
  factor::conflux_lu_trace(mc, g, n, fopt);

  xsim::Machine ms = make_machine(p, mem);
  baselines::scalapack_lu_trace(ms, grid::choose_grid_2d(p), n,
                                baselines::Baseline2DOptions{.block_size = 64});
  EXPECT_GT(ms.chain_rounds(), 10.0 * mc.chain_rounds());
}

TEST(LatencyChains, CholeskyHasNoPivotChain) {
  const index_t n = 4096;
  const int p = 64;
  const double mem = models::paper_memory_words(static_cast<double>(n),
                                                static_cast<double>(p));
  xsim::Machine mlu = make_machine(p, mem);
  xsim::Machine mch = make_machine(p, mem);
  baselines::scalapack_lu_trace(mlu, grid::choose_grid_2d(p), n, {});
  baselines::scalapack_cholesky_trace(mch, grid::choose_grid_2d(p), n, {});
  EXPECT_LT(mch.chain_rounds(), 0.1 * mlu.chain_rounds());
}

TEST(TimeModels, OverlapNeverExceedsBspCriticalPath) {
  const index_t n = 2048;
  const grid::Grid3D g(4, 4, 2);
  xsim::Machine m = make_machine(32, 1e18);
  factor::FactorOptions fopt;
  fopt.block_size = 32;
  factor::conflux_lu_trace(m, g, n, fopt);
  // The BSP model serializes supersteps; overlap pipelines them. (Chain
  // latency is part of overlap only, so compare the bandwidth/flop parts.)
  EXPECT_LE(m.modeled_time_overlap() - m.spec().alpha_s * m.chain_rounds(),
            m.elapsed_time() * (1.0 + 1e-9));
}

// ---------------------------------------- bounds vs implementations --------

TEST(BoundsVsImpl, NoImplementationBeatsTheLowerBound) {
  // The Section 6 bound must hold for every implementation we simulate —
  // a machine-checked consistency test between theory and schedules.
  const index_t n = 4096;
  const int p = 64;
  const double mem = models::paper_memory_words(static_cast<double>(n),
                                                static_cast<double>(p));
  const double bound = daap::derive_program_bound(
      daap::lu_kernel(static_cast<double>(n)), p, mem).q_parallel;

  const auto check_impl = [&](double volume, const char* name) {
    EXPECT_GT(volume, bound) << name;
  };
  {
    xsim::Machine m = make_machine(p, mem);
    const grid::Grid3D g = models::best_conflux_grid(n, p, mem);
    factor::FactorOptions fopt;
    fopt.block_size = factor::default_block_size(n, g);
    factor::conflux_lu_trace(m, g, n, fopt);
    check_impl(m.avg_comm_volume(), "conflux");
  }
  {
    xsim::Machine m = make_machine(p, mem);
    baselines::scalapack_lu_trace(m, grid::choose_grid_2d(p), n, {});
    check_impl(m.avg_comm_volume(), "scalapack");
  }
  {
    xsim::Machine m = make_machine(p, mem);
    baselines::candmc_lu_trace(m, n, {});
    check_impl(m.avg_comm_volume(), "candmc");
  }
}

TEST(BoundsVsImpl, CholeskyBoundHoldsToo) {
  const index_t n = 4096;
  const int p = 64;
  const double mem = models::paper_memory_words(static_cast<double>(n),
                                                static_cast<double>(p));
  const double bound = daap::derive_program_bound(
      daap::cholesky_kernel(static_cast<double>(n)), p, mem).q_parallel;
  xsim::Machine m = make_machine(p, mem);
  const grid::Grid3D g = models::best_conflux_grid(n, p, mem);
  factor::FactorOptions fopt;
  fopt.block_size = factor::default_block_size(n, g);
  factor::confchox_trace(m, g, n, fopt);
  EXPECT_GT(m.avg_comm_volume(), bound);
}

// --------------------------------------------------- failure injection -----

TEST(FailureInjection, SingularMatrixStillTerminates) {
  // A rank-deficient matrix must not hang or corrupt bookkeeping: the
  // factorization completes (like LAPACK's getrf) and the permutation stays
  // bijective even when pivots are zero.
  const index_t n = 64;
  MatrixD a = random_matrix(n, n, 23);
  for (index_t j = 0; j < n; ++j) a(n / 2, j) = a(0, j);  // duplicate row
  const grid::Grid3D g(2, 2, 2);
  xsim::Machine m = make_machine(8, 1e9, xsim::ExecMode::Real);
  factor::FactorOptions fopt;
  fopt.block_size = 16;
  const factor::LuResult lu = factor::conflux_lu(m, g, a.view(), fopt);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t r : lu.perm) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(r)]);
    seen[static_cast<std::size_t>(r)] = true;
  }
}

TEST(FailureInjection, ZeroMatrixLuTerminates) {
  // A zero matrix hits an exactly-zero pivot at the FIRST step with trailing
  // tiles still pending — a HARD breakdown (the panel trsms would divide by
  // zero). The factorization must terminate promptly with a classified
  // failure, not hang or return NaN wreckage.
  const index_t n = 32;
  const MatrixD a(n, n, 0.0);
  const grid::Grid3D g(2, 2, 1);
  xsim::Machine m = make_machine(4, 1e9, xsim::ExecMode::Real);
  factor::FactorOptions fopt;
  fopt.block_size = 8;
  try {
    factor::conflux_lu(m, g, a.view(), fopt);
    FAIL() << "mid-run zero pivot must be a hard breakdown";
  } catch (const status_error& e) {
    EXPECT_EQ(e.code(), StatusCode::kSingularPivot);
    EXPECT_EQ(e.status().step(), 0);
  }
  // Same classification through the non-throwing API, and the machine is
  // reusable afterwards (the pool drained cleanly on unwind).
  const auto r = factor::try_conflux_lu(m, g, a.view(), fopt);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), StatusCode::kSingularPivot);
  const MatrixD healthy = random_dominant_matrix(n, 41);
  EXPECT_NO_THROW(factor::conflux_lu(m, g, healthy.view(), fopt));
}

TEST(FailureInjection, TinyMatrixOnBigGridWorks) {
  // More ranks than block rows: most ranks idle, result still correct.
  const index_t n = 24;
  const grid::Grid3D g(4, 4, 2);
  xsim::Machine m = make_machine(32, 1e9, xsim::ExecMode::Real);
  const MatrixD a = random_matrix(n, n, 29);
  factor::FactorOptions fopt;
  fopt.block_size = 8;
  const factor::LuResult lu = factor::conflux_lu(m, g, a.view(), fopt);
  EXPECT_LT(xblas::lu_residual(a.view(), lu.factors.view(), lu.perm), 500.0);
}

TEST(FailureInjection, OneByOneMatrix) {
  const MatrixD a = random_dominant_matrix(1, 31);
  const grid::Grid3D g(1, 1, 1);
  xsim::Machine m = make_machine(1, 1e6, xsim::ExecMode::Real);
  const factor::LuResult lu = factor::conflux_lu(m, g, a.view(), {});
  EXPECT_DOUBLE_EQ(lu.factors(0, 0), a(0, 0));
}

}  // namespace
}  // namespace conflux
