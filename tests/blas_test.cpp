// Level-3 BLAS substrate vs. straightforward reference implementations,
// swept over shapes, transposes, and alpha/beta combinations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <tuple>

#include "blas/autotune.hpp"
#include "blas/blas.hpp"
#include "blas/lapack.hpp"
#include "blas/microkernel.hpp"
#include "blas/tuning.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux::xblas {
namespace {

MatrixD ref_gemm(Trans ta, Trans tb, double alpha, const MatrixD& a,
                 const MatrixD& b, double beta, const MatrixD& c0) {
  const index_t m = c0.rows(), n = c0.cols();
  const index_t k = (ta == Trans::None) ? a.cols() : a.rows();
  MatrixD c = c0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double av = (ta == Trans::None) ? a(i, p) : a(p, i);
        const double bv = (tb == Trans::None) ? b(p, j) : b(j, p);
        sum += av * bv;
      }
      c(i, j) = alpha * sum + beta * c(i, j);
    }
  }
  return c;
}

double max_diff(const MatrixD& x, const MatrixD& y) {
  double d = 0.0;
  for (index_t i = 0; i < x.rows(); ++i) {
    for (index_t j = 0; j < x.cols(); ++j) {
      d = std::max(d, std::abs(x(i, j) - y(i, j)));
    }
  }
  return d;
}

// ---------------------------------------------------------------- gemm ----

struct GemmCase {
  index_t m, n, k;
  Trans ta, tb;
  double alpha, beta;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesReference) {
  const auto& p = GetParam();
  const index_t ar = (p.ta == Trans::None) ? p.m : p.k;
  const index_t ac = (p.ta == Trans::None) ? p.k : p.m;
  const index_t br = (p.tb == Trans::None) ? p.k : p.n;
  const index_t bc = (p.tb == Trans::None) ? p.n : p.k;
  const MatrixD a = random_matrix(ar, ac, 1);
  const MatrixD b = random_matrix(br, bc, 2);
  const MatrixD c0 = random_matrix(p.m, p.n, 3);
  const MatrixD want = ref_gemm(p.ta, p.tb, p.alpha, a, b, p.beta, c0);
  MatrixD got = c0;
  gemm(p.ta, p.tb, p.alpha, a.view(), b.view(), p.beta, got.view());
  EXPECT_LT(max_diff(want, got), 1e-11 * static_cast<double>(p.k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTransposes, GemmSweep,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::None, Trans::None, 1.0, 0.0},
        GemmCase{5, 7, 3, Trans::None, Trans::None, 1.0, 1.0},
        GemmCase{64, 64, 64, Trans::None, Trans::None, 1.0, 0.0},
        GemmCase{65, 67, 63, Trans::None, Trans::None, -0.5, 2.0},
        GemmCase{128, 70, 129, Trans::None, Trans::None, 1.0, 1.0},
        GemmCase{33, 45, 27, Trans::Transpose, Trans::None, 1.0, 0.0},
        GemmCase{33, 45, 27, Trans::None, Trans::Transpose, 1.0, 0.0},
        GemmCase{33, 45, 27, Trans::Transpose, Trans::Transpose, 2.0, -1.0},
        GemmCase{100, 1, 100, Trans::None, Trans::None, 1.0, 0.0},
        GemmCase{1, 100, 100, Trans::None, Trans::None, 1.0, 0.0},
        GemmCase{257, 129, 65, Trans::None, Trans::None, 1.0, 1.0},
        GemmCase{16, 16, 300, Trans::Transpose, Trans::None, 1.0, 0.5}));

// Ragged sizes around the blocked-algorithm boundaries: with the default
// diagonal block b = 64 these are {1, b-1, b, b+1, 3b+5}, and 197/300 also
// cross the gemm register-tile (8) and cache-block (mc/kc) edges.
INSTANTIATE_TEST_SUITE_P(
    RaggedBlockEdges, GemmSweep,
    ::testing::Values(
        GemmCase{63, 65, 197, Trans::None, Trans::None, 1.0, 1.0},
        GemmCase{63, 65, 197, Trans::Transpose, Trans::None, 1.0, 0.0},
        GemmCase{63, 65, 197, Trans::None, Trans::Transpose, -1.0, 1.0},
        GemmCase{63, 65, 197, Trans::Transpose, Trans::Transpose, 2.0, 0.5},
        GemmCase{197, 197, 197, Trans::None, Trans::None, 1.0, 0.0},
        GemmCase{197, 197, 197, Trans::Transpose, Trans::None, 1.0, 1.0},
        GemmCase{197, 197, 197, Trans::None, Trans::Transpose, 1.0, 0.0},
        GemmCase{197, 197, 197, Trans::Transpose, Trans::Transpose, 1.0, 1.0},
        GemmCase{197, 1, 65, Trans::None, Trans::None, 1.0, 0.0},
        GemmCase{1, 197, 64, Trans::Transpose, Trans::None, 1.0, 1.0},
        GemmCase{65, 197, 1, Trans::None, Trans::Transpose, 1.0, 0.0},
        GemmCase{64, 63, 65, Trans::Transpose, Trans::Transpose, 1.0, 1.0},
        GemmCase{300, 300, 300, Trans::None, Trans::None, 1.0, 0.0},
        GemmCase{300, 130, 200, Trans::Transpose, Trans::None, -0.5, 2.0}));

// Small-k fast path (k <= Tuning::small_k, default 64): B is streamed
// through the strided microkernel instead of packed. These shapes are big
// enough to clear the small_gemm_flops cutoff, so they exercise the fast
// path (transb == None) and the packed fallback (transb == Transpose), and
// 300/68/61 cross the register-tile and cache-block edges.
INSTANTIATE_TEST_SUITE_P(
    SmallK, GemmSweep,
    ::testing::Values(
        GemmCase{256, 300, 8, Trans::None, Trans::None, 1.0, 0.0},
        GemmCase{256, 300, 8, Trans::None, Trans::Transpose, 1.0, 1.0},
        GemmCase{193, 261, 16, Trans::None, Trans::None, -1.0, 1.0},
        GemmCase{193, 261, 16, Trans::Transpose, Trans::None, 1.0, 0.0},
        GemmCase{130, 68, 32, Trans::None, Trans::None, 2.0, -0.5},
        GemmCase{130, 68, 32, Trans::Transpose, Trans::Transpose, 1.0, 1.0},
        GemmCase{61, 517, 16, Trans::None, Trans::None, 1.0, 1.0},
        GemmCase{900, 61, 8, Trans::None, Trans::None, 1.0, 0.0}));

TEST(Gemm, SmallKPathMatchesPackedPathBitwise) {
  // The strided-B microkernel performs the identical multiply-accumulate
  // sequence on the identical values as the packed one, so toggling the
  // path via tuning().small_k must not change one bit of the result.
  const index_t m = 160, n = 230, k = 24;
  const MatrixD a = random_matrix(m, k, 81);
  const MatrixD b = random_matrix(k, n, 82);
  const MatrixD c0 = random_matrix(m, n, 83);
  const Tuning saved = tuning();
  tuning().small_k = 64;  // fast path on
  MatrixD fast = c0;
  gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 1.0, fast.view());
  tuning().small_k = 0;  // fast path off: classic packed-B route
  MatrixD packed = c0;
  gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 1.0, packed.view());
  tuning() = saved;
  EXPECT_EQ(fast, packed);
}

TEST(Gemm, JrParallelPathBitwiseIdenticalAcrossThreadCounts) {
  // Panel-update shapes (m <= one cache block) used to pin the whole gemm
  // to one thread; the jr-parallel path splits the stripe loop instead.
  // Whatever the thread count, every C tile is computed from the same
  // packed/streamed values in the same order: results must be bitwise equal.
  const Tuning saved = tuning();
  tuning().small_gemm_flops = 0.0;  // keep even small shapes on the blocked path
  for (const index_t k : {16, 128}) {       // strided-B and packed-B variants
    for (const auto tb : {Trans::None, Trans::Transpose}) {
      const index_t m = 64, n = 520;
      const MatrixD a = random_matrix(m, k, 84);
      const MatrixD b = tb == Trans::None ? random_matrix(k, n, 85)
                                          : random_matrix(n, k, 85);
      const MatrixD c0 = random_matrix(m, n, 86);
      tuning().threads = 1;
      MatrixD one = c0;
      gemm(Trans::None, tb, -1.0, a.view(), b.view(), 1.0, one.view());
      tuning().threads = 4;  // m/mc = 1 block << 4 threads: jr-parallel path
      MatrixD four = c0;
      gemm(Trans::None, tb, -1.0, a.view(), b.view(), 1.0, four.view());
      EXPECT_EQ(one, four) << "k=" << k;
    }
  }
  tuning() = saved;
}

TEST(Gemm, PackedPathWorksOnStridedSubviews) {
  // Large enough to take the packed/blocked path, with ld > cols on every
  // operand so the packing routines see genuine strides.
  MatrixD big_a = random_matrix(260, 260, 21);
  MatrixD big_b = random_matrix(260, 260, 22);
  MatrixD big_c(260, 260, 0.0);
  const index_t m = 200, n = 150, k = 180;
  gemm(Trans::None, Trans::None, 1.0, big_a.block(3, 5, m, k),
       big_b.block(7, 2, k, n), 0.0, big_c.block(11, 13, m, n));
  MatrixD a(m, k), b(k, n), c0(m, n, 0.0);
  copy<double>(big_a.block(3, 5, m, k), a.view());
  copy<double>(big_b.block(7, 2, k, n), b.view());
  const MatrixD want = ref_gemm(Trans::None, Trans::None, 1.0, a, b, 0.0, c0);
  MatrixD got(m, n);
  copy<double>(big_c.block(11, 13, m, n), got.view());
  EXPECT_LT(max_diff(want, got), 1e-11 * static_cast<double>(k));
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  const MatrixD a = random_matrix(8, 8, 1);
  const MatrixD b = random_matrix(8, 8, 2);
  MatrixD c = random_matrix(8, 8, 3);
  const MatrixD c0 = c;
  gemm(Trans::None, Trans::None, 0.0, a.view(), b.view(), 2.0, c.view());
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) EXPECT_DOUBLE_EQ(c(i, j), 2.0 * c0(i, j));
  }
}

TEST(Gemm, BetaZeroIgnoresGarbageInC) {
  const MatrixD a = random_matrix(4, 4, 1);
  const MatrixD b = random_matrix(4, 4, 2);
  MatrixD c(4, 4, std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 0.0, c.view());
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_FALSE(std::isnan(c(i, j)));
  }
}

TEST(Gemm, WorksOnStridedSubviews) {
  MatrixD big_a = random_matrix(10, 10, 1);
  MatrixD big_b = random_matrix(10, 10, 2);
  MatrixD big_c(10, 10, 0.0);
  gemm(Trans::None, Trans::None, 1.0, big_a.block(2, 2, 4, 5),
       big_b.block(1, 3, 5, 6), 0.0, big_c.block(0, 0, 4, 6));
  // Reference on extracted dense copies.
  MatrixD a(4, 5), b(5, 6), c0(4, 6, 0.0);
  copy<double>(big_a.block(2, 2, 4, 5), a.view());
  copy<double>(big_b.block(1, 3, 5, 6), b.view());
  const MatrixD want = ref_gemm(Trans::None, Trans::None, 1.0, a, b, 0.0, c0);
  MatrixD got(4, 6);
  copy<double>(big_c.block(0, 0, 4, 6), got.view());
  EXPECT_LT(max_diff(want, got), 1e-12);
}

TEST(Gemm, ShapeMismatchThrows) {
  MatrixD a(3, 4), b(5, 6), c(3, 6);
  EXPECT_THROW(
      gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 0.0, c.view()),
      contract_error);
}

TEST(Gemm, EmptyDimensionsAreNoOps) {
  MatrixD a(0, 0), b(0, 0), c(0, 0);
  EXPECT_NO_THROW(
      gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 0.0, c.view()));
  MatrixD a2(3, 0), b2(0, 4), c2 = random_matrix(3, 4, 1);
  const MatrixD c2_before = c2;
  gemm(Trans::None, Trans::None, 1.0, a2.view(), b2.view(), 1.0, c2.view());
  EXPECT_EQ(c2, c2_before);
}

// ---------------------------------------------------------------- trsm ----

struct TrsmCase {
  Side side;
  UpLo uplo;
  Trans trans;
  Diag diag;
  index_t m, n;
};

class TrsmSweep : public ::testing::TestWithParam<TrsmCase> {};

TEST_P(TrsmSweep, SolveThenMultiplyRoundTrips) {
  const auto& p = GetParam();
  const index_t dim = (p.side == Side::Left) ? p.m : p.n;
  // Build a well-conditioned triangle.
  MatrixD t = random_matrix(dim, dim, 4);
  for (index_t i = 0; i < dim; ++i) t(i, i) = 4.0 + std::abs(t(i, i));
  // Zero out the unused triangle to catch accidental references.
  for (index_t i = 0; i < dim; ++i) {
    for (index_t j = 0; j < dim; ++j) {
      const bool in_tri = (p.uplo == UpLo::Lower) ? (j <= i) : (j >= i);
      if (!in_tri) t(i, j) = std::numeric_limits<double>::quiet_NaN();
    }
  }
  const MatrixD b = random_matrix(p.m, p.n, 5);
  MatrixD x = b;
  trsm(p.side, p.uplo, p.trans, p.diag, 1.0, t.view(), x.view());

  // Multiply back: op(T) * X or X * op(T), with the diag convention applied.
  MatrixD tt(dim, dim, 0.0);
  for (index_t i = 0; i < dim; ++i) {
    for (index_t j = 0; j < dim; ++j) {
      const bool in_tri = (p.uplo == UpLo::Lower) ? (j <= i) : (j >= i);
      if (in_tri) tt(i, j) = (i == j && p.diag == Diag::Unit) ? 1.0 : t(i, j);
    }
  }
  MatrixD back(p.m, p.n, 0.0);
  if (p.side == Side::Left) {
    gemm(p.trans, Trans::None, 1.0, tt.view(), x.view(), 0.0, back.view());
  } else {
    gemm(Trans::None, p.trans, 1.0, x.view(), tt.view(), 0.0, back.view());
  }
  EXPECT_LT(max_diff(back, b), 1e-9 * static_cast<double>(dim));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmSweep,
    ::testing::Values(
        TrsmCase{Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 17, 9},
        TrsmCase{Side::Left, UpLo::Lower, Trans::None, Diag::Unit, 17, 9},
        TrsmCase{Side::Left, UpLo::Lower, Trans::Transpose, Diag::NonUnit, 17, 9},
        TrsmCase{Side::Left, UpLo::Lower, Trans::Transpose, Diag::Unit, 33, 1},
        TrsmCase{Side::Left, UpLo::Upper, Trans::None, Diag::NonUnit, 17, 9},
        TrsmCase{Side::Left, UpLo::Upper, Trans::None, Diag::Unit, 8, 24},
        TrsmCase{Side::Left, UpLo::Upper, Trans::Transpose, Diag::NonUnit, 17, 9},
        TrsmCase{Side::Left, UpLo::Upper, Trans::Transpose, Diag::Unit, 17, 9},
        TrsmCase{Side::Right, UpLo::Lower, Trans::None, Diag::NonUnit, 9, 17},
        TrsmCase{Side::Right, UpLo::Lower, Trans::None, Diag::Unit, 9, 17},
        TrsmCase{Side::Right, UpLo::Lower, Trans::Transpose, Diag::NonUnit, 9, 17},
        TrsmCase{Side::Right, UpLo::Lower, Trans::Transpose, Diag::Unit, 1, 33},
        TrsmCase{Side::Right, UpLo::Upper, Trans::None, Diag::NonUnit, 9, 17},
        TrsmCase{Side::Right, UpLo::Upper, Trans::None, Diag::Unit, 24, 8},
        TrsmCase{Side::Right, UpLo::Upper, Trans::Transpose, Diag::NonUnit, 9, 17},
        TrsmCase{Side::Right, UpLo::Upper, Trans::Transpose, Diag::Unit, 9, 17}));

// Triangle sizes past the blocked-trsm diagonal block (default b = 64):
// every side/uplo/trans combination exercises the small-kernel + gemm-update
// driver, at b-1, b, b+1 and 3b+5 with ragged RHS widths.
INSTANTIATE_TEST_SUITE_P(
    BlockedDriver, TrsmSweep,
    ::testing::Values(
        TrsmCase{Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 197, 65},
        TrsmCase{Side::Left, UpLo::Lower, Trans::None, Diag::Unit, 65, 63},
        TrsmCase{Side::Left, UpLo::Lower, Trans::Transpose, Diag::NonUnit, 197, 65},
        TrsmCase{Side::Left, UpLo::Lower, Trans::Transpose, Diag::Unit, 64, 197},
        TrsmCase{Side::Left, UpLo::Upper, Trans::None, Diag::NonUnit, 197, 65},
        TrsmCase{Side::Left, UpLo::Upper, Trans::None, Diag::Unit, 63, 64},
        TrsmCase{Side::Left, UpLo::Upper, Trans::Transpose, Diag::NonUnit, 197, 65},
        TrsmCase{Side::Left, UpLo::Upper, Trans::Transpose, Diag::Unit, 65, 1},
        TrsmCase{Side::Right, UpLo::Lower, Trans::None, Diag::NonUnit, 65, 197},
        TrsmCase{Side::Right, UpLo::Lower, Trans::None, Diag::Unit, 63, 65},
        TrsmCase{Side::Right, UpLo::Lower, Trans::Transpose, Diag::NonUnit, 65, 197},
        TrsmCase{Side::Right, UpLo::Lower, Trans::Transpose, Diag::Unit, 197, 64},
        TrsmCase{Side::Right, UpLo::Upper, Trans::None, Diag::NonUnit, 65, 197},
        TrsmCase{Side::Right, UpLo::Upper, Trans::None, Diag::Unit, 64, 63},
        TrsmCase{Side::Right, UpLo::Upper, Trans::Transpose, Diag::NonUnit, 65, 197},
        TrsmCase{Side::Right, UpLo::Upper, Trans::Transpose, Diag::Unit, 1, 65}));

TEST(Trsm, AlphaScalesRhs) {
  MatrixD t(3, 3, 0.0);
  t(0, 0) = t(1, 1) = t(2, 2) = 1.0;  // identity triangle
  MatrixD b = random_matrix(3, 4, 6);
  const MatrixD b0 = b;
  trsm(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 3.0, t.view(), b.view());
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(b(i, j), 3.0 * b0(i, j));
  }
}

TEST(Trsm, WrongTriangleSizeThrows) {
  MatrixD t(4, 4), b(5, 3);
  EXPECT_THROW(trsm(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 1.0,
                    t.view(), b.view()),
               contract_error);
}

// -------------------------------------------------------- syrk / gemmt ----

class SyrkSweep : public ::testing::TestWithParam<std::tuple<index_t, index_t, UpLo, Trans>> {};

TEST_P(SyrkSweep, MatchesGemmOnReferencedTriangle) {
  const auto [n, k, uplo, trans] = GetParam();
  const MatrixD a =
      (trans == Trans::None) ? random_matrix(n, k, 7) : random_matrix(k, n, 7);
  const MatrixD c0 = random_matrix(n, n, 8);
  MatrixD got = c0;
  syrk(uplo, trans, 1.5, a.view(), 0.5, got.view());
  const MatrixD full = ref_gemm(trans, trans == Trans::None ? Trans::Transpose : Trans::None,
                                1.5, a, a, 0.5, c0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const bool in_tri = (uplo == UpLo::Lower) ? (j <= i) : (j >= i);
      if (in_tri) {
        EXPECT_NEAR(got(i, j), full(i, j), 1e-11 * static_cast<double>(k + 1));
      } else {
        EXPECT_DOUBLE_EQ(got(i, j), c0(i, j));  // untouched triangle
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SyrkSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 13, 40),
                       ::testing::Values<index_t>(1, 7, 29),
                       ::testing::Values(UpLo::Lower, UpLo::Upper),
                       ::testing::Values(Trans::None, Trans::Transpose)));

// Sizes at and past the blocked diagonal (default b = 64): b-1, b, b+1,
// 3b+5, with k values that cross the gemm cache-block boundaries.
INSTANTIATE_TEST_SUITE_P(
    RaggedBlockEdges, SyrkSweep,
    ::testing::Combine(::testing::Values<index_t>(63, 64, 65, 197),
                       ::testing::Values<index_t>(1, 64, 197),
                       ::testing::Values(UpLo::Lower, UpLo::Upper),
                       ::testing::Values(Trans::None, Trans::Transpose)));

class GemmtSweep : public ::testing::TestWithParam<std::tuple<index_t, index_t, UpLo>> {};

TEST_P(GemmtSweep, MatchesGemmOnReferencedTriangle) {
  const auto [n, k, uplo] = GetParam();
  const MatrixD a = random_matrix(n, k, 9);
  const MatrixD b = random_matrix(k, n, 10);
  const MatrixD c0 = random_matrix(n, n, 11);
  MatrixD got = c0;
  gemmt(uplo, Trans::None, Trans::None, -1.0, a.view(), b.view(), 1.0, got.view());
  const MatrixD full = ref_gemm(Trans::None, Trans::None, -1.0, a, b, 1.0, c0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const bool in_tri = (uplo == UpLo::Lower) ? (j <= i) : (j >= i);
      if (in_tri) {
        EXPECT_NEAR(got(i, j), full(i, j), 1e-11 * static_cast<double>(k + 1));
      } else {
        EXPECT_DOUBLE_EQ(got(i, j), c0(i, j));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmtSweep,
                         ::testing::Combine(::testing::Values<index_t>(1, 16, 37),
                                            ::testing::Values<index_t>(1, 8, 32),
                                            ::testing::Values(UpLo::Lower, UpLo::Upper)));

// gemmt across all transpose combinations and blocked-boundary sizes.
class GemmtTransSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, UpLo, Trans, Trans>> {};

TEST_P(GemmtTransSweep, MatchesGemmOnReferencedTriangle) {
  const auto [n, k, uplo, ta, tb] = GetParam();
  const MatrixD a = (ta == Trans::None) ? random_matrix(n, k, 12)
                                        : random_matrix(k, n, 12);
  const MatrixD b = (tb == Trans::None) ? random_matrix(k, n, 13)
                                        : random_matrix(n, k, 13);
  const MatrixD c0 = random_matrix(n, n, 14);
  MatrixD got = c0;
  gemmt(uplo, ta, tb, 2.0, a.view(), b.view(), -0.5, got.view());
  const MatrixD full = ref_gemm(ta, tb, 2.0, a, b, -0.5, c0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const bool in_tri = (uplo == UpLo::Lower) ? (j <= i) : (j >= i);
      if (in_tri) {
        EXPECT_NEAR(got(i, j), full(i, j), 1e-11 * static_cast<double>(k + 1));
      } else {
        EXPECT_DOUBLE_EQ(got(i, j), c0(i, j));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RaggedBlockEdges, GemmtTransSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 63, 65, 197),
                       ::testing::Values<index_t>(1, 64, 197),
                       ::testing::Values(UpLo::Lower, UpLo::Upper),
                       ::testing::Values(Trans::None, Trans::Transpose),
                       ::testing::Values(Trans::None, Trans::Transpose)));

// --------------------------------------------------------- determinism ----

// The substrate guarantees bitwise-identical results run to run and across
// thread counts: threads partition the output (never a reduction), and the
// accumulation order per C element is fixed by the loop structure.

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(tuning().threads) {
    tuning().threads = n;
  }
  ~ScopedThreads() { tuning().threads = saved_; }

 private:
  int saved_;
};

TEST(Determinism, GemmBitwiseStableAcrossRunsAndThreadCounts) {
  const index_t n = 197;
  const MatrixD a = random_matrix(n, n, 31);
  const MatrixD b = random_matrix(n, n, 32);
  MatrixD base(n, n);
  {
    ScopedThreads one(1);
    gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 0.0, base.view());
  }
  for (const int threads : {1, 2, 3, 4, 7}) {
    ScopedThreads scoped(threads);
    for (int rep = 0; rep < 2; ++rep) {
      MatrixD c(n, n);
      gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 0.0, c.view());
      EXPECT_EQ(c, base) << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(Determinism, SyrkAndTrsmBitwiseStableAcrossThreadCounts) {
  const index_t n = 197;
  const MatrixD a = random_matrix(n, n, 33);
  MatrixD t = random_matrix(n, n, 34);
  for (index_t i = 0; i < n; ++i) t(i, i) += 4.0;
  const MatrixD rhs = random_matrix(n, n, 35);

  MatrixD syrk_base(n, n, 0.0);
  MatrixD trsm_base = rhs;
  {
    ScopedThreads one(1);
    syrk(UpLo::Lower, Trans::None, 1.0, a.view(), 0.0, syrk_base.view());
    trsm(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 1.0, t.view(),
         trsm_base.view());
  }
  for (const int threads : {2, 5}) {
    ScopedThreads scoped(threads);
    MatrixD c(n, n, 0.0);
    syrk(UpLo::Lower, Trans::None, 1.0, a.view(), 0.0, c.view());
    EXPECT_EQ(c, syrk_base) << "threads=" << threads;
    MatrixD x = rhs;
    trsm(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 1.0, t.view(),
         x.view());
    EXPECT_EQ(x, trsm_base) << "threads=" << threads;
  }
}

// --------------------------------------------------------------- fp32 -----
// The scalar-templated stack: fp32 instantiations must match the fp64
// reference to fp32 accuracy and keep the same bitwise-determinism
// guarantees (the fp32 register tile is wider, but the accumulation order
// per C element is identical across thread counts and paths).

MatrixF to_f32(const MatrixD& a) {
  MatrixF out(a.rows(), a.cols());
  convert<double, float>(a.view(), out.view());
  return out;
}

TEST(Fp32, RegisterTileIsWiderThanFp64) {
  // Both tiles fill one 64-byte vector register with MR scalars: fp32 moves
  // twice the scalars per FMA, which is where the throughput ratio in
  // BENCH_blas.json comes from.
  static_assert(RegTile<float>::mr == 2 * RegTile<double>::mr);
  static_assert(RegTile<float>::nr == RegTile<double>::nr);
  static_assert(RegTile<float>::mr * sizeof(float) ==
                RegTile<double>::mr * sizeof(double));
  EXPECT_EQ(kc_scale<float>(), 2);
  EXPECT_EQ(kc_scale<double>(), 1);
}

TEST(Fp32, GemmMatchesFp64ReferenceToFp32Accuracy) {
  const std::tuple<index_t, index_t, index_t> shapes[] = {
      {129, 67, 200}, {64, 64, 64}, {17, 300, 5}};
  for (const auto& [m, n, k] : shapes) {
    const MatrixD a = random_matrix(m, k, 41);
    const MatrixD b = random_matrix(k, n, 42);
    const MatrixD c0 = random_matrix(m, n, 43);
    const MatrixD want = ref_gemm(Trans::None, Trans::None, 1.0, a, b, 0.5, c0);
    MatrixF got = to_f32(c0);
    gemm(Trans::None, Trans::None, 1.0f, to_f32(a).view(), to_f32(b).view(),
         0.5f, got.view());
    double worst = 0.0;
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) {
        worst = std::max(worst,
                         std::abs(static_cast<double>(got(i, j)) - want(i, j)));
      }
    }
    EXPECT_LT(worst, 1e-4 * static_cast<double>(k + 1)) << m << "x" << n;
  }
}

TEST(Fp32, GemmTransposedOperandsMatchReference) {
  const index_t m = 96, n = 80, k = 112;
  const MatrixD a = random_matrix(k, m, 44);  // transposed A
  const MatrixD b = random_matrix(n, k, 45);  // transposed B
  const MatrixD c0 = random_matrix(m, n, 46);
  const MatrixD want =
      ref_gemm(Trans::Transpose, Trans::Transpose, -1.0, a, b, 1.0, c0);
  MatrixF got = to_f32(c0);
  gemm(Trans::Transpose, Trans::Transpose, -1.0f, to_f32(a).view(),
       to_f32(b).view(), 1.0f, got.view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_NEAR(static_cast<double>(got(i, j)), want(i, j),
                  1e-4 * static_cast<double>(k));
    }
  }
}

TEST(Fp32, GemmBitwiseStableAcrossThreadCountsAndSmallKPath) {
  const index_t n = 197;
  const MatrixF a = to_f32(random_matrix(n, n, 51));
  const MatrixF b = to_f32(random_matrix(n, n, 52));
  MatrixF base(n, n);
  {
    ScopedThreads one(1);
    gemm(Trans::None, Trans::None, 1.0f, a.view(), b.view(), 0.0f, base.view());
  }
  for (const int threads : {2, 3, 7}) {
    ScopedThreads scoped(threads);
    MatrixF c(n, n);
    gemm(Trans::None, Trans::None, 1.0f, a.view(), b.view(), 0.0f, c.view());
    EXPECT_EQ(c, base) << "threads=" << threads;
  }
  // Small-k strided path vs packed path, same bitwise guarantee as fp64.
  const index_t ksmall = 24;
  const MatrixF a2 = to_f32(random_matrix(n, ksmall, 53));
  const MatrixF b2 = to_f32(random_matrix(ksmall, n, 54));
  const Tuning saved = tuning();
  MatrixF small(n, n), packed(n, n);
  tuning().small_k = 64;
  gemm(Trans::None, Trans::None, 1.0f, a2.view(), b2.view(), 0.0f, small.view());
  tuning().small_k = 0;
  gemm(Trans::None, Trans::None, 1.0f, a2.view(), b2.view(), 0.0f, packed.view());
  tuning() = saved;
  EXPECT_EQ(small, packed);
}

TEST(Fp32, TrsmSolveThenMultiplyRoundTrips) {
  const index_t n = 160, nrhs = 48;
  MatrixD t64 = random_matrix(n, n, 55);
  for (index_t i = 0; i < n; ++i) t64(i, i) += 4.0;
  const MatrixF t = to_f32(t64);
  const MatrixF b = to_f32(random_matrix(n, nrhs, 56));
  MatrixF x = b;
  trsm(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 1.0f, t.view(),
       x.view());
  // Multiply back with the stored lower triangle.
  MatrixF tl(n, n, 0.0f);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) tl(i, j) = t(i, j);
  }
  MatrixF back(n, nrhs, 0.0f);
  gemm(Trans::None, Trans::None, 1.0f, tl.view(), x.view(), 0.0f, back.view());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      ASSERT_NEAR(static_cast<double>(back(i, j)),
                  static_cast<double>(b(i, j)), 1e-3);
    }
  }
}

TEST(Fp32, GetrfAndPotrfResidualsWithinFp32Bounds) {
  const index_t n = 120;
  const MatrixD a64 = random_matrix(n, n, 57);
  MatrixF fac = to_f32(a64);
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(fac.view(), ipiv), 0);
  // lu_residual<float> scales by eps_f32: same yardstick as the fp64 tests.
  EXPECT_LT(lu_residual(to_f32(a64).view(), fac.view(),
                        ipiv_to_permutation(ipiv, n)),
            50.0);

  const MatrixD spd = random_spd_matrix(n, 58);
  MatrixF chol = to_f32(spd);
  ASSERT_EQ(potrf(chol.view()), 0);
  EXPECT_LT(cholesky_residual(to_f32(spd).view(), chol.view()), 50.0);
}

// ------------------------------------------------------------- tuning -----

TEST(Tuning, SanitizeClampsDegenerateValues) {
  Tuning t;
  t.mc = 0;
  t.kc = -5;
  t.nc = 1;
  t.db = 0;
  t.threads = -2;
  t.sanitize();
  EXPECT_GE(t.mc, kMR);
  EXPECT_GE(t.kc, 1);
  EXPECT_GE(t.nc, kNR);
  EXPECT_GE(t.db, 1);
  EXPECT_EQ(t.threads, 0);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(Tuning, EnvironmentOverridesAreHonored) {
  // Clear every variable the assertions depend on, so a tuned caller
  // environment (e.g. XBLAS_NC=... ctest) cannot fail the test.
  for (const char* var : {"XBLAS_MC", "XBLAS_KC", "XBLAS_NC", "XBLAS_DB",
                          "XBLAS_LU_NB", "XBLAS_THREADS"}) {
    ::unsetenv(var);
  }
  ::setenv("XBLAS_MC", "96", 1);
  ::setenv("XBLAS_KC", "160", 1);
  ::setenv("XBLAS_DB", "48", 1);
  const Tuning t = tuning_from_env();
  ::unsetenv("XBLAS_MC");
  ::unsetenv("XBLAS_KC");
  ::unsetenv("XBLAS_DB");
  EXPECT_EQ(t.mc, 96);
  EXPECT_EQ(t.kc, 160);
  EXPECT_EQ(t.db, 48);
  // Unset variables fall back to defaults.
  EXPECT_EQ(t.nc, Tuning{}.nc);
}
#endif

TEST(Tuning, ResultsAgreeAcrossBlockSizes) {
  // Different cache/diagonal block sizes change the summation *tiling* but
  // must still produce results equal to the reference within tolerance.
  const index_t n = 150;
  const MatrixD a = random_matrix(n, n, 36);
  const MatrixD b = random_matrix(n, n, 37);
  const MatrixD c0 = random_matrix(n, n, 38);
  const MatrixD want = ref_gemm(Trans::None, Trans::None, 1.0, a, b, 1.0, c0);
  const Tuning saved = tuning();
  for (const index_t blk : {16, 40, 64}) {
    tuning().mc = blk;
    tuning().kc = blk;
    tuning().nc = blk;
    tuning().db = blk;
    tuning().small_gemm_flops = 0.0;  // force the packed path
    MatrixD got = c0;
    gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 1.0, got.view());
    EXPECT_LT(max_diff(want, got), 1e-11 * static_cast<double>(n)) << "blk=" << blk;
  }
  tuning() = saved;
}

TEST(Tuning, DegenerateRuntimeValuesDoNotHangOrCrash) {
  // tuning() is mutable at runtime; kernels must clamp, not loop forever
  // (kc = 0 would otherwise stall gemm's pc loop) or divide by zero (db = 0
  // in the blocked trsm driver).
  const Tuning saved = tuning();
  tuning().mc = 0;
  tuning().kc = 0;
  tuning().nc = 0;
  tuning().db = 0;
  tuning().lu_nb = 0;
  tuning().small_gemm_flops = 0.0;  // force the packed path

  const index_t n = 70;
  const MatrixD a = random_matrix(n, n, 41);
  const MatrixD b = random_matrix(n, n, 42);
  MatrixD c(n, n, 0.0);
  gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 0.0, c.view());
  const MatrixD want =
      ref_gemm(Trans::None, Trans::None, 1.0, a, b, 0.0, MatrixD(n, n, 0.0));
  EXPECT_LT(max_diff(want, c), 1e-11 * static_cast<double>(n));

  MatrixD t = random_matrix(n, n, 43);
  for (index_t i = 0; i < n; ++i) t(i, i) += 4.0;
  MatrixD x = b;
  trsm(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 1.0, t.view(),
       x.view());
  MatrixD back(n, n, 0.0);
  MatrixD tl(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) tl(i, j) = t(i, j);
  }
  gemm(Trans::None, Trans::None, 1.0, tl.view(), x.view(), 0.0, back.view());
  EXPECT_LT(max_diff(back, b), 1e-9 * static_cast<double>(n));

  tuning() = saved;
}

// --------------------------------------------------------------- norms ----

TEST(Norms, FrobeniusOfKnownMatrix) {
  MatrixD a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 4.0;
  a(1, 0) = 0.0;
  a(1, 1) = 0.0;
  EXPECT_DOUBLE_EQ(norm_frobenius(a.view()), 5.0);
}

TEST(Norms, MaxNormPicksLargestMagnitude) {
  MatrixD a(2, 3, 0.5);
  a(1, 2) = -7.25;
  EXPECT_DOUBLE_EQ(norm_max(a.view()), 7.25);
}

TEST(Norms, FlopFormulas) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(trsm_flops(4, 5, Side::Left), 80.0);
  EXPECT_DOUBLE_EQ(trsm_flops(4, 5, Side::Right), 100.0);
}


// ---- microkernel dispatch ----

TEST(Microkernel, IsaNamesRoundTripThroughParse) {
  for (int i = 0; i < kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    Isa parsed = Isa::Portable;
    EXPECT_TRUE(parse_isa(isa_name(isa), &parsed)) << isa_name(isa);
    EXPECT_EQ(parsed, isa);
  }
  Isa out = Isa::Avx2;
  EXPECT_FALSE(parse_isa("sse9", &out));
  EXPECT_EQ(out, Isa::Avx2);  // unknown names leave *out alone
  EXPECT_FALSE(parse_isa("", &out));
}

TEST(Microkernel, KernelsRegisterInScalarPairsAndPortableAlwaysExists) {
  const MicroKernel<double>* pd = registered_microkernel<double>(Isa::Portable);
  const MicroKernel<float>* pf = registered_microkernel<float>(Isa::Portable);
  ASSERT_NE(pd, nullptr);
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pd->mr, RegTile<double>::mr);
  EXPECT_EQ(pd->nr, RegTile<double>::nr);
  EXPECT_EQ(pf->mr, RegTile<float>::mr);
  EXPECT_EQ(pf->nr, RegTile<float>::nr);
  for (int i = 0; i < kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    const bool has_d = registered_microkernel<double>(isa) != nullptr;
    const bool has_f = registered_microkernel<float>(isa) != nullptr;
    EXPECT_EQ(has_d, has_f) << isa_name(isa);
    if (isa_available(isa)) EXPECT_TRUE(has_d) << isa_name(isa);
  }
}

TEST(Microkernel, ScopedIsaForcesAndRestoresSelection) {
  const Isa before = active_isa();
  {
    ScopedIsa force(Isa::Portable);
    EXPECT_EQ(active_isa(), Isa::Portable);
    const MicroKernel<double>& mk = active_microkernel<double>();
    EXPECT_EQ(mk.isa, Isa::Portable);
  }
  EXPECT_EQ(active_isa(), before);
  // Forcing an unavailable ISA must fail without changing the selection.
  for (int i = 0; i < kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (isa_available(isa)) continue;
    EXPECT_FALSE(set_active_isa(isa)) << isa_name(isa);
    EXPECT_EQ(active_isa(), before);
  }
}

#if defined(__unix__) || defined(__APPLE__)
TEST(Microkernel, EnvOverrideResolvesAndFallsBackWhenUnavailable) {
  const char* saved = std::getenv("XBLAS_ISA");
  const std::string saved_value = saved ? saved : "";
  ::setenv("XBLAS_ISA", "portable", 1);
  EXPECT_EQ(resolve_isa_from_env(), Isa::Portable);
  ::setenv("XBLAS_ISA", "not-an-isa", 1);
  EXPECT_EQ(resolve_isa_from_env(), detect_isa());  // warn + fall back
  ::unsetenv("XBLAS_ISA");
  EXPECT_EQ(resolve_isa_from_env(), detect_isa());
  if (saved) ::setenv("XBLAS_ISA", saved_value.c_str(), 1);
}
#endif

// Cross-ISA conformance: every kernel the host can run must produce results
// bitwise identical to the portable kernel — same flop count, same k-order,
// same contraction behavior — across ragged edge tiles (m, n, k that are
// not multiples of any kernel's mr/nr/kc) and the small-k strided-B path.
class MicrokernelConformance : public ::testing::TestWithParam<int> {};

TEST_P(MicrokernelConformance, GemmBitwiseMatchesPortableEverywhere) {
  const Isa isa = static_cast<Isa>(GetParam());
  if (!isa_available(isa)) GTEST_SKIP() << isa_name(isa) << " not available";

  const Tuning saved = tuning();
  tuning().small_gemm_flops = 0.0;  // keep every shape on the kernel paths
  struct Shape { index_t m, n, k; };
  const Shape shapes[] = {
      {64, 64, 64},     // all full tiles
      {173, 159, 61},   // ragged in every dimension
      {129, 65, 513},   // one past a block boundary, k > kc
      {8, 200, 7},      // single row-tile, tiny k
      {200, 200, 48},   // small-k strided-B fast path (k <= small_k)
      {31, 17, 3},      // smaller than any register tile
  };
  for (const Shape& sh : shapes) {
    const MatrixD a = random_matrix(sh.m, sh.k, 91);
    const MatrixD b = random_matrix(sh.k, sh.n, 92);
    const MatrixD c0 = random_matrix(sh.m, sh.n, 93);
    MatrixD want = c0;
    {
      ScopedIsa force(Isa::Portable);
      gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 1.0, want.view());
    }
    MatrixD got = c0;
    {
      ScopedIsa force(isa);
      gemm(Trans::None, Trans::None, 1.0, a.view(), b.view(), 1.0, got.view());
    }
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          sizeof(double) * static_cast<std::size_t>(sh.m) *
                              static_cast<std::size_t>(sh.n)),
              0)
        << isa_name(isa) << " fp64 m=" << sh.m << " n=" << sh.n
        << " k=" << sh.k;

    MatrixF af(sh.m, sh.k), bf(sh.k, sh.n), cf0(sh.m, sh.n);
    convert<double, float>(a.view(), af.view());
    convert<double, float>(b.view(), bf.view());
    convert<double, float>(c0.view(), cf0.view());
    MatrixF wantf = cf0;
    {
      ScopedIsa force(Isa::Portable);
      gemm(Trans::None, Trans::None, 1.0f, af.view(), bf.view(), 1.0f,
           wantf.view());
    }
    MatrixF gotf = cf0;
    {
      ScopedIsa force(isa);
      gemm(Trans::None, Trans::None, 1.0f, af.view(), bf.view(), 1.0f,
           gotf.view());
    }
    EXPECT_EQ(std::memcmp(wantf.data(), gotf.data(),
                          sizeof(float) * static_cast<std::size_t>(sh.m) *
                              static_cast<std::size_t>(sh.n)),
              0)
        << isa_name(isa) << " fp32 m=" << sh.m << " n=" << sh.n
        << " k=" << sh.k;
  }
  tuning() = saved;
}

INSTANTIATE_TEST_SUITE_P(AllIsas, MicrokernelConformance,
                         ::testing::Range(0, kIsaCount),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return isa_name(static_cast<Isa>(info.param));
                         });

// The factorizations must be ISA-invariant too: same pivots, same bits.
TEST(Microkernel, GetrfBitwiseIdenticalAcrossAvailableIsas) {
  const index_t n = 193;
  const MatrixD a = random_matrix(n, n, 94);
  MatrixD want(n, n);
  std::vector<index_t> want_ipiv;
  {
    ScopedIsa force(Isa::Portable);
    copy<double>(a.view(), want.view());
    getrf(want.view(), want_ipiv);
  }
  for (int i = 0; i < kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (!isa_available(isa)) continue;
    ScopedIsa force(isa);
    MatrixD got(n, n);
    std::vector<index_t> ipiv;
    copy<double>(a.view(), got.view());
    getrf(got.view(), ipiv);
    EXPECT_EQ(ipiv, want_ipiv) << isa_name(isa);
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          sizeof(double) * static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n)),
              0)
        << isa_name(isa);
  }
}

// ---- persisted autotuner ----

namespace fs = std::filesystem;

std::string temp_tuning_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(Autotune, SaveLoadRoundTripsEveryField) {
  const std::string path = temp_tuning_path("conflux_tuning_roundtrip.json");
  autotune::Entry e64;
  e64.isa = Isa::Portable;
  e64.type = "f64";
  e64.mc = 128;
  e64.kc = 384;
  e64.nc = 4096;
  e64.db = 48;
  e64.lu_nb = 24;
  e64.gflops = 41.25;
  e64.n = 1024;
  e64.threads = 1;
  autotune::Entry e32 = e64;
  e32.type = "f32";
  e32.kc = 768;
  e32.db = 0;
  e32.lu_nb = 0;
  ASSERT_TRUE(autotune::save_entries(path, {e64, e32}));

  std::vector<autotune::Entry> got;
  ASSERT_TRUE(autotune::load_entries(path, &got));
  ASSERT_EQ(got.size(), 2u);
  const autotune::Entry* g64 = autotune::find_entry(got, Isa::Portable, "f64");
  const autotune::Entry* g32 = autotune::find_entry(got, Isa::Portable, "f32");
  ASSERT_NE(g64, nullptr);
  ASSERT_NE(g32, nullptr);
  EXPECT_EQ(g64->mc, 128);
  EXPECT_EQ(g64->kc, 384);
  EXPECT_EQ(g64->nc, 4096);
  EXPECT_EQ(g64->db, 48);
  EXPECT_EQ(g64->lu_nb, 24);
  EXPECT_DOUBLE_EQ(g64->gflops, 41.25);
  EXPECT_EQ(g64->n, 1024);
  EXPECT_EQ(g64->threads, 1);
  EXPECT_EQ(g32->kc, 768);
  EXPECT_EQ(g32->db, 0);
  EXPECT_EQ(autotune::find_entry(got, Isa::Avx2, "f64"), nullptr);
  fs::remove(path);
}

TEST(Autotune, SaveReportReplacesMatchingEntriesAndKeepsOthers) {
  const std::string path = temp_tuning_path("conflux_tuning_merge.json");
  autotune::Entry mine;
  mine.isa = Isa::Portable;
  mine.type = "f64";
  mine.mc = 64;
  mine.kc = 512;
  mine.nc = 2048;
  autotune::Entry other = mine;
  other.isa = Isa::Neon;  // a different machine's entry must survive
  other.mc = 96;
  ASSERT_TRUE(autotune::save_entries(path, {mine, other}));

  autotune::Report rep;
  rep.isa = Isa::Portable;
  autotune::Entry tuned = mine;
  tuned.mc = 192;
  tuned.gflops = 50.0;
  rep.tuned.push_back(tuned);
  ASSERT_TRUE(autotune::save_report(path, rep));

  std::vector<autotune::Entry> got;
  ASSERT_TRUE(autotune::load_entries(path, &got));
  ASSERT_EQ(got.size(), 2u);
  const autotune::Entry* g = autotune::find_entry(got, Isa::Portable, "f64");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->mc, 192);  // replaced
  const autotune::Entry* o = autotune::find_entry(got, Isa::Neon, "f64");
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->mc, 96);  // kept
  fs::remove(path);
}

TEST(Autotune, CorruptOrMissingFileDegradesToEmpty) {
  std::vector<autotune::Entry> got{autotune::Entry{}};
  EXPECT_FALSE(
      autotune::load_entries(temp_tuning_path("conflux_no_such.json"), &got));
  EXPECT_TRUE(got.empty());

  const std::string path = temp_tuning_path("conflux_tuning_corrupt.json");
  for (const char* garbage :
       {"", "not json at all", "{\"version\": 1, \"entries\": [{]}",
        "{\"version\": 99, \"entries\": []}", "[1, 2, 3]",
        "{\"version\": 1, \"entries\": [{\"isa\": 7}]}"}) {
    std::ofstream(path) << garbage;
    EXPECT_FALSE(autotune::load_entries(path, &got)) << garbage;
    EXPECT_TRUE(got.empty()) << garbage;
  }
  // Entries with an unknown ISA or type are skipped, not fatal: a newer
  // build's tuning file must not break an older one.
  std::ofstream(path)
      << "{\"version\": 1, \"entries\": ["
         "{\"isa\": \"riscv-v\", \"type\": \"f64\", \"mc\": 1, \"kc\": 1, "
         "\"nc\": 1},"
         "{\"isa\": \"portable\", \"type\": \"f64\", \"mc\": 80, \"kc\": 256, "
         "\"nc\": 2048}]}";
  EXPECT_TRUE(autotune::load_entries(path, &got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].mc, 80);
  fs::remove(path);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(Autotune, DefaultPathHonorsEnvOverrides) {
  const char* saved = std::getenv("XBLAS_TUNING_FILE");
  const std::string saved_value = saved ? saved : "";
  ::setenv("XBLAS_TUNING_FILE", "/some/explicit/tuning.json", 1);
  EXPECT_EQ(autotune::default_tuning_path(), "/some/explicit/tuning.json");
  ::setenv("XBLAS_TUNING_FILE", "", 1);
  EXPECT_EQ(autotune::default_tuning_path(), "");  // empty disables
  ::unsetenv("XBLAS_TUNING_FILE");
  const std::string def = autotune::default_tuning_path();
  if (!def.empty()) {
    EXPECT_NE(def.find("conflux/tuning.json"), std::string::npos) << def;
  }
  if (saved) ::setenv("XBLAS_TUNING_FILE", saved_value.c_str(), 1);
}

TEST(Tuning, DetectPrecedenceIsDefaultsThenFileThenEnv) {
  // Snapshot and clear everything detect() reads.
  const char* saved_file = std::getenv("XBLAS_TUNING_FILE");
  const std::string saved_file_value = saved_file ? saved_file : "";
  for (const char* var : {"XBLAS_MC", "XBLAS_KC", "XBLAS_NC", "XBLAS_DB",
                          "XBLAS_LU_NB", "XBLAS_THREADS", "XBLAS_SMALL_K"}) {
    ::unsetenv(var);
  }

  // No file: compiled-in defaults.
  ::setenv("XBLAS_TUNING_FILE", "", 1);
  Tuning t = Tuning::detect();
  EXPECT_EQ(t.mc, Tuning{}.mc);
  EXPECT_STREQ(tuning_source(), "default");

  // A file entry for the ACTIVE isa overrides the defaults.
  const std::string path = temp_tuning_path("conflux_tuning_detect.json");
  autotune::Entry e;
  e.isa = active_isa();
  e.type = "f64";
  e.mc = 224;
  e.kc = 320;
  e.nc = 4096;
  e.db = 96;
  e.lu_nb = 48;
  autotune::Entry ef = e;
  ef.type = "f32";
  ef.mc = 160;
  ef.kc = 640;
  ASSERT_TRUE(autotune::save_entries(path, {e, ef}));
  ::setenv("XBLAS_TUNING_FILE", path.c_str(), 1);
  t = Tuning::detect();
  EXPECT_EQ(t.mc, 224);
  EXPECT_EQ(t.kc, 320);
  EXPECT_EQ(t.nc, 4096);
  EXPECT_EQ(t.db, 96);
  EXPECT_EQ(t.lu_nb, 48);
  EXPECT_EQ(t.mc_f32, 160);
  EXPECT_EQ(t.kc_f32, 640);
  EXPECT_STREQ(tuning_source(), "file");

  // Env beats the file, field-wise: XBLAS_MC wins, the file keeps kc.
  ::setenv("XBLAS_MC", "72", 1);
  t = Tuning::detect();
  EXPECT_EQ(t.mc, 72);
  EXPECT_EQ(t.kc, 320);
  EXPECT_STREQ(tuning_source(), "env");
  ::unsetenv("XBLAS_MC");

  // An entry for a DIFFERENT isa must not apply.
  if (active_isa() != Isa::Neon) {
    autotune::Entry foreign = e;
    foreign.isa = Isa::Neon;
    ASSERT_TRUE(autotune::save_entries(path, {foreign}));
    t = Tuning::detect();
    EXPECT_EQ(t.mc, Tuning{}.mc);
    EXPECT_STREQ(tuning_source(), "default");
  }

  fs::remove(path);
  if (saved_file) {
    ::setenv("XBLAS_TUNING_FILE", saved_file_value.c_str(), 1);
  } else {
    ::unsetenv("XBLAS_TUNING_FILE");
  }
  // Re-run detect so later tests see the ambient configuration, not ours.
  Tuning::detect();
}
#endif

TEST(Tuning, SanitizeClampsFp32OverridesWithoutInventingThem) {
  Tuning t;
  t.mc_f32 = -3;
  t.kc_f32 = -1;
  t.nc_f32 = 2;
  t.sanitize();
  EXPECT_EQ(t.mc_f32, 0);  // negative collapses to "derive from fp64"
  EXPECT_EQ(t.kc_f32, 0);
  EXPECT_GE(t.nc_f32, kNR);  // set-but-tiny clamps up, stays set
  Tuning u;
  u.sanitize();
  EXPECT_EQ(u.mc_f32, 0);  // sanitize never invents an override
}

}  // namespace
}  // namespace conflux::xblas
