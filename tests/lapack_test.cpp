// LU / Cholesky local kernels: factorization residuals, pivoting behaviour,
// solve round-trips, and degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/lapack.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux::xblas {
namespace {

class GetrfSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(GetrfSweep, ResidualIsSmall) {
  const index_t n = GetParam();
  const MatrixD a = random_matrix(n, n, 100 + static_cast<std::uint64_t>(n));
  MatrixD fac = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(fac.view(), ipiv), 0);
  const auto perm = ipiv_to_permutation(ipiv, n);
  EXPECT_LT(lu_residual(a.view(), fac.view(), perm), 50.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GetrfSweep,
                         ::testing::Values<index_t>(1, 2, 3, 7, 16, 31, 32, 33, 64,
                                                    96, 100, 150, 256));

TEST(Getrf, RectangularTallPanel) {
  const index_t m = 48, n = 8;
  const MatrixD a = random_matrix(m, n, 77);
  MatrixD fac = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(fac.view(), ipiv), 0);
  ASSERT_EQ(static_cast<index_t>(ipiv.size()), n);
  // Check PA = LU on the panel.
  MatrixD pa = a;
  laswp(pa.view(), ipiv);
  const MatrixD l = extract_lower_unit(fac.view(), n);
  const MatrixD u = extract_upper(fac.view(), n);
  MatrixD lu(m, n, 0.0);
  gemm(Trans::None, Trans::None, 1.0, l.view(), u.view(), 0.0, lu.view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) EXPECT_NEAR(lu(i, j), pa(i, j), 1e-10);
  }
}

TEST(Getrf, PivotingSelectsLargestMagnitude) {
  // First column is [1; 4; -9; 2]: pivot must pick row 2.
  MatrixD a(4, 4, 0.0);
  a(0, 0) = 1.0;
  a(1, 0) = 4.0;
  a(2, 0) = -9.0;
  a(3, 0) = 2.0;
  for (index_t i = 0; i < 4; ++i) a(i, i) += 1.0;  // keep non-singular
  std::vector<index_t> ipiv;
  MatrixD fac = a;
  ASSERT_EQ(getrf(fac.view(), ipiv), 0);
  EXPECT_EQ(ipiv[0], 2);
}

TEST(Getrf, SingularMatrixReportsColumn) {
  MatrixD a(3, 3, 0.0);  // all-zero: first pivot already zero
  std::vector<index_t> ipiv;
  EXPECT_EQ(getrf(a.view(), ipiv), 1);
}

TEST(Getrf, StableOnIllScaledRows) {
  // Without pivoting this loses all accuracy; with pivoting it must not.
  const index_t n = 64;
  MatrixD a = random_matrix(n, n, 3);
  for (index_t j = 0; j < n; ++j) a(0, j) *= 1e-12;
  const MatrixD a0 = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(a.view(), ipiv), 0);
  EXPECT_LT(lu_residual(a0.view(), a.view(), ipiv_to_permutation(ipiv, n)), 100.0);
}

TEST(GetrfNopiv, MatchesPivotedOnDominantMatrix) {
  const index_t n = 80;
  const MatrixD a = random_dominant_matrix(n, 4);
  MatrixD fac = a;
  ASSERT_EQ(getrf_nopiv(fac.view()), 0);
  std::vector<index_t> identity_perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) identity_perm[static_cast<std::size_t>(i)] = i;
  EXPECT_LT(lu_residual(a.view(), fac.view(), identity_perm), 50.0);
}

TEST(GetrfNopiv, ZeroPivotDetected) {
  MatrixD a(2, 2, 0.0);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  EXPECT_EQ(getrf_nopiv(a.view()), 1);
}

class PotrfSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(PotrfSweep, ResidualIsSmall) {
  const index_t n = GetParam();
  const MatrixD a = random_spd_matrix(n, 200 + static_cast<std::uint64_t>(n));
  MatrixD fac = a;
  ASSERT_EQ(potrf(fac.view()), 0);
  EXPECT_LT(cholesky_residual(a.view(), fac.view()), 50.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PotrfSweep,
                         ::testing::Values<index_t>(1, 2, 5, 16, 31, 32, 33, 64, 100,
                                                    128, 200));

TEST(Potrf, IndefiniteMatrixRejected) {
  MatrixD a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_EQ(potrf(a.view()), 2);
}

TEST(Potrf, DoesNotTouchStrictUpperTriangle) {
  const index_t n = 16;
  MatrixD a = random_spd_matrix(n, 5);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) a(i, j) = -123.0;  // sentinel
  }
  ASSERT_EQ(potrf(a.view()), 0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) EXPECT_DOUBLE_EQ(a(i, j), -123.0);
  }
}

TEST(Laswp, AppliesInterchangesInOrder) {
  MatrixD a(3, 2);
  for (index_t i = 0; i < 3; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = static_cast<double>(10 * i);
  }
  // Swap row0<->row2, then row1<->row2: final order rows [2, 0, 1].
  laswp(a.view(), {2, 2});
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(2, 0), 1.0);
}

TEST(Laswp, PermutationVectorMatchesLaswp) {
  const index_t n = 32;
  const MatrixD a = random_matrix(n, n, 6);
  MatrixD fac = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(fac.view(), ipiv), 0);
  MatrixD swapped = a;
  laswp(swapped.view(), ipiv);
  const auto perm = ipiv_to_permutation(ipiv, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(swapped(i, j), a(perm[static_cast<std::size_t>(i)], j));
    }
  }
}

TEST(Getrs, SolveRoundTrip) {
  const index_t n = 96, nrhs = 5;
  const MatrixD a = random_matrix(n, n, 7);
  const MatrixD x_true = random_matrix(n, nrhs, 8);
  MatrixD b(n, nrhs, 0.0);
  gemm(Trans::None, Trans::None, 1.0, a.view(), x_true.view(), 0.0, b.view());
  MatrixD fac = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(fac.view(), ipiv), 0);
  getrs(fac.view(), ipiv, b.view());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      EXPECT_NEAR(b(i, j), x_true(i, j), 1e-7);
    }
  }
}

TEST(Potrs, SolveRoundTrip) {
  const index_t n = 80, nrhs = 3;
  const MatrixD a = random_spd_matrix(n, 9);
  const MatrixD x_true = random_matrix(n, nrhs, 10);
  MatrixD b(n, nrhs, 0.0);
  gemm(Trans::None, Trans::None, 1.0, a.view(), x_true.view(), 0.0, b.view());
  MatrixD fac = a;
  ASSERT_EQ(potrf(fac.view()), 0);
  potrs(fac.view(), b.view());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      EXPECT_NEAR(b(i, j), x_true(i, j), 1e-7);
    }
  }
}

TEST(Extract, LowerAndUpperFactorsHaveExpectedStructure) {
  const index_t n = 10;
  MatrixD fac = random_matrix(n, n, 11);
  const MatrixD l = extract_lower_unit(fac.view(), n);
  const MatrixD u = extract_upper(fac.view(), n);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(l(i, i), 1.0);
    for (index_t j = i + 1; j < n; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
    for (index_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(u(i, j), 0.0);
  }
}

}  // namespace
}  // namespace conflux::xblas
