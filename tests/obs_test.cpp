// Observability layer tests (DESIGN.md "Observability"): the metrics
// registry's exactness and thread-safety contracts, the disabled-mode
// zero-touch guarantee, phase-span capture, the data-movement audit, and
// the unified Chrome-trace export.
//
// The registry's concurrency design (per-thread sink cells, baseline
// reset) is exercised under real std::threads and the task pool so the
// sanitizer jobs (TSan/ASan in CI) see the actual interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "models/models.hpp"
#include "obs/audit.hpp"
#include "sched/chrome_trace.hpp"
#include "sched/taskpool.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {
namespace {

/// RAII arm/disarm so a failing test never leaks registry state into the
/// next one.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(bool on) : was_(metrics::enabled()) {
    metrics::set_enabled(on);
  }
  ~ScopedMetrics() { metrics::set_enabled(was_); }

 private:
  bool was_;
};

xsim::Machine real_machine() {
  xsim::MachineSpec spec;
  spec.num_ranks = 4;
  spec.memory_words = 1e9;
  return xsim::Machine(spec, xsim::ExecMode::Real);
}

factor::FactorOptions small_options() {
  factor::FactorOptions opt;
  opt.block_size = 16;
  return opt;
}

// ------------------------------------------------------------ registry ----

TEST(Metrics, ConcurrentCounterSumsAreExact) {
  ScopedMetrics on(true);
  const metrics::Counter c("obs_test.threads.count");
  const double before = metrics::snapshot().value("obs_test.threads.count");

  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();

  // Quiescent-point snapshot: every increment lands, none double-counts.
  EXPECT_EQ(metrics::snapshot().value("obs_test.threads.count") - before,
            static_cast<double>(kThreads) * kAddsPerThread);
}

TEST(Metrics, PoolWorkersSumExactly) {
  ScopedMetrics on(true);
  const metrics::Counter c("obs_test.pool.count");
  const double before = metrics::snapshot().value("obs_test.pool.count");
  constexpr index_t kIters = 10000;
  sched::TaskPool::instance().parallel_for(kIters,
                                           [&c](index_t) { c.add(2.0); });
  EXPECT_EQ(metrics::snapshot().value("obs_test.pool.count") - before,
            2.0 * static_cast<double>(kIters));
}

TEST(Metrics, SnapshotAndResetRaceFreeUnderConcurrentRecording) {
  // Snapshots during recording must be tear-free (each cell atomic) and
  // reset must never zero another thread's cell. The assertions here are
  // coherence bounds; the sanitizer jobs assert the absence of data races.
  ScopedMetrics on(true);
  const metrics::Counter c("obs_test.race.count");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.add(1.0);
    });
  }
  for (int i = 0; i < 50; ++i) {
    const metrics::Snapshot snap = metrics::snapshot();
    const metrics::MetricValue* mv = snap.find("obs_test.race.count");
    ASSERT_NE(mv, nullptr);
    EXPECT_GE(mv->value, 0.0);  // baseline subtraction never goes negative
    if (i % 10 == 0) metrics::reset();
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();

  // After quiescence a reset epoch counts exactly what follows it.
  metrics::reset();
  c.add(3.0);
  EXPECT_EQ(metrics::snapshot().value("obs_test.race.count"), 3.0);
}

TEST(Metrics, DisabledModeLeavesCellsUntouched) {
  const metrics::Counter c("obs_test.disabled.count");
  double armed_total;
  {
    ScopedMetrics on(true);
    c.add(5.0);
    armed_total = metrics::snapshot().value("obs_test.disabled.count");
  }
  {
    ScopedMetrics off(false);
    for (int i = 0; i < 1000; ++i) c.add(1.0);
  }
  ScopedMetrics on(true);
  EXPECT_EQ(metrics::snapshot().value("obs_test.disabled.count"), armed_total);
}

TEST(Metrics, DisabledRecordIsCheap) {
  // Overhead sanity, not a benchmark: 10M disarmed adds are one relaxed
  // load + branch each and must complete in trivial time even under
  // sanitizers (generous bound to stay deterministic on loaded CI).
  ScopedMetrics off(false);
  const metrics::Counter c("obs_test.overhead.count");
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10'000'000; ++i) c.add(1.0);
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(s, 5.0);
}

TEST(Metrics, GaugeTracksLastValueAndHighWater) {
  ScopedMetrics on(true);
  const metrics::Gauge g("obs_test.gauge");
  metrics::reset();
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  const metrics::Snapshot snap = metrics::snapshot();
  const metrics::MetricValue* mv = snap.find("obs_test.gauge");
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->kind, metrics::Kind::Gauge);
  EXPECT_EQ(mv->value, 2.0);
  EXPECT_EQ(mv->max, 7.0);
}

TEST(Metrics, HistogramBucketsByUpperBound) {
  ScopedMetrics on(true);
  const metrics::Histogram h("obs_test.hist", {1.0, 10.0});
  metrics::reset();
  h.record(0.5);   // <= 1.0
  h.record(5.0);   // <= 10.0
  h.record(50.0);  // overflow bucket
  const metrics::Snapshot snap = metrics::snapshot();
  const metrics::MetricValue* mv = snap.find("obs_test.hist");
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->kind, metrics::Kind::Histogram);
  EXPECT_EQ(mv->count, 3);
  EXPECT_DOUBLE_EQ(mv->sum, 55.5);
  ASSERT_EQ(mv->buckets.size(), 3u);
  EXPECT_EQ(mv->buckets[0], 1);
  EXPECT_EQ(mv->buckets[1], 1);
  EXPECT_EQ(mv->buckets[2], 1);
}

TEST(Metrics, SumPrefixAggregatesFamilies) {
  ScopedMetrics on(true);
  const metrics::Counter a("obs_test.fam.a");
  const metrics::Counter b("obs_test.fam.b");
  metrics::reset();
  a.add(1.5);
  b.add(2.5);
  EXPECT_DOUBLE_EQ(metrics::snapshot().sum_prefix("obs_test.fam."), 4.0);
}

// ------------------------------------------------- data-path guarantees ----

TEST(Obs, FactorsBitwiseIdenticalWithMetricsOnAndOff) {
  // Constraint 2 of the registry design: instrumentation is read-only on
  // the data path, so armed metrics + armed capture must not perturb a
  // single bit of the computed factors.
  const index_t n = 64;
  const grid::Grid3D g(2, 2, 1);
  const MatrixD a = random_matrix(n, n, 99);
  factor::FactorOptions opt = small_options();
  opt.lookahead = 1;

  factor::LuResult off_run, on_run;
  {
    ScopedMetrics off(false);
    xsim::Machine m = real_machine();
    off_run = factor::conflux_lu(m, g, a.view(), opt);
  }
  {
    ScopedMetrics on(true);
    prof::start_capture();
    xsim::Machine m = real_machine();
    on_run = factor::conflux_lu(m, g, a.view(), opt);
    prof::stop_capture();
  }
  EXPECT_EQ(off_run.perm, on_run.perm);
  EXPECT_EQ(off_run.factors, on_run.factors);

  const MatrixD spd = random_spd_matrix(n, 7);
  factor::CholResult chol_off, chol_on;
  {
    ScopedMetrics off(false);
    xsim::Machine m = real_machine();
    chol_off = factor::confchox(m, g, spd.view(), small_options());
  }
  {
    ScopedMetrics on(true);
    xsim::Machine m = real_machine();
    chol_on = factor::confchox(m, g, spd.view(), small_options());
  }
  EXPECT_EQ(chol_off.factors, chol_on.factors);
}

TEST(Obs, RealRunPopulatesDataMovementCounters) {
  ScopedMetrics on(true);
  const metrics::Snapshot before = metrics::snapshot();
  {
    xsim::Machine m = real_machine();
    const grid::Grid3D g(2, 2, 1);
    const MatrixD a = random_matrix(64, 64, 5);
    factor::conflux_lu(m, g, a.view(), small_options());
  }
  const metrics::Snapshot after = metrics::snapshot();
  // The factor core's byte counters all moved: panel work, pivoting and
  // the Schur update are unavoidable for any LU.
  for (const char* name : {"dm.panel_gather.bytes", "dm.panel_solve.bytes",
                           "dm.pivot_merge.bytes", "dm.schur_update.bytes"}) {
    EXPECT_GT(after.value(name) - before.value(name), 0.0) << name;
  }
}

// ------------------------------------------------------------ the audit ----

TEST(Obs, AuditAggregatesAndRatiosAreSane) {
  ScopedMetrics on(true);
  const index_t n = 128;
  const int p = 4;
  const grid::Grid3D g(2, 2, 1);
  const double mem = models::paper_memory_words(static_cast<double>(n), p);
  const MatrixD a = random_matrix(n, n, 11);
  factor::FactorOptions opt = small_options();
  const double modeled = models::conflux_lu_volume_exact(n, g, opt.block_size);

  const metrics::Snapshot before = metrics::snapshot();
  {
    xsim::Machine m = real_machine();
    factor::conflux_lu(m, g, a.view(), opt);
  }
  const metrics::Snapshot after = metrics::snapshot();
  const obs::DataMovementAudit audit =
      obs::audit_data_movement(obs::Kernel::kLu, before, after,
                               static_cast<double>(n), p, mem, modeled);

  EXPECT_GT(audit.measured_bytes, 0.0);
  EXPECT_FALSE(audit.breakdown.empty());
  double total = 0.0;
  for (const obs::CounterDelta& d : audit.breakdown) {
    EXPECT_GT(d.bytes, 0.0) << d.name;
    total += d.bytes;
  }
  EXPECT_DOUBLE_EQ(total, audit.measured_bytes);
  EXPECT_DOUBLE_EQ(audit.measured_words_per_rank,
                   audit.measured_bytes / 8.0 / p);
  EXPECT_GT(audit.lower_bound_words, 0.0);
  EXPECT_TRUE(std::isfinite(audit.measured_ratio));
  // The measured path touches at least what the bound says must move.
  EXPECT_GE(audit.measured_ratio, 1.0);
  EXPECT_GT(audit.model_ratio, 0.0);

  // The JSON rendering round-trips through the shared writer untruncated.
  std::ostringstream os;
  {
    json::Writer w(os);
    obs::write_json(w, audit);
  }
  EXPECT_NE(os.str().find("\"measured_ratio\""), std::string::npos);
  EXPECT_NE(os.str().find("\"breakdown\""), std::string::npos);
}

// ------------------------------------------------------- spans + traces ----

TEST(Obs, ScopedSpanRecordsOnlyWhileCapturing) {
  { prof::ScopedSpan idle("never-recorded", 1); }  // disarmed: no effect
  prof::start_capture();
  {
    prof::ScopedSpan s("obs-test-span", 3);
  }
  const prof::Capture cap = prof::stop_capture();
  ASSERT_EQ(cap.spans.size(), 1u);
  EXPECT_EQ(cap.spans[0].name, "obs-test-span");
  EXPECT_EQ(cap.spans[0].step, 3);
  EXPECT_GE(cap.spans[0].t1, cap.spans[0].t0);

  // stop_capture() disarms: later spans vanish.
  { prof::ScopedSpan late("after-stop", 4); }
  prof::start_capture();
  EXPECT_TRUE(prof::stop_capture().spans.empty());
}

// Minimal recursive-descent JSON checker (same contract as sched_test's):
// enough to guarantee Perfetto / about:tracing can parse the file.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    ++pos_;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char ch = s_[pos_++];
      if (ch == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;
      } else if (ch == '"') {
        return true;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        return false;  // raw control characters are invalid JSON
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool eat(char ch) {
    if (pos_ < s_.size() && s_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(Obs, UnifiedTraceIsValidJsonWithAllThreeTracks) {
  ScopedMetrics on(true);
  sched::TaskPool& pool = sched::TaskPool::instance();
  const index_t n = 64;
  const grid::Grid3D g(2, 2, 1);
  const MatrixD a = random_matrix(n, n, 21);
  factor::FactorOptions opt = small_options();
  opt.lookahead = 1;  // pool tasks must exist for the pool track

  pool.start_recording();
  prof::start_capture();
  {
    xsim::Machine m = real_machine();
    factor::conflux_lu(m, g, a.view(), opt);
  }
  const prof::Capture cap = prof::stop_capture();
  const std::vector<sched::TaskSlice> slices = pool.stop_recording();

  EXPECT_FALSE(cap.spans.empty());
  EXPECT_FALSE(cap.samples.empty());

  std::ostringstream os;
  const std::size_t events = sched::write_unified_trace(os, slices, cap);
  EXPECT_GT(events, 0u);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str().substr(0, 400);
  // All three trace processes are present.
  EXPECT_NE(os.str().find("\"task pool\""), std::string::npos);
  EXPECT_NE(os.str().find("\"phases\""), std::string::npos);
  EXPECT_NE(os.str().find("\"counters\""), std::string::npos);
}

}  // namespace
}  // namespace conflux
