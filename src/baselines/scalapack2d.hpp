// ScaLAPACK / Intel MKL-style 2D baselines: right-looking block-cyclic LU
// with partial pivoting (pdgetrf shape) and Cholesky (pdpotrf shape).
//
// These stand in for the paper's MKL and SLATE comparison targets: the paper
// observes both use the 2D decomposition with per-rank communication volume
// N^2/sqrt(P) + O(N^2/P) (Table 2). The LU variant models explicit row
// swapping (ScaLAPACK semantics); the SLATE-like variant below skips the
// cross-rank swap traffic (tile-local swaps), giving it the paper's "slight
// advantage" over MKL.
#pragma once

#include "factor/common.hpp"
#include "grid/grid.hpp"
#include "tensor/matrix.hpp"
#include "xsim/machine.hpp"

namespace conflux::baselines {

struct Baseline2DOptions {
  index_t block_size = 0;  ///< nb; 0 = auto (64 for ScaLAPACK, 16 for SLATE)
  /// Skip cross-rank row-swap traffic (SLATE-like tile pivot handling).
  bool local_swaps = false;
};

template <typename T>
struct Lu2DResultT {
  std::vector<index_t> ipiv;  ///< LAPACK-style interchanges
  Matrix<T> factors;          ///< Real mode: in-place LU after swaps
  /// Real mode: soft-breakdown classification. The right-looking panel
  /// guards its divisions (a zero pivot skips the elimination, LAPACK
  /// dgetrf info semantics), so exact singularity stays a SOFT breakdown
  /// here — unlike COnfLUX, whose panel trsms would divide by the zero.
  factor::FactorHealth health;
};

using Lu2DResult = Lu2DResultT<double>;
using Lu2DResultF = Lu2DResultT<float>;

/// 2D block-cyclic LU with partial pivoting (Real mode). The fp32 overload
/// runs the identical schedule on narrowed local arithmetic — the reference
/// the conformance suite compares the fp32 COnfLUX path against.
Lu2DResult scalapack_lu(xsim::Machine& m, const grid::Grid2D& g, ConstViewD a,
                        const Baseline2DOptions& opt = {});
Lu2DResultF scalapack_lu(xsim::Machine& m, const grid::Grid2D& g, ConstViewF a,
                         const Baseline2DOptions& opt = {});

/// Non-throwing variants: non-finite input comes back as a failed Result,
/// exact singularity as a degraded Result (completed factors + health),
/// contract violations as kInvalidArgument.
Result<Lu2DResult> try_scalapack_lu(xsim::Machine& m, const grid::Grid2D& g,
                                    ConstViewD a, const Baseline2DOptions& opt = {});
Result<Lu2DResultF> try_scalapack_lu(xsim::Machine& m, const grid::Grid2D& g,
                                     ConstViewF a, const Baseline2DOptions& opt = {});

/// Trace-mode LU: charges the identical schedule without data.
Lu2DResult scalapack_lu_trace(xsim::Machine& m, const grid::Grid2D& g, index_t n,
                              const Baseline2DOptions& opt = {});

/// 2D block-cyclic Cholesky (lower).
MatrixD scalapack_cholesky(xsim::Machine& m, const grid::Grid2D& g, ConstViewD a,
                           const Baseline2DOptions& opt = {});
MatrixF scalapack_cholesky(xsim::Machine& m, const grid::Grid2D& g, ConstViewF a,
                           const Baseline2DOptions& opt = {});

/// Non-throwing Cholesky: kNotPositiveDefinite / kNonFinite as a failed
/// Result instead of an exception.
Result<MatrixD> try_scalapack_cholesky(xsim::Machine& m, const grid::Grid2D& g,
                                       ConstViewD a,
                                       const Baseline2DOptions& opt = {});
Result<MatrixF> try_scalapack_cholesky(xsim::Machine& m, const grid::Grid2D& g,
                                       ConstViewF a,
                                       const Baseline2DOptions& opt = {});

void scalapack_cholesky_trace(xsim::Machine& m, const grid::Grid2D& g, index_t n,
                              const Baseline2DOptions& opt = {});

/// SLATE-like defaults: tile size 16, local pivot handling.
inline Baseline2DOptions slate_defaults() {
  return Baseline2DOptions{.block_size = 16, .local_swaps = true};
}

}  // namespace conflux::baselines
