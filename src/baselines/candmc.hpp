// CANDMC-style 2.5D LU and CAPITAL-style 2.5D Cholesky baselines.
//
// The paper compares against CANDMC (Solomonik & Demmel's communication-
// avoiding 2.5D LU, per-rank I/O 5 N^3/(P sqrt(M)) [61]) and CAPITAL
// (Hutter & Solomonik's CholeskyQR2-based factorization, 45 N^3/(8 P sqrt(M))
// [33]) — and, like the paper itself (Section 9, "Communication Models"),
// uses the authors' published cost models for them. These simulators replay
// the 2.5D big-block schedule shape (sqrt(cP) panel steps over a
// sqrt(P/c) x sqrt(P/c) x c grid) with per-phase volumes calibrated to those
// models, so sweeps, crossovers, and time-model runs exercise the same
// machinery as the real implementations. The paper reports the models
// overapproximate CANDMC/CAPITAL measurements by 30-40%; EXPERIMENTS.md
// carries that caveat through.
#pragma once

#include "grid/grid.hpp"
#include "tensor/matrix.hpp"
#include "xsim/machine.hpp"

namespace conflux::baselines {

struct Candmc25DOptions {
  /// Replication depth c; 0 = choose from memory like the paper's runs
  /// (c = P*M/N^2 capped at P^{1/3}).
  int replication = 0;
};

/// Trace the CANDMC 2.5D LU schedule for an n x n matrix.
void candmc_lu_trace(xsim::Machine& m, index_t n, const Candmc25DOptions& opt = {});

/// Trace the CAPITAL 2.5D Cholesky schedule.
void capital_cholesky_trace(xsim::Machine& m, index_t n,
                            const Candmc25DOptions& opt = {});

}  // namespace conflux::baselines
