#include "baselines/scalapack2d.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "blas/blas.hpp"
#include "blas/lapack.hpp"
#include "support/check.hpp"
#include "support/status.hpp"
#include "xsim/comm.hpp"

namespace conflux::baselines {

namespace {

using xblas::Diag;
using xblas::Side;
using xblas::Trans;
using xblas::UpLo;

// Templated on the Real-mode scalar; Trace mode instantiates double with no
// data. The charge logic never depends on T — both precisions replay the
// identical schedule, which is what lets the conformance suite compare them.
template <typename T>
struct Run2D {
  xsim::Machine& m;
  const grid::Grid2D& g;
  index_t n;
  index_t nb;
  bool real;
  Matrix<T> a;  // Real mode: the global matrix, factored in place
  Rng rng{42};  // Trace mode: pivot positions drawn uniformly
  factor::FactorHealth health;  // Real mode: soft-breakdown classification

  int prow_of_row(index_t i) const { return static_cast<int>((i / nb) % g.pr); }
  int pcol_of_col(index_t j) const { return static_cast<int>((j / nb) % g.pc); }

  /// Indices i < x with (i/nb) % procs == q, in O(1).
  index_t owned_below(index_t x, int q, int procs) const {
    const index_t blk = x / nb;
    index_t count = grid::cyclic_local_count(0, blk, q, procs) * nb;
    if (static_cast<int>(blk % procs) == q) count += x - blk * nb;
    return count;
  }

  /// Rows i in [lo, n) owned by process row r.
  index_t local_rows(index_t lo, int r) const {
    return owned_below(n, r, g.pr) - owned_below(lo, r, g.pr);
  }
  index_t local_cols(index_t lo, int c) const {
    return owned_below(n, c, g.pc) - owned_below(lo, c, g.pc);
  }

  std::vector<int> row_group(int prow) const {
    std::vector<int> out;
    for (int c = 0; c < g.pc; ++c) out.push_back(g.rank_of(prow, c));
    return out;
  }
  std::vector<int> col_group(int pcol) const {
    std::vector<int> out;
    for (int r = 0; r < g.pr; ++r) out.push_back(g.rank_of(r, pcol));
    return out;
  }
};

// Panel factorization: nb columns, partial pivoting with per-column pivot
// search over the process column (pdgetrf's PxGETF2 shape).
template <typename T>
void lu_panel(Run2D<T>& run, index_t k0, index_t kb, std::vector<index_t>& ipiv,
              const Baseline2DOptions& opt) {
  run.m.annotate("lu-panel");
  const int pcol = run.pcol_of_col(k0);
  const auto col_ranks = run.col_group(pcol);
  for (index_t j = k0; j < k0 + kb; ++j) {
    // Pivot search: local iamax + allreduce of (value, row) over process rows.
    if (run.g.pr > 1) {
      xsim::comm::allreduce(run.m, col_ranks, 2.0, /*charge_combine_flops=*/false);
    }
    index_t piv = j;
    if (run.real) {
      T best = std::abs(run.a(j, j));
      for (index_t i = j + 1; i < run.n; ++i) {
        const T v = std::abs(run.a(i, j));
        if (v > best) {
          best = v;
          piv = i;
        }
      }
    } else {
      // Trace mode: pivots land uniformly (the paper's w.h.p. assumption).
      piv = j + static_cast<index_t>(run.rng.uniform_int(
                    static_cast<std::uint64_t>(run.n - j)));
    }
    ipiv.push_back(piv);
    // Swap rows j and piv within the panel (width kb).
    const int pa = run.prow_of_row(j);
    const int pb = run.prow_of_row(piv);
    if (piv != j && pa != pb && !opt.local_swaps) {
      xsim::comm::p2p(run.m, run.g.rank_of(pa, pcol), run.g.rank_of(pb, pcol),
                      static_cast<double>(kb));
      xsim::comm::p2p(run.m, run.g.rank_of(pb, pcol), run.g.rank_of(pa, pcol),
                      static_cast<double>(kb));
    }
    if (run.real && piv != j) {
      for (index_t c = k0; c < k0 + kb; ++c) std::swap(run.a(j, c), run.a(piv, c));
    }
    // Broadcast the pivot row segment down the process column, eliminate.
    if (run.g.pr > 1) {
      xsim::comm::broadcast(run.m, col_ranks, static_cast<std::size_t>(run.prow_of_row(j)),
                            static_cast<double>(kb - (j - k0)));
    }
    for (int r = 0; r < run.g.pr; ++r) {
      const auto rows = static_cast<double>(run.local_rows(j + 1, r));
      run.m.charge_flops(run.g.rank_of(r, pcol),
                         2.0 * rows * static_cast<double>(kb - (j - k0)));
    }
    if (run.real) {
      const T pivval = run.a(j, j);
      if (pivval != T{}) {
        const double d = std::abs(static_cast<double>(pivval));
        if (d < run.health.min_pivot) run.health.min_pivot = d;
        for (index_t i = j + 1; i < run.n; ++i) {
          const T lij = run.a(i, j) / pivval;
          run.a(i, j) = lij;
          for (index_t c = j + 1; c < k0 + kb; ++c) run.a(i, c) -= lij * run.a(j, c);
        }
      } else {
        // LAPACK dgetrf info semantics: the elimination is skipped, the
        // factors stay finite, and the breakdown is soft.
        ++run.health.singular_pivots;
        run.health.min_pivot = 0.0;
        run.health.code = StatusCode::kSingularPivot;
        if (run.health.first_breakdown_step < 0) {
          run.health.first_breakdown_step = static_cast<long long>(k0 / run.nb);
        }
      }
    }
  }
  run.m.step_barrier();
}

// Apply the panel's row interchanges to the columns outside the panel
// (pdlaswp): each cross-rank swap exchanges both rows' local segments in
// every process column.
template <typename T>
void lu_apply_swaps(Run2D<T>& run, index_t k0, index_t kb,
                    const std::vector<index_t>& ipiv, const Baseline2DOptions& opt) {
  if (opt.local_swaps) return;  // SLATE-like: pivots applied tile-locally
  run.m.annotate("row-swaps");
  for (index_t j = k0; j < k0 + kb; ++j) {
    const index_t piv = ipiv[static_cast<std::size_t>(j)];
    if (piv == j) continue;
    const int pa = run.prow_of_row(j);
    const int pb = run.prow_of_row(piv);
    if (pa != pb) {
      const int pcol0 = run.pcol_of_col(k0);
      for (int c = 0; c < run.g.pc; ++c) {
        // Both rows' local segments outside the (already swapped) panel.
        const index_t panel_cols = (c == pcol0) ? kb : 0;
        const auto words = static_cast<double>(run.local_cols(0, c) - panel_cols);
        if (words <= 0.0) continue;
        xsim::comm::p2p(run.m, run.g.rank_of(pa, c), run.g.rank_of(pb, c), words);
        xsim::comm::p2p(run.m, run.g.rank_of(pb, c), run.g.rank_of(pa, c), words);
      }
    }
    if (run.real) {
      for (index_t c = 0; c < k0; ++c) std::swap(run.a(j, c), run.a(piv, c));
      for (index_t c = k0 + kb; c < run.n; ++c) std::swap(run.a(j, c), run.a(piv, c));
    }
  }
  run.m.step_barrier();
}

// Trailing update: broadcast L11 along its process row, trsm U12 there,
// broadcast L21 along process rows and U12 along process columns, gemm.
template <typename T>
void lu_update(Run2D<T>& run, index_t k0, index_t kb) {
  run.m.annotate("trailing-update");
  const index_t rest = run.n - (k0 + kb);
  const int prow0 = run.prow_of_row(k0);
  const int pcol0 = run.pcol_of_col(k0);
  // L11 to the U12 owners.
  if (run.g.pc > 1) {
    xsim::comm::broadcast(run.m, run.row_group(prow0), static_cast<std::size_t>(pcol0),
                          static_cast<double>(kb * kb));
  }
  if (rest > 0) {
    // trsm U12 on the owner process row.
    for (int c = 0; c < run.g.pc; ++c) {
      const auto cols = static_cast<double>(run.local_cols(k0 + kb, c));
      if (cols > 0) {
        run.m.charge_flops(run.g.rank_of(prow0, c),
                           static_cast<double>(kb * kb) * cols);
      }
    }
    // L21 along process rows; U12 along process columns.
    for (int r = 0; r < run.g.pr; ++r) {
      const auto rows = static_cast<double>(run.local_rows(k0 + kb, r));
      if (rows > 0 && run.g.pc > 1) {
        xsim::comm::broadcast(run.m, run.row_group(r), static_cast<std::size_t>(pcol0),
                              rows * static_cast<double>(kb));
      }
    }
    for (int c = 0; c < run.g.pc; ++c) {
      const auto cols = static_cast<double>(run.local_cols(k0 + kb, c));
      if (cols > 0 && run.g.pr > 1) {
        xsim::comm::broadcast(run.m, run.col_group(c), static_cast<std::size_t>(prow0),
                              static_cast<double>(kb) * cols);
      }
    }
    // Local gemm.
    for (int r = 0; r < run.g.pr; ++r) {
      for (int c = 0; c < run.g.pc; ++c) {
        const auto rows = static_cast<double>(run.local_rows(k0 + kb, r));
        const auto cols = static_cast<double>(run.local_cols(k0 + kb, c));
        if (rows > 0 && cols > 0) {
          run.m.charge_flops(run.g.rank_of(r, c),
                             2.0 * rows * cols * static_cast<double>(kb));
        }
      }
    }
  }
  if (run.real) {
    MatrixView<T> a = run.a.view();
    if (rest > 0) {
      MatrixView<T> u12 = a.block(k0, k0 + kb, kb, rest);
      xblas::trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::Unit, T{1},
                     a.block(k0, k0, kb, kb), u12);
      xblas::gemm<T>(Trans::None, Trans::None, T{-1},
                     a.block(k0 + kb, k0, rest, kb), u12, T{1},
                     a.block(k0 + kb, k0 + kb, rest, rest));
    }
  }
  run.m.step_barrier();
}

template <typename T>
Lu2DResultT<T> run_lu(xsim::Machine& m, const grid::Grid2D& g, index_t n,
                      ConstMatrixView<T> a, const Baseline2DOptions& opt) {
  expects(g.ranks() == m.ranks(), "grid must match the machine");
  expects(n >= 1, "matrix must be non-empty");
  const index_t nb = opt.block_size > 0 ? opt.block_size : 64;

  Run2D<T> run{m, g, n, nb, m.real(), Matrix<T>()};
  if (run.real) {
    expects(a.rows() == n && a.cols() == n, "matrix must be square");
    run.health.min_pivot = std::numeric_limits<double>::infinity();
    run.a = Matrix<T>(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        const T val = a(i, j);
        if (!std::isfinite(static_cast<double>(val))) {
          throw status_error(Status(
              StatusCode::kNonFinite, "input matrix contains a non-finite value"));
        }
        run.a(i, j) = val;
      }
    }
  }
  // Per-rank memory: the local 2D share plus panel buffers.
  const double local_words =
      static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(g.ranks()) +
      2.0 * static_cast<double>(n * nb) / std::sqrt(static_cast<double>(g.ranks()));
  for (int r = 0; r < m.ranks(); ++r) m.alloc(r, local_words);

  // Latency chains: partial pivoting serializes one reduction + one
  // broadcast per COLUMN (the O(N) latency the paper's tournament pivoting
  // removes); the row swaps add one hop per pivot unless handled locally;
  // the update adds the three panel broadcasts per step.
  const double col_chain =
      2.0 * std::ceil(std::log2(static_cast<double>(std::max(2, g.pr)))) + 1.0;
  const double update_chain =
      2.0 * std::ceil(std::log2(static_cast<double>(std::max(2, g.pc)))) +
      std::ceil(std::log2(static_cast<double>(std::max(2, g.pr))));

  Lu2DResultT<T> result;
  for (index_t k0 = 0; k0 < n; k0 += nb) {
    const index_t kb = std::min(nb, n - k0);
    m.charge_chain(static_cast<double>(kb) * col_chain +
                   (opt.local_swaps ? 0.0 : static_cast<double>(kb)) + update_chain);
    lu_panel(run, k0, kb, result.ipiv, opt);
    lu_apply_swaps(run, k0, kb, result.ipiv, opt);
    lu_update(run, k0, kb);
  }
  for (int r = 0; r < m.ranks(); ++r) m.release(r, local_words);
  if (run.real) {
    result.factors = std::move(run.a);
    if (!std::isfinite(run.health.min_pivot)) run.health.min_pivot = 0.0;
    result.health = run.health;
  }
  return result;
}

template <typename T>
void chol_update(Run2D<T>& run, index_t k0, index_t kb) {
  run.m.annotate("chol-panel-update");
  const index_t rest = run.n - (k0 + kb);
  const int prow0 = run.prow_of_row(k0);
  const int pcol0 = run.pcol_of_col(k0);
  const int owner = run.g.rank_of(prow0, pcol0);
  // potrf of the diagonal block on its owner, broadcast down the column for
  // the panel trsm.
  run.m.charge_flops(owner, static_cast<double>(kb * kb * kb) / 3.0);
  if (run.g.pr > 1) {
    xsim::comm::broadcast(run.m, run.col_group(pcol0), static_cast<std::size_t>(prow0),
                          static_cast<double>(kb * kb));
  }
  if (run.real) {
    for (index_t i = 0; i < kb; ++i) {
      for (index_t j = 0; j <= i; ++j) {
        if (!std::isfinite(static_cast<double>(run.a(k0 + i, k0 + j)))) {
          throw status_error(Status(
              StatusCode::kNonFinite,
              "non-finite value in the diagonal block entering potrf",
              static_cast<long long>(k0 / run.nb)));
        }
      }
    }
    if (xblas::potrf<T>(run.a.block(k0, k0, kb, kb)) != 0) {
      throw status_error(Status(
          StatusCode::kNotPositiveDefinite,
          "diagonal block is not positive definite",
          static_cast<long long>(k0 / run.nb)));
    }
  }
  if (rest > 0) {
    // Panel trsm L21 = A21 L11^{-T} on the owner process column.
    for (int r = 0; r < run.g.pr; ++r) {
      const auto rows = static_cast<double>(run.local_rows(k0 + kb, r));
      if (rows > 0) {
        run.m.charge_flops(run.g.rank_of(r, pcol0),
                           rows * static_cast<double>(kb * kb));
      }
    }
    if (run.real) {
      MatrixView<T> l21 = run.a.block(k0 + kb, k0, rest, kb);
      xblas::trsm<T>(Side::Right, UpLo::Lower, Trans::Transpose, Diag::NonUnit,
                     T{1}, run.a.block(k0, k0, kb, kb), l21);
    }
    // L21 along process rows; L21^T along process columns (for the syrk).
    for (int r = 0; r < run.g.pr; ++r) {
      const auto rows = static_cast<double>(run.local_rows(k0 + kb, r));
      if (rows > 0 && run.g.pc > 1) {
        xsim::comm::broadcast(run.m, run.row_group(r), static_cast<std::size_t>(pcol0),
                              rows * static_cast<double>(kb));
      }
    }
    for (int c = 0; c < run.g.pc; ++c) {
      const auto cols = static_cast<double>(run.local_cols(k0 + kb, c));
      if (cols > 0 && run.g.pr > 1) {
        xsim::comm::broadcast(run.m, run.col_group(c), static_cast<std::size_t>(prow0),
                              static_cast<double>(kb) * cols);
      }
    }
    // Symmetric local update (lower tiles only: half the gemm flops).
    for (int r = 0; r < run.g.pr; ++r) {
      for (int c = 0; c < run.g.pc; ++c) {
        const auto rows = static_cast<double>(run.local_rows(k0 + kb, r));
        const auto cols = static_cast<double>(run.local_cols(k0 + kb, c));
        if (rows > 0 && cols > 0) {
          run.m.charge_flops(run.g.rank_of(r, c), rows * cols * static_cast<double>(kb));
        }
      }
    }
    if (run.real) {
      xblas::syrk<T>(UpLo::Lower, Trans::None, T{-1},
                     run.a.block(k0 + kb, k0, rest, kb), T{1},
                     run.a.block(k0 + kb, k0 + kb, rest, rest));
    }
  }
  run.m.step_barrier();
}

template <typename T>
Matrix<T> run_chol(xsim::Machine& m, const grid::Grid2D& g, index_t n,
                   ConstMatrixView<T> a, const Baseline2DOptions& opt) {
  expects(g.ranks() == m.ranks(), "grid must match the machine");
  expects(n >= 1, "matrix must be non-empty");
  const index_t nb = opt.block_size > 0 ? opt.block_size : 64;
  Run2D<T> run{m, g, n, nb, m.real(), Matrix<T>()};
  if (run.real) {
    expects(a.rows() == n && a.cols() == n, "matrix must be square");
    run.a = Matrix<T>(n, n, T{});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j <= i; ++j) {
        const T val = a(i, j);
        if (!std::isfinite(static_cast<double>(val))) {
          throw status_error(Status(
              StatusCode::kNonFinite, "input matrix contains a non-finite value"));
        }
        run.a(i, j) = val;
      }
    }
  }
  const double local_words =
      static_cast<double>(n) * static_cast<double>(n) /
          (2.0 * static_cast<double>(g.ranks())) +
      2.0 * static_cast<double>(n * nb) / std::sqrt(static_cast<double>(g.ranks()));
  for (int r = 0; r < m.ranks(); ++r) m.alloc(r, local_words);
  // Cholesky has no pivot chain: just the per-panel broadcasts.
  const double panel_chain =
      2.0 * std::ceil(std::log2(static_cast<double>(std::max(2, g.pr)))) +
      std::ceil(std::log2(static_cast<double>(std::max(2, g.pc))));
  try {
    for (index_t k0 = 0; k0 < n; k0 += nb) {
      const index_t kb = std::min(nb, n - k0);
      m.charge_chain(panel_chain);
      chol_update(run, k0, kb);
    }
  } catch (...) {
    for (int r = 0; r < m.ranks(); ++r) m.release(r, local_words);
    throw;
  }
  for (int r = 0; r < m.ranks(); ++r) m.release(r, local_words);
  Matrix<T> out;
  if (run.real) {
    out = Matrix<T>(n, n, T{});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j <= i; ++j) out(i, j) = run.a(i, j);
    }
  }
  return out;
}

template <typename T>
Result<Lu2DResultT<T>> try_lu2d(xsim::Machine& m, const grid::Grid2D& g,
                                ConstMatrixView<T> a,
                                const Baseline2DOptions& opt) {
  try {
    expects(m.real(), "try_scalapack_lu requires Real mode");
    Lu2DResultT<T> r = run_lu<T>(m, g, a.rows(), a, opt);
    if (!r.health.ok()) {
      Status st = r.health.to_status();
      return Result<Lu2DResultT<T>>(std::move(st), std::move(r));
    }
    return std::move(r);
  } catch (const status_error& e) {
    return e.status();
  } catch (const contract_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

template <typename T>
Result<Matrix<T>> try_chol2d(xsim::Machine& m, const grid::Grid2D& g,
                             ConstMatrixView<T> a, const Baseline2DOptions& opt) {
  try {
    expects(m.real(), "try_scalapack_cholesky requires Real mode");
    return run_chol<T>(m, g, a.rows(), a, opt);
  } catch (const status_error& e) {
    return e.status();
  } catch (const contract_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

}  // namespace

Lu2DResult scalapack_lu(xsim::Machine& m, const grid::Grid2D& g, ConstViewD a,
                        const Baseline2DOptions& opt) {
  expects(m.real(), "scalapack_lu with a matrix requires Real mode");
  return run_lu<double>(m, g, a.rows(), a, opt);
}

Lu2DResultF scalapack_lu(xsim::Machine& m, const grid::Grid2D& g, ConstViewF a,
                         const Baseline2DOptions& opt) {
  expects(m.real(), "scalapack_lu with a matrix requires Real mode");
  return run_lu<float>(m, g, a.rows(), a, opt);
}

Result<Lu2DResult> try_scalapack_lu(xsim::Machine& m, const grid::Grid2D& g,
                                    ConstViewD a, const Baseline2DOptions& opt) {
  return try_lu2d<double>(m, g, a, opt);
}

Result<Lu2DResultF> try_scalapack_lu(xsim::Machine& m, const grid::Grid2D& g,
                                     ConstViewF a, const Baseline2DOptions& opt) {
  return try_lu2d<float>(m, g, a, opt);
}

Lu2DResult scalapack_lu_trace(xsim::Machine& m, const grid::Grid2D& g, index_t n,
                              const Baseline2DOptions& opt) {
  expects(!m.real(), "scalapack_lu_trace requires Trace mode");
  return run_lu<double>(m, g, n, ConstViewD(), opt);
}

MatrixD scalapack_cholesky(xsim::Machine& m, const grid::Grid2D& g, ConstViewD a,
                           const Baseline2DOptions& opt) {
  expects(m.real(), "scalapack_cholesky with a matrix requires Real mode");
  return run_chol<double>(m, g, a.rows(), a, opt);
}

MatrixF scalapack_cholesky(xsim::Machine& m, const grid::Grid2D& g, ConstViewF a,
                           const Baseline2DOptions& opt) {
  expects(m.real(), "scalapack_cholesky with a matrix requires Real mode");
  return run_chol<float>(m, g, a.rows(), a, opt);
}

Result<MatrixD> try_scalapack_cholesky(xsim::Machine& m, const grid::Grid2D& g,
                                       ConstViewD a, const Baseline2DOptions& opt) {
  return try_chol2d<double>(m, g, a, opt);
}

Result<MatrixF> try_scalapack_cholesky(xsim::Machine& m, const grid::Grid2D& g,
                                       ConstViewF a, const Baseline2DOptions& opt) {
  return try_chol2d<float>(m, g, a, opt);
}

void scalapack_cholesky_trace(xsim::Machine& m, const grid::Grid2D& g, index_t n,
                              const Baseline2DOptions& opt) {
  expects(!m.real(), "scalapack_cholesky_trace requires Trace mode");
  run_chol<double>(m, g, n, ConstViewD(), opt);
}

}  // namespace conflux::baselines
