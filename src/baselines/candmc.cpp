#include "baselines/candmc.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace conflux::baselines {

namespace {

int pick_replication(const xsim::Machine& m, index_t n, int requested) {
  if (requested > 0) return requested;
  const double p = m.ranks();
  const double c = std::clamp(p * m.memory() / (static_cast<double>(n) * n), 1.0,
                              std::cbrt(p));
  return std::max(1, static_cast<int>(c));
}

struct PhaseShape {
  double pivot_frac;    ///< tournament pivoting + pivot-row movement
  double panel_frac;    ///< L/U (or L/L^T) panel broadcasts across the grid
  double update_frac;   ///< trailing-matrix communication
  double reduce_frac;   ///< inter-layer reductions of replicated panels
  double model_coeff;   ///< leading coefficient of N^3/(P sqrt(M))
  double flops_per_n3;  ///< total flops / N^3 (2/3 for LU, 1/3 for Cholesky)
};

// Replay sqrt(cP) big-block panel steps; each step charges every rank the
// calibrated per-phase volume so the aggregate equals
// model_coeff * N^3 / (P sqrt(M)) (equivalently model_coeff*N^2/sqrt(cP)
// with c = P M / N^2).
void run_25d_schedule(xsim::Machine& m, index_t n, int c, const PhaseShape& shape) {
  const double p = m.ranks();
  const double nn = static_cast<double>(n);
  const auto steps = std::max<index_t>(
      1, static_cast<index_t>(std::llround(std::sqrt(static_cast<double>(c) * p))));
  const double big_block = nn / static_cast<double>(steps);
  // Normalize the per-step weights n_t * B so their sum is exactly N^2/2,
  // making the aggregate equal coeff * N^2 / sqrt(cP) to machine precision.
  double weight_sum = 0.0;
  double flop_weight_sum = 0.0;
  for (index_t t = 0; t < steps; ++t) {
    const double n_t = nn - static_cast<double>(t) * big_block;
    weight_sum += n_t * big_block;
    flop_weight_sum += n_t * n_t * big_block;
  }
  const double k = shape.model_coeff * nn * nn /
                   (std::sqrt(static_cast<double>(c) * p) * weight_sum);
  // Per-step flops scaled so the total is exactly flops_per_n3 * N^3 / P.
  const double kf = shape.flops_per_n3 * nn * nn * nn / (flop_weight_sum * p);
  const auto log_p = std::max(1.0, std::log2(p));

  const double mem_words = nn * nn * static_cast<double>(c) / p;
  for (int r = 0; r < m.ranks(); ++r) m.alloc(r, mem_words);
  for (index_t t = 0; t < steps; ++t) {
    m.charge_chain(3.0 * log_p + static_cast<double>(c));
    const double n_t = nn - static_cast<double>(t) * big_block;
    const double w = k * n_t * big_block;
    const double flops = kf * n_t * n_t * big_block;
    const auto phase = [&](const char* label, double frac, long long msgs) {
      m.annotate(label);
      for (int r = 0; r < m.ranks(); ++r) {
        m.charge_send(r, frac * w, msgs);
        m.charge_recv(r, frac * w, msgs);
      }
      m.step_barrier();
    };
    phase("pivot", shape.pivot_frac, static_cast<long long>(log_p));
    phase("panel", shape.panel_frac, static_cast<long long>(log_p));
    phase("update", shape.update_frac, 2);
    m.annotate("compute");
    for (int r = 0; r < m.ranks(); ++r) m.charge_flops(r, flops);
    m.step_barrier();
    phase("reduce", shape.reduce_frac, static_cast<long long>(c > 1 ? c - 1 : 0));
  }
  for (int r = 0; r < m.ranks(); ++r) m.release(r, mem_words);
}

}  // namespace

void candmc_lu_trace(xsim::Machine& m, index_t n, const Candmc25DOptions& opt) {
  expects(!m.real(), "CANDMC baseline is a schedule-level trace");
  const int c = pick_replication(m, n, opt.replication);
  // [61]: 5 N^3/(P sqrt(M)); the split reflects the cost analysis there —
  // tournament pivoting and pivot-row collection (~2 parts), redundant
  // full-width panel broadcasts (~2 parts), and layer reductions (~1 part).
  run_25d_schedule(m, n, c,
                   PhaseShape{.pivot_frac = 0.4,
                              .panel_frac = 0.4,
                              .update_frac = 0.0,
                              .reduce_frac = 0.2,
                              .model_coeff = 5.0,
                              .flops_per_n3 = 2.0 / 3.0});
}

void capital_cholesky_trace(xsim::Machine& m, index_t n,
                            const Candmc25DOptions& opt) {
  expects(!m.real(), "CAPITAL baseline is a schedule-level trace");
  const int c = pick_replication(m, n, opt.replication);
  // [33]: 45 N^3 / (8 P sqrt(M)); no pivoting — the CholeskyQR2 panels are
  // broadcast-heavy instead.
  run_25d_schedule(m, n, c,
                   PhaseShape{.pivot_frac = 0.0,
                              .panel_frac = 0.6,
                              .update_frac = 0.2,
                              .reduce_frac = 0.2,
                              .model_coeff = 45.0 / 8.0,
                              .flops_per_n3 = 1.0 / 3.0});
}

}  // namespace conflux::baselines
