#include "pebbles/xpartition.hpp"

#include <algorithm>
#include <set>

namespace conflux::pebbles {

long long dominator_bound(const CDag& g, std::span<const int> part) {
  std::set<int> in_part(part.begin(), part.end());
  std::set<int> boundary;
  for (int v : part) {
    for (int p : g.preds(v)) {
      if (!in_part.contains(p)) boundary.insert(p);
    }
  }
  return static_cast<long long>(boundary.size());
}

long long min_set_size(const CDag& g, std::span<const int> part) {
  std::set<int> in_part(part.begin(), part.end());
  long long count = 0;
  for (int v : part) {
    bool has_internal_succ = false;
    for (int s : g.succs(v)) {
      if (in_part.contains(s)) {
        has_internal_succ = true;
        break;
      }
    }
    if (!has_internal_succ) ++count;
  }
  return count;
}

bool validate_xpartition(const CDag& g, const XPartition& p, long long x,
                         std::string* why) {
  const auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // Disjoint cover of the compute vertices.
  std::vector<int> part_of(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t s = 0; s < p.parts.size(); ++s) {
    for (int v : p.parts[s]) {
      if (v < 0 || v >= g.num_vertices()) return fail("vertex out of range");
      if (g.is_input(v)) return fail("input vertex inside a part");
      if (part_of[static_cast<std::size_t>(v)] != -1) return fail("parts overlap");
      part_of[static_cast<std::size_t>(v)] = static_cast<int>(s);
    }
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_input(v) && part_of[static_cast<std::size_t>(v)] == -1) {
      return fail("compute vertex not covered: " + g.label(v));
    }
  }
  // Size conditions.
  for (std::size_t s = 0; s < p.parts.size(); ++s) {
    if (dominator_bound(g, p.parts[s]) > x) {
      return fail("dominator set exceeds X in part " + std::to_string(s));
    }
    if (min_set_size(g, p.parts[s]) > x) {
      return fail("minimum set exceeds X in part " + std::to_string(s));
    }
  }
  // Acyclic quotient graph: Kahn over part-level edges.
  const auto nparts = p.parts.size();
  std::vector<std::set<int>> out(nparts);
  std::vector<int> indeg(nparts, 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.is_input(v)) continue;
    const int sv = part_of[static_cast<std::size_t>(v)];
    for (int t : g.succs(v)) {
      if (g.is_input(t)) continue;
      const int st = part_of[static_cast<std::size_t>(t)];
      if (sv != st && out[static_cast<std::size_t>(sv)].insert(st).second) {
        ++indeg[static_cast<std::size_t>(st)];
      }
    }
  }
  std::vector<int> queue;
  for (std::size_t s = 0; s < nparts; ++s) {
    if (indeg[s] == 0) queue.push_back(static_cast<int>(s));
  }
  std::size_t seen = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    ++seen;
    for (int t : out[static_cast<std::size_t>(queue[head])]) {
      if (--indeg[static_cast<std::size_t>(t)] == 0) queue.push_back(t);
    }
  }
  if (seen != nparts) return fail("cyclic dependencies between parts");
  return true;
}

XPartition partition_from_schedule(const CDag& g, std::span<const Move> schedule,
                                   int memory, long long x) {
  expects(x > memory, "X must exceed M");
  XPartition result;
  std::vector<int> current;
  long long io_in_segment = 0;
  const long long budget = x - memory;
  for (const Move& mv : schedule) {
    if (mv.type == MoveType::Load || mv.type == MoveType::Store) {
      if (io_in_segment + 1 > budget && !current.empty()) {
        result.parts.push_back(std::move(current));
        current.clear();
        io_in_segment = 0;
      }
      ++io_in_segment;
    } else if (mv.type == MoveType::Compute) {
      current.push_back(mv.vertex);
    }
  }
  if (!current.empty()) result.parts.push_back(std::move(current));
  return result;
}

}  // namespace conflux::pebbles
