// Computational DAGs and the red-blue pebble game (Section 2.3).
//
// Vertices are *versions* of array elements: a statement that overwrites
// A[i,j] produces a fresh vertex with an edge from the previous version.
// The builders below construct exactly the cDAGs of Figure 3 (LU),
// Listing 1 (Cholesky) and the classic matmul accumulation-chain cDAG.
#pragma once

#include <string>
#include <vector>

#include "support/check.hpp"

namespace conflux::pebbles {

class CDag {
 public:
  /// Add a vertex; inputs have no predecessors by construction.
  int add_vertex(bool is_input, std::string label = "");

  /// Add a dependency edge u -> v (u must be pebbled before v is computed).
  void add_edge(int u, int v);

  int num_vertices() const { return static_cast<int>(preds_.size()); }
  bool is_input(int v) const { return is_input_[static_cast<std::size_t>(v)]; }
  const std::vector<int>& preds(int v) const { return preds_[static_cast<std::size_t>(v)]; }
  const std::vector<int>& succs(int v) const { return succs_[static_cast<std::size_t>(v)]; }
  const std::string& label(int v) const { return labels_[static_cast<std::size_t>(v)]; }

  /// All vertices with no incoming edges (must coincide with is_input).
  std::vector<int> inputs() const;

  /// All vertices with no outgoing edges.
  std::vector<int> outputs() const;

  /// A topological order (Kahn); throws if the graph has a cycle.
  std::vector<int> topological_order() const;

  /// Largest in-degree: lower limit (plus one) on usable fast-memory size.
  int max_in_degree() const;

 private:
  std::vector<std::vector<int>> preds_;
  std::vector<std::vector<int>> succs_;
  std::vector<bool> is_input_;
  std::vector<std::string> labels_;
};

/// Matmul C = A*B on n x n matrices: accumulation chain per C element;
/// n^3 compute vertices, 2n^2 + n^2 inputs (A, B, C's initial versions).
CDag build_matmul_cdag(int n);

/// In-place LU without pivoting (Figure 3): statements S1 and S2.
CDag build_lu_cdag(int n);

/// Cholesky (Listing 1): statements S1, S2, S3 over the lower triangle.
CDag build_cholesky_cdag(int n);

/// Counts of compute vertices per statement for the builders above; used by
/// tests to cross-check against the Section 6 |V_i| formulas.
struct StatementCounts {
  long long s1 = 0;
  long long s2 = 0;
  long long s3 = 0;
  long long total() const { return s1 + s2 + s3; }
};

StatementCounts lu_statement_counts(int n);
StatementCounts cholesky_statement_counts(int n);

}  // namespace conflux::pebbles
