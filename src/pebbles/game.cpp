#include "pebbles/game.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace conflux::pebbles {

GameStats run_sequential_game(const CDag& g, int memory,
                              std::span<const Move> schedule) {
  expects(memory >= 1, "need at least one red pebble");
  const int n = g.num_vertices();
  std::vector<bool> red(static_cast<std::size_t>(n), false);
  std::vector<bool> blue(static_cast<std::size_t>(n), false);
  std::vector<bool> computed(static_cast<std::size_t>(n), false);
  for (int v = 0; v < n; ++v) {
    if (g.is_input(v)) blue[static_cast<std::size_t>(v)] = true;
  }
  int red_count = 0;
  GameStats stats;

  for (const Move& mv : schedule) {
    const auto v = static_cast<std::size_t>(mv.vertex);
    check(mv.vertex >= 0 && mv.vertex < n, "move references unknown vertex");
    switch (mv.type) {
      case MoveType::Load:
        check(blue[v], "load requires a blue pebble");
        if (!red[v]) {
          check(red_count < memory, "fast memory overfull on load");
          red[v] = true;
          ++red_count;
        }
        ++stats.loads;
        break;
      case MoveType::Store:
        check(red[v], "store requires a red pebble");
        blue[v] = true;
        ++stats.stores;
        break;
      case MoveType::Compute: {
        check(!g.is_input(mv.vertex), "inputs are not computed");
        for (int p : g.preds(mv.vertex)) {
          check(red[static_cast<std::size_t>(p)], "compute with non-resident pred");
        }
        if (!red[v]) {
          check(red_count < memory, "fast memory overfull on compute");
          red[v] = true;
          ++red_count;
        }
        computed[v] = true;
        ++stats.computes;
        break;
      }
      case MoveType::Discard:
        check(red[v], "discard requires a red pebble");
        red[v] = false;
        --red_count;
        break;
      case MoveType::Receive:
        unreachable("Receive is a parallel-game move");
    }
  }
  for (int v : g.outputs()) {
    check(blue[static_cast<std::size_t>(v)], "output must end with a blue pebble");
  }
  return stats;
}

GameStats run_parallel_game(const CDag& g, int num_procs, int memory,
                            std::span<const int> owner, std::span<const Move> schedule,
                            std::vector<long long>* rank_receives) {
  expects(num_procs >= 1 && memory >= 1, "bad machine shape");
  const int n = g.num_vertices();
  expects(static_cast<int>(owner.size()) == n, "owner vector must cover all vertices");

  // pebbled[p] is processor p's red set; no blue pebbles exist (Section 5).
  std::vector<std::set<int>> pebbled(static_cast<std::size_t>(num_procs));
  std::vector<bool> anywhere(static_cast<std::size_t>(n), false);
  for (int v = 0; v < n; ++v) {
    if (g.is_input(v)) {
      const int p = owner[static_cast<std::size_t>(v)];
      check(p >= 0 && p < num_procs, "input owner out of range");
      pebbled[static_cast<std::size_t>(p)].insert(v);
      anywhere[static_cast<std::size_t>(v)] = true;
    }
  }
  for (int p = 0; p < num_procs; ++p) {
    check(static_cast<int>(pebbled[static_cast<std::size_t>(p)].size()) <= memory,
          "initial distribution exceeds local memory");
  }

  GameStats stats;
  std::vector<long long> receives(static_cast<std::size_t>(num_procs), 0);
  for (const Move& mv : schedule) {
    check(mv.vertex >= 0 && mv.vertex < n, "move references unknown vertex");
    check(mv.proc >= 0 && mv.proc < num_procs, "move references unknown processor");
    auto& mine = pebbled[static_cast<std::size_t>(mv.proc)];
    switch (mv.type) {
      case MoveType::Compute: {
        check(!g.is_input(mv.vertex), "inputs are not computed");
        for (int p : g.preds(mv.vertex)) {
          check(mine.contains(p), "compute with non-local pred");
        }
        if (!mine.contains(mv.vertex)) {
          check(static_cast<int>(mine.size()) < memory, "local memory overfull");
          mine.insert(mv.vertex);
        }
        anywhere[static_cast<std::size_t>(mv.vertex)] = true;
        ++stats.computes;
        break;
      }
      case MoveType::Receive: {
        check(anywhere[static_cast<std::size_t>(mv.vertex)],
              "receive requires the vertex pebbled somewhere");
        if (!mine.contains(mv.vertex)) {
          check(static_cast<int>(mine.size()) < memory, "local memory overfull");
          mine.insert(mv.vertex);
        }
        ++stats.receives;
        ++receives[static_cast<std::size_t>(mv.proc)];
        break;
      }
      case MoveType::Discard:
        check(mine.contains(mv.vertex), "discard requires a local pebble");
        mine.erase(mv.vertex);
        break;
      case MoveType::Load:
      case MoveType::Store:
        unreachable("Load/Store are sequential-game moves");
    }
  }
  for (int v : g.outputs()) {
    bool held = false;
    for (int p = 0; p < num_procs; ++p) {
      if (pebbled[static_cast<std::size_t>(p)].contains(v)) held = true;
    }
    check(held, "output must be pebbled by some processor at the end");
  }
  if (rank_receives != nullptr) *rank_receives = std::move(receives);
  return stats;
}

std::vector<Move> greedy_schedule(const CDag& g, int memory) {
  expects(memory >= g.max_in_degree() + 1,
          "fast memory too small for the widest compute");
  const int n = g.num_vertices();
  const std::vector<int> order = g.topological_order();

  // position[v] = rank in the compute order (inputs get the position of
  // their first use); next-use lists drive Belady eviction.
  std::vector<long long> compute_pos(static_cast<std::size_t>(n), -1);
  {
    long long pos = 0;
    for (int v : order) {
      if (!g.is_input(v)) compute_pos[static_cast<std::size_t>(v)] = pos++;
    }
  }
  std::vector<std::vector<long long>> uses(static_cast<std::size_t>(n));
  for (int v : order) {
    if (g.is_input(v)) continue;
    for (int p : g.preds(v)) {
      uses[static_cast<std::size_t>(p)].push_back(compute_pos[static_cast<std::size_t>(v)]);
    }
  }
  for (auto& u : uses) std::sort(u.begin(), u.end());
  std::vector<std::size_t> use_cursor(static_cast<std::size_t>(n), 0);
  const auto next_use = [&](int v) -> long long {
    const auto& u = uses[static_cast<std::size_t>(v)];
    auto& cur = use_cursor[static_cast<std::size_t>(v)];
    while (cur < u.size()) {
      return u[cur];
    }
    return std::numeric_limits<long long>::max();
  };

  std::vector<Move> schedule;
  std::vector<bool> red(static_cast<std::size_t>(n), false);
  std::vector<bool> blue(static_cast<std::size_t>(n), false);
  for (int v = 0; v < n; ++v) {
    if (g.is_input(v)) blue[static_cast<std::size_t>(v)] = true;
  }
  // Max-heap of (next_use, vertex) for eviction; entries are lazily
  // invalidated when the cursor advances.
  using Entry = std::pair<long long, int>;
  std::priority_queue<Entry> evict_heap;
  int red_count = 0;

  const auto make_room = [&](int needed) {
    while (red_count + needed > memory) {
      check(!evict_heap.empty(), "nothing to evict");
      const auto [use, v] = evict_heap.top();
      evict_heap.pop();
      if (!red[static_cast<std::size_t>(v)]) continue;   // stale entry
      if (use != next_use(v)) {
        evict_heap.emplace(next_use(v), v);  // refresh stale priority
        continue;
      }
      // Victim: store first if it will be needed again (or is a terminal
      // output) and has no blue pebble yet.
      const bool needed_later = next_use(v) != std::numeric_limits<long long>::max();
      const bool is_output = g.succs(v).empty();
      if (!blue[static_cast<std::size_t>(v)] && (needed_later || is_output)) {
        schedule.push_back({MoveType::Store, v, 0});
        blue[static_cast<std::size_t>(v)] = true;
      }
      schedule.push_back({MoveType::Discard, v, 0});
      red[static_cast<std::size_t>(v)] = false;
      --red_count;
    }
  };

  long long pos = 0;
  for (int v : order) {
    if (g.is_input(v)) continue;
    // Bring all predecessors into fast memory.
    for (int p : g.preds(v)) {
      if (red[static_cast<std::size_t>(p)]) continue;
      check(blue[static_cast<std::size_t>(p)], "greedy invariant: evicted values are stored");
      make_room(1);
      schedule.push_back({MoveType::Load, p, 0});
      red[static_cast<std::size_t>(p)] = true;
      ++red_count;
      evict_heap.emplace(next_use(p), p);
    }
    make_room(1);
    schedule.push_back({MoveType::Compute, v, 0});
    red[static_cast<std::size_t>(v)] = true;
    ++red_count;
    ++pos;
    // Advance use cursors of the predecessors past this position.
    for (int p : g.preds(v)) {
      auto& cur = use_cursor[static_cast<std::size_t>(p)];
      const auto& u = uses[static_cast<std::size_t>(p)];
      while (cur < u.size() && u[cur] < pos) ++cur;
      if (red[static_cast<std::size_t>(p)]) evict_heap.emplace(next_use(p), p);
    }
    evict_heap.emplace(next_use(v), v);
  }

  // Store all outputs that are not yet in slow memory.
  for (int v : g.outputs()) {
    if (!blue[static_cast<std::size_t>(v)]) {
      if (!red[static_cast<std::size_t>(v)]) {
        // Must still be resident: outputs have no successors, so they are
        // only evicted via make_room which stores them first.
        unreachable("output evicted without store");
      }
      schedule.push_back({MoveType::Store, v, 0});
      blue[static_cast<std::size_t>(v)] = true;
    }
  }
  return schedule;
}

}  // namespace conflux::pebbles
