// Red-blue pebble game executor and a greedy pebbling scheduler.
//
// The sequential game follows Hong & Kung's rules (Section 2.3.1): at most M
// red pebbles, inputs start blue, loads require a blue pebble, computes
// require all predecessors red, outputs must end blue. The parallel variant
// implements the Section 5 rules: one private red-pebble set per processor,
// no shared memory, and a communication move that copies a pebbled vertex
// into another processor's fast memory at unit I/O cost.
#pragma once

#include <span>
#include <vector>

#include "pebbles/cdag.hpp"

namespace conflux::pebbles {

enum class MoveType {
  Load,     ///< blue -> add red (sequential game)
  Store,    ///< red -> add blue (sequential game)
  Compute,  ///< all preds red -> add red
  Discard,  ///< remove red (free)
  Receive,  ///< parallel game: copy a vertex pebbled elsewhere (1 I/O)
};

struct Move {
  MoveType type;
  int vertex = 0;
  int proc = 0;  ///< acting processor (parallel game only)
};

struct GameStats {
  long long loads = 0;
  long long stores = 0;
  long long receives = 0;
  long long computes = 0;
  long long io() const { return loads + stores + receives; }
};

/// Validate and execute a sequential schedule with fast memory M.
/// Throws contract_error on any rule violation (over-full memory, computing
/// with a missing predecessor, loading a non-blue vertex, ...). Requires all
/// graph outputs to carry a blue pebble when the schedule ends.
GameStats run_sequential_game(const CDag& g, int memory, std::span<const Move> schedule);

/// Validate and execute a parallel schedule: `owner[v]` gives the processor
/// initially holding each input vertex. Requires every graph output to be
/// pebbled by some processor at the end. Returns aggregate stats; per-rank
/// receive counts are written to rank_receives if non-null.
GameStats run_parallel_game(const CDag& g, int num_procs, int memory,
                            std::span<const int> owner, std::span<const Move> schedule,
                            std::vector<long long>* rank_receives = nullptr);

/// Greedy sequential scheduler: computes vertices in topological order,
/// loading missing predecessors and evicting with Belady's rule (farthest
/// next use), storing evicted values that are still needed. Produces a valid
/// schedule for any M >= max_in_degree + 1.
std::vector<Move> greedy_schedule(const CDag& g, int memory);

}  // namespace conflux::pebbles
