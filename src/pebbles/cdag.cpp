#include "pebbles/cdag.hpp"

#include <string>

namespace conflux::pebbles {

int CDag::add_vertex(bool is_input, std::string label) {
  preds_.emplace_back();
  succs_.emplace_back();
  is_input_.push_back(is_input);
  labels_.push_back(std::move(label));
  return num_vertices() - 1;
}

void CDag::add_edge(int u, int v) {
  expects(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices(),
          "edge endpoints must exist");
  expects(u != v, "no self loops");
  expects(!is_input_[static_cast<std::size_t>(v)], "inputs cannot have predecessors");
  preds_[static_cast<std::size_t>(v)].push_back(u);
  succs_[static_cast<std::size_t>(u)].push_back(v);
}

std::vector<int> CDag::inputs() const {
  std::vector<int> result;
  for (int v = 0; v < num_vertices(); ++v) {
    if (is_input(v)) result.push_back(v);
  }
  return result;
}

std::vector<int> CDag::outputs() const {
  std::vector<int> result;
  for (int v = 0; v < num_vertices(); ++v) {
    if (succs(v).empty()) result.push_back(v);
  }
  return result;
}

std::vector<int> CDag::topological_order() const {
  std::vector<int> indeg(static_cast<std::size_t>(num_vertices()), 0);
  for (int v = 0; v < num_vertices(); ++v) {
    indeg[static_cast<std::size_t>(v)] = static_cast<int>(preds(v).size());
  }
  std::vector<int> queue;
  for (int v = 0; v < num_vertices(); ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(num_vertices()));
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int v = queue[head];
    order.push_back(v);
    for (int s : succs(v)) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) queue.push_back(s);
    }
  }
  check(static_cast<int>(order.size()) == num_vertices(), "cDAG has a cycle");
  return order;
}

int CDag::max_in_degree() const {
  int best = 0;
  for (int v = 0; v < num_vertices(); ++v) {
    best = std::max(best, static_cast<int>(preds(v).size()));
  }
  return best;
}

namespace {
std::string idx2(const char* base, int i, int j) {
  return std::string(base) + "[" + std::to_string(i) + "," + std::to_string(j) + "]";
}
}  // namespace

CDag build_matmul_cdag(int n) {
  expects(n >= 1, "n >= 1");
  CDag g;
  std::vector<std::vector<int>> a(static_cast<std::size_t>(n)),
      b(static_cast<std::size_t>(n)), c(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i)].push_back(g.add_vertex(true, idx2("A", i, j)));
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b[static_cast<std::size_t>(i)].push_back(g.add_vertex(true, idx2("B", i, j)));
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      c[static_cast<std::size_t>(i)].push_back(g.add_vertex(true, idx2("C", i, j)));
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      int cur = c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      for (int k = 0; k < n; ++k) {
        const int v = g.add_vertex(false, idx2("C", i, j) + "@" + std::to_string(k));
        g.add_edge(cur, v);
        g.add_edge(a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)], v);
        g.add_edge(b[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)], v);
        cur = v;
      }
    }
  }
  return g;
}

CDag build_lu_cdag(int n) {
  expects(n >= 1, "n >= 1");
  CDag g;
  // cur(i,j) = vertex holding the newest version of A[i,j].
  std::vector<int> cur(static_cast<std::size_t>(n * n));
  const auto at = [&](int i, int j) -> int& {
    return cur[static_cast<std::size_t>(i * n + j)];
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) at(i, j) = g.add_vertex(true, idx2("A", i, j));
  }
  for (int k = 0; k < n; ++k) {
    // S1: A[i,k] /= A[k,k].
    for (int i = k + 1; i < n; ++i) {
      const int v = g.add_vertex(false, idx2("L", i, k));
      g.add_edge(at(i, k), v);
      g.add_edge(at(k, k), v);
      at(i, k) = v;
    }
    // S2: A[i,j] -= A[i,k] * A[k,j].
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j < n; ++j) {
        const int v = g.add_vertex(false, idx2("A", i, j) + "@" + std::to_string(k));
        g.add_edge(at(i, j), v);
        g.add_edge(at(i, k), v);
        g.add_edge(at(k, j), v);
        at(i, j) = v;
      }
    }
  }
  return g;
}

CDag build_cholesky_cdag(int n) {
  expects(n >= 1, "n >= 1");
  CDag g;
  // Only the lower triangle is represented.
  std::vector<int> cur(static_cast<std::size_t>(n * n), -1);
  const auto at = [&](int i, int j) -> int& {
    return cur[static_cast<std::size_t>(i * n + j)];
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) at(i, j) = g.add_vertex(true, idx2("A", i, j));
  }
  for (int k = 0; k < n; ++k) {
    // S1: L[k,k] = sqrt(L[k,k]).
    const int dk = g.add_vertex(false, idx2("Ld", k, k));
    g.add_edge(at(k, k), dk);
    at(k, k) = dk;
    // S2: L[i,k] /= L[k,k].
    for (int i = k + 1; i < n; ++i) {
      const int v = g.add_vertex(false, idx2("L", i, k));
      g.add_edge(at(i, k), v);
      g.add_edge(at(k, k), v);
      at(i, k) = v;
    }
    // S3: L[i,j] -= L[i,k] * L[j,k] for k < j <= i.
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j <= i; ++j) {
        const int v = g.add_vertex(false, idx2("A", i, j) + "@" + std::to_string(k));
        g.add_edge(at(i, j), v);
        g.add_edge(at(i, k), v);
        g.add_edge(at(j, k), v);
        at(i, j) = v;
      }
    }
  }
  return g;
}

StatementCounts lu_statement_counts(int n) {
  StatementCounts c;
  const long long nn = n;
  c.s1 = nn * (nn - 1) / 2;
  c.s2 = (nn - 1) * nn * (2 * nn - 1) / 6;  // sum_{k} (n-k-1)^2
  return c;
}

StatementCounts cholesky_statement_counts(int n) {
  StatementCounts c;
  const long long nn = n;
  c.s1 = nn;
  c.s2 = nn * (nn - 1) / 2;
  // sum over k of (n-k-1)(n-k)/2 = sum_{m=1}^{n-1} m(m+1)/2.
  long long s3 = 0;
  for (long long m = 1; m < nn; ++m) s3 += m * (m + 1) / 2;
  c.s3 = s3;
  return c;
}

}  // namespace conflux::pebbles
