// X-partitions (Section 2.3.3): partitions of the compute vertices into
// subcomputations with bounded dominator and minimum sets and acyclic
// inter-part dependencies.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pebbles/cdag.hpp"
#include "pebbles/game.hpp"

namespace conflux::pebbles {

struct XPartition {
  /// parts[s] lists the compute (non-input) vertices of subcomputation H_s,
  /// in schedule order.
  std::vector<std::vector<int>> parts;
};

/// Upper bound on |Dom_min(H)|: the distinct predecessors of H outside H.
/// (Any path from a graph input into H crosses this boundary, so it is a
/// valid dominator set; Dom_min can only be smaller.)
long long dominator_bound(const CDag& g, std::span<const int> part);

/// |Min(H)|: vertices of H without a successor inside H.
long long min_set_size(const CDag& g, std::span<const int> part);

/// Check the X-partition conditions: the parts are disjoint, cover every
/// compute vertex, have dominator and minimum sets of size <= X, and the
/// quotient graph is acyclic. Returns true when valid; when `why` is
/// non-null, stores a diagnostic for the first violated condition.
bool validate_xpartition(const CDag& g, const XPartition& p, long long x,
                         std::string* why = nullptr);

/// Build an X-partition from a sequential schedule by cutting it into
/// segments of at most X - M I/O operations ([45], Lemma 2's construction).
/// The resulting partition is valid for any schedule that is itself valid.
XPartition partition_from_schedule(const CDag& g, std::span<const Move> schedule,
                                   int memory, long long x);

}  // namespace conflux::pebbles
