// Autotuner implementation: gemm block sweeps through the active
// microkernel, db/lu_nb sweeps through trsm/getrf, and a small persisted
// JSON store keyed by (isa, scalar type). See autotune.hpp for the model.
#include "blas/autotune.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "blas/blas.hpp"
#include "blas/lapack.hpp"
#include "support/json.hpp"
#include "support/stopwatch.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux::xblas::autotune {

namespace {

// ---- minimal JSON reader --------------------------------------------------
// The tuning file is machine-written by save_entries, but it lives in a
// user cache directory, so loading must survive arbitrary corruption. This
// is a strict little recursive-descent parser for the JSON subset the file
// uses (no \u escapes beyond pass-through, no exponent edge pampering —
// numbers go through strtod).

struct JValue {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;

  const JValue* get(std::string_view key) const {
    if (kind != kObj) return nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JParser {
 public:
  explicit JParser(std::string_view text) : s_(text) {}

  bool parse(JValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // trailing garbage = corrupt
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool eat_lit(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':  // tuning keys/values never need it; skip the 4 digits
            if (pos_ + 4 > s_.size()) return false;
            out->push_back('?');
            pos_ += 4;
            break;
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JValue::kObj;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        std::string key;
        skip_ws();
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!eat(':')) return false;
        JValue v;
        if (!parse_value(&v)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JValue::kArr;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        JValue v;
        if (!parse_value(&v)) return false;
        out->arr.push_back(std::move(v));
        skip_ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out->kind = JValue::kStr;
      return parse_string(&out->str);
    }
    if (eat_lit("true")) {
      out->kind = JValue::kBool;
      out->b = true;
      return true;
    }
    if (eat_lit("false")) {
      out->kind = JValue::kBool;
      out->b = false;
      return true;
    }
    if (eat_lit("null")) {
      out->kind = JValue::kNull;
      return true;
    }
    // number
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    out->kind = JValue::kNum;
    out->num = v;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

index_t jnum_index(const JValue& obj, std::string_view key, index_t fallback) {
  const JValue* v = obj.get(key);
  if (v == nullptr || v->kind != JValue::kNum) return fallback;
  if (!std::isfinite(v->num) || v->num < 0 || v->num > 1e12) return fallback;
  return static_cast<index_t>(v->num);
}

double jnum(const JValue& obj, std::string_view key, double fallback) {
  const JValue* v = obj.get(key);
  if (v == nullptr || v->kind != JValue::kNum) return fallback;
  return v->num;
}

// ---- timing ---------------------------------------------------------------

// Best-of timing over >= 2 reps (after one warmup) until min_time total.
// fn runs one repetition and returns the seconds of its timed section, so
// callers keep input-restoring copies out of the measurement.
template <typename Fn>
double best_seconds(Fn&& fn, double min_time) {
  fn();  // warmup
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (total < min_time || reps < 2) {
    const double s = fn();
    best = std::min(best, s);
    total += s;
    ++reps;
  }
  return best;
}

// RAII save/restore of the process-wide tuning around a sweep.
class TuningGuard {
 public:
  TuningGuard() : saved_(tuning()) {}
  ~TuningGuard() { tuning() = saved_; }
  TuningGuard(const TuningGuard&) = delete;
  TuningGuard& operator=(const TuningGuard&) = delete;

 private:
  Tuning saved_;
};

template <typename T>
void set_gemm_blocks(index_t mc, index_t kc, index_t nc) {
  if constexpr (std::is_same_v<T, double>) {
    tuning().mc = mc;
    tuning().kc = kc;
    tuning().nc = nc;
  } else {
    // Effective fp32 blocks: kc_f32 is applied without kc_scale.
    tuning().mc_f32 = mc;
    tuning().kc_f32 = kc;
    tuning().nc_f32 = nc;
  }
}

const char* type_name(bool f32) { return f32 ? "f32" : "f64"; }

}  // namespace

std::string default_tuning_path() {
  if (const char* e = std::getenv("XBLAS_TUNING_FILE")) {
    return std::string(e);  // may be "" = persistence disabled
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg) {
    return std::string(xdg) + "/conflux/tuning.json";
  }
  if (const char* home = std::getenv("HOME"); home && *home) {
    return std::string(home) + "/.cache/conflux/tuning.json";
  }
  return "";
}

bool load_entries(const std::string& path, std::vector<Entry>* out) {
  out->clear();
  if (path.empty()) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JValue root;
  if (!JParser(text).parse(&root) || root.kind != JValue::kObj) return false;
  const JValue* version = root.get("version");
  if (version == nullptr || version->kind != JValue::kNum ||
      static_cast<int>(version->num) != 1) {
    return false;
  }
  const JValue* entries = root.get("entries");
  if (entries == nullptr || entries->kind != JValue::kArr) return false;

  for (const JValue& je : entries->arr) {
    if (je.kind != JValue::kObj) return false;
    const JValue* isa_v = je.get("isa");
    const JValue* type_v = je.get("type");
    if (isa_v == nullptr || isa_v->kind != JValue::kStr || type_v == nullptr ||
        type_v->kind != JValue::kStr) {
      return false;
    }
    Entry e;
    if (!parse_isa(isa_v->str, &e.isa)) continue;  // future ISA: skip, keep
    if (type_v->str != "f64" && type_v->str != "f32") continue;
    e.type = type_v->str;
    e.mc = jnum_index(je, "mc", 0);
    e.kc = jnum_index(je, "kc", 0);
    e.nc = jnum_index(je, "nc", 0);
    e.db = jnum_index(je, "db", 0);
    e.lu_nb = jnum_index(je, "lu_nb", 0);
    e.gflops = jnum(je, "gflops", 0.0);
    e.n = jnum_index(je, "n", 0);
    e.threads = static_cast<int>(jnum_index(je, "threads", 1));
    if (e.mc <= 0 || e.kc <= 0 || e.nc <= 0) continue;  // useless entry
    out->push_back(std::move(e));
  }
  return true;
}

const Entry* find_entry(const std::vector<Entry>& entries, Isa isa,
                        std::string_view type) {
  for (const Entry& e : entries) {
    if (e.isa == isa && e.type == type) return &e;
  }
  return nullptr;
}

bool save_entries(const std::string& path, const std::vector<Entry>& entries) {
  if (path.empty()) return false;
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);  // best effort
  }
  const fs::path tmp = p.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    json::Writer w(out);
    w.begin_object();
    w.field("version", 1);
    w.key("entries");
    w.begin_array();
    for (const Entry& e : entries) {
      w.begin_object();
      w.field("isa", isa_name(e.isa));
      w.field("type", std::string_view(e.type));
      w.field("mc", static_cast<long long>(e.mc));
      w.field("kc", static_cast<long long>(e.kc));
      w.field("nc", static_cast<long long>(e.nc));
      if (e.db > 0) w.field("db", static_cast<long long>(e.db));
      if (e.lu_nb > 0) w.field("lu_nb", static_cast<long long>(e.lu_nb));
      w.field("gflops", e.gflops);
      w.field("n", static_cast<long long>(e.n));
      w.field("threads", e.threads);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << "\n";
    if (!out.good()) return false;
  }
  fs::rename(tmp, p, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

template <typename T>
SweepBest sweep_gemm(
    index_t n, const std::vector<index_t>& mcs, const std::vector<index_t>& kcs,
    const std::vector<index_t>& ncs, double min_time,
    const std::function<void(index_t, index_t, index_t, double)>& cb,
    const std::function<bool()>& keep_going) {
  TuningGuard guard;
  const MatrixD a64 = random_matrix(n, n, 1);
  const MatrixD b64 = random_matrix(n, n, 2);
  Matrix<T> a(n, n), b(n, n), c(n, n, T{});
  convert<double, T>(a64.view(), a.view());
  convert<double, T>(b64.view(), b.view());
  const double flops = gemm_flops(n, n, n);

  SweepBest best;
  for (const index_t mc : mcs) {
    for (const index_t kc : kcs) {
      for (const index_t nc : ncs) {
        if (keep_going && !keep_going()) return best;
        set_gemm_blocks<T>(mc, kc, nc);
        const double secs = best_seconds(
            [&] {
              Stopwatch sw;
              gemm<T>(Trans::None, Trans::None, T{1}, a.view(), b.view(), T{},
                      c.view());
              return sw.seconds();
            },
            min_time);
        const double gf = flops / secs * 1e-9;
        if (cb) cb(mc, kc, nc, gf);
        if (gf > best.gflops) best = SweepBest{mc, kc, nc, gf};
      }
    }
  }
  return best;
}

template SweepBest sweep_gemm<double>(
    index_t, const std::vector<index_t>&, const std::vector<index_t>&,
    const std::vector<index_t>&, double,
    const std::function<void(index_t, index_t, index_t, double)>&,
    const std::function<bool()>&);
template SweepBest sweep_gemm<float>(
    index_t, const std::vector<index_t>&, const std::vector<index_t>&,
    const std::vector<index_t>&, double,
    const std::function<void(index_t, index_t, index_t, double)>&,
    const std::function<bool()>&);

Report run(const Options& opts) {
  Report rep;
  rep.isa = active_isa();
  Stopwatch total;

  // Budget shaping: a CI smoke budget (a few seconds) runs a coarse grid on
  // a small problem; an install-time budget runs the full grid at the
  // configured size. Per-candidate timing splits what remains.
  const bool quick = opts.budget_seconds < 10.0;
  const index_t n = quick ? std::min<index_t>(opts.n, 384) : opts.n;
  const std::vector<index_t> mcs =
      quick ? std::vector<index_t>{64, 128, 256}
            : std::vector<index_t>{64, 96, 128, 192, 256};
  const std::vector<index_t> kcs = quick ? std::vector<index_t>{256, 512}
                                         : std::vector<index_t>{128, 256, 384, 512};
  const std::vector<index_t> ncs = quick ? std::vector<index_t>{2048}
                                         : std::vector<index_t>{2048, 4096};
  const std::vector<index_t> dbs = quick ? std::vector<index_t>{48, 64}
                                         : std::vector<index_t>{32, 48, 64, 96, 128};
  const std::vector<index_t> lu_nbs = quick ? std::vector<index_t>{32, 48}
                                            : std::vector<index_t>{16, 24, 32, 48, 64};

  const std::size_t gemm_cands = mcs.size() * kcs.size() * ncs.size();
  const std::size_t all_cands = gemm_cands * (opts.tune_f32 ? 2 : 1) +
                                (opts.tune_db ? dbs.size() + lu_nbs.size() : 0);
  const double min_time = std::clamp(
      opts.budget_seconds / (static_cast<double>(all_cands) * 4.0), 0.004,
      opts.min_time);
  const auto keep_going = [&] { return total.seconds() < opts.budget_seconds; };

  int expected = 0;
  const auto verbose_cb = [&](const char* type) {
    return [&, type](index_t mc, index_t kc, index_t nc, double gf) {
      ++rep.candidates_timed;
      if (opts.verbose) {
        std::printf("  autotune %-8s %s mc=%-4lld kc=%-4lld nc=%-5lld %8.2f GF/s\n",
                    isa_name(rep.isa), type, static_cast<long long>(mc),
                    static_cast<long long>(kc), static_cast<long long>(nc), gf);
      }
    };
  };

  // fp64 gemm blocks.
  expected += static_cast<int>(gemm_cands);
  const SweepBest f64 =
      sweep_gemm<double>(n, mcs, kcs, ncs, min_time, verbose_cb("f64"), keep_going);

  // fp32 gemm blocks: effective kc candidates at twice the fp64 depth (same
  // packed-panel byte footprint).
  SweepBest f32;
  if (opts.tune_f32) {
    std::vector<index_t> kcs_f32;
    for (const index_t kc : kcs) kcs_f32.push_back(kc * kc_scale<float>());
    expected += static_cast<int>(gemm_cands);
    f32 = sweep_gemm<float>(n, mcs, kcs_f32, ncs, min_time, verbose_cb("f32"),
                            keep_going);
  }

  // db (trsm diagonal block) and lu_nb (getrf panel width), fp64. Both
  // benefit from the gemm winner being in place while they sweep.
  index_t best_db = 0, best_lu_nb = 0;
  if (opts.tune_db && f64.gflops > 0.0) {
    TuningGuard guard;
    if (f64.mc > 0) set_gemm_blocks<double>(f64.mc, f64.kc, f64.nc);
    const MatrixD b = random_matrix(n, n, 2);
    MatrixD t = random_matrix(n, n, 3);
    for (index_t i = 0; i < n; ++i) t(i, i) += 4.0;
    MatrixD x(n, n, 0.0);
    double best_secs = 1e300;
    for (const index_t db : dbs) {
      if (!keep_going()) break;
      tuning().db = db;
      const double secs = best_seconds(
          [&] {
            copy<double>(b.view(), x.view());
            Stopwatch sw;
            trsm(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 1.0,
                 t.view(), x.view());
            return sw.seconds();
          },
          min_time);
      ++rep.candidates_timed;
      ++expected;
      if (opts.verbose) {
        std::printf("  autotune %-8s db=%-4lld %10.4fs\n", isa_name(rep.isa),
                    static_cast<long long>(db), secs);
      }
      if (secs < best_secs) {
        best_secs = secs;
        best_db = db;
      }
    }
    const MatrixD a = random_matrix(n, n, 1);
    MatrixD lu(n, n);
    std::vector<index_t> ipiv;
    best_secs = 1e300;
    for (const index_t nb : lu_nbs) {
      if (!keep_going()) break;
      tuning().lu_nb = nb;
      const double secs = best_seconds(
          [&] {
            copy<double>(a.view(), lu.view());
            Stopwatch sw;
            getrf(lu.view(), ipiv);
            return sw.seconds();
          },
          min_time);
      ++rep.candidates_timed;
      ++expected;
      if (opts.verbose) {
        std::printf("  autotune %-8s lu_nb=%-4lld %10.4fs\n", isa_name(rep.isa),
                    static_cast<long long>(nb), secs);
      }
      if (secs < best_secs) {
        best_secs = secs;
        best_lu_nb = nb;
      }
    }
    // Phases that never started still count as skipped work below.
    expected += static_cast<int>(dbs.size() + lu_nbs.size()) -
                (expected - static_cast<int>(gemm_cands * (opts.tune_f32 ? 2 : 1)));
  }

  rep.candidates_skipped = std::max(0, expected - rep.candidates_timed);
  rep.seconds = total.seconds();

  if (f64.gflops > 0.0) {
    Entry e;
    e.isa = rep.isa;
    e.type = type_name(false);
    e.mc = f64.mc;
    e.kc = f64.kc;
    e.nc = f64.nc;
    e.db = best_db;
    e.lu_nb = best_lu_nb;
    e.gflops = f64.gflops;
    e.n = n;
    e.threads = tuning().threads;
    rep.tuned.push_back(std::move(e));
  }
  if (f32.gflops > 0.0) {
    Entry e;
    e.isa = rep.isa;
    e.type = type_name(true);
    e.mc = f32.mc;
    e.kc = f32.kc;  // effective fp32 kc
    e.nc = f32.nc;
    e.gflops = f32.gflops;
    e.n = n;
    e.threads = tuning().threads;
    rep.tuned.push_back(std::move(e));
  }
  return rep;
}

bool save_report(const std::string& path, const Report& report) {
  if (path.empty() || report.tuned.empty()) return false;
  std::vector<Entry> merged;
  load_entries(path, &merged);  // missing/corrupt = start fresh
  // Replace entries this report re-tuned; keep everything else (other ISAs,
  // the other scalar type when only one was tuned).
  std::vector<Entry> kept;
  for (Entry& e : merged) {
    const bool replaced =
        e.isa == report.isa &&
        find_entry(report.tuned, e.isa, e.type) != nullptr;
    if (!replaced) kept.push_back(std::move(e));
  }
  for (const Entry& e : report.tuned) kept.push_back(e);
  return save_entries(path, kept);
}

}  // namespace conflux::xblas::autotune
