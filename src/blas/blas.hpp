// From-scratch level-3 BLAS substrate used everywhere MKL was used in the
// paper. gemm is a BLIS-style packed, register-tiled, OpenMP-parallel
// implementation; trsm/syrk/gemmt are blocked algorithms that confine
// O(db^3) work to small diagonal blocks and push all panel updates through
// gemm. Cache/block sizes are runtime-tunable via xblas::tuning()
// (src/blas/tuning.hpp; XBLAS_* environment overrides). Multi-threaded
// results are bitwise identical to single-threaded ones: threads partition
// the output, never a reduction.
//
// Every routine is a template over the scalar type (instantiated for float
// and double in the .cpp files — the schedules are precision-agnostic, so
// the whole stack is). The scalar parameters are non-deduced
// (std::type_identity_t), and the inline concrete overloads below let the
// pervasive existing call sites — which pass mutable views and double
// literals — keep compiling unchanged: template argument deduction never
// sees a MatrixView-to-ConstMatrixView conversion.
//
// All routines operate on row-major views. Conventions follow the BLAS:
//   gemm   C = alpha*op(A)*op(B) + beta*C
//   trsm   solve op(T)*X = alpha*B (Side::Left) or X*op(T) = alpha*B (Right),
//          overwriting B with X
//   syrk   C = alpha*A*A^T + beta*C, only the Uplo triangle referenced
//   gemmt  C = alpha*A*B + beta*C, only the Uplo triangle updated — this is
//          the "triangular gemm" the paper's Table 1 uses for the Cholesky
//          A11 (Schur complement) update.
#pragma once

#include <type_traits>

#include "tensor/matrix.hpp"

namespace conflux::xblas {

enum class Trans { None, Transpose };
enum class Side { Left, Right };
enum class UpLo { Lower, Upper };
enum class Diag { NonUnit, Unit };

/// General matrix-matrix multiply, cache-blocked.
template <typename T>
void gemm(Trans transa, Trans transb, std::type_identity_t<T> alpha,
          ConstMatrixView<T> a, ConstMatrixView<T> b,
          std::type_identity_t<T> beta, MatrixView<T> c);

/// Triangular solve with multiple right-hand sides (in-place in b).
template <typename T>
void trsm(Side side, UpLo uplo, Trans trans, Diag diag,
          std::type_identity_t<T> alpha, ConstMatrixView<T> t, MatrixView<T> b);

/// Symmetric rank-k update; only the `uplo` triangle of c is referenced.
template <typename T>
void syrk(UpLo uplo, Trans trans, std::type_identity_t<T> alpha,
          ConstMatrixView<T> a, std::type_identity_t<T> beta, MatrixView<T> c);

/// gemm restricted to the `uplo` triangle of the output.
template <typename T>
void gemmt(UpLo uplo, Trans transa, Trans transb, std::type_identity_t<T> alpha,
           ConstMatrixView<T> a, ConstMatrixView<T> b,
           std::type_identity_t<T> beta, MatrixView<T> c);

/// Triangular matrix-vector solve op(T) x = b, x overwrites b (length view).
template <typename T>
void trsv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView<T> t, T* b);

/// Frobenius norm (accumulated in double for either precision).
template <typename T>
double norm_frobenius(ConstMatrixView<T> a);

/// Max-abs-entry norm.
template <typename T>
double norm_max(ConstMatrixView<T> a);

// ---- concrete-type overloads ----------------------------------------------
// Deduction helpers: existing (and most new) call sites pass MatrixView where
// ConstMatrixView is expected, which template deduction cannot bridge. These
// exact-type overloads accept the conversion and forward to the templates.

inline void gemm(Trans transa, Trans transb, double alpha, ConstViewD a,
                 ConstViewD b, double beta, ViewD c) {
  gemm<double>(transa, transb, alpha, a, b, beta, c);
}
inline void gemm(Trans transa, Trans transb, float alpha, ConstViewF a,
                 ConstViewF b, float beta, ViewF c) {
  gemm<float>(transa, transb, alpha, a, b, beta, c);
}

inline void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
                 ConstViewD t, ViewD b) {
  trsm<double>(side, uplo, trans, diag, alpha, t, b);
}
inline void trsm(Side side, UpLo uplo, Trans trans, Diag diag, float alpha,
                 ConstViewF t, ViewF b) {
  trsm<float>(side, uplo, trans, diag, alpha, t, b);
}

inline void syrk(UpLo uplo, Trans trans, double alpha, ConstViewD a, double beta,
                 ViewD c) {
  syrk<double>(uplo, trans, alpha, a, beta, c);
}
inline void syrk(UpLo uplo, Trans trans, float alpha, ConstViewF a, float beta,
                 ViewF c) {
  syrk<float>(uplo, trans, alpha, a, beta, c);
}

inline void gemmt(UpLo uplo, Trans transa, Trans transb, double alpha,
                  ConstViewD a, ConstViewD b, double beta, ViewD c) {
  gemmt<double>(uplo, transa, transb, alpha, a, b, beta, c);
}
inline void gemmt(UpLo uplo, Trans transa, Trans transb, float alpha,
                  ConstViewF a, ConstViewF b, float beta, ViewF c) {
  gemmt<float>(uplo, transa, transb, alpha, a, b, beta, c);
}

inline void trsv(UpLo uplo, Trans trans, Diag diag, ConstViewD t, double* b) {
  trsv<double>(uplo, trans, diag, t, b);
}
inline void trsv(UpLo uplo, Trans trans, Diag diag, ConstViewF t, float* b) {
  trsv<float>(uplo, trans, diag, t, b);
}

inline double norm_frobenius(ConstViewD a) { return norm_frobenius<double>(a); }
inline double norm_frobenius(ConstViewF a) { return norm_frobenius<float>(a); }
inline double norm_max(ConstViewD a) { return norm_max<double>(a); }
inline double norm_max(ConstViewF a) { return norm_max<float>(a); }

/// Number of fused multiply-add flop pairs (counted as 2 flops each) a gemm
/// of these dimensions performs; used by the simulator's time model.
inline double gemm_flops(index_t m, index_t n, index_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

inline double trsm_flops(index_t m, index_t n, Side side) {
  // Left: n RHS columns, each m^2 flops; Right: m rows each n^2.
  return side == Side::Left
             ? static_cast<double>(n) * static_cast<double>(m) * static_cast<double>(m)
             : static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(n);
}

}  // namespace conflux::xblas
