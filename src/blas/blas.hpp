// From-scratch level-3 BLAS substrate used everywhere MKL was used in the
// paper. gemm is a BLIS-style packed, register-tiled, OpenMP-parallel
// implementation; trsm/syrk/gemmt are blocked algorithms that confine
// O(db^3) work to small diagonal blocks and push all panel updates through
// gemm. Cache/block sizes are runtime-tunable via xblas::tuning()
// (src/blas/tuning.hpp; XBLAS_* environment overrides). Multi-threaded
// results are bitwise identical to single-threaded ones: threads partition
// the output, never a reduction.
//
// All routines operate on row-major views. Conventions follow the BLAS:
//   gemm   C = alpha*op(A)*op(B) + beta*C
//   trsm   solve op(T)*X = alpha*B (Side::Left) or X*op(T) = alpha*B (Right),
//          overwriting B with X
//   syrk   C = alpha*A*A^T + beta*C, only the Uplo triangle referenced
//   gemmt  C = alpha*A*B + beta*C, only the Uplo triangle updated — this is
//          the "triangular gemm" the paper's Table 1 uses for the Cholesky
//          A11 (Schur complement) update.
#pragma once

#include "tensor/matrix.hpp"

namespace conflux::xblas {

enum class Trans { None, Transpose };
enum class Side { Left, Right };
enum class UpLo { Lower, Upper };
enum class Diag { NonUnit, Unit };

/// General matrix-matrix multiply, cache-blocked.
void gemm(Trans transa, Trans transb, double alpha, ConstViewD a, ConstViewD b,
          double beta, ViewD c);

/// Triangular solve with multiple right-hand sides (in-place in b).
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstViewD t, ViewD b);

/// Symmetric rank-k update; only the `uplo` triangle of c is referenced.
void syrk(UpLo uplo, Trans trans, double alpha, ConstViewD a, double beta, ViewD c);

/// gemm restricted to the `uplo` triangle of the output.
void gemmt(UpLo uplo, Trans transa, Trans transb, double alpha, ConstViewD a,
           ConstViewD b, double beta, ViewD c);

/// Triangular matrix-vector solve op(T) x = b, x overwrites b (length view).
void trsv(UpLo uplo, Trans trans, Diag diag, ConstViewD t, double* b);

/// Frobenius norm.
double norm_frobenius(ConstViewD a);

/// Max-abs-entry norm.
double norm_max(ConstViewD a);

/// Number of fused multiply-add flop pairs (counted as 2 flops each) a gemm
/// of these dimensions performs; used by the simulator's time model.
inline double gemm_flops(index_t m, index_t n, index_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

inline double trsm_flops(index_t m, index_t n, Side side) {
  // Left: n RHS columns, each m^2 flops; Right: m rows each n^2.
  return side == Side::Left
             ? static_cast<double>(n) * static_cast<double>(m) * static_cast<double>(m)
             : static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(n);
}

}  // namespace conflux::xblas
