#include "blas/tuning.hpp"

#include <cstdlib>
#include <string>

namespace conflux::xblas {

namespace {

// Unset, malformed, or non-positive values all fall back to the default
// (a clamped-to-1 block size from a typo'd negative would be a silent
// performance cliff). XBLAS_THREADS is the one knob where 0 is meaningful.
index_t env_index(const char* name, index_t fallback, index_t minimum = 1) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return fallback;
  if (v < minimum) return fallback;
  return static_cast<index_t>(v);
}

}  // namespace

void Tuning::sanitize() {
  if (mc < kMR) mc = kMR;
  if (kc < 1) kc = 1;
  if (nc < kNR) nc = kNR;
  if (db < 1) db = 1;
  if (lu_nb < 1) lu_nb = 1;
  if (threads < 0) threads = 0;
  if (small_gemm_flops < 0.0) small_gemm_flops = 0.0;
  if (small_k < 0) small_k = 0;
}

Tuning tuning_from_env() {
  Tuning t;
  t.mc = env_index("XBLAS_MC", t.mc);
  t.kc = env_index("XBLAS_KC", t.kc);
  t.nc = env_index("XBLAS_NC", t.nc);
  t.db = env_index("XBLAS_DB", t.db);
  t.lu_nb = env_index("XBLAS_LU_NB", t.lu_nb);
  t.threads = static_cast<int>(env_index("XBLAS_THREADS", t.threads, 0));
  t.small_k = env_index("XBLAS_SMALL_K", t.small_k, 0);  // 0 disables
  t.sanitize();
  return t;
}

Tuning& tuning() {
  static Tuning t = tuning_from_env();
  return t;
}

namespace {
thread_local int tls_thread_cap_value = 0;
}  // namespace

int tls_thread_cap() { return tls_thread_cap_value; }
void set_tls_thread_cap(int cap) { tls_thread_cap_value = cap > 0 ? cap : 0; }

}  // namespace conflux::xblas
