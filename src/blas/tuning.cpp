#include "blas/tuning.hpp"

#include <cstdlib>
#include <string>

#include "blas/autotune.hpp"
#include "blas/microkernel.hpp"

namespace conflux::xblas {

namespace {

// Unset, malformed, or non-positive values all fall back to the default
// (a clamped-to-1 block size from a typo'd negative would be a silent
// performance cliff). XBLAS_THREADS is the one knob where 0 is meaningful.
// `applied` (when non-null) is set to true only when the variable actually
// overrode the fallback — Tuning::detect() uses it for source attribution.
index_t env_index(const char* name, index_t fallback, index_t minimum = 1,
                  bool* applied = nullptr) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return fallback;
  if (v < minimum) return fallback;
  if (applied != nullptr) *applied = true;
  return static_cast<index_t>(v);
}

// Last layer that set block sizes in Tuning::detect(). Written before
// tuning()'s static init completes, read by benches afterwards; plain
// storage is fine (detect() runs under the static-init guard).
const char* g_tuning_source = "default";

Tuning apply_env(Tuning t, bool* applied) {
  t.mc = env_index("XBLAS_MC", t.mc, 1, applied);
  t.kc = env_index("XBLAS_KC", t.kc, 1, applied);
  t.nc = env_index("XBLAS_NC", t.nc, 1, applied);
  t.db = env_index("XBLAS_DB", t.db, 1, applied);
  t.lu_nb = env_index("XBLAS_LU_NB", t.lu_nb, 1, applied);
  t.threads = static_cast<int>(env_index("XBLAS_THREADS", t.threads, 0));
  t.small_k = env_index("XBLAS_SMALL_K", t.small_k, 0);  // 0 disables
  t.sanitize();
  return t;
}

}  // namespace

void Tuning::sanitize() {
  if (mc < kMR) mc = kMR;
  if (kc < 1) kc = 1;
  if (nc < kNR) nc = kNR;
  if (db < 1) db = 1;
  if (lu_nb < 1) lu_nb = 1;
  if (threads < 0) threads = 0;
  if (small_gemm_flops < 0.0) small_gemm_flops = 0.0;
  if (small_k < 0) small_k = 0;
  // fp32 overrides: 0 means "derive from fp64", so only clamp garbage up
  // to the unset state — a negative must not become a 1-row block.
  if (mc_f32 < 0) mc_f32 = 0;
  if (kc_f32 < 0) kc_f32 = 0;
  if (nc_f32 < 0) nc_f32 = 0;
  if (mc_f32 > 0 && mc_f32 < kMR) mc_f32 = kMR;
  if (nc_f32 > 0 && nc_f32 < kNR) nc_f32 = kNR;
}

Tuning tuning_from_env() { return apply_env(Tuning{}, nullptr); }

Tuning Tuning::detect() {
  Tuning t;  // layer 1: compiled-in defaults
  const char* source = "default";

  // Layer 2: persisted autotuner entries for the active microkernel ISA.
  const std::string path = autotune::default_tuning_path();
  std::vector<autotune::Entry> entries;
  if (!path.empty() && autotune::load_entries(path, &entries)) {
    const Isa isa = active_isa();
    if (const autotune::Entry* e = autotune::find_entry(entries, isa, "f64")) {
      t.mc = e->mc;
      t.kc = e->kc;
      t.nc = e->nc;
      if (e->db > 0) t.db = e->db;
      if (e->lu_nb > 0) t.lu_nb = e->lu_nb;
      source = "file";
    }
    if (const autotune::Entry* e = autotune::find_entry(entries, isa, "f32")) {
      t.mc_f32 = e->mc;
      t.kc_f32 = e->kc;  // effective fp32 kc, no kc_scale on top
      t.nc_f32 = e->nc;
      source = "file";
    }
  }

  // Layer 3: XBLAS_* environment overrides always win.
  bool env_applied = false;
  t = apply_env(t, &env_applied);
  if (env_applied) source = "env";

  g_tuning_source = source;
  return t;
}

Tuning& tuning() {
  static Tuning t = Tuning::detect();
  return t;
}

const char* tuning_source() {
  tuning();  // make sure detect() has run
  return g_tuning_source;
}

namespace {
thread_local int tls_thread_cap_value = 0;
}  // namespace

int tls_thread_cap() { return tls_thread_cap_value; }
void set_tls_thread_cap(int cap) { tls_thread_cap_value = cap > 0 ? cap : 0; }

}  // namespace conflux::xblas
