#include "blas/lapack.hpp"

#include <cmath>
#include <limits>

#include "blas/tuning.hpp"
#include "support/check.hpp"

namespace conflux::xblas {

namespace {

// Unblocked LU with partial pivoting on an m x n panel (n small).
template <typename T>
int getrf_unblocked(MatrixView<T> a, std::vector<index_t>& ipiv,
                    index_t ipiv_offset) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);
  int info = 0;
  for (index_t k = 0; k < kmax; ++k) {
    // Pivot: largest |a(i, k)| for i >= k; ties resolved to the smallest i so
    // results are deterministic across schedules.
    index_t piv = k;
    T best = std::abs(a(k, k));
    for (index_t i = k + 1; i < m; ++i) {
      const T v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    ipiv[static_cast<std::size_t>(ipiv_offset + k)] = piv;
    if (best == T{}) {
      if (info == 0) info = static_cast<int>(ipiv_offset + k) + 1;
      continue;  // singular column: skip elimination, as LAPACK does
    }
    if (piv != k) {
      for (index_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
    }
    const T inv = T{1} / a(k, k);
    for (index_t i = k + 1; i < m; ++i) {
      const T lik = a(i, k) * inv;
      a(i, k) = lik;
      for (index_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
  return info;
}

}  // namespace

template <typename T>
int getrf(MatrixView<T> a, std::vector<index_t>& ipiv) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);
  ipiv.assign(static_cast<std::size_t>(kmax), 0);
  int info = 0;

  const index_t panel_nb = std::max<index_t>(1, tuning().lu_nb);
  for (index_t k0 = 0; k0 < kmax; k0 += panel_nb) {
    const index_t kb = std::min(panel_nb, kmax - k0);
    // Factor the panel a(k0:m, k0:k0+kb).
    MatrixView<T> panel = a.block(k0, k0, m - k0, kb);
    const int pinfo = getrf_unblocked<T>(panel, ipiv, k0);
    if (info == 0 && pinfo != 0) info = pinfo;
    // Panel pivots are relative to row k0; rebase and apply the interchanges
    // to the columns outside the panel.
    for (index_t k = k0; k < k0 + kb; ++k) {
      const index_t piv = ipiv[static_cast<std::size_t>(k)] + k0;
      ipiv[static_cast<std::size_t>(k)] = piv;
      if (piv != k) {
        for (index_t j = 0; j < k0; ++j) std::swap(a(k, j), a(piv, j));
        for (index_t j = k0 + kb; j < n; ++j) std::swap(a(k, j), a(piv, j));
      }
    }
    if (k0 + kb < n) {
      // U block row: solve L11 * U12 = A12.
      MatrixView<T> u12 = a.block(k0, k0 + kb, kb, n - (k0 + kb));
      trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::Unit, T{1},
              a.block(k0, k0, kb, kb), u12);
      if (k0 + kb < m) {
        // Trailing update: A22 -= L21 * U12.
        gemm<T>(Trans::None, Trans::None, T{-1},
                a.block(k0 + kb, k0, m - (k0 + kb), kb), u12, T{1},
                a.block(k0 + kb, k0 + kb, m - (k0 + kb), n - (k0 + kb)));
      }
    }
  }
  return info;
}

template <typename T>
int getrf_nopiv(MatrixView<T> a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);
  for (index_t k = 0; k < kmax; ++k) {
    if (a(k, k) == T{}) return static_cast<int>(k) + 1;
    const T inv = T{1} / a(k, k);
    for (index_t i = k + 1; i < m; ++i) {
      const T lik = a(i, k) * inv;
      a(i, k) = lik;
      for (index_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
  return 0;
}

template <typename T>
int potrf(MatrixView<T> a) {
  const index_t n = a.rows();
  expects(a.cols() == n, "potrf: matrix must be square");
  const index_t nb = std::max<index_t>(1, tuning().lu_nb);
  for (index_t k0 = 0; k0 < n; k0 += nb) {
    const index_t kb = std::min(nb, n - k0);
    // Diagonal block: unblocked Cholesky.
    MatrixView<T> d = a.block(k0, k0, kb, kb);
    for (index_t k = 0; k < kb; ++k) {
      T diag = d(k, k);
      for (index_t p = 0; p < k; ++p) diag -= d(k, p) * d(k, p);
      if (diag <= T{}) return static_cast<int>(k0 + k) + 1;
      const T lkk = std::sqrt(diag);
      d(k, k) = lkk;
      const T inv = T{1} / lkk;
      for (index_t i = k + 1; i < kb; ++i) {
        T v = d(i, k);
        for (index_t p = 0; p < k; ++p) v -= d(i, p) * d(k, p);
        d(i, k) = v * inv;
      }
    }
    if (k0 + kb < n) {
      // Panel below: L21 = A21 * L11^{-T}.
      MatrixView<T> l21 = a.block(k0 + kb, k0, n - (k0 + kb), kb);
      trsm<T>(Side::Right, UpLo::Lower, Trans::Transpose, Diag::NonUnit, T{1},
              d, l21);
      // Trailing symmetric update: A22 -= L21 * L21^T (lower only).
      syrk<T>(UpLo::Lower, Trans::None, T{-1}, l21, T{1},
              a.block(k0 + kb, k0 + kb, n - (k0 + kb), n - (k0 + kb)));
    }
  }
  return 0;
}

template <typename T>
void laswp(MatrixView<T> a, const std::vector<index_t>& ipiv) {
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    const index_t piv = ipiv[k];
    const index_t row = static_cast<index_t>(k);
    if (piv != row) {
      for (index_t j = 0; j < a.cols(); ++j) std::swap(a(row, j), a(piv, j));
    }
  }
}

std::vector<index_t> ipiv_to_permutation(const std::vector<index_t>& ipiv, index_t n) {
  std::vector<index_t> perm;
  ipiv_to_permutation(ipiv, n, perm);
  return perm;
}

void ipiv_to_permutation(const std::vector<index_t>& ipiv, index_t n,
                         std::vector<index_t>& perm) {
  perm.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    std::swap(perm[k], perm[static_cast<std::size_t>(ipiv[k])]);
  }
}

template <typename T>
void getrs(ConstMatrixView<T> a, const std::vector<index_t>& ipiv,
           MatrixView<T> b) {
  expects(a.rows() == a.cols() && a.rows() == b.rows(), "getrs: shape mismatch");
  laswp<T>(b, ipiv);
  trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::Unit, T{1}, a, b);
  trsm<T>(Side::Left, UpLo::Upper, Trans::None, Diag::NonUnit, T{1}, a, b);
}

template <typename T>
void potrs(ConstMatrixView<T> a, MatrixView<T> b) {
  expects(a.rows() == a.cols() && a.rows() == b.rows(), "potrs: shape mismatch");
  trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, T{1}, a, b);
  trsm<T>(Side::Left, UpLo::Lower, Trans::Transpose, Diag::NonUnit, T{1}, a, b);
}

template <typename T>
Matrix<T> extract_lower_unit(ConstMatrixView<T> lu, index_t k) {
  Matrix<T> l(lu.rows(), k);
  for (index_t i = 0; i < lu.rows(); ++i) {
    for (index_t j = 0; j < std::min(i, k); ++j) l(i, j) = lu(i, j);
    if (i < k) l(i, i) = T{1};
  }
  return l;
}

template <typename T>
Matrix<T> extract_upper(ConstMatrixView<T> lu, index_t k) {
  Matrix<T> u(k, lu.cols());
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = i; j < lu.cols(); ++j) u(i, j) = lu(i, j);
  }
  return u;
}

template <typename T>
double lu_residual(ConstMatrixView<T> a, ConstMatrixView<T> factored,
                   const std::vector<index_t>& perm) {
  const index_t n = a.rows();
  expects(a.cols() == n && factored.rows() == n && factored.cols() == n &&
              static_cast<index_t>(perm.size()) == n,
          "lu_residual: shape mismatch");
  const Matrix<T> l = extract_lower_unit<T>(factored, n);
  const Matrix<T> u = extract_upper<T>(factored, n);
  Matrix<T> pa(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) pa(i, j) = a(perm[static_cast<std::size_t>(i)], j);
  }
  gemm<T>(Trans::None, Trans::None, T{-1}, l.view(), u.view(), T{1}, pa.view());
  const double denom = norm_frobenius<T>(a) * static_cast<double>(n) *
                       static_cast<double>(std::numeric_limits<T>::epsilon());
  return norm_frobenius<T>(pa.view()) / denom;
}

template <typename T>
double cholesky_residual(ConstMatrixView<T> a, ConstMatrixView<T> factored) {
  const index_t n = a.rows();
  Matrix<T> l(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) l(i, j) = factored(i, j);
  }
  Matrix<T> res(n, n);
  copy<T>(a, res.view());
  gemm<T>(Trans::None, Trans::Transpose, T{-1}, l.view(), l.view(), T{1},
          res.view());
  const double denom = norm_frobenius<T>(a) * static_cast<double>(n) *
                       static_cast<double>(std::numeric_limits<T>::epsilon());
  return norm_frobenius<T>(res.view()) / denom;
}

// ---- explicit instantiations ----------------------------------------------

template int getrf<float>(ViewF, std::vector<index_t>&);
template int getrf<double>(ViewD, std::vector<index_t>&);
template int getrf_nopiv<float>(ViewF);
template int getrf_nopiv<double>(ViewD);
template int potrf<float>(ViewF);
template int potrf<double>(ViewD);
template void laswp<float>(ViewF, const std::vector<index_t>&);
template void laswp<double>(ViewD, const std::vector<index_t>&);
template void getrs<float>(ConstViewF, const std::vector<index_t>&, ViewF);
template void getrs<double>(ConstViewD, const std::vector<index_t>&, ViewD);
template void potrs<float>(ConstViewF, ViewF);
template void potrs<double>(ConstViewD, ViewD);
template MatrixF extract_lower_unit<float>(ConstViewF, index_t);
template MatrixD extract_lower_unit<double>(ConstViewD, index_t);
template MatrixF extract_upper<float>(ConstViewF, index_t);
template MatrixD extract_upper<double>(ConstViewD, index_t);
template double lu_residual<float>(ConstViewF, ConstViewF,
                                   const std::vector<index_t>&);
template double lu_residual<double>(ConstViewD, ConstViewD,
                                    const std::vector<index_t>&);
template double cholesky_residual<float>(ConstViewF, ConstViewF);
template double cholesky_residual<double>(ConstViewD, ConstViewD);

}  // namespace conflux::xblas
