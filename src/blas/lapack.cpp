#include "blas/lapack.hpp"

#include <cmath>
#include <limits>

#include "blas/tuning.hpp"
#include "support/check.hpp"

namespace conflux::xblas {

namespace {

// Unblocked LU with partial pivoting on an m x n panel (n small).
int getrf_unblocked(ViewD a, std::vector<index_t>& ipiv, index_t ipiv_offset) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);
  int info = 0;
  for (index_t k = 0; k < kmax; ++k) {
    // Pivot: largest |a(i, k)| for i >= k; ties resolved to the smallest i so
    // results are deterministic across schedules.
    index_t piv = k;
    double best = std::abs(a(k, k));
    for (index_t i = k + 1; i < m; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    ipiv[static_cast<std::size_t>(ipiv_offset + k)] = piv;
    if (best == 0.0) {
      if (info == 0) info = static_cast<int>(ipiv_offset + k) + 1;
      continue;  // singular column: skip elimination, as LAPACK does
    }
    if (piv != k) {
      for (index_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
    }
    const double inv = 1.0 / a(k, k);
    for (index_t i = k + 1; i < m; ++i) {
      const double lik = a(i, k) * inv;
      a(i, k) = lik;
      for (index_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
  return info;
}

}  // namespace

int getrf(ViewD a, std::vector<index_t>& ipiv) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);
  ipiv.assign(static_cast<std::size_t>(kmax), 0);
  int info = 0;

  const index_t panel_nb = std::max<index_t>(1, tuning().lu_nb);
  for (index_t k0 = 0; k0 < kmax; k0 += panel_nb) {
    const index_t kb = std::min(panel_nb, kmax - k0);
    // Factor the panel a(k0:m, k0:k0+kb).
    ViewD panel = a.block(k0, k0, m - k0, kb);
    const int pinfo = getrf_unblocked(panel, ipiv, k0);
    if (info == 0 && pinfo != 0) info = pinfo;
    // Panel pivots are relative to row k0; rebase and apply the interchanges
    // to the columns outside the panel.
    for (index_t k = k0; k < k0 + kb; ++k) {
      const index_t piv = ipiv[static_cast<std::size_t>(k)] + k0;
      ipiv[static_cast<std::size_t>(k)] = piv;
      if (piv != k) {
        for (index_t j = 0; j < k0; ++j) std::swap(a(k, j), a(piv, j));
        for (index_t j = k0 + kb; j < n; ++j) std::swap(a(k, j), a(piv, j));
      }
    }
    if (k0 + kb < n) {
      // U block row: solve L11 * U12 = A12.
      ViewD u12 = a.block(k0, k0 + kb, kb, n - (k0 + kb));
      trsm(Side::Left, UpLo::Lower, Trans::None, Diag::Unit, 1.0,
           a.block(k0, k0, kb, kb), u12);
      if (k0 + kb < m) {
        // Trailing update: A22 -= L21 * U12.
        gemm(Trans::None, Trans::None, -1.0, a.block(k0 + kb, k0, m - (k0 + kb), kb),
             u12, 1.0, a.block(k0 + kb, k0 + kb, m - (k0 + kb), n - (k0 + kb)));
      }
    }
  }
  return info;
}

int getrf_nopiv(ViewD a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);
  for (index_t k = 0; k < kmax; ++k) {
    if (a(k, k) == 0.0) return static_cast<int>(k) + 1;
    const double inv = 1.0 / a(k, k);
    for (index_t i = k + 1; i < m; ++i) {
      const double lik = a(i, k) * inv;
      a(i, k) = lik;
      for (index_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
  return 0;
}

int potrf(ViewD a) {
  const index_t n = a.rows();
  expects(a.cols() == n, "potrf: matrix must be square");
  const index_t nb = std::max<index_t>(1, tuning().lu_nb);
  for (index_t k0 = 0; k0 < n; k0 += nb) {
    const index_t kb = std::min(nb, n - k0);
    // Diagonal block: unblocked Cholesky.
    ViewD d = a.block(k0, k0, kb, kb);
    for (index_t k = 0; k < kb; ++k) {
      double diag = d(k, k);
      for (index_t p = 0; p < k; ++p) diag -= d(k, p) * d(k, p);
      if (diag <= 0.0) return static_cast<int>(k0 + k) + 1;
      const double lkk = std::sqrt(diag);
      d(k, k) = lkk;
      const double inv = 1.0 / lkk;
      for (index_t i = k + 1; i < kb; ++i) {
        double v = d(i, k);
        for (index_t p = 0; p < k; ++p) v -= d(i, p) * d(k, p);
        d(i, k) = v * inv;
      }
    }
    if (k0 + kb < n) {
      // Panel below: L21 = A21 * L11^{-T}.
      ViewD l21 = a.block(k0 + kb, k0, n - (k0 + kb), kb);
      trsm(Side::Right, UpLo::Lower, Trans::Transpose, Diag::NonUnit, 1.0, d, l21);
      // Trailing symmetric update: A22 -= L21 * L21^T (lower only).
      syrk(UpLo::Lower, Trans::None, -1.0, l21, 1.0,
           a.block(k0 + kb, k0 + kb, n - (k0 + kb), n - (k0 + kb)));
    }
  }
  return 0;
}

void laswp(ViewD a, const std::vector<index_t>& ipiv) {
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    const index_t piv = ipiv[k];
    const index_t row = static_cast<index_t>(k);
    if (piv != row) {
      for (index_t j = 0; j < a.cols(); ++j) std::swap(a(row, j), a(piv, j));
    }
  }
}

std::vector<index_t> ipiv_to_permutation(const std::vector<index_t>& ipiv, index_t n) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    std::swap(perm[k], perm[static_cast<std::size_t>(ipiv[k])]);
  }
  return perm;
}

void getrs(ConstViewD a, const std::vector<index_t>& ipiv, ViewD b) {
  expects(a.rows() == a.cols() && a.rows() == b.rows(), "getrs: shape mismatch");
  laswp(b, ipiv);
  trsm(Side::Left, UpLo::Lower, Trans::None, Diag::Unit, 1.0, a, b);
  trsm(Side::Left, UpLo::Upper, Trans::None, Diag::NonUnit, 1.0, a, b);
}

void potrs(ConstViewD a, ViewD b) {
  expects(a.rows() == a.cols() && a.rows() == b.rows(), "potrs: shape mismatch");
  trsm(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, 1.0, a, b);
  trsm(Side::Left, UpLo::Lower, Trans::Transpose, Diag::NonUnit, 1.0, a, b);
}

MatrixD extract_lower_unit(ConstViewD lu, index_t k) {
  MatrixD l(lu.rows(), k);
  for (index_t i = 0; i < lu.rows(); ++i) {
    for (index_t j = 0; j < std::min(i, k); ++j) l(i, j) = lu(i, j);
    if (i < k) l(i, i) = 1.0;
  }
  return l;
}

MatrixD extract_upper(ConstViewD lu, index_t k) {
  MatrixD u(k, lu.cols());
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = i; j < lu.cols(); ++j) u(i, j) = lu(i, j);
  }
  return u;
}

double lu_residual(ConstViewD a, ConstViewD factored,
                   const std::vector<index_t>& perm) {
  const index_t n = a.rows();
  expects(a.cols() == n && factored.rows() == n && factored.cols() == n &&
              static_cast<index_t>(perm.size()) == n,
          "lu_residual: shape mismatch");
  const MatrixD l = extract_lower_unit(factored, n);
  const MatrixD u = extract_upper(factored, n);
  MatrixD pa(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) pa(i, j) = a(perm[static_cast<std::size_t>(i)], j);
  }
  gemm(Trans::None, Trans::None, -1.0, l.view(), u.view(), 1.0, pa.view());
  const double denom = norm_frobenius(a) * static_cast<double>(n) *
                       std::numeric_limits<double>::epsilon();
  return norm_frobenius(pa.view()) / denom;
}

double cholesky_residual(ConstViewD a, ConstViewD factored) {
  const index_t n = a.rows();
  MatrixD l(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) l(i, j) = factored(i, j);
  }
  MatrixD res(n, n);
  copy(a, res.view());
  gemm(Trans::None, Trans::Transpose, -1.0, l.view(), l.view(), 1.0, res.view());
  const double denom = norm_frobenius(a) * static_cast<double>(n) *
                       std::numeric_limits<double>::epsilon();
  return norm_frobenius(res.view()) / denom;
}

}  // namespace conflux::xblas
