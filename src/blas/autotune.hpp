// Install-time autotuner for the level-3 BLAS substrate.
//
// Machines differ: the Tuning defaults were swept on one AVX-512 box, and
// the best (mc, kc, nc) for a given cache hierarchy — let alone for a
// different microkernel tile shape — is not portable. This module sweeps
// the cache-blocking space for the ACTIVE microkernel ISA (gemm blocks per
// scalar type, plus the trsm/syrk diagonal block db and the getrf/potrf
// panel width lu_nb), and persists the winners to a small JSON file keyed
// by (isa, scalar type):
//
//   ~/.cache/conflux/tuning.json        default location
//   $XDG_CACHE_HOME/conflux/tuning.json when XDG_CACHE_HOME is set
//   $XBLAS_TUNING_FILE                  explicit override; empty disables
//
// Tuning::detect() loads the entry matching the active ISA at process
// startup, between the compiled-in defaults and the XBLAS_* environment
// overrides — so per-machine block sizes stop being hardcoded guesses
// without taking away the env knobs.
//
// Entry point: `micro_blas_kernels --autotune [--budget=SECONDS]` (the
// bench's --sweep mode reuses sweep_gemm below). The budget is honored by
// shrinking per-candidate timing and, when exhausted, skipping remaining
// candidates — skipped counts are reported, never silent.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "blas/microkernel.hpp"
#include "blas/tuning.hpp"

namespace conflux::xblas::autotune {

/// One persisted tuning record. `type` is "f64" or "f32"; kc is the
/// EFFECTIVE kc for that type (no kc_scale applied on load). db/lu_nb are
/// only meaningful on "f64" entries (they are scalar-type-agnostic in
/// Tuning); 0 means "not tuned".
struct Entry {
  Isa isa = Isa::Portable;
  std::string type;
  index_t mc = 0;
  index_t kc = 0;
  index_t nc = 0;
  index_t db = 0;
  index_t lu_nb = 0;
  double gflops = 0.0;  ///< throughput of the winning gemm configuration
  index_t n = 0;        ///< problem size the sweep timed
  int threads = 1;
};

/// Resolved tuning-file path: XBLAS_TUNING_FILE if set (empty value
/// disables persistence entirely), else $XDG_CACHE_HOME/conflux/tuning.json,
/// else $HOME/.cache/conflux/tuning.json, else "" (disabled).
std::string default_tuning_path();

/// Parse `path`. Returns false (leaving *out empty) when the file is
/// missing, unreadable, or not a valid tuning file — a corrupt file must
/// degrade to defaults, never crash startup.
bool load_entries(const std::string& path, std::vector<Entry>* out);

/// First entry matching (isa, type), or nullptr.
const Entry* find_entry(const std::vector<Entry>& entries, Isa isa,
                        std::string_view type);

/// Write entries atomically (temp file + rename), creating parent
/// directories as needed.
bool save_entries(const std::string& path, const std::vector<Entry>& entries);

/// Best block sizes found by a gemm sweep.
struct SweepBest {
  index_t mc = 0;
  index_t kc = 0;
  index_t nc = 0;
  double gflops = 0.0;
};

/// Sweep gemm cache blocks for scalar T at size n through the ACTIVE
/// microkernel, timing each (mc, kc, nc) candidate for ~min_time seconds.
/// kc values are effective (applied to fp32 without rescaling). `cb`, if
/// set, observes every timed point; `keep_going`, if set, is consulted
/// before each candidate — returning false skips the rest (budget
/// exhaustion). tuning() is mutated during the sweep and restored on exit.
template <typename T>
SweepBest sweep_gemm(
    index_t n, const std::vector<index_t>& mcs, const std::vector<index_t>& kcs,
    const std::vector<index_t>& ncs, double min_time,
    const std::function<void(index_t, index_t, index_t, double)>& cb = {},
    const std::function<bool()>& keep_going = {});

struct Options {
  /// Total wall-clock budget. Small budgets (CI smoke: a few seconds)
  /// shrink the candidate grid, the problem size, and per-candidate timing.
  double budget_seconds = 60.0;
  index_t n = 1024;       ///< gemm sweep problem size (shrunk under budget)
  double min_time = 0.08; ///< per-candidate timing floor (shrunk under budget)
  bool tune_f32 = true;
  bool tune_db = true;    ///< also sweep db (trsm) and lu_nb (getrf)
  bool verbose = true;    ///< print per-candidate lines to stdout
};

struct Report {
  Isa isa = Isa::Portable;
  std::vector<Entry> tuned;    ///< "f64" and (if tuned) "f32" entries
  int candidates_timed = 0;
  int candidates_skipped = 0;  ///< dropped by budget exhaustion
  double seconds = 0.0;
};

/// Run the full autotune for the active ISA. tuning() is restored on exit;
/// apply the result by saving it and re-running Tuning::detect() (or a new
/// process).
Report run(const Options& opts);

/// Merge the report into `path`: replaces entries matching (report.isa,
/// type) and keeps everything else — tuning one machine's AVX-512 entry
/// must not clobber its AVX2 one.
bool save_report(const std::string& path, const Report& report);

}  // namespace conflux::xblas::autotune
