// From-scratch LAPACK subset: in-place LU (partial pivoting) and Cholesky
// factorizations plus the solve/permutation helpers built on them.
//
// These are the *local* kernels executed by each simulated rank (the paper
// uses MKL's getrf/potrf/trsm locally); they are also the reference the
// distributed factorizations are tested against. Like the level-3 BLAS they
// are templates over the scalar type with float/double instantiations; the
// residual helpers scale by the *instantiating* type's epsilon, so an fp32
// factorization is judged against fp32 backward-error bounds.
#pragma once

#include <type_traits>
#include <vector>

#include "blas/blas.hpp"
#include "tensor/matrix.hpp"

namespace conflux::xblas {

/// In-place LU with partial pivoting, blocked right-looking.
/// On return a holds L (unit diagonal, below) and U (on/above diagonal).
/// ipiv is LAPACK-style: at step k, row k was swapped with row ipiv[k] >= k.
/// Returns 0 on success, or k+1 if the k-th pivot is exactly zero (the
/// factorization continues with the remaining columns untouched, LAPACK-style).
template <typename T>
int getrf(MatrixView<T> a, std::vector<index_t>& ipiv);

/// In-place LU without pivoting (requires a "safe" matrix, e.g. diagonally
/// dominant); returns 0 or k+1 on zero diagonal.
template <typename T>
int getrf_nopiv(MatrixView<T> a);

/// In-place lower Cholesky: a(lower) := L with A = L*L^T. Only the lower
/// triangle of a is referenced/written. Returns 0 or k+1 if not positive
/// definite at step k.
template <typename T>
int potrf(MatrixView<T> a);

/// Apply ipiv row interchanges (as produced by getrf) to a, forward order.
template <typename T>
void laswp(MatrixView<T> a, const std::vector<index_t>& ipiv);

/// Convert LAPACK-style ipiv into the explicit row permutation `perm` such
/// that (P A)(i, :) == A(perm[i], :).
std::vector<index_t> ipiv_to_permutation(const std::vector<index_t>& ipiv, index_t n);

/// In-place variant reusing the caller's buffer (allocation-free once the
/// buffer's capacity covers n — the factor schedules' per-step tournaments
/// route through this).
void ipiv_to_permutation(const std::vector<index_t>& ipiv, index_t n,
                         std::vector<index_t>& perm);

/// Solve A x = b for nrhs right-hand sides given getrf output (a, ipiv);
/// b is overwritten with x.
template <typename T>
void getrs(ConstMatrixView<T> a, const std::vector<index_t>& ipiv,
           MatrixView<T> b);

/// Solve A x = b given potrf output (lower triangle of a); b overwritten.
template <typename T>
void potrs(ConstMatrixView<T> a, MatrixView<T> b);

/// Extract explicit unit-lower L (m x k) and upper U (k x n) factors from an
/// in-place LU result.
template <typename T>
Matrix<T> extract_lower_unit(ConstMatrixView<T> lu, index_t k);
template <typename T>
Matrix<T> extract_upper(ConstMatrixView<T> lu, index_t k);

/// ||A[perm,:] - L*U||_F / (||A||_F * N * eps_T): the normwise LU residual,
/// scaled by the scalar type's epsilon. `factored` is the in-place LU of the
/// permuted matrix; `perm` maps output row i to original row perm[i].
template <typename T>
double lu_residual(ConstMatrixView<T> a, ConstMatrixView<T> factored,
                   const std::vector<index_t>& perm);

/// ||A - L*L^T||_F / (||A||_F * N * eps_T) from an in-place potrf result.
template <typename T>
double cholesky_residual(ConstMatrixView<T> a, ConstMatrixView<T> factored);

// ---- concrete-type overloads (deduction helpers; see blas.hpp) ------------

inline int getrf(ViewD a, std::vector<index_t>& ipiv) { return getrf<double>(a, ipiv); }
inline int getrf(ViewF a, std::vector<index_t>& ipiv) { return getrf<float>(a, ipiv); }
inline int getrf_nopiv(ViewD a) { return getrf_nopiv<double>(a); }
inline int getrf_nopiv(ViewF a) { return getrf_nopiv<float>(a); }
inline int potrf(ViewD a) { return potrf<double>(a); }
inline int potrf(ViewF a) { return potrf<float>(a); }
inline void laswp(ViewD a, const std::vector<index_t>& ipiv) { laswp<double>(a, ipiv); }
inline void laswp(ViewF a, const std::vector<index_t>& ipiv) { laswp<float>(a, ipiv); }
inline void getrs(ConstViewD a, const std::vector<index_t>& ipiv, ViewD b) {
  getrs<double>(a, ipiv, b);
}
inline void getrs(ConstViewF a, const std::vector<index_t>& ipiv, ViewF b) {
  getrs<float>(a, ipiv, b);
}
inline void potrs(ConstViewD a, ViewD b) { potrs<double>(a, b); }
inline void potrs(ConstViewF a, ViewF b) { potrs<float>(a, b); }
inline MatrixD extract_lower_unit(ConstViewD lu, index_t k) {
  return extract_lower_unit<double>(lu, k);
}
inline MatrixF extract_lower_unit(ConstViewF lu, index_t k) {
  return extract_lower_unit<float>(lu, k);
}
inline MatrixD extract_upper(ConstViewD lu, index_t k) {
  return extract_upper<double>(lu, k);
}
inline MatrixF extract_upper(ConstViewF lu, index_t k) {
  return extract_upper<float>(lu, k);
}
inline double lu_residual(ConstViewD a, ConstViewD factored,
                          const std::vector<index_t>& perm) {
  return lu_residual<double>(a, factored, perm);
}
inline double lu_residual(ConstViewF a, ConstViewF factored,
                          const std::vector<index_t>& perm) {
  return lu_residual<float>(a, factored, perm);
}
inline double cholesky_residual(ConstViewD a, ConstViewD factored) {
  return cholesky_residual<double>(a, factored);
}
inline double cholesky_residual(ConstViewF a, ConstViewF factored) {
  return cholesky_residual<float>(a, factored);
}

}  // namespace conflux::xblas
