// From-scratch LAPACK subset: in-place LU (partial pivoting) and Cholesky
// factorizations plus the solve/permutation helpers built on them.
//
// These are the *local* kernels executed by each simulated rank (the paper
// uses MKL's getrf/potrf/trsm locally); they are also the reference the
// distributed factorizations are tested against.
#pragma once

#include <vector>

#include "blas/blas.hpp"
#include "tensor/matrix.hpp"

namespace conflux::xblas {

/// In-place LU with partial pivoting, blocked right-looking.
/// On return a holds L (unit diagonal, below) and U (on/above diagonal).
/// ipiv is LAPACK-style: at step k, row k was swapped with row ipiv[k] >= k.
/// Returns 0 on success, or k+1 if the k-th pivot is exactly zero (the
/// factorization continues with the remaining columns untouched, LAPACK-style).
int getrf(ViewD a, std::vector<index_t>& ipiv);

/// In-place LU without pivoting (requires a "safe" matrix, e.g. diagonally
/// dominant); returns 0 or k+1 on zero diagonal.
int getrf_nopiv(ViewD a);

/// In-place lower Cholesky: a(lower) := L with A = L*L^T. Only the lower
/// triangle of a is referenced/written. Returns 0 or k+1 if not positive
/// definite at step k.
int potrf(ViewD a);

/// Apply ipiv row interchanges (as produced by getrf) to a, forward order.
void laswp(ViewD a, const std::vector<index_t>& ipiv);

/// Convert LAPACK-style ipiv into the explicit row permutation `perm` such
/// that (P A)(i, :) == A(perm[i], :).
std::vector<index_t> ipiv_to_permutation(const std::vector<index_t>& ipiv, index_t n);

/// Solve A x = b for nrhs right-hand sides given getrf output (a, ipiv);
/// b is overwritten with x.
void getrs(ConstViewD a, const std::vector<index_t>& ipiv, ViewD b);

/// Solve A x = b given potrf output (lower triangle of a); b overwritten.
void potrs(ConstViewD a, ViewD b);

/// Extract explicit unit-lower L (m x k) and upper U (k x n) factors from an
/// in-place LU result.
MatrixD extract_lower_unit(ConstViewD lu, index_t k);
MatrixD extract_upper(ConstViewD lu, index_t k);

/// ||A[perm,:] - L*U||_F / (||A||_F * N * eps): the normwise LU residual.
/// `factored` is the in-place LU of the permuted matrix; `perm` maps output
/// row i to original row perm[i].
double lu_residual(ConstViewD a, ConstViewD factored, const std::vector<index_t>& perm);

/// ||A - L*L^T||_F / (||A||_F * N * eps) from an in-place potrf result.
double cholesky_residual(ConstViewD a, ConstViewD factored);

}  // namespace conflux::xblas
