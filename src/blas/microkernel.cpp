// Microkernel registry: hand-scheduled per-ISA gemm register tiles behind
// one runtime dispatch point (microkernel.hpp).
//
// Kernels (register tile MR x NR per scalar):
//   portable  8x8 fp64 / 16x8 fp32 — the PR-1 GCC vector-extension kernel,
//             lowered by the compiler to whatever the build target has.
//             Always registered; the conformance baseline and the gate
//             reference in bench/micro_blas_kernels.
//   avx2      8x6 fp64 / 16x6 fp32 — two ymm per A column, six broadcast
//             FMAs per k step; 12 accumulator + 3 operand registers fill
//             the 16-register ymm file.
//   avx512    8x8 fp64 / 16x8 fp32 — one zmm per A column, kc loop 2x
//             unrolled (16 independent FMAs in flight per unrolled step
//             against a 4-cycle FMA latency x 2/cycle throughput machine).
//   neon      8x6 fp64 / 16x6 fp32 — four q-registers per A column,
//             lane-broadcast FMAs; 24 accumulators of the 32-register file.
//
// All non-portable kernels software-prefetch the packed A/B streams a fixed
// distance ahead inside the kc loop (the packed layouts advance by exactly
// one cache line per fp64 k step) and touch the next micro-panels (a_next /
// b_next driver hints) plus the C tile on entry, so the tile's write-back
// misses overlap the flop loop instead of serializing after it.
//
// Bitwise contract: every kernel performs exactly one multiply-accumulate
// per (C element, k step), in increasing k order, with fusion matching the
// portable kernel's codegen in the SAME build: when the translation unit
// has FMA (-march=native on an FMA host, so the compiler contracts the
// portable kernel's `acc += a * b`), the hand kernels use fused intrinsics;
// when it does not (e.g. the CONFLUX_MARCH_NATIVE=OFF sanitizer builds),
// they use separate mul+add intrinsics and their target attributes
// deliberately omit "fma", so the compiler has no fused instruction to
// re-contract the pair into. The conformance suite (tests/blas_test.cpp)
// asserts bitwise equality against the portable kernel for every
// registered ISA in both build flavors.
#include "blas/microkernel.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "blas/tuning.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define XBLAS_X86_KERNELS 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define XBLAS_NEON_KERNELS 1
#include <arm_neon.h>
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace conflux::xblas {

namespace {

// ---- shared helpers -------------------------------------------------------

// Non-faulting touch of the next packed micro-panels / the C tile; a null
// hint is "nothing follows".
inline void prefetch_lines(const void* p, int lines) {
  if (p == nullptr) return;
  const char* q = static_cast<const char*>(p);
  for (int i = 0; i < lines; ++i) __builtin_prefetch(q + i * 64, 0, 3);
}

template <typename T>
inline void prefetch_c_tile(const T* c, index_t ldc, index_t mr) {
  for (index_t i = 0; i < mr; ++i) __builtin_prefetch(c + i * ldc, 1, 3);
}

// How far ahead (in k steps) the kc loops prefetch the packed streams. The
// fp64 packed-A layout advances 64 bytes per step (MR=8), so this is 8
// cache lines of lead — enough to cover an L2 hit at one line per cycle-ish
// consumption without thrashing L1.
constexpr index_t kPrefetchAhead = 8;

// ---- portable kernel (PR 1, moved verbatim from gemm.cpp) -----------------

#if defined(__GNUC__) || defined(__clang__)

// GCC/Clang portable vector extension: one 64-byte "register" of MR scalars
// (8 doubles or 16 floats). The compiler lowers it to whatever the target
// has (1 zmm on AVX-512, 2 ymm on AVX2, plain scalars elsewhere), and
// vector*scalar broadcasts the scalar, so each p step below is one unaligned
// load of a plus NR broadcast-FMAs. This sidesteps the auto-vectorizer
// entirely: the accumulator layout is the vector layout, so no shuffles
// appear in the loop. The attribute needs a literal size, hence the
// per-scalar specializations instead of a dependent vector_size.
template <typename T>
struct VecOf;
template <>
struct VecOf<double> {
  typedef double type __attribute__((vector_size(64)));
};
template <>
struct VecOf<float> {
  typedef float type __attribute__((vector_size(64)));
};

template <typename T>
typename VecOf<T>::type load_vreg(const T* p) {
  typename VecOf<T>::type v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

template <typename T>
void ukr_portable(index_t kc, const T* __restrict ap, const T* __restrict bp,
                  index_t bstride, T* __restrict c, index_t ldc, index_t mr,
                  index_t nr, const T* /*a_next*/, const T* /*b_next*/) {
  using vreg = typename VecOf<T>::type;
  constexpr index_t MR = RegTile<T>::mr;
  constexpr index_t NR = RegTile<T>::nr;
  static_assert(sizeof(vreg) == MR * sizeof(T), "tile must fill the vreg");
  // acc[j] holds column j of the MR x NR C tile.
  vreg acc[NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const vreg av = load_vreg<T>(ap + p * MR);
    const T* __restrict b = bp + p * bstride;
    for (index_t j = 0; j < NR; ++j) acc[j] += av * b[j];
  }
  // Transposed store back into row-major C; O(MR*NR) work against
  // O(kc*MR*NR) flops, so it stays off the critical path.
  for (index_t i = 0; i < mr; ++i) {
    T* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += acc[j][i];
  }
}

#else  // portable fallback, written so the j loop auto-vectorizes

template <typename T>
void ukr_portable(index_t kc, const T* __restrict ap, const T* __restrict bp,
                  index_t bstride, T* __restrict c, index_t ldc, index_t mr,
                  index_t nr, const T* /*a_next*/, const T* /*b_next*/) {
  constexpr index_t MR = RegTile<T>::mr;
  constexpr index_t NR = RegTile<T>::nr;
  T acc[NR][MR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* __restrict a = ap + p * MR;
    const T* __restrict b = bp + p * bstride;
    for (index_t j = 0; j < NR; ++j) {
      const T bj = b[j];
      for (index_t i = 0; i < MR; ++i) acc[j][i] += a[i] * bj;
    }
  }
  for (index_t i = 0; i < mr; ++i) {
    T* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += acc[j][i];
  }
}

#endif

// ---- x86 kernels ----------------------------------------------------------

#ifdef XBLAS_X86_KERNELS

// Fusion must match what the compiler does to the portable kernel in this
// same translation unit: contract iff the TU was built with FMA. When it
// was not, the target attributes also omit "fma" so the mul/add intrinsic
// pairs cannot be re-fused behind our back.
#ifdef __FMA__
#define XBLAS_TGT_AVX2 "avx2,fma"
#define XBLAS_TGT_AVX512 "avx512f,fma"
#define XBLAS_AVX512_CONTRACT_GUARD
#define XBLAS_FMADD_256D(a, b, c) _mm256_fmadd_pd((a), (b), (c))
#define XBLAS_FMADD_256S(a, b, c) _mm256_fmadd_ps((a), (b), (c))
#define XBLAS_FMADD_512D(a, b, c) _mm512_fmadd_pd((a), (b), (c))
#define XBLAS_FMADD_512S(a, b, c) _mm512_fmadd_ps((a), (b), (c))
#else
// No-FMA build: the AVX2 target has no fused instruction at all, so its
// mul+add pair can never be re-contracted. The AVX-512 target DOES (zmm
// vfmadd is part of AVX512F itself), so those kernels additionally pin
// fp-contract off; clang ignores the optimize attribute, so a no-FMA clang
// build registers no AVX-512 kernel rather than a non-conforming one.
#define XBLAS_TGT_AVX2 "avx2"
#define XBLAS_TGT_AVX512 "avx512f"
#define XBLAS_AVX512_CONTRACT_GUARD __attribute__((optimize("fp-contract=off")))
#define XBLAS_FMADD_256D(a, b, c) _mm256_add_pd(_mm256_mul_pd((a), (b)), (c))
#define XBLAS_FMADD_256S(a, b, c) _mm256_add_ps(_mm256_mul_ps((a), (b)), (c))
#define XBLAS_FMADD_512D(a, b, c) _mm512_add_pd(_mm512_mul_pd((a), (b)), (c))
#define XBLAS_FMADD_512S(a, b, c) _mm512_add_ps(_mm512_mul_ps((a), (b)), (c))
#endif

#if defined(__FMA__) || !defined(__clang__)
#define XBLAS_AVX512_KERNELS 1
#endif

// AVX2 fp64 8x6: A column = 2 ymm, 6 broadcast-FMA pairs per k step.
// 12 accumulators + 2 A + 1 broadcast = 15 of 16 ymm.
__attribute__((target(XBLAS_TGT_AVX2))) void ukr_avx2_d(
    index_t kc, const double* __restrict ap, const double* __restrict bp,
    index_t bstride, double* __restrict c, index_t ldc, index_t mr, index_t nr,
    const double* a_next, const double* b_next) {
  __m256d acc0[6], acc1[6];
  for (int j = 0; j < 6; ++j) {
    acc0[j] = _mm256_setzero_pd();
    acc1[j] = _mm256_setzero_pd();
  }
  prefetch_c_tile(c, ldc, mr);
  prefetch_lines(a_next, 4);
  prefetch_lines(b_next, 2);
  for (index_t p = 0; p < kc; ++p) {
    __builtin_prefetch(ap + (p + kPrefetchAhead) * 8, 0, 3);
    __builtin_prefetch(bp + (p + kPrefetchAhead) * bstride, 0, 3);
    const __m256d a0 = _mm256_loadu_pd(ap + p * 8);
    const __m256d a1 = _mm256_loadu_pd(ap + p * 8 + 4);
    const double* __restrict b = bp + p * bstride;
    for (int j = 0; j < 6; ++j) {
      const __m256d bj = _mm256_set1_pd(b[j]);
      acc0[j] = XBLAS_FMADD_256D(a0, bj, acc0[j]);
      acc1[j] = XBLAS_FMADD_256D(a1, bj, acc1[j]);
    }
  }
  alignas(32) double tile[6][8];
  for (int j = 0; j < 6; ++j) {
    _mm256_store_pd(tile[j], acc0[j]);
    _mm256_store_pd(tile[j] + 4, acc1[j]);
  }
  for (index_t i = 0; i < mr; ++i) {
    double* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += tile[j][i];
  }
}

// AVX2 fp32 16x6: same register shape as the fp64 kernel with twice the
// scalars per register — the fp32-doubles-throughput invariant.
__attribute__((target(XBLAS_TGT_AVX2))) void ukr_avx2_s(
    index_t kc, const float* __restrict ap, const float* __restrict bp,
    index_t bstride, float* __restrict c, index_t ldc, index_t mr, index_t nr,
    const float* a_next, const float* b_next) {
  __m256 acc0[6], acc1[6];
  for (int j = 0; j < 6; ++j) {
    acc0[j] = _mm256_setzero_ps();
    acc1[j] = _mm256_setzero_ps();
  }
  prefetch_c_tile(c, ldc, mr);
  prefetch_lines(a_next, 4);
  prefetch_lines(b_next, 2);
  for (index_t p = 0; p < kc; ++p) {
    __builtin_prefetch(ap + (p + kPrefetchAhead) * 16, 0, 3);
    __builtin_prefetch(bp + (p + kPrefetchAhead) * bstride, 0, 3);
    const __m256 a0 = _mm256_loadu_ps(ap + p * 16);
    const __m256 a1 = _mm256_loadu_ps(ap + p * 16 + 8);
    const float* __restrict b = bp + p * bstride;
    for (int j = 0; j < 6; ++j) {
      const __m256 bj = _mm256_set1_ps(b[j]);
      acc0[j] = XBLAS_FMADD_256S(a0, bj, acc0[j]);
      acc1[j] = XBLAS_FMADD_256S(a1, bj, acc1[j]);
    }
  }
  alignas(32) float tile[6][16];
  for (int j = 0; j < 6; ++j) {
    _mm256_store_ps(tile[j], acc0[j]);
    _mm256_store_ps(tile[j] + 8, acc1[j]);
  }
  for (index_t i = 0; i < mr; ++i) {
    float* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += tile[j][i];
  }
}

// AVX-512 fp64 8x8, kc loop 2x unrolled: A column = 1 zmm, 8 broadcast-FMAs
// per k step, two k steps per iteration. The per-element accumulation chain
// stays strictly k-ordered (both unrolled steps feed the SAME accumulator,
// in order), so unrolling never changes results — it exists to halve the
// loop-carried bookkeeping and give the scheduler 16 independent FMAs per
// iteration.
#ifdef XBLAS_AVX512_KERNELS
__attribute__((target(XBLAS_TGT_AVX512))) XBLAS_AVX512_CONTRACT_GUARD void
ukr_avx512_d(
    index_t kc, const double* __restrict ap, const double* __restrict bp,
    index_t bstride, double* __restrict c, index_t ldc, index_t mr, index_t nr,
    const double* a_next, const double* b_next) {
  __m512d acc[8];
  for (int j = 0; j < 8; ++j) acc[j] = _mm512_setzero_pd();
  prefetch_c_tile(c, ldc, mr);
  prefetch_lines(a_next, 4);
  prefetch_lines(b_next, 2);
  index_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    __builtin_prefetch(ap + (p + kPrefetchAhead) * 8, 0, 3);
    __builtin_prefetch(bp + (p + kPrefetchAhead) * bstride, 0, 3);
    const __m512d a0 = _mm512_loadu_pd(ap + p * 8);
    const double* __restrict b0 = bp + p * bstride;
    for (int j = 0; j < 8; ++j) {
      acc[j] = XBLAS_FMADD_512D(a0, _mm512_set1_pd(b0[j]), acc[j]);
    }
    const __m512d a1 = _mm512_loadu_pd(ap + (p + 1) * 8);
    const double* __restrict b1 = b0 + bstride;
    for (int j = 0; j < 8; ++j) {
      acc[j] = XBLAS_FMADD_512D(a1, _mm512_set1_pd(b1[j]), acc[j]);
    }
  }
  if (p < kc) {
    const __m512d a0 = _mm512_loadu_pd(ap + p * 8);
    const double* __restrict b0 = bp + p * bstride;
    for (int j = 0; j < 8; ++j) {
      acc[j] = XBLAS_FMADD_512D(a0, _mm512_set1_pd(b0[j]), acc[j]);
    }
  }
  alignas(64) double tile[8][8];
  for (int j = 0; j < 8; ++j) _mm512_store_pd(tile[j], acc[j]);
  for (index_t i = 0; i < mr; ++i) {
    double* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += tile[j][i];
  }
}

// AVX-512 fp32 16x8, same structure.
__attribute__((target(XBLAS_TGT_AVX512))) XBLAS_AVX512_CONTRACT_GUARD void
ukr_avx512_s(
    index_t kc, const float* __restrict ap, const float* __restrict bp,
    index_t bstride, float* __restrict c, index_t ldc, index_t mr, index_t nr,
    const float* a_next, const float* b_next) {
  __m512 acc[8];
  for (int j = 0; j < 8; ++j) acc[j] = _mm512_setzero_ps();
  prefetch_c_tile(c, ldc, mr);
  prefetch_lines(a_next, 4);
  prefetch_lines(b_next, 2);
  index_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    __builtin_prefetch(ap + (p + kPrefetchAhead) * 16, 0, 3);
    __builtin_prefetch(bp + (p + kPrefetchAhead) * bstride, 0, 3);
    const __m512 a0 = _mm512_loadu_ps(ap + p * 16);
    const float* __restrict b0 = bp + p * bstride;
    for (int j = 0; j < 8; ++j) {
      acc[j] = XBLAS_FMADD_512S(a0, _mm512_set1_ps(b0[j]), acc[j]);
    }
    const __m512 a1 = _mm512_loadu_ps(ap + (p + 1) * 16);
    const float* __restrict b1 = b0 + bstride;
    for (int j = 0; j < 8; ++j) {
      acc[j] = XBLAS_FMADD_512S(a1, _mm512_set1_ps(b1[j]), acc[j]);
    }
  }
  if (p < kc) {
    const __m512 a0 = _mm512_loadu_ps(ap + p * 16);
    const float* __restrict b0 = bp + p * bstride;
    for (int j = 0; j < 8; ++j) {
      acc[j] = XBLAS_FMADD_512S(a0, _mm512_set1_ps(b0[j]), acc[j]);
    }
  }
  alignas(64) float tile[8][16];
  for (int j = 0; j < 8; ++j) _mm512_store_ps(tile[j], acc[j]);
  for (index_t i = 0; i < mr; ++i) {
    float* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += tile[j][i];
  }
}

#endif  // XBLAS_AVX512_KERNELS

#endif  // XBLAS_X86_KERNELS

// ---- NEON kernels ---------------------------------------------------------

#ifdef XBLAS_NEON_KERNELS

// NEON fp64 8x6: A column = 4 q-registers, lane-broadcast FMAs (vfmaq_n).
// 24 accumulators + 4 A registers of the 32-register file. aarch64 compilers
// contract the portable kernel by default (-ffp-contract=fast), so fused
// intrinsics here keep the bitwise contract.
void ukr_neon_d(index_t kc, const double* __restrict ap,
                const double* __restrict bp, index_t bstride,
                double* __restrict c, index_t ldc, index_t mr, index_t nr,
                const double* a_next, const double* b_next) {
  float64x2_t acc[6][4];
  for (int j = 0; j < 6; ++j) {
    for (int q = 0; q < 4; ++q) acc[j][q] = vdupq_n_f64(0.0);
  }
  prefetch_c_tile(c, ldc, mr);
  prefetch_lines(a_next, 4);
  prefetch_lines(b_next, 2);
  for (index_t p = 0; p < kc; ++p) {
    __builtin_prefetch(ap + (p + kPrefetchAhead) * 8, 0, 3);
    __builtin_prefetch(bp + (p + kPrefetchAhead) * bstride, 0, 3);
    const float64x2_t a0 = vld1q_f64(ap + p * 8);
    const float64x2_t a1 = vld1q_f64(ap + p * 8 + 2);
    const float64x2_t a2 = vld1q_f64(ap + p * 8 + 4);
    const float64x2_t a3 = vld1q_f64(ap + p * 8 + 6);
    const double* __restrict b = bp + p * bstride;
    for (int j = 0; j < 6; ++j) {
      const double bj = b[j];
      acc[j][0] = vfmaq_n_f64(acc[j][0], a0, bj);
      acc[j][1] = vfmaq_n_f64(acc[j][1], a1, bj);
      acc[j][2] = vfmaq_n_f64(acc[j][2], a2, bj);
      acc[j][3] = vfmaq_n_f64(acc[j][3], a3, bj);
    }
  }
  alignas(16) double tile[6][8];
  for (int j = 0; j < 6; ++j) {
    for (int q = 0; q < 4; ++q) vst1q_f64(tile[j] + 2 * q, acc[j][q]);
  }
  for (index_t i = 0; i < mr; ++i) {
    double* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += tile[j][i];
  }
}

// NEON fp32 16x6.
void ukr_neon_s(index_t kc, const float* __restrict ap,
                const float* __restrict bp, index_t bstride,
                float* __restrict c, index_t ldc, index_t mr, index_t nr,
                const float* a_next, const float* b_next) {
  float32x4_t acc[6][4];
  for (int j = 0; j < 6; ++j) {
    for (int q = 0; q < 4; ++q) acc[j][q] = vdupq_n_f32(0.0f);
  }
  prefetch_c_tile(c, ldc, mr);
  prefetch_lines(a_next, 4);
  prefetch_lines(b_next, 2);
  for (index_t p = 0; p < kc; ++p) {
    __builtin_prefetch(ap + (p + kPrefetchAhead) * 16, 0, 3);
    __builtin_prefetch(bp + (p + kPrefetchAhead) * bstride, 0, 3);
    const float32x4_t a0 = vld1q_f32(ap + p * 16);
    const float32x4_t a1 = vld1q_f32(ap + p * 16 + 4);
    const float32x4_t a2 = vld1q_f32(ap + p * 16 + 8);
    const float32x4_t a3 = vld1q_f32(ap + p * 16 + 12);
    const float* __restrict b = bp + p * bstride;
    for (int j = 0; j < 6; ++j) {
      const float bj = b[j];
      acc[j][0] = vfmaq_n_f32(acc[j][0], a0, bj);
      acc[j][1] = vfmaq_n_f32(acc[j][1], a1, bj);
      acc[j][2] = vfmaq_n_f32(acc[j][2], a2, bj);
      acc[j][3] = vfmaq_n_f32(acc[j][3], a3, bj);
    }
  }
  alignas(16) float tile[6][16];
  for (int j = 0; j < 6; ++j) {
    for (int q = 0; q < 4; ++q) vst1q_f32(tile[j] + 4 * q, acc[j][q]);
  }
  for (index_t i = 0; i < mr; ++i) {
    float* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += tile[j][i];
  }
}

#endif  // XBLAS_NEON_KERNELS

// ---- registry -------------------------------------------------------------

const MicroKernel<double> k_portable_d{Isa::Portable, RegTile<double>::mr,
                                       RegTile<double>::nr,
                                       &ukr_portable<double>};
const MicroKernel<float> k_portable_s{Isa::Portable, RegTile<float>::mr,
                                      RegTile<float>::nr, &ukr_portable<float>};

#ifdef XBLAS_X86_KERNELS
const MicroKernel<double> k_avx2_d{Isa::Avx2, 8, 6, &ukr_avx2_d};
const MicroKernel<float> k_avx2_s{Isa::Avx2, 16, 6, &ukr_avx2_s};
#ifdef XBLAS_AVX512_KERNELS
const MicroKernel<double> k_avx512_d{Isa::Avx512, 8, 8, &ukr_avx512_d};
const MicroKernel<float> k_avx512_s{Isa::Avx512, 16, 8, &ukr_avx512_s};
#endif
#endif
#ifdef XBLAS_NEON_KERNELS
const MicroKernel<double> k_neon_d{Isa::Neon, 8, 6, &ukr_neon_d};
const MicroKernel<float> k_neon_s{Isa::Neon, 16, 6, &ukr_neon_s};
#endif

bool host_supports(Isa isa) {
  switch (isa) {
    case Isa::Portable:
      return true;
#ifdef XBLAS_X86_KERNELS
    case Isa::Avx2:
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::Avx512:
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx512f");
#endif
#ifdef XBLAS_NEON_KERNELS
    case Isa::Neon:
      return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#endif
    default:
      return false;
  }
}

// Selection state: -1 = not yet resolved. A benign initialization race
// resolves to the same value on every thread.
std::atomic<int> g_active_isa{-1};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Portable:
      return "portable";
    case Isa::Avx2:
      return "avx2";
    case Isa::Avx512:
      return "avx512";
    case Isa::Neon:
      return "neon";
  }
  return "unknown";
}

bool parse_isa(std::string_view name, Isa* out) {
  for (int i = 0; i < kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (name == isa_name(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

template <>
const MicroKernel<double>* registered_microkernel<double>(Isa isa) {
  switch (isa) {
    case Isa::Portable:
      return &k_portable_d;
#ifdef XBLAS_X86_KERNELS
    case Isa::Avx2:
      return &k_avx2_d;
#ifdef XBLAS_AVX512_KERNELS
    case Isa::Avx512:
      return &k_avx512_d;
#endif
#endif
#ifdef XBLAS_NEON_KERNELS
    case Isa::Neon:
      return &k_neon_d;
#endif
    default:
      return nullptr;
  }
}

template <>
const MicroKernel<float>* registered_microkernel<float>(Isa isa) {
  switch (isa) {
    case Isa::Portable:
      return &k_portable_s;
#ifdef XBLAS_X86_KERNELS
    case Isa::Avx2:
      return &k_avx2_s;
#ifdef XBLAS_AVX512_KERNELS
    case Isa::Avx512:
      return &k_avx512_s;
#endif
#endif
#ifdef XBLAS_NEON_KERNELS
    case Isa::Neon:
      return &k_neon_s;
#endif
    default:
      return nullptr;
  }
}

bool isa_available(Isa isa) {
  return registered_microkernel<double>(isa) != nullptr && host_supports(isa);
}

Isa detect_isa() {
  // Highest ISA first; Neon and the x86 pair are mutually exclusive builds.
  for (const Isa isa : {Isa::Avx512, Isa::Neon, Isa::Avx2}) {
    if (isa_available(isa)) return isa;
  }
  return Isa::Portable;
}

Isa resolve_isa_from_env() {
  const char* s = std::getenv("XBLAS_ISA");
  if (s != nullptr && *s != '\0') {
    Isa isa;
    if (!parse_isa(s, &isa)) {
      std::fprintf(stderr,
                   "xblas: XBLAS_ISA=%s not recognized "
                   "(portable|avx2|avx512|neon); using %s\n",
                   s, isa_name(detect_isa()));
    } else if (!isa_available(isa)) {
      std::fprintf(stderr,
                   "xblas: XBLAS_ISA=%s is not available on this host; "
                   "using %s\n",
                   s, isa_name(detect_isa()));
    } else {
      return isa;
    }
  }
  return detect_isa();
}

Isa active_isa() {
  const int v = g_active_isa.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Isa>(v);
  const Isa resolved = resolve_isa_from_env();
  g_active_isa.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

bool set_active_isa(Isa isa) {
  if (!isa_available(isa)) return false;
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

}  // namespace conflux::xblas
