// Blocked syrk / gemmt: partition C into db x db diagonal blocks; every
// off-diagonal panel update is a plain gemm (level-3 speed), and each
// diagonal block is computed by gemm into a small scratch tile whose
// referenced triangle is then merged into C. Only the `uplo` triangle of C
// is ever read or written. Templated over the scalar (float/double
// instantiations below).
#include <cmath>

#include "blas/blas.hpp"
#include "blas/tuning.hpp"
#include "support/check.hpp"

namespace conflux::xblas {

namespace {

// View of the ib rows of op(A) starting at row i0 (k columns deep).
template <typename T>
ConstMatrixView<T> op_rows(Trans trans, ConstMatrixView<T> a, index_t i0,
                           index_t ib, index_t k) {
  return (trans == Trans::None) ? a.block(i0, 0, ib, k) : a.block(0, i0, k, ib);
}

// View of the jb columns of op(B) starting at column j0 (k rows deep).
template <typename T>
ConstMatrixView<T> op_cols(Trans trans, ConstMatrixView<T> b, index_t j0,
                           index_t jb, index_t k) {
  return (trans == Trans::None) ? b.block(0, j0, k, jb) : b.block(j0, 0, jb, k);
}

// Per-scalar thread-local diagonal-block scratch (at most db x db), so
// per-step Schur updates are allocation-free in steady state; concrete
// thread_locals for the LeakSanitizer reason documented in gemm.cpp.
thread_local std::vector<double> tls_diag_d;
thread_local std::vector<float> tls_diag_f;
template <typename T>
std::vector<T>& tls_diag();
template <>
std::vector<double>& tls_diag<double>() {
  return tls_diag_d;
}
template <>
std::vector<float>& tls_diag<float>() {
  return tls_diag_f;
}

}  // namespace

template <typename T>
void gemmt(UpLo uplo, Trans transa, Trans transb, std::type_identity_t<T> alpha,
           ConstMatrixView<T> a, ConstMatrixView<T> b,
           std::type_identity_t<T> beta, MatrixView<T> c) {
  const index_t n = c.rows();
  expects(c.cols() == n, "gemmt: C must be square");
  const index_t k = (transa == Trans::None) ? a.cols() : a.rows();
  expects(((transa == Trans::None) ? a.rows() : a.cols()) == n, "gemmt: A/C shape");
  expects(((transb == Trans::None) ? b.rows() : b.cols()) == k, "gemmt: inner dim");
  expects(((transb == Trans::None) ? b.cols() : b.rows()) == n, "gemmt: B/C shape");
  if (n == 0) return;

  const index_t nb = std::max<index_t>(1, tuning().db);
  const index_t db = std::min(nb, n);
  std::vector<T>& diag_buf = tls_diag<T>();
  if (static_cast<index_t>(diag_buf.size()) < db * db)
    diag_buf.resize(static_cast<std::size_t>(db * db));
  MatrixView<T> diag(diag_buf.data(), db, db, db);
  for (index_t i0 = 0; i0 < n; i0 += nb) {
    const index_t ib = std::min(nb, n - i0);
    const ConstMatrixView<T> arows = op_rows<T>(transa, a, i0, ib, k);
    // Off-diagonal panel of this block row: full rectangle, plain gemm.
    if (uplo == UpLo::Lower) {
      if (i0 > 0) {
        gemm<T>(transa, transb, alpha, arows, op_cols<T>(transb, b, 0, i0, k),
                beta, c.block(i0, 0, ib, i0));
      }
    } else {
      const index_t j1 = i0 + ib;
      if (j1 < n) {
        gemm<T>(transa, transb, alpha, arows,
                op_cols<T>(transb, b, j1, n - j1, k), beta,
                c.block(i0, j1, ib, n - j1));
      }
    }
    // Diagonal block: gemm into scratch, merge the referenced triangle.
    MatrixView<T> d = diag.block(0, 0, ib, ib);
    gemm<T>(transa, transb, alpha, arows, op_cols<T>(transb, b, i0, ib, k),
            T{}, d);
    MatrixView<T> cd = c.block(i0, i0, ib, ib);
    for (index_t i = 0; i < ib; ++i) {
      const index_t jlo = (uplo == UpLo::Lower) ? 0 : i;
      const index_t jhi = (uplo == UpLo::Lower) ? i : ib - 1;
      if (beta == T{}) {
        for (index_t j = jlo; j <= jhi; ++j) cd(i, j) = d(i, j);
      } else {
        for (index_t j = jlo; j <= jhi; ++j)
          cd(i, j) = beta * cd(i, j) + d(i, j);
      }
    }
  }
}

template <typename T>
void syrk(UpLo uplo, Trans trans, std::type_identity_t<T> alpha,
          ConstMatrixView<T> a, std::type_identity_t<T> beta, MatrixView<T> c) {
  const index_t n = c.rows();
  expects(c.cols() == n, "syrk: C must be square");
  expects(((trans == Trans::None) ? a.rows() : a.cols()) == n, "syrk: A/C shape");
  // C = alpha*op(A)*op(A)^T + beta*C is gemmt with B = A and the opposite
  // transposition on the B side.
  const Trans transb =
      (trans == Trans::None) ? Trans::Transpose : Trans::None;
  gemmt<T>(uplo, trans, transb, alpha, a, a, beta, c);
}

template <typename T>
double norm_frobenius(ConstMatrixView<T> a) {
  double sum = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      const double v = static_cast<double>(a(i, j));
      sum += v * v;
    }
  }
  return std::sqrt(sum);
}

template <typename T>
double norm_max(ConstMatrixView<T> a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      const double v = std::abs(static_cast<double>(a(i, j)));
      if (v > best) best = v;
    }
  }
  return best;
}

template void gemmt<float>(UpLo, Trans, Trans, float, ConstViewF, ConstViewF,
                           float, ViewF);
template void gemmt<double>(UpLo, Trans, Trans, double, ConstViewD, ConstViewD,
                            double, ViewD);
template void syrk<float>(UpLo, Trans, float, ConstViewF, float, ViewF);
template void syrk<double>(UpLo, Trans, double, ConstViewD, double, ViewD);
template double norm_frobenius<float>(ConstViewF);
template double norm_frobenius<double>(ConstViewD);
template double norm_max<float>(ConstViewF);
template double norm_max<double>(ConstViewD);

}  // namespace conflux::xblas
