#include <cmath>

#include "blas/blas.hpp"
#include "support/check.hpp"

namespace conflux::xblas {

void syrk(UpLo uplo, Trans trans, double alpha, ConstViewD a, double beta, ViewD c) {
  const index_t n = c.rows();
  expects(c.cols() == n, "syrk: C must be square");
  const index_t k = (trans == Trans::None) ? a.cols() : a.rows();
  expects(((trans == Trans::None) ? a.rows() : a.cols()) == n, "syrk: A/C shape");

  const auto elem = [&](index_t i, index_t p) {
    return (trans == Trans::None) ? a(i, p) : a(p, i);
  };
  for (index_t i = 0; i < n; ++i) {
    const index_t jlo = (uplo == UpLo::Lower) ? 0 : i;
    const index_t jhi = (uplo == UpLo::Lower) ? i : n - 1;
    for (index_t j = jlo; j <= jhi; ++j) {
      double sum = 0.0;
      for (index_t p = 0; p < k; ++p) sum += elem(i, p) * elem(j, p);
      c(i, j) = alpha * sum + beta * c(i, j);
    }
  }
}

void gemmt(UpLo uplo, Trans transa, Trans transb, double alpha, ConstViewD a,
           ConstViewD b, double beta, ViewD c) {
  const index_t n = c.rows();
  expects(c.cols() == n, "gemmt: C must be square");
  const index_t k = (transa == Trans::None) ? a.cols() : a.rows();
  expects(((transa == Trans::None) ? a.rows() : a.cols()) == n, "gemmt: A/C shape");
  expects(((transb == Trans::None) ? b.rows() : b.cols()) == k, "gemmt: inner dim");
  expects(((transb == Trans::None) ? b.cols() : b.rows()) == n, "gemmt: B/C shape");

  const auto aelem = [&](index_t i, index_t p) {
    return (transa == Trans::None) ? a(i, p) : a(p, i);
  };
  const auto belem = [&](index_t p, index_t j) {
    return (transb == Trans::None) ? b(p, j) : b(j, p);
  };
  for (index_t i = 0; i < n; ++i) {
    const index_t jlo = (uplo == UpLo::Lower) ? 0 : i;
    const index_t jhi = (uplo == UpLo::Lower) ? i : n - 1;
    for (index_t j = jlo; j <= jhi; ++j) {
      double sum = 0.0;
      for (index_t p = 0; p < k; ++p) sum += aelem(i, p) * belem(p, j);
      c(i, j) = alpha * sum + beta * c(i, j);
    }
  }
}

double norm_frobenius(ConstViewD a) {
  double sum = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) sum += a(i, j) * a(i, j);
  }
  return std::sqrt(sum);
}

double norm_max(ConstViewD a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      const double v = a(i, j) < 0 ? -a(i, j) : a(i, j);
      if (v > best) best = v;
    }
  }
  return best;
}

}  // namespace conflux::xblas
