// Runtime-dispatched gemm microkernel registry.
//
// The BLIS-style five-loop driver in src/blas/gemm.cpp is ISA-agnostic: it
// packs operands into micro-panels and calls one MR x NR register-tiled
// kernel per C tile. This header makes that kernel a runtime choice. Each
// entry pairs a kernel function with its register-tile shape, so the driver
// sizes its pack buffers, loop steps, and edge tiles from the *active*
// kernel — per-ISA tile shapes (AVX2 runs 8x6 fp64 where AVX-512 runs 8x8)
// never leak into the driver, trsm/syrk/gemmt, or the factor cores.
//
// Selection happens once, at first BLAS use:
//   1. XBLAS_ISA={portable,avx2,avx512,neon} forces a kernel (falling back
//      with a stderr warning if the host cannot run it), else
//   2. detect_isa() picks the best kernel the host supports, via
//      __builtin_cpu_supports (x86 cpuid) or getauxval (aarch64 hwcaps).
//
// Every kernel accumulates each C element in the identical fixed k-order
// (one multiply-accumulate per (element, p) step, fused exactly when the
// build's portable kernel fuses — see microkernel.cpp), so switching ISA
// never changes results: the conformance suite asserts bitwise equality
// between every registered kernel and the portable one.
#pragma once

#include <string_view>

#include "tensor/matrix.hpp"

namespace conflux::xblas {

enum class Isa : int { Portable = 0, Avx2 = 1, Avx512 = 2, Neon = 3 };
inline constexpr int kIsaCount = 4;

/// Lower-case name used by XBLAS_ISA, bench rows, and the tuning file.
const char* isa_name(Isa isa);

/// Parse an XBLAS_ISA-style name; returns false (and leaves *out alone) on
/// unknown names.
bool parse_isa(std::string_view name, Isa* out);

/// C[mr x nr] += packed-A micro-panel * op(B) stripe, kc deep.
///   ap       kc slices of MR contiguous values (zero-padded past mr)
///   bp       kc rows of B lanes, `bstride` apart — NR for a packed panel
///            (zero-padded past nr), or the matrix leading dimension when
///            the small-k path streams op(B) rows in place (full stripes
///            only: the flop loop reads NR lanes unconditionally)
///   mr, nr   live extent of the C tile (<= the kernel's MR x NR)
///   a_next   first byte of the next packed A micro-panel this thread will
///            consume, or nullptr — software-prefetch hint only
///   b_next   first byte of the next packed B stripe, or nullptr — ditto
template <typename T>
using MicroKernelFn = void (*)(index_t kc, const T* ap, const T* bp,
                               index_t bstride, T* c, index_t ldc, index_t mr,
                               index_t nr, const T* a_next, const T* b_next);

template <typename T>
struct MicroKernel {
  Isa isa;
  index_t mr;  ///< register-tile rows: pack_a pads A micro-panels to this
  index_t nr;  ///< register-tile cols: pack_b pads B micro-panels to this
  MicroKernelFn<T> fn;
};

/// Kernel compiled into this binary for `isa`, or nullptr. Kernels register
/// in float/double pairs: the two specializations are null together.
template <typename T>
const MicroKernel<T>* registered_microkernel(Isa isa);

/// True when `isa` is both compiled in and runnable on this host.
bool isa_available(Isa isa);

/// Best available ISA for this host (ignores XBLAS_ISA).
Isa detect_isa();

/// What active_isa() would resolve to right now: the validated XBLAS_ISA
/// override if present and available, else detect_isa(). Split out so tests
/// can exercise the env parsing without re-initializing the process-wide
/// selection.
Isa resolve_isa_from_env();

/// The process-wide selection, resolved once at first use.
Isa active_isa();

/// Force the selection (benches / tests). Returns false — and changes
/// nothing — if `isa` is not available on this host. Not safe to call
/// concurrently with running BLAS calls.
bool set_active_isa(Isa isa);

template <typename T>
inline const MicroKernel<T>& active_microkernel() {
  return *registered_microkernel<T>(active_isa());
}

/// RAII forcing of the active kernel for a scope (benches / tests). If the
/// requested ISA is unavailable the scope runs with the previous selection.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : saved_(active_isa()) { set_active_isa(isa); }
  ~ScopedIsa() { set_active_isa(saved_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  Isa saved_;
};

}  // namespace conflux::xblas
