// BLIS-style blocked gemm: pack operands into contiguous micro-panel
// buffers, then drive a register-tiled microkernel over them.
//
// Loop structure (outer to inner), following Goto/BLIS:
//   jc over columns of C in steps of nc   (packed B panel: kc x nc)
//   pc over the k dimension in steps of kc
//     pack op(B)(pc:, jc:) into micro-panels of kNR columns
//   ic over rows of C in steps of mc      (packed A block: mc x kc)
//     pack alpha*op(A)(ic:, pc:) into micro-panels of kMR rows
//     jr/ir over micro-tiles, each handled by the kMR x kNR microkernel
//
// Two departures from the textbook loop nest, both motivated by the
// factorization workloads (Schur updates with k = v in the tens, panel
// updates with m <= one cache block):
//   - small-k fast path: when k <= Tuning::small_k and B is untransposed,
//     B is never packed — a strided microkernel streams op(B) rows in
//     place. Packing B costs a full extra pass over B per (jc, pc) block,
//     which is pure overhead when the k loop is a handful of iterations.
//   - jr parallelization: when there are fewer A row blocks than threads
//     (panel updates: m <= mc means ONE block), threads cooperatively pack
//     the A block and then split the jr stripe loop, so small-m updates
//     still use the whole machine.
//
// OpenMP: threads cooperate on packing B (worksharing over micro-panels)
// and then either split the ic loop (each thread packing A into its own
// buffer) or, when the ic loop is too short, split the jr loop against a
// cooperatively packed shared A block. Every C element is accumulated in
// the same fixed pc-then-p order regardless of thread count or path, and
// every C tile is written by exactly one thread, so results are bitwise
// identical run to run and across thread counts.
#include <algorithm>
#include <vector>

#include "blas/blas.hpp"
#include "blas/tuning.hpp"
#include "support/check.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace conflux::xblas {

namespace {

inline index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }
inline index_t round_up(index_t a, index_t b) { return ceil_div(a, b) * b; }

// C[mr x nr] += packed-A micro-panel * op(B) stripe, kc deep.
//   ap: kc slices of kMR values (column of op(A), zero-padded past mr)
//   bp: kc rows of B lanes, `bstride` apart — kNR for a packed micro-panel
//       (zero-padded past nr), or the matrix leading dimension when the
//       small-k path streams op(B) rows in place (full stripes only:
//       the flop loop reads kNR lanes unconditionally, so a strided call
//       requires nr == kNR)
// The fixed-size accumulator plus the compile-time kMR/kNR trip counts let
// the compiler keep acc[][] entirely in vector registers and emit an FMA
// per element; there are no branches in the flop loop, and the packed and
// strided callers perform the identical multiply-accumulate sequence on
// identical values, so their tiles are bitwise equal.
#if defined(__GNUC__) || defined(__clang__)

// GCC/Clang portable vector extension: one "register" of kMR doubles. The
// compiler lowers it to whatever the target has (1 zmm on AVX-512, 2 ymm on
// AVX2, plain scalars elsewhere), and vector*scalar broadcasts the scalar,
// so each p step below is one unaligned load of a plus kNR broadcast-FMAs.
// This sidesteps the auto-vectorizer entirely: the accumulator layout is
// the vector layout, so no shuffles appear in the loop.
typedef double vreg __attribute__((vector_size(kMR * sizeof(double))));

inline vreg load_vreg(const double* p) {
  vreg v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

void micro_kernel(index_t kc, const double* __restrict ap,
                  const double* __restrict bp, index_t bstride,
                  double* __restrict c, index_t ldc, index_t mr, index_t nr) {
  // acc[j] holds column j of the kMR x kNR C tile.
  vreg acc[kNR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const vreg av = load_vreg(ap + p * kMR);
    const double* __restrict b = bp + p * bstride;
    for (index_t j = 0; j < kNR; ++j) acc[j] += av * b[j];
  }
  // Transposed store back into row-major C; O(kMR*kNR) work against
  // O(kc*kMR*kNR) flops, so it stays off the critical path.
  for (index_t i = 0; i < mr; ++i) {
    double* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += acc[j][i];
  }
}

#else  // portable fallback, written so the j loop auto-vectorizes

void micro_kernel(index_t kc, const double* __restrict ap,
                  const double* __restrict bp, index_t bstride,
                  double* __restrict c, index_t ldc, index_t mr, index_t nr) {
  double acc[kNR][kMR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* __restrict a = ap + p * kMR;
    const double* __restrict b = bp + p * bstride;
    for (index_t j = 0; j < kNR; ++j) {
      const double bj = b[j];
      for (index_t i = 0; i < kMR; ++i) acc[j][i] += a[i] * bj;
    }
  }
  for (index_t i = 0; i < mr; ++i) {
    double* __restrict crow = c + i * ldc;
    for (index_t j = 0; j < nr; ++j) crow[j] += acc[j][i];
  }
}

#endif

// Pack alpha*op(A)(ic:ic+mc, pc:pc+kc) as ceil(mc/kMR) micro-panels, each
// kc slices of kMR contiguous values, zero-padded in the last panel.
void pack_a(Trans trans, double alpha, ConstViewD a, index_t ic, index_t pc,
            index_t mc, index_t kc, double* buf) {
  for (index_t ir = 0; ir < mc; ir += kMR) {
    const index_t mr = std::min(kMR, mc - ir);
    double* dst = buf + (ir / kMR) * (kMR * kc);
    if (mr < kMR) std::fill(dst, dst + kMR * kc, 0.0);
    if (trans == Trans::None) {
      // Rows of A are contiguous: iterate i outer for streaming reads.
      for (index_t i = 0; i < mr; ++i) {
        const double* src = a.row(ic + ir + i) + pc;
        for (index_t p = 0; p < kc; ++p) dst[p * kMR + i] = alpha * src[p];
      }
    } else {
      // op(A)(r, c) = A(c, r): a row of A supplies one k-slice.
      for (index_t p = 0; p < kc; ++p) {
        const double* src = a.row(pc + p) + ic + ir;
        for (index_t i = 0; i < mr; ++i) dst[p * kMR + i] = alpha * src[i];
      }
    }
  }
}

// Pack one micro-panel (kNR columns starting at jc+jr) of op(B)(pc:, jc:),
// kc slices of kNR contiguous values, zero-padded past nr.
void pack_b_panel(Trans trans, ConstViewD b, index_t pc, index_t jc,
                  index_t jr, index_t nc, index_t kc, double* dst) {
  const index_t nr = std::min(kNR, nc - jr);
  if (nr < kNR) std::fill(dst, dst + kNR * kc, 0.0);
  if (trans == Trans::None) {
    for (index_t p = 0; p < kc; ++p) {
      const double* src = b.row(pc + p) + jc + jr;
      for (index_t j = 0; j < nr; ++j) dst[p * kNR + j] = src[j];
    }
  } else {
    // op(B)(r, c) = B(c, r): column j of the panel is a row of B.
    for (index_t j = 0; j < nr; ++j) {
      const double* src = b.row(jc + jr + j) + pc;
      for (index_t p = 0; p < kc; ++p) dst[p * kNR + j] = src[p];
    }
  }
}

// Direct strided kernel for problems too small to amortize packing.
void gemm_small(Trans transa, Trans transb, double alpha, ConstViewD a,
                ConstViewD b, ViewD c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (transa == Trans::None) ? a.cols() : a.rows();
  for (index_t i = 0; i < m; ++i) {
    double* crow = c.row(i);
    for (index_t p = 0; p < k; ++p) {
      const double aip =
          alpha * ((transa == Trans::None) ? a(i, p) : a(p, i));
      if (transb == Trans::None) {
        const double* brow = b.row(p);
        for (index_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
      } else {
        for (index_t j = 0; j < n; ++j) crow[j] += aip * b(j, p);
      }
    }
  }
}

// Per-thread packing buffer for A blocks; persists across gemm calls so
// medium-size factorization updates do not pay an allocation per call.
thread_local std::vector<double> tls_apack;

// Packed-B buffer, also cached across calls (it can reach nc*kc doubles).
// It belongs to the *calling* thread: gemm grabs the reference before
// entering the parallel region, so the OpenMP workers all share one buffer
// while concurrent gemm calls from different caller threads stay isolated.
thread_local std::vector<double> tls_bpack;

// Shared packed-A block for the jr-parallel path (same caller-thread
// ownership scheme as tls_bpack).
thread_local std::vector<double> tls_ashared;

// Per-thread zero-padded stripe for the strided-B path's edge stripe
// (nr < kNR), where the strided microkernel would over-read B.
thread_local std::vector<double> tls_bedge;

}  // namespace

void gemm(Trans transa, Trans transb, double alpha, ConstViewD a, ConstViewD b,
          double beta, ViewD c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (transa == Trans::None) ? a.cols() : a.rows();
  expects(((transa == Trans::None) ? a.rows() : a.cols()) == m, "gemm: A/C rows");
  expects(((transb == Trans::None) ? b.rows() : b.cols()) == k, "gemm: A/B inner dim");
  expects(((transb == Trans::None) ? b.cols() : b.rows()) == n, "gemm: B/C cols");

  // Scale C by beta first; the blocked path below only ever accumulates.
  if (beta == 0.0) {
    for (index_t i = 0; i < m; ++i) {
      double* crow = c.row(i);
      for (index_t j = 0; j < n; ++j) crow[j] = 0.0;
    }
  } else if (beta != 1.0) {
    for (index_t i = 0; i < m; ++i) {
      double* crow = c.row(i);
      for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  // Work from a sanitized copy: tuning() is documented as mutable for
  // sweeps, and a degenerate value (kc = 0) must not hang the pc loop.
  Tuning tu = tuning();
  tu.sanitize();
  if (gemm_flops(m, n, k) <= tu.small_gemm_flops) {
    gemm_small(transa, transb, alpha, a, b, c);
    return;
  }

  const index_t mc_blk = round_up(std::min(tu.mc, m), kMR);
  const index_t kc_blk = std::min(tu.kc, k);
  const index_t nc_blk = round_up(std::min(tu.nc, n), kNR);
  const index_t ni_blocks = ceil_div(m, mc_blk);

  // Small-k fast path: stream op(B) rows through the strided microkernel
  // instead of packing them (transb == None keeps rows contiguous).
  const bool strided_b =
      transb == Trans::None && tu.small_k > 0 && k <= tu.small_k;

  std::vector<double>& bpack = tls_bpack;
  if (!strided_b && static_cast<index_t>(bpack.size()) < nc_blk * kc_blk)
    bpack.resize(static_cast<std::size_t>(nc_blk * kc_blk));
  const index_t apack_size = mc_blk * kc_blk;

  int nthreads = 1;
#ifdef _OPENMP
  nthreads = (tu.threads > 0) ? tu.threads : omp_get_max_threads();
  if (nthreads < 1) nthreads = 1;
#endif

  // With fewer A row blocks than threads (panel updates: often exactly one
  // block), the ic loop cannot feed the machine; switch to a shared packed
  // A block and split the jr loop instead. Either way every C tile is
  // computed from the same packed/streamed values in the same order, so
  // the choice never changes results.
  const bool shared_a = nthreads > 1 && ni_blocks < nthreads;
  std::vector<double>& ashared = tls_ashared;
  if (shared_a && static_cast<index_t>(ashared.size()) < apack_size)
    ashared.resize(static_cast<std::size_t>(apack_size));

#ifdef _OPENMP
#pragma omp parallel num_threads(nthreads) if (nthreads > 1)
#endif
  {
    std::vector<double>& apack = tls_apack;
    if (!shared_a && static_cast<index_t>(apack.size()) < apack_size)
      apack.resize(static_cast<std::size_t>(apack_size));
    std::vector<double>& bedge = tls_bedge;
    if (strided_b && static_cast<index_t>(bedge.size()) < kNR * kc_blk)
      bedge.resize(static_cast<std::size_t>(kNR * kc_blk));
    // (jc, pc) for which this thread's bedge holds the packed edge stripe:
    // at most one stripe per (jc, pc) block has nr < kNR, so one key pair
    // avoids repacking it once per A row block.
    index_t bedge_jc = -1, bedge_pc = -1;

    for (index_t jc = 0; jc < n; jc += nc_blk) {
      const index_t nc = std::min(nc_blk, n - jc);
      for (index_t pc = 0; pc < k; pc += kc_blk) {
        const index_t kc = std::min(kc_blk, k - pc);

        if (!strided_b) {
          const index_t nb_panels = ceil_div(nc, kNR);
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
          for (index_t jp = 0; jp < nb_panels; ++jp) {
            pack_b_panel(transb, b, pc, jc, jp * kNR, nc, kc,
                         bpack.data() + jp * (kNR * kc));
          }
          // (implicit barrier: the packed B panel is complete here)
        }

        // One kNR-wide stripe of C micro-tiles from a packed A block.
        const auto do_stripe = [&](const double* ap, index_t ic, index_t mc,
                                   index_t jr) {
          const index_t nr = std::min(kNR, nc - jr);
          double* c0 = c.row(ic) + jc + jr;
          const double* bp;
          index_t bstride;
          if (strided_b && nr == kNR) {
            bp = b.row(pc) + jc + jr;
            bstride = b.ld();
          } else if (strided_b) {
            // Edge stripe of the strided path: zero-pad into the per-thread
            // scratch so the microkernel can read full kNR lanes.
            if (bedge_jc != jc || bedge_pc != pc) {
              pack_b_panel(transb, b, pc, jc, jr, nc, kc, bedge.data());
              bedge_jc = jc;
              bedge_pc = pc;
            }
            bp = bedge.data();
            bstride = kNR;
          } else {
            bp = bpack.data() + (jr / kNR) * (kNR * kc);
            bstride = kNR;
          }
          for (index_t ir = 0; ir < mc; ir += kMR) {
            micro_kernel(kc, ap + (ir / kMR) * (kMR * kc), bp, bstride,
                         c0 + ir * c.ld(), c.ld(), std::min(kMR, mc - ir), nr);
          }
        };

        if (!shared_a) {
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 1)
#endif
          for (index_t ib = 0; ib < ni_blocks; ++ib) {
            const index_t ic = ib * mc_blk;
            const index_t mc = std::min(mc_blk, m - ic);
            pack_a(transa, alpha, a, ic, pc, mc, kc, apack.data());
            for (index_t jr = 0; jr < nc; jr += kNR) {
              do_stripe(apack.data(), ic, mc, jr);
            }
          }
          // (implicit barrier: everyone is done reading bpack before repack)
        } else {
          for (index_t ib = 0; ib < ni_blocks; ++ib) {
            const index_t ic = ib * mc_blk;
            const index_t mc = std::min(mc_blk, m - ic);
            const index_t na_panels = ceil_div(mc, kMR);
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
            for (index_t ip = 0; ip < na_panels; ++ip) {
              pack_a(transa, alpha, a, ic + ip * kMR, pc,
                     std::min(kMR, mc - ip * kMR), kc,
                     ashared.data() + ip * (kMR * kc));
            }
            // (implicit barrier: the shared A block is complete here)
            const index_t nj_stripes = ceil_div(nc, kNR);
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
            for (index_t js = 0; js < nj_stripes; ++js) {
              do_stripe(ashared.data(), ic, mc, js * kNR);
            }
            // (implicit barrier: stripes done before the A block repacks)
          }
        }
      }
    }
  }
}

}  // namespace conflux::xblas
