#include <algorithm>
#include <vector>

#include "blas/blas.hpp"
#include "support/check.hpp"

namespace conflux::xblas {

namespace {

// Cache-blocking parameters chosen for typical 32 KiB L1 / 256 KiB+ L2:
// a KC x NC panel of B (64*256*8 = 128 KiB) stays L2-resident while MC rows
// of A stream through it.
constexpr index_t kMC = 64;
constexpr index_t kKC = 64;
constexpr index_t kNC = 256;

// Innermost kernel: C[mc x nc] += A[mc x kc] * B[kc x nc], everything
// already limited to cache-block sizes. j innermost gives unit-stride
// access on B and C, which the compiler vectorizes.
void kernel_nn(index_t mc, index_t nc, index_t kc, const double* a, index_t lda,
               const double* b, index_t ldb, double* c, index_t ldc) {
  for (index_t i = 0; i < mc; ++i) {
    for (index_t p = 0; p < kc; ++p) {
      const double aip = a[i * lda + p];
      if (aip == 0.0) continue;
      const double* brow = b + p * ldb;
      double* crow = c + i * ldc;
      for (index_t j = 0; j < nc; ++j) crow[j] += aip * brow[j];
    }
  }
}

// Materialize op(X) into a contiguous scratch buffer so the blocked kernel
// only ever deals with the no-transpose case.
Matrix<double> materialize(Trans trans, ConstViewD x) {
  if (trans == Trans::None) {
    Matrix<double> out(x.rows(), x.cols());
    copy(x, out.view());
    return out;
  }
  Matrix<double> out(x.cols(), x.rows());
  for (index_t i = 0; i < x.rows(); ++i) {
    for (index_t j = 0; j < x.cols(); ++j) out(j, i) = x(i, j);
  }
  return out;
}

}  // namespace

void gemm(Trans transa, Trans transb, double alpha, ConstViewD a, ConstViewD b,
          double beta, ViewD c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (transa == Trans::None) ? a.cols() : a.rows();
  expects(((transa == Trans::None) ? a.rows() : a.cols()) == m, "gemm: A/C rows");
  expects(((transb == Trans::None) ? b.rows() : b.cols()) == k, "gemm: A/B inner dim");
  expects(((transb == Trans::None) ? b.cols() : b.rows()) == n, "gemm: B/C cols");

  // Scale C by beta first; then accumulate alpha*A*B.
  if (beta == 0.0) {
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) c(i, j) = 0.0;
    }
  } else if (beta != 1.0) {
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) c(i, j) *= beta;
    }
  }
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  // For transposed operands, work on packed copies (simplifies the kernel;
  // the packing cost is O(mk + kn), negligible against the O(mnk) multiply).
  Matrix<double> packed_a;
  Matrix<double> packed_b;
  const double* adata = a.data();
  index_t lda = a.ld();
  if (transa == Trans::Transpose) {
    packed_a = materialize(transa, a);
    adata = packed_a.data();
    lda = packed_a.cols();
  }
  const double* bdata = b.data();
  index_t ldb = b.ld();
  if (transb == Trans::Transpose) {
    packed_b = materialize(transb, b);
    bdata = packed_b.data();
    ldb = packed_b.cols();
  }

  // alpha is folded into a scaled copy of the A block row to keep the kernel
  // a pure FMA loop.
  std::vector<double> ablock(static_cast<std::size_t>(kMC * kKC));
  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        for (index_t i = 0; i < mc; ++i) {
          const double* src = adata + (ic + i) * lda + pc;
          double* dst = ablock.data() + i * kc;
          for (index_t p = 0; p < kc; ++p) dst[p] = alpha * src[p];
        }
        kernel_nn(mc, nc, kc, ablock.data(), kc, bdata + pc * ldb + jc, ldb,
                  c.data() + ic * c.ld() + jc, c.ld());
      }
    }
  }
}

}  // namespace conflux::xblas
