// BLIS-style blocked gemm: pack operands into contiguous micro-panel
// buffers, then drive a register-tiled microkernel over them.
//
// Loop structure (outer to inner), following Goto/BLIS:
//   jc over columns of C in steps of nc   (packed B panel: kc x nc)
//   pc over the k dimension in steps of kc
//     pack op(B)(pc:, jc:) into micro-panels of NR columns
//   ic over rows of C in steps of mc      (packed A block: mc x kc)
//     pack alpha*op(A)(ic:, pc:) into micro-panels of MR rows
//     jr/ir over micro-tiles, each handled by the MR x NR microkernel
//
// The whole driver is a template over the scalar type AND ISA-agnostic:
// the register-tiled microkernel (and its MR x NR tile shape) comes from
// the runtime dispatch in microkernel.hpp — selected once per process via
// cpuid/getauxval or forced with XBLAS_ISA — so per-ISA tile shapes (AVX2
// runs 8x6 fp64 where AVX-512 runs 8x8) flow through packing, loop steps,
// and edge-tile handling without this file naming any ISA. fp32 kernels
// hold twice the scalars per register, and fp32 also scales the runtime kc
// (or takes its own tuned block sizes) so packed panels keep their byte
// footprint.
//
// Two departures from the textbook loop nest, both motivated by the
// factorization workloads (Schur updates with k = v in the tens, panel
// updates with m <= one cache block):
//   - small-k fast path: when k <= Tuning::small_k and B is untransposed,
//     B is never packed — a strided microkernel streams op(B) rows in
//     place. Packing B costs a full extra pass over B per (jc, pc) block,
//     which is pure overhead when the k loop is a handful of iterations.
//   - jr parallelization: when there are fewer A row blocks than threads
//     (panel updates: m <= mc means ONE block), threads cooperatively pack
//     the A block and then split the jr stripe loop, so small-m updates
//     still use the whole machine.
//
// OpenMP: threads cooperate on packing B (worksharing over micro-panels)
// and then either split the ic loop (each thread packing A into its own
// buffer) or, when the ic loop is too short, split the jr loop against a
// cooperatively packed shared A block. Every C element is accumulated in
// the same fixed pc-then-p order regardless of thread count or path, and
// every C tile is written by exactly one thread, so results are bitwise
// identical run to run and across thread counts — in both precisions.
#include <algorithm>
#include <vector>

#include "blas/blas.hpp"
#include "blas/microkernel.hpp"
#include "blas/tuning.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace conflux::xblas {

namespace {

inline index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }
inline index_t round_up(index_t a, index_t b) { return ceil_div(a, b) * b; }

// Measured data movement (DESIGN.md "Observability"): bytes written into
// the pack buffers, accumulated once per gemm call from the loop-nest trip
// counts (every (jc, pc) block packs nc*kc of B once and re-packs m*kc of
// A, per the Goto loop structure above) — no per-block work on the hot
// path beyond the registry's single-branch gate.
const metrics::Counter g_pack_a_bytes("dm.pack_a.bytes");
const metrics::Counter g_pack_b_bytes("dm.pack_b.bytes");

// Pack alpha*op(A)(ic:ic+mc, pc:pc+kc) as ceil(mc/MR) micro-panels, each
// kc slices of MR contiguous values, zero-padded in the last panel.
template <typename T>
void pack_a(Trans trans, T alpha, ConstMatrixView<T> a, index_t ic, index_t pc,
            index_t mc, index_t kc, index_t MR, T* buf) {
  for (index_t ir = 0; ir < mc; ir += MR) {
    const index_t mr = std::min(MR, mc - ir);
    T* dst = buf + (ir / MR) * (MR * kc);
    if (mr < MR) std::fill(dst, dst + MR * kc, T{});
    if (trans == Trans::None) {
      // Rows of A are contiguous: iterate i outer for streaming reads.
      for (index_t i = 0; i < mr; ++i) {
        const T* src = a.row(ic + ir + i) + pc;
        for (index_t p = 0; p < kc; ++p) dst[p * MR + i] = alpha * src[p];
      }
    } else {
      // op(A)(r, c) = A(c, r): a row of A supplies one k-slice.
      for (index_t p = 0; p < kc; ++p) {
        const T* src = a.row(pc + p) + ic + ir;
        for (index_t i = 0; i < mr; ++i) dst[p * MR + i] = alpha * src[i];
      }
    }
  }
}

// Pack one micro-panel (NR columns starting at jc+jr) of op(B)(pc:, jc:),
// kc slices of NR contiguous values, zero-padded past nr.
template <typename T>
void pack_b_panel(Trans trans, ConstMatrixView<T> b, index_t pc, index_t jc,
                  index_t jr, index_t nc, index_t kc, index_t NR, T* dst) {
  const index_t nr = std::min(NR, nc - jr);
  if (nr < NR) std::fill(dst, dst + NR * kc, T{});
  if (trans == Trans::None) {
    for (index_t p = 0; p < kc; ++p) {
      const T* src = b.row(pc + p) + jc + jr;
      for (index_t j = 0; j < nr; ++j) dst[p * NR + j] = src[j];
    }
  } else {
    // op(B)(r, c) = B(c, r): column j of the panel is a row of B.
    for (index_t j = 0; j < nr; ++j) {
      const T* src = b.row(jc + jr + j) + pc;
      for (index_t p = 0; p < kc; ++p) dst[p * NR + j] = src[p];
    }
  }
}

// Direct strided kernel for problems too small to amortize packing.
template <typename T>
void gemm_small(Trans transa, Trans transb, T alpha, ConstMatrixView<T> a,
                ConstMatrixView<T> b, MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (transa == Trans::None) ? a.cols() : a.rows();
  for (index_t i = 0; i < m; ++i) {
    T* crow = c.row(i);
    for (index_t p = 0; p < k; ++p) {
      const T aip = alpha * ((transa == Trans::None) ? a(i, p) : a(p, i));
      if (transb == Trans::None) {
        const T* brow = b.row(p);
        for (index_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
      } else {
        for (index_t j = 0; j < n; ++j) crow[j] += aip * b(j, p);
      }
    }
  }
}

// Per-scalar thread-local packing buffers, persisting across gemm calls so
// medium-size factorization updates do not pay an allocation per call:
//   apack    per-thread packed A block
//   bpack    packed B panel (can reach nc*kc scalars) — owned by the
//            *calling* thread: gemm grabs the reference before entering the
//            parallel region, so the OpenMP workers all share one buffer
//            while concurrent gemm calls from different caller threads stay
//            isolated
//   ashared  shared packed A block for the jr-parallel path (same
//            caller-thread ownership scheme as bpack)
//   bedge    per-thread zero-padded stripe for the strided-B path's edge
//            stripe (nr < NR), where the strided microkernel would
//            over-read B
// Deliberately concrete namespace-scope thread_locals behind a traits
// accessor, NOT thread_local variable templates: libgomp pool threads never
// run TLS destructors, and template-instantiated TLS is invisible to
// LeakSanitizer's root scan, so the variable-template form reports the
// workers' buffers as leaks under ASan.
thread_local std::vector<double> tls_apack_d, tls_bpack_d, tls_ashared_d,
    tls_bedge_d;
thread_local std::vector<float> tls_apack_f, tls_bpack_f, tls_ashared_f,
    tls_bedge_f;

template <typename T>
struct TlsBufs;
template <>
struct TlsBufs<double> {
  static std::vector<double>& apack() { return tls_apack_d; }
  static std::vector<double>& bpack() { return tls_bpack_d; }
  static std::vector<double>& ashared() { return tls_ashared_d; }
  static std::vector<double>& bedge() { return tls_bedge_d; }
};
template <>
struct TlsBufs<float> {
  static std::vector<float>& apack() { return tls_apack_f; }
  static std::vector<float>& bpack() { return tls_bpack_f; }
  static std::vector<float>& ashared() { return tls_ashared_f; }
  static std::vector<float>& bedge() { return tls_bedge_f; }
};

}  // namespace

template <typename T>
void gemm(Trans transa, Trans transb, std::type_identity_t<T> alpha,
          ConstMatrixView<T> a, ConstMatrixView<T> b,
          std::type_identity_t<T> beta, MatrixView<T> c) {
  // The active microkernel fixes the register-tile geometry this call packs
  // for; selection is per-process, so every concurrent call agrees.
  const MicroKernel<T>& mk = active_microkernel<T>();
  const index_t MR = mk.mr;
  const index_t NR = mk.nr;
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (transa == Trans::None) ? a.cols() : a.rows();
  expects(((transa == Trans::None) ? a.rows() : a.cols()) == m, "gemm: A/C rows");
  expects(((transb == Trans::None) ? b.rows() : b.cols()) == k, "gemm: A/B inner dim");
  expects(((transb == Trans::None) ? b.cols() : b.rows()) == n, "gemm: B/C cols");

  // Scale C by beta first; the blocked path below only ever accumulates.
  if (beta == T{}) {
    for (index_t i = 0; i < m; ++i) {
      T* crow = c.row(i);
      for (index_t j = 0; j < n; ++j) crow[j] = T{};
    }
  } else if (beta != T{1}) {
    for (index_t i = 0; i < m; ++i) {
      T* crow = c.row(i);
      for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (alpha == T{} || m == 0 || n == 0 || k == 0) return;

  // Work from a sanitized copy: tuning() is documented as mutable for
  // sweeps, and a degenerate value (kc = 0) must not hang the pc loop.
  Tuning tu = tuning();
  tu.sanitize();
  if (gemm_flops(m, n, k) <= tu.small_gemm_flops) {
    gemm_small<T>(transa, transb, alpha, a, b, c);
    return;
  }

  // fp32 takes its own tuned block sizes when the autotuner provided them,
  // else derives from the fp64 ones (same mc/nc, kc scaled to keep the
  // packed panels' byte footprint).
  index_t tu_mc = tu.mc;
  index_t tu_kc = tu.kc * kc_scale<T>();
  index_t tu_nc = tu.nc;
  if constexpr (std::is_same_v<T, float>) {
    if (tu.mc_f32 > 0) tu_mc = tu.mc_f32;
    if (tu.kc_f32 > 0) tu_kc = tu.kc_f32;
    if (tu.nc_f32 > 0) tu_nc = tu.nc_f32;
  }
  const index_t mc_blk = round_up(std::min(tu_mc, m), MR);
  const index_t kc_blk = std::min(tu_kc, k);
  const index_t nc_blk = round_up(std::min(tu_nc, n), NR);
  const index_t ni_blocks = ceil_div(m, mc_blk);

  // Small-k fast path: stream op(B) rows through the strided microkernel
  // instead of packing them (transb == None keeps rows contiguous).
  const bool strided_b =
      transb == Trans::None && tu.small_k > 0 && k <= tu.small_k;

  if (metrics::enabled()) {
    const double scalar_bytes = static_cast<double>(sizeof(T));
    g_pack_a_bytes.add(static_cast<double>(ceil_div(n, nc_blk)) *
                       static_cast<double>(m) * static_cast<double>(k) *
                       scalar_bytes);
    if (!strided_b) {
      g_pack_b_bytes.add(static_cast<double>(n) * static_cast<double>(k) *
                         scalar_bytes);
    }
  }

  std::vector<T>& bpack = TlsBufs<T>::bpack();
  if (!strided_b && static_cast<index_t>(bpack.size()) < nc_blk * kc_blk)
    bpack.resize(static_cast<std::size_t>(nc_blk * kc_blk));
  const index_t apack_size = mc_blk * kc_blk;

  int nthreads = 1;
#ifdef _OPENMP
  nthreads = (tu.threads > 0) ? tu.threads : omp_get_max_threads();
  if (nthreads < 1) nthreads = 1;
  // Per-thread cap (tuning.hpp): task-pool work must not fork nested teams
  // even under an XBLAS_THREADS override — the pool is the parallelism.
  const int cap = tls_thread_cap();
  if (cap > 0 && nthreads > cap) nthreads = cap;
#endif

  // With fewer A row blocks than threads (panel updates: often exactly one
  // block), the ic loop cannot feed the machine; switch to a shared packed
  // A block and split the jr loop instead. Either way every C tile is
  // computed from the same packed/streamed values in the same order, so
  // the choice never changes results.
  const bool shared_a = nthreads > 1 && ni_blocks < nthreads;
  std::vector<T>& ashared = TlsBufs<T>::ashared();
  if (shared_a && static_cast<index_t>(ashared.size()) < apack_size)
    ashared.resize(static_cast<std::size_t>(apack_size));

#ifdef _OPENMP
#pragma omp parallel num_threads(nthreads) if (nthreads > 1)
#endif
  {
    std::vector<T>& apack = TlsBufs<T>::apack();
    if (!shared_a && static_cast<index_t>(apack.size()) < apack_size)
      apack.resize(static_cast<std::size_t>(apack_size));
    std::vector<T>& bedge = TlsBufs<T>::bedge();
    if (strided_b && static_cast<index_t>(bedge.size()) < NR * kc_blk)
      bedge.resize(static_cast<std::size_t>(NR * kc_blk));
    // (jc, pc) for which this thread's bedge holds the packed edge stripe:
    // at most one stripe per (jc, pc) block has nr < NR, so one key pair
    // avoids repacking it once per A row block.
    index_t bedge_jc = -1, bedge_pc = -1;

    for (index_t jc = 0; jc < n; jc += nc_blk) {
      const index_t nc = std::min(nc_blk, n - jc);
      for (index_t pc = 0; pc < k; pc += kc_blk) {
        const index_t kc = std::min(kc_blk, k - pc);

        if (!strided_b) {
          const index_t nb_panels = ceil_div(nc, NR);
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
          for (index_t jp = 0; jp < nb_panels; ++jp) {
            pack_b_panel<T>(transb, b, pc, jc, jp * NR, nc, kc, NR,
                            bpack.data() + jp * (NR * kc));
          }
          // (implicit barrier: the packed B panel is complete here)
        }

        // One NR-wide stripe of C micro-tiles from a packed A block.
        // b_next is the next packed B stripe this thread will consume (a
        // software-prefetch hint for the microkernel; null when streaming B
        // in place or at the last stripe), a_next likewise walks one A
        // micro-panel ahead inside the stripe.
        const auto do_stripe = [&](const T* ap, index_t ic, index_t mc,
                                   index_t jr, const T* b_next) {
          const index_t nr = std::min(NR, nc - jr);
          T* c0 = c.row(ic) + jc + jr;
          const T* bp;
          index_t bstride;
          if (strided_b && nr == NR) {
            bp = b.row(pc) + jc + jr;
            bstride = b.ld();
          } else if (strided_b) {
            // Edge stripe of the strided path: zero-pad into the per-thread
            // scratch so the microkernel can read full NR lanes.
            if (bedge_jc != jc || bedge_pc != pc) {
              pack_b_panel<T>(transb, b, pc, jc, jr, nc, kc, NR,
                              bedge.data());
              bedge_jc = jc;
              bedge_pc = pc;
            }
            bp = bedge.data();
            bstride = NR;
          } else {
            bp = bpack.data() + (jr / NR) * (NR * kc);
            bstride = NR;
          }
          for (index_t ir = 0; ir < mc; ir += MR) {
            const T* a_cur = ap + (ir / MR) * (MR * kc);
            const T* a_next = (ir + MR < mc) ? a_cur + MR * kc : nullptr;
            mk.fn(kc, a_cur, bp, bstride, c0 + ir * c.ld(), c.ld(),
                  std::min(MR, mc - ir), nr, a_next, b_next);
          }
        };

        if (!shared_a) {
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 1)
#endif
          for (index_t ib = 0; ib < ni_blocks; ++ib) {
            const index_t ic = ib * mc_blk;
            const index_t mc = std::min(mc_blk, m - ic);
            pack_a<T>(transa, alpha, a, ic, pc, mc, kc, MR, apack.data());
            for (index_t jr = 0; jr < nc; jr += NR) {
              const T* b_next = (!strided_b && jr + NR < nc)
                                    ? bpack.data() + (jr / NR + 1) * (NR * kc)
                                    : nullptr;
              do_stripe(apack.data(), ic, mc, jr, b_next);
            }
          }
          // (implicit barrier: everyone is done reading bpack before repack)
        } else {
          for (index_t ib = 0; ib < ni_blocks; ++ib) {
            const index_t ic = ib * mc_blk;
            const index_t mc = std::min(mc_blk, m - ic);
            const index_t na_panels = ceil_div(mc, MR);
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
            for (index_t ip = 0; ip < na_panels; ++ip) {
              pack_a<T>(transa, alpha, a, ic + ip * MR, pc,
                        std::min(MR, mc - ip * MR), kc, MR,
                        ashared.data() + ip * (MR * kc));
            }
            // (implicit barrier: the shared A block is complete here)
            const index_t nj_stripes = ceil_div(nc, NR);
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
            for (index_t js = 0; js < nj_stripes; ++js) {
              const T* b_next =
                  (!strided_b && (js + 1) * NR < nc)
                      ? bpack.data() + (js + 1) * (NR * kc)
                      : nullptr;
              do_stripe(ashared.data(), ic, mc, js * NR, b_next);
            }
            // (implicit barrier: stripes done before the A block repacks)
          }
        }
      }
    }
  }
}

template void gemm<float>(Trans, Trans, float, ConstViewF, ConstViewF, float,
                          ViewF);
template void gemm<double>(Trans, Trans, double, ConstViewD, ConstViewD, double,
                           ViewD);

}  // namespace conflux::xblas
