#include "blas/blas.hpp"
#include "support/check.hpp"

namespace conflux::xblas {

namespace {

// Left side, lower triangular, no transpose: solve L * X = B row by row
// (forward substitution over block rows of B).
void trsm_lln(Diag diag, ConstViewD t, ViewD b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < i; ++p) {
      const double lip = t(i, p);
      if (lip == 0.0) continue;
      for (index_t j = 0; j < n; ++j) b(i, j) -= lip * b(p, j);
    }
    if (diag == Diag::NonUnit) {
      const double inv = 1.0 / t(i, i);
      for (index_t j = 0; j < n; ++j) b(i, j) *= inv;
    }
  }
}

// Left, upper, no transpose: back substitution.
void trsm_lun(Diag diag, ConstViewD t, ViewD b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t i = m - 1; i >= 0; --i) {
    for (index_t p = i + 1; p < m; ++p) {
      const double uip = t(i, p);
      if (uip == 0.0) continue;
      for (index_t j = 0; j < n; ++j) b(i, j) -= uip * b(p, j);
    }
    if (diag == Diag::NonUnit) {
      const double inv = 1.0 / t(i, i);
      for (index_t j = 0; j < n; ++j) b(i, j) *= inv;
    }
  }
}

// Right, lower, no transpose: X * L = B, solve column blocks right-to-left.
void trsm_rln(Diag diag, ConstViewD t, ViewD b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t j = n - 1; j >= 0; --j) {
    if (diag == Diag::NonUnit) {
      const double inv = 1.0 / t(j, j);
      for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
    }
    for (index_t p = 0; p < j; ++p) {
      const double ljp = t(j, p);
      if (ljp == 0.0) continue;
      for (index_t i = 0; i < m; ++i) b(i, p) -= b(i, j) * ljp;
    }
  }
}

// Right, upper, no transpose: X * U = B, left-to-right.
void trsm_run(Diag diag, ConstViewD t, ViewD b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t j = 0; j < n; ++j) {
    if (diag == Diag::NonUnit) {
      const double inv = 1.0 / t(j, j);
      for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
    }
    for (index_t p = j + 1; p < n; ++p) {
      const double ujp = t(j, p);
      if (ujp == 0.0) continue;
      for (index_t i = 0; i < m; ++i) b(i, p) -= b(i, j) * ujp;
    }
  }
}

// op(T)^T cases reduce to the opposite-triangle no-transpose case applied
// with swapped substitution order; implement directly for clarity.
void trsm_llt(Diag diag, ConstViewD t, ViewD b) {
  // Solve L^T X = B: L^T is upper triangular with entries t(p, i).
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t i = m - 1; i >= 0; --i) {
    for (index_t p = i + 1; p < m; ++p) {
      const double lpi = t(p, i);
      if (lpi == 0.0) continue;
      for (index_t j = 0; j < n; ++j) b(i, j) -= lpi * b(p, j);
    }
    if (diag == Diag::NonUnit) {
      const double inv = 1.0 / t(i, i);
      for (index_t j = 0; j < n; ++j) b(i, j) *= inv;
    }
  }
}

void trsm_lut(Diag diag, ConstViewD t, ViewD b) {
  // Solve U^T X = B: U^T is lower triangular with entries t(p, i).
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < i; ++p) {
      const double upi = t(p, i);
      if (upi == 0.0) continue;
      for (index_t j = 0; j < n; ++j) b(i, j) -= upi * b(p, j);
    }
    if (diag == Diag::NonUnit) {
      const double inv = 1.0 / t(i, i);
      for (index_t j = 0; j < n; ++j) b(i, j) *= inv;
    }
  }
}

void trsm_rlt(Diag diag, ConstViewD t, ViewD b) {
  // Solve X L^T = B: process columns left-to-right since L^T is upper.
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t j = 0; j < n; ++j) {
    if (diag == Diag::NonUnit) {
      const double inv = 1.0 / t(j, j);
      for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
    }
    for (index_t p = j + 1; p < n; ++p) {
      const double lpj = t(p, j);
      if (lpj == 0.0) continue;
      for (index_t i = 0; i < m; ++i) b(i, p) -= b(i, j) * lpj;
    }
  }
}

void trsm_rut(Diag diag, ConstViewD t, ViewD b) {
  // Solve X U^T = B: U^T lower, process columns right-to-left.
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t j = n - 1; j >= 0; --j) {
    if (diag == Diag::NonUnit) {
      const double inv = 1.0 / t(j, j);
      for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
    }
    for (index_t p = 0; p < j; ++p) {
      const double ujp = t(j, p);
      if (ujp == 0.0) continue;
      for (index_t i = 0; i < m; ++i) b(i, p) -= b(i, j) * ujp;
    }
  }
}

}  // namespace

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstViewD t, ViewD b) {
  const index_t dim = (side == Side::Left) ? b.rows() : b.cols();
  expects(t.rows() == dim && t.cols() == dim, "trsm: triangle must match B side");

  if (alpha != 1.0) {
    for (index_t i = 0; i < b.rows(); ++i) {
      for (index_t j = 0; j < b.cols(); ++j) b(i, j) *= alpha;
    }
  }
  if (b.rows() == 0 || b.cols() == 0) return;

  if (side == Side::Left) {
    if (uplo == UpLo::Lower) {
      (trans == Trans::None) ? trsm_lln(diag, t, b) : trsm_llt(diag, t, b);
    } else {
      (trans == Trans::None) ? trsm_lun(diag, t, b) : trsm_lut(diag, t, b);
    }
  } else {
    if (uplo == UpLo::Lower) {
      (trans == Trans::None) ? trsm_rln(diag, t, b) : trsm_rlt(diag, t, b);
    } else {
      (trans == Trans::None) ? trsm_run(diag, t, b) : trsm_rut(diag, t, b);
    }
  }
}

void trsv(UpLo uplo, Trans trans, Diag diag, ConstViewD t, double* b) {
  ViewD bv(b, t.rows(), 1, 1);
  trsm(Side::Left, uplo, trans, diag, 1.0, t, bv);
}

}  // namespace conflux::xblas
