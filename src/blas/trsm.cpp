// Blocked triangular solve: the triangle is processed in db x db diagonal
// blocks. Each diagonal block is solved by a small branch-free substitution
// kernel (O(db^2 n) work), and the remaining right-hand-side panel is
// updated with a rank-db gemm — so asymptotically all trsm flops run at
// gemm speed. Only the stored triangle of T is ever referenced. Templated
// over the scalar (instantiated for float and double below); the blocked
// structure is precision-agnostic, the panel gemms inherit the per-scalar
// register tile.
#include <algorithm>
#include <vector>

#include "blas/blas.hpp"
#include "blas/tuning.hpp"
#include "support/check.hpp"

namespace conflux::xblas {

namespace {

// ---- small diagonal-block kernels (unblocked substitution) ---------------
// The inner j/i loops are pure axpy/scale updates over the RHS with no
// data-dependent branches, so they auto-vectorize.

// Left, lower, no transpose: forward substitution.
template <typename T>
void trsm_lln(Diag diag, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t i = 0; i < m; ++i) {
    T* bi = b.row(i);
    for (index_t p = 0; p < i; ++p) {
      const T lip = t(i, p);
      const T* bp = b.row(p);
      for (index_t j = 0; j < n; ++j) bi[j] -= lip * bp[j];
    }
    if (diag == Diag::NonUnit) {
      const T inv = T{1} / t(i, i);
      for (index_t j = 0; j < n; ++j) bi[j] *= inv;
    }
  }
}

// Left, upper, no transpose: back substitution.
template <typename T>
void trsm_lun(Diag diag, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t i = m - 1; i >= 0; --i) {
    T* bi = b.row(i);
    for (index_t p = i + 1; p < m; ++p) {
      const T uip = t(i, p);
      const T* bp = b.row(p);
      for (index_t j = 0; j < n; ++j) bi[j] -= uip * bp[j];
    }
    if (diag == Diag::NonUnit) {
      const T inv = T{1} / t(i, i);
      for (index_t j = 0; j < n; ++j) bi[j] *= inv;
    }
  }
}

// Left, lower, transpose: L^T is upper triangular with entries t(p, i).
template <typename T>
void trsm_llt(Diag diag, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t i = m - 1; i >= 0; --i) {
    T* bi = b.row(i);
    for (index_t p = i + 1; p < m; ++p) {
      const T lpi = t(p, i);
      const T* bp = b.row(p);
      for (index_t j = 0; j < n; ++j) bi[j] -= lpi * bp[j];
    }
    if (diag == Diag::NonUnit) {
      const T inv = T{1} / t(i, i);
      for (index_t j = 0; j < n; ++j) bi[j] *= inv;
    }
  }
}

// Left, upper, transpose: U^T is lower triangular with entries t(p, i).
template <typename T>
void trsm_lut(Diag diag, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  for (index_t i = 0; i < m; ++i) {
    T* bi = b.row(i);
    for (index_t p = 0; p < i; ++p) {
      const T upi = t(p, i);
      const T* bp = b.row(p);
      for (index_t j = 0; j < n; ++j) bi[j] -= upi * bp[j];
    }
    if (diag == Diag::NonUnit) {
      const T inv = T{1} / t(i, i);
      for (index_t j = 0; j < n; ++j) bi[j] *= inv;
    }
  }
}

// Right-side solves are independent per row of B, so all four kernels walk
// B row by row: every access to the B row is contiguous, which keeps a tall
// panel (e.g. potrf's n x nb L21 solve) streaming instead of striding
// column-wise through it. The transpose variants still read the triangle
// column-wise, but T is at most db x db and stays cache-resident across
// rows. Diagonal inverses are hoisted so each row does multiplies only.
// Per-scalar thread-local inverse-diagonal scratch, persisting across calls
// so per-step panel solves are allocation-free in steady state (the pool's
// workers and the master each get their own buffer). Concrete thread_locals
// behind a traits accessor for the same LeakSanitizer reason as gemm's pack
// buffers (see gemm.cpp).
thread_local std::vector<double> tls_inv_d;
thread_local std::vector<float> tls_inv_f;
template <typename T>
std::vector<T>& tls_inv();
template <>
std::vector<double>& tls_inv<double>() {
  return tls_inv_d;
}
template <>
std::vector<float>& tls_inv<float>() {
  return tls_inv_f;
}

template <typename T>
void fill_inv_diag(ConstMatrixView<T> t, std::vector<T>& inv) {
  inv.resize(static_cast<std::size_t>(t.rows()));
  for (index_t j = 0; j < t.rows(); ++j)
    inv[static_cast<std::size_t>(j)] = T{1} / t(j, j);
}

// Right, lower, no transpose: X * L = B, per row right-to-left.
template <typename T>
void trsm_rln(Diag diag, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  std::vector<T>& inv = tls_inv<T>();
  if (diag == Diag::NonUnit) fill_inv_diag(t, inv);
  for (index_t i = 0; i < m; ++i) {
    T* bi = b.row(i);
    for (index_t j = n - 1; j >= 0; --j) {
      const T xj = (diag == Diag::NonUnit)
                       ? (bi[j] *= inv[static_cast<std::size_t>(j)])
                       : bi[j];
      const T* trow = t.row(j);
      for (index_t p = 0; p < j; ++p) bi[p] -= xj * trow[p];
    }
  }
}

// Right, upper, no transpose: X * U = B, per row left-to-right.
template <typename T>
void trsm_run(Diag diag, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  std::vector<T>& inv = tls_inv<T>();
  if (diag == Diag::NonUnit) fill_inv_diag(t, inv);
  for (index_t i = 0; i < m; ++i) {
    T* bi = b.row(i);
    for (index_t j = 0; j < n; ++j) {
      const T xj = (diag == Diag::NonUnit)
                       ? (bi[j] *= inv[static_cast<std::size_t>(j)])
                       : bi[j];
      const T* trow = t.row(j);
      for (index_t p = j + 1; p < n; ++p) bi[p] -= xj * trow[p];
    }
  }
}

// Right, lower, transpose: X * L^T = B; L^T is upper, per row left-to-right.
template <typename T>
void trsm_rlt(Diag diag, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  std::vector<T>& inv = tls_inv<T>();
  if (diag == Diag::NonUnit) fill_inv_diag(t, inv);
  for (index_t i = 0; i < m; ++i) {
    T* bi = b.row(i);
    for (index_t j = 0; j < n; ++j) {
      const T xj = (diag == Diag::NonUnit)
                       ? (bi[j] *= inv[static_cast<std::size_t>(j)])
                       : bi[j];
      for (index_t p = j + 1; p < n; ++p) bi[p] -= xj * t(p, j);
    }
  }
}

// Right, upper, transpose: X * U^T = B; U^T is lower, per row right-to-left.
template <typename T>
void trsm_rut(Diag diag, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  std::vector<T>& inv = tls_inv<T>();
  if (diag == Diag::NonUnit) fill_inv_diag(t, inv);
  for (index_t i = 0; i < m; ++i) {
    T* bi = b.row(i);
    for (index_t j = n - 1; j >= 0; --j) {
      const T xj = (diag == Diag::NonUnit)
                       ? (bi[j] *= inv[static_cast<std::size_t>(j)])
                       : bi[j];
      for (index_t p = 0; p < j; ++p) bi[p] -= xj * t(p, j);
    }
  }
}

template <typename T>
void small_solve(Side side, UpLo uplo, Trans trans, Diag diag,
                 ConstMatrixView<T> t, MatrixView<T> b) {
  if (side == Side::Left) {
    if (uplo == UpLo::Lower) {
      (trans == Trans::None) ? trsm_lln(diag, t, b) : trsm_llt(diag, t, b);
    } else {
      (trans == Trans::None) ? trsm_lun(diag, t, b) : trsm_lut(diag, t, b);
    }
  } else {
    if (uplo == UpLo::Lower) {
      (trans == Trans::None) ? trsm_rln(diag, t, b) : trsm_rlt(diag, t, b);
    } else {
      (trans == Trans::None) ? trsm_run(diag, t, b) : trsm_rut(diag, t, b);
    }
  }
}

// ---- blocked drivers ------------------------------------------------------
// Right-looking: solve one db-wide diagonal block, then downdate every
// still-unsolved block of B with a single gemm against the corresponding
// off-diagonal panel of the stored triangle. The traversal direction per
// case matches the substitution order of the small kernels above.

template <typename T>
void blocked_left(UpLo uplo, Trans trans, Diag diag, ConstMatrixView<T> t,
                  MatrixView<T> b, index_t db) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t nblocks = (m + db - 1) / db;
  // Forward traversal for LLN/LUT, backward for LUN/LLT.
  const bool forward =
      (uplo == UpLo::Lower) == (trans == Trans::None);
  for (index_t s = 0; s < nblocks; ++s) {
    const index_t bi = forward ? s : nblocks - 1 - s;
    const index_t k0 = bi * db;
    const index_t kb = std::min(db, m - k0);
    const index_t k1 = k0 + kb;
    MatrixView<T> bk = b.block(k0, 0, kb, n);
    small_solve<T>(Side::Left, uplo, trans, diag, t.block(k0, k0, kb, kb), bk);
    if (uplo == UpLo::Lower && trans == Trans::None && k1 < m) {
      gemm<T>(Trans::None, Trans::None, T{-1}, t.block(k1, k0, m - k1, kb), bk,
              T{1}, b.block(k1, 0, m - k1, n));
    } else if (uplo == UpLo::Upper && trans == Trans::None && k0 > 0) {
      gemm<T>(Trans::None, Trans::None, T{-1}, t.block(0, k0, k0, kb), bk, T{1},
              b.block(0, 0, k0, n));
    } else if (uplo == UpLo::Lower && trans == Trans::Transpose && k0 > 0) {
      gemm<T>(Trans::Transpose, Trans::None, T{-1}, t.block(k0, 0, kb, k0), bk,
              T{1}, b.block(0, 0, k0, n));
    } else if (uplo == UpLo::Upper && trans == Trans::Transpose && k1 < m) {
      gemm<T>(Trans::Transpose, Trans::None, T{-1}, t.block(k0, k1, kb, m - k1),
              bk, T{1}, b.block(k1, 0, m - k1, n));
    }
  }
}

template <typename T>
void blocked_right(UpLo uplo, Trans trans, Diag diag, ConstMatrixView<T> t,
                   MatrixView<T> b, index_t db) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t nblocks = (n + db - 1) / db;
  // Forward traversal for RUN/RLT, backward for RLN/RUT.
  const bool forward =
      (uplo == UpLo::Upper) == (trans == Trans::None);
  for (index_t s = 0; s < nblocks; ++s) {
    const index_t bj = forward ? s : nblocks - 1 - s;
    const index_t j0 = bj * db;
    const index_t jb = std::min(db, n - j0);
    const index_t j1 = j0 + jb;
    MatrixView<T> bj_view = b.block(0, j0, m, jb);
    small_solve<T>(Side::Right, uplo, trans, diag, t.block(j0, j0, jb, jb),
                   bj_view);
    if (uplo == UpLo::Upper && trans == Trans::None && j1 < n) {
      gemm<T>(Trans::None, Trans::None, T{-1}, bj_view,
              t.block(j0, j1, jb, n - j1), T{1}, b.block(0, j1, m, n - j1));
    } else if (uplo == UpLo::Lower && trans == Trans::None && j0 > 0) {
      gemm<T>(Trans::None, Trans::None, T{-1}, bj_view, t.block(j0, 0, jb, j0),
              T{1}, b.block(0, 0, m, j0));
    } else if (uplo == UpLo::Lower && trans == Trans::Transpose && j1 < n) {
      gemm<T>(Trans::None, Trans::Transpose, T{-1}, bj_view,
              t.block(j1, j0, n - j1, jb), T{1}, b.block(0, j1, m, n - j1));
    } else if (uplo == UpLo::Upper && trans == Trans::Transpose && j0 > 0) {
      gemm<T>(Trans::None, Trans::Transpose, T{-1}, bj_view,
              t.block(0, j0, j0, jb), T{1}, b.block(0, 0, m, j0));
    }
  }
}

}  // namespace

template <typename T>
void trsm(Side side, UpLo uplo, Trans trans, Diag diag,
          std::type_identity_t<T> alpha, ConstMatrixView<T> t, MatrixView<T> b) {
  const index_t dim = (side == Side::Left) ? b.rows() : b.cols();
  expects(t.rows() == dim && t.cols() == dim, "trsm: triangle must match B side");

  if (alpha != T{1}) {
    for (index_t i = 0; i < b.rows(); ++i) {
      T* bi = b.row(i);
      for (index_t j = 0; j < b.cols(); ++j) bi[j] *= alpha;
    }
  }
  if (b.rows() == 0 || b.cols() == 0) return;

  const index_t db = std::max<index_t>(1, tuning().db);
  if (dim <= db) {
    small_solve<T>(side, uplo, trans, diag, t, b);
  } else if (side == Side::Left) {
    blocked_left<T>(uplo, trans, diag, t, b, db);
  } else {
    blocked_right<T>(uplo, trans, diag, t, b, db);
  }
}

template <typename T>
void trsv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView<T> t, T* b) {
  MatrixView<T> bv(b, t.rows(), 1, 1);
  trsm<T>(Side::Left, uplo, trans, diag, T{1}, t, bv);
}

template void trsm<float>(Side, UpLo, Trans, Diag, float, ConstViewF, ViewF);
template void trsm<double>(Side, UpLo, Trans, Diag, double, ConstViewD, ViewD);
template void trsv<float>(UpLo, Trans, Diag, ConstViewF, float*);
template void trsv<double>(UpLo, Trans, Diag, ConstViewD, double*);

}  // namespace conflux::xblas
