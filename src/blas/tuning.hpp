// Cache/register blocking parameters for the level-3 BLAS substrate.
//
// The gemm driver (src/blas/gemm.cpp) is a BLIS-style five-loop algorithm:
// the three cache-blocking sizes (nc, kc, mc) pick the footprint of the
// packed B panel (kc x nc, L3/L2 resident) and packed A block (mc x kc,
// L2/L1 resident); the register tile (MR x NR) is fixed at compile time so
// the microkernel's accumulator array lowers to vector registers.
//
// All runtime sizes live in one Tuning struct so benches can sweep them
// (bench/micro_blas_kernels.cpp --sweep, bench/ablation_block_size.cpp) and
// users can override them via environment variables without rebuilding:
//
//   XBLAS_MC, XBLAS_KC, XBLAS_NC   gemm cache block sizes
//   XBLAS_DB                       trsm/syrk/gemmt diagonal block size
//   XBLAS_LU_NB                    getrf/potrf panel width
//   XBLAS_THREADS                  OpenMP thread count (0 = library default)
//
// Initialization precedence (Tuning::detect(), run once at first BLAS use):
//   1. compiled-in defaults (below), then
//   2. the persisted autotuner file (src/blas/autotune.hpp) — the entry for
//      the active microkernel ISA, path from XBLAS_TUNING_FILE or
//      ~/.cache/conflux/tuning.json — then
//   3. XBLAS_* environment overrides, which always win.
// tuning_source() reports which layer had the last word.
#pragma once

#include "tensor/matrix.hpp"

namespace conflux::xblas {

/// Register tile shape of the gemm microkernel, per scalar type
/// (compile-time: the MR x NR accumulator must be a fixed-size array for the
/// compiler to keep it in vector registers). Both tiles hold MR scalars in
/// one 64-byte "register" (1 zmm on AVX-512, 2 ymm on AVX2), so fp32's
/// 16x8 tile has the identical register pressure and instruction count as
/// fp64's 8x8 while moving twice the scalars per FMA — the source of the
/// fp32 throughput doubling the mixed-precision drivers rely on.
template <typename T>
struct RegTile;
template <>
struct RegTile<double> {
  static constexpr index_t mr = 8;
  static constexpr index_t nr = 8;
};
template <>
struct RegTile<float> {
  static constexpr index_t mr = 16;
  static constexpr index_t nr = 8;
};

/// Legacy names for the fp64 tile (sweeps and tests key off these).
inline constexpr index_t kMR = RegTile<double>::mr;
inline constexpr index_t kNR = RegTile<double>::nr;

/// Runtime kc scaling per scalar: the Tuning::kc default is sized so a
/// kc x nc fp64 B panel fits the L2/L3 budget; narrower scalars double kc to
/// keep the same byte footprint (and halve the per-panel loop overhead).
template <typename T>
constexpr index_t kc_scale() {
  return static_cast<index_t>(sizeof(double) / sizeof(T));
}

struct Tuning {
  /// Rows of A packed per block (rounded up to a multiple of kMR).
  /// Defaults picked by `micro_blas_kernels --sweep` on AVX-512 hardware;
  /// override per machine via XBLAS_MC / XBLAS_KC / XBLAS_NC.
  index_t mc = 64;
  /// Inner (reduction) dimension of both packed panels.
  index_t kc = 512;
  /// Columns of B packed per panel (rounded up to a multiple of kNR).
  index_t nc = 2048;
  /// Diagonal block size for blocked trsm / syrk / gemmt: O(db^3) work runs
  /// in the small scalar kernels, everything else goes through gemm.
  index_t db = 64;
  /// Panel width for the blocked getrf / potrf in src/blas/lapack.cpp.
  index_t lu_nb = 32;
  /// OpenMP thread count for gemm-family routines; 0 means "whatever
  /// omp_get_max_threads() says". Ignored in non-OpenMP builds.
  int threads = 0;
  /// Problems with 2*m*n*k at or below this skip packing entirely and use a
  /// direct strided kernel (packing overhead dominates for tiny blocks).
  double small_gemm_flops = 65536.0;
  /// k at or below this takes the small-k fast path: B is read through a
  /// strided microkernel instead of being packed (one saved pass over B per
  /// block, which dominates when k is far below kc — the factorizations'
  /// Schur updates run at k = v, typically 8..64). 0 disables the path.
  index_t small_k = 64;

  /// fp32 gemm cache blocks, filled by the persisted autotuner's "f32"
  /// entry. 0 = derive from the fp64 values (same mc/nc, kc scaled by
  /// kc_scale<float>() so the packed panels keep their byte footprint).
  /// kc_f32 is the EFFECTIVE fp32 kc — no kc_scale is applied on top.
  index_t mc_f32 = 0;
  index_t kc_f32 = 0;
  index_t nc_f32 = 0;

  /// Clamp every field to a sane value (>= 1 sizes, >= 0 threads).
  void sanitize();

  /// Full initialization chain: defaults -> persisted autotuner entry for
  /// the active ISA -> XBLAS_* environment overrides. Updates the
  /// tuning_source() record as a side effect.
  static Tuning detect();
};

/// The process-wide tuning, initialized once via Tuning::detect(). Mutable
/// so sweeps can adjust it between (not during) BLAS calls.
Tuning& tuning();

/// Read XBLAS_* environment overrides on top of the defaults (no tuning
/// file involved — sweeps and benches use this for a clean baseline).
Tuning tuning_from_env();

/// Where the last Tuning::detect() got its block sizes: "default" (compiled
/// in), "file" (persisted autotuner entry applied), or "env" (at least one
/// XBLAS_* override applied — env always wins over the file). Recorded in
/// every BENCH_*.json row so perf numbers stay attributable.
const char* tuning_source();

/// Per-thread cap on the gemm-family OpenMP team width (0 = no cap). The
/// task pool (src/sched/taskpool.hpp) sets this to 1 around every task and
/// parallel_for chunk it executes — on its workers AND on the helping
/// master thread — so BLAS calls inside pool work never fork nested teams,
/// regardless of the caller's OpenMP ICV or an XBLAS_THREADS override: the
/// pool itself is the parallelism there. Direct BLAS calls from ordinary
/// threads are unaffected.
int tls_thread_cap();
void set_tls_thread_cap(int cap);

/// RAII guard for tls_thread_cap.
class ScopedThreadCap {
 public:
  explicit ScopedThreadCap(int cap) : saved_(tls_thread_cap()) {
    set_tls_thread_cap(cap);
  }
  ~ScopedThreadCap() { set_tls_thread_cap(saved_); }
  ScopedThreadCap(const ScopedThreadCap&) = delete;
  ScopedThreadCap& operator=(const ScopedThreadCap&) = delete;

 private:
  int saved_;
};

}  // namespace conflux::xblas
