#include "grid/grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace conflux::grid {

std::vector<int> Grid3D::x_line(int y, int z) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(px_));
  for (int x = 0; x < px_; ++x) out.push_back(rank_of(x, y, z));
  return out;
}

std::vector<int> Grid3D::y_line(int x, int z) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(py_));
  for (int y = 0; y < py_; ++y) out.push_back(rank_of(x, y, z));
  return out;
}

std::vector<int> Grid3D::z_line(int x, int y) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(pz_));
  for (int z = 0; z < pz_; ++z) out.push_back(rank_of(x, y, z));
  return out;
}

std::vector<int> Grid3D::layer(int z) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(px_ * py_));
  for (int y = 0; y < py_; ++y) {
    for (int x = 0; x < px_; ++x) out.push_back(rank_of(x, y, z));
  }
  return out;
}

std::vector<int> Grid3D::all() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(ranks()));
  for (int r = 0; r < ranks(); ++r) out.push_back(r);
  return out;
}

Grid3D choose_grid(int p, double n, double memory) {
  expects(p >= 1 && n >= 1.0 && memory > 0.0, "bad grid parameters");
  // Target replication factor (Section 7.2): the extra memory beyond one
  // matrix copy, capped by the memory-independent limit c = P^{1/3}.
  const double c_target =
      std::clamp(static_cast<double>(p) * memory / (n * n), 1.0,
                 std::cbrt(static_cast<double>(p)));

  double best_score = std::numeric_limits<double>::infinity();
  int best_pz = 1, best_px = 1, best_py = 1;
  for (int pz = 1; pz <= p; ++pz) {
    if (p % pz != 0) continue;
    if (static_cast<double>(pz) > c_target * 2.0 && pz != 1) break;
    const int plane = p / pz;
    // Most square Px x Py factorization of the plane.
    int px = 1;
    for (int d = 1; d * d <= plane; ++d) {
      if (plane % d == 0) px = d;
    }
    const int py = plane / px;
    const double squareness =
        std::abs(std::log(static_cast<double>(px) / static_cast<double>(py)));
    const double c_fit =
        std::abs(std::log(static_cast<double>(pz) / c_target));
    // Squareness of the plane dominates; among similar planes prefer the
    // replication closest to the target.
    const double score = 2.0 * squareness + c_fit;
    if (score < best_score) {
      best_score = score;
      best_pz = pz;
      best_px = px;
      best_py = py;
    }
  }
  return Grid3D(best_px, best_py, best_pz);
}

Grid2D choose_grid_2d(int p) {
  expects(p >= 1, "bad grid size");
  Grid2D g;
  for (int d = 1; d * d <= p; ++d) {
    if (p % d == 0) g.pr = d;
  }
  g.pc = p / g.pr;
  return g;
}

index_t cyclic_local_count(index_t first_tile, index_t num_tiles, int p, int procs) {
  expects(first_tile >= 0 && num_tiles >= first_tile && p >= 0 && p < procs,
          "bad cyclic range");
  // Tiles t in [first_tile, num_tiles) with t % procs == p.
  const auto count_below = [&](index_t hi) {
    // tiles < hi owned by p: floor((hi - p - 1)/procs) + 1 when hi > p.
    if (hi <= static_cast<index_t>(p)) return static_cast<index_t>(0);
    return (hi - 1 - static_cast<index_t>(p)) / static_cast<index_t>(procs) + 1;
  };
  return count_below(num_tiles) - count_below(first_tile);
}

}  // namespace conflux::grid
