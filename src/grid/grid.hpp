// Processor grids for the 2.5D decomposition.
//
// COnfLUX/COnfCHOX decompose P ranks into a [Px, Py, Pz] grid: the x-y plane
// tiles the matrix block-cyclically and the z dimension replicates it for
// the reduction-dimension parallelism, with c = Pz = P*M/N^2 layers
// (Section 7.2, capped at P^{1/3} per the memory-independent regime of
// Section 6).
#pragma once

#include <vector>

#include "support/check.hpp"
#include "tensor/matrix.hpp"

namespace conflux::grid {

struct Coord3 {
  int x = 0;
  int y = 0;
  int z = 0;
  friend bool operator==(const Coord3&, const Coord3&) = default;
};

class Grid3D {
 public:
  Grid3D(int px, int py, int pz) : px_(px), py_(py), pz_(pz) {
    expects(px >= 1 && py >= 1 && pz >= 1, "grid dims must be positive");
  }

  int px() const { return px_; }
  int py() const { return py_; }
  int pz() const { return pz_; }
  int ranks() const { return px_ * py_ * pz_; }

  /// Rank layout: x fastest, then y, then z.
  int rank_of(int x, int y, int z) const {
    expects(x >= 0 && x < px_ && y >= 0 && y < py_ && z >= 0 && z < pz_,
            "coordinate out of grid");
    return (z * py_ + y) * px_ + x;
  }
  int rank_of(const Coord3& c) const { return rank_of(c.x, c.y, c.z); }

  Coord3 coord_of(int rank) const {
    expects(rank >= 0 && rank < ranks(), "rank out of grid");
    Coord3 c;
    c.x = rank % px_;
    c.y = (rank / px_) % py_;
    c.z = rank / (px_ * py_);
    return c;
  }

  /// All ranks with fixed (y, z): the tournament-pivoting column group.
  std::vector<int> x_line(int y, int z) const;
  /// All ranks with fixed (x, z).
  std::vector<int> y_line(int x, int z) const;
  /// All ranks with fixed (x, y): the reduction-dimension group.
  std::vector<int> z_line(int x, int y) const;
  /// All ranks in layer z.
  std::vector<int> layer(int z) const;
  /// Every rank.
  std::vector<int> all() const;

 private:
  int px_;
  int py_;
  int pz_;
};

/// Pick a [Px, Py, Pz] grid for P ranks factoring an N x N matrix with M
/// words of memory per rank — the paper's "optimized defaults" (Table 2):
/// target replication c = P*M/N^2 clamped to [1, P^{1/3}], then the most
/// square x-y plane among the divisors of P.
Grid3D choose_grid(int p, double n, double memory);

/// Square-ish 2D grid for the ScaLAPACK-style baselines: Pr x Pc = P with
/// Pr <= Pc and Pr the largest divisor <= sqrt(P).
struct Grid2D {
  int pr = 1;
  int pc = 1;
  int ranks() const { return pr * pc; }
  int rank_of(int r, int c) const { return r * pc + c; }
  int row_of(int rank) const { return rank / pc; }
  int col_of(int rank) const { return rank % pc; }
};

Grid2D choose_grid_2d(int p);

/// Block-cyclic 1D ownership helpers used by both the 2.5D and 2D layouts.
/// Tiles t = 0.. are dealt round-robin to `procs` processes.
inline int cyclic_owner(index_t tile, int procs) {
  return static_cast<int>(tile % procs);
}

/// Number of tiles in [first_tile, num_tiles) owned by process p.
index_t cyclic_local_count(index_t first_tile, index_t num_tiles, int p, int procs);

}  // namespace conflux::grid
