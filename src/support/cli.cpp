#include "support/cli.hpp"

#include <string_view>

#include "support/check.hpp"

namespace conflux {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    expects(arg.starts_with("--"), "options must start with --");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      options_[std::string(arg)] = "1";
    } else {
      options_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

std::optional<std::string> Cli::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  const auto v = get(name);
  return v ? std::stoll(*v) : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  return v ? std::stod(*v) : fallback;
}

std::string Cli::get_string(const std::string& name, std::string fallback) const {
  const auto v = get(name);
  return v ? *v : fallback;
}

bool Cli::get_flag(const std::string& name) const {
  const auto v = get(name);
  return v.has_value() && *v != "0";
}

void Cli::check_unused() const {
  for (const auto& [name, value] : options_) {
    check(queried_.contains(name), "unknown option --" + name);
  }
}

}  // namespace conflux
