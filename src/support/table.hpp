// Plain-text table and CSV emission for the benchmark harness.
//
// Every bench binary prints the rows/series the paper reports; this keeps
// the formatting in one place so the outputs are uniform and greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace conflux {

/// A cell is a string, an integer, or a double (formatted with %.4g-style
/// shortest-reasonable precision unless a column format overrides it).
using Cell = std::variant<std::string, long long, double>;

/// Column-aligned text table with an optional title, e.g.
///
///   Table 2: model validation
///   impl      N      P     measured   model      err%
///   --------  -----  ----  ---------  ---------  -----
///   conflux   16384  256   1.234e+08  1.250e+08  1.3
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Set the header row. Must be called before add_row.
  void set_header(std::vector<std::string> names);

  /// Append one data row; must match the header width.
  void add_row(std::vector<Cell> cells);

  /// Number of data rows added so far.
  std::size_t rows() const { return rows_.size(); }

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish; quotes cells containing commas).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

/// Format a byte/element count with binary suffix, e.g. "1.50 Mi".
std::string human_count(double value);

/// Format a cell using the table's default rules.
std::string format_cell(const Cell& cell);

}  // namespace conflux
