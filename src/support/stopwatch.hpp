// Minimal monotonic stopwatch used by examples and benches for wall time.
#pragma once

#include <chrono>

namespace conflux {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace conflux
