#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace conflux::json {

void write_escaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

void write_number(std::ostream& os, long long v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

void Writer::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) os_ << ", ";
    stack_.back().has_items = true;
  }
}

void Writer::begin_object() {
  pre_value();
  os_ << "{";
  stack_.push_back({/*array=*/false, /*has_items=*/false});
}

void Writer::end_object() {
  os_ << "}";
  stack_.pop_back();
}

void Writer::begin_array() {
  pre_value();
  os_ << "[";
  stack_.push_back({/*array=*/true, /*has_items=*/false});
}

void Writer::end_array() {
  os_ << "]";
  stack_.pop_back();
}

void Writer::key(std::string_view k) {
  if (!stack_.empty()) {
    if (stack_.back().has_items) os_ << ", ";
    stack_.back().has_items = true;
  }
  os_ << '"';
  write_escaped(os_, k);
  os_ << "\": ";
  after_key_ = true;
}

void Writer::value(std::string_view s) {
  pre_value();
  os_ << '"';
  write_escaped(os_, s);
  os_ << '"';
}

void Writer::value(double v) {
  pre_value();
  write_number(os_, v);
}

void Writer::value(long long v) {
  pre_value();
  write_number(os_, v);
}

void Writer::value(unsigned long long v) {
  pre_value();
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os_.write(buf, res.ptr - buf);
}

void Writer::value(bool b) {
  pre_value();
  os_ << (b ? "true" : "false");
}

void Writer::null() {
  pre_value();
  os_ << "null";
}

void Writer::raw(std::string_view json_text) {
  pre_value();
  os_ << json_text;
}

}  // namespace conflux::json
