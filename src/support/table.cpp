#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/check.hpp"

namespace conflux {

namespace {

std::string format_double(double v) {
  char buf[64];
  // %.6g keeps tables compact while preserving enough digits for comparisons.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_cell(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  return format_double(std::get<double>(cell));
}

std::string human_count(double value) {
  static constexpr const char* suffixes[] = {"", "Ki", "Mi", "Gi", "Ti", "Pi"};
  int idx = 0;
  while (value >= 1024.0 && idx < 5) {
    value /= 1024.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
  return buf;
}

void TextTable::set_header(std::vector<std::string> names) {
  expects(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(names);
}

void TextTable::add_row(std::vector<Cell> cells) {
  expects(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  if (!title_.empty()) os << title_ << "\n";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << header_[c] << std::string(widths[c] - header_[c].size() + 2, ' ');
  }
  os << "\n";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << "\n";
  for (const auto& r : rendered) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c] << std::string(widths[c] - r[c].size() + 2, ' ');
    }
    os << "\n";
  }
}

void TextTable::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "," : "") << csv_escape(header_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << csv_escape(format_cell(row[c]));
    }
    os << "\n";
  }
}

}  // namespace conflux
