#include "support/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "support/metrics.hpp"

namespace conflux::fault {

namespace {

/// Injected-fault FIRE counts per site, mirrored into the metrics registry
/// (behind its enabled() gate) so fault observability rides the same
/// snapshot/export path as everything else; fault_injection_test reconciles
/// these against the classified Statuses each run produces.
const metrics::Counter& fired_counter(Site site) {
  static const metrics::Counter counters[kSiteCount] = {
      metrics::Counter("fault.fired.panel-nan"),
      metrics::Counter("fault.fired.zero-pivot"),
      metrics::Counter("fault.fired.task-throw"),
      metrics::Counter("fault.fired.worker-stall"),
      metrics::Counter("fault.fired.transient-task-throw"),
      metrics::Counter("fault.fired.crash-at-step"),
      metrics::Counter("fault.fired.bitflip"),
  };
  return counters[static_cast<int>(site)];
}

/// splitmix64: the standard 64-bit finalizer-style mixer — full avalanche,
/// so consecutive counter values decorrelate completely.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

unsigned parse_site_mask(const char* s) {
  if (s == nullptr || *s == '\0') return (1u << kSiteCount) - 1;
  unsigned mask = 0;
  std::string list(s);
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(pos, comma - pos);
    for (int i = 0; i < kSiteCount; ++i) {
      if (item == site_name(static_cast<Site>(i))) mask |= 1u << i;
    }
    pos = comma + 1;
  }
  return mask;
}

Config env_config() {
  Config cfg;
  if (const char* s = std::getenv("CONFLUX_FAULT_SEED"); s != nullptr && *s != '\0') {
    cfg.seed = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("CONFLUX_FAULT_RATE"); s != nullptr && *s != '\0') {
    cfg.rate = std::strtod(s, nullptr);
  }
  cfg.site_mask = parse_site_mask(std::getenv("CONFLUX_FAULT_SITES"));
  if (const char* s = std::getenv("CONFLUX_FAULT_STALL_S"); s != nullptr && *s != '\0') {
    cfg.stall_s = std::strtod(s, nullptr);
  }
  return cfg;
}

/// Shared state. The config itself changes only under the mutex (tests and
/// env load); the hot-path `enabled` flag and the counters are atomics so
/// pool workers can consult them without taking the lock.
struct State {
  std::mutex mu;
  Config cfg;
  bool env_loaded = false;
  bool programmatic = false;
  std::atomic<bool> enabled{false};
  std::atomic<long long> injected{0};
  std::atomic<std::uint64_t> counters[kSiteCount] = {};
};

void load_env_locked(State& s);

State& state() {
  // The environment must be loaded before the first `enabled` fast-path
  // check: should_inject/enabled consult the atomic WITHOUT the mutex, so
  // an env-only process (no programmatic configure) would otherwise never
  // arm.
  static State s;
  static const bool env_init = [] {
    std::lock_guard<std::mutex> lock(s.mu);
    load_env_locked(s);
    return true;
  }();
  (void)env_init;
  return s;
}

void load_env_locked(State& s) {
  if (!s.env_loaded) {
    s.cfg = env_config();
    s.env_loaded = true;
    s.enabled.store(s.cfg.rate > 0.0 && s.cfg.site_mask != 0,
                    std::memory_order_relaxed);
  }
}

void reset_counters(State& s) {
  s.injected.store(0, std::memory_order_relaxed);
  for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kPanelNaN: return "panel-nan";
    case Site::kZeroPivot: return "zero-pivot";
    case Site::kTaskThrow: return "task-throw";
    case Site::kWorkerStall: return "worker-stall";
    case Site::kTransientTaskThrow: return "transient-task-throw";
    case Site::kCrashAtStep: return "crash-at-step";
    case Site::kBitflip: return "bitflip";
  }
  return "unknown";
}

void configure(const Config& cfg) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.cfg = cfg;
  s.env_loaded = true;  // a later reset() re-reads the environment
  s.programmatic = true;
  reset_counters(s);
  s.enabled.store(cfg.rate > 0.0 && cfg.site_mask != 0, std::memory_order_relaxed);
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.programmatic = false;
  s.env_loaded = false;
  load_env_locked(s);
  reset_counters(s);
}

bool enabled() { return state().enabled.load(std::memory_order_relaxed); }

Config config() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  load_env_locked(s);
  return s.cfg;
}

bool should_inject(Site site) {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return false;
  Config cfg;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    load_env_locked(s);
    cfg = s.cfg;
  }
  if (cfg.rate <= 0.0 || !cfg.site_armed(site)) return false;
  const std::uint64_t count =
      s.counters[static_cast<int>(site)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = splitmix64(
      cfg.seed * 0x100000001b3ULL + static_cast<std::uint64_t>(site) * 0x9e37ULL +
      count);
  // Top 53 bits as a uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= cfg.rate) return false;
  s.injected.fetch_add(1, std::memory_order_relaxed);
  fired_counter(site).add(1.0);
  return true;
}

long long injected_count() {
  return state().injected.load(std::memory_order_relaxed);
}

}  // namespace conflux::fault
