#include "support/buildinfo.hpp"

// CONFLUX_GIT_DESCRIBE is injected by CMake on this one translation unit
// (set_source_files_properties in CMakeLists.txt).
#ifndef CONFLUX_GIT_DESCRIBE
#define CONFLUX_GIT_DESCRIBE "unknown"
#endif

namespace conflux {

const char* git_describe() { return CONFLUX_GIT_DESCRIBE; }

}  // namespace conflux
