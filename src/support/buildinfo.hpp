// Build provenance for machine-readable perf records.
#pragma once

namespace conflux {

/// `git describe --always --dirty --tags` of the checkout this library was
/// configured from, or "unknown" outside a git checkout. Recorded in every
/// BENCH_*.json row so perf numbers stay attributable to a commit.
const char* git_describe();

}  // namespace conflux
