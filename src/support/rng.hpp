// Deterministic pseudo-random number generation (xoshiro256**).
//
// The simulator and the test suite both need reproducible randomness that is
// independent of the standard library implementation, so we carry our own
// engine instead of std::mt19937_64 distributions (whose outputs are not
// specified bit-for-bit across library versions for real distributions).
#pragma once

#include <array>
#include <cstdint>

namespace conflux {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal variate (Box-Muller, one value per call).
  double normal();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace conflux
