// Runtime contract checking in the spirit of the C++ Core Guidelines
// Expects/Ensures (I.6, I.8). Macro-free: uses std::source_location.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace conflux {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class contract_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void contract_fail(std::string_view kind, std::string_view msg,
                                const std::source_location& loc);
}  // namespace detail

/// Precondition check: call at function entry to validate arguments.
inline void expects(bool cond, std::string_view msg = "precondition failed",
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Expects", msg, loc);
}

/// Postcondition check: call before returning to validate results.
inline void ensures(bool cond, std::string_view msg = "postcondition failed",
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Ensures", msg, loc);
}

/// Internal invariant check (algorithmic consistency, not caller misuse).
inline void check(bool cond, std::string_view msg = "invariant violated",
                  const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Check", msg, loc);
}

/// Unconditional failure for unreachable code paths.
[[noreturn]] inline void unreachable(
    std::string_view msg = "unreachable code reached",
    const std::source_location loc = std::source_location::current()) {
  detail::contract_fail("Unreachable", msg, loc);
}

}  // namespace conflux

/// Hot-loop precondition check: a classified contract_error in Debug and
/// sanitizer builds (CMake defines CONFLUX_ENABLE_CHECKS there), compiled
/// out entirely in Release. Use for per-element/per-view geometry guards on
/// the factorization's inner paths — anything whose cost would show up in a
/// profile; entry-point argument validation stays on the always-on
/// expects()/check() calls. This has to be a macro (not an inline function)
/// so Release builds do not even evaluate the condition.
#if defined(CONFLUX_ENABLE_CHECKS)
#define CONFLUX_CHECK(cond, msg) ::conflux::check((cond), (msg))
#else
#define CONFLUX_CHECK(cond, msg) ((void)0)
#endif
