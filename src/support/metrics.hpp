// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with lock-free per-thread sinks (DESIGN.md "Observability").
//
// Design constraints, in order:
//
//   1. Near-zero cost when disabled. Every hot-path record funnels through
//      `if (!enabled()) return;` — a single relaxed atomic load and branch
//      (the same pattern as fault::enabled()), validated by an overhead
//      gate in obs_test. Disabled-mode recording leaves every cell
//      untouched, so a run with CONFLUX_METRICS unset pays only the branch.
//
//   2. Read-only on the data path. Instrumentation never changes what is
//      computed — the factor cores' bitwise-determinism guarantees (factors
//      identical across threads x pz x lookahead x metrics on/off) hold
//      because a counter add is the ONLY side effect.
//
//   3. Exact concurrent counts. Each thread owns a private sink cell per
//      counter: an increment is a relaxed load+store on a cell no other
//      thread writes, so no increment is ever lost, and a quiescent-point
//      snapshot (after wait_all/join) sums exactly. Snapshots taken DURING
//      concurrent recording are racy-but-coherent: each cell reads as a
//      value it held at some point, never a torn word (cells are atomics).
//
//   4. Monotonic raw cells + baseline reset. reset() never zeroes another
//      thread's cell (that store could race an owner's read-modify-write
//      and lose counts); it snapshots the raw totals as the new baseline
//      and snapshot() reports the difference.
//
// Metrics are registered once by name (duplicate registration returns the
// same id — instrumented translation units can each declare the counter
// they write). Handles are cheap value types meant for namespace-scope
// `const` objects next to the code they instrument.
//
// CONFLUX_METRICS=1 arms the registry from the environment at static-init
// time; set_enabled() is the programmatic override (benches, tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace conflux::metrics {

namespace detail {
// Armed from CONFLUX_METRICS when the registry first constructs (any
// metric registration — all of which happen during static init of the
// instrumented translation units) and from set_enabled().
inline constinit std::atomic<bool> g_enabled{false};

int register_counter(const char* name);
int register_gauge(const char* name);
int register_histogram(const char* name, const double* bounds, int nbounds);
void counter_add(int id, double delta);
void gauge_set(int id, double v);
void histogram_record(int id, double v);
}  // namespace detail

/// The one hot-path branch: a single relaxed load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Programmatic arm/disarm (overrides the CONFLUX_METRICS default).
void set_enabled(bool on);

enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

/// Monotonic sum (bytes moved, tasks run, faults fired).
class Counter {
 public:
  explicit Counter(const char* name) : id_(detail::register_counter(name)) {}
  void add(double delta) const {
    if (!enabled()) return;
    detail::counter_add(id_, delta);
  }
  int id() const { return id_; }

 private:
  int id_;
};

/// Last-set value plus high-water mark (queue depths, widths).
class Gauge {
 public:
  explicit Gauge(const char* name) : id_(detail::register_gauge(name)) {}
  void set(double v) const {
    if (!enabled()) return;
    detail::gauge_set(id_, v);
  }
  int id() const { return id_; }

 private:
  int id_;
};

/// Fixed upper-bound buckets (ascending); values above the last bound land
/// in a final overflow bucket, so there are bounds.size()+1 buckets.
class Histogram {
 public:
  Histogram(const char* name, std::initializer_list<double> upper_bounds)
      : id_(detail::register_histogram(name, upper_bounds.begin(),
                                       static_cast<int>(upper_bounds.size()))) {}
  void record(double v) const {
    if (!enabled()) return;
    detail::histogram_record(id_, v);
  }
  int id() const { return id_; }

 private:
  int id_;
};

/// One metric's aggregated state at snapshot time.
struct MetricValue {
  std::string name;
  Kind kind = Kind::Counter;
  double value = 0.0;  ///< counter total / gauge last-set value
  double max = 0.0;    ///< gauge high-water mark since reset
  long long count = 0; ///< histogram: total recordings
  double sum = 0.0;    ///< histogram: sum of recorded values
  std::vector<double> bounds;       ///< histogram upper bounds
  std::vector<long long> buckets;   ///< bounds.size()+1 entries
};

/// Point-in-time aggregation of every registered metric (minus the reset
/// baseline), sorted by name.
struct Snapshot {
  std::vector<MetricValue> values;

  const MetricValue* find(std::string_view name) const;
  /// Counter/gauge value by name; 0 if absent.
  double value(std::string_view name) const;
  /// Sum of `value` over all metrics whose name starts with `prefix`.
  double sum_prefix(std::string_view prefix) const;
};

Snapshot snapshot();

/// Start a new accounting epoch: subsequent snapshots report only activity
/// after this call. Never writes another thread's cells (see file comment).
void reset();

/// The current snapshot as a JSON object {"name": {...}, ...}.
void write_json(std::ostream& os);
void write_json(std::ostream& os, const Snapshot& snap);

/// Compact single-line "name=value name=value ..." rendering of every
/// nonzero metric — what the task-pool watchdog embeds in a pool-wedged
/// dump so a hang report carries the runtime state that led up to it.
std::string debug_string();

}  // namespace conflux::metrics
