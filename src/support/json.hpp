// Minimal streaming JSON writer shared by every emitter in the tree (the
// Chrome-trace exports, the bench BENCH_*.json records, the metrics
// snapshot). Before this existed each emitter hand-rolled its own `<<`
// chains with its own (inconsistent) string escaping and float formatting;
// this is the one place both are decided:
//
//   - strings: `"` `\\` and the C0 control characters are escaped per RFC
//     8259 (\n, \t, \r get the short forms, the rest \u00XX — the old
//     emitters silently DROPPED unknown control characters);
//   - numbers: shortest round-trip form via std::to_chars, so output is
//     locale-independent and re-parses to the identical double (the old
//     emitters inherited whatever precision the ostream happened to carry);
//   - non-finite doubles: JSON has no NaN/Infinity, so they are emitted as
//     null (benches gate on finiteness separately).
//
// The Writer tracks the open object/array nesting and inserts commas, so
// call sites only state structure:
//
//   json::Writer w(os);
//   w.begin_object();
//   w.key("algo"); w.value("conflux_lu");
//   w.key("cells"); w.begin_array();
//   ...
//   w.end_array();
//   w.end_object();
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace conflux::json {

/// Escape `s` into `os` (no surrounding quotes).
void write_escaped(std::ostream& os, std::string_view s);

/// Shortest-round-trip number formatting (to_chars); "null" if non-finite.
void write_number(std::ostream& os, double v);
void write_number(std::ostream& os, long long v);

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value/begin_*.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(long long v);
  void value(int v) { value(static_cast<long long>(v)); }
  void value(unsigned long long v);
  void value(bool b);
  void null();

  /// key + value in one call.
  template <typename V>
  void field(std::string_view k, V v) {
    key(k);
    value(v);
  }

  /// Raw pass-through for pre-rendered JSON (used to splice sub-documents).
  void raw(std::string_view json_text);

 private:
  /// Comma/newline bookkeeping before emitting the next element.
  void pre_value();

  std::ostream& os_;
  struct Level {
    bool array = false;
    bool has_items = false;
  };
  std::vector<Level> stack_;
  bool after_key_ = false;
};

}  // namespace conflux::json
