// Fault-injection harness (DESIGN.md "Failure model and degradation
// ladder"): deterministic, seed-driven corruption of the factorization's
// execution, used by the soak test and the CI fault legs to prove that
// every breakdown ends in a classified Status — never a crash, a hang, or a
// silent wrong answer.
//
// Injection is OFF unless explicitly armed (rate > 0), and every decision
// site first checks the one-branch `enabled()` flag, so the fault-free hot
// path costs a single predictable load. Decisions are a pure function of
// (seed, site, per-site opportunity counter) through splitmix64, so a
// failing seed replays exactly.
//
// Configuration: environment (read once, at first use) or programmatic
// (tests; overrides the environment until reset):
//   CONFLUX_FAULT_SEED     decision seed (default 0)
//   CONFLUX_FAULT_RATE     injection probability per opportunity (default 0)
//   CONFLUX_FAULT_SITES    comma list of sites to arm (default: all):
//                          panel-nan, zero-pivot, task-throw, worker-stall,
//                          transient-task-throw, crash-at-step, bitflip
//   CONFLUX_FAULT_STALL_S  injected worker-stall duration in seconds
//
// Sites:
//   kPanelNaN    poison one entry of the current panel with a quiet NaN
//                before tournament pivoting reads it
//   kZeroPivot   force an exactly-zero pivot in the factored A00 block
//   kTaskThrow   throw std::runtime_error from inside a pool task
//   kWorkerStall sleep a pool worker for stall_s before running its task
//                (cooperative: the stall aborts when the pool cancels)
//   kTransientTaskThrow
//                throw a transient-classified status_error from inside a
//                retryable pool task; the per-site counter advances on
//                every opportunity, so a re-executed task draws a fresh
//                decision and (at rate < 1) eventually succeeds — the
//                "fails N times, then succeeds" soak for bounded retry
//   kCrashAtStep abort the factorization at a step boundary exactly as a
//                killed process would (kCrashSimulated status), leaving
//                the last checkpoint behind for the resume_* entry points
//   kBitflip     flip one bit of one scalar in the trailing accumulator
//                after a Schur update — the corruption ABFT must catch
#pragma once

#include <cstdint>

namespace conflux::fault {

enum class Site : int {
  kPanelNaN = 0,
  kZeroPivot = 1,
  kTaskThrow = 2,
  kWorkerStall = 3,
  kTransientTaskThrow = 4,
  kCrashAtStep = 5,
  kBitflip = 6,
};
inline constexpr int kSiteCount = 7;

/// Stable site name ("panel-nan", ...), the CONFLUX_FAULT_SITES vocabulary.
const char* site_name(Site site);

struct Config {
  std::uint64_t seed = 0;
  double rate = 0.0;  ///< injection probability per opportunity; 0 = off
  /// Bit i arms Site(i); default all armed (rate still gates everything).
  unsigned site_mask = (1u << kSiteCount) - 1;
  double stall_s = 0.25;  ///< kWorkerStall sleep duration

  bool site_armed(Site s) const {
    return (site_mask & (1u << static_cast<int>(s))) != 0;
  }
};

/// Install a programmatic configuration (resets the opportunity counters
/// and the injected-fault tally).
void configure(const Config& cfg);
/// Drop any programmatic configuration and return to the environment's.
void reset();

/// True when some armed site can fire (rate > 0). The one check every
/// injection site performs before doing anything else.
bool enabled();
/// The active configuration (programmatic if installed, else environment).
Config config();

/// Deterministic decision for one opportunity at `site`: advances that
/// site's counter and compares the (seed, site, counter) hash against the
/// rate. Always false when the site is unarmed or the rate is 0.
bool should_inject(Site site);

/// Faults injected (should_inject() returned true) since the last
/// configure()/reset().
long long injected_count();

/// RAII programmatic configuration for tests.
class ScopedConfig {
 public:
  explicit ScopedConfig(const Config& cfg) { configure(cfg); }
  ~ScopedConfig() { reset(); }
  ScopedConfig(const ScopedConfig&) = delete;
  ScopedConfig& operator=(const ScopedConfig&) = delete;
};

}  // namespace conflux::fault
