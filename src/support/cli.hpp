// Tiny command-line option parser for bench/example binaries.
//
// Supports --key=value and --flag forms. Anything the binary does not ask
// for is rejected, so typos in sweep parameters fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace conflux {

class Cli {
 public:
  /// Parse argv; throws contract_error on malformed options.
  Cli(int argc, const char* const* argv);

  /// Value of --name=..., or std::nullopt if absent.
  std::optional<std::string> get(const std::string& name) const;

  /// Typed getters with defaults.
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name, std::string fallback) const;
  bool get_flag(const std::string& name) const;

  /// Options present but never queried (reported by check_unused).
  void check_unused() const;

 private:
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace conflux
