#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace conflux {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  have_cached_normal_ = false;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  expects(n > 0, "uniform_int requires n > 0");
  // Lemire-style rejection bound to keep the result exactly uniform.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller with guards against log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace conflux
