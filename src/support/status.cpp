#include "support/status.hpp"

namespace conflux {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kSingularPivot: return "singular-pivot";
    case StatusCode::kNearSingularPivot: return "near-singular-pivot";
    case StatusCode::kNonFinite: return "non-finite";
    case StatusCode::kGrowthOverflow: return "growth-overflow";
    case StatusCode::kNotPositiveDefinite: return "not-positive-definite";
    case StatusCode::kRefineStagnated: return "refine-stagnated";
    case StatusCode::kRefineDiverged: return "refine-diverged";
    case StatusCode::kTaskFailed: return "task-failed";
    case StatusCode::kPoolWedged: return "pool-wedged";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kTransientTaskFailure: return "transient-task-failure";
    case StatusCode::kCheckpointInvalid: return "checkpoint-invalid";
    case StatusCode::kDataCorruption: return "data-corruption";
    case StatusCode::kCrashSimulated: return "crash-simulated";
    case StatusCode::kAdmissionRejected: return "admission-rejected";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out(status_code_name(code_));
  if (step_ >= 0) {
    out += " at step ";
    out += std::to_string(step_);
  }
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace conflux
