// Wall-clock phase-span capture for the unified Chrome-trace export
// (DESIGN.md "Observability"). The factor cores mark each schedule phase
// (tournament pivoting, A00 factorization, panel solves, Schur update ...)
// with a ScopedSpan; while a capture is armed the spans record real begin/
// end times per host thread, and every span end also samples the metrics
// registry's gauges and data-movement totals as counter-track points. The
// capture merges with the TaskPool's wall-clock task slices into one trace
// file via sched::write_unified_trace (chrome_trace.hpp), armed by
// CONFLUX_TRACE=<file> in the benches.
//
// Cost model mirrors support/metrics.hpp: a disarmed ScopedSpan is one
// relaxed atomic load and branch; spans only exist while a capture is
// running (benches and tests), never on the default path.
//
// Implemented in metrics.cpp — the span buffer samples registry state.
#pragma once

#include <atomic>
#include <string>
#include <vector>

namespace conflux::prof {

/// One annotated phase interval (seconds relative to the capture start).
struct SpanRecord {
  std::string name;
  long long step = -1;  ///< schedule step (-1 = none / unknown)
  int thread = 0;       ///< dense capture-local host-thread index
  double t0 = 0.0;
  double t1 = 0.0;
};

/// One counter-track point: `name` held `value` at time `t`.
struct CounterSample {
  double t = 0.0;
  std::string name;
  double value = 0.0;
};

struct Capture {
  std::vector<SpanRecord> spans;
  std::vector<CounterSample> samples;
};

namespace detail {
inline constinit std::atomic<bool> g_capturing{false};
/// Returns the span index, or -1 when no capture is armed.
int span_begin(const char* name, long long step);
void span_end(int index);
}  // namespace detail

/// The one hot-path branch (same pattern as metrics::enabled()).
inline bool capturing() {
  return detail::g_capturing.load(std::memory_order_relaxed);
}

/// Arm a capture (clears any previous one).
void start_capture();
/// Disarm and hand back the recorded spans and counter samples.
Capture stop_capture();

/// The CONFLUX_TRACE environment value ("" when unset): the file path the
/// benches write the merged Chrome trace to.
const std::string& trace_path();

/// RAII phase span: records only while a capture is armed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, long long step = -1) {
    if (capturing()) index_ = detail::span_begin(name, step);
  }
  ~ScopedSpan() {
    if (index_ >= 0) detail::span_end(index_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  int index_ = -1;
};

}  // namespace conflux::prof
