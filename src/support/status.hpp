// Typed error model for the public factor/solve APIs (DESIGN.md "Failure
// model and degradation ladder").
//
// The factorization stack has three distinct failure regimes and the type
// system keeps them apart:
//   - caller misuse (bad shapes, impossible grids): contract_error from
//     check.hpp, a logic_error — the program asked for something undefined;
//   - numerical breakdown (singular pivots, NaN/Inf contamination, growth
//     overflow, refinement stagnation): a *classified* Status carried either
//     inside a Result<T> (the try_* entry points) or on a status_error
//     exception (the throwing entry points) — the request was well-formed
//     but the data defeated the algorithm;
//   - execution failure (a pool task threw, the pool wedged): also a
//     Status, raised by the scheduler rather than the numerics.
//
// A Result<T> can hold an error AND a value at the same time — the
// LAPACK info > 0 convention: an exactly-singular LU still produces factors
// with P A = L U and a bijective permutation (the zero pivot sits on U's
// diagonal), and callers that only need the factorization's residual
// properties may use the degraded value while callers that need to divide
// by U's diagonal must not.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "support/check.hpp"

namespace conflux {

enum class StatusCode : int {
  kOk = 0,
  /// Caller misuse surfaced through a non-throwing API (try_* wrappers map
  /// contract_error here).
  kInvalidArgument,
  /// An exactly-zero pivot was selected (the active column was zero in every
  /// candidate row): the matrix is singular at that elimination step.
  kSingularPivot,
  /// A pivot fell below FactorOptions::pivot_tolerance * max|A| (only raised
  /// when a tolerance is explicitly configured; the default is exact-zero).
  kNearSingularPivot,
  /// NaN or Inf appeared in the input, a panel, or the trailing accumulator.
  kNonFinite,
  /// The element growth factor max|U| / max|A| exceeded the configured (or
  /// auto, 1/(8 eps)) limit: the factors exist but carry no accuracy.
  kGrowthOverflow,
  /// A diagonal block failed its Cholesky factorization.
  kNotPositiveDefinite,
  /// Iterative refinement stopped improving before reaching the tolerance
  /// (cond(A) * eps_fp32 too large): fp32 information is exhausted.
  kRefineStagnated,
  /// A refinement correction made the backward error worse.
  kRefineDiverged,
  /// A task on the execution pool threw; the message carries the original
  /// exception's text.
  kTaskFailed,
  /// The pool watchdog saw no task retire for a full interval while the
  /// master was blocked: a wedged worker or a dependency deadlock.
  kPoolWedged,
  /// Work was skipped because a prior failure cancelled the step.
  kCancelled,
  /// A pool task failed in a way classified as transient (lost work, an
  /// injected transient-task-throw): retryable, and surfaced only after the
  /// bounded retry budget is exhausted.
  kTransientTaskFailure,
  /// A checkpoint snapshot failed validation: bad magic, version mismatch,
  /// truncated payload, or checksum mismatch. Never undefined behaviour —
  /// a corrupt snapshot is rejected before any byte is interpreted.
  kCheckpointInvalid,
  /// An ABFT checksum verification over the trailing accumulator failed:
  /// the in-memory data was corrupted after it was last written (e.g. an
  /// injected bitflip). Recoverable by re-executing from the last snapshot.
  kDataCorruption,
  /// The crash-at-step fault site fired: the run aborted mid-factorization
  /// exactly as a killed process would, leaving the last checkpoint behind
  /// for resume_*() to pick up. Only ever raised by the injection harness.
  kCrashSimulated,
  /// A solve-service request was turned away at admission: the bounded
  /// queue for its priority class was full (DESIGN.md "Solve service").
  /// Back-pressure, not failure — the client retries or sheds load.
  kAdmissionRejected,
};

/// Stable lowercase-kebab name for logs and JSON ("singular-pivot", ...).
std::string_view status_code_name(StatusCode code);

/// A classified outcome: a code, a human-readable message, and (when the
/// failure is tied to a schedule position) the outer-iteration step.
class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message, long long step = -1)
      : code_(code), step_(step), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Outer-iteration step where the failure was detected; -1 = not tied to
  /// a schedule position.
  long long step() const { return step_; }
  const std::string& message() const { return message_; }

  /// "singular-pivot at step 3: <message>" (or "ok").
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  long long step_ = -1;
  std::string message_;
};

/// Thrown by the throwing entry points on hard numerical breakdown or
/// execution failure; carries the full classified Status. Derives from
/// runtime_error (the data or the machine failed), unlike contract_error
/// (the caller's logic failed).
class status_error : public std::runtime_error {
 public:
  explicit status_error(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }
  StatusCode code() const { return status_.code(); }

 private:
  Status status_;
};

/// Outcome-or-value for the non-throwing try_* entry points. Three states:
///   - ok:        status().ok() and has_value()
///   - degraded:  !status().ok() but has_value() — the LAPACK info > 0 case
///   - failed:    !status().ok() and !has_value()
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : has_value_(true), value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    expects(!status_.ok(), "a value-less Result must carry an error");
  }
  Result(Status status, T degraded_value)
      : status_(std::move(status)), has_value_(true),
        value_(std::move(degraded_value)) {
    expects(!status_.ok(), "a degraded Result must carry an error");
  }

  bool ok() const { return status_.ok(); }
  bool has_value() const { return has_value_; }
  const Status& status() const { return status_; }

  /// The value (possibly degraded). Throws status_error when none exists.
  T& value() & {
    if (!has_value_) throw status_error(status_);
    return value_;
  }
  const T& value() const& {
    if (!has_value_) throw status_error(status_);
    return value_;
  }
  T&& value() && {
    if (!has_value_) throw status_error(status_);
    return std::move(value_);
  }

 private:
  Status status_;
  bool has_value_ = false;
  T value_{};
};

}  // namespace conflux
