#include "support/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "support/json.hpp"
#include "support/profile.hpp"

namespace conflux::metrics {

namespace {

/// Counter slots are a fixed-capacity array per thread sink so the hot
/// add path indexes without any resize (a growing vector would race the
/// snapshot reader). A few dozen counters exist; 256 is headroom.
constexpr int kMaxCounterSlots = 256;

struct ThreadSink {
  std::atomic<double> cells[kMaxCounterSlots];
  ThreadSink() {
    for (auto& c : cells) c.store(0.0, std::memory_order_relaxed);
  }
};

/// Relaxed add on an atomic double via CAS (fetch_add on floating-point
/// atomics is C++20; the CAS loop is portable and these are cold paths).
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

struct GaugeMeta {
  std::string name;
  std::atomic<double> value{0.0};
  std::atomic<double> max{0.0};
};

struct HistMeta {
  std::string name;
  std::vector<double> bounds;  // ascending upper bounds
  std::unique_ptr<std::atomic<long long>[]> buckets;  // bounds.size()+1
  std::atomic<long long> count{0};
  std::atomic<double> sum{0.0};
  // reset() baselines (registry mutex)
  std::vector<long long> base_buckets;
  long long base_count = 0;
  double base_sum = 0.0;
};

struct Registry {
  std::mutex mu;
  // Counters: name per slot; per-thread cells live in the sinks.
  std::vector<std::string> counter_names;
  std::vector<double> counter_base;  // reset() baseline per slot
  std::deque<GaugeMeta> gauges;      // deque: stable addresses, atomics
  std::deque<HistMeta> hists;
  // The registry owns every sink and never frees one before process exit:
  // a worker thread's thread_local pointer stays valid for the thread's
  // whole life, and a dead thread's final counts keep being summed.
  std::vector<std::unique_ptr<ThreadSink>> sinks;

  // Phase-span capture (support/profile.hpp).
  std::mutex span_mu;
  bool capturing = false;
  std::chrono::steady_clock::time_point capture_t0;
  std::vector<prof::SpanRecord> spans;
  std::vector<prof::CounterSample> samples;
  std::atomic<int> next_span_thread{0};
};

Registry& registry() {
  static Registry r;
  // CONFLUX_METRICS arms the fast-path flag the first time the registry is
  // touched — which is during static initialization of any instrumented
  // translation unit, i.e. before main().
  static const bool env_armed = [] {
    const char* s = std::getenv("CONFLUX_METRICS");
    if (s != nullptr && *s != '\0' && std::string_view(s) != "0") {
      detail::g_enabled.store(true, std::memory_order_relaxed);
    }
    return true;
  }();
  (void)env_armed;
  return r;
}

thread_local ThreadSink* t_sink = nullptr;

ThreadSink* acquire_sink() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sinks.push_back(std::make_unique<ThreadSink>());
  return r.sinks.back().get();
}

double raw_counter_total_locked(const Registry& r, int slot) {
  double total = 0.0;
  for (const auto& sink : r.sinks) {
    total += sink->cells[slot].load(std::memory_order_relaxed);
  }
  return total;
}

int bucket_of(const std::vector<double>& bounds, double v) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  return static_cast<int>(it - bounds.begin());
}

}  // namespace

namespace detail {

int register_counter(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
    if (r.counter_names[i] == name) return static_cast<int>(i);
  }
  if (r.counter_names.size() >= kMaxCounterSlots) {
    std::fprintf(stderr, "conflux: metrics counter capacity exceeded at '%s'\n",
                 name);
    std::abort();
  }
  r.counter_names.emplace_back(name);
  r.counter_base.push_back(0.0);
  return static_cast<int>(r.counter_names.size()) - 1;
}

int register_gauge(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.gauges.size(); ++i) {
    if (r.gauges[i].name == name) return static_cast<int>(i);
  }
  r.gauges.emplace_back();
  r.gauges.back().name = name;
  return static_cast<int>(r.gauges.size()) - 1;
}

int register_histogram(const char* name, const double* bounds, int nbounds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.hists.size(); ++i) {
    if (r.hists[i].name == name) return static_cast<int>(i);
  }
  r.hists.emplace_back();
  HistMeta& h = r.hists.back();
  h.name = name;
  h.bounds.assign(bounds, bounds + nbounds);
  std::sort(h.bounds.begin(), h.bounds.end());
  const std::size_t nb = h.bounds.size() + 1;
  h.buckets = std::make_unique<std::atomic<long long>[]>(nb);
  for (std::size_t i = 0; i < nb; ++i) {
    h.buckets[i].store(0, std::memory_order_relaxed);
  }
  h.base_buckets.assign(nb, 0);
  return static_cast<int>(r.hists.size()) - 1;
}

void counter_add(int id, double delta) {
  if (t_sink == nullptr) t_sink = acquire_sink();
  // Owner-only read-modify-write: this thread is the cell's only writer,
  // so the non-atomic-looking load+store loses nothing; the atomic type
  // keeps concurrent snapshot reads un-torn.
  std::atomic<double>& cell = t_sink->cells[id];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void gauge_set(int id, double v) {
  Registry& r = registry();
  GaugeMeta& g = r.gauges[static_cast<std::size_t>(id)];
  g.value.store(v, std::memory_order_relaxed);
  atomic_max(g.max, v);
}

void histogram_record(int id, double v) {
  Registry& r = registry();
  HistMeta& h = r.hists[static_cast<std::size_t>(id)];
  h.buckets[bucket_of(h.bounds, v)].fetch_add(1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(h.sum, v);
}

}  // namespace detail

void set_enabled(bool on) {
  registry();  // make sure the env arming ran first (so it cannot re-arm later)
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot snap;
  snap.values.reserve(r.counter_names.size() + r.gauges.size() + r.hists.size());
  for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
    MetricValue m;
    m.name = r.counter_names[i];
    m.kind = Kind::Counter;
    m.value = raw_counter_total_locked(r, static_cast<int>(i)) - r.counter_base[i];
    if (m.value < 0.0) m.value = 0.0;
    snap.values.push_back(std::move(m));
  }
  for (const GaugeMeta& g : r.gauges) {
    MetricValue m;
    m.name = g.name;
    m.kind = Kind::Gauge;
    m.value = g.value.load(std::memory_order_relaxed);
    m.max = g.max.load(std::memory_order_relaxed);
    snap.values.push_back(std::move(m));
  }
  for (const HistMeta& h : r.hists) {
    MetricValue m;
    m.name = h.name;
    m.kind = Kind::Histogram;
    m.bounds = h.bounds;
    m.count = h.count.load(std::memory_order_relaxed) - h.base_count;
    m.sum = h.sum.load(std::memory_order_relaxed) - h.base_sum;
    m.buckets.resize(h.bounds.size() + 1);
    for (std::size_t b = 0; b < m.buckets.size(); ++b) {
      m.buckets[b] =
          h.buckets[b].load(std::memory_order_relaxed) - h.base_buckets[b];
      if (m.buckets[b] < 0) m.buckets[b] = 0;
    }
    if (m.count < 0) m.count = 0;
    snap.values.push_back(std::move(m));
  }
  std::sort(snap.values.begin(), snap.values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
    r.counter_base[i] = raw_counter_total_locked(r, static_cast<int>(i));
  }
  for (GaugeMeta& g : r.gauges) {
    // A new epoch's high-water mark starts from the current level.
    g.max.store(g.value.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  for (HistMeta& h : r.hists) {
    for (std::size_t b = 0; b < h.bounds.size() + 1; ++b) {
      h.base_buckets[b] = h.buckets[b].load(std::memory_order_relaxed);
    }
    h.base_count = h.count.load(std::memory_order_relaxed);
    h.base_sum = h.sum.load(std::memory_order_relaxed);
  }
}

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const MetricValue& m : values) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double Snapshot::value(std::string_view name) const {
  const MetricValue* m = find(name);
  return m != nullptr ? m->value : 0.0;
}

double Snapshot::sum_prefix(std::string_view prefix) const {
  double total = 0.0;
  for (const MetricValue& m : values) {
    if (m.name.size() >= prefix.size() &&
        std::string_view(m.name).substr(0, prefix.size()) == prefix) {
      total += m.value;
    }
  }
  return total;
}

void write_json(std::ostream& os, const Snapshot& snap) {
  json::Writer w(os);
  w.begin_object();
  for (const MetricValue& m : snap.values) {
    w.key(m.name);
    w.begin_object();
    switch (m.kind) {
      case Kind::Counter:
        w.field("kind", "counter");
        w.field("value", m.value);
        break;
      case Kind::Gauge:
        w.field("kind", "gauge");
        w.field("value", m.value);
        w.field("max", m.max);
        break;
      case Kind::Histogram:
        w.field("kind", "histogram");
        w.field("count", m.count);
        w.field("sum", m.sum);
        w.key("bounds");
        w.begin_array();
        for (double b : m.bounds) w.value(b);
        w.end_array();
        w.key("buckets");
        w.begin_array();
        for (long long b : m.buckets) w.value(b);
        w.end_array();
        break;
    }
    w.end_object();
  }
  w.end_object();
}

void write_json(std::ostream& os) { write_json(os, snapshot()); }

std::string debug_string() {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  bool first = true;
  for (const MetricValue& m : snap.values) {
    const bool nonzero =
        m.kind == Kind::Histogram ? m.count != 0 : m.value != 0.0;
    if (!nonzero) continue;
    if (!first) os << ' ';
    first = false;
    os << m.name << '=';
    if (m.kind == Kind::Histogram) {
      os << m.count << "x(mean "
         << (m.count > 0 ? m.sum / static_cast<double>(m.count) : 0.0) << ")";
    } else {
      os << m.value;
      if (m.kind == Kind::Gauge && m.max > m.value) os << "(max " << m.max << ')';
    }
  }
  return os.str();
}

}  // namespace conflux::metrics

// ---------------------------------------------------------------------------
// Phase-span capture (support/profile.hpp): spans and counter samples for
// the unified Chrome-trace export. Implemented here so the profile header
// stays declaration-only and span ends can sample registry state (the
// anonymous-namespace Registry above is reachable as conflux::metrics::
// members within this translation unit).
namespace conflux::prof {

namespace {

thread_local int t_span_thread = -1;

/// Counter-track samples appended at every span end: each gauge's current
/// value plus the raw total of the data-movement byte counters. Raw (not
/// baseline-adjusted) totals are fine — the trace viewer shows deltas.
void sample_counters_locked(metrics::Registry& r, double t) {
  for (const auto& g : r.gauges) {
    r.samples.push_back(
        {t, g.name, g.value.load(std::memory_order_relaxed)});
  }
  double dm_bytes = 0.0;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
      if (r.counter_names[i].rfind("dm.", 0) == 0) {
        dm_bytes += metrics::raw_counter_total_locked(r, static_cast<int>(i));
      }
    }
  }
  r.samples.push_back({t, "dm.bytes", dm_bytes});
}

}  // namespace

void start_capture() {
  metrics::Registry& r = metrics::registry();
  std::lock_guard<std::mutex> lock(r.span_mu);
  r.spans.clear();
  r.samples.clear();
  r.capture_t0 = std::chrono::steady_clock::now();
  r.capturing = true;
  detail::g_capturing.store(true, std::memory_order_relaxed);
}

Capture stop_capture() {
  metrics::Registry& r = metrics::registry();
  std::lock_guard<std::mutex> lock(r.span_mu);
  detail::g_capturing.store(false, std::memory_order_relaxed);
  r.capturing = false;
  Capture c;
  c.spans = std::move(r.spans);
  c.samples = std::move(r.samples);
  r.spans.clear();
  r.samples.clear();
  return c;
}

const std::string& trace_path() {
  static const std::string path = [] {
    const char* s = std::getenv("CONFLUX_TRACE");
    return std::string(s != nullptr ? s : "");
  }();
  return path;
}

namespace detail {

int span_begin(const char* name, long long step) {
  metrics::Registry& r = metrics::registry();
  std::lock_guard<std::mutex> lock(r.span_mu);
  if (!r.capturing) return -1;
  if (t_span_thread < 0) {
    t_span_thread = r.next_span_thread.fetch_add(1, std::memory_order_relaxed);
  }
  SpanRecord rec;
  rec.name = name;
  rec.step = step;
  rec.thread = t_span_thread;
  rec.t0 = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         r.capture_t0)
               .count();
  rec.t1 = rec.t0;
  r.spans.push_back(std::move(rec));
  return static_cast<int>(r.spans.size()) - 1;
}

void span_end(int index) {
  metrics::Registry& r = metrics::registry();
  std::lock_guard<std::mutex> lock(r.span_mu);
  // The capture may have been stopped (and the buffer reclaimed) between
  // this span's begin and end; the stale index must not touch it.
  if (!r.capturing || index < 0 ||
      static_cast<std::size_t>(index) >= r.spans.size()) {
    return;
  }
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - r.capture_t0)
                       .count();
  r.spans[static_cast<std::size_t>(index)].t1 = t;
  sample_counters_locked(r, t);
}

}  // namespace detail

}  // namespace conflux::prof
