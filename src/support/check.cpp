#include "support/check.hpp"

#include <sstream>

namespace conflux::detail {

[[noreturn]] void contract_fail(std::string_view kind, std::string_view msg,
                                const std::source_location& loc) {
  std::ostringstream os;
  os << kind << " violation at " << loc.file_name() << ":" << loc.line() << " ("
     << loc.function_name() << "): " << msg;
  throw contract_error(os.str());
}

}  // namespace conflux::detail
