// COnfCHOX — near-communication-optimal parallel Cholesky factorization
// (Section 7.5). Shares COnfLUX's 2.5D decomposition and step structure but
// needs no pivoting: the panel is the contiguous trailing block column, A00
// is factored with potrf, and the Schur update is symmetric (gemmt/syrk on
// the lower triangle), halving the computation at equal communication
// (Table 1).
#pragma once

#include "factor/common.hpp"
#include "grid/grid.hpp"
#include "tensor/matrix.hpp"
#include "xsim/machine.hpp"

namespace conflux::factor {

/// Factor the SPD matrix `a` (lower triangle referenced) in Real mode.
/// The schedule is identical in both precisions; only the local arithmetic
/// narrows.
CholResult confchox(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                    const FactorOptions& opt = {});
CholResultF confchox(xsim::Machine& m, const grid::Grid3D& g, ConstViewF a,
                     const FactorOptions& opt = {});

/// Non-throwing variants (DESIGN.md "Failure model and degradation
/// ladder"). Hard breakdowns — a non-positive-definite diagonal block,
/// non-finite input or accumulator values, a failed pool task, a wedged
/// pool — come back as a failed Result; a pivot below
/// FactorOptions::pivot_tolerance degrades softly (completed factors plus
/// classification). Contract violations map to kInvalidArgument.
Result<CholResult> try_confchox(xsim::Machine& m, const grid::Grid3D& g,
                                ConstViewD a, const FactorOptions& opt = {});
Result<CholResultF> try_confchox(xsim::Machine& m, const grid::Grid3D& g,
                                 ConstViewF a, const FactorOptions& opt = {});

/// Restart a factorization of `a` from its latest step checkpoint (DESIGN.md
/// "Recovery model"; see resume_conflux_lu for the contract). Throws
/// kCheckpointInvalid if no snapshot exists or validation fails; the try_
/// variants return it as a failed Result instead.
CholResult resume_confchox(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                           const FactorOptions& opt = {});
CholResultF resume_confchox(xsim::Machine& m, const grid::Grid3D& g,
                            ConstViewF a, const FactorOptions& opt = {});
Result<CholResult> try_resume_confchox(xsim::Machine& m, const grid::Grid3D& g,
                                       ConstViewD a,
                                       const FactorOptions& opt = {});
Result<CholResultF> try_resume_confchox(xsim::Machine& m, const grid::Grid3D& g,
                                        ConstViewF a,
                                        const FactorOptions& opt = {});

/// Trace-mode run for an n x n factorization.
CholResult confchox_trace(xsim::Machine& m, const grid::Grid3D& g, index_t n,
                          const FactorOptions& opt = {});

/// Solve A X = B for a multi-RHS panel given a confchox result: one pair of
/// blocked trsm panel solves over all columns at once. B overwritten with X.
template <typename T>
void confchox_solve(const CholResultT<T>& chol, MatrixView<T> b);

}  // namespace conflux::factor
