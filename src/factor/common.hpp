// Shared infrastructure for the COnfLUX / COnfCHOX schedules: options,
// per-step cost recording (Table 1), and the row bookkeeping used by the
// row-masking pivot strategy (Section 7.3).
#pragma once

#include <cstdint>
#include <vector>

#include "grid/grid.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "tensor/matrix.hpp"
#include "xsim/machine.hpp"

namespace conflux::factor {

struct FactorOptions {
  /// Panel/block width v (Section 7.2). 0 = auto: a small multiple of the
  /// replication depth, clamped to the matrix size.
  index_t block_size = 0;
  /// Record the per-iteration cost breakdown (used by bench/table1).
  bool record_step_costs = false;
  /// Pivot-position seed for Trace mode, where the matrix values do not
  /// exist: pivots are drawn uniformly among active rows, matching the
  /// paper's "pivots evenly distributed w.h.p." assumption.
  std::uint64_t trace_pivot_seed = 42;
  /// Real-mode lookahead pipelining (DESIGN.md "Pipelined execution"):
  /// 1 = run the urgent/lazy Schur split on the persistent task pool with
  /// cross-step overlap, 0 = step-synchronous execution, -1 = follow the
  /// CONFLUX_LOOKAHEAD environment variable (off when unset). Either way
  /// the task decomposition — and therefore every factor bit — is
  /// identical; only the execution schedule changes.
  int lookahead = -1;
  /// Near-singular pivot threshold, relative to the input's max magnitude:
  /// a pivot |u_kk| < pivot_tolerance * max|A| after tournament selection
  /// flags the result kNearSingularPivot (health only — the factorization
  /// completes). 0 disables the relative check; exact zeros are always
  /// classified.
  double pivot_tolerance = 0.0;
  /// Pivot-growth limit: max|U| / max|A| beyond this flags kGrowthOverflow.
  /// 0 = auto, 1 / (8 * eps_T) — growth that wipes out all but ~3 bits of
  /// the working precision; partial pivoting keeps real inputs far below it.
  double growth_limit = 0.0;
};

/// Resolve FactorOptions::lookahead against CONFLUX_LOOKAHEAD.
bool lookahead_enabled(const FactorOptions& opt);

/// Cost categories of one outer iteration, mapped to Table 1's rows.
struct StepCosts {
  double pivoting_words = 0.0;   ///< TournPivot butterfly (LU) / none (Chol)
  double pivoting_flops = 0.0;
  double a00_words = 0.0;        ///< A00 + pivot-index broadcast
  double a00_flops = 0.0;        ///< getrf/potrf of the v x v block
  double panels_words = 0.0;     ///< A10/A01 layer reduction + 1D scatter
  double panels_flops = 0.0;     ///< the two panel trsms
  double a11_words = 0.0;        ///< 2.5D distribution of the panels
  double a11_flops = 0.0;        ///< local Schur-complement gemm/gemmt
};

/// Fraction of an 8-byte word one scalar of type T occupies. The results'
/// workspace accounting is in fp64-equivalent (8-byte) words — the same
/// unit as Workspace::words() — so an fp32 run reports half the fp64
/// footprint; both factor cores must scale element counts through this one
/// helper to stay comparable.
template <typename T>
constexpr double words_per_scalar() {
  return static_cast<double>(sizeof(T)) / static_cast<double>(sizeof(double));
}

/// Numerical-health report of one Real-mode factorization (DESIGN.md
/// "Failure model and degradation ladder"). Soft breakdowns — the factors
/// exist and are bitwise identical to an unchecked run, but their quality
/// is suspect — are recorded here rather than thrown: kSingularPivot (an
/// exactly zero pivot survived to the final step; earlier zeros throw,
/// since the panel trsm would divide by zero), kNearSingularPivot (below
/// FactorOptions::pivot_tolerance), kGrowthOverflow. Hard breakdowns
/// (non-finite values, mid-run zero pivots) throw status_error instead.
/// Detection is read-only: a healthy run's factors are bit-for-bit those
/// of a run with detection compiled out.
struct FactorHealth {
  StatusCode code = StatusCode::kOk;  ///< first (most severe) soft breakdown
  long long first_breakdown_step = -1;
  long long singular_pivots = 0;       ///< exactly zero pivots
  long long near_singular_pivots = 0;  ///< below pivot_tolerance
  double growth_factor = 0.0;          ///< max|U| / max|A| (LU only)
  double min_pivot = 0.0;              ///< smallest |u_kk| (or l_kk^2)

  bool ok() const { return code == StatusCode::kOk; }
  Status to_status() const {
    if (ok()) return Status();
    return Status(code,
                  "factorization completed with degraded factors"
                  " (min pivot " + std::to_string(min_pivot) +
                      ", growth " + std::to_string(growth_factor) + ")",
                  first_breakdown_step);
  }
};

/// LU factorization result, parameterized on the factor scalar (the
/// schedule is precision-agnostic; Real mode exists for float and double).
/// In Trace mode only `perm` (trace pivots) and the step costs are populated.
template <typename T>
struct LuResultT {
  /// Row permutation: output row i of the factored matrix corresponds to
  /// input row perm[i] (A[perm, :] = L U).
  std::vector<index_t> perm;
  /// Real mode: the in-place factors of A[perm, :] (unit-lower L below the
  /// diagonal, U on and above).
  Matrix<T> factors;
  std::vector<StepCosts> step_costs;
  /// Real mode: peak resident size of the factorization's host-side data
  /// path (packed trailing workspace + factor store + scratch arena), in
  /// 8-byte words — fp32 runs report half the fp64 footprint. The per-layer
  /// dense scheme this replaced held (pz + 1) * npad^2 fp64 words.
  double workspace_words = 0.0;
  /// Real mode: soft-breakdown classification (empty/kOk in Trace mode).
  FactorHealth health;

  /// 8-byte words this handle keeps resident after the factorization
  /// returned (factor store + permutation) — what a factorization cache
  /// must budget per retained entry. Distinct from workspace_words, the
  /// transient peak DURING the run.
  double resident_words() const {
    return static_cast<double>(factors.size()) * words_per_scalar<T>() +
           static_cast<double>(perm.size()) *
               (static_cast<double>(sizeof(index_t)) / sizeof(double));
  }
};

using LuResult = LuResultT<double>;
using LuResultF = LuResultT<float>;

/// Cholesky result (no pivoting).
template <typename T>
struct CholResultT {
  /// Real mode: lower-triangular L with A = L L^T (upper triangle zero).
  Matrix<T> factors;
  std::vector<StepCosts> step_costs;
  /// Real mode: peak resident 8-byte words of the data path (see LuResultT).
  double workspace_words = 0.0;
  /// Real mode: soft-breakdown classification (see LuResultT).
  FactorHealth health;

  /// Resident 8-byte words of the retained handle (see LuResultT).
  double resident_words() const {
    return static_cast<double>(factors.size()) * words_per_scalar<T>();
  }
};

using CholResult = CholResultT<double>;
using CholResultF = CholResultT<float>;

/// Pick the block size: v = a * c for a small constant a (Section 7.2 uses
/// hardware-tuned multiples; we default to the largest of 2c and 64, rounded
/// to a multiple of c and clamped to n).
index_t default_block_size(index_t n, const grid::Grid3D& g);

/// Active-row bookkeeping for row masking. Rows are never moved; choosing a
/// row as a pivot eliminates it from the active set.
class RowTracker {
 public:
  RowTracker(index_t num_rows, index_t block, int px);

  index_t active_count() const { return static_cast<index_t>(active_.size()); }
  const std::vector<index_t>& active_rows() const { return active_; }
  bool is_active(index_t row) const { return !eliminated_[static_cast<std::size_t>(row)]; }

  /// Number of active rows whose tile row maps to grid column x.
  index_t count_for_x(int x) const { return counts_x_[static_cast<std::size_t>(x)]; }

  /// Active rows owned by grid x (ascending global order).
  std::vector<index_t> rows_for_x(int x) const;

  /// As rows_for_x, but filling a caller-owned buffer (clear + push_back):
  /// with a reserved buffer this is allocation-free, which is what lets the
  /// per-step tournament gathers run out of per-run scratch (DESIGN.md).
  void rows_for_x_into(int x, std::vector<index_t>& out) const;

  /// Eliminate the given rows (they become this step's pivots).
  void eliminate(const std::vector<index_t>& rows);

  /// Draw `count` distinct active rows uniformly (Trace-mode pivots).
  std::vector<index_t> sample_active(index_t count, Rng& rng) const;

  int x_of_row(index_t row) const {
    return static_cast<int>((row / block_) % static_cast<index_t>(px_));
  }

 private:
  index_t block_;
  int px_;
  std::vector<bool> eliminated_;
  std::vector<index_t> active_;  // sorted ascending
  std::vector<index_t> counts_x_;
};

/// Lazily-filled cache of grid communicator lines, keyed (a, b) over an
/// a_dim x b_dim index space. The schedules cycle through a bounded set of
/// z-lines / x-lines every step; caching them keeps the charge path free
/// of per-step allocations (the zero-steady-state-allocation guarantee
/// asserted in packed_factor_test). Lines are never empty, so an empty
/// entry means "not fetched yet".
class GridLineCache {
 public:
  GridLineCache() = default;
  GridLineCache(int a_dim, int b_dim)
      : b_dim_(b_dim),
        lines_(static_cast<std::size_t>(a_dim) * static_cast<std::size_t>(b_dim)) {}

  template <typename Fetch>
  const std::vector<int>& get(int a, int b, Fetch&& fetch) {
    auto& e = lines_[static_cast<std::size_t>(a) * static_cast<std::size_t>(b_dim_) +
                     static_cast<std::size_t>(b)];
    if (e.empty()) e = fetch(a, b);
    return e;
  }

 private:
  int b_dim_ = 1;
  std::vector<std::vector<int>> lines_;
};

/// Balanced 1D split of `total` items over `parts` chunks: chunk r covers
/// [offset(r), offset(r+1)).
index_t chunk_offset(index_t total, int parts, int r);
inline index_t chunk_size(index_t total, int parts, int r) {
  return chunk_offset(total, parts, r + 1) - chunk_offset(total, parts, r);
}

/// Snapshot-based recorder: measures machine-total word/flop deltas around
/// each phase and attributes them to a StepCosts field.
class StepCostRecorder {
 public:
  StepCostRecorder(xsim::Machine& m, bool enabled) : m_(m), enabled_(enabled) {}

  void begin_iteration() {
    if (enabled_) current_ = StepCosts{};
  }
  void end_iteration(std::vector<StepCosts>& out) {
    if (enabled_) out.push_back(current_);
  }

  /// Run `phase` and attribute its cost deltas to the given fields. All
  /// words are counted as received words (each transfer counted once).
  template <typename Phase>
  void measure(double StepCosts::* words_field, double StepCosts::* flops_field,
               Phase&& phase) {
    if (!enabled_) {
      phase();
      return;
    }
    const double w0 = m_.total_words_received();
    const double f0 = m_.total_flops();
    phase();
    current_.*words_field += m_.total_words_received() - w0;
    current_.*flops_field += m_.total_flops() - f0;
  }

 private:
  xsim::Machine& m_;
  bool enabled_;
  StepCosts current_;
};

}  // namespace conflux::factor
