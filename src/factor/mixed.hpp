// Mixed-precision solve drivers: factor in fp32 through the
// communication-optimal schedules, then recover fp64 accuracy with blocked
// multi-RHS iterative refinement (the classical Wilkinson/LAPACK *sgesv
// scheme).
//
// Why this pays: the COnfLUX/COnfCHOX schedules are precision-agnostic —
// the simulator's charges are word COUNTS and stay identical across
// precisions (conflux_lu.hpp), but every charged word is half the bytes on
// a real wire, and the fp32 microkernel roughly doubles local throughput
// (BENCH_blas.json) — while the
// O(n^2)-per-step refinement loop runs in fp64 and restores the fp64
// backward error in a handful of steps for reasonably conditioned systems
// (convergence requires roughly cond(A) * eps_fp32 < 1).
//
// All refinement arithmetic is panel-shaped: the fp32 correction solves and
// the fp64 residual updates each run over the whole multi-RHS block through
// one trsm / gemm call, never per column.
#pragma once

#include "factor/common.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"

namespace conflux::factor {

struct RefineOptions {
  /// Maximum refinement corrections after the initial fp32 solve.
  int max_steps = 10;
  /// Convergence threshold on the normwise backward error
  /// max_j ||b_j - A x_j||_inf / (||A||_inf ||x_j||_inf + ||b_j||_inf).
  /// 0 = auto: 2 * sqrt(n) * eps_fp64 — the dsgesv-style criterion, tight
  /// enough that a converged refinement matches a plain fp64 solve's
  /// backward error to a small factor (DESIGN.md "Precision policy").
  double tolerance = 0.0;
};

struct RefineReport {
  /// Refinement corrections applied after the initial fp32 solve.
  int steps = 0;
  /// Achieved normwise backward error (the convergence metric above).
  double backward_error = 0.0;
  /// True when backward_error <= the (auto or explicit) tolerance; false
  /// when the loop hit max_steps or stagnated first (ill conditioning).
  bool converged = false;
  /// Why the loop ended: kOk (converged), kRefineStagnated (corrections
  /// stopped shrinking the error, or max_steps ran out), kRefineDiverged
  /// (a correction made it worse), kNonFinite (the iterate or residual
  /// left the finite range — singular or overflowed fp32 factors).
  StatusCode code = StatusCode::kOk;
};

/// Normwise backward error of X against A X = B: the refinement convergence
/// metric, exposed so benches/tests judge direct solves by the same yardstick.
double solve_backward_error(ConstViewD a, ConstViewD x, ConstViewD b);

/// Refine an existing fp32 LU factorization of `a` to fp64 accuracy:
/// B (n x nrhs) is overwritten with X. Pure host-side — no Machine involved.
RefineReport refine_lu(const LuResultF& lu, ConstViewD a, ViewD b,
                       const RefineOptions& opt = {});

/// Same against an fp32 Cholesky factorization of the SPD `a`.
RefineReport refine_cholesky(const CholResultF& chol, ConstViewD a, ViewD b,
                             const RefineOptions& opt = {});

/// One-call driver: factor `a` in fp32 via conflux_lu on machine `m` (the
/// schedule's charges are recorded as usual), then solve A X = B with fp64
/// refinement. B is overwritten with X.
RefineReport conflux_lu_solve_mixed(xsim::Machine& m, const grid::Grid3D& g,
                                    ConstViewD a, ViewD b,
                                    const FactorOptions& fopt = {},
                                    const RefineOptions& ropt = {});

/// Cholesky counterpart via confchox.
RefineReport confchox_solve_mixed(xsim::Machine& m, const grid::Grid3D& g,
                                  ConstViewD a, ViewD b,
                                  const FactorOptions& fopt = {},
                                  const RefineOptions& ropt = {});

// ---------------------------------------------------------------------------
// Degradation ladder (DESIGN.md "Failure model and degradation ladder").
//
// The happy path is fp32 factorization + fp64 iterative refinement. When
// that leg cannot deliver — the fp32 conversion overflowed, the fp32
// factorization broke down, or refinement stagnated/diverged because
// cond(A) * eps_fp32 is too large — the ladder automatically re-factors in
// fp64 and solves directly, trading the fp32 bandwidth win for an answer.
// Every rung is classified: the report says which leg produced the
// solution, why the ladder stepped down, and what backward error the caller
// actually got. Nothing falls through silently.
// ---------------------------------------------------------------------------

struct MixedSolveOptions {
  FactorOptions factor;
  RefineOptions refine;
  /// Re-factor in fp64 and solve directly when the fp32 + refinement leg
  /// fails to converge. Off = report the fp32 leg's outcome as final (the
  /// legacy conflux_lu_solve_mixed behavior).
  bool allow_fp64_fallback = true;
};

struct MixedSolveReport {
  /// The fp32 + refinement leg (steps = 0 and backward_error = inf when the
  /// fp32 factorization itself failed and the loop never ran).
  RefineReport refine;
  /// Final outcome of the whole ladder: kOk when either leg delivered a
  /// solution within tolerance (refinement) or with finite backward error
  /// (fp64 direct); otherwise the failure classification of the last leg.
  StatusCode code = StatusCode::kOk;
  /// True when the fp64 re-factorization leg ran.
  bool fp64_fallback = false;
  /// Why the ladder left the fp32 leg (kOk when it never had to).
  StatusCode fallback_reason = StatusCode::kOk;
  /// Backward error of the solution actually left in B.
  double backward_error = 0.0;

  bool ok() const { return code == StatusCode::kOk; }
};

/// Ladder drivers: solve A X = B at fp64 accuracy, preferring the fp32 +
/// refinement leg. B is overwritten with the best solution; when no leg
/// produced a finite iterate, B is left untouched.
MixedSolveReport conflux_lu_solve_mixed_ex(xsim::Machine& m, const grid::Grid3D& g,
                                           ConstViewD a, ViewD b,
                                           const MixedSolveOptions& opt = {});
MixedSolveReport confchox_solve_mixed_ex(xsim::Machine& m, const grid::Grid3D& g,
                                         ConstViewD a, ViewD b,
                                         const MixedSolveOptions& opt = {});

/// Process-wide ladder counters (bench/factor_schedule surfaces these in
/// BENCH_factor.json; the healthy-input gate asserts fp64_fallbacks == 0).
struct MixedCounters {
  long long solves = 0;          ///< _ex ladder invocations
  long long fp64_fallbacks = 0;  ///< times the fp64 leg ran
  long long ir_steps = 0;        ///< total refinement corrections applied
};
MixedCounters mixed_counters();
void reset_mixed_counters();

}  // namespace conflux::factor
