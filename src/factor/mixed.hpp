// Mixed-precision solve drivers: factor in fp32 through the
// communication-optimal schedules, then recover fp64 accuracy with blocked
// multi-RHS iterative refinement (the classical Wilkinson/LAPACK *sgesv
// scheme).
//
// Why this pays: the COnfLUX/COnfCHOX schedules are precision-agnostic —
// the simulator's charges are word COUNTS and stay identical across
// precisions (conflux_lu.hpp), but every charged word is half the bytes on
// a real wire, and the fp32 microkernel roughly doubles local throughput
// (BENCH_blas.json) — while the
// O(n^2)-per-step refinement loop runs in fp64 and restores the fp64
// backward error in a handful of steps for reasonably conditioned systems
// (convergence requires roughly cond(A) * eps_fp32 < 1).
//
// All refinement arithmetic is panel-shaped: the fp32 correction solves and
// the fp64 residual updates each run over the whole multi-RHS block through
// one trsm / gemm call, never per column.
#pragma once

#include "factor/common.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"

namespace conflux::factor {

struct RefineOptions {
  /// Maximum refinement corrections after the initial fp32 solve.
  int max_steps = 10;
  /// Convergence threshold on the normwise backward error
  /// max_j ||b_j - A x_j||_inf / (||A||_inf ||x_j||_inf + ||b_j||_inf).
  /// 0 = auto: 2 * sqrt(n) * eps_fp64 — the dsgesv-style criterion, tight
  /// enough that a converged refinement matches a plain fp64 solve's
  /// backward error to a small factor (DESIGN.md "Precision policy").
  double tolerance = 0.0;
};

struct RefineReport {
  /// Refinement corrections applied after the initial fp32 solve.
  int steps = 0;
  /// Achieved normwise backward error (the convergence metric above).
  double backward_error = 0.0;
  /// True when backward_error <= the (auto or explicit) tolerance; false
  /// when the loop hit max_steps or stagnated first (ill conditioning).
  bool converged = false;
};

/// Normwise backward error of X against A X = B: the refinement convergence
/// metric, exposed so benches/tests judge direct solves by the same yardstick.
double solve_backward_error(ConstViewD a, ConstViewD x, ConstViewD b);

/// Refine an existing fp32 LU factorization of `a` to fp64 accuracy:
/// B (n x nrhs) is overwritten with X. Pure host-side — no Machine involved.
RefineReport refine_lu(const LuResultF& lu, ConstViewD a, ViewD b,
                       const RefineOptions& opt = {});

/// Same against an fp32 Cholesky factorization of the SPD `a`.
RefineReport refine_cholesky(const CholResultF& chol, ConstViewD a, ViewD b,
                             const RefineOptions& opt = {});

/// One-call driver: factor `a` in fp32 via conflux_lu on machine `m` (the
/// schedule's charges are recorded as usual), then solve A X = B with fp64
/// refinement. B is overwritten with X.
RefineReport conflux_lu_solve_mixed(xsim::Machine& m, const grid::Grid3D& g,
                                    ConstViewD a, ViewD b,
                                    const FactorOptions& fopt = {},
                                    const RefineOptions& ropt = {});

/// Cholesky counterpart via confchox.
RefineReport confchox_solve_mixed(xsim::Machine& m, const grid::Grid3D& g,
                                  ConstViewD a, ViewD b,
                                  const FactorOptions& fopt = {},
                                  const RefineOptions& ropt = {});

}  // namespace conflux::factor
