// COnfLUX — near-communication-optimal parallel LU factorization
// (Algorithm 1 of the paper).
//
// The schedule follows the paper's eleven steps per outer iteration t:
//   1. reduce the next block column across the c = Pz layers
//   2. tournament pivoting over a butterfly among the Px column owners
//   3. broadcast the factored A00 and the v pivot-row indices to all ranks
//   4. scatter A10 into a 1D block-row distribution
//   5. reduce the v pivot rows across the layers
//   6. scatter A01 into a 1D block-column distribution
//   7. local trsm on A10 (no communication)
//   8. distribute A10 k-slices to the 2.5D tile owners
//   9. local trsm on A01
//  10. distribute A01 k-slices to the 2.5D tile owners
//  11. local Schur-complement update of each layer's A11 partial sums
//
// Pivoted rows are masked, never swapped (Section 7.3): each rank tracks the
// surviving rows, and communication payloads are compacted to active rows so
// the volumes match the Section 7.4 cost analysis.
//
// Execution modes (DESIGN.md): in Real mode the same schedule additionally
// computes the factorization on the layers' partial-sum buffers; in Trace
// mode only the (identical) cost charges are made, with pivot positions
// drawn uniformly at random, so paper-scale volumes are measurable.
#pragma once

#include "factor/common.hpp"
#include "grid/grid.hpp"
#include "tensor/matrix.hpp"
#include "xsim/machine.hpp"

namespace conflux::factor {

/// Factor the n x n matrix `a` on machine `m` over grid `g` (Real mode).
/// The matrix is padded internally when the block size does not divide n.
/// The schedule (and therefore every charge the simulator records) is
/// identical in both precisions; only the local arithmetic narrows.
LuResult conflux_lu(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                    const FactorOptions& opt = {});
LuResultF conflux_lu(xsim::Machine& m, const grid::Grid3D& g, ConstViewF a,
                     const FactorOptions& opt = {});

/// Non-throwing variants (DESIGN.md "Failure model and degradation
/// ladder"). Hard breakdowns — non-finite input or panel values, an exactly
/// singular pivot before the final tile (the panel solves would divide by
/// zero), a failed pool task, a wedged pool — come back as a failed Result.
/// Soft breakdowns — a zero pivot at the final tile, a pivot below
/// FactorOptions::pivot_tolerance, growth past the limit — come back as a
/// DEGRADED Result carrying both the completed factors (bitwise identical
/// to an unchecked run) and their classification. Contract violations map
/// to kInvalidArgument.
Result<LuResult> try_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                                ConstViewD a, const FactorOptions& opt = {});
Result<LuResultF> try_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                                 ConstViewF a, const FactorOptions& opt = {});

/// Restart a factorization of `a` from its latest step checkpoint (DESIGN.md
/// "Recovery model"). The snapshot registry is keyed on (kind, scalar, n, v,
/// grid), so `a`, `g`, and `opt` must match the interrupted run; the
/// completed factorization is bitwise identical to an uninterrupted one.
/// Throws kCheckpointInvalid if no snapshot exists or the stored one fails
/// validation (the try_ variants return it as a failed Result instead).
/// Checkpoints are written when CONFLUX_CKPT_EVERY (or
/// recover::configure) enables them.
LuResult resume_conflux_lu(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                           const FactorOptions& opt = {});
LuResultF resume_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                            ConstViewF a, const FactorOptions& opt = {});
Result<LuResult> try_resume_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                                       ConstViewD a,
                                       const FactorOptions& opt = {});
Result<LuResultF> try_resume_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                                        ConstViewF a,
                                        const FactorOptions& opt = {});

/// Trace-mode run: charges the full communication/computation schedule for
/// an n x n factorization without any matrix data.
LuResult conflux_lu_trace(xsim::Machine& m, const grid::Grid3D& g, index_t n,
                          const FactorOptions& opt = {});

/// Solve A X = B for a multi-RHS panel using a conflux_lu result: apply the
/// row permutation, then one pair of blocked trsm panel solves over all
/// columns of B at once. B is overwritten with X.
template <typename T>
void conflux_lu_solve(const LuResultT<T>& lu, MatrixView<T> b);

}  // namespace conflux::factor
