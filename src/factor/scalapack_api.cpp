#include "factor/scalapack_api.hpp"

#include "support/check.hpp"

namespace conflux::factor {

layout::BlockCyclicLayout conflux_internal_layout(const grid::Grid3D& g, index_t n,
                                                  index_t v) {
  layout::BlockCyclicLayout l;
  l.rows = n;
  l.cols = n;
  l.mb = v;
  l.nb = v;
  l.pr = g.px();
  l.pc = g.py();
  l.rank_base = 0;  // layer 0 hosts the initial (non-replicated) input
  l.validate();
  return l;
}

PdgetrfResult pdgetrf(xsim::Machine& m, const grid::Grid3D& g,
                      const layout::DistMatrix& a, const FactorOptions& opt) {
  const index_t n = a.layout().rows;
  expects(a.layout().cols == n, "matrix must be square");
  FactorOptions options = opt;
  if (options.block_size == 0) options.block_size = default_block_size(n, g);
  const auto internal = conflux_internal_layout(g, n, options.block_size);

  PdgetrfResult result;
  result.redistribution_words += layout::redistribute_cost(m, a.layout(), internal);
  if (m.real()) {
    const MatrixD global = a.to_global();
    result.lu = conflux_lu(m, g, global.view(), options);
    result.redistribution_words += layout::redistribute_cost(m, internal, a.layout());
    // Hand the factors back in the caller's layout (of the permuted matrix).
    result.factors = layout::DistMatrix::from_global(result.lu.factors.view(),
                                                     a.layout());
  } else {
    result.lu = conflux_lu_trace(m, g, n, options);
    result.redistribution_words += layout::redistribute_cost(m, internal, a.layout());
  }
  return result;
}

PdpotrfResult pdpotrf(xsim::Machine& m, const grid::Grid3D& g,
                      const layout::DistMatrix& a, const FactorOptions& opt) {
  const index_t n = a.layout().rows;
  expects(a.layout().cols == n, "matrix must be square");
  FactorOptions options = opt;
  if (options.block_size == 0) options.block_size = default_block_size(n, g);
  const auto internal = conflux_internal_layout(g, n, options.block_size);

  PdpotrfResult result;
  result.redistribution_words += layout::redistribute_cost(m, a.layout(), internal);
  if (m.real()) {
    const MatrixD global = a.to_global();
    result.chol = confchox(m, g, global.view(), options);
    result.redistribution_words += layout::redistribute_cost(m, internal, a.layout());
    result.factors = layout::DistMatrix::from_global(result.chol.factors.view(),
                                                     a.layout());
  } else {
    result.chol = confchox_trace(m, g, n, options);
    result.redistribution_words += layout::redistribute_cost(m, internal, a.layout());
  }
  return result;
}

}  // namespace conflux::factor
