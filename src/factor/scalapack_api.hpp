// ScaLAPACK-compatible entry points (Section 8, "Data distribution").
//
// COnfLUX/COnfCHOX accept matrices in any block-cyclic layout: the wrapper
// transforms the input into the algorithm's internal 2.5D tile layout with
// the COSTA-substitute redistribution (charging its true cost, which is
// O(N^2/P) per rank and does not affect the leading-order term — Lemma 10's
// opening remark), runs the factorization, and transforms back.
#pragma once

#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "layout/layout.hpp"

namespace conflux::factor {

struct PdgetrfResult {
  LuResult lu;
  /// The factors redistributed back into the caller's layout (Real mode).
  layout::DistMatrix factors;
  double redistribution_words = 0.0;  ///< total words moved by the transforms
};

/// LU-factor a block-cyclically distributed matrix (pdgetrf analogue).
PdgetrfResult pdgetrf(xsim::Machine& m, const grid::Grid3D& g,
                      const layout::DistMatrix& a, const FactorOptions& opt = {});

struct PdpotrfResult {
  CholResult chol;
  layout::DistMatrix factors;
  double redistribution_words = 0.0;
};

/// Cholesky-factor a distributed SPD matrix (pdpotrf analogue).
PdpotrfResult pdpotrf(xsim::Machine& m, const grid::Grid3D& g,
                      const layout::DistMatrix& a, const FactorOptions& opt = {});

/// The internal layout the wrappers transform into: v x v tiles dealt
/// block-cyclically over the grid's x-y plane (layer 0).
layout::BlockCyclicLayout conflux_internal_layout(const grid::Grid3D& g, index_t n,
                                                  index_t v);

}  // namespace conflux::factor
