#include "factor/conflux_lu.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "blas/lapack.hpp"
#include "sched/rank_parallel.hpp"
#include "support/check.hpp"
#include "tensor/workspace.hpp"
#include "xsim/comm.hpp"

namespace conflux::factor {

namespace {

using xblas::Diag;
using xblas::Side;
using xblas::Trans;
using xblas::UpLo;

bool is_pow2(int n) { return std::has_single_bit(static_cast<unsigned>(n)); }

/// Candidate set carried through the tournament: row indices plus their
/// original (reduced) panel values, both in the current ranking order.
template <typename T>
struct Candidates {
  std::vector<index_t> rows;
  Matrix<T> values;  // rows.size() x v
};

/// Buffers reused across every butterfly round of every step: the stacked
/// 2v x v candidate block and its getrf scratch (allocated once per
/// factorization, not once per merge).
template <typename T>
struct MergeScratch {
  std::vector<index_t> rows;
  Matrix<T> stacked;
  Matrix<T> ranked;  // getrf scratch (the ranking destroys its copy)
  std::vector<index_t> ipiv;
};

/// Rank candidate rows of `values` by partial-pivoting LU and keep the
/// top `keep`: the standard CALU local selection.
template <typename T>
Candidates<T> select_candidates(const std::vector<index_t>& rows,
                                const Matrix<T>& values, index_t keep) {
  const auto nrows = static_cast<index_t>(rows.size());
  const index_t v = values.cols();
  Candidates<T> out;
  if (nrows == 0) return out;
  Matrix<T> work = values;
  std::vector<index_t> ipiv;
  xblas::getrf<T>(work.view(), ipiv);  // singular panels keep natural order
  const auto order = xblas::ipiv_to_permutation(ipiv, nrows);
  const index_t take = std::min(keep, nrows);
  out.rows.reserve(static_cast<std::size_t>(take));
  out.values = Matrix<T>(take, v);
  for (index_t i = 0; i < take; ++i) {
    const auto src = order[static_cast<std::size_t>(i)];
    out.rows.push_back(rows[static_cast<std::size_t>(src)]);
    for (index_t j = 0; j < v; ++j) out.values(i, j) = values(src, j);
  }
  return out;
}

/// One tournament round: stack `b` under `a`, re-rank, keep the top `keep`
/// rows in `a`. The merge adoptee is updated in place (no copy-then-move)
/// and the stacked buffer lives in `s` across rounds.
template <typename T>
void merge_candidates(Candidates<T>& a, const Candidates<T>& b, index_t keep,
                      MergeScratch<T>& s) {
  const auto na = static_cast<index_t>(a.rows.size());
  const auto nb = static_cast<index_t>(b.rows.size());
  if (na == 0) {
    a = b;
    return;
  }
  if (nb == 0) return;
  const index_t v = a.values.cols();
  if (s.stacked.rows() < na + nb || s.stacked.cols() != v) {
    s.stacked = Matrix<T>(na + nb, v);
    s.ranked = Matrix<T>(na + nb, v);
  }
  s.rows.assign(a.rows.begin(), a.rows.end());
  s.rows.insert(s.rows.end(), b.rows.begin(), b.rows.end());
  copy<T>(a.values.view(), s.stacked.block(0, 0, na, v));
  copy<T>(b.values.view(), s.stacked.block(na, 0, nb, v));
  // Re-rank a copy of the stacked block (getrf destroys it); both buffers
  // persist across rounds and steps.
  MatrixView<T> ranked = s.ranked.block(0, 0, na + nb, v);
  copy<T>(s.stacked.block(0, 0, na + nb, v), ranked);
  xblas::getrf<T>(ranked, s.ipiv);
  const auto order = xblas::ipiv_to_permutation(s.ipiv, na + nb);
  const index_t take = std::min(keep, na + nb);
  a.rows.resize(static_cast<std::size_t>(take));
  if (a.values.rows() != take) a.values = Matrix<T>(take, v);
  for (index_t i = 0; i < take; ++i) {
    const auto src = order[static_cast<std::size_t>(i)];
    a.rows[static_cast<std::size_t>(i)] = s.rows[static_cast<std::size_t>(src)];
    for (index_t j = 0; j < v; ++j) a.values(i, j) = s.stacked(src, j);
  }
}

/// Workspace slot ids (tensor/workspace.hpp arena, one buffer each).
enum WsSlot : std::size_t { kPivotRows = 0 };

/// The whole mutable state of one factorization run, templated on the
/// factor scalar (the Trace entry point instantiates the double core with
/// no data; Real mode exists for float and double).
///
/// Real-mode data path (DESIGN.md "Packed trailing workspace"): instead of
/// pz + 1 full npad x npad matrices, the run keeps
///   - `trail`, ONE row-compacted trailing accumulator: packed row i holds
///     global row rowmap[i], live columns are [t*v, npad) at step t. The
///     layered partial sums of the simulated machine are realized inside
///     gemm's fixed k-order: one beta=1 update with k = v accumulates the
///     pz k-slices in ascending z exactly as an ordered layer reduction
///     would, so the per-layer buffers never need to exist.
///   - `lstore`, the final factors keyed by global row (Section 7.3's row
///     masking writes results in place, never moving rows).
/// Eliminated rows retire once per step by swapping the tail row into their
/// slot (O(v * trailing) per step), so every Schur update, reduction read,
/// and panel solve runs on a contiguous packed block.
template <typename T>
struct LuRun {
  xsim::Machine& m;
  const grid::Grid3D& g;
  index_t n = 0;     // original size
  index_t npad = 0;  // padded size (multiple of v)
  index_t v = 0;
  index_t num_tiles = 0;  // npad / v
  bool real = false;

  RowTracker tracker;
  Rng trace_rng;
  std::vector<int> all_ranks;

  // Real-mode packed trailing workspace + factor store.
  Matrix<T> trail;
  Matrix<T> lstore;
  std::vector<index_t> rowmap;  // packed index -> global row
  std::vector<index_t> rowpos;  // global row -> packed index (-1 = retired)
  index_t nact = 0;             // live packed rows
  Workspace ws;
  MergeScratch<T> merge_scratch;

  LuRun(xsim::Machine& machine, const grid::Grid3D& grid, index_t size, index_t block)
      : m(machine),
        g(grid),
        n(size),
        v(block),
        tracker(0, 1, 1),
        trace_rng(0) {
    npad = (n + v - 1) / v * v;
    num_tiles = npad / v;
    real = m.real();
    tracker = RowTracker(npad, v, g.px());
    all_ranks = g.all();
  }

  /// Retire this step's pivot rows from the packed workspace: move the tail
  /// row into each winner's slot (trailing columns [col0, npad) only — the
  /// retired columns to the left are dead). Winners' own trailing values
  /// must have been gathered (pivotrows) before this runs.
  void retire_rows(const std::vector<index_t>& winners, index_t col0) {
    for (index_t w : winners) {
      const index_t i = rowpos[static_cast<std::size_t>(w)];
      const index_t last = --nact;
      if (i != last) {
        const index_t moved = rowmap[static_cast<std::size_t>(last)];
        const T* src = &trail(last, col0);
        std::copy(src, src + (npad - col0), &trail(i, col0));
        rowmap[static_cast<std::size_t>(i)] = moved;
        rowpos[static_cast<std::size_t>(moved)] = i;
      }
      rowpos[static_cast<std::size_t>(w)] = -1;
      rowmap[static_cast<std::size_t>(last)] = -1;
    }
  }
};

// Approximate peer counts for the latency term of aggregated charges
// (documented in DESIGN.md; only alpha-cost, not volume, depends on these).
long long approx_msgs(index_t items, int peers) {
  return std::min<long long>(static_cast<long long>(std::max<index_t>(items, 0)),
                             static_cast<long long>(peers));
}

// ---------------------------------------------------------------------------
// Step 1: reduce the current block column across the Pz layers onto layer
// l_t. Per x-group the payload is that group's active rows times v.
// ---------------------------------------------------------------------------
template <typename T>
void reduce_block_column(LuRun<T>& run, index_t t) {
  run.m.annotate("reduce-column");
  const int py = run.g.py();
  const int pz = run.g.pz();
  const int y_t = static_cast<int>(t) % py;
  const int l_t = static_cast<int>(t) % pz;
  if (pz > 1) {
    for (int x = 0; x < run.g.px(); ++x) {
      const index_t rows_x = run.tracker.count_for_x(x);
      if (rows_x == 0) continue;
      const auto group = run.g.z_line(x, y_t);
      xsim::comm::reduce(run.m, group, static_cast<std::size_t>(l_t),
                         static_cast<double>(rows_x * run.v));
    }
  }
  // Real mode: nothing to execute — the packed workspace already holds the
  // reduced sums (the layer reduction is fused into the Schur update's
  // k-order), so the block column is simply trail columns [t*v, t*v + v).
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Step 2: tournament pivoting (butterfly over the Px column owners). Returns
// the winners in pivot order and, in Real mode, the factored A00.
// ---------------------------------------------------------------------------
template <typename T>
struct PivotResult {
  std::vector<index_t> winners;
  Matrix<T> a00;  // v x v in-place LU of the winner rows (Real mode)
};

template <typename T>
PivotResult<T> tournament_pivot(LuRun<T>& run, index_t t) {
  run.m.annotate("tournament-pivot");
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const int y_t = static_cast<int>(t) % py;
  const int l_t = static_cast<int>(t) % pz;
  const auto group = run.g.x_line(y_t, l_t);

  // Communication: log2(Px) butterfly rounds of the v x v candidate block
  // plus the v row indices; non-powers of two finish with a broadcast of the
  // root's winners (rank 0 always accumulates full information).
  const double payload = static_cast<double>(run.v * (run.v + 1));
  xsim::comm::butterfly(run.m, group, payload);
  if (!is_pow2(px) && px > 1) {
    xsim::comm::broadcast(run.m, group, 0, payload);
  }
  // Computation: the initial local ranking plus one 2v x v re-ranking per
  // butterfly round on every participant.
  const double rounds = px > 1 ? std::ceil(std::log2(static_cast<double>(px))) : 0.0;
  for (int x = 0; x < px; ++x) {
    const auto rows_x = static_cast<double>(run.tracker.count_for_x(x));
    const auto vv = static_cast<double>(run.v);
    run.m.charge_flops(group[static_cast<std::size_t>(x)],
                       rows_x * vv * vv + rounds * 2.0 * vv * vv * vv / 3.0);
  }

  PivotResult<T> result;
  if (!run.real) {
    result.winners = run.tracker.sample_active(run.v, run.trace_rng);
    run.m.step_barrier();
    return result;
  }

  // Local candidate selection per x-group: one simulated column owner per
  // task, each ranking its own rows (disjoint outputs). Panel values are
  // read straight out of the packed workspace.
  std::vector<Candidates<T>> cand(static_cast<std::size_t>(px));
  sched::parallel_ranks(px, [&](index_t x) {
    const auto rows = run.tracker.rows_for_x(static_cast<int>(x));
    if (rows.empty()) return;
    Matrix<T> values(static_cast<index_t>(rows.size()), run.v);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const index_t pi = run.rowpos[static_cast<std::size_t>(rows[i])];
      for (index_t j = 0; j < run.v; ++j) {
        values(static_cast<index_t>(i), j) = run.trail(pi, t * run.v + j);
      }
    }
    cand[static_cast<std::size_t>(x)] = select_candidates<T>(rows, values, run.v);
  });
  // Merge rounds along the accumulation tree of rank 0. The full butterfly
  // computes px/2 merges per round on every rank, but only the binomial
  // tree rooted at rank 0 ever reaches the final candidate set, and each
  // kept merge consumes exactly the sub-merges the butterfly would have fed
  // it — so the winners are identical and the dead merges are skipped.
  for (int mask = 1; mask < px; mask <<= 1) {
    for (int x = 0; x + mask < px; x += 2 * mask) {
      merge_candidates<T>(cand[static_cast<std::size_t>(x)],
                          cand[static_cast<std::size_t>(x + mask)], run.v,
                          run.merge_scratch);
    }
  }
  Candidates<T>& final_set = cand[0];
  check(static_cast<index_t>(final_set.rows.size()) == run.v,
        "tournament must produce exactly v pivots");
  // Final ranking doubles as the A00 factorization (Table 1: A00's getrf is
  // free, it happens during TournPivot).
  Matrix<T> a00 = final_set.values;
  std::vector<index_t> ipiv;
  xblas::getrf<T>(a00.view(), ipiv);
  const auto order = xblas::ipiv_to_permutation(ipiv, run.v);
  result.winners.reserve(static_cast<std::size_t>(run.v));
  for (index_t i = 0; i < run.v; ++i) {
    result.winners.push_back(final_set.rows[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])]);
  }
  result.a00 = std::move(a00);
  run.m.step_barrier();
  return result;
}

// ---------------------------------------------------------------------------
// Step 3: broadcast A00 (v^2 words) and the pivot indices (v words) to all.
// ---------------------------------------------------------------------------
template <typename T>
void broadcast_a00(LuRun<T>& run, index_t t) {
  run.m.annotate("bcast-a00");
  const int y_t = static_cast<int>(t) % run.g.py();
  const int l_t = static_cast<int>(t) % run.g.pz();
  const int root = run.g.rank_of(0, y_t, l_t);
  xsim::comm::broadcast(run.m, run.all_ranks, static_cast<std::size_t>(root),
                        static_cast<double>(run.v * run.v + run.v));
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Steps 4 and 6: scatter the reduced panels into 1D distributions across all
// P ranks. Senders are the layer-l_t owners; aggregate charges keep this
// O(P) per step.
// ---------------------------------------------------------------------------
template <typename T>
void scatter_panel_1d(LuRun<T>& run, index_t t, bool row_panel, index_t items,
                      const std::vector<index_t>& pivots_per_x) {
  run.m.annotate(row_panel ? "scatter-a10" : "scatter-a01");
  const int p = run.m.ranks();
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const int y_t = static_cast<int>(t) % py;
  const int l_t = static_cast<int>(t) % pz;
  if (row_panel) {
    // A10: items = active non-pivot rows, each of width v, leaving the
    // column-owner ranks (x, y_t, l_t).
    for (int x = 0; x < px; ++x) {
      const index_t rows_x = run.tracker.count_for_x(x);
      if (rows_x == 0) continue;
      run.m.charge_send(run.g.rank_of(x, y_t, l_t),
                        static_cast<double>(rows_x * run.v), approx_msgs(rows_x, p / px));
    }
  } else {
    // A01: items = trailing columns of the v pivot rows, leaving the tile
    // owners (x_piv, y, l_t): each pivot row's trailing segment lives on the
    // rank whose x matches the pivot row's tile residue.
    for (int x = 0; x < px; ++x) {
      const index_t npiv_x = pivots_per_x[static_cast<std::size_t>(x)];
      if (npiv_x == 0) continue;
      for (int y = 0; y < py; ++y) {
        const index_t cols_y =
            grid::cyclic_local_count(t + 1, run.num_tiles, y, py) * run.v;
        if (cols_y == 0) continue;
        run.m.charge_send(run.g.rank_of(x, y, l_t),
                          static_cast<double>(cols_y * npiv_x),
                          approx_msgs(cols_y, p / py));
      }
    }
  }
  for (int r = 0; r < p; ++r) {
    const index_t mine = chunk_size(items, p, r);
    if (mine == 0) continue;
    run.m.charge_recv(r, static_cast<double>(mine * run.v),
                      approx_msgs(mine, row_panel ? px : py));
  }
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Step 5: reduce the v pivot rows' trailing columns across the layers. In
// Real mode this gathers the winners' packed rows into the step-reusable
// pivot-row workspace (the last read of those rows before they retire).
// ---------------------------------------------------------------------------
template <typename T>
void reduce_pivot_rows(LuRun<T>& run, index_t t, const std::vector<index_t>& winners,
                       MatrixView<T>* pivotrows) {
  run.m.annotate("reduce-pivot-rows");
  const int py = run.g.py();
  const int pz = run.g.pz();
  const int l_t = static_cast<int>(t) % pz;
  const index_t ncols = (run.num_tiles - t - 1) * run.v;
  if (pz > 1 && ncols > 0) {
    // Pivot rows grouped by their tile-row owner x.
    std::vector<index_t> piv_per_x(static_cast<std::size_t>(run.g.px()), 0);
    for (index_t w : winners) {
      ++piv_per_x[static_cast<std::size_t>(run.tracker.x_of_row(w))];
    }
    for (int x = 0; x < run.g.px(); ++x) {
      const index_t nrows = piv_per_x[static_cast<std::size_t>(x)];
      if (nrows == 0) continue;
      for (int y = 0; y < py; ++y) {
        const index_t cols_y =
            grid::cyclic_local_count(t + 1, run.num_tiles, y, py) * run.v;
        if (cols_y == 0) continue;
        xsim::comm::reduce(run.m, run.g.z_line(x, y), static_cast<std::size_t>(l_t),
                           static_cast<double>(nrows * cols_y));
      }
    }
  }
  if (run.real && ncols > 0) {
    *pivotrows = run.ws.template mat<T>(kPivotRows, run.v, ncols);
    sched::parallel_ranks(run.v, [&](index_t l) {
      const index_t pi =
          run.rowpos[static_cast<std::size_t>(winners[static_cast<std::size_t>(l)])];
      const T* src = &run.trail(pi, (t + 1) * run.v);
      std::copy(src, src + ncols, pivotrows->row(l));
    });
  }
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Steps 8 and 10: distribute the factored panels' k-slices to the 2.5D tile
// owners (aggregate charges; the dominant communication of the algorithm).
// ---------------------------------------------------------------------------
template <typename T>
void distribute_panels_2p5d(LuRun<T>& run, index_t t, index_t a10_rows) {
  run.m.annotate("distribute-2.5d");
  const int p = run.m.ranks();
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const index_t slice = run.v / pz;
  const index_t ncols = (run.num_tiles - t - 1) * run.v;

  // A10 (step 8): every row travels to the py*pz owners of its tile row,
  // each taking a v/pz slice.
  for (int r = 0; r < p; ++r) {
    const index_t mine = chunk_size(a10_rows, p, r);
    if (mine == 0) continue;
    run.m.charge_send(r, static_cast<double>(mine * run.v * py),
                      static_cast<long long>(py) * pz);
  }
  for (int x = 0; x < px; ++x) {
    const index_t rows_x = run.tracker.count_for_x(x);
    if (rows_x == 0) continue;
    for (int y = 0; y < py; ++y) {
      for (int z = 0; z < pz; ++z) {
        run.m.charge_recv(run.g.rank_of(x, y, z),
                          static_cast<double>(rows_x * slice), approx_msgs(rows_x, px));
      }
    }
  }
  // A01 (step 10): every trailing column travels to the px*pz owners of its
  // tile column.
  for (int r = 0; r < p; ++r) {
    const index_t mine = chunk_size(ncols, p, r);
    if (mine == 0) continue;
    run.m.charge_send(r, static_cast<double>(mine * run.v * px),
                      static_cast<long long>(px) * pz);
  }
  for (int y = 0; y < py; ++y) {
    const index_t cols_y = grid::cyclic_local_count(t + 1, run.num_tiles, y, py) * run.v;
    if (cols_y == 0) continue;
    for (int x = 0; x < px; ++x) {
      for (int z = 0; z < pz; ++z) {
        run.m.charge_recv(run.g.rank_of(x, y, z),
                          static_cast<double>(cols_y * slice), approx_msgs(cols_y, py));
      }
    }
  }
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Step 11: local Schur-complement update of each layer's partial sums.
// Layer z applies only its k-slice of A10 * A01 (the reduction-dimension
// parallelism of Figure 7). Real mode runs the whole update as ONE gemm
// straight into the packed trailing workspace (beta = 1, alpha = -1 on
// strided views): gemm's ordered k loop accumulates the pz k-slices in
// ascending z, which is exactly the layered partial-sum arithmetic, and the
// per-task update temporary plus its subtract-scatter pass are gone.
// ---------------------------------------------------------------------------
template <typename T>
void update_a11(LuRun<T>& run, index_t t, ConstMatrixView<T> pivotrows) {
  run.m.annotate("schur-update");
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const index_t slice = run.v / pz;
  const index_t ncols = (run.num_tiles - t - 1) * run.v;

  for (int x = 0; x < px; ++x) {
    const auto rows_x = static_cast<double>(run.tracker.count_for_x(x));
    if (rows_x == 0.0) continue;
    for (int y = 0; y < py; ++y) {
      const auto cols_y = static_cast<double>(
          grid::cyclic_local_count(t + 1, run.num_tiles, y, py) * run.v);
      if (cols_y == 0.0) continue;
      for (int z = 0; z < pz; ++z) {
        run.m.charge_flops(run.g.rank_of(x, y, z),
                           2.0 * rows_x * cols_y * static_cast<double>(slice));
      }
    }
  }

  if (run.real && ncols > 0 && run.nact > 0) {
    xblas::gemm<T>(Trans::None, Trans::None, T{-1},
                   run.trail.block(0, t * run.v, run.nact, run.v), pivotrows,
                   T{1}, run.trail.block(0, (t + 1) * run.v, run.nact, ncols));
  }
  run.m.step_barrier();
}

template <typename T>
LuResultT<T> run_conflux_lu(xsim::Machine& m, const grid::Grid3D& g, index_t n,
                            ConstMatrixView<T> a, const FactorOptions& opt) {
  expects(g.ranks() == m.ranks(), "grid must match the machine");
  expects(n >= 1, "matrix must be non-empty");
  index_t v = opt.block_size > 0 ? opt.block_size : default_block_size(n, g);
  expects(v % g.pz() == 0, "block size must be a multiple of the layer count");

  LuRun<T> run(m, g, n, v);
  run.trace_rng.reseed(opt.trace_pivot_seed);
  const index_t npad = run.npad;
  const index_t num_tiles = run.num_tiles;

  // Memory accounting: every rank holds its layer's share of the tile grid
  // (npad^2 * c / P words total across layers) plus panel buffers.
  const double tile_words =
      static_cast<double>(npad) * static_cast<double>(npad) /
      (static_cast<double>(g.px()) * static_cast<double>(g.py()));
  const double panel_words = 3.0 * static_cast<double>(npad * v) /
                                 static_cast<double>(m.ranks()) +
                             static_cast<double>(v * v);
  for (int r = 0; r < m.ranks(); ++r) m.alloc(r, tile_words + panel_words);

  if (run.real) {
    expects(a.rows() == n && a.cols() == n, "matrix must be square");
    run.trail = Matrix<T>(npad, npad, T{});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) run.trail(i, j) = a(i, j);
    }
    for (index_t r = n; r < npad; ++r) run.trail(r, r) = T{1};
    run.lstore = Matrix<T>(npad, npad, T{});
    run.nact = npad;
    run.rowmap.resize(static_cast<std::size_t>(npad));
    run.rowpos.resize(static_cast<std::size_t>(npad));
    for (index_t i = 0; i < npad; ++i) {
      run.rowmap[static_cast<std::size_t>(i)] = i;
      run.rowpos[static_cast<std::size_t>(i)] = i;
    }
  }

  LuResultT<T> result;
  StepCostRecorder rec(m, opt.record_step_costs);
  std::vector<index_t> perm_pad;
  perm_pad.reserve(static_cast<std::size_t>(npad));

  // Dependency-chain rounds per outer iteration (latency model): two layer
  // reductions, the tournament butterfly, the A00 broadcast, and the four
  // panel scatter/distribute hops. O(N/v) total chain depth — the latency
  // win of tournament pivoting over per-column partial pivoting.
  const double chain_per_step =
      2.0 * std::ceil(std::log2(static_cast<double>(std::max(2, g.pz())))) +
      2.0 * std::ceil(std::log2(static_cast<double>(std::max(2, g.px())))) +
      std::ceil(std::log2(static_cast<double>(std::max(2, m.ranks())))) + 4.0;

  for (index_t t = 0; t < num_tiles; ++t) {
    m.charge_chain(chain_per_step);
    rec.begin_iteration();
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops,
                [&] { reduce_block_column(run, t); });

    PivotResult<T> piv;
    rec.measure(&StepCosts::pivoting_words, &StepCosts::pivoting_flops,
                [&] { piv = tournament_pivot(run, t); });
    rec.measure(&StepCosts::a00_words, &StepCosts::a00_flops,
                [&] { broadcast_a00(run, t); });

    if (run.real) {
      // The winner rows' leading block is final: L below the diagonal and
      // U on/above, both stored by global row (row masking, no swaps).
      for (index_t l = 0; l < v; ++l) {
        const index_t row = piv.winners[static_cast<std::size_t>(l)];
        for (index_t j = 0; j < v; ++j) run.lstore(row, t * v + j) = piv.a00(l, j);
      }
    }
    run.tracker.eliminate(piv.winners);
    perm_pad.insert(perm_pad.end(), piv.winners.begin(), piv.winners.end());

    const index_t a10_rows = run.tracker.active_count();
    const index_t ncols = (num_tiles - t - 1) * v;
    std::vector<index_t> pivots_per_x(static_cast<std::size_t>(g.px()), 0);
    for (index_t w : piv.winners) {
      ++pivots_per_x[static_cast<std::size_t>(run.tracker.x_of_row(w))];
    }

    // Step 4: scatter A10; step 5: reduce pivot rows; step 6: scatter A01.
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops, [&] {
      scatter_panel_1d(run, t, /*row_panel=*/true, a10_rows, pivots_per_x);
    });
    MatrixView<T> pivotrows;
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops,
                [&] { reduce_pivot_rows(run, t, piv.winners, &pivotrows); });
    if (run.real) {
      // The winners' packed rows are fully consumed (a00 via the tournament,
      // trailing columns via pivotrows): compact them out so the panel solve
      // and Schur update below see one contiguous block of survivor rows.
      run.retire_rows(piv.winners, t * v);
      check(run.nact == a10_rows, "packed workspace out of sync with tracker");
    }
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops, [&] {
      scatter_panel_1d(run, t, /*row_panel=*/false, ncols, pivots_per_x);
    });

    // Steps 7 and 9: the 1D panel trsms. In Real mode the work is executed
    // the way the schedule distributes it — one chunk of A10 rows and one
    // chunk of A01 columns per simulated rank — and the chunks run across
    // host threads (row/column chunks of a triangular solve are exact:
    // Right-side solves are row-independent, Left-side column-independent).
    // A10 is solved IN PLACE in the packed workspace: the solved values are
    // both this step's L columns (copied to lstore) and the Schur update's
    // left operand, with no gather/scatter copies.
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops, [&] {
      m.annotate("panel-trsm");
      for (int r = 0; r < m.ranks(); ++r) {
        const double rows_r = static_cast<double>(chunk_size(a10_rows, m.ranks(), r));
        const double cols_r = static_cast<double>(chunk_size(ncols, m.ranks(), r));
        const auto vv = static_cast<double>(v);
        if (rows_r > 0) m.charge_flops(r, rows_r * vv * vv);
        if (cols_r > 0) m.charge_flops(r, cols_r * vv * vv);
      }
      if (run.real) {
        const int p = m.ranks();
        MatrixView<T> a10 = run.trail.block(0, t * v, run.nact, v);
        sched::parallel_ranks(p, [&](index_t r) {
          const index_t lo = chunk_offset(a10_rows, p, static_cast<int>(r));
          const index_t cnt = chunk_size(a10_rows, p, static_cast<int>(r));
          if (cnt == 0) return;
          // A10 <- A10 * U00^{-1}: final L columns of the surviving rows.
          xblas::trsm<T>(Side::Right, UpLo::Upper, Trans::None, Diag::NonUnit,
                         T{1}, piv.a00.view(), a10.block(lo, 0, cnt, v));
          for (index_t i = lo; i < lo + cnt; ++i) {
            const index_t row = run.rowmap[static_cast<std::size_t>(i)];
            for (index_t j = 0; j < v; ++j) run.lstore(row, t * v + j) = a10(i, j);
          }
        });
        if (ncols > 0) {
          // A01 <- L00^{-1} * A01: final U rows of the pivots.
          sched::parallel_ranks(p, [&](index_t r) {
            const index_t lo = chunk_offset(ncols, p, static_cast<int>(r));
            const index_t cnt = chunk_size(ncols, p, static_cast<int>(r));
            if (cnt == 0) return;
            xblas::trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::Unit,
                           T{1}, piv.a00.view(), pivotrows.block(0, lo, v, cnt));
          });
          sched::parallel_ranks(v, [&](index_t l) {
            const index_t row = piv.winners[static_cast<std::size_t>(l)];
            for (index_t j = 0; j < ncols; ++j) {
              run.lstore(row, (t + 1) * v + j) = pivotrows(l, j);
            }
          });
        }
      }
      m.step_barrier();
    });

    // Steps 8 and 10: 2.5D distribution; step 11: the Schur update.
    rec.measure(&StepCosts::a11_words, &StepCosts::a11_flops,
                [&] { distribute_panels_2p5d(run, t, a10_rows); });
    rec.measure(&StepCosts::a11_words, &StepCosts::a11_flops,
                [&] { update_a11<T>(run, t, pivotrows); });
    rec.end_iteration(result.step_costs);
  }

  for (int r = 0; r < m.ranks(); ++r) m.release(r, tile_words + panel_words);

  // Assemble the user-facing permutation and factors (drop the padding).
  result.perm.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < npad; ++i) {
    const index_t row = perm_pad[static_cast<std::size_t>(i)];
    if (row < n) result.perm.push_back(row);
  }
  check(static_cast<index_t>(result.perm.size()) == n, "permutation must cover all rows");
  if (run.real) {
    check(std::all_of(perm_pad.begin(), perm_pad.begin() + n,
                      [&](index_t r) { return r < n; }),
          "real rows must be eliminated before padding rows");
    result.factors = Matrix<T>(n, n);
    for (index_t i = 0; i < n; ++i) {
      const index_t row = result.perm[static_cast<std::size_t>(i)];
      for (index_t j = 0; j < n; ++j) result.factors(i, j) = run.lstore(row, j);
    }
    result.workspace_words =
        (static_cast<double>(run.trail.size()) +
         static_cast<double>(run.lstore.size())) * words_per_scalar<T>() +
        run.ws.words();
  }
  return result;
}

}  // namespace

LuResult conflux_lu(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                    const FactorOptions& opt) {
  expects(m.real(), "conflux_lu with a matrix requires Real mode");
  return run_conflux_lu<double>(m, g, a.rows(), a, opt);
}

LuResultF conflux_lu(xsim::Machine& m, const grid::Grid3D& g, ConstViewF a,
                     const FactorOptions& opt) {
  expects(m.real(), "conflux_lu with a matrix requires Real mode");
  return run_conflux_lu<float>(m, g, a.rows(), a, opt);
}

LuResult conflux_lu_trace(xsim::Machine& m, const grid::Grid3D& g, index_t n,
                          const FactorOptions& opt) {
  expects(!m.real(), "conflux_lu_trace requires Trace mode");
  return run_conflux_lu<double>(m, g, n, ConstViewD(), opt);
}

template <typename T>
void conflux_lu_solve(const LuResultT<T>& lu, MatrixView<T> b) {
  const index_t n = lu.factors.rows();
  expects(n > 0, "solve requires Real-mode factors");
  expects(b.rows() == n, "right-hand side must match the matrix");
  // Apply the permutation, then one pair of blocked trsm panel solves over
  // the whole multi-RHS panel.
  Matrix<T> pb(n, b.cols());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      pb(i, j) = b(lu.perm[static_cast<std::size_t>(i)], j);
    }
  }
  xblas::trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::Unit, T{1},
                 lu.factors.view(), pb.view());
  xblas::trsm<T>(Side::Left, UpLo::Upper, Trans::None, Diag::NonUnit, T{1},
                 lu.factors.view(), pb.view());
  copy<T>(pb.view(), b);
}

template void conflux_lu_solve<float>(const LuResultF&, ViewF);
template void conflux_lu_solve<double>(const LuResult&, ViewD);

}  // namespace conflux::factor
