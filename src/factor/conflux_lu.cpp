#include "factor/conflux_lu.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "blas/lapack.hpp"
#include "recover/abft.hpp"
#include "recover/options.hpp"
#include "recover/snapshot.hpp"
#include "sched/rank_parallel.hpp"
#include "sched/taskpool.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "tensor/workspace.hpp"
#include "xsim/comm.hpp"

namespace conflux::factor {

namespace {

using xblas::Diag;
using xblas::Side;
using xblas::Trans;
using xblas::UpLo;

bool is_pow2(int n) { return std::has_single_bit(static_cast<unsigned>(n)); }

// Measured data movement at the Real-path hot spots (DESIGN.md
// "Observability"): bytes actually moved by this schedule's workspace
// machinery, each operand touch counted once per use. The Schur gemm's
// pack-buffer traffic is counted inside xblas::gemm; these cover the
// copies around it. Every add is strictly read-only on the data path —
// a healthy run's factors are bitwise those of a metrics-disabled run.
const metrics::Counter g_dm_panel_gather("dm.panel_gather.bytes");
const metrics::Counter g_dm_pivot_merge("dm.pivot_merge.bytes");
const metrics::Counter g_dm_pivot_rows_gather("dm.pivot_rows_gather.bytes");
const metrics::Counter g_dm_pivot_retire("dm.pivot_retire.bytes");
const metrics::Counter g_dm_panel_solve("dm.panel_solve.bytes");
const metrics::Counter g_dm_schur_operand("dm.schur_operand.bytes");
const metrics::Counter g_dm_schur_update("dm.schur_update.bytes");

// Recovery instrumentation (DESIGN.md "Recovery model"): checkpoint
// serialization time and restore count, plus the ABFT verification ledger.
// recover_test reconciles detected/reexec against the injected bitflips.
// Registration is idempotent by name, so the Cholesky core declaring the
// same counters shares the cells.
const metrics::Counter g_ckpt_seconds("recover.ckpt.seconds");
const metrics::Counter g_ckpt_restores("recover.ckpt.restores");
const metrics::Counter g_abft_verified("recover.abft.verified");
const metrics::Counter g_abft_detected("recover.abft.detected");
const metrics::Counter g_abft_reexec("recover.abft.reexec");

/// In-run re-execution budget for ABFT-detected corruption: enough to ride
/// out a noisy soak (each re-execution re-verifies everything it replays),
/// small enough that persistent corruption — a genuinely broken machine —
/// still surfaces as kDataCorruption instead of looping forever.
constexpr int kMaxAbftReexecs = 8;

/// Soft-breakdown severity order for FactorHealth::code (the health report
/// keeps the most severe classification; counts keep the full story).
int breakdown_severity(StatusCode code) {
  switch (code) {
    case StatusCode::kSingularPivot: return 3;
    case StatusCode::kGrowthOverflow: return 2;
    case StatusCode::kNearSingularPivot: return 1;
    default: return 0;
  }
}

/// Auto pivot-growth limit: growth that wipes out all but ~3 bits of the
/// working precision. Partial pivoting keeps real inputs far below this
/// (its worst case 2^(n-1) is pathological), so crossing it means the
/// factors carry no accuracy.
template <typename T>
double default_growth_limit() {
  return 1.0 / (8.0 * static_cast<double>(std::numeric_limits<T>::epsilon()));
}

/// Candidate set carried through the tournament: row indices plus their
/// original (reduced) panel values. Buffers are sized once per run (rows
/// capacity v, values a fixed v x v matrix with rows.size() live rows), so
/// the per-step tournament rounds allocate nothing.
template <typename T>
struct CandSet {
  std::vector<index_t> rows;
  Matrix<T> values;  // v x v buffer; rows.size() x v live
};

/// Per-run tournament scratch (DESIGN.md: the per-x candidate gathers used
/// to be the last per-step allocations of the schedule; they now live in
/// per-run buffers reserved at their step-0 high-water sizes, and
/// packed_factor_test asserts the steady state allocates nothing).
template <typename T>
struct PivotScratch {
  // Per-x gather + local selection buffers (selection runs one task per
  // simulated column owner, so each x owns its scratch).
  std::vector<std::vector<index_t>> xrows;
  std::vector<Matrix<T>> gather;    // rows_x x v panel values
  std::vector<Matrix<T>> rankwork;  // getrf copy (the ranking destroys it)
  std::vector<std::vector<index_t>> xipiv;
  std::vector<std::vector<index_t>> xperm;
  std::vector<CandSet<T>> sets;
  // Butterfly-merge scratch, shared across rounds (master-side, serial).
  std::vector<index_t> mrows;
  Matrix<T> stacked;  // 2v x v
  Matrix<T> ranked;   // 2v x v getrf copy
  std::vector<index_t> mipiv;
  std::vector<index_t> mperm;
  // Final ranking scratch.
  std::vector<index_t> fipiv;
  std::vector<index_t> fperm;
};

/// Rank the candidate rows in `gather` (nrows x v live) by partial-pivoting
/// LU and keep the top `keep` in `out`: the standard CALU local selection.
template <typename T>
void select_candidates(const std::vector<index_t>& rows, index_t nrows,
                       index_t v, index_t keep, Matrix<T>& gather,
                       Matrix<T>& work, std::vector<index_t>& ipiv,
                       std::vector<index_t>& perm, CandSet<T>& out) {
  out.rows.clear();
  if (nrows == 0) return;
  copy<T>(gather.block(0, 0, nrows, v), work.block(0, 0, nrows, v));
  xblas::getrf<T>(work.block(0, 0, nrows, v), ipiv);  // singular: natural order
  xblas::ipiv_to_permutation(ipiv, nrows, perm);
  const index_t take = std::min(keep, nrows);
  for (index_t i = 0; i < take; ++i) {
    const auto src = perm[static_cast<std::size_t>(i)];
    out.rows.push_back(rows[static_cast<std::size_t>(src)]);
    for (index_t j = 0; j < v; ++j) out.values(i, j) = gather(src, j);
  }
}

/// One tournament round: stack `b` under `a`, re-rank, keep the top `keep`
/// rows in `a`. All buffers persist across rounds and steps.
template <typename T>
void merge_candidates(CandSet<T>& a, const CandSet<T>& b, index_t v,
                      index_t keep, PivotScratch<T>& s) {
  const auto na = static_cast<index_t>(a.rows.size());
  const auto nb = static_cast<index_t>(b.rows.size());
  if (na == 0) {
    a.rows.assign(b.rows.begin(), b.rows.end());
    copy<T>(b.values.block(0, 0, nb, v), a.values.block(0, 0, nb, v));
    g_dm_pivot_merge.add(static_cast<double>(nb * v) *
                         static_cast<double>(sizeof(T)));
    return;
  }
  if (nb == 0) return;
  s.mrows.assign(a.rows.begin(), a.rows.end());
  s.mrows.insert(s.mrows.end(), b.rows.begin(), b.rows.end());
  copy<T>(a.values.block(0, 0, na, v), s.stacked.block(0, 0, na, v));
  copy<T>(b.values.block(0, 0, nb, v), s.stacked.block(na, 0, nb, v));
  // Re-rank a copy of the stacked block (getrf destroys it).
  MatrixView<T> ranked = s.ranked.block(0, 0, na + nb, v);
  copy<T>(s.stacked.block(0, 0, na + nb, v), ranked);
  xblas::getrf<T>(ranked, s.mipiv);
  xblas::ipiv_to_permutation(s.mipiv, na + nb, s.mperm);
  const index_t take = std::min(keep, na + nb);
  // Stack (na+nb rows), re-rank copy (na+nb rows), keep-back (take rows).
  g_dm_pivot_merge.add(static_cast<double>((2 * (na + nb) + take) * v) *
                       static_cast<double>(sizeof(T)));
  a.rows.resize(static_cast<std::size_t>(take));
  for (index_t i = 0; i < take; ++i) {
    const auto src = s.mperm[static_cast<std::size_t>(i)];
    a.rows[static_cast<std::size_t>(i)] = s.mrows[static_cast<std::size_t>(src)];
    for (index_t j = 0; j < v; ++j) a.values(i, j) = s.stacked(src, j);
  }
}

/// Workspace slot ids (tensor/workspace.hpp arena). The pivot-row panel is
/// double-buffered: with lookahead, step t's lazy Schur tasks still read
/// slot t%2 while step t+1 gathers into the other slot.
enum WsSlot : std::size_t { kPivotRows0 = 0, kPivotRows1 = 1 };

/// The whole mutable state of one factorization run, templated on the
/// factor scalar (the Trace entry point instantiates the double core with
/// no data; Real mode exists for float and double).
///
/// Real-mode data path (DESIGN.md "Packed trailing workspace"): instead of
/// pz + 1 full npad x npad matrices, the run keeps
///   - `trail`, ONE row-compacted trailing accumulator: packed row i holds
///     global row rowmap[i], live columns are [t*v, npad) at step t. The
///     layered partial sums of the simulated machine are realized inside
///     gemm's fixed k-order: the Schur update accumulates with beta = 1 and
///     k = v, realizing the pz k-slices in ascending z exactly as an
///     ordered layer reduction would, so the per-layer buffers never exist.
///   - `lstore`, the final factors keyed by global row (Section 7.3's row
///     masking writes results in place, never moving rows).
/// Eliminated rows retire once per step by swapping the tail row into their
/// slot; with lookahead the retirement is split into an urgent pass (the
/// next panel's columns, unblocked by the previous step's urgent stripe)
/// and a lazy pass replaying the same swaps on the remaining columns once
/// the previous step's lazy remainder has landed.
///
/// Execution (DESIGN.md "Pipelined execution"): the Schur update is always
/// decomposed into an URGENT stripe (the next panel's v columns) and a LAZY
/// remainder, both in fixed kRowBlock row-block tasks — the decomposition,
/// and therefore every factor bit, is identical whether the tasks run
/// step-synchronously (parallel_ranks) or pipelined on the persistent
/// TaskPool with cross-step dependencies (lookahead_enabled).
template <typename T>
struct LuRun {
  xsim::Machine& m;
  const grid::Grid3D& g;
  index_t n = 0;     // original size
  index_t npad = 0;  // padded size (multiple of v)
  index_t v = 0;
  index_t num_tiles = 0;  // npad / v
  bool real = false;
  bool la = false;  // lookahead pipelining on the task pool

  RowTracker tracker;
  Rng trace_rng;
  std::vector<int> all_ranks;

  // Real-mode packed trailing workspace + factor store.
  Matrix<T> trail;
  Matrix<T> lstore;
  std::vector<index_t> rowmap;  // packed index -> global row
  std::vector<index_t> rowpos;  // global row -> packed index (-1 = retired)
  index_t nact = 0;             // live packed rows
  Workspace ws;

  // Per-step results and scratch, all sized once per run.
  std::vector<index_t> winners;       // this step's pivots, pivot order
  Matrix<T> a00;                      // v x v in-place LU of the winner rows
  std::vector<index_t> winner_slots;  // packed slots captured pre-retirement
  std::vector<std::pair<index_t, index_t>> retire_pairs;  // (dst, src) swaps
  std::vector<index_t> pivots_per_x;
  PivotScratch<T> scr;

  // Lookahead task handles (empty when la == false).
  std::vector<sched::TaskId> a10_ids, urgent_ids, lazy_ids;

  // Breakdown monitoring (DESIGN.md "Failure model"): strictly read-only on
  // the data path — a healthy run's factors are bitwise those of a run with
  // monitoring removed. amax/umax feed the growth factor; thresholds are
  // resolved once from FactorOptions.
  double amax = 0.0;  // max|A| over the (finite) input
  double umax = 0.0;  // running max|U| over factored pivot rows
  double pivot_tol = 0.0;
  double growth_lim = 0.0;
  FactorHealth health;

  // ABFT checksum state (DESIGN.md "Recovery model"): abft_sum[i] is the
  // PREDICTED row sum of packed row i's live trailing region, maintained in
  // double regardless of T (float-precision accumulation would drift past
  // any usable verification threshold within a few dozen steps) through the
  // same algebra the Schur update applies. Verification recomputes the
  // actual sums read-only, so healthy factors are bitwise identical with
  // ABFT on or off.
  bool abft = false;
  std::vector<double> abft_sum;    // predicted live-region row sums
  std::vector<double> abft_panel;  // this step's panel row sums, pre-trsm
  std::vector<double> abft_urow;   // solved pivot-row sums, scratch

  /// Record a soft breakdown: the factorization continues, the result's
  /// health carries the most severe code and the first affected step.
  void soft_breakdown(StatusCode code, index_t step) {
    if (health.first_breakdown_step < 0) {
      health.first_breakdown_step = static_cast<long long>(step);
    }
    if (breakdown_severity(code) > breakdown_severity(health.code)) {
      health.code = code;
    }
  }

  // Grid-line caches (common.hpp): at most px*py z-lines and py*pz
  // x-lines, fetched once each.
  GridLineCache zlines;
  GridLineCache xlines;

  LuRun(xsim::Machine& machine, const grid::Grid3D& grid, index_t size, index_t block)
      : m(machine),
        g(grid),
        n(size),
        v(block),
        tracker(0, 1, 1),
        trace_rng(0) {
    npad = (n + v - 1) / v * v;
    num_tiles = npad / v;
    real = m.real();
    tracker = RowTracker(npad, v, g.px());
    all_ranks = g.all();
    zlines = GridLineCache(g.px(), g.py());
    xlines = GridLineCache(g.py(), g.pz());
  }

  const std::vector<int>& z_line(int x, int y) {
    return zlines.get(x, y, [this](int a, int b) { return g.z_line(a, b); });
  }
  const std::vector<int>& x_line(int y, int l) {
    return xlines.get(y, l, [this](int a, int b) { return g.x_line(a, b); });
  }

  /// Retirement pass 1 (urgent columns [col0, col0 + v)): move the tail row
  /// into each winner's slot, update the maps, and record the swap sequence
  /// so pass 2 can replay it on the lazy columns. Winners' urgent values
  /// must have been consumed (tournament gather) before this runs.
  void retire_rows_urgent(index_t col0) {
    retire_pairs.clear();
    for (index_t w : winners) {
      const index_t i = rowpos[static_cast<std::size_t>(w)];
      const index_t last = --nact;
      if (i != last) {
        const index_t moved = rowmap[static_cast<std::size_t>(last)];
        const T* src = &trail(last, col0);
        std::copy(src, src + v, &trail(i, col0));
        rowmap[static_cast<std::size_t>(i)] = moved;
        rowpos[static_cast<std::size_t>(moved)] = i;
        retire_pairs.emplace_back(i, last);
        if (abft) {
          // The checksum state travels with its row (the lazy columns follow
          // in retire_rows_lazy, but the sums describe the whole row).
          abft_sum[static_cast<std::size_t>(i)] =
              abft_sum[static_cast<std::size_t>(last)];
          abft_panel[static_cast<std::size_t>(i)] =
              abft_panel[static_cast<std::size_t>(last)];
        }
      }
      rowpos[static_cast<std::size_t>(w)] = -1;
      rowmap[static_cast<std::size_t>(last)] = -1;
    }
    g_dm_pivot_retire.add(static_cast<double>(retire_pairs.size()) * 2.0 *
                          static_cast<double>(v) *
                          static_cast<double>(sizeof(T)));
  }

  /// Retirement pass 2: replay the recorded swaps, in order, on the lazy
  /// columns [col1, npad). Must run after the previous step's lazy Schur
  /// tasks (which write those columns) and after the pivot-row gather
  /// (which reads the winners' lazy values from their original slots).
  void retire_rows_lazy(index_t col1) {
    for (const auto& [dst, src] : retire_pairs) {
      const T* s = &trail(src, col1);
      std::copy(s, s + (npad - col1), &trail(dst, col1));
    }
    g_dm_pivot_retire.add(static_cast<double>(retire_pairs.size()) * 2.0 *
                          static_cast<double>(npad - col1) *
                          static_cast<double>(sizeof(T)));
  }
};

// ---------------------------------------------------------------------------
// Checkpoint/restart (DESIGN.md "Recovery model"). A snapshot captures the
// complete mid-run state at a drained step boundary: the scalar trackers,
// the health ledger, the elimination order so far (perm_pad — the row maps
// and the tracker are functions of it, but the maps are stored outright and
// the tracker replayed), the live region of the trailing accumulator, and
// the factor rows written so far. Restoring it and re-executing the
// remaining steps is bitwise identical to the uninterrupted run.
// ---------------------------------------------------------------------------

template <typename T>
recover::SnapshotKey lu_snapshot_key(const LuRun<T>& run) {
  recover::SnapshotKey key;
  key.kind = recover::FactorKind::kLu;
  key.scalar = sizeof(T) == sizeof(double) ? 'd' : 'f';
  key.n = static_cast<std::int64_t>(run.n);
  key.v = static_cast<std::int64_t>(run.v);
  key.px = run.g.px();
  key.py = run.g.py();
  key.pz = run.g.pz();
  return key;
}

template <typename T>
void save_lu_snapshot(LuRun<T>& run, index_t t,
                      const std::vector<index_t>& perm_pad) {
  recover::SnapshotWriter w(lu_snapshot_key(run), static_cast<std::int64_t>(t));
  // At step 0 every byte of the state is a pure function of the input the
  // resume entry point is handed anyway, so the snapshot is an empty marker
  // — it proves "a resumable point exists" without serializing the full
  // trailing matrix (the largest snapshot of the whole run, for free).
  if (t == 0) {
    recover::store_blob(lu_snapshot_key(run), std::move(w).seal());
    return;
  }
  w.put_i64(static_cast<std::int64_t>(run.nact));
  w.put_f64(run.amax);
  w.put_f64(run.umax);
  w.put_i64(static_cast<std::int64_t>(run.health.code));
  w.put_i64(run.health.first_breakdown_step);
  w.put_i64(run.health.singular_pivots);
  w.put_i64(run.health.near_singular_pivots);
  w.put_f64(run.health.growth_factor);
  w.put_f64(run.health.min_pivot);
  w.put_indices(perm_pad);
  w.put_indices(run.rowmap);
  w.put_indices(run.rowpos);
  // Trailing accumulator: only the live region (packed rows 0..nact, columns
  // t*v..npad) is ever read again.
  const index_t col0 = t * run.v;
  const auto live_bytes = static_cast<std::size_t>(run.npad - col0) * sizeof(T);
  for (index_t i = 0; i < run.nact; ++i) {
    w.put_bytes(&run.trail(i, col0), live_bytes);
  }
  // Factor store: an eliminated row (rowpos < 0) carries its full final row
  // (L left of its pivot block, U from it rightwards); a surviving row has
  // only its first t*v columns written (the L panels of past steps).
  for (index_t r = 0; r < run.npad; ++r) {
    const bool eliminated = run.rowpos[static_cast<std::size_t>(r)] < 0;
    const index_t cols = eliminated ? run.npad : col0;
    if (cols > 0) {
      w.put_bytes(&run.lstore(r, 0), static_cast<std::size_t>(cols) * sizeof(T));
    }
  }
  recover::store_blob(lu_snapshot_key(run), std::move(w).seal());
}

/// Restore the latest snapshot into `run` (whose buffers were freshly
/// initialized from the input) and return the step to resume from. Every
/// structural invariant of the payload is validated — a corrupt or
/// semantically inconsistent snapshot throws kCheckpointInvalid rather than
/// walking out of bounds later.
template <typename T>
index_t restore_lu_snapshot(LuRun<T>& run, std::vector<index_t>& perm_pad) {
  const recover::SnapshotKey key = lu_snapshot_key(run);
  const auto bad = [](const std::string& what) {
    throw status_error(Status(StatusCode::kCheckpointInvalid, what));
  };
  const recover::Blob blob = recover::latest_blob(key);
  if (blob.empty()) bad("no checkpoint to resume " + key.to_string() + " from");
  recover::SnapshotReader r(key, blob);
  const auto t = static_cast<index_t>(r.step());
  if (t >= run.num_tiles) bad("snapshot step past the end of the schedule");
  // A step-0 snapshot is an empty marker: the caller owns re-deriving the
  // state from the input (the resume entry already initialized it; the
  // in-run rollback path re-runs its init explicitly).
  if (t == 0) {
    if (r.remaining() != 0) bad("step-0 snapshot must be an empty marker");
    return 0;
  }
  run.nact = static_cast<index_t>(r.get_i64());
  if (run.nact != run.npad - t * run.v) {
    bad("snapshot active-row count inconsistent with its step");
  }
  run.amax = r.get_f64();
  run.umax = r.get_f64();
  const auto code = static_cast<StatusCode>(r.get_i64());
  if (code != StatusCode::kOk && breakdown_severity(code) == 0) {
    bad("snapshot health carries a code no factorization records");
  }
  run.health.code = code;
  run.health.first_breakdown_step = r.get_i64();
  run.health.singular_pivots = r.get_i64();
  run.health.near_singular_pivots = r.get_i64();
  run.health.growth_factor = r.get_f64();
  run.health.min_pivot = r.get_f64();
  perm_pad = r.get_indices();
  if (static_cast<index_t>(perm_pad.size()) != t * run.v) {
    bad("snapshot elimination record does not match its step");
  }
  for (index_t row : perm_pad) {
    if (row < 0 || row >= run.npad) bad("snapshot pivot row out of range");
  }
  run.rowmap = r.get_indices();
  run.rowpos = r.get_indices();
  if (static_cast<index_t>(run.rowmap.size()) != run.npad ||
      static_cast<index_t>(run.rowpos.size()) != run.npad) {
    bad("snapshot row maps have the wrong shape");
  }
  for (index_t i = 0; i < run.nact; ++i) {
    const index_t row = run.rowmap[static_cast<std::size_t>(i)];
    if (row < 0 || row >= run.npad ||
        run.rowpos[static_cast<std::size_t>(row)] != i) {
      bad("snapshot row maps are not a consistent bijection");
    }
  }
  for (index_t row = 0; row < run.npad; ++row) {
    const index_t pos = run.rowpos[static_cast<std::size_t>(row)];
    if (pos >= run.nact) bad("snapshot row position outside the live region");
  }
  const index_t col0 = t * run.v;
  const auto live_bytes = static_cast<std::size_t>(run.npad - col0) * sizeof(T);
  for (index_t i = 0; i < run.nact; ++i) {
    r.get_bytes(&run.trail(i, col0), live_bytes);
  }
  for (index_t row = 0; row < run.npad; ++row) {
    const bool eliminated = run.rowpos[static_cast<std::size_t>(row)] < 0;
    const index_t cols = eliminated ? run.npad : col0;
    if (cols > 0) {
      r.get_bytes(&run.lstore(row, 0), static_cast<std::size_t>(cols) * sizeof(T));
    }
  }
  // The tracker is a pure function of the elimination order: replay it in
  // the recorded v-row steps.
  run.tracker = RowTracker(run.npad, run.v, run.g.px());
  std::vector<index_t> chunk;
  chunk.reserve(static_cast<std::size_t>(run.v));
  for (index_t s = 0; s < t; ++s) {
    chunk.assign(perm_pad.begin() + s * run.v,
                 perm_pad.begin() + (s + 1) * run.v);
    run.tracker.eliminate(chunk);
  }
  if (run.tracker.active_count() != run.nact) {
    bad("snapshot elimination record inconsistent with its row maps");
  }
  return t;
}

// ---------------------------------------------------------------------------
// ABFT maintenance. Invariant at the top of step t: abft_sum[i] equals the
// row sum of packed row i's live region (columns [t*v, npad)) up to the
// rounding drift between the double-precision prediction and the
// T-precision Schur arithmetic. One step advances the invariant as
//   sum_{t+1}[i] = sum_t[i] - panel_t[i] - (A10_solved row i) . urow
// where panel_t[i] is the pre-trsm panel row sum (those columns leave the
// live region) and urow[k] sums the SOLVED pivot row k — the exact algebra
// of trail -= A10_solved * U_panel restricted to row sums.
// ---------------------------------------------------------------------------

template <typename T>
void init_abft_sums(LuRun<T>& run, index_t t) {
  run.abft_sum.assign(static_cast<std::size_t>(run.npad), 0.0);
  run.abft_panel.assign(static_cast<std::size_t>(run.npad), 0.0);
  run.abft_urow.assign(static_cast<std::size_t>(run.v), 0.0);
  const index_t col0 = t * run.v;
  const index_t width = run.npad - col0;
  for (index_t i = 0; i < run.nact; ++i) {
    const T* row = &run.trail(i, col0);
    double s = 0.0;
    for (index_t j = 0; j < width; ++j) s += static_cast<double>(row[j]);
    run.abft_sum[static_cast<std::size_t>(i)] = s;
  }
}

template <typename T>
void capture_abft_panel(LuRun<T>& run, index_t t) {
  const index_t col0 = t * run.v;
  for (index_t i = 0; i < run.nact; ++i) {
    const T* row = &run.trail(i, col0);
    double s = 0.0;
    for (index_t j = 0; j < run.v; ++j) s += static_cast<double>(row[j]);
    run.abft_panel[static_cast<std::size_t>(i)] = s;
  }
}

/// Roll the predicted sums forward across this step's Schur update. Must run
/// after the A10 trsm (the live panel columns now hold the solved L values)
/// and after the pivot rows were solved; before the Schur tasks are REQUIRED
/// would be wrong — they only touch columns the prediction already models.
template <typename T>
void apply_abft_update(LuRun<T>& run, index_t t, ConstMatrixView<T> pivotrows,
                       index_t ncols) {
  if (ncols <= 0) return;
  for (index_t k = 0; k < run.v; ++k) {
    const T* row = pivotrows.row(k);
    double s = 0.0;
    for (index_t j = 0; j < ncols; ++j) s += static_cast<double>(row[j]);
    run.abft_urow[static_cast<std::size_t>(k)] = s;
  }
  const index_t col0 = t * run.v;
  for (index_t i = 0; i < run.nact; ++i) {
    const T* a10row = &run.trail(i, col0);
    double upd = 0.0;
    for (index_t k = 0; k < run.v; ++k) {
      upd += static_cast<double>(a10row[k]) *
             run.abft_urow[static_cast<std::size_t>(k)];
    }
    run.abft_sum[static_cast<std::size_t>(i)] -=
        run.abft_panel[static_cast<std::size_t>(i)] + upd;
  }
}

/// Read-only verification of the invariant. The tolerance is deliberately
/// loose — 5% of the row's absolute mass — because it only needs to separate
/// rounding drift (orders of magnitude below it) from real corruption (the
/// kBitflip site produces non-finite or grossly out-of-range values, which
/// no tolerance admits; the negated comparison catches NaN).
/// One row's verification scan. Four independent accumulator pairs break the
/// add-latency dependency chain (the scan is bandwidth-bound, not
/// order-sensitive: the comparison is against a 5% tolerance, never bitwise).
template <typename T>
bool abft_row_ok(const T* row, index_t width, double predicted) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  index_t j = 0;
  for (; j + 4 <= width; j += 4) {
    const double x0 = static_cast<double>(row[j]);
    const double x1 = static_cast<double>(row[j + 1]);
    const double x2 = static_cast<double>(row[j + 2]);
    const double x3 = static_cast<double>(row[j + 3]);
    a0 += x0;
    a1 += x1;
    a2 += x2;
    a3 += x3;
    m0 += std::abs(x0);
    m1 += std::abs(x1);
    m2 += std::abs(x2);
    m3 += std::abs(x3);
  }
  for (; j < width; ++j) {
    const double x = static_cast<double>(row[j]);
    a0 += x;
    m0 += std::abs(x);
  }
  const double actual = (a0 + a1) + (a2 + a3);
  const double mag = (m0 + m1) + (m2 + m3);
  return std::abs(actual - predicted) <= 0.05 * (mag + 1.0);
}

template <typename T>
void verify_abft(LuRun<T>& run, index_t t) {
  g_abft_verified.add(1.0);
  const index_t col0 = t * run.v;
  const index_t width = run.npad - col0;
  // The scan reads the whole live region every step — serial it alone would
  // eat the bench's ABFT overhead budget at n=2048. The pool is drained at
  // this point (the hook waits before verifying), so row chunks fan out
  // across it; each row is scanned by exactly one task, so the verdict is
  // identical at any thread count. The lowest bad packed row is reported.
  constexpr index_t kRowsPerChunk = 128;
  const index_t nchunks = (run.nact + kRowsPerChunk - 1) / kRowsPerChunk;
  std::atomic<index_t> bad{run.nact};
  sched::parallel_ranks(nchunks, [&](index_t c) {
    const index_t lo = c * kRowsPerChunk;
    const index_t hi = std::min(run.nact, lo + kRowsPerChunk);
    for (index_t i = lo; i < hi; ++i) {
      if (abft_row_ok(&run.trail(i, col0), width,
                      run.abft_sum[static_cast<std::size_t>(i)])) {
        continue;
      }
      index_t seen = bad.load(std::memory_order_relaxed);
      while (i < seen &&
             !bad.compare_exchange_weak(seen, i, std::memory_order_relaxed)) {
      }
      break;
    }
  });
  const index_t bad_row = bad.load(std::memory_order_relaxed);
  if (bad_row < run.nact) {
    g_abft_detected.add(1.0);
    throw status_error(Status(
        StatusCode::kDataCorruption,
        "ABFT row-sum mismatch in the trailing accumulator (packed row " +
            std::to_string(bad_row) + ")",
        static_cast<long long>(t)));
  }
}

// Approximate peer counts for the latency term of aggregated charges
// (documented in DESIGN.md; only alpha-cost, not volume, depends on these).
long long approx_msgs(index_t items, int peers) {
  return std::min<long long>(static_cast<long long>(std::max<index_t>(items, 0)),
                             static_cast<long long>(peers));
}

// ---------------------------------------------------------------------------
// Step 1: reduce the current block column across the Pz layers onto layer
// l_t. Per x-group the payload is that group's active rows times v.
// ---------------------------------------------------------------------------
template <typename T>
void reduce_block_column(LuRun<T>& run, index_t t) {
  prof::ScopedSpan span("reduce-column", static_cast<long long>(t));
  run.m.annotate("reduce-column");
  const int py = run.g.py();
  const int pz = run.g.pz();
  const int y_t = static_cast<int>(t) % py;
  const int l_t = static_cast<int>(t) % pz;
  if (pz > 1) {
    for (int x = 0; x < run.g.px(); ++x) {
      const index_t rows_x = run.tracker.count_for_x(x);
      if (rows_x == 0) continue;
      xsim::comm::reduce(run.m, run.z_line(x, y_t), static_cast<std::size_t>(l_t),
                         static_cast<double>(rows_x * run.v));
    }
  }
  // Real mode: nothing to execute — the packed workspace already holds the
  // reduced sums (the layer reduction is fused into the Schur update's
  // k-order), so the block column is simply trail columns [t*v, t*v + v).
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Step 2: tournament pivoting (butterfly over the Px column owners). Fills
// run.winners (pivot order) and, in Real mode, run.a00 with the factored
// leading block. With lookahead the caller has already waited for the
// previous step's urgent stripe — the only data this step reads — so this
// runs while the previous lazy remainder is still in flight.
// ---------------------------------------------------------------------------
template <typename T>
void tournament_pivot(LuRun<T>& run, index_t t) {
  prof::ScopedSpan span("tournament-pivot", static_cast<long long>(t));
  run.m.annotate("tournament-pivot");
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const int y_t = static_cast<int>(t) % py;
  const int l_t = static_cast<int>(t) % pz;
  const auto& group = run.x_line(y_t, l_t);

  // Communication: log2(Px) butterfly rounds of the v x v candidate block
  // plus the v row indices; non-powers of two finish with a broadcast of the
  // root's winners (rank 0 always accumulates full information).
  const double payload = static_cast<double>(run.v * (run.v + 1));
  xsim::comm::butterfly(run.m, group, payload);
  if (!is_pow2(px) && px > 1) {
    xsim::comm::broadcast(run.m, group, 0, payload);
  }
  // Computation: the initial local ranking plus one 2v x v re-ranking per
  // butterfly round on every participant.
  const double rounds = px > 1 ? std::ceil(std::log2(static_cast<double>(px))) : 0.0;
  for (int x = 0; x < px; ++x) {
    const auto rows_x = static_cast<double>(run.tracker.count_for_x(x));
    const auto vv = static_cast<double>(run.v);
    run.m.charge_flops(group[static_cast<std::size_t>(x)],
                       rows_x * vv * vv + rounds * 2.0 * vv * vv * vv / 3.0);
  }

  run.winners.clear();
  if (!run.real) {
    run.winners = run.tracker.sample_active(run.v, run.trace_rng);
    run.m.step_barrier();
    return;
  }

  // Local candidate selection per x-group: one simulated column owner per
  // task, each ranking its own rows out of its per-run scratch (disjoint
  // outputs, zero steady-state allocations). Panel values are read straight
  // out of the packed workspace.
  PivotScratch<T>& s = run.scr;
  for (int x = 0; x < px; ++x) {
    run.tracker.rows_for_x_into(x, s.xrows[static_cast<std::size_t>(x)]);
  }
  sched::parallel_ranks(px, [&](index_t x) {
    const auto xi = static_cast<std::size_t>(x);
    const auto& rows = s.xrows[xi];
    const auto nrows = static_cast<index_t>(rows.size());
    if (nrows == 0) {
      s.sets[xi].rows.clear();
      return;
    }
    Matrix<T>& gather = s.gather[xi];
    for (index_t i = 0; i < nrows; ++i) {
      const index_t pi = run.rowpos[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])];
      for (index_t j = 0; j < run.v; ++j) {
        gather(i, j) = run.trail(pi, t * run.v + j);
      }
    }
    // Panel columns read out of the trailing accumulator + gather write.
    g_dm_panel_gather.add(static_cast<double>(nrows) * 2.0 *
                          static_cast<double>(run.v) *
                          static_cast<double>(sizeof(T)));
    select_candidates<T>(rows, nrows, run.v, run.v, gather, s.rankwork[xi],
                         s.xipiv[xi], s.xperm[xi], s.sets[xi]);
  });
  // Hard-breakdown scan of the gathered panel (read-only; the gathers are
  // preserved — selection ranks a copy). A non-finite value here — an
  // overflowed Schur accumulation, a contaminated input that survived to
  // this column, or an injected poison — would otherwise rank arbitrarily
  // and propagate silently into the factors.
  for (int x = 0; x < px; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    const auto nrows = static_cast<index_t>(s.xrows[xi].size());
    const Matrix<T>& gather = s.gather[xi];
    for (index_t i = 0; i < nrows; ++i) {
      for (index_t j = 0; j < run.v; ++j) {
        if (!std::isfinite(static_cast<double>(gather(i, j)))) {
          throw status_error(Status(
              StatusCode::kNonFinite,
              "non-finite value in the panel entering tournament pivoting",
              static_cast<long long>(t)));
        }
      }
    }
  }
  // Merge rounds along the accumulation tree of rank 0. The full butterfly
  // computes px/2 merges per round on every rank, but only the binomial
  // tree rooted at rank 0 ever reaches the final candidate set, and each
  // kept merge consumes exactly the sub-merges the butterfly would have fed
  // it — so the winners are identical and the dead merges are skipped.
  for (int mask = 1; mask < px; mask <<= 1) {
    for (int x = 0; x + mask < px; x += 2 * mask) {
      merge_candidates<T>(s.sets[static_cast<std::size_t>(x)],
                          s.sets[static_cast<std::size_t>(x + mask)], run.v,
                          run.v, s);
    }
  }
  CandSet<T>& final_set = s.sets[0];
  check(static_cast<index_t>(final_set.rows.size()) == run.v,
        "tournament must produce exactly v pivots");
  // Final ranking doubles as the A00 factorization (Table 1: A00's getrf is
  // free, it happens during TournPivot).
  copy<T>(final_set.values.block(0, 0, run.v, run.v), run.a00.view());
  xblas::getrf<T>(run.a00.view(), s.fipiv);
  if (fault::enabled() && fault::should_inject(fault::Site::kZeroPivot)) {
    run.a00(run.v - 1, run.v - 1) = T{};
  }
  // Pivot classification on U00's diagonal. An exactly-zero pivot before
  // the final tile is a HARD breakdown: getrf skipped that elimination and
  // the panel trsms below would divide by zero, poisoning the trailing
  // matrix. At the final tile no trsm follows — the zero stays on U's
  // diagonal (LAPACK info > 0 semantics) and the run degrades softly.
  for (index_t k = 0; k < run.v; ++k) {
    const double d = std::abs(static_cast<double>(run.a00(k, k)));
    if (d == 0.0) {
      ++run.health.singular_pivots;
      run.health.min_pivot = 0.0;
      run.soft_breakdown(StatusCode::kSingularPivot, t);
      if (t + 1 < run.num_tiles) {
        throw status_error(Status(
            StatusCode::kSingularPivot,
            "exactly singular pivot after tournament selection; the panel "
            "solves would divide by zero",
            static_cast<long long>(t)));
      }
      continue;
    }
    if (d < run.health.min_pivot) run.health.min_pivot = d;
    if (run.pivot_tol > 0.0 && d < run.pivot_tol * run.amax) {
      ++run.health.near_singular_pivots;
      run.soft_breakdown(StatusCode::kNearSingularPivot, t);
    }
  }
  xblas::ipiv_to_permutation(s.fipiv, run.v, s.fperm);
  for (index_t i = 0; i < run.v; ++i) {
    run.winners.push_back(
        final_set.rows[static_cast<std::size_t>(s.fperm[static_cast<std::size_t>(i)])]);
  }
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Step 3: broadcast A00 (v^2 words) and the pivot indices (v words) to all.
// ---------------------------------------------------------------------------
template <typename T>
void broadcast_a00(LuRun<T>& run, index_t t) {
  prof::ScopedSpan span("bcast-a00", static_cast<long long>(t));
  run.m.annotate("bcast-a00");
  const int y_t = static_cast<int>(t) % run.g.py();
  const int l_t = static_cast<int>(t) % run.g.pz();
  const int root = run.g.rank_of(0, y_t, l_t);
  xsim::comm::broadcast(run.m, run.all_ranks, static_cast<std::size_t>(root),
                        static_cast<double>(run.v * run.v + run.v));
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Steps 4 and 6: scatter the reduced panels into 1D distributions across all
// P ranks. Senders are the layer-l_t owners; aggregate charges keep this
// O(P) per step.
// ---------------------------------------------------------------------------
template <typename T>
void scatter_panel_1d(LuRun<T>& run, index_t t, bool row_panel, index_t items,
                      const std::vector<index_t>& pivots_per_x) {
  prof::ScopedSpan span(row_panel ? "scatter-a10" : "scatter-a01",
                        static_cast<long long>(t));
  run.m.annotate(row_panel ? "scatter-a10" : "scatter-a01");
  const int p = run.m.ranks();
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const int y_t = static_cast<int>(t) % py;
  const int l_t = static_cast<int>(t) % pz;
  if (row_panel) {
    // A10: items = active non-pivot rows, each of width v, leaving the
    // column-owner ranks (x, y_t, l_t).
    for (int x = 0; x < px; ++x) {
      const index_t rows_x = run.tracker.count_for_x(x);
      if (rows_x == 0) continue;
      run.m.charge_send(run.g.rank_of(x, y_t, l_t),
                        static_cast<double>(rows_x * run.v), approx_msgs(rows_x, p / px));
    }
  } else {
    // A01: items = trailing columns of the v pivot rows, leaving the tile
    // owners (x_piv, y, l_t): each pivot row's trailing segment lives on the
    // rank whose x matches the pivot row's tile residue.
    for (int x = 0; x < px; ++x) {
      const index_t npiv_x = pivots_per_x[static_cast<std::size_t>(x)];
      if (npiv_x == 0) continue;
      for (int y = 0; y < py; ++y) {
        const index_t cols_y =
            grid::cyclic_local_count(t + 1, run.num_tiles, y, py) * run.v;
        if (cols_y == 0) continue;
        run.m.charge_send(run.g.rank_of(x, y, l_t),
                          static_cast<double>(cols_y * npiv_x),
                          approx_msgs(cols_y, p / py));
      }
    }
  }
  for (int r = 0; r < p; ++r) {
    const index_t mine = chunk_size(items, p, r);
    if (mine == 0) continue;
    run.m.charge_recv(r, static_cast<double>(mine * run.v),
                      approx_msgs(mine, row_panel ? px : py));
  }
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Step 5: reduce the v pivot rows' trailing columns across the layers. In
// Real mode this gathers the winners' packed rows into this step's
// pivot-row workspace (the last read of those rows before they retire);
// with lookahead it first drains the previous step's lazy Schur tasks,
// which are the producers of those trailing values.
// ---------------------------------------------------------------------------
template <typename T>
void reduce_pivot_rows(LuRun<T>& run, index_t t, MatrixView<T>* pivotrows) {
  prof::ScopedSpan span("reduce-pivot-rows", static_cast<long long>(t));
  run.m.annotate("reduce-pivot-rows");
  const int py = run.g.py();
  const int pz = run.g.pz();
  const int l_t = static_cast<int>(t) % pz;
  const index_t ncols = (run.num_tiles - t - 1) * run.v;
  if (pz > 1 && ncols > 0) {
    // Pivot rows grouped by their tile-row owner x.
    for (int x = 0; x < run.g.px(); ++x) {
      const index_t nrows = run.pivots_per_x[static_cast<std::size_t>(x)];
      if (nrows == 0) continue;
      for (int y = 0; y < py; ++y) {
        const index_t cols_y =
            grid::cyclic_local_count(t + 1, run.num_tiles, y, py) * run.v;
        if (cols_y == 0) continue;
        xsim::comm::reduce(run.m, run.z_line(x, y), static_cast<std::size_t>(l_t),
                           static_cast<double>(nrows * cols_y));
      }
    }
  }
  if (run.real && ncols > 0) {
    if (run.la) sched::TaskPool::instance().wait(run.lazy_ids);
    *pivotrows = run.ws.template mat<T>(
        (t & 1) != 0 ? kPivotRows1 : kPivotRows0, run.v, ncols);
    sched::parallel_ranks(run.v, [&](index_t l) {
      const index_t pi = run.winner_slots[static_cast<std::size_t>(l)];
      const T* src = &run.trail(pi, (t + 1) * run.v);
      std::copy(src, src + ncols, pivotrows->row(l));
    });
    // Winners' trailing rows read from the accumulator + workspace write.
    g_dm_pivot_rows_gather.add(static_cast<double>(run.v) * 2.0 *
                               static_cast<double>(ncols) *
                               static_cast<double>(sizeof(T)));
  }
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Steps 8 and 10: distribute the factored panels' k-slices to the 2.5D tile
// owners (aggregate charges; the dominant communication of the algorithm).
// ---------------------------------------------------------------------------
template <typename T>
void distribute_panels_2p5d(LuRun<T>& run, index_t t, index_t a10_rows) {
  prof::ScopedSpan span("distribute-2.5d", static_cast<long long>(t));
  run.m.annotate("distribute-2.5d");
  const int p = run.m.ranks();
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const index_t slice = run.v / pz;
  const index_t ncols = (run.num_tiles - t - 1) * run.v;

  // A10 (step 8): every row travels to the py*pz owners of its tile row,
  // each taking a v/pz slice.
  for (int r = 0; r < p; ++r) {
    const index_t mine = chunk_size(a10_rows, p, r);
    if (mine == 0) continue;
    run.m.charge_send(r, static_cast<double>(mine * run.v * py),
                      static_cast<long long>(py) * pz);
  }
  for (int x = 0; x < px; ++x) {
    const index_t rows_x = run.tracker.count_for_x(x);
    if (rows_x == 0) continue;
    for (int y = 0; y < py; ++y) {
      for (int z = 0; z < pz; ++z) {
        run.m.charge_recv(run.g.rank_of(x, y, z),
                          static_cast<double>(rows_x * slice), approx_msgs(rows_x, px));
      }
    }
  }
  // A01 (step 10): every trailing column travels to the px*pz owners of its
  // tile column.
  for (int r = 0; r < p; ++r) {
    const index_t mine = chunk_size(ncols, p, r);
    if (mine == 0) continue;
    run.m.charge_send(r, static_cast<double>(mine * run.v * px),
                      static_cast<long long>(px) * pz);
  }
  for (int y = 0; y < py; ++y) {
    const index_t cols_y = grid::cyclic_local_count(t + 1, run.num_tiles, y, py) * run.v;
    if (cols_y == 0) continue;
    for (int x = 0; x < px; ++x) {
      for (int z = 0; z < pz; ++z) {
        run.m.charge_recv(run.g.rank_of(x, y, z),
                          static_cast<double>(cols_y * slice), approx_msgs(cols_y, py));
      }
    }
  }
  run.m.step_barrier();
}

// ---------------------------------------------------------------------------
// Step 11: local Schur-complement update of each layer's partial sums.
// Layer z applies only its k-slice of A10 * A01 (the reduction-dimension
// parallelism of Figure 7). Real mode accumulates straight into the packed
// trailing workspace (beta = 1, alpha = -1 on strided views): gemm's
// ordered k loop realizes the pz k-slices in ascending z, which is exactly
// the layered partial-sum arithmetic.
//
// The update is decomposed — in the charges AND in the executed tasks, in
// both execution modes — into the URGENT stripe (the next panel's v
// columns, the only data step t+1's tournament needs) and the LAZY
// remainder, each in fixed kRowBlock row-block tasks. With lookahead the
// tasks go to the pool, depending only on this step's A10 solve; without,
// the identical tasks run synchronously, so the factors agree bitwise.
// ---------------------------------------------------------------------------
template <typename T>
void update_a11(LuRun<T>& run, index_t t, ConstMatrixView<T> pivotrows) {
  prof::ScopedSpan span("schur-update", static_cast<long long>(t));
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const index_t slice = run.v / pz;
  const index_t ncols = (run.num_tiles - t - 1) * run.v;
  const int y_u = static_cast<int>(t + 1) % py;  // owner of tile column t+1

  run.m.annotate("schur-update-urgent");
  if (ncols > 0) {
    for (int x = 0; x < px; ++x) {
      const auto rows_x = static_cast<double>(run.tracker.count_for_x(x));
      if (rows_x == 0.0) continue;
      for (int z = 0; z < pz; ++z) {
        run.m.charge_flops(run.g.rank_of(x, y_u, z),
                           2.0 * rows_x * static_cast<double>(run.v) *
                               static_cast<double>(slice));
      }
    }
  }
  run.m.annotate("schur-update-lazy");
  for (int x = 0; x < px; ++x) {
    const auto rows_x = static_cast<double>(run.tracker.count_for_x(x));
    if (rows_x == 0.0) continue;
    for (int y = 0; y < py; ++y) {
      const index_t cols_y =
          grid::cyclic_local_count(t + 1, run.num_tiles, y, py) * run.v;
      const index_t lazy_cols = cols_y - (y == y_u ? run.v : 0);
      if (lazy_cols <= 0) continue;
      for (int z = 0; z < pz; ++z) {
        run.m.charge_flops(run.g.rank_of(x, y, z),
                           2.0 * rows_x * static_cast<double>(lazy_cols) *
                               static_cast<double>(slice));
      }
    }
  }

  run.urgent_ids.clear();
  run.lazy_ids.clear();
  if (run.real && ncols > 0 && run.nact > 0) {
    const index_t nact = run.nact;
    ConstMatrixView<T> a10 = run.trail.block(0, t * run.v, nact, run.v);
    const index_t nblocks = sched::num_row_blocks(nact);
    const index_t lcols = ncols - run.v;
    // Measured Schur traffic per row-block task: each task reads its A10
    // block and the full right operand, and reads + writes its accumulator
    // block (beta = 1). The re-read of the shared right operand by every
    // block is real traffic, so it is counted per task, not once.
    const auto count_schur = [](index_t bn, index_t v, index_t cols) {
      if (!metrics::enabled()) return;
      const double sb = static_cast<double>(sizeof(T));
      g_dm_schur_operand.add(
          (static_cast<double>(bn) * static_cast<double>(v) +
           static_cast<double>(v) * static_cast<double>(cols)) * sb);
      g_dm_schur_update.add(2.0 * static_cast<double>(bn) *
                            static_cast<double>(cols) * sb);
    };
    const auto urgent_block = [&run, t, a10, pivotrows, nact,
                               count_schur](index_t blk) {
      const index_t i0 = blk * sched::kRowBlock;
      const index_t bn = std::min(sched::kRowBlock, nact - i0);
      count_schur(bn, run.v, run.v);
      xblas::gemm<T>(Trans::None, Trans::None, T{-1},
                     a10.block(i0, 0, bn, run.v),
                     pivotrows.block(0, 0, run.v, run.v), T{1},
                     run.trail.block(i0, (t + 1) * run.v, bn, run.v));
    };
    const auto lazy_block = [&run, t, a10, pivotrows, nact, lcols,
                             count_schur](index_t blk) {
      const index_t i0 = blk * sched::kRowBlock;
      const index_t bn = std::min(sched::kRowBlock, nact - i0);
      count_schur(bn, run.v, lcols);
      xblas::gemm<T>(Trans::None, Trans::None, T{-1},
                     a10.block(i0, 0, bn, run.v),
                     pivotrows.block(0, run.v, run.v, lcols), T{1},
                     run.trail.block(i0, (t + 1) * run.v + run.v, bn, lcols));
    };
    if (run.la) {
      sched::TaskPool& pool = sched::TaskPool::instance();
      for (index_t blk = 0; blk < nblocks; ++blk) {
        // Retryable: the injected transient fault fires before the body
        // runs, so the beta=1 accumulation has not happened on a retried
        // attempt and re-running it is exact.
        run.urgent_ids.push_back(pool.submit([urgent_block, blk] { urgent_block(blk); },
                                             "schur-urgent",
                                             sched::TaskCategory::Urgent,
                                             static_cast<long long>(t),
                                             run.a10_ids, /*retryable=*/true));
      }
      if (lcols > 0) {
        for (index_t blk = 0; blk < nblocks; ++blk) {
          run.lazy_ids.push_back(pool.submit([lazy_block, blk] { lazy_block(blk); },
                                             "schur-lazy",
                                             sched::TaskCategory::Lazy,
                                             static_cast<long long>(t),
                                             run.a10_ids, /*retryable=*/true));
        }
      }
    } else {
      sched::parallel_ranks(nblocks, urgent_block);
      if (lcols > 0) sched::parallel_ranks(nblocks, lazy_block);
    }
  }
  run.m.step_barrier();
}

template <typename T>
LuResultT<T> run_conflux_lu(xsim::Machine& m, const grid::Grid3D& g, index_t n,
                            ConstMatrixView<T> a, const FactorOptions& opt,
                            bool resume = false) {
  expects(g.ranks() == m.ranks(), "grid must match the machine");
  expects(n >= 1, "matrix must be non-empty");
  index_t v = opt.block_size > 0 ? opt.block_size : default_block_size(n, g);
  expects(v % g.pz() == 0, "block size must be a multiple of the layer count");

  LuRun<T> run(m, g, n, v);
  run.trace_rng.reseed(opt.trace_pivot_seed);
  run.la = run.real && lookahead_enabled(opt);
  const index_t npad = run.npad;
  const index_t num_tiles = run.num_tiles;
  sched::TaskPool& pool = sched::TaskPool::instance();

  // Memory accounting: every rank holds its layer's share of the tile grid
  // (npad^2 * c / P words total across layers) plus panel buffers.
  const double tile_words =
      static_cast<double>(npad) * static_cast<double>(npad) /
      (static_cast<double>(g.px()) * static_cast<double>(g.py()));
  const double panel_words = 3.0 * static_cast<double>(npad * v) /
                                 static_cast<double>(m.ranks()) +
                             static_cast<double>(v * v);
  for (int r = 0; r < m.ranks(); ++r) m.alloc(r, tile_words + panel_words);

  // Release the machine's memory accounting on every exit path, and on an
  // error unwind first drain the pool: in-flight lookahead tasks reference
  // run state (trail, a00, pivot-row workspace) that is about to be
  // destroyed. Declared after `run`, so it drains before run's teardown.
  struct MachineLease {
    xsim::Machine& m;
    double words;
    bool la;
    ~MachineLease() {
      if (la && std::uncaught_exceptions() > 0) {
        try {
          sched::TaskPool::instance().wait_all();
        } catch (...) {
          // The primary error is already unwinding; pool errors were either
          // it or its cascade.
        }
      }
      for (int r = 0; r < m.ranks(); ++r) m.release(r, words);
    }
  } lease{m, tile_words + panel_words, run.la};

  std::vector<index_t> perm_pad;
  perm_pad.reserve(static_cast<std::size_t>(npad));

  // (Re)initialize the whole packed data path from the input: also the
  // rollback of last resort when ABFT detects corruption and no checkpoint
  // exists — the caller's view of `a` is untouched by the run.
  const auto init_packed_state = [&] {
    run.amax = 0.0;
    run.umax = 0.0;
    run.health = FactorHealth{};
    run.health.min_pivot = std::numeric_limits<double>::infinity();
    run.trail = Matrix<T>(npad, npad, T{});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        const T val = a(i, j);
        if (!std::isfinite(static_cast<double>(val))) {
          throw status_error(Status(
              StatusCode::kNonFinite, "input matrix contains a non-finite value"));
        }
        const double d = std::abs(static_cast<double>(val));
        if (d > run.amax) run.amax = d;
        run.trail(i, j) = val;
      }
    }
    for (index_t r = n; r < npad; ++r) run.trail(r, r) = T{1};
    run.lstore = Matrix<T>(npad, npad, T{});
    run.nact = npad;
    run.rowmap.resize(static_cast<std::size_t>(npad));
    run.rowpos.resize(static_cast<std::size_t>(npad));
    for (index_t i = 0; i < npad; ++i) {
      run.rowmap[static_cast<std::size_t>(i)] = i;
      run.rowpos[static_cast<std::size_t>(i)] = i;
    }
    run.tracker = RowTracker(npad, v, g.px());
    perm_pad.clear();
  };

  if (run.real) {
    expects(a.rows() == n && a.cols() == n, "matrix must be square");
    run.pivot_tol = opt.pivot_tolerance;
    run.growth_lim =
        opt.growth_limit > 0.0 ? opt.growth_limit : default_growth_limit<T>();
    init_packed_state();
    // Size every per-step scratch buffer at its step-0 high-water mark:
    // the steady state of the factorization allocates nothing (asserted in
    // packed_factor_test).
    run.winners.reserve(static_cast<std::size_t>(v));
    run.winner_slots.reserve(static_cast<std::size_t>(v));
    run.retire_pairs.reserve(static_cast<std::size_t>(v));
    run.a00 = Matrix<T>(v, v);
    const auto px = static_cast<std::size_t>(g.px());
    PivotScratch<T>& s = run.scr;
    s.xrows.resize(px);
    s.gather.resize(px);
    s.rankwork.resize(px);
    s.xipiv.resize(px);
    s.xperm.resize(px);
    s.sets.resize(px);
    for (std::size_t x = 0; x < px; ++x) {
      const index_t cap =
          std::max<index_t>(run.tracker.count_for_x(static_cast<int>(x)), 1);
      s.xrows[x].reserve(static_cast<std::size_t>(cap));
      s.gather[x] = Matrix<T>(cap, v);
      s.rankwork[x] = Matrix<T>(cap, v);
      s.xipiv[x].reserve(static_cast<std::size_t>(v));
      s.xperm[x].reserve(static_cast<std::size_t>(cap));
      s.sets[x].rows.reserve(static_cast<std::size_t>(v));
      s.sets[x].values = Matrix<T>(v, v);
    }
    s.mrows.reserve(static_cast<std::size_t>(2 * v));
    s.stacked = Matrix<T>(2 * v, v);
    s.ranked = Matrix<T>(2 * v, v);
    s.mipiv.reserve(static_cast<std::size_t>(v));
    s.mperm.reserve(static_cast<std::size_t>(2 * v));
    s.fipiv.reserve(static_cast<std::size_t>(v));
    s.fperm.reserve(static_cast<std::size_t>(v));
  }
  run.pivots_per_x.assign(static_cast<std::size_t>(g.px()), 0);

  LuResultT<T> result;
  StepCostRecorder rec(m, opt.record_step_costs);

  // Recovery configuration (recover/options.hpp): resolved once per run, so
  // a mid-run configure() cannot tear the checkpoint cadence.
  const recover::Options ropt = recover::options();
  const bool ckpt_on = run.real && ropt.ckpt_every > 0;
  run.abft = run.real && ropt.abft;

  index_t t0 = 0;
  if (resume) {
    expects(run.real, "resume requires Real mode");
    t0 = restore_lu_snapshot(run, perm_pad);
    g_ckpt_restores.add(1.0);
  }
  if (run.abft) init_abft_sums(run, t0);

  // Dependency-chain rounds per outer iteration (latency model): two layer
  // reductions, the tournament butterfly, the A00 broadcast, and the four
  // panel scatter/distribute hops. O(N/v) total chain depth — the latency
  // win of tournament pivoting over per-column partial pivoting.
  const double chain_per_step =
      2.0 * std::ceil(std::log2(static_cast<double>(std::max(2, g.pz())))) +
      2.0 * std::ceil(std::log2(static_cast<double>(std::max(2, g.px())))) +
      std::ceil(std::log2(static_cast<double>(std::max(2, m.ranks())))) + 4.0;

  // Step loop with in-run recovery: ABFT-detected corruption rolls back to
  // the last checkpoint (or to the input) and re-executes — bounded by
  // kMaxAbftReexecs so persistent corruption still surfaces. Every other
  // error, including the injected kCrashSimulated, unwinds normally; the
  // resume_* entry points restart a crashed run from its snapshot.
  index_t t = t0;
  int reexecs_left = kMaxAbftReexecs;
  while (t < num_tiles) {
  try {
    if (run.real) {
      // Step-boundary recovery hook. Checkpoint and verification both need
      // the state they read to be quiescent, so with lookahead the pipeline
      // drains first — the one scheduling difference ABFT/checkpointing
      // introduce; the computed values are untouched, so healthy factors
      // stay bitwise identical with either feature on or off.
      const bool ckpt_due = ckpt_on && t % ropt.ckpt_every == 0;
      // Checksums are maintained every step, but the full sweep re-reads the
      // whole live region — at bandwidth that alone can cost more than the
      // 10% overhead budget — so verification runs every abft_every steps.
      const bool verifying = run.abft && t > 0 && t % ropt.abft_every == 0;
      if ((ckpt_due || verifying) && run.la) {
        pool.wait(run.a10_ids);
        pool.wait(run.urgent_ids);
        pool.wait(run.lazy_ids);
      } else if (run.abft && run.la) {
        // Maintenance-only step: capture_abft_panel below reads just the
        // urgent stripe, produced by the previous step's urgent tasks; the
        // lazy remainder and A10 solves keep running behind it.
        pool.wait(run.urgent_ids);
      }
      if (verifying) {
        if (fault::enabled() && run.nact > 0 &&
            fault::should_inject(fault::Site::kBitflip)) {
          run.trail(0, t * v) = recover::flip_high_bit(run.trail(0, t * v));
        }
        verify_abft(run, t);
      }
      if (ckpt_due) {
        const auto c0 = std::chrono::steady_clock::now();
        save_lu_snapshot(run, t, perm_pad);
        g_ckpt_seconds.add(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - c0)
                               .count());
      }
      // The crash fires AFTER the save, so with ckpt_every == 1 every crash
      // step is resumable — the save->kill->resume loop of recover_test.
      if (fault::enabled() && fault::should_inject(fault::Site::kCrashAtStep)) {
        throw status_error(Status(StatusCode::kCrashSimulated,
                                  "injected crash at a step boundary",
                                  static_cast<long long>(t)));
      }
      if (run.abft) capture_abft_panel(run, t);
    }

    m.charge_chain(chain_per_step);
    rec.begin_iteration();
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops,
                [&] { reduce_block_column(run, t); });

    // The tournament reads only the urgent stripe the previous step's
    // urgent tasks produced; the previous lazy remainder keeps running.
    if (run.la) pool.wait(run.urgent_ids);
    if (run.real && run.nact > 0 && fault::enabled() &&
        fault::should_inject(fault::Site::kPanelNaN)) {
      run.trail(0, t * v) = std::numeric_limits<T>::quiet_NaN();
    }
    rec.measure(&StepCosts::pivoting_words, &StepCosts::pivoting_flops,
                [&] { tournament_pivot(run, t); });
    rec.measure(&StepCosts::a00_words, &StepCosts::a00_flops,
                [&] { broadcast_a00(run, t); });

    if (run.real) {
      // The winner rows' leading block is final: L below the diagonal and
      // U on/above, both stored by global row (row masking, no swaps).
      for (index_t l = 0; l < v; ++l) {
        const index_t row = run.winners[static_cast<std::size_t>(l)];
        for (index_t j = 0; j < v; ++j) run.lstore(row, t * v + j) = run.a00(l, j);
      }
      g_dm_panel_solve.add(2.0 * static_cast<double>(v) *
                           static_cast<double>(v) *
                           static_cast<double>(sizeof(T)));
      for (index_t l = 0; l < v; ++l) {
        for (index_t j = l; j < v; ++j) {
          const double d = std::abs(static_cast<double>(run.a00(l, j)));
          if (d > run.umax) run.umax = d;
        }
      }
      // Capture the winners' packed slots (the pivot-row gather reads their
      // lazy columns from here), then run the urgent retirement pass: the
      // next panel's columns are complete, so the A10 solve can start while
      // the previous step's lazy remainder is still landing.
      run.winner_slots.clear();
      for (index_t w : run.winners) {
        run.winner_slots.push_back(run.rowpos[static_cast<std::size_t>(w)]);
      }
      run.retire_rows_urgent(t * v);
    }
    run.tracker.eliminate(run.winners);
    perm_pad.insert(perm_pad.end(), run.winners.begin(), run.winners.end());

    const index_t a10_rows = run.tracker.active_count();
    const index_t ncols = (num_tiles - t - 1) * v;
    std::fill(run.pivots_per_x.begin(), run.pivots_per_x.end(), 0);
    for (index_t w : run.winners) {
      ++run.pivots_per_x[static_cast<std::size_t>(run.tracker.x_of_row(w))];
    }
    if (run.real) {
      check(run.nact == a10_rows, "packed workspace out of sync with tracker");
    }

    // Steps 7 and 9 (real work): the 1D panel trsms, decomposed the way the
    // schedule distributes them — one chunk of A10 rows and one chunk of
    // A01 columns per simulated rank (row/column chunks of a triangular
    // solve are exact: Right-side solves are row-independent, Left-side
    // column-independent). A10 is solved IN PLACE in the packed workspace:
    // the solved values are both this step's L columns (copied to lstore)
    // and the Schur update's left operand. With lookahead the A10 chunks go
    // to the pool NOW — before the master blocks on the previous lazy
    // remainder — because they only touch the urgent stripe.
    const int p = m.ranks();
    MatrixView<T> a10 = run.real
                            ? run.trail.block(0, t * v, run.nact, v)
                            : MatrixView<T>();
    const auto a10_chunk = [&run, a10, a10_rows, p, t, v](index_t r) {
      const index_t lo = chunk_offset(a10_rows, p, static_cast<int>(r));
      const index_t cnt = chunk_size(a10_rows, p, static_cast<int>(r));
      if (cnt == 0) return;
      // A10 <- A10 * U00^{-1}: final L columns of the surviving rows.
      xblas::trsm<T>(Side::Right, UpLo::Upper, Trans::None, Diag::NonUnit,
                     T{1}, run.a00.view(), a10.block(lo, 0, cnt, v));
      for (index_t i = lo; i < lo + cnt; ++i) {
        const index_t row = run.rowmap[static_cast<std::size_t>(i)];
        for (index_t j = 0; j < v; ++j) run.lstore(row, t * v + j) = a10(i, j);
      }
      // trsm read+write of the chunk, the U00 operand, and the lstore copy.
      g_dm_panel_solve.add(
          (4.0 * static_cast<double>(cnt) * static_cast<double>(v) +
           static_cast<double>(v) * static_cast<double>(v)) *
          static_cast<double>(sizeof(T)));
    };
    run.a10_ids.clear();
    if (run.real && run.la && a10_rows > 0) {
      for (int r = 0; r < p; ++r) {
        run.a10_ids.push_back(pool.submit(
            [a10_chunk, r] { a10_chunk(static_cast<index_t>(r)); },
            "panel-trsm-a10", sched::TaskCategory::Other,
            static_cast<long long>(t), nullptr, 0, /*retryable=*/true));
      }
    }

    // Step 4: scatter A10; step 5: reduce pivot rows; step 6: scatter A01.
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops, [&] {
      scatter_panel_1d(run, t, /*row_panel=*/true, a10_rows, run.pivots_per_x);
    });
    MatrixView<T> pivotrows;
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops,
                [&] { reduce_pivot_rows(run, t, &pivotrows); });
    if (run.real) {
      // The winners' packed rows are fully consumed (a00 via the
      // tournament, trailing columns via the gather above): replay the
      // retirement swaps on the lazy columns, so the Schur update below
      // sees one contiguous block of survivor rows.
      run.retire_rows_lazy((t + 1) * v);
    }
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops, [&] {
      scatter_panel_1d(run, t, /*row_panel=*/false, ncols, run.pivots_per_x);
    });

    // Steps 7 and 9 (charges): the two panel trsms.
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops, [&] {
      prof::ScopedSpan span("panel-trsm", static_cast<long long>(t));
      m.annotate("panel-trsm");
      for (int r = 0; r < p; ++r) {
        const double rows_r = static_cast<double>(chunk_size(a10_rows, p, r));
        const double cols_r = static_cast<double>(chunk_size(ncols, p, r));
        const auto vv = static_cast<double>(v);
        if (rows_r > 0) m.charge_flops(r, rows_r * vv * vv);
        if (cols_r > 0) m.charge_flops(r, cols_r * vv * vv);
      }
      if (run.real) {
        if (!run.la && a10_rows > 0) {
          sched::parallel_ranks(p, a10_chunk);
        }
        if (ncols > 0) {
          // A01 <- L00^{-1} * A01: final U rows of the pivots.
          sched::parallel_ranks(p, [&](index_t r) {
            const index_t lo = chunk_offset(ncols, p, static_cast<int>(r));
            const index_t cnt = chunk_size(ncols, p, static_cast<int>(r));
            if (cnt == 0) return;
            xblas::trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::Unit,
                           T{1}, run.a00.view(), pivotrows.block(0, lo, v, cnt));
          });
          sched::parallel_ranks(v, [&](index_t l) {
            const index_t row = run.winners[static_cast<std::size_t>(l)];
            for (index_t j = 0; j < ncols; ++j) {
              run.lstore(row, (t + 1) * v + j) = pivotrows(l, j);
            }
          });
          // A01 trsm read+write, the L00 operand, and the lstore copy.
          g_dm_panel_solve.add(
              (4.0 * static_cast<double>(v) * static_cast<double>(ncols) +
               static_cast<double>(v) * static_cast<double>(v)) *
              static_cast<double>(sizeof(T)));
          // Read-only scan of the factored U rows: hard error on a
          // non-finite value, running max|U| for the growth factor.
          double rowmax = 0.0;
          for (index_t l = 0; l < v; ++l) {
            const T* urow = pivotrows.row(l);
            for (index_t j = 0; j < ncols; ++j) {
              const double d = std::abs(static_cast<double>(urow[j]));
              if (!std::isfinite(d)) {
                throw status_error(Status(
                    StatusCode::kNonFinite,
                    "non-finite value in the factored pivot rows",
                    static_cast<long long>(t)));
              }
              if (d > rowmax) rowmax = d;
            }
          }
          if (rowmax > run.umax) run.umax = rowmax;
        }
      }
      m.step_barrier();
    });
    if (run.real && run.amax > 0.0 &&
        run.umax > run.growth_lim * run.amax &&
        run.health.code != StatusCode::kGrowthOverflow) {
      run.soft_breakdown(StatusCode::kGrowthOverflow, t);
    }
    if (run.abft) {
      // Advance the row-sum checksums to cover the post-update trailing
      // accumulator: sum'[i] = sum[i] - panel[i] - (solved A10 row i)·urow.
      // The solved A10 chunks feed both this and the Schur tasks, so with
      // lookahead they must all have landed in lstore first.
      if (run.la) pool.wait(run.a10_ids);
      apply_abft_update<T>(run, t, pivotrows, ncols);
    }

    // Steps 8 and 10: 2.5D distribution; step 11: the Schur update.
    rec.measure(&StepCosts::a11_words, &StepCosts::a11_flops,
                [&] { distribute_panels_2p5d(run, t, a10_rows); });
    rec.measure(&StepCosts::a11_words, &StepCosts::a11_flops,
                [&] { update_a11<T>(run, t, pivotrows); });
    rec.end_iteration(result.step_costs);
    ++t;
  } catch (const status_error& e) {
    // Only ABFT-detected corruption is recoverable in-run; everything else
    // (including the injected crash) unwinds to the caller. The budget
    // bounds re-execution so persistent corruption still surfaces as an
    // error instead of an infinite rollback loop.
    if (e.code() != StatusCode::kDataCorruption || reexecs_left-- <= 0) throw;
    g_abft_reexec.add(1.0);
    if (recover::has_latest(lu_snapshot_key(run))) {
      t = restore_lu_snapshot(run, perm_pad);
      g_ckpt_restores.add(1.0);
      // The step-0 snapshot is a marker: re-derive the state from the input.
      if (t == 0) init_packed_state();
    } else {
      init_packed_state();
      t = 0;
    }
    init_abft_sums(run, t);
  }
  }

  if (run.la) {
    pool.wait(run.a10_ids);
    pool.wait(run.urgent_ids);
    pool.wait(run.lazy_ids);
  }

  // Assemble the user-facing permutation and factors (drop the padding).
  result.perm.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < npad; ++i) {
    const index_t row = perm_pad[static_cast<std::size_t>(i)];
    if (row < n) result.perm.push_back(row);
  }
  check(static_cast<index_t>(result.perm.size()) == n, "permutation must cover all rows");
  if (run.real) {
    check(std::all_of(perm_pad.begin(), perm_pad.begin() + n,
                      [&](index_t r) { return r < n; }),
          "real rows must be eliminated before padding rows");
    result.factors = Matrix<T>(n, n);
    for (index_t i = 0; i < n; ++i) {
      const index_t row = result.perm[static_cast<std::size_t>(i)];
      for (index_t j = 0; j < n; ++j) result.factors(i, j) = run.lstore(row, j);
    }
    result.workspace_words =
        (static_cast<double>(run.trail.size()) +
         static_cast<double>(run.lstore.size())) * words_per_scalar<T>() +
        run.ws.words();
    run.health.growth_factor = run.amax > 0.0 ? run.umax / run.amax : 0.0;
    if (!std::isfinite(run.health.min_pivot)) run.health.min_pivot = 0.0;
    result.health = run.health;
  }
  return result;
}

/// Shared body of the try_* entry points: soft breakdowns come back as a
/// degraded Result (error + completed factors), hard ones as a failed
/// Result, contract violations as kInvalidArgument.
template <typename T>
Result<LuResultT<T>> try_lu(xsim::Machine& m, const grid::Grid3D& g,
                            ConstMatrixView<T> a, const FactorOptions& opt,
                            bool resume = false) {
  try {
    expects(m.real(), "try_conflux_lu requires Real mode");
    LuResultT<T> r = run_conflux_lu<T>(m, g, a.rows(), a, opt, resume);
    if (!r.health.ok()) {
      Status st = r.health.to_status();
      return Result<LuResultT<T>>(std::move(st), std::move(r));
    }
    return std::move(r);
  } catch (const status_error& e) {
    return e.status();
  } catch (const contract_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

}  // namespace

LuResult conflux_lu(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                    const FactorOptions& opt) {
  expects(m.real(), "conflux_lu with a matrix requires Real mode");
  return run_conflux_lu<double>(m, g, a.rows(), a, opt);
}

LuResultF conflux_lu(xsim::Machine& m, const grid::Grid3D& g, ConstViewF a,
                     const FactorOptions& opt) {
  expects(m.real(), "conflux_lu with a matrix requires Real mode");
  return run_conflux_lu<float>(m, g, a.rows(), a, opt);
}

Result<LuResult> try_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                                ConstViewD a, const FactorOptions& opt) {
  return try_lu<double>(m, g, a, opt);
}

Result<LuResultF> try_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                                 ConstViewF a, const FactorOptions& opt) {
  return try_lu<float>(m, g, a, opt);
}

LuResult resume_conflux_lu(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                           const FactorOptions& opt) {
  expects(m.real(), "resume_conflux_lu requires Real mode");
  return run_conflux_lu<double>(m, g, a.rows(), a, opt, /*resume=*/true);
}

LuResultF resume_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                            ConstViewF a, const FactorOptions& opt) {
  expects(m.real(), "resume_conflux_lu requires Real mode");
  return run_conflux_lu<float>(m, g, a.rows(), a, opt, /*resume=*/true);
}

Result<LuResult> try_resume_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                                       ConstViewD a, const FactorOptions& opt) {
  return try_lu<double>(m, g, a, opt, /*resume=*/true);
}

Result<LuResultF> try_resume_conflux_lu(xsim::Machine& m, const grid::Grid3D& g,
                                        ConstViewF a, const FactorOptions& opt) {
  return try_lu<float>(m, g, a, opt, /*resume=*/true);
}

LuResult conflux_lu_trace(xsim::Machine& m, const grid::Grid3D& g, index_t n,
                          const FactorOptions& opt) {
  expects(!m.real(), "conflux_lu_trace requires Trace mode");
  return run_conflux_lu<double>(m, g, n, ConstViewD(), opt);
}

template <typename T>
void conflux_lu_solve(const LuResultT<T>& lu, MatrixView<T> b) {
  const index_t n = lu.factors.rows();
  expects(n > 0, "solve requires Real-mode factors");
  expects(b.rows() == n, "right-hand side must match the matrix");
  // Apply the permutation, then one pair of blocked trsm panel solves over
  // the whole multi-RHS panel.
  Matrix<T> pb(n, b.cols());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      pb(i, j) = b(lu.perm[static_cast<std::size_t>(i)], j);
    }
  }
  xblas::trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::Unit, T{1},
                 lu.factors.view(), pb.view());
  xblas::trsm<T>(Side::Left, UpLo::Upper, Trans::None, Diag::NonUnit, T{1},
                 lu.factors.view(), pb.view());
  copy<T>(pb.view(), b);
}

template void conflux_lu_solve<float>(const LuResultF&, ViewF);
template void conflux_lu_solve<double>(const LuResult&, ViewD);

}  // namespace conflux::factor
