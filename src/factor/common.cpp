#include "factor/common.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>

#include "support/check.hpp"

namespace conflux::factor {

bool lookahead_enabled(const FactorOptions& opt) {
  if (opt.lookahead >= 0) return opt.lookahead > 0;
  static const bool env_on = [] {
    const char* s = std::getenv("CONFLUX_LOOKAHEAD");
    return s != nullptr && *s != '\0' && std::strcmp(s, "0") != 0;
  }();
  return env_on;
}

index_t default_block_size(index_t n, const grid::Grid3D& g) {
  const auto c = static_cast<index_t>(g.pz());
  index_t v = std::max<index_t>(2 * c, 64);
  v = (v / c) * c;  // keep v a multiple of c for the k-slice split
  if (v > n) {
    // Tiny matrices: one block, still a multiple of c via padding upstream.
    v = ((n + c - 1) / c) * c;
  }
  return std::max<index_t>(v, c);
}

RowTracker::RowTracker(index_t num_rows, index_t block, int px)
    : block_(block), px_(px) {
  expects(num_rows >= 0 && block >= 1 && px >= 1, "bad tracker shape");
  eliminated_.assign(static_cast<std::size_t>(num_rows), false);
  active_.resize(static_cast<std::size_t>(num_rows));
  for (index_t r = 0; r < num_rows; ++r) active_[static_cast<std::size_t>(r)] = r;
  counts_x_.assign(static_cast<std::size_t>(px), 0);
  for (index_t r = 0; r < num_rows; ++r) {
    ++counts_x_[static_cast<std::size_t>(x_of_row(r))];
  }
}

std::vector<index_t> RowTracker::rows_for_x(int x) const {
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(count_for_x(x)));
  for (index_t r : active_) {
    if (x_of_row(r) == x) out.push_back(r);
  }
  return out;
}

void RowTracker::rows_for_x_into(int x, std::vector<index_t>& out) const {
  out.clear();
  for (index_t r : active_) {
    if (x_of_row(r) == x) out.push_back(r);
  }
}

void RowTracker::eliminate(const std::vector<index_t>& rows) {
  for (index_t r : rows) {
    expects(r >= 0 && r < static_cast<index_t>(eliminated_.size()), "row out of range");
    expects(!eliminated_[static_cast<std::size_t>(r)], "row eliminated twice");
    eliminated_[static_cast<std::size_t>(r)] = true;
    --counts_x_[static_cast<std::size_t>(x_of_row(r))];
  }
  std::erase_if(active_, [&](index_t r) {
    return eliminated_[static_cast<std::size_t>(r)];
  });
}

std::vector<index_t> RowTracker::sample_active(index_t count, Rng& rng) const {
  expects(count <= active_count(), "cannot sample more rows than are active");
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count * 4 < active_count()) {
    // Sparse draw: rejection sampling avoids copying the whole active set
    // (Trace runs at N = 2^19 sample v rows out of hundreds of thousands).
    std::set<index_t> seen;
    while (static_cast<index_t>(seen.size()) < count) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(active_.size())));
      seen.insert(active_[idx]);
    }
    out.assign(seen.begin(), seen.end());
    return out;
  }
  // Dense draw: partial Fisher-Yates on a copy.
  std::vector<index_t> pool = active_;
  for (index_t k = 0; k < count; ++k) {
    const auto pick =
        k + static_cast<index_t>(rng.uniform_int(static_cast<std::uint64_t>(
                static_cast<std::size_t>(active_count() - k))));
    std::swap(pool[static_cast<std::size_t>(k)], pool[static_cast<std::size_t>(pick)]);
    out.push_back(pool[static_cast<std::size_t>(k)]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

index_t chunk_offset(index_t total, int parts, int r) {
  expects(total >= 0 && parts >= 1 && r >= 0 && r <= parts, "bad chunk split");
  return total * static_cast<index_t>(r) / static_cast<index_t>(parts);
}

}  // namespace conflux::factor
