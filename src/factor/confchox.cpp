#include "factor/confchox.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>

#include "blas/blas.hpp"
#include "blas/lapack.hpp"
#include "recover/abft.hpp"
#include "recover/options.hpp"
#include "recover/snapshot.hpp"
#include "sched/rank_parallel.hpp"
#include "sched/taskpool.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "tensor/workspace.hpp"
#include "xsim/comm.hpp"

namespace conflux::factor {

namespace {

using xblas::Diag;
using xblas::Side;
using xblas::Trans;
using xblas::UpLo;

// Measured data movement (DESIGN.md "Observability"); same counter names
// as conflux_lu.cpp — registration is idempotent by name, so both factor
// cores feed one per-phase taxonomy. Read-only on the data path.
const metrics::Counter g_dm_panel_gather("dm.panel_gather.bytes");
const metrics::Counter g_dm_panel_solve("dm.panel_solve.bytes");
const metrics::Counter g_dm_schur_operand("dm.schur_operand.bytes");
const metrics::Counter g_dm_schur_update("dm.schur_update.bytes");

// Recovery counters (DESIGN.md "Recovery model"); shared by name with
// conflux_lu.cpp so both factor cores feed one recover.* ledger.
const metrics::Counter g_ckpt_seconds("recover.ckpt.seconds");
const metrics::Counter g_ckpt_restores("recover.ckpt.restores");
const metrics::Counter g_abft_verified("recover.abft.verified");
const metrics::Counter g_abft_detected("recover.abft.detected");
const metrics::Counter g_abft_reexec("recover.abft.reexec");

/// ABFT re-execution budget per run (see conflux_lu.cpp).
constexpr int kMaxAbftReexecs = 8;

/// Workspace slot ids (tensor/workspace.hpp arena).
enum WsSlot : std::size_t { kA00 = 0 };

/// The whole mutable state of one factorization run, templated on the
/// factor scalar.
///
/// Real-mode data path (DESIGN.md "Packed trailing workspace"): ONE
/// npad x npad buffer `fac` is both the trailing accumulator and the factor
/// store. Cholesky retires rows and columns in natural order, so the live
/// trailing workspace at step t is simply the block (t*v.., t*v..) — already
/// contiguous, no row index map needed — and everything to its left IS the
/// finished factor: the panel trsm solves in place and its output never
/// moves again. The pz layered partial sums of the simulated machine are
/// realized inside gemm/syrk's fixed k-order (one beta=1 update with k = v
/// accumulates the k-slices in ascending z), so per-layer buffers never
/// exist.
///
/// Execution (DESIGN.md "Pipelined execution"): each fixed kRowBlock row
/// block of the symmetric Schur update is split into an URGENT piece (its
/// contribution to the next panel — tile column t+1) and a LAZY remainder.
/// The decomposition is identical in both execution modes (bitwise-equal
/// factors); with lookahead the pieces run on the persistent TaskPool with
/// explicit dependencies (urgent/lazy after this step's panel trsm chunks
/// and the previous lazy remainder), so step t+1's potrf and panel solve
/// overlap step t's trailing update.
template <typename T>
struct CholRun {
  xsim::Machine& m;
  const grid::Grid3D& g;
  index_t n = 0;
  index_t npad = 0;
  index_t v = 0;
  index_t num_tiles = 0;
  bool real = false;
  bool la = false;
  std::vector<int> all_ranks;
  Matrix<T> fac;  // trailing accumulator left of the frontier, factor right
  Workspace ws;

  // Lookahead task handles (empty when la == false).
  std::vector<sched::TaskId> trsm_ids, urgent_ids, lazy_ids;
  std::vector<sched::TaskId> dep_scratch;

  // Breakdown monitoring (DESIGN.md "Failure model"; read-only on the data
  // path). Cholesky has no element growth, so only the input magnitude, the
  // diagonal pivots l_kk^2, and non-finite contamination are tracked; a
  // failed potrf is always a hard breakdown (the panel solve needs the full
  // factored diagonal block).
  double amax = 0.0;
  double pivot_tol = 0.0;
  FactorHealth health;

  // ABFT checksum state (DESIGN.md "Recovery model"): abft_sum[r] is the
  // PREDICTED sum of global row r's live lower-triangle cells, columns
  // [t*v, r], kept in double regardless of T. Cholesky never moves rows, so
  // the vector is indexed by global row and entries simply fall out of use
  // as the frontier passes them. Verification is read-only: healthy factors
  // are bitwise identical with ABFT on or off.
  bool abft = false;
  std::vector<double> abft_sum;    // predicted live row sums, global rows
  std::vector<double> abft_panel;  // this step's panel row sums, pre-trsm
  std::vector<double> abft_cum;    // prefix column-sum scratch, length v

  // Grid-line cache (common.hpp): at most px*py z-lines, fetched once each.
  GridLineCache zlines;

  CholRun(xsim::Machine& machine, const grid::Grid3D& grid, index_t size,
          index_t block)
      : m(machine), g(grid), n(size), v(block) {
    npad = (n + v - 1) / v * v;
    num_tiles = npad / v;
    real = m.real();
    all_ranks = g.all();
    zlines = GridLineCache(g.px(), g.py());
  }

  const std::vector<int>& z_line(int x, int y) {
    return zlines.get(x, y, [this](int a, int b) { return g.z_line(a, b); });
  }

  /// Active rows (>= tile `first`) whose tile row has grid residue q mod dim.
  index_t rows_with_residue(index_t first, int q, int dim) const {
    return grid::cyclic_local_count(first, num_tiles, q, dim) * v;
  }
};

long long approx_msgs(index_t items, int peers) {
  return std::min<long long>(static_cast<long long>(std::max<index_t>(items, 0)),
                             static_cast<long long>(peers));
}

// ---------------------------------------------------------------------------
// Checkpoint/restart (DESIGN.md "Recovery model"). Cholesky's entire mutable
// state is the one `fac` buffer plus the scalar trackers — rows never move,
// so unlike LU there are no maps or elimination records to capture, and the
// snapshot is the buffer in bulk at a drained step boundary. Restoring it
// and re-executing the remaining steps is bitwise identical to the
// uninterrupted run.
// ---------------------------------------------------------------------------

template <typename T>
recover::SnapshotKey chol_snapshot_key(const CholRun<T>& run) {
  recover::SnapshotKey key;
  key.kind = recover::FactorKind::kCholesky;
  key.scalar = sizeof(T) == sizeof(double) ? 'd' : 'f';
  key.n = static_cast<std::int64_t>(run.n);
  key.v = static_cast<std::int64_t>(run.v);
  key.px = run.g.px();
  key.py = run.g.py();
  key.pz = run.g.pz();
  return key;
}

template <typename T>
void save_chol_snapshot(CholRun<T>& run, index_t t) {
  recover::SnapshotWriter w(chol_snapshot_key(run),
                            static_cast<std::int64_t>(t));
  // Step 0 is a pure function of the input the resume entry point is handed
  // anyway: an empty marker proves resumability without serializing the
  // matrix (see save_lu_snapshot).
  if (t == 0) {
    recover::store_blob(chol_snapshot_key(run), std::move(w).seal());
    return;
  }
  w.put_f64(run.amax);
  w.put_i64(static_cast<std::int64_t>(run.health.code));
  w.put_i64(run.health.first_breakdown_step);
  w.put_i64(run.health.singular_pivots);
  w.put_i64(run.health.near_singular_pivots);
  w.put_f64(run.health.growth_factor);
  w.put_f64(run.health.min_pivot);
  // Only the lower triangle (diagonal included): init_state never fills the
  // strict upper triangle and no phase of the factorization reads or writes
  // it, so restoring the lower rows onto a freshly initialized `fac` is
  // bitwise complete — at half the serialization volume.
  for (index_t r = 0; r < run.npad; ++r) {
    w.put_bytes(&run.fac(r, 0), static_cast<std::size_t>(r + 1) * sizeof(T));
  }
  recover::store_blob(chol_snapshot_key(run), std::move(w).seal());
}

/// Restore the latest snapshot into `run` (whose `fac` was freshly
/// initialized from the input — the strict upper triangle is NOT in the
/// payload) and return the step to resume from; a corrupt or inconsistent
/// snapshot throws kCheckpointInvalid.
template <typename T>
index_t restore_chol_snapshot(CholRun<T>& run) {
  const recover::SnapshotKey key = chol_snapshot_key(run);
  const auto bad = [](const std::string& what) {
    throw status_error(Status(StatusCode::kCheckpointInvalid, what));
  };
  const recover::Blob blob = recover::latest_blob(key);
  if (blob.empty()) bad("no checkpoint to resume " + key.to_string() + " from");
  recover::SnapshotReader r(key, blob);
  const auto t = static_cast<index_t>(r.step());
  if (t >= run.num_tiles) bad("snapshot step past the end of the schedule");
  // A step-0 snapshot is an empty marker: the caller re-derives the state
  // from the input (see restore_lu_snapshot).
  if (t == 0) {
    if (r.remaining() != 0) bad("step-0 snapshot must be an empty marker");
    return 0;
  }
  run.amax = r.get_f64();
  const auto code = static_cast<StatusCode>(r.get_i64());
  // kNearSingularPivot is the only soft breakdown Cholesky ever records
  // (everything else is a hard throw that leaves no snapshot behind).
  if (code != StatusCode::kOk && code != StatusCode::kNearSingularPivot) {
    bad("snapshot health carries a code no factorization records");
  }
  run.health.code = code;
  run.health.first_breakdown_step = r.get_i64();
  run.health.singular_pivots = r.get_i64();
  run.health.near_singular_pivots = r.get_i64();
  run.health.growth_factor = r.get_f64();
  run.health.min_pivot = r.get_f64();
  for (index_t row = 0; row < run.npad; ++row) {
    r.get_bytes(&run.fac(row, 0), static_cast<std::size_t>(row + 1) * sizeof(T));
  }
  return t;
}

// ---------------------------------------------------------------------------
// ABFT maintenance. Invariant at the top of step t: abft_sum[r] equals the
// sum of fac(r, t*v .. r) — row r's live lower-triangle cells — up to the
// rounding drift between the double-precision prediction and the
// T-precision Schur arithmetic. One step advances it as
//   sum_{t+1}[r] = sum_t[r] - panel_t[r] - sum_{j in [off, r]} L(r,:)·L(j,:)
// where panel_t[r] is the pre-trsm panel row sum (those v columns leave the
// live region) and the last term is the symmetric Schur update restricted
// to row sums. Factoring out L(r,k) turns it into one dot with a running
// prefix of the panel's column sums — O(panel_rows * v), same as LU.
// ---------------------------------------------------------------------------

template <typename T>
void init_chol_abft(CholRun<T>& run, index_t t) {
  run.abft_sum.assign(static_cast<std::size_t>(run.npad), 0.0);
  run.abft_panel.assign(static_cast<std::size_t>(run.npad), 0.0);
  run.abft_cum.assign(static_cast<std::size_t>(run.v), 0.0);
  const index_t col0 = t * run.v;
  for (index_t r = col0; r < run.npad; ++r) {
    double s = 0.0;
    for (index_t j = col0; j <= r; ++j) {
      s += static_cast<double>(run.fac(r, j));
    }
    run.abft_sum[static_cast<std::size_t>(r)] = s;
  }
}

template <typename T>
void capture_chol_abft_panel(CholRun<T>& run, index_t t) {
  const index_t col0 = t * run.v;
  for (index_t r = col0 + run.v; r < run.npad; ++r) {
    const T* row = &run.fac(r, col0);
    double s = 0.0;
    for (index_t j = 0; j < run.v; ++j) s += static_cast<double>(row[j]);
    run.abft_panel[static_cast<std::size_t>(r)] = s;
  }
}

/// Roll the predicted sums forward across this step's Schur update. Must run
/// after the panel trsm (the panel columns now hold the solved L10 values).
template <typename T>
void apply_chol_abft_update(CholRun<T>& run, index_t t, index_t panel_rows) {
  const index_t off = (t + 1) * run.v;
  std::fill(run.abft_cum.begin(), run.abft_cum.end(), 0.0);
  for (index_t p = 0; p < panel_rows; ++p) {
    const T* lrow = &run.fac(off + p, t * run.v);
    double upd = 0.0;
    for (index_t k = 0; k < run.v; ++k) {
      const double lv = static_cast<double>(lrow[k]);
      // The prefix includes row p itself: the diagonal cell fac(r, r) is
      // part of the live lower triangle.
      run.abft_cum[static_cast<std::size_t>(k)] += lv;
      upd += lv * run.abft_cum[static_cast<std::size_t>(k)];
    }
    run.abft_sum[static_cast<std::size_t>(off + p)] -=
        run.abft_panel[static_cast<std::size_t>(off + p)] + upd;
  }
}

/// One row's verification scan; unrolled accumulators as in conflux_lu.cpp's
/// abft_row_ok (the comparison is tolerance-based, never bitwise).
template <typename T>
bool chol_abft_row_ok(const T* row, index_t width, double predicted) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  index_t j = 0;
  for (; j + 4 <= width; j += 4) {
    const double x0 = static_cast<double>(row[j]);
    const double x1 = static_cast<double>(row[j + 1]);
    const double x2 = static_cast<double>(row[j + 2]);
    const double x3 = static_cast<double>(row[j + 3]);
    a0 += x0;
    a1 += x1;
    a2 += x2;
    a3 += x3;
    m0 += std::abs(x0);
    m1 += std::abs(x1);
    m2 += std::abs(x2);
    m3 += std::abs(x3);
  }
  for (; j < width; ++j) {
    const double x = static_cast<double>(row[j]);
    a0 += x;
    m0 += std::abs(x);
  }
  const double actual = (a0 + a1) + (a2 + a3);
  const double mag = (m0 + m1) + (m2 + m3);
  return std::abs(actual - predicted) <= 0.05 * (mag + 1.0);
}

/// Read-only verification of the invariant (tolerance rationale in
/// conflux_lu.cpp's verify_abft). Parallel row chunks over the drained pool,
/// one task per row scan, so the verdict is thread-count independent; the
/// lowest bad row is reported.
template <typename T>
void verify_chol_abft(CholRun<T>& run, index_t t) {
  g_abft_verified.add(1.0);
  const index_t col0 = t * run.v;
  const index_t live = run.npad - col0;
  constexpr index_t kRowsPerChunk = 128;
  const index_t nchunks = (live + kRowsPerChunk - 1) / kRowsPerChunk;
  std::atomic<index_t> bad{run.npad};
  sched::parallel_ranks(nchunks, [&](index_t c) {
    const index_t lo = col0 + c * kRowsPerChunk;
    const index_t hi = std::min(run.npad, lo + kRowsPerChunk);
    for (index_t r = lo; r < hi; ++r) {
      if (chol_abft_row_ok(&run.fac(r, col0), r - col0 + 1,
                           run.abft_sum[static_cast<std::size_t>(r)])) {
        continue;
      }
      index_t seen = bad.load(std::memory_order_relaxed);
      while (r < seen &&
             !bad.compare_exchange_weak(seen, r, std::memory_order_relaxed)) {
      }
      break;
    }
  });
  const index_t bad_row = bad.load(std::memory_order_relaxed);
  if (bad_row < run.npad) {
    g_abft_detected.add(1.0);
    throw status_error(Status(
        StatusCode::kDataCorruption,
        "ABFT row-sum mismatch in the trailing accumulator (row " +
            std::to_string(bad_row) + ")",
        static_cast<long long>(t)));
  }
}

// Step 1: reduce the trailing block column (rows t*v.., width v) onto layer
// l_t; charged per x-group like COnfLUX's column reduction. Real mode has
// nothing to execute: the trailing accumulator already holds the sums.
template <typename T>
void reduce_block_column(CholRun<T>& run, index_t t) {
  prof::ScopedSpan span("reduce-column", static_cast<long long>(t));
  run.m.annotate("reduce-column");
  const int pz = run.g.pz();
  const int y_t = static_cast<int>(t) % run.g.py();
  const int l_t = static_cast<int>(t) % pz;
  if (pz > 1) {
    for (int x = 0; x < run.g.px(); ++x) {
      const index_t rows_x = run.rows_with_residue(t, x, run.g.px());
      if (rows_x == 0) continue;
      xsim::comm::reduce(run.m, run.z_line(x, y_t), static_cast<std::size_t>(l_t),
                         static_cast<double>(rows_x * run.v));
    }
  }
  run.m.step_barrier();
}

// Steps 2-3: potrf of the diagonal block on its owner, broadcast to all.
// The factored block is written back into the trailing buffer: that slot is
// the finished factor from here on. With lookahead the previous step's
// urgent tasks — the producers of this diagonal block — are drained first;
// the previous lazy remainder keeps running on the pool.
template <typename T>
void factor_and_broadcast_a00(CholRun<T>& run, index_t t, MatrixView<T>* a00) {
  prof::ScopedSpan span("potrf-a00", static_cast<long long>(t));
  if (run.la) sched::TaskPool::instance().wait(run.urgent_ids);
  run.m.annotate("potrf-a00");
  const int x_t = static_cast<int>(t) % run.g.px();
  const int y_t = static_cast<int>(t) % run.g.py();
  const int l_t = static_cast<int>(t) % run.g.pz();
  const int owner = run.g.rank_of(x_t, y_t, l_t);
  const auto vv = static_cast<double>(run.v);
  run.m.charge_flops(owner, vv * vv * vv / 3.0);
  xsim::comm::broadcast(run.m, run.all_ranks, static_cast<std::size_t>(owner),
                        vv * vv);
  if (run.real) {
    const index_t o = t * run.v;
    *a00 = run.ws.template zeroed<T>(kA00, run.v, run.v);
    for (index_t i = 0; i < run.v; ++i) {
      for (index_t j = 0; j <= i; ++j) (*a00)(i, j) = run.fac(o + i, o + j);
    }
    if (fault::enabled()) {
      if (fault::should_inject(fault::Site::kPanelNaN)) {
        (*a00)(run.v - 1, 0) = std::numeric_limits<T>::quiet_NaN();
      }
      if (fault::should_inject(fault::Site::kZeroPivot)) {
        (*a00)(run.v - 1, run.v - 1) = T{};
      }
    }
    // Read-only scan of the accumulated diagonal block: every trailing row
    // passes through a diagonal block eventually, so non-finite Schur
    // contamination is caught here before potrf turns it into garbage.
    for (index_t i = 0; i < run.v; ++i) {
      for (index_t j = 0; j <= i; ++j) {
        if (!std::isfinite(static_cast<double>((*a00)(i, j)))) {
          throw status_error(Status(
              StatusCode::kNonFinite,
              "non-finite value in the diagonal block entering potrf",
              static_cast<long long>(t)));
        }
      }
    }
    const index_t info = xblas::potrf<T>(*a00);
    if (info != 0) {
      throw status_error(Status(
          StatusCode::kNotPositiveDefinite,
          "diagonal block is not positive definite (potrf minor " +
              std::to_string(info) + ")",
          static_cast<long long>(t)));
    }
    for (index_t k = 0; k < run.v; ++k) {
      const double l_kk = static_cast<double>((*a00)(k, k));
      const double d = l_kk * l_kk;  // the elimination pivot
      if (d < run.health.min_pivot) run.health.min_pivot = d;
      if (run.pivot_tol > 0.0 && d < run.pivot_tol * run.amax) {
        ++run.health.near_singular_pivots;
        if (run.health.first_breakdown_step < 0) {
          run.health.first_breakdown_step = static_cast<long long>(t);
        }
        run.health.code = StatusCode::kNearSingularPivot;
      }
    }
    for (index_t i = 0; i < run.v; ++i) {
      for (index_t j = 0; j <= i; ++j) run.fac(o + i, o + j) = (*a00)(i, j);
    }
    // Diagonal triangle out of the accumulator and factored back in (two
    // read+write passes over v(v+1)/2 elements).
    g_dm_panel_gather.add(2.0 * static_cast<double>(run.v) *
                          static_cast<double>(run.v + 1) *
                          static_cast<double>(sizeof(T)));
  }
  run.m.step_barrier();
}

// Step 4: scatter the sub-diagonal panel into 1D row chunks over all ranks.
template <typename T>
void scatter_panel_1d(CholRun<T>& run, index_t t, index_t panel_rows) {
  prof::ScopedSpan span("scatter-panel", static_cast<long long>(t));
  run.m.annotate("scatter-panel");
  const int p = run.m.ranks();
  const int px = run.g.px();
  const int y_t = static_cast<int>(t) % run.g.py();
  const int l_t = static_cast<int>(t) % run.g.pz();
  for (int x = 0; x < px; ++x) {
    const index_t rows_x = run.rows_with_residue(t + 1, x, px);
    if (rows_x == 0) continue;
    run.m.charge_send(run.g.rank_of(x, y_t, l_t),
                      static_cast<double>(rows_x * run.v), approx_msgs(rows_x, p / px));
  }
  for (int r = 0; r < p; ++r) {
    const index_t mine = chunk_size(panel_rows, p, r);
    if (mine == 0) continue;
    run.m.charge_recv(r, static_cast<double>(mine * run.v), approx_msgs(mine, px));
  }
  run.m.step_barrier();
}

// Step 5: local trsm L10 = A10 * L00^{-T} on the 1D chunks, IN PLACE in the
// trailing buffer: the solved panel is simultaneously the factor's column
// block and the Schur update's operand. The chunk decomposition is one
// piece per simulated rank in both execution modes (Right-side solves are
// row-independent, so chunking is exact); with lookahead the chunks are
// pool tasks overlapping the previous step's lazy remainder, whose writes
// are disjoint from this panel's column block.
template <typename T>
void trsm_panel(CholRun<T>& run, index_t t, index_t panel_rows,
                ConstMatrixView<T> a00) {
  prof::ScopedSpan span("panel-trsm", static_cast<long long>(t));
  run.m.annotate("panel-trsm");
  const auto vv = static_cast<double>(run.v);
  const int p = run.m.ranks();
  for (int r = 0; r < p; ++r) {
    const double mine = static_cast<double>(chunk_size(panel_rows, p, r));
    if (mine > 0) run.m.charge_flops(r, mine * vv * vv);
  }
  run.trsm_ids.clear();
  if (run.real && panel_rows > 0) {
    MatrixView<T> panel = run.fac.block((t + 1) * run.v, t * run.v, panel_rows, run.v);
    const index_t v = run.v;
    const auto chunk = [panel, a00, panel_rows, p, v](index_t r) {
      const index_t lo = chunk_offset(panel_rows, p, static_cast<int>(r));
      const index_t cnt = chunk_size(panel_rows, p, static_cast<int>(r));
      if (cnt == 0) return;
      xblas::trsm<T>(Side::Right, UpLo::Lower, Trans::Transpose, Diag::NonUnit,
                     T{1}, a00, panel.block(lo, 0, cnt, v));
      // In-place trsm read+write of the chunk plus the L00 operand.
      g_dm_panel_solve.add(
          (2.0 * static_cast<double>(cnt) * static_cast<double>(v) +
           static_cast<double>(v) * static_cast<double>(v)) *
          static_cast<double>(sizeof(T)));
    };
    if (run.la) {
      sched::TaskPool& pool = sched::TaskPool::instance();
      for (int r = 0; r < p; ++r) {
        // Retryable: the injected transient fault fires before the body
        // runs, so the in-place solve has not happened on a retried attempt
        // and re-running it is exact (same for the Schur pieces below).
        run.trsm_ids.push_back(pool.submit(
            [chunk, r] { chunk(static_cast<index_t>(r)); }, "panel-trsm",
            sched::TaskCategory::Other, static_cast<long long>(t), nullptr, 0,
            /*retryable=*/true));
      }
    } else {
      sched::parallel_ranks(p, chunk);
    }
  }
  run.m.step_barrier();
}

// Step 6: distribute L10's k-slices to the 2.5D tile owners. Unlike LU each
// rank needs BOTH its tile rows' slices and its tile columns' slices (the
// update is L10_i * L10_j^T), which is why Cholesky communicates as much as
// LU here despite half the flops (Table 1).
template <typename T>
void distribute_panel_2p5d(CholRun<T>& run, index_t t, index_t panel_rows) {
  prof::ScopedSpan span("distribute-2.5d", static_cast<long long>(t));
  run.m.annotate("distribute-2.5d");
  const int p = run.m.ranks();
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const index_t slice = run.v / pz;
  for (int r = 0; r < p; ++r) {
    const index_t mine = chunk_size(panel_rows, p, r);
    if (mine == 0) continue;
    // Each row feeds the py*pz row-owners and the px*pz column-owners, a
    // v/pz slice each: (px + py) * v words per row.
    run.m.charge_send(r,
                      static_cast<double>(mine) * static_cast<double>(py + px) *
                          static_cast<double>(run.v),
                      static_cast<long long>(py + px) * pz);
  }
  for (int x = 0; x < px; ++x) {
    for (int y = 0; y < py; ++y) {
      const index_t rows_x = run.rows_with_residue(t + 1, x, px);
      const index_t cols_y = run.rows_with_residue(t + 1, y, py);
      if (rows_x + cols_y == 0) continue;
      for (int z = 0; z < pz; ++z) {
        run.m.charge_recv(run.g.rank_of(x, y, z),
                          static_cast<double>((rows_x + cols_y) * slice),
                          approx_msgs(rows_x + cols_y, px + py));
      }
    }
  }
  run.m.step_barrier();
}

// Step 7: symmetric Schur update of the trailing accumulator: layer z's
// k-slice contribution is realized inside the fixed k-order of the beta=1
// gemm/syrk calls (k = v spans the slices in ascending z).
//
// Decomposition (identical in both execution modes, so the factors agree
// bitwise): one URGENT and one LAZY piece per fixed kRowBlock row block.
// The urgent piece is the block's contribution to tile column t+1 — the
// next step's diagonal block and panel column — and the lazy piece is the
// rest; every lower-triangle element is written by exactly one piece with
// a fixed k-order (DESIGN.md). Requires v <= kRowBlock (enforced upstream
// by default_block_size; asserted here), so the urgent cut never lands
// inside a later block's diagonal.
template <typename T>
void update_a11(CholRun<T>& run, index_t t, index_t panel_rows) {
  prof::ScopedSpan span("schur-update", static_cast<long long>(t));
  const int px = run.g.px();
  const int py = run.g.py();
  const int pz = run.g.pz();
  const index_t slice = run.v / pz;
  const int y_u = static_cast<int>(t + 1) % py;  // owner of tile column t+1

  run.m.annotate("schur-update-urgent");
  if (panel_rows > 0) {
    for (int x = 0; x < px; ++x) {
      const auto rows_x = static_cast<double>(run.rows_with_residue(t + 1, x, px));
      if (rows_x == 0.0) continue;
      for (int z = 0; z < pz; ++z) {
        run.m.charge_flops(run.g.rank_of(x, y_u, z),
                           rows_x * static_cast<double>(run.v) *
                               static_cast<double>(slice));
      }
    }
  }
  run.m.annotate("schur-update-lazy");
  for (int x = 0; x < px; ++x) {
    const auto rows_x = static_cast<double>(run.rows_with_residue(t + 1, x, px));
    if (rows_x == 0.0) continue;
    for (int y = 0; y < py; ++y) {
      const index_t cols_y = run.rows_with_residue(t + 1, y, py);
      const index_t lazy_cols = cols_y - (y == y_u ? run.v : 0);
      if (lazy_cols <= 0) continue;
      for (int z = 0; z < pz; ++z) {
        run.m.charge_flops(run.g.rank_of(x, y, z),
                           rows_x * static_cast<double>(lazy_cols) *
                               static_cast<double>(slice));
      }
    }
  }

  std::vector<sched::TaskId> prev_lazy = std::move(run.lazy_ids);
  run.urgent_ids.clear();
  run.lazy_ids.clear();
  if (run.real && panel_rows > 0) {
    // The urgent cut at column v assumes v <= kRowBlock (true for
    // default_block_size and every practical configuration). For larger
    // hand-picked blocks the cut would land inside later blocks' diagonal
    // syrks, so each row block degrades to one unsplit urgent piece —
    // still a fixed decomposition, just with nothing to pipeline.
    const bool split = run.v <= sched::kRowBlock;
    const index_t off = (t + 1) * run.v;
    const index_t v = run.v;
    ConstMatrixView<T> panel = run.fac.block(off, t * run.v, panel_rows, v);
    const index_t nblocks = sched::num_row_blocks(panel_rows);

    // Measured Schur traffic per gemm/syrk call: operand reads (`a` and
    // `b` element counts; a syrk's single operand goes in `a`) and the
    // beta=1 read+write of the `c` output cells. Counted per call — the
    // re-reads of shared panel blocks across tasks are real traffic.
    const auto count_schur = [](double a_el, double b_el, double c_el) {
      if (!metrics::enabled()) return;
      const double sb = static_cast<double>(sizeof(T));
      g_dm_schur_operand.add((a_el + b_el) * sb);
      g_dm_schur_update.add(2.0 * c_el * sb);
    };
    const auto tri = [](index_t k) {
      return static_cast<double>(k) * static_cast<double>(k + 1) / 2.0;
    };
    const auto el = [](index_t r, index_t c) {
      return static_cast<double>(r) * static_cast<double>(c);
    };
    // Urgent piece of row block blk: its cells in columns [off, off + v)
    // (the whole block when the split is off).
    const auto urgent_block = [&run, panel, panel_rows, off, v, split,
                               count_schur, tri, el](index_t blk) {
      const index_t i0 = blk * sched::kRowBlock;
      const index_t bn = std::min(sched::kRowBlock, panel_rows - i0);
      if (!split) {
        if (i0 > 0) {
          count_schur(el(bn, v), el(i0, v), el(bn, i0));
          xblas::gemm<T>(Trans::None, Trans::Transpose, T{-1},
                         panel.block(i0, 0, bn, v), panel.block(0, 0, i0, v),
                         T{1}, run.fac.block(off + i0, off, bn, i0));
        }
        count_schur(el(bn, v), 0.0, tri(bn));
        xblas::syrk<T>(UpLo::Lower, Trans::None, T{-1},
                       panel.block(i0, 0, bn, v), T{1},
                       run.fac.block(off + i0, off + i0, bn, bn));
        return;
      }
      if (i0 == 0) {
        const index_t dn = std::min(v, bn);
        count_schur(el(dn, v), 0.0, tri(dn));
        xblas::syrk<T>(UpLo::Lower, Trans::None, T{-1},
                       panel.block(0, 0, dn, v), T{1},
                       run.fac.block(off, off, dn, dn));
        if (bn > v) {
          count_schur(el(bn - v, v), el(v, v), el(bn - v, v));
          xblas::gemm<T>(Trans::None, Trans::Transpose, T{-1},
                         panel.block(v, 0, bn - v, v), panel.block(0, 0, v, v),
                         T{1}, run.fac.block(off + v, off, bn - v, v));
        }
      } else {
        count_schur(el(bn, v), el(v, v), el(bn, v));
        xblas::gemm<T>(Trans::None, Trans::Transpose, T{-1},
                       panel.block(i0, 0, bn, v), panel.block(0, 0, v, v),
                       T{1}, run.fac.block(off + i0, off, bn, v));
      }
    };
    // Lazy piece of row block blk: everything right of the urgent cut —
    // the remaining sub-diagonal stripe plus the block's diagonal syrk.
    // Empty when the split is off.
    const auto lazy_block = [&run, panel, panel_rows, off, v, count_schur,
                             tri, el](index_t blk) {
      const index_t i0 = blk * sched::kRowBlock;
      const index_t bn = std::min(sched::kRowBlock, panel_rows - i0);
      if (i0 == 0) {
        if (bn > v) {
          count_schur(el(bn - v, v), 0.0, tri(bn - v));
          xblas::syrk<T>(UpLo::Lower, Trans::None, T{-1},
                         panel.block(v, 0, bn - v, v), T{1},
                         run.fac.block(off + v, off + v, bn - v, bn - v));
        }
      } else {
        if (i0 > v) {
          count_schur(el(bn, v), el(i0 - v, v), el(bn, i0 - v));
          xblas::gemm<T>(Trans::None, Trans::Transpose, T{-1},
                         panel.block(i0, 0, bn, v), panel.block(v, 0, i0 - v, v),
                         T{1}, run.fac.block(off + i0, off + v, bn, i0 - v));
        }
        count_schur(el(bn, v), 0.0, tri(bn));
        xblas::syrk<T>(UpLo::Lower, Trans::None, T{-1},
                       panel.block(i0, 0, bn, v), T{1},
                       run.fac.block(off + i0, off + i0, bn, bn));
      }
    };

    if (run.la) {
      // Dependencies: both pieces read this step's solved panel (all trsm
      // chunks) and write trailing cells the previous lazy remainder also
      // writes — express both instead of waiting.
      sched::TaskPool& pool = sched::TaskPool::instance();
      run.dep_scratch.assign(run.trsm_ids.begin(), run.trsm_ids.end());
      run.dep_scratch.insert(run.dep_scratch.end(), prev_lazy.begin(),
                             prev_lazy.end());
      for (index_t blk = 0; blk < nblocks; ++blk) {
        run.urgent_ids.push_back(
            pool.submit([urgent_block, blk] { urgent_block(blk); },
                        "schur-urgent", sched::TaskCategory::Urgent,
                        static_cast<long long>(t), run.dep_scratch,
                        /*retryable=*/true));
      }
      if (split) {
        for (index_t blk = 0; blk < nblocks; ++blk) {
          if (blk == 0 && panel_rows <= v) continue;  // empty lazy piece
          run.lazy_ids.push_back(
              pool.submit([lazy_block, blk] { lazy_block(blk); }, "schur-lazy",
                          sched::TaskCategory::Lazy, static_cast<long long>(t),
                          run.dep_scratch, /*retryable=*/true));
        }
      }
    } else {
      sched::parallel_ranks(nblocks, urgent_block);
      if (split) sched::parallel_ranks(nblocks, lazy_block);
    }
  }
  run.m.step_barrier();
}

template <typename T>
CholResultT<T> run_confchox(xsim::Machine& m, const grid::Grid3D& g, index_t n,
                            ConstMatrixView<T> a, const FactorOptions& opt,
                            bool resume = false) {
  expects(g.ranks() == m.ranks(), "grid must match the machine");
  expects(n >= 1, "matrix must be non-empty");
  index_t v = opt.block_size > 0 ? opt.block_size : default_block_size(n, g);
  expects(v % g.pz() == 0, "block size must be a multiple of the layer count");

  CholRun<T> run(m, g, n, v);
  run.la = run.real && lookahead_enabled(opt);
  const index_t npad = run.npad;
  const index_t num_tiles = run.num_tiles;
  sched::TaskPool& pool = sched::TaskPool::instance();

  const double tile_words =
      static_cast<double>(npad) * static_cast<double>(npad) /
      (2.0 * static_cast<double>(g.px()) * static_cast<double>(g.py()));
  const double panel_words =
      2.0 * static_cast<double>(npad * v) / static_cast<double>(m.ranks()) +
      static_cast<double>(v * v);
  for (int r = 0; r < m.ranks(); ++r) m.alloc(r, tile_words + panel_words);

  // Release the memory accounting on every exit path; on an error unwind
  // first drain the pool (in-flight lookahead tasks reference run.fac).
  struct MachineLease {
    xsim::Machine& m;
    double words;
    bool la;
    ~MachineLease() {
      if (la && std::uncaught_exceptions() > 0) {
        try {
          sched::TaskPool::instance().wait_all();
        } catch (...) {
        }
      }
      for (int r = 0; r < m.ranks(); ++r) m.release(r, words);
    }
  } lease{m, tile_words + panel_words, run.la};

  // (Re)initialize the factor buffer from the input: also the rollback of
  // last resort when ABFT detects corruption and no checkpoint exists — the
  // caller's view of `a` is untouched by the run.
  const auto init_state = [&] {
    run.amax = 0.0;
    run.health = FactorHealth{};
    run.health.min_pivot = std::numeric_limits<double>::infinity();
    run.fac = Matrix<T>(npad, npad, T{});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j <= i; ++j) {
        const T val = a(i, j);
        if (!std::isfinite(static_cast<double>(val))) {
          throw status_error(Status(
              StatusCode::kNonFinite, "input matrix contains a non-finite value"));
        }
        const double d = std::abs(static_cast<double>(val));
        if (d > run.amax) run.amax = d;
        run.fac(i, j) = val;
      }
    }
    for (index_t r = n; r < npad; ++r) run.fac(r, r) = T{1};
  };

  if (run.real) {
    expects(a.rows() == n && a.cols() == n, "matrix must be square");
    run.pivot_tol = opt.pivot_tolerance;
    init_state();
  }

  CholResultT<T> result;
  StepCostRecorder rec(m, opt.record_step_costs);

  // Recovery configuration (recover/options.hpp): resolved once per run.
  const recover::Options ropt = recover::options();
  const bool ckpt_on = run.real && ropt.ckpt_every > 0;
  run.abft = run.real && ropt.abft;

  index_t t0 = 0;
  if (resume) {
    expects(run.real, "resume requires Real mode");
    t0 = restore_chol_snapshot(run);
    g_ckpt_restores.add(1.0);
  }
  if (run.abft) init_chol_abft(run, t0);

  // Latency chain per iteration: one layer reduction, the A00 broadcast,
  // and the two panel hops (no pivoting chain at all).
  const double chain_per_step =
      std::ceil(std::log2(static_cast<double>(std::max(2, g.pz())))) +
      std::ceil(std::log2(static_cast<double>(std::max(2, m.ranks())))) + 3.0;

  // Step loop with in-run recovery (structure documented in
  // conflux_lu.cpp): ABFT-detected corruption rolls back to the last
  // checkpoint or the input, bounded by kMaxAbftReexecs; everything else
  // unwinds, and resume_confchox restarts a crashed run from its snapshot.
  index_t t = t0;
  int reexecs_left = kMaxAbftReexecs;
  while (t < num_tiles) {
  try {
    const index_t panel_rows = npad - (t + 1) * v;
    if (run.real) {
      const bool ckpt_due = ckpt_on && t % ropt.ckpt_every == 0;
      // Checksums are maintained every step; the full sweep over the live
      // triangle runs every abft_every steps (it re-reads everything, which
      // at bandwidth would blow the 10% overhead budget per-step).
      const bool verifying = run.abft && t > 0 && t % ropt.abft_every == 0;
      if ((ckpt_due || verifying) && run.la) {
        pool.wait(run.trsm_ids);
        pool.wait(run.urgent_ids);
        pool.wait(run.lazy_ids);
      } else if (run.abft && run.la) {
        // Maintenance-only step: capture_chol_abft_panel below reads tile
        // column t, which is exactly the urgent piece of the previous
        // step's Schur update; the lazy remainder keeps running behind it.
        pool.wait(run.trsm_ids);
        pool.wait(run.urgent_ids);
      }
      if (verifying) {
        if (fault::enabled() && fault::should_inject(fault::Site::kBitflip)) {
          run.fac(t * v, t * v) = recover::flip_high_bit(run.fac(t * v, t * v));
        }
        verify_chol_abft(run, t);
      }
      if (ckpt_due) {
        const auto c0 = std::chrono::steady_clock::now();
        save_chol_snapshot(run, t);
        g_ckpt_seconds.add(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - c0)
                               .count());
      }
      // Fires AFTER the save: with ckpt_every == 1 every crash is resumable.
      if (fault::enabled() && fault::should_inject(fault::Site::kCrashAtStep)) {
        throw status_error(Status(StatusCode::kCrashSimulated,
                                  "injected crash at a step boundary",
                                  static_cast<long long>(t)));
      }
      if (run.abft) capture_chol_abft_panel(run, t);
    }

    m.charge_chain(chain_per_step);
    rec.begin_iteration();

    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops,
                [&] { reduce_block_column(run, t); });
    MatrixView<T> a00;
    rec.measure(&StepCosts::a00_words, &StepCosts::a00_flops,
                [&] { factor_and_broadcast_a00(run, t, &a00); });
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops,
                [&] { scatter_panel_1d(run, t, panel_rows); });
    rec.measure(&StepCosts::panels_words, &StepCosts::panels_flops,
                [&] { trsm_panel<T>(run, t, panel_rows, a00); });
    if (run.abft && panel_rows > 0) {
      // Advance the checksums across this step's Schur update; the solved
      // panel is the only input, so only the trsm chunks must have landed
      // (the Schur tasks depend on them anyway).
      if (run.la) pool.wait(run.trsm_ids);
      apply_chol_abft_update(run, t, panel_rows);
    }
    rec.measure(&StepCosts::a11_words, &StepCosts::a11_flops,
                [&] { distribute_panel_2p5d(run, t, panel_rows); });
    rec.measure(&StepCosts::a11_words, &StepCosts::a11_flops,
                [&] { update_a11(run, t, panel_rows); });
    rec.end_iteration(result.step_costs);
    ++t;
  } catch (const status_error& e) {
    if (e.code() != StatusCode::kDataCorruption || reexecs_left-- <= 0) throw;
    g_abft_reexec.add(1.0);
    if (recover::has_latest(chol_snapshot_key(run))) {
      t = restore_chol_snapshot(run);
      g_ckpt_restores.add(1.0);
      // The step-0 snapshot is a marker: re-derive the state from the input.
      if (t == 0) init_state();
    } else {
      init_state();
      t = 0;
    }
    init_chol_abft(run, t);
  }
  }

  if (run.la) {
    pool.wait(run.trsm_ids);
    pool.wait(run.urgent_ids);
    pool.wait(run.lazy_ids);
  }

  if (run.real) {
    result.factors = Matrix<T>(n, n, T{});
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j <= i; ++j) result.factors(i, j) = run.fac(i, j);
    }
    result.workspace_words =
        static_cast<double>(run.fac.size()) * words_per_scalar<T>() +
        run.ws.words();
    if (!std::isfinite(run.health.min_pivot)) run.health.min_pivot = 0.0;
    result.health = run.health;
  }
  return result;
}

/// Shared body of the try_* entry points (see conflux_lu.cpp's try_lu).
template <typename T>
Result<CholResultT<T>> try_chol(xsim::Machine& m, const grid::Grid3D& g,
                                ConstMatrixView<T> a, const FactorOptions& opt,
                                bool resume = false) {
  try {
    expects(m.real(), "try_confchox requires Real mode");
    CholResultT<T> r = run_confchox<T>(m, g, a.rows(), a, opt, resume);
    if (!r.health.ok()) {
      Status st = r.health.to_status();
      return Result<CholResultT<T>>(std::move(st), std::move(r));
    }
    return std::move(r);
  } catch (const status_error& e) {
    return e.status();
  } catch (const contract_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

}  // namespace

CholResult confchox(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                    const FactorOptions& opt) {
  expects(m.real(), "confchox with a matrix requires Real mode");
  return run_confchox<double>(m, g, a.rows(), a, opt);
}

CholResultF confchox(xsim::Machine& m, const grid::Grid3D& g, ConstViewF a,
                     const FactorOptions& opt) {
  expects(m.real(), "confchox with a matrix requires Real mode");
  return run_confchox<float>(m, g, a.rows(), a, opt);
}

Result<CholResult> try_confchox(xsim::Machine& m, const grid::Grid3D& g,
                                ConstViewD a, const FactorOptions& opt) {
  return try_chol<double>(m, g, a, opt);
}

Result<CholResultF> try_confchox(xsim::Machine& m, const grid::Grid3D& g,
                                 ConstViewF a, const FactorOptions& opt) {
  return try_chol<float>(m, g, a, opt);
}

CholResult resume_confchox(xsim::Machine& m, const grid::Grid3D& g, ConstViewD a,
                           const FactorOptions& opt) {
  expects(m.real(), "resume_confchox requires Real mode");
  return run_confchox<double>(m, g, a.rows(), a, opt, /*resume=*/true);
}

CholResultF resume_confchox(xsim::Machine& m, const grid::Grid3D& g,
                            ConstViewF a, const FactorOptions& opt) {
  expects(m.real(), "resume_confchox requires Real mode");
  return run_confchox<float>(m, g, a.rows(), a, opt, /*resume=*/true);
}

Result<CholResult> try_resume_confchox(xsim::Machine& m, const grid::Grid3D& g,
                                       ConstViewD a, const FactorOptions& opt) {
  return try_chol<double>(m, g, a, opt, /*resume=*/true);
}

Result<CholResultF> try_resume_confchox(xsim::Machine& m, const grid::Grid3D& g,
                                        ConstViewF a, const FactorOptions& opt) {
  return try_chol<float>(m, g, a, opt, /*resume=*/true);
}

CholResult confchox_trace(xsim::Machine& m, const grid::Grid3D& g, index_t n,
                          const FactorOptions& opt) {
  expects(!m.real(), "confchox_trace requires Trace mode");
  return run_confchox<double>(m, g, n, ConstViewD(), opt);
}

template <typename T>
void confchox_solve(const CholResultT<T>& chol, MatrixView<T> b) {
  const index_t n = chol.factors.rows();
  expects(n > 0, "solve requires Real-mode factors");
  expects(b.rows() == n, "right-hand side must match the matrix");
  // One pair of blocked trsm panel solves over the whole multi-RHS panel.
  xblas::trsm<T>(Side::Left, UpLo::Lower, Trans::None, Diag::NonUnit, T{1},
                 chol.factors.view(), b);
  xblas::trsm<T>(Side::Left, UpLo::Lower, Trans::Transpose, Diag::NonUnit, T{1},
                 chol.factors.view(), b);
}

template void confchox_solve<float>(const CholResultF&, ViewF);
template void confchox_solve<double>(const CholResult&, ViewD);

}  // namespace conflux::factor
