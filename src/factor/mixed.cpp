#include "factor/mixed.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "blas/blas.hpp"
#include "support/check.hpp"

namespace conflux::factor {

namespace {

using xblas::Trans;

// Process-wide ladder counters (relaxed: they are statistics, not
// synchronization; bench reads them after all solves have joined).
std::atomic<long long> g_solves{0};
std::atomic<long long> g_fp64_fallbacks{0};
std::atomic<long long> g_ir_steps{0};

/// ||A||_inf (max absolute row sum).
double norm_inf(ConstViewD a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double sum = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) sum += std::abs(row[j]);
    best = std::max(best, sum);
  }
  return best;
}

/// Per-column infinity norms of a panel, written into out[0..cols).
void col_norms_inf(ConstViewD m, std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(m.cols()), 0.0);
  for (index_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row(i);
    for (index_t j = 0; j < m.cols(); ++j) {
      out[static_cast<std::size_t>(j)] =
          std::max(out[static_cast<std::size_t>(j)], std::abs(row[j]));
    }
  }
}

bool all_finite(ConstViewD m) {
  for (index_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row(i);
    for (index_t j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(row[j])) return false;
    }
  }
  return true;
}

double backward_error(double anorm, ConstViewD x, ConstViewD b, ConstViewD r) {
  std::vector<double> xn, bn, rn;
  col_norms_inf(x, xn);
  col_norms_inf(b, bn);
  col_norms_inf(r, rn);
  double worst = 0.0;
  for (std::size_t j = 0; j < rn.size(); ++j) {
    const double denom = anorm * xn[j] + bn[j];
    if (denom > 0.0) worst = std::max(worst, rn[j] / denom);
    else if (rn[j] > 0.0) worst = std::numeric_limits<double>::infinity();
  }
  return worst;
}

/// The shared refinement loop; `solve32` solves the fp32 system for a whole
/// multi-RHS fp32 panel in place.
template <typename Solve32>
RefineReport refine(ConstViewD a, ViewD b, const RefineOptions& opt,
                    Solve32&& solve32) {
  const index_t n = a.rows();
  const index_t nrhs = b.cols();
  expects(a.cols() == n && b.rows() == n, "refine: shape mismatch");

  const double tol = opt.tolerance > 0.0
                         ? opt.tolerance
                         : 2.0 * std::sqrt(static_cast<double>(n)) *
                               std::numeric_limits<double>::epsilon();
  const double anorm = norm_inf(a);

  MatrixD x(n, nrhs, 0.0);     // fp64 solution accumulator
  MatrixD best(n, nrhs, 0.0);  // best iterate so far (corrections can overshoot)
  MatrixD r(n, nrhs);          // fp64 residual B - A X (initially B)
  MatrixD d(n, nrhs);          // fp64 copy of each correction
  MatrixF rf(n, nrhs);         // fp32 staging panel for the solves
  copy<double>(b, r.view());

  RefineReport report;
  // Default classification: the loop ran out of steps without converging.
  report.code = StatusCode::kRefineStagnated;
  double prev = std::numeric_limits<double>::infinity();
  double best_err = std::numeric_limits<double>::infinity();
  // Iteration 0 is the initial fp32 solve (steps = 0); each further pass is
  // one refinement correction. Every pass: demote the residual, solve the
  // whole panel in fp32, promote, accumulate, and re-form the fp64 residual
  // with one gemm.
  for (int pass = 0; pass <= opt.max_steps; ++pass) {
    convert<double, float>(r.view(), rf.view());
    solve32(rf.view());
    convert<float, double>(rf.view(), d.view());
    for (index_t i = 0; i < n; ++i) {
      const double* di = d.view().row(i);
      double* xi = x.view().row(i);
      for (index_t j = 0; j < nrhs; ++j) xi[j] += di[j];
    }
    copy<double>(b, r.view());
    xblas::gemm(Trans::None, Trans::None, -1.0, a, x.view(), 1.0, r.view());

    // A singular (or fp32-overflowed) factorization poisons x with inf/NaN.
    // The max-based norms inside backward_error silently DROP NaNs
    // (std::max(0, NaN) is 0), so the error metric cannot be trusted to
    // flag the poisoning — scan the residual itself and stop immediately;
    // the best-iterate logic decides what the caller gets.
    if (!all_finite(x.view()) || !all_finite(r.view())) {
      report.code = StatusCode::kNonFinite;
      break;
    }
    // Near the cond(A)*eps_fp32 ~ 1 edge a correction can overshoot and
    // WORSEN the solution; the caller must never receive such an iterate,
    // so the report tracks the best one, not the last one.
    const double err = backward_error(anorm, x.view(), b, r.view());
    if (err < best_err) {
      best_err = err;
      report.steps = pass;  // corrections applied to reach the best iterate
      copy<double>(x.view(), best.view());
    }
    if (err <= tol) {
      report.converged = true;
      report.code = StatusCode::kOk;
      break;
    }
    // Stagnation guard (LAPACK dsgesv-style): if a correction failed to
    // shrink the backward error by at least 2x, fp32 information is
    // exhausted (cond(A) * eps_fp32 too large) — stop rather than loop.
    if (pass > 0 && err > 0.5 * prev) {
      report.code = err > prev ? StatusCode::kRefineDiverged
                               : StatusCode::kRefineStagnated;
      break;
    }
    prev = err;
  }
  report.backward_error = best_err;
  // No finite iterate at all (e.g. the fp32 factors are exactly singular):
  // leave the caller's RHS panel untouched rather than overwriting it with
  // the zero/NaN wreckage; report.converged stays false and
  // backward_error is inf, which is the caller's signal.
  if (std::isfinite(best_err)) copy<double>(best.view(), b);
  else report.code = StatusCode::kNonFinite;
  return report;
}

/// The shared degradation ladder (DESIGN.md "Failure model and degradation
/// ladder"). `factor32(af)` returns the fp32 Result, `refine_leg(f)` runs
/// refinement against the (possibly degraded) fp32 factors, `factor64()`
/// returns the fp64 Result, `solve64(f, b)` solves directly in fp64.
template <typename Factor32, typename RefineLeg, typename Factor64,
          typename Solve64>
MixedSolveReport solve_ladder(ConstViewD a, ViewD b,
                              const MixedSolveOptions& opt, Factor32&& factor32,
                              RefineLeg&& refine_leg, Factor64&& factor64,
                              Solve64&& solve64) {
  g_solves.fetch_add(1, std::memory_order_relaxed);
  MixedSolveReport rep;
  MatrixD b0(b.rows(), b.cols());
  copy<double>(b, b0.view());  // ladder restore point

  // Rung 1: fp32 factorization + fp64 refinement. Degraded fp32 factors
  // still get their refinement shot — the achieved backward error is the
  // ground truth, and near-singular / growth flags can be pessimistic.
  StatusCode f32_code = StatusCode::kOk;
  {
    MatrixF af(a.rows(), a.cols());
    // Entries beyond fp32 range convert to inf; the factorization's input
    // scan classifies that as kNonFinite and the ladder steps down.
    convert<double, float>(a, af.view());
    auto f32 = factor32(af.view());
    f32_code = f32.status().code();
    if (f32.has_value()) {
      rep.refine = refine_leg(f32.value());
      g_ir_steps.fetch_add(rep.refine.steps, std::memory_order_relaxed);
    } else {
      rep.refine.converged = false;
      rep.refine.backward_error = std::numeric_limits<double>::infinity();
      rep.refine.code = f32_code;
    }
  }
  if (rep.refine.converged) {
    rep.code = StatusCode::kOk;
    rep.backward_error = rep.refine.backward_error;
    return rep;
  }
  rep.fallback_reason =
      f32_code != StatusCode::kOk ? f32_code : rep.refine.code;

  if (!opt.allow_fp64_fallback) {
    rep.code = rep.fallback_reason;
    rep.backward_error = rep.refine.backward_error;
    return rep;
  }

  // Rung 2: fp64 re-factorization + direct solve. Whatever the fp32 leg
  // left in B is dropped first so the direct solve starts from the
  // caller's RHS.
  rep.fp64_fallback = true;
  g_fp64_fallbacks.fetch_add(1, std::memory_order_relaxed);
  copy<double>(b0.view(), b);
  auto f64 = factor64();
  if (!f64.has_value()) {
    rep.code = f64.status().code();
    rep.backward_error = std::numeric_limits<double>::infinity();
    return rep;
  }
  solve64(f64.value(), b);
  const double berr = solve_backward_error(a, b, b0.view());
  rep.backward_error = berr;
  if (!std::isfinite(berr)) {
    // Total failure keeps the "RHS untouched" contract of the fp32 leg.
    copy<double>(b0.view(), b);
    rep.code = StatusCode::kNonFinite;
    return rep;
  }
  rep.code = f64.ok() ? StatusCode::kOk : f64.status().code();
  return rep;
}

}  // namespace

double solve_backward_error(ConstViewD a, ConstViewD x, ConstViewD b) {
  expects(a.rows() == a.cols() && x.rows() == a.rows() && b.rows() == a.rows() &&
              x.cols() == b.cols(),
          "solve_backward_error: shape mismatch");
  MatrixD r(b.rows(), b.cols());
  copy<double>(b, r.view());
  xblas::gemm(Trans::None, Trans::None, -1.0, a, x, 1.0, r.view());
  return backward_error(norm_inf(a), x, b, r.view());
}

RefineReport refine_lu(const LuResultF& lu, ConstViewD a, ViewD b,
                       const RefineOptions& opt) {
  expects(lu.factors.rows() == a.rows(), "refine_lu: factorization size mismatch");
  return refine(a, b, opt, [&](ViewF panel) { conflux_lu_solve(lu, panel); });
}

RefineReport refine_cholesky(const CholResultF& chol, ConstViewD a, ViewD b,
                             const RefineOptions& opt) {
  expects(chol.factors.rows() == a.rows(),
          "refine_cholesky: factorization size mismatch");
  return refine(a, b, opt, [&](ViewF panel) { confchox_solve(chol, panel); });
}

MixedSolveReport conflux_lu_solve_mixed_ex(xsim::Machine& m,
                                           const grid::Grid3D& g, ConstViewD a,
                                           ViewD b,
                                           const MixedSolveOptions& opt) {
  return solve_ladder(
      a, b, opt,
      [&](ConstViewF af) { return try_conflux_lu(m, g, af, opt.factor); },
      [&](const LuResultF& lu) { return refine_lu(lu, a, b, opt.refine); },
      [&] { return try_conflux_lu(m, g, a, opt.factor); },
      [](const LuResult& lu, ViewD rhs) { conflux_lu_solve(lu, rhs); });
}

MixedSolveReport confchox_solve_mixed_ex(xsim::Machine& m,
                                         const grid::Grid3D& g, ConstViewD a,
                                         ViewD b,
                                         const MixedSolveOptions& opt) {
  return solve_ladder(
      a, b, opt,
      [&](ConstViewF af) { return try_confchox(m, g, af, opt.factor); },
      [&](const CholResultF& ch) {
        return refine_cholesky(ch, a, b, opt.refine);
      },
      [&] { return try_confchox(m, g, a, opt.factor); },
      [](const CholResult& ch, ViewD rhs) { confchox_solve(ch, rhs); });
}

// Legacy one-call drivers: the fp32 + refinement rung only, with the
// original RefineReport shape. A hard fp32 factorization failure comes back
// as a non-converged report (backward_error = inf, code = the
// classification) instead of an exception.
RefineReport conflux_lu_solve_mixed(xsim::Machine& m, const grid::Grid3D& g,
                                    ConstViewD a, ViewD b,
                                    const FactorOptions& fopt,
                                    const RefineOptions& ropt) {
  MixedSolveOptions opt;
  opt.factor = fopt;
  opt.refine = ropt;
  opt.allow_fp64_fallback = false;
  return conflux_lu_solve_mixed_ex(m, g, a, b, opt).refine;
}

RefineReport confchox_solve_mixed(xsim::Machine& m, const grid::Grid3D& g,
                                  ConstViewD a, ViewD b,
                                  const FactorOptions& fopt,
                                  const RefineOptions& ropt) {
  MixedSolveOptions opt;
  opt.factor = fopt;
  opt.refine = ropt;
  opt.allow_fp64_fallback = false;
  return confchox_solve_mixed_ex(m, g, a, b, opt).refine;
}

MixedCounters mixed_counters() {
  MixedCounters c;
  c.solves = g_solves.load(std::memory_order_relaxed);
  c.fp64_fallbacks = g_fp64_fallbacks.load(std::memory_order_relaxed);
  c.ir_steps = g_ir_steps.load(std::memory_order_relaxed);
  return c;
}

void reset_mixed_counters() {
  g_solves.store(0, std::memory_order_relaxed);
  g_fp64_fallbacks.store(0, std::memory_order_relaxed);
  g_ir_steps.store(0, std::memory_order_relaxed);
}

}  // namespace conflux::factor
