#include "factor/mixed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "blas/blas.hpp"
#include "support/check.hpp"

namespace conflux::factor {

namespace {

using xblas::Trans;

/// ||A||_inf (max absolute row sum).
double norm_inf(ConstViewD a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double sum = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) sum += std::abs(row[j]);
    best = std::max(best, sum);
  }
  return best;
}

/// Per-column infinity norms of a panel, written into out[0..cols).
void col_norms_inf(ConstViewD m, std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(m.cols()), 0.0);
  for (index_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row(i);
    for (index_t j = 0; j < m.cols(); ++j) {
      out[static_cast<std::size_t>(j)] =
          std::max(out[static_cast<std::size_t>(j)], std::abs(row[j]));
    }
  }
}

bool all_finite(ConstViewD m) {
  for (index_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row(i);
    for (index_t j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(row[j])) return false;
    }
  }
  return true;
}

double backward_error(double anorm, ConstViewD x, ConstViewD b, ConstViewD r) {
  std::vector<double> xn, bn, rn;
  col_norms_inf(x, xn);
  col_norms_inf(b, bn);
  col_norms_inf(r, rn);
  double worst = 0.0;
  for (std::size_t j = 0; j < rn.size(); ++j) {
    const double denom = anorm * xn[j] + bn[j];
    if (denom > 0.0) worst = std::max(worst, rn[j] / denom);
    else if (rn[j] > 0.0) worst = std::numeric_limits<double>::infinity();
  }
  return worst;
}

/// The shared refinement loop; `solve32` solves the fp32 system for a whole
/// multi-RHS fp32 panel in place.
template <typename Solve32>
RefineReport refine(ConstViewD a, ViewD b, const RefineOptions& opt,
                    Solve32&& solve32) {
  const index_t n = a.rows();
  const index_t nrhs = b.cols();
  expects(a.cols() == n && b.rows() == n, "refine: shape mismatch");

  const double tol = opt.tolerance > 0.0
                         ? opt.tolerance
                         : 2.0 * std::sqrt(static_cast<double>(n)) *
                               std::numeric_limits<double>::epsilon();
  const double anorm = norm_inf(a);

  MatrixD x(n, nrhs, 0.0);     // fp64 solution accumulator
  MatrixD best(n, nrhs, 0.0);  // best iterate so far (corrections can overshoot)
  MatrixD r(n, nrhs);          // fp64 residual B - A X (initially B)
  MatrixD d(n, nrhs);          // fp64 copy of each correction
  MatrixF rf(n, nrhs);         // fp32 staging panel for the solves
  copy<double>(b, r.view());

  RefineReport report;
  double prev = std::numeric_limits<double>::infinity();
  double best_err = std::numeric_limits<double>::infinity();
  // Iteration 0 is the initial fp32 solve (steps = 0); each further pass is
  // one refinement correction. Every pass: demote the residual, solve the
  // whole panel in fp32, promote, accumulate, and re-form the fp64 residual
  // with one gemm.
  for (int pass = 0; pass <= opt.max_steps; ++pass) {
    convert<double, float>(r.view(), rf.view());
    solve32(rf.view());
    convert<float, double>(rf.view(), d.view());
    for (index_t i = 0; i < n; ++i) {
      const double* di = d.view().row(i);
      double* xi = x.view().row(i);
      for (index_t j = 0; j < nrhs; ++j) xi[j] += di[j];
    }
    copy<double>(b, r.view());
    xblas::gemm(Trans::None, Trans::None, -1.0, a, x.view(), 1.0, r.view());

    // A singular (or fp32-overflowed) factorization poisons x with inf/NaN.
    // The max-based norms inside backward_error silently DROP NaNs
    // (std::max(0, NaN) is 0), so the error metric cannot be trusted to
    // flag the poisoning — scan the residual itself and stop immediately;
    // the best-iterate logic decides what the caller gets.
    if (!all_finite(x.view()) || !all_finite(r.view())) break;
    // Near the cond(A)*eps_fp32 ~ 1 edge a correction can overshoot and
    // WORSEN the solution; the caller must never receive such an iterate,
    // so the report tracks the best one, not the last one.
    const double err = backward_error(anorm, x.view(), b, r.view());
    if (err < best_err) {
      best_err = err;
      report.steps = pass;  // corrections applied to reach the best iterate
      copy<double>(x.view(), best.view());
    }
    if (err <= tol) {
      report.converged = true;
      break;
    }
    // Stagnation guard (LAPACK dsgesv-style): if a correction failed to
    // shrink the backward error by at least 2x, fp32 information is
    // exhausted (cond(A) * eps_fp32 too large) — stop rather than loop.
    if (pass > 0 && err > 0.5 * prev) break;
    prev = err;
  }
  report.backward_error = best_err;
  // No finite iterate at all (e.g. the fp32 factors are exactly singular):
  // leave the caller's RHS panel untouched rather than overwriting it with
  // the zero/NaN wreckage; report.converged stays false and
  // backward_error is inf, which is the caller's signal.
  if (std::isfinite(best_err)) copy<double>(best.view(), b);
  return report;
}

}  // namespace

double solve_backward_error(ConstViewD a, ConstViewD x, ConstViewD b) {
  expects(a.rows() == a.cols() && x.rows() == a.rows() && b.rows() == a.rows() &&
              x.cols() == b.cols(),
          "solve_backward_error: shape mismatch");
  MatrixD r(b.rows(), b.cols());
  copy<double>(b, r.view());
  xblas::gemm(Trans::None, Trans::None, -1.0, a, x, 1.0, r.view());
  return backward_error(norm_inf(a), x, b, r.view());
}

RefineReport refine_lu(const LuResultF& lu, ConstViewD a, ViewD b,
                       const RefineOptions& opt) {
  expects(lu.factors.rows() == a.rows(), "refine_lu: factorization size mismatch");
  return refine(a, b, opt, [&](ViewF panel) { conflux_lu_solve(lu, panel); });
}

RefineReport refine_cholesky(const CholResultF& chol, ConstViewD a, ViewD b,
                             const RefineOptions& opt) {
  expects(chol.factors.rows() == a.rows(),
          "refine_cholesky: factorization size mismatch");
  return refine(a, b, opt, [&](ViewF panel) { confchox_solve(chol, panel); });
}

RefineReport conflux_lu_solve_mixed(xsim::Machine& m, const grid::Grid3D& g,
                                    ConstViewD a, ViewD b,
                                    const FactorOptions& fopt,
                                    const RefineOptions& ropt) {
  MatrixF af(a.rows(), a.cols());
  convert<double, float>(a, af.view());
  const LuResultF lu = conflux_lu(m, g, af.view(), fopt);
  return refine_lu(lu, a, b, ropt);
}

RefineReport confchox_solve_mixed(xsim::Machine& m, const grid::Grid3D& g,
                                  ConstViewD a, ViewD b,
                                  const FactorOptions& fopt,
                                  const RefineOptions& ropt) {
  MatrixF af(a.rows(), a.cols());
  convert<double, float>(a, af.view());
  const CholResultF chol = confchox(m, g, af.view(), fopt);
  return refine_cholesky(chol, a, b, ropt);
}

}  // namespace conflux::factor
