#include "daap/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace conflux::daap {

namespace {

// ---------------------------------------------------------------------------
// chi(X) solver.
//
// After x_t = log |D_t| the problem is
//     max sum_t x_t   s.t.   sum_j w_j exp(sum_{k in S_j} x_k) <= X, x >= 0
// — a geometric program. The KKT conditions say that at the optimum all
// "active" variables (x_t > 0) see the same access-mass
//     g = sum_{j contains t} w_j A_j(D),
// so we solve by bisecting on g: for a candidate g, a damped multiplicative
// fixed point balances the per-variable masses (clamping x_t >= 0); the total
// constraint mass is monotone in g, which the outer bisection drives to X.
// ---------------------------------------------------------------------------

struct SolverProblem {
  int num_vars = 0;
  std::vector<std::vector<int>> access_vars;  // S_j
  std::vector<double> weights;                // w_j
};

// Balance the access masses of the ACTIVE variables to the common value `g`
// (the KKT stationarity condition; clamped variables stay at x = 0).
// Converges geometrically because every active variable's mass is strictly
// increasing in its own x.
std::vector<double> balance(const SolverProblem& p, double g, unsigned active_mask,
                            int iterations) {
  std::vector<double> x(static_cast<std::size_t>(p.num_vars), 0.0);
  std::vector<double> mass(p.access_vars.size());
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t j = 0; j < p.access_vars.size(); ++j) {
      double e = 0.0;
      for (int v : p.access_vars[j]) e += x[static_cast<std::size_t>(v)];
      mass[j] = p.weights[j] * std::exp(e);
    }
    for (int t = 0; t < p.num_vars; ++t) {
      if ((active_mask & (1u << t)) == 0) continue;
      double s = 0.0;
      for (std::size_t j = 0; j < p.access_vars.size(); ++j) {
        for (int v : p.access_vars[j]) {
          if (v == t) {
            s += mass[j];
            break;
          }
        }
      }
      check(s > 0.0, "every variable must appear in some input access");
      const double xt = x[static_cast<std::size_t>(t)] + 0.5 * std::log(g / s);
      x[static_cast<std::size_t>(t)] = std::max(0.0, xt);
    }
  }
  return x;
}

double total_mass(const SolverProblem& p, const std::vector<double>& x) {
  double total = 0.0;
  for (std::size_t j = 0; j < p.access_vars.size(); ++j) {
    double e = 0.0;
    for (int v : p.access_vars[j]) e += x[static_cast<std::size_t>(v)];
    total += p.weights[j] * std::exp(e);
  }
  return total;
}

ChiResult solve_chi_weighted(const StatementSpec& stmt, double x_limit,
                             const std::vector<double>& weights) {
  stmt.validate();
  expects(stmt.num_vars <= 16, "solver enumerates 2^l active sets; l <= 16");
  const auto m = stmt.inputs.size();
  expects(x_limit > 0.0, "X must be positive");

  SolverProblem p;
  p.num_vars = stmt.num_vars;
  p.weights = weights;
  for (const auto& acc : stmt.inputs) p.access_vars.push_back(acc.vars);

  double w_total = 0.0;
  for (double w : weights) w_total += w;
  // With all |D_t| = 1 the constraint mass is w_total; X below that admits
  // only the trivial subcomputation.
  ChiResult result;
  result.domain.assign(static_cast<std::size_t>(stmt.num_vars), 1.0);
  result.access_sizes.assign(m, 1.0);
  result.chi = 1.0;
  if (x_limit <= w_total) return result;

  // The optimum clamps some (possibly empty) subset of variables at
  // |D_t| = 1; enumerate the active sets and keep the best feasible point.
  // For each active set, bisect the common access mass g so the constraint
  // is tight.
  constexpr int kBalanceIters = 90;
  double best_log_chi = 0.0;
  std::vector<double> best_x(static_cast<std::size_t>(stmt.num_vars), 0.0);
  const unsigned all_sets = 1u << stmt.num_vars;
  for (unsigned active = 1; active < all_sets; ++active) {
    double glo = w_total / static_cast<double>(m);
    while (total_mass(p, balance(p, glo, active, kBalanceIters)) > x_limit &&
           glo > 1e-300) {
      glo *= 0.5;
    }
    double ghi = x_limit;
    for (int it = 0; it < 80 && ghi / glo > 1.0 + 1e-13; ++it) {
      const double g = std::sqrt(glo * ghi);
      if (total_mass(p, balance(p, g, active, kBalanceIters)) <= x_limit) {
        glo = g;
      } else {
        ghi = g;
      }
    }
    const auto x = balance(p, glo, active, 2 * kBalanceIters);
    if (total_mass(p, x) > x_limit * (1.0 + 1e-9)) continue;
    double log_chi = 0.0;
    for (double xt : x) log_chi += xt;
    if (log_chi > best_log_chi) {
      best_log_chi = log_chi;
      best_x = x;
    }
  }

  result.chi = std::exp(best_log_chi);
  for (int t = 0; t < stmt.num_vars; ++t) {
    result.domain[static_cast<std::size_t>(t)] =
        std::exp(best_x[static_cast<std::size_t>(t)]);
  }
  for (std::size_t j = 0; j < m; ++j) {
    double e = 0.0;
    for (int v : stmt.inputs[j].vars) e += best_x[static_cast<std::size_t>(v)];
    result.access_sizes[j] = std::exp(e);
  }
  return result;
}

}  // namespace

ChiResult solve_chi(const StatementSpec& stmt, double x) {
  return solve_chi_weighted(stmt, x, std::vector<double>(stmt.inputs.size(), 1.0));
}

StatementBound derive_statement_bound(const StatementSpec& stmt, double vertices,
                                      double memory) {
  expects(memory > static_cast<double>(stmt.inputs.size()),
          "fast memory must hold at least the statement inputs");
  StatementBound bound;

  // rho(X) = chi(X) / (X - M) is unimodal in X; golden-section in log X.
  const auto rho_at = [&](double logx) {
    const double x = std::exp(logx);
    return solve_chi(stmt, x).chi / (x - memory);
  };
  const double golden = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = std::log(memory * (1.0 + 1e-9));
  double hi = std::log(memory * 1e5);
  double a = hi - golden * (hi - lo);
  double b = lo + golden * (hi - lo);
  double fa = rho_at(a);
  double fb = rho_at(b);
  for (int it = 0; it < 120 && (hi - lo) > 1e-11; ++it) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - golden * (hi - lo);
      fa = rho_at(a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + golden * (hi - lo);
      fb = rho_at(b);
    }
  }
  bound.x0 = std::exp((lo + hi) / 2.0);
  bound.chi_x0 = solve_chi(stmt, bound.x0).chi;
  double rho = bound.chi_x0 / (bound.x0 - memory);

  // Lemma 6: u out-degree-one graph-input predecessors cap rho at 1/u.
  if (stmt.u_outdeg1_inputs > 0) {
    const double cap = 1.0 / static_cast<double>(stmt.u_outdeg1_inputs);
    if (cap < rho) {
      rho = cap;
      bound.lemma6_capped = true;
    }
  }
  bound.rho = rho;
  bound.q_sequential = vertices / rho;
  return bound;
}

double input_reuse_bound(const StatementSpec& a, double vertices_a,
                         const StatementSpec& b, double vertices_b,
                         const std::string& array, double memory) {
  // Equation 6: Reuse(A) = min over the two statements of
  //   |A(R_max(X0))| * |V| / |V_max|.
  const auto per_statement = [&](const StatementSpec& s, double vertices) {
    const StatementBound sb = derive_statement_bound(s, vertices, memory);
    const ChiResult chi = solve_chi(s, sb.x0);
    double access = 0.0;
    for (std::size_t j = 0; j < s.inputs.size(); ++j) {
      if (s.inputs[j].array == array) access = std::max(access, chi.access_sizes[j]);
    }
    if (access == 0.0) return 0.0;  // statement does not read the array
    return access * vertices / chi.chi;
  };
  return std::min(per_statement(a, vertices_a), per_statement(b, vertices_b));
}

ProgramBound derive_program_bound(const KernelInstance& kernel, double p,
                                  double memory) {
  const auto& prog = kernel.program;
  expects(prog.statements.size() == kernel.statement_vertices.size(),
          "one vertex count per statement");
  ProgramBound out;
  out.per_statement.reserve(prog.statements.size());

  // Which statements consume an output of a producer with rho > 1? For those,
  // Corollary 1 shrinks the shared access by 1/rho_producer; we first derive
  // producer bounds, then consumers with weighted accesses.
  std::vector<StatementBound> bounds(prog.statements.size());
  for (std::size_t i = 0; i < prog.statements.size(); ++i) {
    bounds[i] = derive_statement_bound(prog.statements[i],
                                       kernel.statement_vertices[i], memory);
  }
  for (const auto& reuse : prog.output_reuses) {
    const auto& producer = bounds[static_cast<std::size_t>(reuse.producer)];
    if (producer.rho <= 1.0) continue;  // dominator unchanged (Section 4.2)
    // Re-derive the consumer with the shared access discounted by 1/rho.
    const auto& cons_stmt = prog.statements[static_cast<std::size_t>(reuse.consumer)];
    std::vector<double> weights(cons_stmt.inputs.size(), 1.0);
    for (std::size_t j = 0; j < cons_stmt.inputs.size(); ++j) {
      if (cons_stmt.inputs[j].array == reuse.array) weights[j] = 1.0 / producer.rho;
    }
    // Weighted chi at the consumer's X0 re-optimized: redo the X0 search with
    // weighted masses by reusing derive via a temporary statement is not
    // possible (weights live outside the spec), so search X0 here directly.
    const auto rho_at = [&](double logx) {
      const double x = std::exp(logx);
      return solve_chi_weighted(cons_stmt, x, weights).chi / (x - memory);
    };
    const double golden = (std::sqrt(5.0) - 1.0) / 2.0;
    double lo = std::log(memory * (1.0 + 1e-9));
    double hi = std::log(memory * 1e5);
    for (int it = 0; it < 120 && (hi - lo) > 1e-11; ++it) {
      const double a = hi - golden * (hi - lo);
      const double b = lo + golden * (hi - lo);
      if (rho_at(a) < rho_at(b)) {
        hi = b;
      } else {
        lo = a;
      }
    }
    const double x0 = std::exp((lo + hi) / 2.0);
    auto& cb = bounds[static_cast<std::size_t>(reuse.consumer)];
    cb.x0 = x0;
    cb.chi_x0 = solve_chi_weighted(cons_stmt, x0, weights).chi;
    cb.rho = cb.chi_x0 / (x0 - memory);
    cb.q_sequential = kernel.statement_vertices[static_cast<std::size_t>(reuse.consumer)] / cb.rho;
  }

  double q_total = 0.0;
  for (const auto& b : bounds) q_total += b.q_sequential;

  // Case I (input overlap): subtract the Lemma 7 reuse overapproximation.
  for (const auto& reuse : prog.input_reuses) {
    const auto ia = static_cast<std::size_t>(reuse.statement_a);
    const auto ib = static_cast<std::size_t>(reuse.statement_b);
    q_total -= input_reuse_bound(prog.statements[ia], kernel.statement_vertices[ia],
                                 prog.statements[ib], kernel.statement_vertices[ib],
                                 reuse.array, memory);
  }
  q_total = std::max(q_total, 0.0);

  out.per_statement = std::move(bounds);
  out.q_parallel = q_total / p;
  return out;
}

double lu_lower_bound_closed_form(double n, double p, double memory) {
  return (2.0 * n * n * n - 6.0 * n * n + 4.0 * n) / (3.0 * p * std::sqrt(memory)) +
         n * (n - 1.0) / (2.0 * p);
}

double cholesky_lower_bound_closed_form(double n, double p, double memory) {
  return (n * n * n - 3.0 * n * n + 2.0 * n) / (3.0 * p * std::sqrt(memory)) +
         n * (n - 1.0) / (2.0 * p) + n / p;
}

double matmul_lower_bound_closed_form(double n, double p, double memory) {
  return 2.0 * n * n * n / (p * std::sqrt(memory));
}

}  // namespace conflux::daap
