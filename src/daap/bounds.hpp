// I/O lower-bound engine — Sections 3, 5 and 6 of the paper.
//
// For a statement, solves the Section 3.2 optimization problem
//
//     max prod_t |D_t|   s.t.   sum_j prod_{k in phi_j} |D_k| <= X,  |D_t| >= 1
//
// numerically (it is a geometric program: convex after the log substitution),
// yielding chi(X) = |H_max|. Then searches X0 = argmin chi(X)/(X - M) and
// reports the computational intensity rho and the I/O lower bounds
//
//     Q_seq >= |V| / rho            (Lemmas 1 and 2)
//     Q_par >= |V| / (P * rho)      (Lemma 9)
//
// with rho additionally capped by 1/u for statements with u out-degree-one
// graph-input predecessors (Lemma 6).
#pragma once

#include <vector>

#include "daap/statement.hpp"

namespace conflux::daap {

/// Result of solving the chi(X) problem for one value of X.
struct ChiResult {
  double chi = 0.0;               ///< max |H| = prod |D_t|
  std::vector<double> domain;     ///< the optimizing |D_t| values
  std::vector<double> access_sizes;  ///< |A_j(D)| per input access
};

/// Solve the Section 3.2 problem for a statement at a given X.
/// X must exceed the number of inputs m (otherwise no computation fits).
ChiResult solve_chi(const StatementSpec& stmt, double x);

/// Full bound derivation for one statement.
struct StatementBound {
  double x0 = 0.0;     ///< the X minimizing rho (maximizing the bound)
  double chi_x0 = 0.0; ///< chi(X0)
  double rho = 0.0;    ///< computational intensity at X0 (after Lemma 6 cap)
  bool lemma6_capped = false;  ///< true when rho = 1/u was the binding bound
  double q_sequential = 0.0;   ///< |V| / rho
};

/// Derive X0, rho and the sequential bound for `stmt` with |V| = vertices
/// and fast memory M.
StatementBound derive_statement_bound(const StatementSpec& stmt, double vertices,
                                      double memory);

/// Parallel bound (Lemma 9): Q >= |V| / (P rho).
inline double parallel_bound(const StatementBound& b, double p) {
  return b.q_sequential / p;
}

/// Reuse(A) for input overlap (Lemma 7 / Equation 6): the per-array upper
/// bound on avoidable loads, min over the two statements of
/// |A(R_max(X0))| * |V| / |V_max|.
double input_reuse_bound(const StatementSpec& a, double vertices_a,
                         const StatementSpec& b, double vertices_b,
                         const std::string& array, double memory);

/// Bound for a whole program on P processors: sum of per-statement bounds,
/// minus input-reuse overlaps (Case I), with output overlaps handled per
/// Section 4.2 (a producer with rho <= 1 leaves the consumer's dominator
/// unchanged; a producer with rho > 1 scales the consumer's shared access by
/// 1/rho — Corollary 1 — which this engine applies as a Q reduction factor
/// only when it would matter).
struct ProgramBound {
  double q_parallel = 0.0;
  std::vector<StatementBound> per_statement;
};

ProgramBound derive_program_bound(const KernelInstance& kernel, double p,
                                  double memory);

// ---------------------------------------------------------------------------
// Closed forms from Section 6 (used by tests and by src/models): the engine
// above must reproduce these numerically without knowing them.
// ---------------------------------------------------------------------------

/// LU: 2(N^3 - 3N^2 + 2N) / (3 P sqrt(M)) + N(N-1)/(2P).
double lu_lower_bound_closed_form(double n, double p, double memory);

/// Cholesky: (N^3 - 3N^2 + 2N) / (3 P sqrt(M)) + N(N-1)/(2P) + N/P.
double cholesky_lower_bound_closed_form(double n, double p, double memory);

/// Matmul: 2 N^3 / (P sqrt(M)).
double matmul_lower_bound_closed_form(double n, double p, double memory);

}  // namespace conflux::daap
