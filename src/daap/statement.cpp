#include "daap/statement.hpp"

namespace conflux::daap {

namespace {
// Variable index conventions for the kernels below.
constexpr int kVarK = 0;
constexpr int kVarI = 1;
constexpr int kVarJ = 2;
}  // namespace

KernelInstance matmul_kernel(double n) {
  // C[i,j] <- C[i,j] + A[i,k] * B[k,j]; the previous version of C[i,j] is an
  // input (accumulation chain), giving the three-access dominator of
  // Section 3.2 with |Dom| = IJ + IK + KJ.
  StatementSpec s;
  s.name = "MM";
  s.num_vars = 3;
  s.inputs = {AccessSpec{"C", {kVarI, kVarJ}}, AccessSpec{"A", {kVarI, kVarK}},
              AccessSpec{"B", {kVarK, kVarJ}}};
  s.output = AccessSpec{"C", {kVarI, kVarJ}};
  s.u_outdeg1_inputs = 0;
  s.validate();
  KernelInstance kernel;
  kernel.program.name = "matmul";
  kernel.program.statements = {s};
  kernel.statement_vertices = {n * n * n};
  return kernel;
}

KernelInstance lu_kernel(double n) {
  // Figure 3. S1: A[i,k] <- A[i,k] / A[k,k]. The previous version of A[i,k]
  // is a graph input of G_S1 with out-degree one => u = 1 (Lemma 6 applies,
  // rho_S1 <= 1).
  StatementSpec s1;
  s1.name = "LU.S1";
  s1.num_vars = 2;  // k, i
  s1.inputs = {AccessSpec{"Aik", {kVarK, kVarI}}, AccessSpec{"Akk", {kVarK}}};
  s1.output = AccessSpec{"Aik", {kVarK, kVarI}};
  s1.u_outdeg1_inputs = 1;
  s1.validate();

  // S2: A[i,j] <- A[i,j] - A[i,k] * A[k,j]. All three accesses have
  // dimension 2; the access A[i,k] is the output of S1 (output reuse), but
  // since rho_S1 <= 1 this does not shrink the dominator (Section 6.1).
  StatementSpec s2;
  s2.name = "LU.S2";
  s2.num_vars = 3;  // k, i, j
  s2.inputs = {AccessSpec{"Aij", {kVarI, kVarJ}}, AccessSpec{"Aik", {kVarK, kVarI}},
               AccessSpec{"Akj", {kVarK, kVarJ}}};
  s2.output = AccessSpec{"Aij", {kVarI, kVarJ}};
  s2.u_outdeg1_inputs = 0;
  s2.validate();

  KernelInstance kernel;
  kernel.program.name = "lu";
  kernel.program.statements = {s1, s2};
  kernel.program.output_reuses = {OutputReuse{"Aik", 0, 1}};
  kernel.statement_vertices = {n * (n - 1) / 2.0, n * (n - 1) * (n - 2) / 3.0};
  return kernel;
}

KernelInstance cholesky_kernel(double n) {
  // Listing 1. S1: L[k,k] <- sqrt(L[k,k]); single variable, u = 1.
  StatementSpec s1;
  s1.name = "CHOL.S1";
  s1.num_vars = 1;  // k
  s1.inputs = {AccessSpec{"Lkk", {kVarK}}};
  s1.output = AccessSpec{"Lkk", {kVarK}};
  s1.u_outdeg1_inputs = 1;
  s1.validate();

  // S2: L[i,k] <- L[i,k] / L[k,k]; u = 1 via the previous version of L[i,k].
  StatementSpec s2;
  s2.name = "CHOL.S2";
  s2.num_vars = 2;  // k, i
  s2.inputs = {AccessSpec{"Lik", {kVarK, kVarI}}, AccessSpec{"Lkk", {kVarK}}};
  s2.output = AccessSpec{"Lik", {kVarK, kVarI}};
  s2.u_outdeg1_inputs = 1;
  s2.validate();

  // S3: L[i,j] <- L[i,j] - L[i,k] * L[j,k]; same structure as LU.S2 but over
  // the triangular iteration domain (|V3| = N(N-1)(N-2)/6).
  StatementSpec s3;
  s3.name = "CHOL.S3";
  s3.num_vars = 3;  // k, i, j
  s3.inputs = {AccessSpec{"Lij", {kVarI, kVarJ}}, AccessSpec{"Lik", {kVarK, kVarI}},
               AccessSpec{"Ljk", {kVarK, kVarJ}}};
  s3.output = AccessSpec{"Lij", {kVarI, kVarJ}};
  s3.u_outdeg1_inputs = 0;
  s3.validate();

  KernelInstance kernel;
  kernel.program.name = "cholesky";
  kernel.program.statements = {s1, s2, s3};
  kernel.program.output_reuses = {OutputReuse{"Lkk", 0, 1}, OutputReuse{"Lik", 1, 2}};
  kernel.statement_vertices = {n, n * (n - 1) / 2.0, n * (n - 1) * (n - 2) / 6.0};
  return kernel;
}

KernelInstance trsm_kernel(double n, double nrhs) {
  // S1: B[k,j] <- B[k,j] / L[k,k]  (diagonal scale, u = 1). Variables are
  // renumbered locally: 0 = k, 1 = j (each statement owns its index space).
  StatementSpec s1;
  s1.name = "TRSM.S1";
  s1.num_vars = 2;
  s1.inputs = {AccessSpec{"Bkj", {0, 1}}, AccessSpec{"Lkk", {0}}};
  s1.output = AccessSpec{"Bkj", {0, 1}};
  s1.u_outdeg1_inputs = 1;
  s1.validate();

  // S2: B[i,j] <- B[i,j] - L[i,k] * B[k,j]  (k < i): the LU.S2 shape.
  StatementSpec s2;
  s2.name = "TRSM.S2";
  s2.num_vars = 3;  // k, i, j
  s2.inputs = {AccessSpec{"Bij", {kVarI, kVarJ}}, AccessSpec{"Lik", {kVarK, kVarI}},
               AccessSpec{"Bkj", {kVarK, kVarJ}}};
  s2.output = AccessSpec{"Bij", {kVarI, kVarJ}};
  s2.u_outdeg1_inputs = 0;
  s2.validate();

  KernelInstance kernel;
  kernel.program.name = "trsm";
  kernel.program.statements = {s1, s2};
  kernel.program.output_reuses = {OutputReuse{"Bkj", 0, 1}};
  kernel.statement_vertices = {n * nrhs, n * (n - 1) / 2.0 * nrhs};
  return kernel;
}

KernelInstance syrk_kernel(double n, double k) {
  StatementSpec s;
  s.name = "SYRK";
  s.num_vars = 3;  // k, i, j
  s.inputs = {AccessSpec{"Cij", {kVarI, kVarJ}}, AccessSpec{"Aik", {kVarK, kVarI}},
              AccessSpec{"Ajk", {kVarK, kVarJ}}};
  s.output = AccessSpec{"Cij", {kVarI, kVarJ}};
  s.u_outdeg1_inputs = 0;
  s.validate();
  KernelInstance kernel;
  kernel.program.name = "syrk";
  kernel.program.statements = {s};
  kernel.statement_vertices = {n * (n + 1) / 2.0 * k};
  return kernel;
}

}  // namespace conflux::daap
