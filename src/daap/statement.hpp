// Disjoint Access Array Program (DAAP) representation — Section 2.2 of the
// paper. A program is a list of statements; each statement is a loop nest
// with an output array access and m input array accesses, each access
// addressed by a subset of the iteration variables (the access function
// vector; only the *set* of distinct variables matters for the bounds).
#pragma once

#include <string>
#include <vector>

#include "support/check.hpp"

namespace conflux::daap {

/// One array access A_j[phi_j(psi)] inside a statement.
struct AccessSpec {
  std::string array;      ///< array name (used for cross-statement reuse)
  std::vector<int> vars;  ///< distinct iteration-variable indices in phi_j

  /// dim(A_j(phi_j)): number of distinct iteration variables (Section 2.2).
  int access_dim() const { return static_cast<int>(vars.size()); }
};

/// One statement S: A_0[phi_0] <- f(A_1[phi_1], ..., A_m[phi_m]).
struct StatementSpec {
  std::string name;
  int num_vars = 0;                  ///< loop-nest depth l
  std::vector<AccessSpec> inputs;    ///< the m input accesses (dominator set)
  AccessSpec output;                 ///< A_0 access (used for output reuse)
  /// Number of input accesses whose vertices are graph inputs with
  /// out-degree one (Lemma 6's u): e.g. the previous version of the output
  /// element when the statement is analyzed in isolation.
  int u_outdeg1_inputs = 0;

  void validate() const {
    expects(num_vars > 0, "statement needs at least one iteration variable");
    for (const auto& acc : inputs) {
      for (int v : acc.vars) {
        expects(v >= 0 && v < num_vars, "access references unknown variable");
      }
    }
    expects(u_outdeg1_inputs >= 0 &&
                u_outdeg1_inputs <= static_cast<int>(inputs.size()),
            "u must count a subset of the inputs");
  }
};

/// A program: statements plus the reuse relations between them
/// (Section 4: input overlap and output overlap).
struct InputReuse {
  std::string array;   ///< array shared as input by the two statements
  int statement_a = 0; ///< indices into ProgramSpec::statements
  int statement_b = 0;
};

struct OutputReuse {
  std::string array;    ///< output of `producer`, input of `consumer`
  int producer = 0;
  int consumer = 0;
};

struct ProgramSpec {
  std::string name;
  std::vector<StatementSpec> statements;
  std::vector<InputReuse> input_reuses;
  std::vector<OutputReuse> output_reuses;
};

// ---------------------------------------------------------------------------
// The paper's kernels (Figure 3, Listing 1), parameterized by N. The
// `vertices` fields hold the exact |V_i| counts used in Section 6.
// ---------------------------------------------------------------------------

struct KernelInstance {
  ProgramSpec program;
  std::vector<double> statement_vertices;  ///< |V_i| for each statement
};

/// Matrix multiplication C[i,j] += A[i,k]*B[k,j]: one statement, l = 3.
KernelInstance matmul_kernel(double n);

/// In-place LU without pivoting (Figure 3): S1 (column scale, u=1) and
/// S2 (trailing update), |V1| = N(N-1)/2, |V2| = N(N-1)(N-2)/3.
KernelInstance lu_kernel(double n);

/// Cholesky (Listing 1): S1 (sqrt, u=1), S2 (column scale, u=1),
/// S3 (symmetric trailing update), |V3| = N(N-1)(N-2)/6.
KernelInstance cholesky_kernel(double n);

/// Triangular solve with nrhs right-hand sides (one of the "solvers" the
/// paper's Section 4 closing remark covers): B[i,j] -= L[i,k] * B[k,j]
/// plus the diagonal scale; the update statement has the same three-access
/// structure as LU's S2, so rho = sqrt(M)/2 and Q ~ N^2 * nrhs / sqrt(M).
KernelInstance trsm_kernel(double n, double nrhs);

/// Symmetric rank-k update C[i,j] += A[i,k] * A[j,k] (i >= j): despite A
/// appearing twice, the two accesses address disjoint vertex sets through
/// different variable pairs, so DAAP's disjoint-access analysis applies
/// unchanged; |V| = N(N+1)K/2.
KernelInstance syrk_kernel(double n, double k);

}  // namespace conflux::daap
