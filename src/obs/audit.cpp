#include "obs/audit.hpp"

#include <algorithm>
#include <sstream>

#include "models/models.hpp"
#include "support/check.hpp"

namespace conflux::obs {

namespace {

constexpr std::string_view kPrefix = "dm.";

double counter_value(const metrics::Snapshot& snap, std::string_view name) {
  return snap.value(name);
}

}  // namespace

DataMovementAudit audit_data_movement(Kernel kernel,
                                      const metrics::Snapshot& before,
                                      const metrics::Snapshot& after,
                                      double n, double p, double memory_words,
                                      double modeled_words_per_rank,
                                      double bytes_per_word) {
  expects(n > 0.0 && p > 0.0 && memory_words > 0.0, "bad audit dimensions");
  expects(bytes_per_word > 0.0, "bad bytes_per_word");

  DataMovementAudit audit;
  audit.kernel = kernel;
  audit.n = n;
  audit.p = p;
  audit.memory_words = memory_words;

  // Every dm.* counter registered by `after` (the superset: registration
  // only grows); the delta vs `before` isolates the bracketed run from any
  // earlier activity without requiring a reset.
  for (const metrics::MetricValue& mv : after.values) {
    if (mv.kind != metrics::Kind::Counter) continue;
    if (mv.name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    const double delta = mv.value - counter_value(before, mv.name);
    if (delta <= 0.0) continue;
    audit.breakdown.push_back({mv.name, delta});
    audit.measured_bytes += delta;
  }
  std::sort(audit.breakdown.begin(), audit.breakdown.end(),
            [](const CounterDelta& a, const CounterDelta& b) {
              return a.name < b.name;
            });

  audit.measured_words_per_rank = audit.measured_bytes / bytes_per_word / p;
  audit.lower_bound_words =
      kernel == Kernel::kLu ? models::lu_lower_bound(n, p, memory_words)
                            : models::cholesky_lower_bound(n, p, memory_words);
  audit.modeled_words_per_rank = modeled_words_per_rank;
  if (audit.lower_bound_words > 0.0) {
    audit.measured_ratio = audit.measured_words_per_rank / audit.lower_bound_words;
    if (modeled_words_per_rank > 0.0) {
      audit.model_ratio = modeled_words_per_rank / audit.lower_bound_words;
    }
  }
  return audit;
}

void write_json(json::Writer& w, const DataMovementAudit& audit) {
  w.begin_object();
  w.field("kernel", audit.kernel == Kernel::kLu ? "lu" : "cholesky");
  w.field("n", audit.n);
  w.field("p", audit.p);
  w.field("memory_words", audit.memory_words);
  w.field("measured_bytes", audit.measured_bytes);
  w.field("measured_words_per_rank", audit.measured_words_per_rank);
  w.field("lower_bound_words", audit.lower_bound_words);
  w.field("modeled_words_per_rank", audit.modeled_words_per_rank);
  w.field("measured_ratio", audit.measured_ratio);
  w.field("model_ratio", audit.model_ratio);
  w.key("breakdown");
  w.begin_object();
  for (const CounterDelta& c : audit.breakdown) w.field(c.name, c.bytes);
  w.end_object();
  w.end_object();
}

std::string to_string(const DataMovementAudit& audit) {
  std::ostringstream os;
  os << (audit.kernel == Kernel::kLu ? "lu" : "cholesky") << " n=" << audit.n
     << " P=" << audit.p << ": measured " << audit.measured_words_per_rank
     << " words/rank, bound " << audit.lower_bound_words << " (ratio "
     << audit.measured_ratio << ")";
  return os.str();
}

}  // namespace conflux::obs
