// Measured data-movement audit against the Section 6 I/O lower bounds
// (DESIGN.md "Observability").
//
// The metrics registry accumulates MEASURED bytes at the Real-path hot
// spots under the "dm." prefix (gemm pack-buffer fills, trailing-
// accumulator reads/writes, pivot-row gathers and retirement swaps, layout
// redistribution, tournament butterfly merges). This audit turns two
// snapshots bracketing a factorization into per-rank words and compares
// them against the same closed-form lower bound the Trace-mode tables use:
//
//   measured_ratio = (sum of dm.* deltas / bytes_per_word / P)
//                    / lower_bound(N, P, M)
//
// The measured volume counts every workspace touch of the shared-memory
// execution (each operand touched once per use), so it sits a constant
// factor ABOVE both the bound and the modeled per-rank communication
// volume — the audit's invariant, gated in the benches, is that this
// factor stays bounded: the implementation moves O(lower bound) data.
#pragma once

#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/metrics.hpp"

namespace conflux::obs {

enum class Kernel { kLu, kCholesky };

/// One "dm." counter's contribution to the audited window.
struct CounterDelta {
  std::string name;
  double bytes = 0.0;
};

struct DataMovementAudit {
  Kernel kernel = Kernel::kLu;
  double n = 0.0;
  double p = 0.0;
  double memory_words = 0.0;

  double measured_bytes = 0.0;           ///< total dm.* delta, all ranks
  double measured_words_per_rank = 0.0;  ///< measured_bytes / word / P
  double lower_bound_words = 0.0;        ///< Section 6 closed form, per rank
  double modeled_words_per_rank = 0.0;   ///< caller-provided model volume (0 = none)
  double measured_ratio = 0.0;           ///< measured / lower bound
  double model_ratio = 0.0;              ///< modeled / lower bound (0 = none)
  std::vector<CounterDelta> breakdown;   ///< per-counter, sorted by name
};

/// Aggregate the "dm." counter deltas between two snapshots into an audit
/// record. `modeled_words_per_rank` is the analytic per-rank volume (e.g.
/// models::conflux_lu_volume_exact) when the caller has one; 0 omits the
/// model comparison. `bytes_per_word` converts the byte counters into the
/// bound's word unit (8 for the fp64 path, 4 for fp32).
DataMovementAudit audit_data_movement(Kernel kernel,
                                      const metrics::Snapshot& before,
                                      const metrics::Snapshot& after,
                                      double n, double p, double memory_words,
                                      double modeled_words_per_rank = 0.0,
                                      double bytes_per_word = 8.0);

/// Write the audit as one JSON object value (the caller has positioned the
/// writer — typically right after w.key("data_movement_audit")).
void write_json(json::Writer& w, const DataMovementAudit& audit);

/// Human-readable one-liner for logs and bench stdout.
std::string to_string(const DataMovementAudit& audit);

}  // namespace conflux::obs
