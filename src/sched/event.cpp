#include "sched/event.hpp"

namespace conflux::sched {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Compute: return "compute";
    case EventKind::Transfer: return "transfer";
    case EventKind::Send: return "send";
    case EventKind::Recv: return "recv";
    case EventKind::Chain: return "chain";
    case EventKind::Barrier: return "barrier";
  }
  return "?";
}

void EventLog::on_flops(int rank, double flops) {
  Event e;
  e.kind = EventKind::Compute;
  e.rank = rank;
  e.label = current_label_;
  e.flops = flops;
  events_.push_back(e);
}

void EventLog::on_transfer(int src, int dst, double words) {
  Event e;
  e.kind = EventKind::Transfer;
  e.rank = src;
  e.peer = dst;
  e.label = current_label_;
  e.words = words;
  e.messages = 1;
  events_.push_back(e);
}

void EventLog::on_send(int rank, double words, long long messages) {
  Event e;
  e.kind = EventKind::Send;
  e.rank = rank;
  e.label = current_label_;
  e.words = words;
  e.messages = messages;
  events_.push_back(e);
}

void EventLog::on_recv(int rank, double words, long long messages) {
  Event e;
  e.kind = EventKind::Recv;
  e.rank = rank;
  e.label = current_label_;
  e.words = words;
  e.messages = messages;
  events_.push_back(e);
}

void EventLog::on_chain(double rounds) {
  Event e;
  e.kind = EventKind::Chain;
  e.label = current_label_;
  e.rounds = rounds;
  events_.push_back(e);
}

void EventLog::on_barrier() {
  Event e;
  e.kind = EventKind::Barrier;
  e.label = current_label_;
  events_.push_back(e);
  ++num_barriers_;
}

void EventLog::on_annotation(const char* label) {
  // Intern: phases repeat every outer iteration, so linear search over the
  // handful of distinct labels beats a map.
  const std::string name(label);
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == name) {
      current_label_ = static_cast<std::int32_t>(i);
      return;
    }
  }
  labels_.push_back(name);
  current_label_ = static_cast<std::int32_t>(labels_.size() - 1);
}

const std::string& EventLog::label_of(const Event& e) const {
  static const std::string none;
  if (e.label < 0 || static_cast<std::size_t>(e.label) >= labels_.size()) return none;
  return labels_[static_cast<std::size_t>(e.label)];
}

void EventLog::clear() {
  events_.clear();
  labels_.clear();
  current_label_ = -1;
  num_barriers_ = 0;
}

}  // namespace conflux::sched
