// Discrete-event replay of a recorded run under an alpha-beta-gamma model
// with *bounded* overlap (DESIGN.md, "the third time model").
//
// xsim::Machine brackets reality with two degenerate models: elapsed_time()
// (strict BSP — every superstep costs the slowest rank, nothing pipelines)
// and modeled_time_overlap() (perfect pipelining — barriers are free and
// only per-rank aggregate volume matters). Timeline replays the event DAG
// between those extremes:
//
//   - per-rank serial compute: a rank's CPU executes its compute events in
//     program order, one at a time;
//   - per-link occupancy: each rank's egress and ingress links serialize
//     their transfers at beta words/s plus alpha per message;
//   - bounded asynchrony: up to `max_outstanding` sends may be in flight
//     before the CPU stalls on the oldest one (0 = synchronous sends);
//   - dependency edges: a transfer arrives at its receiver no earlier than
//     the sender's link finished pushing it (send -> recv matching);
//     aggregate recvs wait for the superstep's send frontier; barriers make
//     each rank drain its own links (global_barriers additionally syncs all
//     ranks, recovering strict BSP behavior).
//
// The same pass re-derives both machine bounds from the events alone —
// strict_bsp_time() and perfect_overlap_time() reproduce the Machine's
// numbers bit-for-bit (a test asserts this), which validates that the event
// stream captures everything the counters did. modeled_time() is the raw
// event-driven finish time clamped into the [overlap, BSP] bracket: the raw
// replay can in principle dip below the volume-serial overlap bound (a real
// NIC overlaps compute with transfers; the overlap model serializes them
// per rank), so the reported bounded-overlap time keeps the model-ordering
// invariant by construction. raw_event_time() exposes the unclamped value.
#pragma once

#include <vector>

#include "sched/event.hpp"
#include "xsim/machine.hpp"

namespace conflux::sched {

struct TimelineOptions {
  /// Sends a rank may have in flight before its CPU stalls on the oldest
  /// (the "configurable cap on outstanding messages"). 0 = synchronous.
  int max_outstanding = 4;
  /// true: every step_barrier synchronizes all ranks (strict-BSP style);
  /// false: each rank only drains its own links and proceeds.
  bool global_barriers = false;
  /// Retain per-event slices (start, duration, track) for Chrome-trace
  /// export. Off by default: paper-scale Trace runs record millions of
  /// events.
  bool record_slices = false;
  /// Run the second, lazy-deferral replay pass behind
  /// modeled_time_lookahead(). On by default; paper-scale analyses that
  /// only need modeled_time() can switch it off to halve the replay cost
  /// (modeled_time_lookahead() then conservatively reports modeled_time(),
  /// keeping the four-model ordering intact).
  bool model_lookahead = true;
};

/// Per-rank busy/idle breakdown of the replay.
struct RankUsage {
  double compute_busy_s = 0.0;  ///< CPU time in compute events
  double send_busy_s = 0.0;     ///< egress-link occupancy
  double recv_busy_s = 0.0;     ///< ingress-link occupancy
  double finish_s = 0.0;        ///< when the rank's last resource went idle
  double idle_s() const {
    const double busy = compute_busy_s + send_busy_s + recv_busy_s;
    return finish_s > busy ? finish_s - busy : 0.0;
  }
};

/// One rendered interval on a rank's CPU / egress / ingress track.
struct Slice {
  enum class Track : std::uint8_t { Cpu, Out, In };
  std::int32_t rank = 0;
  Track track = Track::Cpu;
  EventKind kind = EventKind::Compute;
  std::int32_t label = -1;  ///< index into the source log's labels()
  double start_s = 0.0;
  double duration_s = 0.0;
  double words = 0.0;
  double flops = 0.0;
  long long step = 0;
};

class Timeline {
 public:
  Timeline(const EventLog& log, const xsim::MachineSpec& spec,
           TimelineOptions opt = {});

  /// Bounded-overlap modeled time: raw_event_time() clamped into the
  /// [perfect_overlap_time(), strict_bsp_time()] bracket.
  double modeled_time() const { return modeled_; }
  /// Lookahead-pipelined modeled time: the same replay, but compute events
  /// whose phase label ends in "-lazy" (the Schur remainders of the
  /// factorizations' urgent/lazy split) are deferred into the rank's idle
  /// time — a lazy charge joins a per-rank backlog that drains for free
  /// whenever the CPU would stall on a link or barrier, is forced to
  /// complete before the next "-urgent" phase (the pipelined executor's
  /// real dependency), and any residue is paid at the end. Clamped into
  /// [perfect_overlap_time(), modeled_time()], so the four-model ordering
  ///   elapsed >= modeled >= modeled_lookahead >= overlap
  /// holds by construction (asserted in sched_test).
  double modeled_time_lookahead() const { return lookahead_; }
  /// Unclamped event-driven finish time (max over ranks and links).
  double raw_event_time() const { return raw_; }
  /// Unclamped finish time of the lookahead pass (at most raw_event_time():
  /// deferral can only shorten the replay; tests assert this).
  double raw_lookahead_time() const { return raw_lookahead_; }
  /// Strict-BSP bound re-derived from the events; equals the recorded
  /// Machine's elapsed_time() exactly.
  double strict_bsp_time() const { return bsp_; }
  /// Perfect-overlap bound re-derived from the events; equals the recorded
  /// Machine's modeled_time_overlap() exactly.
  double perfect_overlap_time() const { return overlap_; }

  long long num_steps() const { return steps_; }
  const std::vector<RankUsage>& rank_usage() const { return usage_; }
  /// Populated only with TimelineOptions::record_slices.
  const std::vector<Slice>& slices() const { return slices_; }
  /// Labels copied from the source log (so slices outlive it).
  const std::vector<std::string>& labels() const { return labels_; }
  const xsim::MachineSpec& spec() const { return spec_; }

 private:
  /// One pass over the event stream. With `lookahead_mode` the lazy-phase
  /// deferral described at modeled_time_lookahead() is applied and only the
  /// returned raw finish time is meaningful; otherwise the pass fills every
  /// member (bounds, usage, slices). Returns the raw event finish time.
  double replay(const EventLog& log, const TimelineOptions& opt,
                bool lookahead_mode);

  xsim::MachineSpec spec_;
  double modeled_ = 0.0;
  double lookahead_ = 0.0;
  double raw_ = 0.0;
  double raw_lookahead_ = 0.0;
  double bsp_ = 0.0;
  double overlap_ = 0.0;
  long long steps_ = 0;
  std::vector<RankUsage> usage_;
  std::vector<Slice> slices_;
  std::vector<std::string> labels_;
};

}  // namespace conflux::sched
