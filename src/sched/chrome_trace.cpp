#include "sched/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

#include "support/json.hpp"

namespace conflux::sched {

namespace {

constexpr double kSecondsToUs = 1e6;

int tid_of(Slice::Track track) {
  switch (track) {
    case Slice::Track::Cpu: return 0;
    case Slice::Track::Out: return 1;
    case Slice::Track::In: return 2;
  }
  return 0;
}

const char* track_name(Slice::Track track) {
  switch (track) {
    case Slice::Track::Cpu: return "cpu";
    case Slice::Track::Out: return "net-out";
    case Slice::Track::In: return "net-in";
  }
  return "?";
}

const char* category_name(TaskCategory c) {
  switch (c) {
    case TaskCategory::Urgent: return "urgent";
    case TaskCategory::Lazy: return "lazy";
    case TaskCategory::Other: return "other";
  }
  return "?";
}

/// Metadata event naming a trace process or thread.
void write_meta(json::Writer& w, const char* what, int pid, int tid,
                const std::string& name) {
  w.begin_object();
  w.field("name", what);
  w.field("ph", "M");
  w.field("pid", pid);
  w.field("tid", tid);
  w.key("args");
  w.begin_object();
  w.field("name", std::string_view(name));
  w.end_object();
  w.end_object();
}

/// Complete-event ("X") header up to its args (caller writes args + closes).
void begin_complete(json::Writer& w, std::string_view name, const char* cat,
                    int pid, int tid, double start_s, double dur_s) {
  w.begin_object();
  w.field("name", name);
  w.field("cat", cat);
  w.field("ph", "X");
  w.field("pid", pid);
  w.field("tid", tid);
  w.field("ts", start_s * kSecondsToUs);
  w.field("dur", dur_s * kSecondsToUs);
}

/// The task-pool process (pid `pid`): one thread per worker, one "X" event
/// per executed task. Shared by the task trace and the unified trace.
std::size_t write_task_events(json::Writer& w, int pid,
                              const std::vector<TaskSlice>& slices) {
  std::size_t count = 0;
  int max_worker = 0;
  for (const TaskSlice& s : slices) max_worker = std::max(max_worker, s.worker);
  write_meta(w, "process_name", pid, 0, "task pool");
  ++count;
  for (int worker = 0; worker <= max_worker; ++worker) {
    write_meta(w, "thread_name", pid, worker,
               worker == 0 ? std::string("master")
                           : "worker " + std::to_string(worker));
    ++count;
  }
  for (const TaskSlice& s : slices) {
    begin_complete(w, s.name, category_name(s.category), pid, s.worker,
                   s.start_s, s.end_s - s.start_s);
    w.key("args");
    w.begin_object();
    w.field("step", s.step);
    w.end_object();
    w.end_object();
    ++count;
  }
  return count;
}

}  // namespace

std::size_t write_chrome_trace(std::ostream& os, const Timeline& timeline) {
  const int p = timeline.spec().num_ranks;
  const int machine_pid = p;  // the step markers' synthetic process
  std::size_t count = 0;
  json::Writer w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  // Metadata: name only the processes/threads that actually have slices.
  std::vector<bool> seen(static_cast<std::size_t>(p) * 3, false);
  bool machine_seen = false;
  for (const Slice& s : timeline.slices()) {
    if (s.rank < 0) {
      machine_seen = true;
      continue;
    }
    seen[static_cast<std::size_t>(s.rank) * 3 +
         static_cast<std::size_t>(tid_of(s.track))] = true;
  }
  for (int r = 0; r < p; ++r) {
    bool any = false;
    for (int t = 0; t < 3; ++t) any = any || seen[static_cast<std::size_t>(r) * 3 + t];
    if (!any) continue;
    write_meta(w, "process_name", r, 0, "rank " + std::to_string(r));
    ++count;
    for (int t = 0; t < 3; ++t) {
      if (!seen[static_cast<std::size_t>(r) * 3 + t]) continue;
      write_meta(w, "thread_name", r, t,
                 track_name(static_cast<Slice::Track>(t)));
      ++count;
    }
  }
  if (machine_seen) {
    write_meta(w, "process_name", machine_pid, 0, "machine");
    ++count;
  }

  const auto& labels = timeline.labels();
  for (const Slice& s : timeline.slices()) {
    if (s.rank < 0) {
      // Superstep barrier: a machine-global instant marker.
      w.begin_object();
      w.field("name", "step " + std::to_string(s.step));
      w.field("ph", "i");
      w.field("s", "g");
      w.field("pid", machine_pid);
      w.field("tid", 0);
      w.field("ts", s.start_s * kSecondsToUs);
      w.end_object();
      ++count;
      continue;
    }
    const std::string_view name =
        (s.label >= 0 && static_cast<std::size_t>(s.label) < labels.size())
            ? std::string_view(labels[static_cast<std::size_t>(s.label)])
            : std::string_view(kind_name(s.kind));
    begin_complete(w, name, kind_name(s.kind), s.rank, tid_of(s.track),
                   s.start_s, s.duration_s);
    w.key("args");
    w.begin_object();
    w.field("step", s.step);
    w.field("words", s.words);
    w.field("flops", s.flops);
    w.end_object();
    w.end_object();
    ++count;
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return count;
}

bool write_chrome_trace_file(const std::string& path, const Timeline& timeline) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, timeline);
  return out.good();
}

std::size_t write_task_trace(std::ostream& os,
                             const std::vector<TaskSlice>& slices) {
  json::Writer w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  const std::size_t count = write_task_events(w, 0, slices);
  w.end_array();
  w.end_object();
  os << "\n";
  return count;
}

bool write_task_trace_file(const std::string& path,
                           const std::vector<TaskSlice>& slices) {
  std::ofstream out(path);
  if (!out) return false;
  write_task_trace(out, slices);
  return out.good();
}

std::size_t write_unified_trace(std::ostream& os,
                                const std::vector<TaskSlice>& task_slices,
                                const prof::Capture& capture) {
  constexpr int kPoolPid = 0;
  constexpr int kPhasePid = 1;
  constexpr int kCounterPid = 2;
  json::Writer w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  std::size_t count = write_task_events(w, kPoolPid, task_slices);

  // Phase spans: one trace thread per annotating thread. Span and task
  // timestamps come from two recordings started back-to-back by the same
  // caller, so the epochs line up to within the start-call skew.
  if (!capture.spans.empty()) {
    int max_thread = 0;
    for (const prof::SpanRecord& s : capture.spans) {
      max_thread = std::max(max_thread, s.thread);
    }
    write_meta(w, "process_name", kPhasePid, 0, "phases");
    ++count;
    for (int t = 0; t <= max_thread; ++t) {
      write_meta(w, "thread_name", kPhasePid, t,
                 t == 0 ? std::string("main") : "thread " + std::to_string(t));
      ++count;
    }
    for (const prof::SpanRecord& s : capture.spans) {
      begin_complete(w, s.name, "phase", kPhasePid, s.thread, s.t0,
                     s.t1 - s.t0);
      w.key("args");
      w.begin_object();
      w.field("step", s.step);
      w.end_object();
      w.end_object();
      ++count;
    }
  }

  // Counter tracks: Chrome "C" events render as stacked area charts.
  if (!capture.samples.empty()) {
    write_meta(w, "process_name", kCounterPid, 0, "counters");
    ++count;
    for (const prof::CounterSample& s : capture.samples) {
      w.begin_object();
      w.field("name", std::string_view(s.name));
      w.field("ph", "C");
      w.field("pid", kCounterPid);
      w.field("tid", 0);
      w.field("ts", s.t * kSecondsToUs);
      w.key("args");
      w.begin_object();
      w.field("value", s.value);
      w.end_object();
      w.end_object();
      ++count;
    }
  }

  w.end_array();
  w.end_object();
  os << "\n";
  return count;
}

bool write_unified_trace_file(const std::string& path,
                              const std::vector<TaskSlice>& task_slices,
                              const prof::Capture& capture) {
  std::ofstream out(path);
  if (!out) return false;
  write_unified_trace(out, task_slices, capture);
  return out.good();
}

}  // namespace conflux::sched
