#include "sched/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

namespace conflux::sched {

namespace {

constexpr double kSecondsToUs = 1e6;

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop control chars
        os << c;
    }
  }
}

int tid_of(Slice::Track track) {
  switch (track) {
    case Slice::Track::Cpu: return 0;
    case Slice::Track::Out: return 1;
    case Slice::Track::In: return 2;
  }
  return 0;
}

const char* track_name(Slice::Track track) {
  switch (track) {
    case Slice::Track::Cpu: return "cpu";
    case Slice::Track::Out: return "net-out";
    case Slice::Track::In: return "net-in";
  }
  return "?";
}

}  // namespace

std::size_t write_chrome_trace(std::ostream& os, const Timeline& timeline) {
  const int p = timeline.spec().num_ranks;
  const int machine_pid = p;  // the step markers' synthetic process
  const auto old_precision = os.precision(15);
  std::size_t count = 0;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  const auto sep = [&] { os << (count == 0 ? "\n" : ",\n"); };

  // Metadata: name only the processes/threads that actually have slices.
  std::vector<bool> seen(static_cast<std::size_t>(p) * 3, false);
  bool machine_seen = false;
  for (const Slice& s : timeline.slices()) {
    if (s.rank < 0) {
      machine_seen = true;
      continue;
    }
    seen[static_cast<std::size_t>(s.rank) * 3 +
         static_cast<std::size_t>(tid_of(s.track))] = true;
  }
  for (int r = 0; r < p; ++r) {
    bool any = false;
    for (int t = 0; t < 3; ++t) any = any || seen[static_cast<std::size_t>(r) * 3 + t];
    if (!any) continue;
    sep();
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << r
       << ", \"tid\": 0, \"args\": {\"name\": \"rank " << r << "\"}}";
    ++count;
    for (int t = 0; t < 3; ++t) {
      if (!seen[static_cast<std::size_t>(r) * 3 + t]) continue;
      sep();
      os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << r
         << ", \"tid\": " << t << ", \"args\": {\"name\": \""
         << track_name(static_cast<Slice::Track>(t)) << "\"}}";
      ++count;
    }
  }
  if (machine_seen) {
    sep();
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << machine_pid
       << ", \"tid\": 0, \"args\": {\"name\": \"machine\"}}";
    ++count;
  }

  const auto& labels = timeline.labels();
  for (const Slice& s : timeline.slices()) {
    if (s.rank < 0) {
      // Superstep barrier: a machine-global instant marker.
      sep();
      os << "  {\"name\": \"step " << s.step << "\", \"ph\": \"i\", \"s\": \"g\", "
         << "\"pid\": " << machine_pid << ", \"tid\": 0, \"ts\": "
         << s.start_s * kSecondsToUs << "}";
      ++count;
      continue;
    }
    sep();
    os << "  {\"name\": \"";
    if (s.label >= 0 && static_cast<std::size_t>(s.label) < labels.size()) {
      write_escaped(os, labels[static_cast<std::size_t>(s.label)]);
    } else {
      os << kind_name(s.kind);
    }
    os << "\", \"cat\": \"" << kind_name(s.kind) << "\", \"ph\": \"X\", \"pid\": "
       << s.rank << ", \"tid\": " << tid_of(s.track) << ", \"ts\": "
       << s.start_s * kSecondsToUs << ", \"dur\": " << s.duration_s * kSecondsToUs
       << ", \"args\": {\"step\": " << s.step << ", \"words\": " << s.words
       << ", \"flops\": " << s.flops << "}}";
    ++count;
  }
  os << "\n]}\n";
  os.precision(old_precision);
  return count;
}

bool write_chrome_trace_file(const std::string& path, const Timeline& timeline) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, timeline);
  return out.good();
}

namespace {

const char* category_name(TaskCategory c) {
  switch (c) {
    case TaskCategory::Urgent: return "urgent";
    case TaskCategory::Lazy: return "lazy";
    case TaskCategory::Other: return "other";
  }
  return "?";
}

}  // namespace

std::size_t write_task_trace(std::ostream& os,
                             const std::vector<TaskSlice>& slices) {
  const auto old_precision = os.precision(15);
  std::size_t count = 0;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  const auto sep = [&] { os << (count == 0 ? "\n" : ",\n"); };

  int max_worker = 0;
  for (const TaskSlice& s : slices) max_worker = std::max(max_worker, s.worker);
  sep();
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, "
     << "\"args\": {\"name\": \"task pool\"}}";
  ++count;
  for (int w = 0; w <= max_worker; ++w) {
    sep();
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
       << w << ", \"args\": {\"name\": \"";
    if (w == 0) {
      os << "master";
    } else {
      os << "worker " << w;
    }
    os << "\"}}";
    ++count;
  }

  for (const TaskSlice& s : slices) {
    sep();
    os << "  {\"name\": \"";
    write_escaped(os, s.name);
    os << "\", \"cat\": \"" << category_name(s.category)
       << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " << s.worker
       << ", \"ts\": " << s.start_s * kSecondsToUs
       << ", \"dur\": " << (s.end_s - s.start_s) * kSecondsToUs
       << ", \"args\": {\"step\": " << s.step << "}}";
    ++count;
  }
  os << "\n]}\n";
  os.precision(old_precision);
  return count;
}

bool write_task_trace_file(const std::string& path,
                           const std::vector<TaskSlice>& slices) {
  std::ofstream out(path);
  if (!out) return false;
  write_task_trace(out, slices);
  return out.good();
}

}  // namespace conflux::sched
