// Typed event stream of one simulated run (the front half of the
// discrete-event timeline engine, DESIGN.md).
//
// EventLog implements xsim::EventSink: attach it to a Machine and every
// charge_flops / charge_transfer / charge_send / charge_recv / charge_chain
// / step_barrier call is mirrored as one Event in program order. The
// recorded order is a valid topological order of the schedule's dependency
// DAG — each rank's events appear in its program order, and a transfer is
// recorded when the algorithm charges it, i.e. before anything that consumes
// the received data — so sched::Timeline can replay the stream in one pass.
//
// Events are value types with exact (==) comparison: the Trace == Real
// event-stream equality test in tests/sched_test.cpp compares whole logs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xsim/machine.hpp"

namespace conflux::sched {

enum class EventKind : std::uint8_t {
  Compute,   ///< charge_flops(rank, flops)
  Transfer,  ///< charge_transfer(rank -> peer, words), one message each way
  Send,      ///< charge_send(rank, words, messages): aggregate egress
  Recv,      ///< charge_recv(rank, words, messages): aggregate ingress
  Chain,     ///< charge_chain(rounds): latency-chain rounds (no rank)
  Barrier,   ///< step_barrier(): closes the superstep across all ranks
};

const char* kind_name(EventKind kind);

struct Event {
  EventKind kind = EventKind::Barrier;
  std::int32_t rank = -1;   ///< acting rank (Transfer: the sender)
  std::int32_t peer = -1;   ///< Transfer: the receiver
  std::int32_t label = -1;  ///< index into EventLog::labels(), -1 = none
  double words = 0.0;
  double flops = 0.0;
  double rounds = 0.0;
  long long messages = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

class EventLog final : public xsim::EventSink {
 public:
  void on_flops(int rank, double flops) override;
  void on_transfer(int src, int dst, double words) override;
  void on_send(int rank, double words, long long messages) override;
  void on_recv(int rank, double words, long long messages) override;
  void on_chain(double rounds) override;
  void on_barrier() override;
  void on_annotation(const char* label) override;

  const std::vector<Event>& events() const { return events_; }
  /// Interned phase labels; Event::label indexes into this.
  const std::vector<std::string>& labels() const { return labels_; }
  const std::string& label_of(const Event& e) const;

  long long num_barriers() const { return num_barriers_; }
  void clear();

 private:
  std::vector<Event> events_;
  std::vector<std::string> labels_;
  std::int32_t current_label_ = -1;
  long long num_barriers_ = 0;
};

/// Attach a log to a machine for the current scope (restores the previous
/// sink on destruction, so recordings nest).
class ScopedRecord {
 public:
  ScopedRecord(xsim::Machine& m, EventLog& log) : m_(m), prev_(m.event_sink()) {
    m_.set_event_sink(&log);
  }
  ~ScopedRecord() { m_.set_event_sink(prev_); }
  ScopedRecord(const ScopedRecord&) = delete;
  ScopedRecord& operator=(const ScopedRecord&) = delete;

 private:
  xsim::Machine& m_;
  xsim::EventSink* prev_;
};

}  // namespace conflux::sched
