// Deterministic fan-out over simulated-rank (or layer) tasks — a thin
// compatibility shim over the persistent TaskPool (sched/taskpool.hpp).
//
// Real-mode execution keeps one OS process for all P simulated ranks, so
// per-rank local compute — the 1D panel trsms and the per-layer Schur
// updates, which operate on disjoint buffers — can run across host threads.
// Historically this forked a fresh OpenMP team per call; it now rides the
// pool's long-lived workers (parallel_for), keeping the two rules that make
// results bitwise-identical for every thread count (DESIGN.md):
//   1. the task decomposition is fixed by the schedule (per simulated rank
//      / per layer / fixed row blocks), never by the worker count;
//   2. each output element is written by exactly one task, with the same
//      arithmetic the serial loop performs.
// Threads then only change *who* executes a task, not what it computes.
//
// Fast path: when n < 2, only one thread is configured, or the caller is
// already inside a pool worker or an OpenMP parallel region, the loop runs
// inline with zero synchronization — no team spin-up for single-chunk work
// (TaskPool::parallel_for performs the same checks; the omp_in_parallel
// guard here covers callers nested under foreign OpenMP regions).
#pragma once

#include "sched/taskpool.hpp"
#include "tensor/matrix.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace conflux::sched {

/// Run body(i) for i in [0, n). Tasks must be independent (disjoint writes).
template <typename Body>
void parallel_ranks(index_t n, Body&& body) {
#ifdef _OPENMP
  if (omp_in_parallel()) {
    for (index_t i = 0; i < n; ++i) body(i);
    return;
  }
#endif
  TaskPool::instance().parallel_for(n, std::forward<Body>(body));
}

/// Fixed row-block width for blocked per-task updates: a multiple of the
/// gemm register tile so block boundaries never change microkernel edge
/// handling, and therefore never change results across thread counts.
inline constexpr index_t kRowBlock = 128;

inline index_t num_row_blocks(index_t rows) {
  return rows > 0 ? (rows + kRowBlock - 1) / kRowBlock : 0;
}

}  // namespace conflux::sched
