// Deterministic OpenMP fan-out over simulated-rank (or layer) tasks.
//
// Real-mode execution keeps one OS process for all P simulated ranks, so
// per-rank local compute — the 1D panel trsms and the per-layer Schur
// updates, which operate on disjoint buffers — can run across host threads.
// Two rules keep results bitwise-identical for every thread count
// (DESIGN.md):
//   1. the task decomposition is fixed by the schedule (per simulated rank
//      / per layer / fixed row blocks), never by omp_get_num_threads();
//   2. each output element is written by exactly one task, with the same
//      arithmetic the serial loop performs.
// Threads then only change *who* executes a task, not what it computes.
#pragma once

#include "tensor/matrix.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace conflux::sched {

/// Run body(i) for i in [0, n). Tasks must be independent (disjoint writes).
/// Falls back to the serial loop when OpenMP is absent, nested inside
/// another parallel region, or pointless (n < 2).
template <typename Body>
void parallel_ranks(index_t n, Body&& body) {
#ifdef _OPENMP
  if (n > 1 && !omp_in_parallel() && omp_get_max_threads() > 1) {
#pragma omp parallel for schedule(static)
    for (index_t i = 0; i < n; ++i) body(i);
    return;
  }
#endif
  for (index_t i = 0; i < n; ++i) body(i);
}

/// Fixed row-block width for blocked per-task updates: a multiple of the
/// gemm register tile so block boundaries never change microkernel edge
/// handling, and therefore never change results across thread counts.
inline constexpr index_t kRowBlock = 128;

inline index_t num_row_blocks(index_t rows) {
  return rows > 0 ? (rows + kRowBlock - 1) / kRowBlock : 0;
}

}  // namespace conflux::sched
