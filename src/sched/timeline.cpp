#include "sched/timeline.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace conflux::sched {

namespace {

/// Per-rank replay state: a CPU clock (program order), one clock per link
/// direction, the bounded in-flight send window, plus the step and total
/// accumulators used to re-derive the two machine bounds. `backlog` is the
/// lookahead pass's deferred lazy compute (seconds).
struct RankState {
  double cpu = 0.0;
  double nic_out = 0.0;
  double nic_in = 0.0;
  double backlog = 0.0;
  std::deque<double> inflight;  // completion times of in-flight sends

  // Superstep accumulators (mirror Machine::StepCounters).
  double step_sent = 0.0;
  double step_recv = 0.0;
  double step_flops = 0.0;
  long long step_msgs = 0;
  bool touched = false;

  // Run totals (mirror xsim::RankCounters for the overlap bound).
  double total_sent = 0.0;
  double total_recv = 0.0;
  double total_flops = 0.0;
};

}  // namespace

Timeline::Timeline(const EventLog& log, const xsim::MachineSpec& spec,
                   TimelineOptions opt)
    : spec_(spec) {
  expects(spec.num_ranks >= 1, "need at least one rank");
  usage_.assign(static_cast<std::size_t>(spec.num_ranks), RankUsage{});
  labels_ = log.labels();
  raw_ = replay(log, opt, /*lookahead_mode=*/false);
  {
    const double lo = std::min(overlap_, bsp_);
    const double hi = std::max(overlap_, bsp_);
    modeled_ = std::clamp(raw_, lo, hi);
  }
  // Second pass with lazy-phase deferral; clamping into
  // [overlap, modeled] keeps the four-model ordering by construction. A
  // log with no "-lazy" phase at all (baselines, micro-logs) would replay
  // identically, so skip the pass and reuse the primary result.
  const bool has_lazy = std::any_of(
      labels_.begin(), labels_.end(),
      [](const std::string& l) { return l.ends_with("-lazy"); });
  if (opt.model_lookahead && has_lazy) {
    raw_lookahead_ = replay(log, opt, /*lookahead_mode=*/true);
    lookahead_ = std::clamp(raw_lookahead_, std::min(overlap_, modeled_), modeled_);
  } else {
    raw_lookahead_ = raw_;
    lookahead_ = modeled_;
  }
}

double Timeline::replay(const EventLog& log, const TimelineOptions& opt,
                        bool lookahead_mode) {
  const double alpha = spec_.alpha_s;
  const double beta = spec_.beta_words_per_s;
  const double gamma = spec_.gamma_flops_per_s;
  const int p = spec_.num_ranks;
  const bool primary = !lookahead_mode;

  // Which interned labels mark the lookahead split's phases.
  std::vector<std::uint8_t> lazy_label, urgent_label;
  if (lookahead_mode) {
    lazy_label.resize(labels_.size(), 0);
    urgent_label.resize(labels_.size(), 0);
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      lazy_label[i] = labels_[i].ends_with("-lazy") ? 1 : 0;
      urgent_label[i] = labels_[i].ends_with("-urgent") ? 1 : 0;
    }
  }
  const auto is_lazy = [&](std::int32_t label) {
    return lookahead_mode && label >= 0 &&
           static_cast<std::size_t>(label) < lazy_label.size() &&
           lazy_label[static_cast<std::size_t>(label)] != 0;
  };
  const auto is_urgent = [&](std::int32_t label) {
    return lookahead_mode && label >= 0 &&
           static_cast<std::size_t>(label) < urgent_label.size() &&
           urgent_label[static_cast<std::size_t>(label)] != 0;
  };

  std::vector<RankState> rank(static_cast<std::size_t>(p));
  std::vector<int> touched;
  touched.reserve(static_cast<std::size_t>(p));
  // Completion frontier of the current superstep's sends: aggregate recvs
  // (whose matching senders are not identified) cannot finish before it.
  // Recvs may be recorded before their peers' sends within a step, so they
  // are deferred and replayed at the step's barrier, once the frontier is
  // complete — sound because within a superstep send/compute timing never
  // depends on same-step recvs (nic_in feeds back into cpu only at the
  // barrier).
  double send_frontier = 0.0;
  std::vector<Event> deferred_recvs;
  // With global barriers, the release time of the last closed superstep;
  // applied lazily when a rank is first touched in the next step.
  double global_floor = 0.0;
  double chain_rounds = 0.0;
  double bsp_acc = 0.0;
  long long steps_acc = 0;

  // Raise a rank's CPU clock to a wait target: in the lookahead pass the
  // stall first drains deferred lazy work "for free" (the pipelined
  // executor fills exactly these gaps with the lazy remainder).
  const auto raise_cpu = [&](RankState& s, double target) {
    if (target <= s.cpu) return;
    const double absorb = std::min(target - s.cpu, s.backlog);
    s.backlog -= absorb;
    s.cpu = target;
  };

  const auto touch = [&](int r) -> RankState& {
    expects(r >= 0 && r < p, "event rank out of range");
    RankState& s = rank[static_cast<std::size_t>(r)];
    if (!s.touched) {
      s.touched = true;
      touched.push_back(r);
      if (opt.global_barriers) raise_cpu(s, global_floor);
    }
    return s;
  };

  const auto add_slice = [&](std::int32_t r, Slice::Track track, const Event& e,
                             double start, double dur) {
    if (!primary || !opt.record_slices) return;
    Slice s;
    s.rank = r;
    s.track = track;
    s.kind = e.kind;
    s.label = e.label;
    s.start_s = start;
    s.duration_s = dur;
    s.words = e.words;
    s.flops = e.flops;
    s.step = steps_acc;
    slices_.push_back(s);
  };

  // A send of `cost` seconds leaves rank r's egress link; the CPU stalls
  // only when the in-flight window overflows. Returns the completion time.
  const auto push_send = [&](RankState& s, double cost) {
    const double start = std::max(s.nic_out, s.cpu);
    const double done = start + cost;
    s.nic_out = done;
    if (opt.max_outstanding <= 0) {
      raise_cpu(s, done);
    } else {
      s.inflight.push_back(done);
      while (static_cast<int>(s.inflight.size()) > opt.max_outstanding) {
        raise_cpu(s, s.inflight.front());
        s.inflight.pop_front();
      }
    }
    send_frontier = std::max(send_frontier, done);
    return done;
  };

  // Replay the step's deferred aggregate recvs against the completed send
  // frontier, in recorded order (preserves each rank's ingress ordering).
  const auto flush_recvs = [&] {
    for (const Event& e : deferred_recvs) {
      RankState& s = touch(e.rank);
      const double cost = alpha * static_cast<double>(e.messages) + e.words / beta;
      const double start = std::max(s.nic_in, send_frontier);
      s.nic_in = start + cost;
      add_slice(e.rank, Slice::Track::In, e, start, cost);
      if (primary) usage_[static_cast<std::size_t>(e.rank)].recv_busy_s += cost;
      s.step_recv += e.words;
      s.step_msgs += e.messages;
      s.total_recv += e.words;
    }
    deferred_recvs.clear();
  };

  for (const Event& e : log.events()) {
    switch (e.kind) {
      case EventKind::Compute: {
        RankState& s = touch(e.rank);
        const double cost = e.flops / gamma;
        if (is_lazy(e.label)) {
          // Deferred: the lazy remainder runs whenever this rank would
          // otherwise idle; it never delays the events that follow it.
          s.backlog += cost;
        } else {
          if (is_urgent(e.label)) {
            // The urgent stripe of the next step writes cells the lazy
            // remainder also writes: the pipelined executor orders them, so
            // the model pays any leftover backlog first.
            s.cpu += s.backlog;
            s.backlog = 0.0;
          }
          add_slice(e.rank, Slice::Track::Cpu, e, s.cpu, cost);
          s.cpu += cost;
        }
        s.step_flops += e.flops;
        s.total_flops += e.flops;
        if (primary)
          usage_[static_cast<std::size_t>(e.rank)].compute_busy_s += cost;
        break;
      }
      case EventKind::Transfer: {
        RankState& src = touch(e.rank);
        RankState& dst = touch(e.peer);
        const double cost = alpha + e.words / beta;
        const double send_start = std::max(src.nic_out, src.cpu);
        const double done = push_send(src, cost);
        add_slice(e.rank, Slice::Track::Out, e, send_start, cost);
        if (primary) usage_[static_cast<std::size_t>(e.rank)].send_busy_s += cost;
        // Matched ingress, cut-through: the receiver's link streams the
        // words while the sender pushes them (first byte after alpha), so an
        // uncontended receive finishes with the send; a busy ingress link
        // delays it.
        const double in_cost = e.words / beta;
        const double in_start = std::max(dst.nic_in, send_start + alpha);
        const double in_done = std::max(in_start + in_cost, done);
        dst.nic_in = in_done;
        add_slice(e.peer, Slice::Track::In, e, in_start, in_done - in_start);
        if (primary)
          usage_[static_cast<std::size_t>(e.peer)].recv_busy_s += in_cost;
        src.step_sent += e.words;
        src.step_msgs += 1;
        dst.step_recv += e.words;
        dst.step_msgs += 1;
        src.total_sent += e.words;
        dst.total_recv += e.words;
        break;
      }
      case EventKind::Send: {
        RankState& s = touch(e.rank);
        const double cost = alpha * static_cast<double>(e.messages) + e.words / beta;
        const double start = std::max(s.nic_out, s.cpu);
        push_send(s, cost);
        add_slice(e.rank, Slice::Track::Out, e, start, cost);
        if (primary) usage_[static_cast<std::size_t>(e.rank)].send_busy_s += cost;
        s.step_sent += e.words;
        s.step_msgs += e.messages;
        s.total_sent += e.words;
        break;
      }
      case EventKind::Recv: {
        deferred_recvs.push_back(e);
        break;
      }
      case EventKind::Chain: {
        chain_rounds += e.rounds;
        break;
      }
      case EventKind::Barrier: {
        flush_recvs();
        double step_bsp = 0.0;
        double step_end = 0.0;
        for (int r : touched) {
          RankState& s = rank[static_cast<std::size_t>(r)];
          // Strict-BSP cost of this rank's step (Machine::step_barrier).
          const double comm_words = std::max(s.step_sent, s.step_recv);
          const double t = alpha * static_cast<double>(s.step_msgs) +
                           comm_words / beta + s.step_flops / gamma;
          step_bsp = std::max(step_bsp, t);
          // Event semantics: the rank drains its own links, then proceeds
          // (in the lookahead pass the drain soaks up deferred lazy work;
          // the backlog itself survives the barrier — lazy remainders run
          // past their own superstep, that is the whole point).
          raise_cpu(s, std::max(s.nic_out, s.nic_in));
          s.inflight.clear();
          step_end = std::max(step_end, s.cpu);
          s.step_sent = s.step_recv = s.step_flops = 0.0;
          s.step_msgs = 0;
          s.touched = false;
        }
        touched.clear();
        bsp_acc += step_bsp;
        if (opt.global_barriers) global_floor = std::max(global_floor, step_end);
        send_frontier = 0.0;
        if (primary && opt.record_slices) {
          Slice s;
          s.rank = -1;  // machine-wide step marker
          s.kind = EventKind::Barrier;
          s.label = e.label;
          s.start_s = step_end;
          s.step = steps_acc;
          slices_.push_back(s);
        }
        ++steps_acc;
        break;
      }
    }
  }

  // Leftover charges after the last barrier enter the raw time and the
  // totals, mirroring the Machine (which folds nothing for them).
  flush_recvs();

  // Finish times and the two analytic bounds.
  double raw = 0.0;
  double overlap_worst = 0.0;
  for (int r = 0; r < p; ++r) {
    RankState& s = rank[static_cast<std::size_t>(r)];
    s.cpu += s.backlog;  // residual deferred lazy work is paid at the end
    s.backlog = 0.0;
    const double finish = std::max({s.cpu, s.nic_out, s.nic_in});
    raw = std::max(raw, finish);
    if (primary) usage_[static_cast<std::size_t>(r)].finish_s = finish;
    const double vol = std::max(s.total_sent, s.total_recv);
    overlap_worst = std::max(overlap_worst, vol / beta + s.total_flops / gamma);
  }
  if (primary) {
    bsp_ = bsp_acc;
    steps_ = steps_acc;
    overlap_ = overlap_worst + alpha * chain_rounds;
  }
  return raw;
}

}  // namespace conflux::sched
