#include "sched/taskpool.hpp"

#include <cstdlib>

#include "blas/tuning.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace conflux::sched {

namespace {

thread_local bool tls_on_worker = false;

int env_pool_threads() {
  static const int value = [] {
    const char* s = std::getenv("CONFLUX_POOL_THREADS");
    if (s == nullptr || *s == '\0') return 0;
    const long v = std::strtol(s, nullptr, 10);
    return v > 0 ? static_cast<int>(v) : 0;
  }();
  return value;
}

}  // namespace

TaskPool& TaskPool::instance() {
  static TaskPool pool;
  return pool;
}

TaskPool::~TaskPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int TaskPool::width() const {
  const int env = env_pool_threads();
  if (env > 0) return env;
#ifdef _OPENMP
  const int w = omp_get_max_threads();
  return w > 0 ? w : 1;
#else
  return 1;
#endif
}

bool TaskPool::on_worker_thread() { return tls_on_worker; }

void TaskPool::ensure_workers(int want) {
  while (static_cast<int>(workers_.size()) < want) {
    const int index = static_cast<int>(workers_.size()) + 1;  // 0 = master
    workers_.emplace_back([this, index] { worker_main(index); });
  }
}

TaskId TaskPool::submit(std::function<void()> fn, const char* name,
                        TaskCategory category, long long step,
                        const TaskId* deps, std::size_t ndeps) {
  const int w = width();
  if (w <= 1 && !on_worker_thread()) {
    // Single-thread fast path: honor the dependencies (they may still be
    // running on workers spawned under an earlier, wider configuration),
    // then run inline with no queue traffic at all.
    wait(deps, ndeps);
    const auto t0 = std::chrono::steady_clock::now();
    {
      xblas::ScopedThreadCap cap(1);
      fn();
    }
    const auto t1 = std::chrono::steady_clock::now();
    Task done;
    done.name = name;
    done.category = category;
    done.step = step;
    TaskId id;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      id = next_id_++;
      ++live_tasks_;
      auto [it, inserted] = tasks_.emplace(id, std::move(done));
      finish_task(id, it->second, /*worker_index=*/0,
                  std::chrono::duration<double>(t0 - record_t0_).count(),
                  std::chrono::duration<double>(t1 - record_t0_).count());
    }
    done_cv_.notify_all();
    return id;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  ensure_workers(w - 1);
  const TaskId id = next_id_++;
  Task task;
  task.fn = std::move(fn);
  task.name = name;
  task.category = category;
  task.step = step;
  for (std::size_t i = 0; i < ndeps; ++i) {
    // A still-pending or currently-running dependency blocks the new task
    // (running tasks keep their map entry until finish_task); a completed
    // or unknown id is simply ignored.
    auto it = tasks_.find(deps[i]);
    if (it != tasks_.end()) {
      it->second.dependents.push_back(id);
      ++task.pending_deps;
    }
  }
  const bool ready = task.pending_deps == 0;
  ++live_tasks_;
  tasks_.emplace(id, std::move(task));
  if (ready) {
    (category == TaskCategory::Lazy ? ready_lazy_ : ready_).push_back(id);
    lock.unlock();
    work_cv_.notify_one();
  }
  return id;
}

TaskId TaskPool::pop_ready(bool allow_lazy) {
  if (!ready_.empty()) {
    const TaskId id = ready_.front();
    ready_.pop_front();
    return id;
  }
  if (allow_lazy && !ready_lazy_.empty()) {
    const TaskId id = ready_lazy_.front();
    ready_lazy_.pop_front();
    return id;
  }
  return 0;
}

void TaskPool::finish_task(TaskId id, Task& task, int worker_index, double t0,
                           double t1) {
  // Called with mutex_ held.
  const double dur = t1 > t0 ? t1 - t0 : 0.0;
  switch (task.category) {
    case TaskCategory::Urgent: stats_.urgent_busy_s += dur; break;
    case TaskCategory::Lazy: stats_.lazy_busy_s += dur; break;
    case TaskCategory::Other: stats_.other_busy_s += dur; break;
  }
  ++stats_.tasks_run;
  if (recording_) {
    TaskSlice s;
    s.name = task.name;
    s.category = task.category;
    s.step = task.step;
    s.worker = worker_index;
    s.start_s = t0;
    s.end_s = t1;
    slices_.push_back(std::move(s));
  }
  bool woke_ready = false;
  for (TaskId dep : task.dependents) {
    auto it = tasks_.find(dep);
    if (it == tasks_.end()) continue;
    if (--it->second.pending_deps == 0) {
      (it->second.category == TaskCategory::Lazy ? ready_lazy_ : ready_)
          .push_back(dep);
      woke_ready = true;
    }
  }
  tasks_.erase(id);
  --live_tasks_;
  if (woke_ready) work_cv_.notify_all();
}

void TaskPool::execute_task(TaskId id, Task&& task, int worker_index) {
  // Called WITHOUT the lock: the caller popped `id` from a ready queue and
  // moved the map entry's body out (the entry itself stays registered so
  // wait() and dependency registration keep seeing the task as live).
  const auto t0 = std::chrono::steady_clock::now();
  {
    // Pool work never forks nested BLAS teams, even when the helping
    // master executes it (tuning.hpp, tls_thread_cap).
    xblas::ScopedThreadCap cap(1);
    task.fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    Task& rec = tasks_[id];
    rec.name = task.name;
    rec.category = task.category;
    rec.step = task.step;
    // New dependents may have been registered on the entry while the task
    // ran; merge rather than overwrite.
    rec.dependents.insert(rec.dependents.end(), task.dependents.begin(),
                          task.dependents.end());
    finish_task(id, rec, worker_index,
                std::chrono::duration<double>(t0 - record_t0_).count(),
                std::chrono::duration<double>(t1 - record_t0_).count());
  }
  done_cv_.notify_all();
}

void TaskPool::wait(const TaskId* ids, std::size_t n) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    bool all_done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (ids[i] != 0 && tasks_.count(ids[i]) != 0) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    // Help with ready non-lazy work instead of blocking: on a machine with
    // few threads this is what lets the next panel's tasks run while the
    // workers grind the previous step's lazy remainder.
    const TaskId ready_id = pop_ready(/*allow_lazy=*/false);
    if (ready_id != 0) {
      auto it = tasks_.find(ready_id);
      Task task = std::move(it->second);
      it->second.fn = nullptr;  // entry stays until finish_task (wait() keys on it)
      lock.unlock();
      execute_task(ready_id, std::move(task), /*worker_index=*/0);
      lock.lock();
      continue;
    }
    done_cv_.wait(lock);
  }
}

void TaskPool::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (live_tasks_ == 0 && job_ == nullptr) return;
    const TaskId ready_id = pop_ready(/*allow_lazy=*/true);
    if (ready_id != 0) {
      auto it = tasks_.find(ready_id);
      Task task = std::move(it->second);
      it->second.fn = nullptr;
      lock.unlock();
      execute_task(ready_id, std::move(task), /*worker_index=*/0);
      lock.lock();
      continue;
    }
    done_cv_.wait(lock);
  }
}

void TaskPool::run_parallel_job(ParallelJob& job, int team_width) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (job_ != nullptr) {
    // Re-entrant parallel_for (a helped task spawning one): run inline.
    lock.unlock();
    for (index_t i = 0; i < job.total; ++i) job.run(job.ctx, i);
    return;
  }
  ensure_workers(team_width - 1);
  job_ = &job;
  lock.unlock();
  work_cv_.notify_all();

  // Master claims indices alongside the workers.
  lock.lock();
  {
    xblas::ScopedThreadCap cap(1);
    while (job.next < job.total) {
      const index_t i = job.next++;
      lock.unlock();
      job.run(job.ctx, i);
      lock.lock();
      ++job.done;
    }
  }
  while (job.done < job.total) done_cv_.wait(lock);
  job_ = nullptr;
}

void TaskPool::worker_main(int worker_index) {
  tls_on_worker = true;
  // BLAS calls inside tasks must not spawn nested OpenMP teams: the pool
  // itself is the parallelism. The per-thread cap also defeats an
  // XBLAS_THREADS override, which ignores the OpenMP ICV.
  xblas::set_tls_thread_cap(1);
#ifdef _OPENMP
  omp_set_num_threads(1);
#endif
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_) return;
    if (job_ != nullptr && job_->next < job_->total) {
      ParallelJob& job = *job_;
      const index_t i = job.next++;
      lock.unlock();
      job.run(job.ctx, i);
      lock.lock();
      if (++job.done == job.total) {
        lock.unlock();
        done_cv_.notify_all();
        lock.lock();
      }
      continue;
    }
    const TaskId id = pop_ready(/*allow_lazy=*/true);
    if (id != 0) {
      auto it = tasks_.find(id);
      Task task = std::move(it->second);
      it->second.fn = nullptr;
      lock.unlock();
      execute_task(id, std::move(task), worker_index);
      lock.lock();
      continue;
    }
    work_cv_.wait(lock);
  }
}

void TaskPool::start_recording() {
  std::unique_lock<std::mutex> lock(mutex_);
  recording_ = true;
  slices_.clear();
  record_t0_ = std::chrono::steady_clock::now();
}

std::vector<TaskSlice> TaskPool::stop_recording() {
  std::unique_lock<std::mutex> lock(mutex_);
  recording_ = false;
  return std::move(slices_);
}

void TaskPool::reset_stats() {
  std::unique_lock<std::mutex> lock(mutex_);
  stats_ = TaskPoolStats{};
}

TaskPoolStats TaskPool::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace conflux::sched
