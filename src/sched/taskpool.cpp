#include "sched/taskpool.hpp"

#include <cstdio>
#include <cstdlib>

#include "blas/tuning.hpp"
#include "recover/options.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/status.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace conflux::sched {

namespace {

thread_local bool tls_on_worker = false;

// Pool runtime metrics (DESIGN.md "Observability"): queue-depth gauges set
// under the pool mutex on every transition, sojourn-latency histograms
// (submit -> completion, so queueing delay counts — the number that shows
// lazy work yielding to urgent work) and a task counter. All behind the
// registry's single relaxed-load branch.
const metrics::Gauge g_ready_depth("pool.ready_depth");
const metrics::Gauge g_ready_lazy_depth("pool.ready_lazy_depth");
const metrics::Counter g_tasks_run("pool.tasks_run");
constexpr std::initializer_list<double> kLatencyBounds = {
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};
const metrics::Histogram g_latency_urgent("pool.latency_urgent_s", kLatencyBounds);
const metrics::Histogram g_latency_lazy("pool.latency_lazy_s", kLatencyBounds);
const metrics::Histogram g_latency_other("pool.latency_other_s", kLatencyBounds);
// Bounded-retry accounting (DESIGN.md "Recovery model"): re-enqueues of
// retryable tasks after a transient failure, and budget exhaustions (the
// transient error then surfaces through first-error-wins). recover_test
// reconciles these against the injected transient-task-throw count.
const metrics::Counter g_task_retries("recover.task_retries");
const metrics::Counter g_task_retry_exhausted("recover.task_retry_exhausted");

int env_pool_threads() {
  static const int value = [] {
    const char* s = std::getenv("CONFLUX_POOL_THREADS");
    if (s == nullptr || *s == '\0') return 0;
    const long v = std::strtol(s, nullptr, 10);
    return v > 0 ? static_cast<int>(v) : 0;
  }();
  return value;
}

double env_watchdog_seconds() {
  static const double value = [] {
    const char* s = std::getenv("CONFLUX_WATCHDOG_S");
    if (s == nullptr || *s == '\0') return 300.0;
    const double v = std::strtod(s, nullptr);
    return v > 0.0 ? v : 300.0;
  }();
  return value;
}

/// Classify the in-flight exception (must be called inside a catch block):
/// status_error passes through untouched; anything else is wrapped into a
/// classified kTaskFailed carrying the original message.
std::exception_ptr classify_current_exception(const char* name, long long step) {
  try {
    throw;
  } catch (const status_error&) {
    return std::current_exception();
  } catch (const std::exception& e) {
    return std::make_exception_ptr(status_error(
        Status(StatusCode::kTaskFailed,
               std::string("task '") + name + "' threw: " + e.what(), step)));
  } catch (...) {
    return std::make_exception_ptr(status_error(
        Status(StatusCode::kTaskFailed,
               std::string("task '") + name + "' threw a non-std exception",
               step)));
  }
}

/// True when the in-flight exception (must be called inside a catch block)
/// is a transient-classified task failure — the only class bounded retry
/// absorbs. Everything else (numerical breakdown, plain kTaskFailed,
/// cancellation) surfaces immediately: re-running a task that divides by a
/// zero pivot produces the same zero pivot.
bool current_exception_is_transient() {
  try {
    throw;
  } catch (const status_error& e) {
    return e.code() == StatusCode::kTransientTaskFailure;
  } catch (...) {
    return false;
  }
}

/// Deterministic exponential backoff before a retry: long enough to let a
/// contended resource clear, short enough (6.4 ms cap) to stay far below
/// any watchdog interval.
void retry_backoff(int completed_attempts) {
  const int shift = completed_attempts < 5 ? completed_attempts : 5;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(0.0002 * static_cast<double>(1 << shift)));
}

}  // namespace

TaskPool& TaskPool::instance() {
  static TaskPool pool;
  return pool;
}

TaskPool::~TaskPool() {
  // Shutdown ordering: mark the pool stopped AND cancelled, and empty the
  // ready queues under the lock, so no task body starts once destruction
  // begins — a task queued behind an error unwind must not race the member
  // teardown below. Workers mid-task finish that task (join waits), then
  // see stop_ and exit; only then are the queues/map destroyed.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
    cancelled_ = true;
    ready_.clear();
    ready_lazy_.clear();
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int TaskPool::width() const {
  const int env = env_pool_threads();
  if (env > 0) return env;
#ifdef _OPENMP
  const int w = omp_get_max_threads();
  return w > 0 ? w : 1;
#else
  return 1;
#endif
}

bool TaskPool::on_worker_thread() { return tls_on_worker; }

void TaskPool::set_watchdog_seconds(double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  watchdog_override_ = seconds;
}

double TaskPool::watchdog_seconds() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return watchdog_override_ > 0.0 ? watchdog_override_ : env_watchdog_seconds();
}

void TaskPool::ensure_workers(int want) {
  while (static_cast<int>(workers_.size()) < want) {
    const int index = static_cast<int>(workers_.size()) + 1;  // 0 = master
    workers_.emplace_back([this, index] { worker_main(index); });
  }
}

void TaskPool::stall_cooperatively(double seconds) {
  // Injected worker stall: sleep in short slices, aborting as soon as the
  // pool cancels (so a watchdog-initiated unwind drains promptly instead of
  // waiting out the full stall).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cancelled_ || stop_) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void TaskPool::run_task_body(const std::function<void()>& fn, bool retryable) {
  if (fault::enabled()) {
    if (fault::should_inject(fault::Site::kWorkerStall)) {
      stall_cooperatively(fault::config().stall_s);
    }
    if (fault::should_inject(fault::Site::kTaskThrow)) {
      throw std::runtime_error("injected pool-task fault");
    }
    // Transient faults are only injected into tasks that opted into retry:
    // the site exists to exercise the retry machinery, and a non-retryable
    // body (a parallel_for index, a one-shot reduction) has no re-execution
    // contract to test. The per-site counter advances on every opportunity,
    // so a re-executed task draws a fresh decision and eventually succeeds.
    if (retryable && fault::should_inject(fault::Site::kTransientTaskThrow)) {
      throw status_error(Status(StatusCode::kTransientTaskFailure,
                                "injected transient task fault"));
    }
  }
  // Pool work never forks nested BLAS teams, even when the helping master
  // executes it (tuning.hpp, tls_thread_cap).
  xblas::ScopedThreadCap cap(1);
  fn();
}

void TaskPool::capture_failure(const char* name, long long step) {
  std::exception_ptr ep = classify_current_exception(name, step);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!error_) error_ = ep;  // first failure wins; later ones were cascade
    cancelled_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
}

TaskId TaskPool::submit(std::function<void()> fn, const char* name,
                        TaskCategory category, long long step,
                        const TaskId* deps, std::size_t ndeps,
                        bool retryable) {
  const int w = width();
  if (w <= 1 && !on_worker_thread()) {
    // Single-thread fast path: honor the dependencies (they may still be
    // running on workers spawned under an earlier, wider configuration),
    // then run inline with no queue traffic at all. A pending error is NOT
    // rethrown here — the task is skipped (cancelled) and the error
    // surfaces at the caller's next wait, the same as the threaded path.
    wait_impl(deps, ndeps);
    bool skip;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      skip = cancelled_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (!skip) {
      // Inline retry loop, mirroring retry_task() on the threaded path:
      // transient failures of a retryable task re-run in place (there is no
      // queue to re-enqueue into) until success or budget exhaustion.
      int attempts = 0;
      for (;;) {
        try {
          run_task_body(fn, retryable);
          break;
        } catch (...) {
          if (retryable && current_exception_is_transient()) {
            if (attempts < recover::options().task_retries) {
              {
                std::unique_lock<std::mutex> lock(mutex_);
                ++stats_.retries;
              }
              if (metrics::enabled()) g_task_retries.add(1.0);
              retry_backoff(attempts);
              ++attempts;
              continue;
            }
            {
              std::unique_lock<std::mutex> lock(mutex_);
              ++stats_.retry_exhausted;
            }
            if (metrics::enabled()) g_task_retry_exhausted.add(1.0);
          }
          capture_failure(name, step);
          break;
        }
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    Task done;
    done.name = name;
    done.category = category;
    done.step = step;
    TaskId id;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      id = next_id_++;
      ++live_tasks_;
      if (metrics::enabled()) {
        // Inline execution: the task was "submitted" when it started.
        done.submit_s = std::chrono::duration<double>(t0 - record_t0_).count();
      }
      auto [it, inserted] = tasks_.emplace(id, std::move(done));
      finish_task(id, it->second, /*worker_index=*/0,
                  std::chrono::duration<double>(t0 - record_t0_).count(),
                  std::chrono::duration<double>(t1 - record_t0_).count());
    }
    done_cv_.notify_all();
    return id;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  ensure_workers(w - 1);
  const TaskId id = next_id_++;
  Task task;
  task.fn = std::move(fn);
  task.name = name;
  task.category = category;
  task.step = step;
  task.retryable = retryable;
  if (metrics::enabled()) {
    task.submit_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - record_t0_)
                        .count();
  }
  for (std::size_t i = 0; i < ndeps; ++i) {
    // A still-pending or currently-running dependency blocks the new task
    // (running tasks keep their map entry until finish_task); a completed
    // or unknown id is simply ignored.
    auto it = tasks_.find(deps[i]);
    if (it != tasks_.end()) {
      it->second.dependents.push_back(id);
      ++task.pending_deps;
    }
  }
  const bool ready = task.pending_deps == 0;
  ++live_tasks_;
  tasks_.emplace(id, std::move(task));
  if (ready) {
    (category == TaskCategory::Lazy ? ready_lazy_ : ready_).push_back(id);
    if (metrics::enabled()) {
      g_ready_depth.set(static_cast<double>(ready_.size()));
      g_ready_lazy_depth.set(static_cast<double>(ready_lazy_.size()));
    }
    lock.unlock();
    work_cv_.notify_one();
  }
  return id;
}

TaskId TaskPool::pop_ready(bool allow_lazy) {
  if (!ready_.empty()) {
    const TaskId id = ready_.front();
    ready_.pop_front();
    if (metrics::enabled()) g_ready_depth.set(static_cast<double>(ready_.size()));
    return id;
  }
  if (allow_lazy && !ready_lazy_.empty()) {
    const TaskId id = ready_lazy_.front();
    ready_lazy_.pop_front();
    if (metrics::enabled()) {
      g_ready_lazy_depth.set(static_cast<double>(ready_lazy_.size()));
    }
    return id;
  }
  return 0;
}

void TaskPool::finish_task(TaskId id, Task& task, int worker_index, double t0,
                           double t1) {
  // Called with mutex_ held.
  const double dur = t1 > t0 ? t1 - t0 : 0.0;
  switch (task.category) {
    case TaskCategory::Urgent: stats_.urgent_busy_s += dur; break;
    case TaskCategory::Lazy: stats_.lazy_busy_s += dur; break;
    case TaskCategory::Other: stats_.other_busy_s += dur; break;
  }
  ++stats_.tasks_run;
  if (static_cast<int>(stats_.worker_busy_s.size()) <= worker_index) {
    stats_.worker_busy_s.resize(static_cast<std::size_t>(worker_index) + 1, 0.0);
  }
  stats_.worker_busy_s[static_cast<std::size_t>(worker_index)] += dur;
  if (metrics::enabled()) {
    g_tasks_run.add(1.0);
    // Sojourn latency (submit -> completion); only tasks stamped at submit
    // time count, so an enable mid-flight cannot fabricate epoch-sized
    // latencies.
    if (task.submit_s >= 0.0 && t1 >= task.submit_s) {
      const double sojourn = t1 - task.submit_s;
      switch (task.category) {
        case TaskCategory::Urgent: g_latency_urgent.record(sojourn); break;
        case TaskCategory::Lazy: g_latency_lazy.record(sojourn); break;
        case TaskCategory::Other: g_latency_other.record(sojourn); break;
      }
    }
  }
  if (recording_) {
    TaskSlice s;
    s.name = task.name;
    s.category = task.category;
    s.step = task.step;
    s.worker = worker_index;
    s.start_s = t0;
    s.end_s = t1;
    slices_.push_back(std::move(s));
  }
  bool woke_ready = false;
  for (TaskId dep : task.dependents) {
    auto it = tasks_.find(dep);
    if (it == tasks_.end()) continue;
    if (--it->second.pending_deps == 0) {
      (it->second.category == TaskCategory::Lazy ? ready_lazy_ : ready_)
          .push_back(dep);
      woke_ready = true;
    }
  }
  if (woke_ready && metrics::enabled()) {
    g_ready_depth.set(static_cast<double>(ready_.size()));
    g_ready_lazy_depth.set(static_cast<double>(ready_lazy_.size()));
  }
  tasks_.erase(id);
  --live_tasks_;
  ++retired_;
  // A cancellation whose error was already consumed (a wedge that later
  // resolved, the give-up drain having unwound first) must not poison the
  // pool forever: once the graph is empty with no error pending, new work
  // is accepted again.
  if (live_tasks_ == 0 && !error_) cancelled_ = false;
  if (woke_ready) work_cv_.notify_all();
}

void TaskPool::execute_task(TaskId id, Task&& task, int worker_index) {
  // Called WITHOUT the lock: the caller popped `id` from a ready queue and
  // moved the map entry's body out (the entry itself stays registered so
  // wait() and dependency registration keep seeing the task as live).
  bool skip;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A prior failure cancels the rest of the graph: the task still
    // "finishes" (so dependents unblock and waiters make progress) but its
    // body never runs — the drain that prevents both deadlock and
    // use-after-unwind.
    skip = cancelled_;
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (!skip) {
    try {
      run_task_body(task.fn, task.retryable);
    } catch (...) {
      // Bounded retry: a transient failure of a retryable task re-enqueues
      // it (dependents stay blocked, nothing finishes) instead of failing
      // the graph. retry_task() owns that decision; on false the error
      // surfaces through the normal first-error-wins capture.
      if (retry_task(id, std::move(task))) return;
      capture_failure(task.name, task.step);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    Task& rec = tasks_[id];
    rec.name = task.name;
    rec.category = task.category;
    rec.step = task.step;
    rec.submit_s = task.submit_s;
    // New dependents may have been registered on the entry while the task
    // ran; merge rather than overwrite.
    rec.dependents.insert(rec.dependents.end(), task.dependents.begin(),
                          task.dependents.end());
    finish_task(id, rec, worker_index,
                std::chrono::duration<double>(t0 - record_t0_).count(),
                std::chrono::duration<double>(t1 - record_t0_).count());
  }
  done_cv_.notify_all();
}

bool TaskPool::retry_task(TaskId id, Task&& task) {
  // Called inside execute_task's catch block, WITHOUT the lock. Only a
  // transient-classified failure of a retryable task within budget is
  // absorbed; everything else falls through to capture_failure. The moved-in
  // task still owns the body (the map entry's fn was nulled when the task
  // was popped), so on retry it is simply put back and re-enqueued.
  if (!task.retryable || !current_exception_is_transient()) return false;
  const int budget = recover::options().task_retries;
  if (task.attempts >= budget) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++stats_.retry_exhausted;
    }
    if (metrics::enabled()) g_task_retry_exhausted.add(1.0);
    return false;
  }
  retry_backoff(task.attempts);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A failure elsewhere cancelled the graph while this body ran (or the
    // pool is shutting down): a retry would be skipped anyway, so let the
    // transient error surface instead — first error wins as usual.
    if (cancelled_ || stop_) return false;
    Task& rec = tasks_[id];
    rec.fn = std::move(task.fn);
    rec.name = task.name;
    rec.category = task.category;
    rec.step = task.step;
    rec.submit_s = task.submit_s;
    rec.retryable = true;
    rec.attempts = task.attempts + 1;
    // Dependents registered on the entry while the failed run executed are
    // already on rec; merge the ones carried by the popped copy.
    rec.dependents.insert(rec.dependents.end(), task.dependents.begin(),
                          task.dependents.end());
    (rec.category == TaskCategory::Lazy ? ready_lazy_ : ready_).push_back(id);
    ++stats_.retries;
    if (metrics::enabled()) {
      g_task_retries.add(1.0);
      g_ready_depth.set(static_cast<double>(ready_.size()));
      g_ready_lazy_depth.set(static_cast<double>(ready_lazy_.size()));
    }
  }
  work_cv_.notify_one();
  return true;
}

std::string TaskPool::dump_state_locked() const {
  // Called with mutex_ held. A popped-but-running task has fn == nullptr;
  // a dependency-blocked one has pending_deps > 0; the rest sit in a ready
  // queue.
  std::string out = "live tasks: " + std::to_string(live_tasks_);
  int listed = 0;
  long long retry_backlog = 0;
  for (const auto& [id, task] : tasks_) {
    if (task.attempts > 0) ++retry_backlog;
    if (listed == 32) out += " ...";
    if (listed++ >= 32) continue;  // keep counting the retry backlog
    out += " [#" + std::to_string(id) + " " + task.name +
           " step=" + std::to_string(task.step) +
           (task.pending_deps > 0
                ? " blocked(" + std::to_string(task.pending_deps) + " deps)"
                : (task.fn == nullptr ? " running" : " ready")) +
           (task.attempts > 0 ? " attempts=" + std::to_string(task.attempts)
                              : "") +
           "]";
  }
  // Retry state distinguishes a retry storm (tasks failing transiently over
  // and over — live work with nonzero attempts, a climbing retry total)
  // from a genuine dependency deadlock (no retries, nothing running).
  if (stats_.retries > 0 || stats_.retry_exhausted > 0 || retry_backlog > 0) {
    out += "; retries=" + std::to_string(stats_.retries) +
           " exhausted=" + std::to_string(stats_.retry_exhausted) +
           " retry_backlog=" + std::to_string(retry_backlog);
  }
  for (std::size_t w = 0; w < stats_.worker_busy_s.size(); ++w) {
    out += (w == 0 ? "; busy_s master=" : " w" + std::to_string(w) + "=") +
           std::to_string(stats_.worker_busy_s[w]);
  }
  // A wedge dump with metrics armed carries the full runtime picture —
  // counters, queue depths, latency histograms — of the state that led up
  // to the hang (the registry mutex is below the pool mutex in the lock
  // order: metrics calls never wait on the pool).
  if (metrics::enabled()) {
    const std::string m = metrics::debug_string();
    if (!m.empty()) out += "; metrics: " + m;
  }
  return out;
}

bool TaskPool::blocked_wait(std::unique_lock<std::mutex>& lock,
                            std::chrono::steady_clock::time_point& give_up) {
  // Called with mutex_ held, nothing helpable in the queues. Watchdog
  // accounting: a full interval with zero retirements while we are blocked
  // means the pool is wedged (a stuck worker or an unsatisfiable
  // dependency) — classify, cancel, and keep draining. Cooperative stalls
  // abort on cancellation; if the pool STILL makes no progress for a grace
  // interval after being declared wedged, give up on waiting entirely
  // (best effort: the caller throws the wedge error with the state dump).
  const double interval = watchdog_override_ > 0.0 ? watchdog_override_
                                                   : env_watchdog_seconds();
  const long long before = retired_;
  const auto status =
      done_cv_.wait_for(lock, std::chrono::duration<double>(interval));
  if (status != std::cv_status::timeout || retired_ != before ||
      live_tasks_ == 0) {
    return true;  // progress (or at least a wakeup): keep waiting normally
  }
  if (!error_) {
    const std::string dump = dump_state_locked();
    error_ = std::make_exception_ptr(status_error(
        Status(StatusCode::kPoolWedged,
               "no task retired within the watchdog interval (" +
                   std::to_string(interval) + " s); " + dump)));
    cancelled_ = true;
    give_up = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(2.0 * interval));
    work_cv_.notify_all();
    done_cv_.notify_all();
    return true;
  }
  if (give_up == std::chrono::steady_clock::time_point{}) {
    // The failure was captured elsewhere (another waiter's watchdog, or a
    // thrown task) and THIS drain loop started with an unarmed deadline:
    // arm it now so a permanently stuck worker cannot pin the waiter
    // forever.
    give_up = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(2.0 * interval));
    return true;
  }
  if (std::chrono::steady_clock::now() >= give_up) {
    std::fprintf(stderr, "conflux: task pool wedged beyond recovery: %s\n",
                 dump_state_locked().c_str());
    return false;
  }
  return true;
}

void TaskPool::wait_impl(const TaskId* ids, std::size_t n) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  auto give_up = std::chrono::steady_clock::time_point{};
  for (;;) {
    bool all_done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (ids[i] != 0 && tasks_.count(ids[i]) != 0) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    // Help with ready non-lazy work instead of blocking: on a machine with
    // few threads this is what lets the next panel's tasks run while the
    // workers grind the previous step's lazy remainder. Once cancelled,
    // help with lazy work too — draining is all that is left to do.
    const TaskId ready_id = pop_ready(/*allow_lazy=*/cancelled_);
    if (ready_id != 0) {
      auto it = tasks_.find(ready_id);
      Task task = std::move(it->second);
      it->second.fn = nullptr;  // entry stays until finish_task (wait() keys on it)
      lock.unlock();
      execute_task(ready_id, std::move(task), /*worker_index=*/0);
      lock.lock();
      continue;
    }
    if (!blocked_wait(lock, give_up)) return;
  }
}

void TaskPool::rethrow_if_failed() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!error_) return;
  }
  // Drain EVERYTHING before unwinding the caller: live tasks may reference
  // state the caller is about to destroy. Cancelled bodies are no-ops, so
  // this is fast unless a worker is genuinely stuck — then blocked_wait's
  // give-up path bounds the drain.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto give_up = std::chrono::steady_clock::time_point{};
    while (live_tasks_ > 0) {
      const TaskId ready_id = pop_ready(/*allow_lazy=*/true);
      if (ready_id != 0) {
        auto it = tasks_.find(ready_id);
        Task task = std::move(it->second);
        it->second.fn = nullptr;
        lock.unlock();
        execute_task(ready_id, std::move(task), /*worker_index=*/0);
        lock.lock();
        continue;
      }
      if (!blocked_wait(lock, give_up)) break;
    }
  }
  std::exception_ptr ep;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ep = error_;
    error_ = nullptr;
    // Only lift the cancellation once the graph is empty: a task submitted
    // before the failure must never run its body after the unwind.
    if (live_tasks_ == 0) cancelled_ = false;
  }
  std::rethrow_exception(ep);
}

void TaskPool::wait(const TaskId* ids, std::size_t n) {
  wait_impl(ids, n);
  rethrow_if_failed();
}

void TaskPool::wait_all() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto give_up = std::chrono::steady_clock::time_point{};
    for (;;) {
      if (live_tasks_ == 0 && job_ == nullptr) break;
      const TaskId ready_id = pop_ready(/*allow_lazy=*/true);
      if (ready_id != 0) {
        auto it = tasks_.find(ready_id);
        Task task = std::move(it->second);
        it->second.fn = nullptr;
        lock.unlock();
        execute_task(ready_id, std::move(task), /*worker_index=*/0);
        lock.lock();
        continue;
      }
      if (!blocked_wait(lock, give_up)) break;
    }
  }
  rethrow_if_failed();
}

void TaskPool::run_parallel_job(ParallelJob& job, int team_width) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (job_ != nullptr) {
    // Re-entrant parallel_for (a helped task spawning one): run inline.
    lock.unlock();
    for (index_t i = 0; i < job.total; ++i) job.run(job.ctx, i);
    return;
  }
  ensure_workers(team_width - 1);
  job_ = &job;
  lock.unlock();
  work_cv_.notify_all();

  // Master claims indices alongside the workers. A body that throws (on
  // either side) records the pool error and abandons the unclaimed tail —
  // `skipped` keeps the completion accounting exact.
  lock.lock();
  {
    xblas::ScopedThreadCap cap(1);
    while (job.next < job.total) {
      const index_t i = job.next++;
      lock.unlock();
      try {
        job.run(job.ctx, i);
      } catch (...) {
        capture_failure("parallel-for", -1);
        lock.lock();
        job.skipped += job.total - job.next;
        job.next = job.total;
        ++job.done;
        continue;
      }
      lock.lock();
      ++job.done;
    }
  }
  auto give_up = std::chrono::steady_clock::time_point{};
  while (job.done + job.skipped < job.total) {
    if (!blocked_wait(lock, give_up)) break;
  }
  job_ = nullptr;
  lock.unlock();
  rethrow_if_failed();
}

void TaskPool::worker_main(int worker_index) {
  tls_on_worker = true;
  // BLAS calls inside tasks must not spawn nested OpenMP teams: the pool
  // itself is the parallelism. The per-thread cap also defeats an
  // XBLAS_THREADS override, which ignores the OpenMP ICV.
  xblas::set_tls_thread_cap(1);
#ifdef _OPENMP
  omp_set_num_threads(1);
#endif
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_) return;
    if (job_ != nullptr && job_->next < job_->total) {
      ParallelJob& job = *job_;
      const index_t i = job.next++;
      lock.unlock();
      bool failed = false;
      try {
        job.run(job.ctx, i);
      } catch (...) {
        capture_failure("parallel-for", -1);
        failed = true;
      }
      lock.lock();
      if (failed) {
        job.skipped += job.total - job.next;
        job.next = job.total;
      }
      if (++job.done + job.skipped >= job.total) {
        lock.unlock();
        done_cv_.notify_all();
        lock.lock();
      }
      continue;
    }
    const TaskId id = pop_ready(/*allow_lazy=*/true);
    if (id != 0) {
      auto it = tasks_.find(id);
      Task task = std::move(it->second);
      it->second.fn = nullptr;
      lock.unlock();
      execute_task(id, std::move(task), worker_index);
      lock.lock();
      continue;
    }
    work_cv_.wait(lock);
  }
}

void TaskPool::Lease::release() {
  if (pool_ != nullptr) {
    pool_->release_lease();
    pool_ = nullptr;
  }
}

TaskPool::Lease TaskPool::acquire_lease(int priority) {
  std::unique_lock<std::mutex> lock(lease_mutex_);
  const std::pair<int, std::uint64_t> me{priority, lease_next_seq_++};
  lease_waiters_.push_back(me);
  lease_cv_.wait(lock, [&] {
    if (lease_held_) return false;
    // Granted only when no waiter outranks us: lowest (priority, seq) wins.
    for (const auto& w : lease_waiters_) {
      if (w < me) return false;
    }
    return true;
  });
  lease_held_ = true;
  for (std::size_t i = 0; i < lease_waiters_.size(); ++i) {
    if (lease_waiters_[i] == me) {
      lease_waiters_.erase(lease_waiters_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  return Lease(this);
}

void TaskPool::release_lease() {
  {
    std::unique_lock<std::mutex> lock(lease_mutex_);
    lease_held_ = false;
  }
  lease_cv_.notify_all();
}

void TaskPool::start_recording() {
  std::unique_lock<std::mutex> lock(mutex_);
  recording_ = true;
  slices_.clear();
  record_t0_ = std::chrono::steady_clock::now();
}

std::vector<TaskSlice> TaskPool::stop_recording() {
  std::unique_lock<std::mutex> lock(mutex_);
  recording_ = false;
  return std::move(slices_);
}

void TaskPool::reset_stats() {
  std::unique_lock<std::mutex> lock(mutex_);
  stats_ = TaskPoolStats{};
  stats_.worker_busy_s.clear();
}

TaskPoolStats TaskPool::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace conflux::sched
