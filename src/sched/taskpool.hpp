// Persistent dependency-driven task pool for Real-mode execution
// (DESIGN.md "Pipelined execution and the lookahead time model").
//
// The per-step fork/join of the old `parallel_ranks` OpenMP fan-outs paid a
// team spin-up per phase and — worse — forced a full barrier at every phase
// boundary, so step t+1's tournament pivoting waited for step t's *entire*
// Schur gemm even though it only reads the next panel's v columns. The pool
// replaces that with:
//
//   - long-lived workers (std::thread, spawned once and grown on demand,
//     never torn down between steps or factorizations);
//   - tasks with fixed decomposition ids and a small explicit dependency
//     list: a task becomes ready when its dependencies completed, and the
//     factorization schedules express cross-step ordering (urgent stripe
//     before next tournament, lazy remainder before the next gather) as
//     dependencies instead of barriers;
//   - a category per task (Urgent / Lazy / Other): ready urgent work is
//     always dequeued before lazy work, so the pipeline's critical path
//     (next panel) never queues behind bulk trailing updates;
//   - deterministic results by construction: the pool never chooses *what*
//     is computed, only *who* runs it — every output element is written by
//     exactly one task whose decomposition is fixed by the schedule, the
//     two rules of rank_parallel.hpp.
//
// Threading model: the calling ("master") thread is part of the team, as it
// was under OpenMP. `parallel_for` runs the master plus up to width()-1
// workers over a fixed index range with no heap allocation; `submit` hands
// a task to the workers and returns immediately; `wait` blocks the master,
// helping with ready non-lazy tasks instead of spinning (so a 2-thread
// machine still overlaps: the worker grinds the lazy gemm while the master
// executes the next panel's tasks). Workers pin their OpenMP ICV to one
// thread at startup, so BLAS calls inside tasks never spawn nested teams.
//
// Width: omp_get_max_threads() of the calling thread at each use (so
// omp_set_num_threads keeps working as the knob it always was), overridable
// via CONFLUX_POOL_THREADS; in non-OpenMP builds the env variable is the
// only knob and the default width is 1 (serial, matching the old behavior).
// Width 1 short-circuits everything: parallel_for runs inline and submit
// executes the task immediately on the caller — the explicit fast path that
// skips all team machinery for single-chunk work.
// Failure semantics (DESIGN.md "Failure model and degradation ladder"):
// an exception thrown inside a task no longer terminates the worker — it is
// captured (non-status exceptions are wrapped into a classified
// status_error with StatusCode::kTaskFailed), the pool cancels the
// remaining graph (pending tasks drain as no-ops, so dependents never
// deadlock on a task that will not produce), and the first captured error
// rethrows on the master at its next wait()/wait_all()/parallel_for() —
// after every live task has drained, so nothing still references the
// master's unwinding state. A watchdog detects a wedged pool: if the master
// blocks for a full interval (CONFLUX_WATCHDOG_S, default 300 s; must
// exceed the longest single task) during which no task retires, the pool
// raises StatusCode::kPoolWedged carrying a dump of the ready/running/
// blocked task ids, cancels, and unwinds — replacing the ctest timeout as
// the deadlock detector. Cancellation is cooperative: injected worker
// stalls (support/fault.hpp) abort when the pool cancels; a genuinely stuck
// worker cannot be unwound safely, so after a grace period the pool throws
// anyway (best effort, dump on stderr) rather than hanging forever.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.hpp"

namespace conflux::sched {

using TaskId = std::uint64_t;  ///< 0 is never a valid id ("no task")

/// Cooperative per-request cancellation flag (DESIGN.md "Solve service").
/// The pool's own cancel drain (below) is graph-wide — one failure cancels
/// every pending task, the right semantics WITHIN one factorization. A
/// multi-tenant caller needs the opposite granularity: cancelling one
/// request must not disturb the rest. A CancelToken is that per-request
/// flag: the owner sets it, the executing side polls it at its work
/// boundaries (admission, pre-factor, pre-solve) and drains the request as
/// kCancelled without ever entering the pool — so a cancelled request can
/// never trip the pool's graph-wide unwind. Shared by pointer; thread-safe.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

enum class TaskCategory : std::uint8_t { Other = 0, Urgent = 1, Lazy = 2 };

/// One executed task interval, recorded when tracing is enabled
/// (wall-clock seconds relative to the recording start).
struct TaskSlice {
  std::string name;
  TaskCategory category = TaskCategory::Other;
  long long step = -1;     ///< schedule step the task belongs to (-1 = none)
  int worker = 0;          ///< 0 = master thread, 1.. = pool workers
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Aggregate busy-time accounting since the last reset (always on; two
/// clock reads per task against task bodies that are whole BLAS calls).
struct TaskPoolStats {
  double urgent_busy_s = 0.0;
  double lazy_busy_s = 0.0;
  double other_busy_s = 0.0;
  long long tasks_run = 0;
  /// Transient-failure re-executions of retryable tasks (each re-enqueue
  /// counts once) and tasks whose retry budget ran out (the transient
  /// error then surfaces through the normal first-error-wins path).
  long long retries = 0;
  long long retry_exhausted = 0;
  /// Per-worker busy seconds (index 0 = the master thread when it helps);
  /// a worker's idle time over an interval is elapsed - busy. Feeds the
  /// metrics section of BENCH_factor.json and the watchdog's wedge dump.
  std::vector<double> worker_busy_s;
  double busy_total_s() const { return urgent_busy_s + lazy_busy_s + other_busy_s; }
};

class TaskPool {
 public:
  /// The process-wide pool (workers are shared across factorizations).
  static TaskPool& instance();

  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Team width for work issued right now: env override, else the calling
  /// thread's omp_get_max_threads() (1 in non-OpenMP builds). Always >= 1.
  int width() const;

  /// True on a pool worker thread (used by parallel_for to run nested
  /// parallelism inline, mirroring the old omp_in_parallel() check).
  static bool on_worker_thread();

  /// Submit a task with explicit dependencies. Completed (or unknown)
  /// dependency ids are ignored, so callers can pass stale ids freely.
  /// With width() == 1 the task runs inline before returning (after its
  /// dependencies, which are then complete by construction).
  ///
  /// A `retryable` task opts into bounded transient-failure retry
  /// (DESIGN.md "Recovery model"): when its body throws a status_error
  /// classified kTransientTaskFailure, the pool re-enqueues it — up to
  /// recover::Options::task_retries times, with a short deterministic
  /// backoff — instead of failing the graph; dependents stay blocked until
  /// a run succeeds, so the retry is invisible to the schedule. Only tasks
  /// whose body is idempotent over preserved inputs (the factorization's
  /// fixed-decomposition gemm/trsm blocks) may set it.
  TaskId submit(std::function<void()> fn, const char* name,
                TaskCategory category, long long step,
                const TaskId* deps, std::size_t ndeps,
                bool retryable = false);
  TaskId submit(std::function<void()> fn, const char* name,
                TaskCategory category, long long step,
                const std::vector<TaskId>& deps, bool retryable = false) {
    return submit(std::move(fn), name, category, step, deps.data(), deps.size(),
                  retryable);
  }

  /// Block until the given tasks completed; the caller helps execute ready
  /// Urgent/Other tasks while it waits (never Lazy ones: getting stuck in a
  /// long trailing update would defeat the lookahead). If any task failed
  /// (or the watchdog fired) since the last rethrow, drains every live task
  /// and rethrows the first captured error.
  void wait(const TaskId* ids, std::size_t n);
  void wait(TaskId id) { wait(&id, 1); }
  void wait(const std::vector<TaskId>& ids) { wait(ids.data(), ids.size()); }
  /// Block until every submitted task completed (same error semantics).
  void wait_all();

  /// Watchdog interval override for tests; <= 0 restores CONFLUX_WATCHDOG_S
  /// (default 300 s). The interval must exceed the longest single task.
  void set_watchdog_seconds(double seconds);
  double watchdog_seconds() const;

  /// Deterministic team execution of body(i) for i in [0, n): the fixed
  /// chunk decomposition is "one index per task", indices are claimed
  /// atomically by the master and the workers, and the call returns when
  /// all n finished. Allocation-free. Runs inline when the width is 1, the
  /// caller is itself a pool worker, or n < 2.
  template <typename Body>
  void parallel_for(index_t n, Body&& body) {
    if (n <= 0) return;
    const int w = (n > 1 && !on_worker_thread()) ? width() : 1;
    if (w <= 1) {
      for (index_t i = 0; i < n; ++i) body(i);
      return;
    }
    ParallelJob job;
    using B = std::remove_reference_t<Body>;
    job.run = [](void* ctx, index_t i) { (*static_cast<B*>(ctx))(i); };
    job.ctx = const_cast<void*>(static_cast<const void*>(std::addressof(body)));
    job.total = n;
    run_parallel_job(job, w);
  }

  /// Exclusive, priority-ordered lease on the pool for multi-tenant
  /// masters (DESIGN.md "Solve service"). The pool's failure semantics are
  /// graph-wide — first error wins, every pending task drains — which is
  /// correct within ONE factorization but poison across tenants: tenant A's
  /// injected fault must never unwind tenant B's schedule, and a rethrow
  /// must land on the master that owns the failing graph. The lease
  /// serializes pool-using masters so exactly one factorization's graph is
  /// live at a time; contending requests queue by (priority, arrival) —
  /// lower priority value first, FIFO within a class — which is what makes
  /// the service's submission priority-aware all the way down to the pool.
  /// Masters that never touch the pool (cache-hit solves) need no lease.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept : pool_(other.pool_) { other.pool_ = nullptr; }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        other.pool_ = nullptr;
      }
      return *this;
    }
    ~Lease() { release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool held() const { return pool_ != nullptr; }
    void release();

   private:
    friend class TaskPool;
    explicit Lease(TaskPool* pool) : pool_(pool) {}
    TaskPool* pool_ = nullptr;
  };

  /// Block until the pool is exclusively ours; contenders are granted in
  /// ascending (priority, arrival-order). Re-entrant acquisition from the
  /// thread that already holds the lease would self-deadlock — the caller
  /// owns that invariant (the service acquires once per request).
  Lease acquire_lease(int priority);

  /// Start recording executed-task slices (clears any previous recording).
  void start_recording();
  /// Stop recording and hand back the slices, ordered by completion.
  std::vector<TaskSlice> stop_recording();

  void reset_stats();
  TaskPoolStats stats() const;

 private:
  TaskPool() = default;

  struct Task {
    std::function<void()> fn;
    const char* name = "";
    TaskCategory category = TaskCategory::Other;
    long long step = -1;
    int pending_deps = 0;
    bool retryable = false;  ///< transient failures re-enqueue (bounded)
    int attempts = 0;        ///< completed runs that failed transiently
    std::vector<TaskId> dependents;
    /// Submit time (seconds, record_t0_ epoch), stamped only while the
    /// metrics registry is enabled; < 0 = unstamped. Feeds the urgent/lazy
    /// sojourn-latency histograms (submit -> completion).
    double submit_s = -1.0;
  };

  /// Type-erased allocation-free parallel-for job (claimed index by index).
  struct ParallelJob {
    void (*run)(void*, index_t) = nullptr;
    void* ctx = nullptr;
    index_t total = 0;
    index_t next = 0;     // next unclaimed index (guarded by mutex_)
    index_t done = 0;     // completed indices (guarded by mutex_)
    index_t skipped = 0;  // indices abandoned after a body threw
  };

  void run_parallel_job(ParallelJob& job, int team_width);
  void ensure_workers(int want);  // callers hold mutex_
  void worker_main(int worker_index);
  /// Pop the best ready task id (urgent/other before lazy); 0 if none.
  TaskId pop_ready(bool allow_lazy);
  void execute_task(TaskId id, Task&& task, int worker_index);
  void finish_task(TaskId id, Task& task, int worker_index, double t0, double t1);
  /// Run one task body through the fault-injection sites and the BLAS
  /// thread cap. Throws whatever the body (or an injected fault) throws.
  /// Retryable tasks additionally pass the transient-task-throw site (the
  /// "fails N times, then succeeds" soak for bounded retry).
  void run_task_body(const std::function<void()>& fn, bool retryable);
  /// Handle a retryable task whose body just threw (call inside the catch
  /// block): if the failure is transient and the retry budget allows,
  /// restore the body into the live map entry, re-enqueue after a short
  /// deterministic backoff, and return true — the caller must then NOT
  /// finish the task. Returns false when the error should surface normally.
  bool retry_task(TaskId id, Task&& task);
  /// Record the in-flight exception (call inside a catch block) as the
  /// pool's first error and cancel the remaining graph.
  void capture_failure(const char* name, long long step);
  /// wait() without the error rethrow (used for dependency waits).
  void wait_impl(const TaskId* ids, std::size_t n);
  /// If an error is pending: drain every live task, clear the cancelled
  /// state, and rethrow the first captured error.
  void rethrow_if_failed();
  /// One blocked-master wait slice with watchdog accounting; returns false
  /// when the caller should give up waiting (unrecoverable wedge).
  bool blocked_wait(std::unique_lock<std::mutex>& lock,
                    std::chrono::steady_clock::time_point& give_up);
  std::string dump_state_locked() const;
  void stall_cooperatively(double seconds);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: new ready work / shutdown
  std::condition_variable done_cv_;  ///< waiters: a task or job index finished
  std::vector<std::thread> workers_;
  std::unordered_map<TaskId, Task> tasks_;  ///< submitted, not yet completed
  std::deque<TaskId> ready_;       ///< ready Urgent/Other tasks (FIFO)
  std::deque<TaskId> ready_lazy_;  ///< ready Lazy tasks (FIFO)
  ParallelJob* job_ = nullptr;     ///< active parallel_for, if any
  TaskId next_id_ = 1;
  long long live_tasks_ = 0;  ///< submitted and not yet finished
  long long retired_ = 0;     ///< total finished tasks (watchdog progress)
  bool stop_ = false;
  bool cancelled_ = false;          ///< pending task bodies are skipped
  std::exception_ptr error_;        ///< first captured failure
  double watchdog_override_ = 0.0;  ///< tests; <= 0 = env/default

  bool recording_ = false;
  std::vector<TaskSlice> slices_;
  std::chrono::steady_clock::time_point record_t0_;
  TaskPoolStats stats_;

  // Lease state (separate lock: lease waits are long — a whole
  // factorization — and must not interact with the watchdog's blocked-wait
  // accounting on mutex_).
  void release_lease();
  mutable std::mutex lease_mutex_;
  std::condition_variable lease_cv_;
  bool lease_held_ = false;
  std::uint64_t lease_next_seq_ = 0;
  /// Waiting acquirers as (priority, arrival seq); the minimum is granted.
  std::vector<std::pair<int, std::uint64_t>> lease_waiters_;
};

}  // namespace conflux::sched
