// Chrome trace-event JSON export of a replayed Timeline (load the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// Layout: one trace "process" per simulated rank with three "threads" —
// cpu (compute slices), net-out (egress-link occupancy) and net-in
// (ingress-link occupancy) — plus machine-wide instant markers at every
// superstep barrier. Slice names are the schedule's phase annotations
// (Machine::annotate), falling back to the event kind.
//
// The Timeline must have been built with TimelineOptions::record_slices.
#pragma once

#include <iosfwd>
#include <string>

#include "sched/timeline.hpp"

namespace conflux::sched {

/// Stream the trace JSON; returns the number of trace events written.
std::size_t write_chrome_trace(std::ostream& os, const Timeline& timeline);

/// Write to a file; false if the file could not be written.
bool write_chrome_trace_file(const std::string& path, const Timeline& timeline);

}  // namespace conflux::sched
