// Chrome trace-event JSON export of a replayed Timeline (load the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// Layout: one trace "process" per simulated rank with three "threads" —
// cpu (compute slices), net-out (egress-link occupancy) and net-in
// (ingress-link occupancy) — plus machine-wide instant markers at every
// superstep barrier. Slice names are the schedule's phase annotations
// (Machine::annotate), falling back to the event kind.
//
// The Timeline must have been built with TimelineOptions::record_slices.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sched/taskpool.hpp"
#include "sched/timeline.hpp"
#include "support/profile.hpp"

namespace conflux::sched {

/// Stream the trace JSON; returns the number of trace events written.
std::size_t write_chrome_trace(std::ostream& os, const Timeline& timeline);

/// Write to a file; false if the file could not be written.
bool write_chrome_trace_file(const std::string& path, const Timeline& timeline);

/// Chrome trace of REAL (wall-clock) task-pool execution: one trace thread
/// per pool worker (tid 0 = the master thread), slices named by task with
/// the urgent/lazy category and schedule step in args. This is the view
/// that shows the lookahead pipeline actually overlapping — step t+1's
/// panel tasks running while step t's lazy remainder is still on another
/// worker (asserted in sched_test).
std::size_t write_task_trace(std::ostream& os,
                             const std::vector<TaskSlice>& slices);
bool write_task_trace_file(const std::string& path,
                           const std::vector<TaskSlice>& slices);

/// The merged observability trace (CONFLUX_TRACE): the task-pool worker
/// timeline (pid 0), the factor cores' annotated phase spans (pid 1, one
/// thread per annotating thread) and the sampled counter tracks as Chrome
/// "C" counter events (pid 2), in one trace-event file. The caller starts
/// TaskPool::start_recording() and prof::start_capture() back-to-back so
/// the two wall-clock epochs line up.
std::size_t write_unified_trace(std::ostream& os,
                                const std::vector<TaskSlice>& task_slices,
                                const prof::Capture& capture);
bool write_unified_trace_file(const std::string& path,
                              const std::vector<TaskSlice>& task_slices,
                              const prof::Capture& capture);

}  // namespace conflux::sched
