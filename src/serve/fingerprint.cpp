#include "serve/fingerprint.hpp"

#include <bit>
#include <chrono>

#include "support/metrics.hpp"

namespace conflux::serve {

namespace {

// Hashing activity meters (satellite contract: cost is visible, and the
// elements counter doubles as the single-pass proof — one fingerprint of an
// n x n view adds exactly n^2).
const metrics::Counter g_fp_matrices("serve.fingerprint.matrices");
const metrics::Counter g_fp_elements("serve.fingerprint.elements");
const metrics::Counter g_fp_seconds("serve.fingerprint.seconds");

/// One splitmix64 avalanche round: the per-word mixer of both folds.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Fold `word` into a running 64-bit state (multiply-xor over the mixed
/// word; the two lanes differ only in their seed, giving independent hashes
/// of the same stream).
inline void fold(std::uint64_t& state, std::uint64_t word) {
  state = (state ^ mix(word)) * 0x2545f4914f6cdd1dull + 0x632be59bd9b4e019ull;
}

template <typename T>
std::uint64_t scalar_bits(T v);

template <>
std::uint64_t scalar_bits<double>(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

template <>
std::uint64_t scalar_bits<float>(float v) {
  return static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(v));
}

template <typename T>
Fingerprint fingerprint_impl(ConstMatrixView<T> a) {
  const bool metered = metrics::enabled();
  const auto t0 = metered ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
  Fingerprint fp;
  fp.hi = 0x6a09e667f3bcc908ull;  // lane seeds: sqrt(2), sqrt(3) fractions
  fp.lo = 0xbb67ae8584caa73bull;
  // Shape first (and the scalar width, so an fp32 matrix whose bit patterns
  // happen to prefix an fp64 one cannot alias it).
  fold(fp.hi, static_cast<std::uint64_t>(a.rows()));
  fold(fp.lo, static_cast<std::uint64_t>(a.rows()));
  fold(fp.hi, static_cast<std::uint64_t>(a.cols()));
  fold(fp.lo, static_cast<std::uint64_t>(a.cols()));
  fold(fp.hi, sizeof(T));
  fold(fp.lo, sizeof(T));
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* row = a.row(i);
    for (index_t j = 0; j < a.cols(); ++j) {
      const std::uint64_t bits = scalar_bits<T>(row[j]);
      fold(fp.hi, bits);
      fold(fp.lo, ~bits);
    }
  }
  if (metered) {
    g_fp_matrices.add(1.0);
    g_fp_elements.add(static_cast<double>(a.rows()) *
                      static_cast<double>(a.cols()));
    g_fp_seconds.add(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  }
  return fp;
}

}  // namespace

Fingerprint fingerprint(ConstMatrixView<double> a) {
  return fingerprint_impl<double>(a);
}

Fingerprint fingerprint(ConstMatrixView<float> a) {
  return fingerprint_impl<float>(a);
}

Fingerprint fingerprint_combine(const Fingerprint& fp, std::uint64_t word) {
  Fingerprint out = fp;
  fold(out.hi, word);
  fold(out.lo, ~word);
  return out;
}

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(hi >> (4 * i)) & 0xf];
    out[static_cast<std::size_t>(31 - i)] = digits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

}  // namespace conflux::serve
