#include "serve/cache.hpp"

#include <cstdlib>
#include <string>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace conflux::serve {

namespace {

const metrics::Counter g_cache_hits("serve.cache.hits");
const metrics::Counter g_cache_misses("serve.cache.misses");
const metrics::Counter g_cache_insertions("serve.cache.insertions");
const metrics::Counter g_cache_evictions("serve.cache.evictions");
const metrics::Counter g_cache_invalidations("serve.cache.invalidations");
const metrics::Gauge g_cache_words("serve.cache.words");
const metrics::Gauge g_cache_entries("serve.cache.entries");

double resolve_budget(double budget_words) {
  if (budget_words > 0.0) return budget_words;
  if (const char* s = std::getenv("CONFLUX_SERVE_CACHE_WORDS");
      s != nullptr && *s != '\0') {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0) return v;
  }
  return 64.0 * 1024.0 * 1024.0;  // 64 Mi words = 512 MiB of fp64 factors
}

}  // namespace

FactorCache::FactorCache(double budget_words)
    : budget_words_(resolve_budget(budget_words)) {}

std::shared_ptr<const CachedFactor> FactorCache::lookup(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    g_cache_misses.add(1.0);
    return nullptr;
  }
  ++stats_.hits;
  g_cache_hits.add(1.0);
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.entry;
}

void FactorCache::insert(const Fingerprint& key,
                         std::shared_ptr<const CachedFactor> entry) {
  expects(entry != nullptr, "cache entries must exist");
  expects(entry->health().ok(),
          "degraded or failed factors must not enter the cache");
  const double words = entry->resident_words();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Same content re-factored (e.g. after an invalidation raced a second
    // cold miss): replace and refresh.
    stats_.resident_words -= it->second.entry->resident_words();
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.entry = std::move(entry);
  } else {
    lru_.push_front(key);
    map_.emplace(key, Slot{std::move(entry), lru_.begin()});
    ++stats_.entries;
  }
  stats_.resident_words += words;
  ++stats_.insertions;
  g_cache_insertions.add(1.0);
  evict_lru_locked(key);
  g_cache_words.set(stats_.resident_words);
  g_cache_entries.set(static_cast<double>(stats_.entries));
}

void FactorCache::evict_lru_locked(const Fingerprint& keep) {
  while (stats_.resident_words > budget_words_ && !lru_.empty()) {
    const Fingerprint victim = lru_.back();
    if (victim == keep) break;  // never evict the entry being inserted
    auto it = map_.find(victim);
    stats_.resident_words -= it->second.entry->resident_words();
    lru_.pop_back();
    map_.erase(it);
    --stats_.entries;
    ++stats_.evictions;
    g_cache_evictions.add(1.0);
  }
}

void FactorCache::invalidate(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return;
  stats_.resident_words -= it->second.entry->resident_words();
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
  --stats_.entries;
  ++stats_.invalidations;
  g_cache_invalidations.add(1.0);
  g_cache_words.set(stats_.resident_words);
  g_cache_entries.set(static_cast<double>(stats_.entries));
}

void FactorCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  stats_.resident_words = 0.0;
  stats_.entries = 0;
  g_cache_words.set(0.0);
  g_cache_entries.set(0.0);
}

FactorCache::Stats FactorCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace conflux::serve
