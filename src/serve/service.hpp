// SolveService: a batched multi-tenant factor/solve front end over the
// COnfLUX / COnfCHOX cores (DESIGN.md "Solve service").
//
// The service accepts a stream of requests — LU or Cholesky, fp64 direct or
// mixed-precision with fp64 refinement — and executes them on its own small
// executor team, with:
//
//   - bounded admission: each priority class (interactive / normal / batch)
//     has a FIFO queue of depth CONFLUX_SERVE_QUEUE_DEPTH; a submit into a
//     full class is answered kAdmissionRejected immediately (back-pressure,
//     never silent queuing without bound);
//   - priority scheduling: executors always drain the most urgent non-empty
//     class first, and the shared sched::TaskPool is leased in the same
//     (priority, arrival) order, so a batch tenant never holds the pool
//     while an interactive request waits;
//   - a fingerprint-keyed factorization cache (cache.hpp): repeated-solve
//     traffic skips the O(n^3) refactorization, and cached factors are the
//     bitwise-identical factors a cold run would produce (the repo's
//     determinism guarantees make hit and miss responses bitwise equal);
//   - tenant isolation: a request that fails — numerically, through fault
//     injection, or by throwing — is classified into ITS OWN response; the
//     pool lease plus the try_* non-throwing entry points guarantee the
//     failure cannot cancel or poison any other tenant's work, and the
//     next request factors on a healthy pool;
//   - per-request cancellation: a queued request can be cancelled (freeing
//     its admission slot); a running one completes.
//
// Factorizations run under recover::ScopedCheckpointSuppression — the
// snapshot registry is keyed (kind, scalar, n, v, grid) without a tenant
// axis, so service traffic must not clobber a batch run's resumable state.
// ABFT checksums and task retry stay active as configured.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "factor/mixed.hpp"
#include "serve/cache.hpp"
#include "serve/fingerprint.hpp"
#include "support/status.hpp"
#include "tensor/matrix.hpp"

namespace conflux::serve {

enum class Method : std::uint8_t { kLu, kCholesky };
enum class Precision : std::uint8_t { kFp64, kMixed };

/// Priority classes, most urgent first. The numeric value is the admission
/// queue index AND the TaskPool lease priority.
enum class Priority : std::uint8_t { kInteractive = 0, kNormal = 1, kBatch = 2 };
inline constexpr int kPriorityClasses = 3;

struct ServiceOptions {
  /// Executor threads. 0 = CONFLUX_SERVE_THREADS, else 2. Requests are
  /// request-parallel across executors; the factorization itself uses the
  /// shared TaskPool (one leaseholder at a time), and solves run with a
  /// single BLAS thread per executor.
  int threads = 0;
  /// Per-priority-class admission bound. 0 = CONFLUX_SERVE_QUEUE_DEPTH,
  /// else 64.
  int queue_depth = 0;
  /// Factorization-cache budget in 8-byte words. 0 =
  /// CONFLUX_SERVE_CACHE_WORDS, else 64 Mi words.
  double cache_words = 0.0;
  /// Simulated machine ranks each factorization is scheduled over. The
  /// service default is 1 (a node-local solver: no simulated communication
  /// overhead per request); tests raise it to cover real 2.5D grids.
  int ranks = 1;
  /// Per-rank fast-memory words for grid selection when ranks > 1.
  /// 0 = auto: 4 n^2 / ranks, the examples' sizing.
  double memory_words = 0.0;
  factor::FactorOptions factor;
  factor::RefineOptions refine;
  /// Mixed-precision ladder: re-factor in fp64 when the fp32 + refinement
  /// leg cannot deliver (factor/mixed.hpp). The fallback factors are never
  /// cached (they answer one request; the fp32 handle is the cacheable one).
  bool allow_fp64_fallback = true;
};

struct SolveRequest {
  Method method = Method::kLu;
  Precision precision = Precision::kFp64;
  Priority priority = Priority::kNormal;
  /// The n x n system matrix. The VIEW is captured, not copied: it must
  /// stay valid and unmodified until the response is returned (hashing it
  /// is O(n^2); copying it would double every request's footprint).
  ConstViewD a;
  /// The n x nrhs right-hand sides (nrhs = 0 requests a factor-only
  /// warmup). Same lifetime contract as `a`; never written.
  ConstViewD b;
  /// Opaque client tag, echoed in the response (test bookkeeping).
  std::uint64_t tenant = 0;
};

struct SolveResponse {
  /// kOk, a degraded classification (near-singular, refine-stagnated, ...),
  /// a failure (non-finite, task-failed, ...), kCancelled, or
  /// kAdmissionRejected.
  Status status;
  /// The n x nrhs solution. Populated for ok and degraded responses; empty
  /// when the request never produced an iterate.
  MatrixD x;
  factor::FactorHealth health;
  std::uint64_t tenant = 0;
  Fingerprint key;           ///< the factorization-cache key
  bool cache_hit = false;    ///< factors came from the cache
  bool fp64_fallback = false;  ///< mixed ladder stepped down to fp64
  int ir_steps = 0;            ///< refinement corrections (mixed only)
  double backward_error = 0.0; ///< achieved backward error (mixed only)
  double queue_s = 0.0;   ///< admission to execution start
  double factor_s = 0.0;  ///< fingerprint + cache lookup + factorization
  double solve_s = 0.0;   ///< permutation + trsms (+ refinement)
  double total_s = 0.0;   ///< admission to response

  bool ok() const { return status.ok(); }
};

class SolveService {
 public:
  /// Move-only handle on an in-flight request. Resolved by wait(); a
  /// default-constructed or consumed ticket is !valid().
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&&) = default;
    Ticket& operator=(Ticket&&) = default;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool valid() const { return state_ != nullptr; }

   private:
    friend class SolveService;
    struct RequestState;
    explicit Ticket(std::shared_ptr<RequestState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<RequestState> state_;
  };

  explicit SolveService(const ServiceOptions& opt = {});
  /// Stops the executors. Queued-but-unstarted requests resolve kCancelled;
  /// running requests complete first. Outstanding tickets stay waitable.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admit a request. Never blocks: a full priority class resolves the
  /// ticket immediately with kAdmissionRejected; a malformed request (a not
  /// square, row mismatch) resolves kInvalidArgument.
  Ticket submit(const SolveRequest& req);

  /// Block until the request resolves; consumes the ticket.
  SolveResponse wait(Ticket& ticket);

  /// Cancel a request. Returns true when it was still queued: the request
  /// is removed (freeing its admission slot) and resolves kCancelled.
  /// Returns false when it already started or finished — a running request
  /// completes and resolves normally.
  bool cancel(Ticket& ticket);

  /// submit + wait.
  SolveResponse solve(const SolveRequest& req);

  /// The serial single-tenant reference: execute `req` on the calling
  /// thread with no queue, no cache and no lease — the same arithmetic the
  /// service performs on a cold miss. The concurrency tests compare every
  /// service response bitwise against this golden.
  static SolveResponse solve_serial(const SolveRequest& req,
                                    const ServiceOptions& opt = {});

  struct Stats {
    long long submitted = 0;
    long long admission_rejected = 0;
    long long cancelled = 0;
    long long ok = 0;
    long long degraded = 0;
    long long failed = 0;
    long long queue_high_water = 0;  ///< max total queued across classes
    FactorCache::Stats cache;
  };
  Stats stats() const;

  FactorCache& cache() { return cache_; }
  const ServiceOptions& options() const { return opt_; }

 private:
  using Clock = std::chrono::steady_clock;
  using RequestState = Ticket::RequestState;

  void executor_main();
  std::shared_ptr<RequestState> pop_next();
  void execute(RequestState& rs);
  void resolve(RequestState& rs, SolveResponse&& resp);

  ServiceOptions opt_;
  FactorCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool stopping_ = false;
  std::deque<std::shared_ptr<RequestState>> queues_[kPriorityClasses];
  Stats stats_;

  std::vector<std::thread> executors_;
};

/// Derive the factorization-cache key for a request: the content
/// fingerprint of `a` combined with every option that changes the factor
/// bits (method, storage precision, block size, ranks — the grid shape is a
/// function of (n, ranks, memory) and block size feeds the schedule).
Fingerprint request_key(const SolveRequest& req, const ServiceOptions& opt);

}  // namespace conflux::serve
