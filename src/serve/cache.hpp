// Fingerprint-keyed LRU cache of completed factorizations (DESIGN.md
// "Solve service").
//
// Repeated-solve traffic — the K-FAC optimizer re-preconditioning against
// the same Kronecker factor, a DFT code solving new response vectors
// against one overlap matrix — pays O(n^3) to factor and O(n^2 nrhs) to
// solve. Caching the factor handle under the matrix's content fingerprint
// turns every repeat into a pure solve.
//
// Lifecycle rules (each is load-bearing for the concurrency story):
//
//   - entries are shared_ptr<const CachedFactor>: a lookup pins the handle
//     for the duration of the client's solve, so EVICTION NEVER INVALIDATES
//     AN IN-FLIGHT SOLVE — the map drops its reference and the memory is
//     reclaimed when the last solver finishes (the refcount IS the
//     in-flight-solve count);
//   - only healthy factors are admitted: a degraded or failed FactorHealth
//     means the factors carry no reusable accuracy, so the request is
//     answered (with its classification) but never cached, and a key that
//     turns unhealthy is invalidated;
//   - the budget is a word count (CONFLUX_SERVE_CACHE_WORDS), accounted
//     through the factor handles' resident_words(); insertion evicts
//     least-recently-used entries until the new entry fits, but never the
//     entry being inserted — a cache too small for one working-set matrix
//     still serves that matrix;
//   - all operations are O(1) under one mutex; the cache never computes,
//     so the lock is never held across a factorization or solve.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <variant>

#include "factor/common.hpp"
#include "serve/fingerprint.hpp"

namespace conflux::serve {

/// One cached factorization: the handle variant covers both kinds in both
/// storage precisions (mixed-precision requests cache fp32 factors and
/// refine against them per solve).
struct CachedFactor {
  std::variant<factor::LuResult, factor::CholResult, factor::LuResultF,
               factor::CholResultF>
      handle;

  const factor::FactorHealth& health() const {
    return std::visit([](const auto& h) -> const factor::FactorHealth& {
      return h.health;
    }, handle);
  }
  double resident_words() const {
    return std::visit([](const auto& h) { return h.resident_words(); }, handle);
  }
};

class FactorCache {
 public:
  /// budget_words <= 0 resolves CONFLUX_SERVE_CACHE_WORDS (default 64 Mi
  /// words = 512 MiB of fp64 factors).
  explicit FactorCache(double budget_words = 0.0);

  /// Pin and return the entry for `key`, refreshing its recency; null on
  /// miss. Counted under serve.cache.hits / serve.cache.misses.
  std::shared_ptr<const CachedFactor> lookup(const Fingerprint& key);

  /// Admit a healthy factorization (callers must not insert degraded
  /// handles — enforced), evicting LRU entries (never `key` itself) until
  /// the budget holds. Re-inserting an existing key refreshes the entry.
  void insert(const Fingerprint& key, std::shared_ptr<const CachedFactor> entry);

  /// Drop `key` if present (a factorization of this content turned
  /// unhealthy, e.g. under fault injection). In-flight pins stay valid.
  void invalidate(const Fingerprint& key);

  /// Drop everything (tests; in-flight pins stay valid).
  void clear();

  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long insertions = 0;
    long long evictions = 0;
    long long invalidations = 0;
    double resident_words = 0.0;  ///< words currently mapped
    long long entries = 0;
  };
  Stats stats() const;

  double budget_words() const { return budget_words_; }

 private:
  void evict_lru_locked(const Fingerprint& keep);

  struct Slot {
    std::shared_ptr<const CachedFactor> entry;
    std::list<Fingerprint>::iterator lru_pos;
  };

  mutable std::mutex mu_;
  double budget_words_;
  std::list<Fingerprint> lru_;  ///< front = most recently used
  std::unordered_map<Fingerprint, Slot> map_;
  Stats stats_;
};

}  // namespace conflux::serve
